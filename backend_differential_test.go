// Differential testing of the two functional-mode backends beyond the
// fixed conformance corpus: a fuzz target that drives arbitrary short
// assembly programs through the interpreter and the funcvm bytecode
// backend side by side, and a checkpoint cross-resume test proving a
// checkpoint taken under one backend resumes under the other. Both lean
// on the same invariant the conformance matrix enforces — the backends
// are bit-identical implementations of functional mode, down to the
// error message (modulo the funcvm:/funcmodel: prefix).
package xmtgo_test

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo"
	"xmtgo/internal/asm"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/funcvm"
	"xmtgo/internal/workloads"
)

// normalizeBackendErr maps the VM's backend-identifying error prefix onto
// the interpreter's so messages compare verbatim.
func normalizeBackendErr(err error) string {
	if err == nil {
		return ""
	}
	return strings.ReplaceAll(err.Error(), "funcvm:", "funcmodel:")
}

// FuzzBackendDifferential runs arbitrary assembly through both functional
// backends and fails on any architectural divergence: final memory,
// registers, master context, instruction count, halt state, printf output
// or (normalized) error. Seeds are the compiled form of every workload
// generator plus handwritten snippets covering the XMT-specific surface
// (ps/psm/bcast/chkid/spawn and the sys trap set). Run at length with
//
//	go test -fuzz FuzzBackendDifferential -run '^$' .
//
// scripts/check.sh runs a short smoke of this target.
func FuzzBackendDifferential(f *testing.F) {
	seed := func(name, src string) {
		res, err := xmtgo.Compile(name, src, xmtgo.DefaultCompileOptions())
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(xmtgo.PrintUnit(res.Unit))
	}
	for _, g := range []workloads.TableIGroup{
		workloads.ParallelMemory, workloads.ParallelCompute,
		workloads.SerialMemory, workloads.SerialCompute,
	} {
		seed("tableI-"+g.Name()+".c", workloads.TableI(g, 16, 4))
	}
	comp, _ := workloads.Compaction(32, 0.5, 3)
	seed("compaction.c", comp)
	redPar, redSer, _ := workloads.Reduction(64)
	seed("reduction-par.c", redPar)
	seed("reduction-ser.c", redSer)

	// Handwritten snippets: the XMT ops and traps the compiler emits only in
	// fixed patterns, in free-form combinations.
	f.Add("\t.data\nV:\t.word 1, 2, 3, 4\n\t.text\nmain:\tla $t0, V\n\tli $t1, 9\n\tpsm $t1, 0($t0)\n\tlw $v0, 0($t0)\n\tsys 1\n\tsys 0\n")
	f.Add("\t.text\nmain:\tli $t0, 5\n\tbcast $t0\n\tli $a0, 0\n\tli $a1, 3\n\tspawn $a0, $a1\n\tps $tid, g7\n\tchkid $tid\n\tjoin\n\tgrr $v0, g7\n\tsys 1\n\tsys 0\n")
	f.Add("\t.text\nmain:\tli $a0, 2\n\tli $a1, 1\n\tspawn $a0, $a1\n\tjoin\n\tsys 0\n")
	f.Add("\t.text\nmain:\tgrw $t0, g12\n\tgrr $t1, g12\n\tsys 4\n\tsys 5\n\tsys 0\n")
	f.Add("\t.data\nS:\t.asciiz \"x\"\nF:\t.float 1.5\n\t.text\nmain:\tla $v0, S\n\tsys 3\n\tla $t0, F\n\tlw $v0, 0($t0)\n\tsys 6\n\tli $v0, 10\n\tsys 2\n\tsys 0\n")
	f.Add("\t.text\nmain:\tli $t0, 7\n\tli $t1, 0\n\tdiv $t2, $t0, $t1\n\tsys 0\n")

	f.Fuzz(func(t *testing.T, src string) {
		u, err := asm.Parse("fuzz.s", src)
		if err != nil {
			return
		}
		p, err := asm.Assemble(u)
		if err != nil {
			return
		}
		// Small budget: mutated inputs routinely contain tight infinite
		// loops, and each exec pays it twice. Budget exhaustion itself is a
		// compared outcome (message and instruction-count parity).
		const budget = 20_000

		// 1 MiB machines (the stack adapts to the memory size): the default
		// 16 MiB image makes each exec ~1s under the fuzz engine.
		const memBytes = 1 << 20

		var outI bytes.Buffer
		mi, err := funcmodel.New(p, memBytes, &outI)
		if err != nil {
			return
		}
		defer mi.ReleaseMemory()
		errI := mi.Run(budget)

		var outV bytes.Buffer
		mv, err := funcmodel.New(p, memBytes, &outV)
		if err != nil {
			t.Fatalf("second machine for same program failed: %v", err)
		}
		defer mv.ReleaseMemory()
		vm, err := funcvm.Attach(mv)
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		errV := vm.Run(budget)

		if normalizeBackendErr(errI) != normalizeBackendErr(errV) {
			t.Errorf("error divergence:\n  interp: %v\n  vm:     %v", errI, errV)
		}
		compareFuncBackends(t, mi, mv, outI.String(), outV.String())
	})
}

// TestFuncVMCheckpointResume checkpoints a run mid-flight under one
// functional backend, round-trips the checkpoint through its gob
// serialization, resumes under the *other* backend and requires the final
// architectural state to be byte-equal to an uninterrupted reference run.
// This is the strongest statement of backend agnosticism: the lowered
// bytecode world and the interpreter world meet exactly at the
// architectural state the checkpoint captures.
func TestFuncVMCheckpointResume(t *testing.T) {
	redPar, _, _ := workloads.Reduction(512)
	prog, _, err := xmtgo.Build("reduction-par.c", redPar, xmtgo.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xmtgo.ConfigFPGA64()

	var refOut bytes.Buffer
	ref, err := xmtgo.NewMachine(prog, cfg, &refOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(50_000_000); err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !ref.Halted {
		t.Fatal("reference run did not halt")
	}
	// Stop roughly mid-run so the checkpoint captures real progress.
	stopAt := ref.InstrCount / 2

	for _, dir := range []struct{ name, first, second string }{
		{"vm-to-interp", "vm", "interp"},
		{"interp-to-vm", "interp", "vm"},
	} {
		t.Run(dir.name, func(t *testing.T) {
			var out1 bytes.Buffer
			m1, err := xmtgo.NewMachine(prog, cfg, &out1)
			if err != nil {
				t.Fatal(err)
			}
			if dir.first == "vm" {
				vm, err := xmtgo.NewFuncVM(m1)
				if err != nil {
					t.Fatal(err)
				}
				if err := vm.RunTo(stopAt); err != nil {
					t.Fatalf("first leg (%s): %v", dir.first, err)
				}
			} else if err := m1.RunTo(stopAt); err != nil {
				t.Fatalf("first leg (%s): %v", dir.first, err)
			}
			if m1.Halted {
				t.Fatalf("halted after %d instructions before the checkpoint", m1.InstrCount)
			}
			if !m1.Quiescent() {
				t.Fatal("RunTo stopped at a non-quiescent point")
			}

			var ckpt bytes.Buffer
			if err := checkpoint.Save(&ckpt, checkpoint.Capture(m1, 0)); err != nil {
				t.Fatal(err)
			}
			st, err := checkpoint.Load(&ckpt)
			if err != nil {
				t.Fatal(err)
			}

			var out2 bytes.Buffer
			m2, err := xmtgo.NewMachine(prog, cfg, &out2)
			if err != nil {
				t.Fatal(err)
			}
			if err := checkpoint.Restore(m2, st); err != nil {
				t.Fatal(err)
			}
			if dir.second == "vm" {
				vm, err := xmtgo.NewFuncVM(m2)
				if err != nil {
					t.Fatal(err)
				}
				if err := vm.Run(50_000_000); err != nil {
					t.Fatalf("second leg (%s): %v", dir.second, err)
				}
			} else if err := m2.Run(50_000_000); err != nil {
				t.Fatalf("second leg (%s): %v", dir.second, err)
			}
			if !m2.Halted {
				t.Fatal("resumed run did not halt")
			}
			compareFuncBackends(t, ref, m2, refOut.String(), out1.String()+out2.String())
		})
	}
}
