// Benchmarks regenerating every table and figure of the paper's
// evaluation; EXPERIMENTS.md records the measured results next to the
// paper's. Run with:
//
//	go test -bench=. -benchmem
//
// Table I        -> BenchmarkTableI_*            (simulated instr/sec & cycle/sec)
// §III-A claim   -> BenchmarkFunctionalVsCycle   (functional mode >> cycle mode)
// §III-D / Fig.4 -> BenchmarkMacroActorThreshold (per-component actors vs macro-actor)
// Fig. 5         -> BenchmarkDEvsDT              (discrete-event vs discrete-time loop)
// Fig. 2a        -> BenchmarkFig2aCompaction
// §II-B speedups -> BenchmarkSpeedup_*           (parallel vs serial cycle counts)
// §IV-C ([8])    -> BenchmarkAblationPrefetch
// §IV-C ([10])   -> BenchmarkAblationClustering
// §IV-C          -> BenchmarkAblationNBStore
// §III-F ([22])  -> BenchmarkThermalPipeline
package xmtgo_test

import (
	"fmt"
	"io"
	"testing"

	"xmtgo"
	"xmtgo/internal/codegen"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/workloads"
)

// buildB compiles a workload for benchmarking.
func buildB(b *testing.B, src string, opts xmtgo.CompileOptions, memmaps ...string) *xmtgo.Program {
	b.Helper()
	prog, _, err := xmtgo.Build("bench.c", src, opts, memmaps...)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// cycleRun simulates one program to completion and returns the result.
func cycleRun(b *testing.B, prog *xmtgo.Program, cfg xmtgo.Config) *xmtgo.SimResult {
	b.Helper()
	sys, err := xmtgo.NewSimulator(prog, cfg, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Halted {
		b.Fatal("benchmark program did not halt")
	}
	sys.Release()
	return res
}

// --- Table I: simulated throughput of XMTSim on the 1024-TCU machine ---

func tableIBench(b *testing.B, g workloads.TableIGroup) {
	cfg := xmtgo.ConfigChip1024()
	threads := cfg.Clusters * cfg.TCUsPerCluster
	work := 40
	if g == workloads.SerialMemory || g == workloads.SerialCompute {
		work = 40000
	}
	prog := buildB(b, workloads.TableI(g, threads, work), xmtgo.DefaultCompileOptions())
	var instrs, cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cycleRun(b, prog, cfg)
		instrs += int64(res.Instrs)
		cycles += res.Cycles
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(instrs)/sec, "sim_instr/sec")
		b.ReportMetric(float64(cycles)/sec, "sim_cycle/sec")
	}
}

func BenchmarkTableI_ParallelMemory(b *testing.B) { tableIBench(b, workloads.ParallelMemory) }
func BenchmarkTableI_ParallelCompute(b *testing.B) {
	tableIBench(b, workloads.ParallelCompute)
}
func BenchmarkTableI_SerialMemory(b *testing.B)  { tableIBench(b, workloads.SerialMemory) }
func BenchmarkTableI_SerialCompute(b *testing.B) { tableIBench(b, workloads.SerialCompute) }

// --- Host-parallel scaling: simulated cycles/sec vs Config.HostWorkers ---
//
// The parallel-memory and parallel-compute Table I groups on the 1024-TCU
// machine are the workloads where the cluster macro-actor dominates host
// time, so they bound what sharding the clusters across goroutines can buy.
// Results are bit-identical at every worker count (TestHostParallelDeterminism);
// only wall-clock changes. Meaningful scaling needs ≥ 4 physical cores.
func BenchmarkHostParallelScaling(b *testing.B) {
	for _, g := range []workloads.TableIGroup{workloads.ParallelMemory, workloads.ParallelCompute} {
		cfg := xmtgo.ConfigChip1024()
		prog := buildB(b, workloads.TableI(g, cfg.Clusters*cfg.TCUsPerCluster, 40),
			xmtgo.DefaultCompileOptions())
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", g.Name(), w), func(b *testing.B) {
				wcfg := cfg
				wcfg.HostWorkers = w
				var cycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycles += cycleRun(b, prog, wcfg).Cycles
				}
				b.StopTimer()
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(cycles)/sec, "sim_cycle/sec")
				}
			})
		}
	}
}

// --- Bounded lookahead: window width and engine mode vs throughput ---
//
// Compares the legacy single-cycle engine (lookahead=1), the derived
// conservative window and the optimistic rollback mode on the two parallel
// Table I groups (docs/PERF.md §Lookahead). Results are bit-identical in
// every configuration (TestLookaheadDeterminism); only wall-clock changes.
// The compute group is where multi-cycle windows pay: clusters run long
// stretches without cross-cluster traffic clamping the span.
func BenchmarkLookahead(b *testing.B) {
	for _, g := range []workloads.TableIGroup{workloads.ParallelMemory, workloads.ParallelCompute} {
		cfg := xmtgo.ConfigChip1024()
		prog := buildB(b, workloads.TableI(g, cfg.Clusters*cfg.TCUsPerCluster, 40),
			xmtgo.DefaultCompileOptions())
		for _, v := range []struct {
			name      string
			lookahead int
			mode      string
		}{
			{"single-cycle", 1, ""},
			{"window-derived", 0, ""},
			{"optimistic", 0, xmtgo.EngineOptimistic},
		} {
			b.Run(fmt.Sprintf("%s/%s", g.Name(), v.name), func(b *testing.B) {
				vcfg := cfg
				vcfg.Lookahead = v.lookahead
				vcfg.EngineMode = v.mode
				var cycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycles += cycleRun(b, prog, vcfg).Cycles
				}
				b.StopTimer()
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(cycles)/sec, "sim_cycle/sec")
				}
			})
		}
	}
}

// --- §III-A: the functional mode is orders of magnitude faster ---

func BenchmarkFunctionalVsCycle(b *testing.B) {
	cfg := xmtgo.ConfigChip1024()
	prog := buildB(b, workloads.TableI(workloads.ParallelCompute, 1024, 40), xmtgo.DefaultCompileOptions())
	b.Run("functional", func(b *testing.B) {
		var instrs uint64
		for i := 0; i < b.N; i++ {
			n, err := xmtgo.RunFunctional(prog, cfg, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			instrs += n
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(instrs)/sec, "sim_instr/sec")
		}
	})
	b.Run("cycle", func(b *testing.B) {
		var instrs uint64
		for i := 0; i < b.N; i++ {
			res := cycleRun(b, prog, cfg)
			instrs += res.Instrs
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(instrs)/sec, "sim_instr/sec")
		}
	})
}

// --- Functional backends: interpreter vs the funcvm bytecode VM ---
//
// Both backends produce bit-identical architectural results (the three-way
// conformance matrix and FuzzBackendDifferential enforce it); this
// benchmark measures what the lowered direct-threaded dispatch buys on
// each workload shape (docs/SIMULATOR.md §Functional backends). bench.sh
// records sim_instr/sec per (workload, backend) in BENCH_HISTORY.jsonl and
// check.sh gates it direction-up through xmtperf.
func BenchmarkFuncBackend(b *testing.B) {
	type wl struct {
		name string
		src  string
	}
	var cases []wl
	for _, g := range []workloads.TableIGroup{
		workloads.ParallelMemory, workloads.ParallelCompute,
		workloads.SerialMemory, workloads.SerialCompute,
	} {
		work := 40
		if g == workloads.SerialMemory || g == workloads.SerialCompute {
			work = 40000
		}
		cases = append(cases, wl{g.Name(), workloads.TableI(g, 1024, work)})
	}
	comp, _ := workloads.Compaction(4096, 0.5, 3)
	cases = append(cases, wl{"compaction", comp})

	for _, c := range cases {
		prog := buildB(b, c.src, xmtgo.DefaultCompileOptions())
		for _, backend := range []string{xmtgo.FuncBackendInterp, xmtgo.FuncBackendVM} {
			b.Run(fmt.Sprintf("%s/%s", c.name, backend), func(b *testing.B) {
				cfg := xmtgo.ConfigChip1024()
				cfg.FuncBackend = backend
				var instrs uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := xmtgo.RunFunctional(prog, cfg, io.Discard)
					if err != nil {
						b.Fatal(err)
					}
					instrs += n
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(instrs)/sec, "sim_instr/sec")
				}
			})
		}
	}
}

// --- §III-D / Fig. 4: macro-actor vs per-component actors ---
//
// The trade-off the paper measured: with one actor per component, the DE
// scheduler pays one event per ACTIVE component per cycle (idle components
// cost nothing — the strength of DE); a macro-actor pays one event per
// cycle but polls EVERY grouped component, active or not (DT-style inner
// loop). The macro-actor style wins once the number of events per cycle
// passes a threshold — the paper measured ≈800 events/cycle for empty
// action code on their Java implementation; the exact break-even depends
// on the scheduler-overhead-to-poll-cost ratio, so we sweep the active
// count K over a fixed population N and report ns per simulated cycle for
// both styles.

type emptyComp struct {
	cycles int64
	active bool
}

func (c *emptyComp) Tick(cycle int64, now engine.Time) bool {
	if !c.active {
		return false
	}
	c.cycles++
	return c.cycles < 2000 // run for a fixed number of cycles
}

// macroActorBench simulates 2000 cycles of a population of n components of
// which k are active per cycle.
func macroActorBench(b *testing.B, n, k int, macro bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched := engine.New()
		clock := engine.NewClock("bench", 1)
		if macro {
			ma := engine.NewMacroActor("macro", sched, clock)
			for j := 0; j < n; j++ {
				ma.Add(&emptyComp{active: j < k})
			}
			ma.Wake(0)
		} else {
			// DE per-component actors: idle components never schedule —
			// only the k active ones enter the event list.
			for j := 0; j < k; j++ {
				engine.NewSingleActor(sched, clock, &emptyComp{active: true}).Wake(0)
			}
		}
		sched.Run()
	}
	b.StopTimer()
	total := float64(b.N) * 2000
	if total > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/cycle")
	}
}

func BenchmarkMacroActorThreshold(b *testing.B) {
	const n = 4096
	for _, k := range []int{8, 16, 32, 64, 128, 512, 2048, 4096} {
		b.Run(fmt.Sprintf("actors-events-%d", k), func(b *testing.B) { macroActorBench(b, n, k, false) })
		b.Run(fmt.Sprintf("macro-events-%d", k), func(b *testing.B) { macroActorBench(b, n, k, true) })
	}
}

// --- Fig. 5: discrete-event vs discrete-time main loops ---

func BenchmarkDEvsDT(b *testing.B) {
	const n, cycles = 256, 2000
	b.Run("discrete-event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched := engine.New()
			clock := engine.NewClock("bench", 1)
			for j := 0; j < n; j++ {
				engine.NewSingleActor(sched, clock, &emptyComp{}).Wake(0)
			}
			sched.Run()
		}
	})
	b.Run("discrete-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comps := make([]engine.Cycler, n)
			for j := range comps {
				comps[j] = &emptyComp{}
			}
			engine.RunDT(comps, 1, cycles)
		}
	})
}

// --- Fig. 2a: the array-compaction example ---

func BenchmarkFig2aCompaction(b *testing.B) {
	src, _ := workloads.Compaction(512, 0.5, 3)
	prog := buildB(b, src, xmtgo.DefaultCompileOptions())
	var cycles int64
	for i := 0; i < b.N; i++ {
		cycles = cycleRun(b, prog, xmtgo.ConfigFPGA64()).Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// --- §II-B: speedup shapes (parallel vs serial cycle counts) ---

func speedupBench(b *testing.B, parallel, serial string, memmaps ...string) {
	pProg := buildB(b, parallel, xmtgo.DefaultCompileOptions(), memmaps...)
	sProg := buildB(b, serial, xmtgo.DefaultCompileOptions(), memmaps...)
	sCycles := cycleRun(b, sProg, xmtgo.ConfigFPGA64()).Cycles
	s1024 := cycleRun(b, pProg, xmtgo.ConfigChip1024()).Cycles
	var pCycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pCycles = cycleRun(b, pProg, xmtgo.ConfigFPGA64()).Cycles
	}
	b.ReportMetric(float64(sCycles)/float64(pCycles), "speedup_64tcu")
	b.ReportMetric(float64(sCycles)/float64(s1024), "speedup_1024tcu")
	b.ReportMetric(float64(pCycles), "par_cycles")
	b.ReportMetric(float64(sCycles), "ser_cycles")
}

func BenchmarkSpeedup_BFS(b *testing.B) {
	g := workloads.RandomGraph(400, 8, 1)
	par, ser := workloads.BFS(512, 8192)
	speedupBench(b, par, ser, g.MemMap())
}

func BenchmarkSpeedup_Reduction(b *testing.B) {
	par, ser, _ := workloads.Reduction(2048)
	speedupBench(b, par, ser)
}

func BenchmarkSpeedup_MatMul(b *testing.B) {
	par, ser := workloads.MatMul(24)
	speedupBench(b, par, ser)
}

func BenchmarkSpeedup_VecAdd(b *testing.B) {
	par, ser, _ := workloads.VecAdd(2048)
	speedupBench(b, par, ser)
}

// --- §IV-C ablations: the XMT-specific compiler optimizations ---

// prefetchKernel: each virtual thread reads 8 words from 8 distinct cache
// lines with addresses computable at thread start — the access shape the
// compiler prefetch pass targets ([8]). With prefetching the 8 shared-cache
// round trips overlap; without it they serialize on the blocking loads.
// Latency-tolerance ablations need spare interconnect bandwidth (a
// saturated ICN is bound by throughput, and no latency-hiding mechanism
// can help); the kernels therefore run modest thread counts on the
// 1024-TCU machine so each virtual thread's shared-memory round trips
// dominate.
const prefetchKernel = `
int A[8192];
int B[128];
int main() {
    int i;
    for (i = 0; i < 8192; i += 97) A[i] = i;
    spawn(0, 127) {
        int b = $ * 64;
        int s = A[b] + A[b + 8] + A[b + 16] + A[b + 24]
              + A[b + 32] + A[b + 40] + A[b + 48] + A[b + 56];
        B[$] = s;
    }
    print_int(B[127]);
    return 0;
}`

// nbstoreKernel: each virtual thread issues 8 scattered word stores. With
// non-blocking stores the TCU fires them back to back; with blocking
// stores each waits out a full shared-memory round trip.
const nbstoreKernel = `
int B[8192];
int main() {
    spawn(0, 127) {
        int b = $ * 64;
        B[b] = 1; B[b + 8] = 2; B[b + 16] = 3; B[b + 24] = 4;
        B[b + 32] = 5; B[b + 40] = 6; B[b + 48] = 7; B[b + 56] = 8;
    }
    print_int(B[64 * 127 + 56]);
    return 0;
}`

func ablation(b *testing.B, on, off xmtgo.CompileOptions, cfg xmtgo.Config, src string, metric string) {
	pOn := buildB(b, src, on)
	pOff := buildB(b, src, off)
	offCycles := cycleRun(b, pOff, cfg).Cycles
	var onCycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onCycles = cycleRun(b, pOn, cfg).Cycles
	}
	b.ReportMetric(float64(onCycles), "cycles_on")
	b.ReportMetric(float64(offCycles), "cycles_off")
	b.ReportMetric(float64(offCycles)/float64(onCycles), metric)
}

func BenchmarkAblationPrefetch(b *testing.B) {
	on := xmtgo.DefaultCompileOptions()
	on.PrefetchSlots = 8
	off := on
	off.NoPrefetch = true
	// Latency hiding needs injection bandwidth headroom: explore the
	// high-injection design point (this is exactly the kind of
	// design-space question the simulator's configurability is for).
	cfg := xmtgo.ConfigChip1024()
	cfg.ICNInjectPerCyc = 16
	ablation(b, on, off, cfg, prefetchKernel, "prefetch_gain")
}

func BenchmarkAblationNBStore(b *testing.B) {
	on := xmtgo.DefaultCompileOptions()
	off := on
	off.NoNBStore = true
	ablation(b, on, off, xmtgo.ConfigChip1024(), nbstoreKernel, "nbstore_gain")
}

func BenchmarkAblationClustering(b *testing.B) {
	// Extremely fine-grained virtual threads — a couple of compute
	// instructions each — where the per-thread scheduling overhead (the
	// ps grab round trip through the finite-throughput combining
	// hardware) rivals the body; clustering amortizes it over a loop
	// (paper §IV-C, [10]).
	fine := `
int B[16384];
int main() {
    spawn(0, 16383) {
        B[$] = $ ^ ($ >> 3);
    }
    print_int(B[16383]);
    return 0;
}`
	on := xmtgo.DefaultCompileOptions()
	on.ClusterFactor = 8
	off := xmtgo.DefaultCompileOptions()
	// The grab overhead dominates when the prefix-sum combining hardware
	// is narrow; explore that design point (ps_per_cycle=8).
	cfg := xmtgo.ConfigChip1024()
	cfg.PSPerCycle = 8
	ablation(b, on, off, cfg, fine, "clustering_gain")
}

// --- §III-F: the power/thermal pipeline ---

func BenchmarkThermalPipeline(b *testing.B) {
	cfg := xmtgo.ConfigFPGA64()
	src := workloads.TableI(workloads.ParallelCompute, 64, 500)
	prog := buildB(b, src, xmtgo.DefaultCompileOptions())
	for i := 0; i < b.N; i++ {
		sys, err := xmtgo.NewSimulator(prog, cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		tm, err := xmtgo.NewThermalManager(&cfg, 1000, 55)
		if err != nil {
			b.Fatal(err)
		}
		sys.AddActivityPlugin(tm)
		if _, err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
		if len(tm.History) == 0 {
			b.Fatal("thermal manager never sampled")
		}
	}
}

// --- compile-speed benchmark for the toolchain itself ---

func BenchmarkCompileBFS(b *testing.B) {
	par, _ := workloads.BFS(512, 8192)
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Compile("bfs.c", par, codegen.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §III-F: synchronous vs asynchronous interconnect ---
//
// The paper reports work in progress (with Columbia, following [39])
// comparing synchronous and asynchronous ICN implementations inside
// XMTSim — possible because the simulator is discrete-event: the async
// variant's handshake delays are continuous times, not clock edges.
func BenchmarkAsyncICN(b *testing.B) {
	par, _, _ := workloads.Reduction(2048)
	prog := buildB(b, par, xmtgo.DefaultCompileOptions())
	syncCfg := xmtgo.ConfigChip1024()
	asyncCfg := xmtgo.ConfigChip1024()
	asyncCfg.ICNAsync = true
	syncCycles := cycleRun(b, prog, syncCfg).Cycles
	var asyncCycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asyncCycles = cycleRun(b, prog, asyncCfg).Cycles
	}
	b.ReportMetric(float64(syncCycles), "cycles_sync")
	b.ReportMetric(float64(asyncCycles), "cycles_async")
	b.ReportMetric(float64(syncCycles)/float64(asyncCycles), "async_gain")
}

// FFT ([24]): the paper's showcase that XMT gets speedups from limited
// application parallelism — each butterfly stage spawns only n/2 virtual
// threads.
func BenchmarkSpeedup_FFT(b *testing.B) {
	par, ser := workloads.FFT(256)
	speedupBench(b, par, ser)
}

// Graph connectivity (§II-B: PRAM-derived connectivity reported 2.2x-4x
// over optimized GPU implementations).
func BenchmarkSpeedup_Connectivity(b *testing.B) {
	mm, _ := workloads.ComponentsGraph(300, 6, 8, 2)
	par, ser := workloads.Connectivity(512, 4096)
	speedupBench(b, par, ser, mm)
}
