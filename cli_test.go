package xmtgo_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITools builds the three drivers and exercises their main paths end
// to end: compile, simulate (both modes, with stats, overrides and memory
// maps), trace, describe, and the compile-and-run one-step tool.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"xmtcc", "xmtsim", "xmtrun", "xmtbatch"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}

	src := `
int n = 0;
int A[64];
int total = 0;
int main() {
    spawn(0, n - 1) {
        int v = A[$];
        psm(v, total);
    }
    print_int(total);
    return 0;
}
`
	cFile := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(cFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mapFile := filepath.Join(dir, "in.map")
	if err := os.WriteFile(mapFile, []byte("n = 4\nA = 10 20 30 40\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[name], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// xmtcc: compile to assembly, with stats and prepass dump.
	sFile := filepath.Join(dir, "prog.s")
	run("xmtcc", "-o", sFile, "-v", cFile)
	asmText, err := os.ReadFile(sFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(asmText), "spawn") || !strings.Contains(string(asmText), "psm") {
		t.Fatalf("assembly missing spawn/psm:\n%s", asmText)
	}
	dump := run("xmtcc", "-dump-prepass", cFile)
	if !strings.Contains(dump, "__outl_main_0") {
		t.Fatalf("prepass dump missing outlined function:\n%s", dump)
	}
	irDump := run("xmtcc", "-dump-ir", cFile)
	if !strings.Contains(irDump, "func main") {
		t.Fatalf("ir dump:\n%s", irDump)
	}

	// xmtsim: cycle mode with memory map, stats and overrides.
	out := run("xmtsim", "-config", "fpga64", "-mem", mapFile, "-stats", "-set", "dram_latency=20", sFile)
	if !strings.Contains(out, "100") {
		t.Fatalf("expected program output 100 in:\n%s", out)
	}
	if !strings.Contains(out, "cycles") || !strings.Contains(out, "spawns=1") {
		t.Fatalf("stats missing:\n%s", out)
	}
	// Functional mode.
	out = run("xmtsim", "-mode", "func", "-mem", mapFile, sFile)
	if !strings.Contains(out, "100") || !strings.Contains(out, "functional mode") {
		t.Fatalf("functional mode:\n%s", out)
	}
	// Memory dump (Fig. 3's "memory dump" output).
	out = run("xmtsim", "-mem", mapFile, "-dump", "A:4", "-dump", "total", sFile)
	if !strings.Contains(out, "10 20 30 40") || !strings.Contains(out, "total @") {
		t.Fatalf("memory dump:\n%s", out)
	}

	// Describe.
	out = run("xmtsim", "-describe", "-config", "chip1024")
	if !strings.Contains(out, "total TCUs: 1024") {
		t.Fatalf("describe:\n%s", out)
	}
	// Trace limited to the master and one mnemonic.
	out = run("xmtsim", "-mem", mapFile, "-trace", "cycle", "-trace-tcu", "-1", "-trace-op", "spawn", sFile)
	if !strings.Contains(out, "spawn") {
		t.Fatalf("trace:\n%s", out)
	}

	// xmtrun: one-step compile and simulate.
	out = run("xmtrun", "-config", "fpga64", "-mem", mapFile, cFile)
	if !strings.Contains(out, "100") {
		t.Fatalf("xmtrun:\n%s", out)
	}

	// xmtrun under an injected fault plan with the watchdog armed: benign
	// timing faults must not change the program result.
	out = run("xmtrun", "-config", "fpga64", "-mem", mapFile,
		"-fault", "icndelay:4@50-400;cachestall:2x100@50-400", "-fault-seed", "9",
		"-watchdog", "100000", cFile)
	if !strings.Contains(out, "100") {
		t.Fatalf("xmtrun with faults:\n%s", out)
	}

	// xmtbatch: a two-job batch (one .s, one .c with overrides) from a jobs
	// file, with checkpoint persistence enabled.
	jobsFile := filepath.Join(dir, "jobs.txt")
	jobs := "# batch smoke test\n" +
		"asmjob " + sFile + "\n" +
		"cjob " + cFile + " dram_latency=20\n"
	if err := os.WriteFile(jobsFile, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run("xmtbatch", "-config", "fpga64", "-timeout", "10000000",
		"-checkpoint-every", "5000", "-retries", "1",
		"-out", filepath.Join(dir, "ckpt"), jobsFile)
	if !strings.Contains(out, "ok   asmjob") || !strings.Contains(out, "ok   cjob") {
		t.Fatalf("xmtbatch:\n%s", out)
	}
}
