package xmtgo_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLITools builds the three drivers and exercises their main paths end
// to end: compile, simulate (both modes, with stats, overrides and memory
// maps), trace, describe, and the compile-and-run one-step tool.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"xmtcc", "xmtsim", "xmtrun", "xmtbatch"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}

	src := `
int n = 0;
int A[64];
int total = 0;
int main() {
    spawn(0, n - 1) {
        int v = A[$];
        psm(v, total);
    }
    print_int(total);
    return 0;
}
`
	cFile := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(cFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mapFile := filepath.Join(dir, "in.map")
	if err := os.WriteFile(mapFile, []byte("n = 4\nA = 10 20 30 40\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[name], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// xmtcc: compile to assembly, with stats and prepass dump.
	sFile := filepath.Join(dir, "prog.s")
	run("xmtcc", "-o", sFile, "-v", cFile)
	asmText, err := os.ReadFile(sFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(asmText), "spawn") || !strings.Contains(string(asmText), "psm") {
		t.Fatalf("assembly missing spawn/psm:\n%s", asmText)
	}
	dump := run("xmtcc", "-dump-prepass", cFile)
	if !strings.Contains(dump, "__outl_main_0") {
		t.Fatalf("prepass dump missing outlined function:\n%s", dump)
	}
	irDump := run("xmtcc", "-dump-ir", cFile)
	if !strings.Contains(irDump, "func main") {
		t.Fatalf("ir dump:\n%s", irDump)
	}

	// xmtsim: cycle mode with memory map, stats and overrides.
	out := run("xmtsim", "-config", "fpga64", "-mem", mapFile, "-stats", "-set", "dram_latency=20", sFile)
	if !strings.Contains(out, "100") {
		t.Fatalf("expected program output 100 in:\n%s", out)
	}
	if !strings.Contains(out, "cycles") || !strings.Contains(out, "spawns=1") {
		t.Fatalf("stats missing:\n%s", out)
	}
	// Functional mode.
	out = run("xmtsim", "-mode", "func", "-mem", mapFile, sFile)
	if !strings.Contains(out, "100") || !strings.Contains(out, "functional mode") {
		t.Fatalf("functional mode:\n%s", out)
	}
	// Memory dump (Fig. 3's "memory dump" output).
	out = run("xmtsim", "-mem", mapFile, "-dump", "A:4", "-dump", "total", sFile)
	if !strings.Contains(out, "10 20 30 40") || !strings.Contains(out, "total @") {
		t.Fatalf("memory dump:\n%s", out)
	}

	// Describe.
	out = run("xmtsim", "-describe", "-config", "chip1024")
	if !strings.Contains(out, "total TCUs: 1024") {
		t.Fatalf("describe:\n%s", out)
	}
	// Trace limited to the master and one mnemonic.
	out = run("xmtsim", "-mem", mapFile, "-trace", "cycle", "-trace-tcu", "-1", "-trace-op", "spawn", sFile)
	if !strings.Contains(out, "spawn") {
		t.Fatalf("trace:\n%s", out)
	}

	// xmtrun: one-step compile and simulate.
	out = run("xmtrun", "-config", "fpga64", "-mem", mapFile, cFile)
	if !strings.Contains(out, "100") {
		t.Fatalf("xmtrun:\n%s", out)
	}

	// xmtrun under an injected fault plan with the watchdog armed: benign
	// timing faults must not change the program result.
	out = run("xmtrun", "-config", "fpga64", "-mem", mapFile,
		"-fault", "icndelay:4@50-400;cachestall:2x100@50-400", "-fault-seed", "9",
		"-watchdog", "100000", cFile)
	if !strings.Contains(out, "100") {
		t.Fatalf("xmtrun with faults:\n%s", out)
	}

	// Telemetry artifacts: interval samples (JSONL and CSV) and the
	// machine-readable counter snapshot.
	samplesJSONL := filepath.Join(dir, "samples.jsonl")
	countersJSON := filepath.Join(dir, "counters.json")
	run("xmtsim", "-mem", mapFile, "-sample-cycles", "100",
		"-samples", samplesJSONL, "-counters-json", countersJSON, sFile)
	if data, err := os.ReadFile(samplesJSONL); err != nil || !strings.Contains(string(data), `"schema":"xmt-samples/v1"`) {
		t.Fatalf("samples JSONL: err=%v\n%s", err, data)
	}
	if data, err := os.ReadFile(countersJSON); err != nil || !strings.Contains(string(data), `"schema": "xmt-counters/v1"`) {
		t.Fatalf("counters JSON: err=%v\n%s", err, data)
	}
	samplesCSV := filepath.Join(dir, "samples.csv")
	run("xmtrun", "-mem", mapFile, "-sample-cycles", "100", "-samples", samplesCSV, cFile)
	if data, err := os.ReadFile(samplesCSV); err != nil || !strings.HasPrefix(string(data), "cycle,ticks,window_cycles") {
		t.Fatalf("samples CSV: err=%v\n%s", err, data)
	}

	// xmtbatch: a two-job batch (one .s, one .c with overrides) from a jobs
	// file, with checkpoint persistence enabled.
	jobsFile := filepath.Join(dir, "jobs.txt")
	jobs := "# batch smoke test\n" +
		"asmjob " + sFile + "\n" +
		"cjob " + cFile + " dram_latency=20\n"
	if err := os.WriteFile(jobsFile, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run("xmtbatch", "-config", "fpga64", "-timeout", "10000000",
		"-checkpoint-every", "5000", "-retries", "1",
		"-out", filepath.Join(dir, "ckpt"), jobsFile)
	if !strings.Contains(out, "ok   asmjob") || !strings.Contains(out, "ok   cjob") {
		t.Fatalf("xmtbatch:\n%s", out)
	}
}

// serveLoopAsm is a long serial load-modify-store loop: enough cycles
// that the live metrics server can be scraped while the run is still in
// flight.
const serveLoopAsm = `
        .data
A:      .space 64
        .text
        .global main
main:
        li    $t0, 200000000
        la    $t1, A
Lloop:  lw    $t2, 0($t1)
        addiu $t2, $t2, 1
        sw    $t2, 0($t1)
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        sys   0
`

// TestCLIServeEndpoints starts xmtsim with -serve on an ephemeral port,
// parses the advertised address from stderr, and scrapes /metrics and
// /status mid-run. This is the end-to-end smoke test for the live
// telemetry endpoint; scripts/check.sh runs it by name.
func TestCLIServeEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "xmtsim")
	if msg, err := exec.Command("go", "build", "-o", bin, "./cmd/xmtsim").CombinedOutput(); err != nil {
		t.Fatalf("build xmtsim: %v\n%s", err, msg)
	}
	sFile := filepath.Join(dir, "loop.s")
	if err := os.WriteFile(sFile, []byte(serveLoopAsm), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-serve", "127.0.0.1:0", "-sample-cycles", "500", sFile)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The driver announces the bound address on stderr:
	//   serving metrics on http://ADDR (/metrics /status /stream)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "serving metrics on http://"); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- addr
				return
			}
		}
		close(addrCh)
	}()
	var addr string
	select {
	case a, ok := <-addrCh:
		if !ok {
			t.Fatal("xmtsim exited without announcing a metrics address")
		}
		addr = a
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the metrics address on stderr")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	// Publishes happen at sampling boundaries; poll until the first one.
	deadline := time.Now().Add(30 * time.Second)
	var body string
	for {
		body = get("/metrics")
		if strings.Contains(body, "xmt_cycle ") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no sample published within 30s; /metrics:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, family := range []string{
		"# TYPE xmt_cycle gauge",
		"# TYPE xmt_instructions_total counter",
		"# TYPE xmt_stall_cycles_total counter",
		"# TYPE xmt_cache_hits_total counter",
		"xmt_tcus_alive 64",
		"xmt_interval_window_cycles 500",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q:\n%s", family, body)
		}
	}

	var st struct {
		Cycle     int64  `json:"cycle"`
		Instrs    uint64 `json:"instrs"`
		AliveTCUs int    `json:"alive_tcus"`
		Done      bool   `json:"done"`
	}
	if err := json.Unmarshal([]byte(get("/status")), &st); err != nil {
		t.Fatalf("/status: %v", err)
	}
	if st.Cycle <= 0 || st.Instrs == 0 || st.AliveTCUs != 64 {
		t.Errorf("/status = %+v", st)
	}
	if st.Done {
		t.Error("/status reports done while the loop is still running")
	}
}
