// Command benchjson converts `go test -bench` output (on stdin) into a
// machine-readable JSON record, or a one-line summary for EXPERIMENTS.md.
// scripts/bench.sh uses it to keep a perf trajectory across PRs:
//
//	go test -bench . -benchmem | benchjson -date 2026-08-06 -o BENCH_2026-08-06.json
//	go test -bench . -benchmem | benchjson -date 2026-08-06 -summary
//	go test -bench . -benchmem | benchjson -date 2026-08-06 -history BENCH_HISTORY.jsonl
//
// -history appends the record as one compact JSON line to a cross-run
// history file; cmd/xmtperf diffs consecutive entries to gate regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchSchema versions the record layout (JSON file and history lines).
const benchSchema = "xmt-bench/v1"

type benchFile struct {
	Schema  string        `json:"schema"`
	Date    string        `json:"date"`
	Go      string        `json:"go"`
	CPUs    int           `json:"cpus"`
	CPUName string        `json:"cpu_name,omitempty"`
	Results []benchResult `json:"results"`
}

func main() {
	var (
		date    = flag.String("date", "", "date stamp recorded in the output")
		out     = flag.String("o", "", "write JSON here (default stdout)")
		summary = flag.Bool("summary", false, "emit a one-line summary instead of JSON")
		history = flag.String("history", "", "append the record as one JSON line to this history file")
	)
	flag.Parse()

	file := benchFile{Schema: benchSchema, Date: *date, Go: runtime.Version(), CPUs: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			file.CPUName = strings.TrimSpace(cpu)
		}
		if r, ok := parseBenchLine(line); ok {
			file.Results = append(file.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	if *history != "" {
		if err := appendHistory(*history, &file); err != nil {
			fatal(err)
		}
	}
	if *summary {
		fmt.Println(summarize(&file))
		return
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// appendHistory adds the record as one compact JSON line at the end of
// path, creating the file on first use.
func appendHistory(path string, file *benchFile) error {
	line, err := json.Marshal(file)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(append(line, '\n'))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseBenchLine parses one result line:
//
//	BenchmarkFoo/sub-8   5   234 ns/op   509 sim_cycle/sec   12 B/op   3 allocs/op
func parseBenchLine(line string) (benchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchResult{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// summarize renders the one-line EXPERIMENTS.md record: the Table I
// throughput and the host-parallel scaling curve, when present.
func summarize(f *benchFile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "- bench %s (%s, %d CPUs): %d benchmarks", f.Date, f.Go, f.CPUs, len(f.Results))
	if v, ok := metricOf(f, "BenchmarkTableI_ParallelMemory", "sim_cycle/sec"); ok {
		fmt.Fprintf(&b, "; TableI par-mem %s sim_cycle/sec", compact(v))
	}
	var scale []string
	for _, w := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("BenchmarkHostParallelScaling/Parallel,_memory_intensive/workers-%d", w)
		if v, ok := metricOf(f, name, "sim_cycle/sec"); ok {
			scale = append(scale, fmt.Sprintf("w%d=%s", w, compact(v)))
		}
	}
	if len(scale) > 0 {
		fmt.Fprintf(&b, "; scaling %s", strings.Join(scale, " "))
	}
	return b.String()
}

// metricOf finds a benchmark by name, tolerating the -<GOMAXPROCS> suffix
// go test appends on multi-core hosts.
func metricOf(f *benchFile, name, metric string) (float64, bool) {
	for _, r := range f.Results {
		if r.Name == name || strings.HasPrefix(r.Name, name+"-") {
			v, ok := r.Metrics[metric]
			return v, ok
		}
	}
	return 0, false
}

func compact(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
