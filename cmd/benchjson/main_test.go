package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkTableI_ParallelMemory-8   6   196666173 ns/op   48992 sim_cycle/sec   79162944 B/op   188908 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkTableI_ParallelMemory-8" || r.Iterations != 6 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 196666173 || r.Metrics["sim_cycle/sec"] != 48992 {
		t.Fatalf("metrics %+v", r.Metrics)
	}

	for _, bad := range []string{
		"PASS",
		"cpu: Intel(R) Xeon(R)",
		"BenchmarkShort",
		"BenchmarkX notanint 5 ns/op",
		"BenchmarkX 5 notafloat ns/op",
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("parsed %q, want rejection", bad)
		}
	}
}

func TestSummarize(t *testing.T) {
	f := &benchFile{Date: "2026-08-06", Go: "go1.24.0", CPUs: 1, Results: []benchResult{
		{Name: "BenchmarkTableI_ParallelMemory-8", Iterations: 6,
			Metrics: map[string]float64{"sim_cycle/sec": 48992}},
		{Name: "BenchmarkHostParallelScaling/Parallel,_memory_intensive/workers-1", Iterations: 5,
			Metrics: map[string]float64{"sim_cycle/sec": 41300}},
		{Name: "BenchmarkHostParallelScaling/Parallel,_memory_intensive/workers-4-8", Iterations: 5,
			Metrics: map[string]float64{"sim_cycle/sec": 43300}},
	}}
	s := summarize(f)
	for _, want := range []string{
		"bench 2026-08-06 (go1.24.0, 1 CPUs): 3 benchmarks",
		"TableI par-mem 49.0k sim_cycle/sec",
		"w1=41.3k", "w4=43.3k",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
	if strings.Contains(s, "w2=") {
		t.Errorf("summary invents missing worker counts: %s", s)
	}
}

func TestCompact(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{{48992, "49.0k"}, {1.5e6, "1.5M"}, {512, "512"}}
	for _, c := range cases {
		if got := compact(c.v); got != c.want {
			t.Errorf("compact(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	a := &benchFile{Schema: benchSchema, Date: "d1"}
	b := &benchFile{Schema: benchSchema, Date: "d2"}
	if err := appendHistory(path, a); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d lines:\n%s", len(lines), data)
	}
	var got benchFile
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != benchSchema || got.Date != "d2" {
		t.Fatalf("last entry %+v", got)
	}
}
