// Command xmtbatch drives a batch of simulation jobs to completion with
// per-job cycle budgets, periodic checkpoints, and bounded retry-with-backoff
// — the workflow the paper describes for long simulation campaigns (§III-E),
// hardened so a single wedged or slow job never sinks the batch
// (docs/ROBUSTNESS.md).
//
// Usage:
//
//	xmtbatch [flags] jobs.txt
//
// The jobs file holds one job per line:
//
//	name program.{s,c} [key=value ...]
//
// where the optional key=value pairs override the base configuration for
// that job only. Blank lines and lines starting with '#' are skipped.
//
// Examples:
//
//	xmtbatch -timeout 5000000 -retries 3 -out ckpt/ jobs.txt
//	xmtbatch -config chip1024 -set dram_latency=40 jobs.txt
//	xmtbatch -checkpoint-every 1000000 -timeout 2000000 jobs.txt
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xmtgo/internal/asm"
	"xmtgo/internal/batch"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/sigctl"
	"xmtgo/internal/sim/metrics"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var sets listFlag
	var (
		cfgName   = flag.String("config", "fpga64", "machine preset: fpga64 or chip1024")
		timeout   = flag.Int64("timeout", 0, "first-attempt cycle budget per job (0 = unlimited, disables retries)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "checkpoint each job every N cluster cycles (0 = only program-requested checkpoints)")
		retries   = flag.Int("retries", 2, "retry attempts per failed or timed-out job")
		backoff   = flag.Float64("backoff", 2, "cycle-budget multiplier between attempts")
		outDir    = flag.String("out", "", "directory for per-job checkpoint files (empty = retries restart from scratch)")
		workers   = flag.Int("workers", 0, "host worker goroutines for the cluster shards (0 = GOMAXPROCS, 1 = serial; results identical)")
		quiet     = flag.Bool("q", false, "suppress per-attempt progress lines")

		serveAddr    = flag.String("serve", "", "serve live metrics on this address while the batch runs (/metrics, /status, /stream)")
		sampleCycles = flag.Int64("sample-cycles", -1, "interval-sampler period for -serve in cluster cycles (-1 = keep the preset's sample_cycles)")
		pprofFlag    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -serve address")
	)
	flag.Var(&sets, "set", "override one configuration key=value for every job (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xmtbatch [flags] jobs.txt")
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := config.Preset(*cfgName)
	if err != nil {
		fatal(err)
	}
	for _, kv := range sets {
		if err := cfg.Set(kv); err != nil {
			fatal(err)
		}
	}
	if *workers != 0 {
		cfg.HostWorkers = *workers
	}

	jobs, err := loadJobs(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(jobs) == 0 {
		fatal(fmt.Errorf("%s: no jobs", flag.Arg(0)))
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *sampleCycles >= 0 {
		cfg.SampleCycles = *sampleCycles
	}

	opts := batch.Options{
		Config:          cfg,
		TimeoutCycles:   *timeout,
		CheckpointEvery: *ckptEvery,
		Retries:         *retries,
		Backoff:         *backoff,
		OutDir:          *outDir,
		SampleCycles:    cfg.SampleCycles,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *serveAddr != "" {
		msrv := metrics.NewServer()
		if *pprofFlag {
			msrv.EnablePprof()
		}
		addr, err := msrv.ListenAndServe(*serveAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s (/metrics /status /stream)\n", addr)
		opts.Monitor = msrv
		defer msrv.Close()
	} else if *pprofFlag {
		fatal(fmt.Errorf("-pprof requires -serve"))
	}
	// First SIGINT/SIGTERM checkpoints the running job at its next quiescent
	// point (persisted under -out as usual), skips the jobs not yet started,
	// and exits cleanly; a second signal forces exit.
	intr := &batch.Interrupt{}
	opts.Interrupt = intr
	stopSig := sigctl.Notify("xmtbatch", intr.Trigger)
	defer stopSig()
	results := batch.Run(jobs, opts)

	failed := 0
	interrupted := 0
	for _, r := range results {
		if errors.Is(r.Err, batch.ErrInterrupted) {
			interrupted++
			fmt.Printf("INTR %-20s attempts=%d resumes=%d cycles=%d (checkpoint saved; re-run to resume)\n",
				r.Name, r.Attempts, r.Resumes, r.Cycles)
			continue
		}
		if r.Err != nil {
			failed++
			fmt.Printf("FAIL %-20s attempts=%d resumes=%d: %v\n", r.Name, r.Attempts, r.Resumes, r.Err)
			continue
		}
		fmt.Printf("ok   %-20s attempts=%d resumes=%d cycles=%d instrs=%d output=%q\n",
			r.Name, r.Attempts, r.Resumes, r.Cycles, r.Instrs, r.Output)
	}
	if interrupted > 0 {
		fmt.Fprintf(os.Stderr, "xmtbatch: interrupted; %d of %d jobs not finished\n",
			interrupted+len(jobs)-len(results), len(jobs))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "xmtbatch: %d of %d jobs failed\n", failed, len(results))
		os.Exit(1)
	}
}

// loadJobs parses the jobs file: one "name program [key=value ...]" per
// line, assembling .s sources directly and compiling anything else as XMTC.
func loadJobs(path string) ([]batch.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var jobs []batch.Job
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"name program [key=value ...]\"", path, lineNo)
		}
		name, progPath := fields[0], fields[1]
		if seen[name] {
			return nil, fmt.Errorf("%s:%d: duplicate job name %q", path, lineNo, name)
		}
		seen[name] = true
		for _, kv := range fields[2:] {
			if !strings.Contains(kv, "=") {
				return nil, fmt.Errorf("%s:%d: override %q is not key=value", path, lineNo, kv)
			}
		}
		prog, err := loadProgram(progPath)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		jobs = append(jobs, batch.Job{Name: name, Prog: prog, Sets: fields[2:]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

func loadProgram(path string) (*asm.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var unit *asm.Unit
	if filepath.Ext(path) == ".s" {
		unit, err = asm.Parse(path, string(src))
		if err != nil {
			return nil, err
		}
	} else {
		res, err := codegen.Compile(path, string(src), codegen.Options{OptLevel: 1, PrefetchSlots: 4})
		if err != nil {
			return nil, err
		}
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, w)
		}
		unit = res.Unit
	}
	return asm.Assemble(unit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtbatch:", err)
	os.Exit(1)
}
