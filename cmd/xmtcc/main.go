// Command xmtcc is the XMTC compiler driver: it translates XMTC source to
// optimized XMT assembly through the three-pass pipeline (source-to-source
// pre-pass with outlining, optimizing core pass, verifying post-pass).
//
// Usage:
//
//	xmtcc [flags] program.c
//
// Flags mirror the toolchain's options: -O sets the optimization level,
// -cluster enables virtual-thread clustering, -no-prefetch / -no-nbstore
// disable the XMT-specific optimizations for ablation studies,
// -dump-prepass shows the outlined program (the paper's Fig. 8c view), and
// -scramble-layout reproduces the GCC basic-block placement issue of
// Fig. 9 so the post-pass relocation can be observed with -v.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"xmtgo/internal/codegen"
	"xmtgo/internal/diag"
)

func main() {
	var (
		out         = flag.String("o", "", "output assembly file (default: stdout)")
		optLevel    = flag.Int("O", 1, "optimization level (0 or 1)")
		cluster     = flag.Int("cluster", 0, "virtual-thread clustering factor (0/1 = off)")
		noPrefetch  = flag.Bool("no-prefetch", false, "disable compiler prefetch insertion")
		noNBStore   = flag.Bool("no-nbstore", false, "disable non-blocking stores")
		prefSlots   = flag.Int("prefetch-slots", 4, "max prefetches per virtual thread")
		noOutline   = flag.Bool("no-outline", false, "disable the outlining pre-pass (unsafe mode)")
		scramble    = flag.Bool("scramble-layout", false, "mimic GCC's misplaced spawn blocks (Fig. 9); the post-pass fixes them")
		dumpPrepass = flag.Bool("dump-prepass", false, "print the pre-passed (outlined) program and exit")
		dumpIR      = flag.Bool("dump-ir", false, "print the optimized IR of every function and exit")
		analyze     = flag.Bool("analyze", false, "run the static analyzer (the xmtlint checks) before code generation")
		werror      = flag.Bool("Werror", false, "treat analyzer and front-end warnings as errors")
		verbose     = flag.Bool("v", false, "print compilation statistics and post-pass diagnostics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xmtcc [flags] program.c")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	opts := codegen.Options{
		OptLevel:       *optLevel,
		NoNBStore:      *noNBStore,
		NoPrefetch:     *noPrefetch,
		PrefetchSlots:  *prefSlots,
		ClusterFactor:  *cluster,
		DisableOutline: *noOutline,
		ScrambleLayout: *scramble,
		DumpIR:         *dumpIR,
		Analyze:        *analyze,
	}
	res, err := codegen.Compile(file, string(src), opts)
	if err != nil {
		fatal(err)
	}
	// Front-end warnings and analyzer/post-pass diagnostics share one
	// stream; notes are chatty, so they stay behind -analyze / -v.
	ds := append(append([]diag.Diagnostic(nil), res.Warnings...), res.Diagnostics...)
	diag.Sort(ds)
	if *werror {
		ds = diag.Promote(ds)
	}
	errs := 0
	for _, d := range ds {
		if d.Severity == diag.Note && !*analyze && !*verbose {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		if d.Severity >= diag.Error {
			errs++
		}
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "xmtcc: %d error(s), no output written\n", errs)
		os.Exit(1)
	}
	if *dumpPrepass {
		fmt.Print(res.PrepassSource)
		return
	}
	if *dumpIR {
		names := make([]string, 0, len(res.IRDumps))
		for n := range res.IRDumps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(res.IRDumps[n])
		}
		return
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "functions: %d (outlined spawns: %d)\n", res.Stats.Functions, res.Stats.OutlinedSpawns)
		fmt.Fprintf(os.Stderr, "non-blocking stores: %d, prefetches inserted: %d\n", res.Stats.NonBlocking, res.Stats.Prefetches)
		fmt.Fprintf(os.Stderr, "post-pass relocated blocks: %d\n", res.Stats.RelocatedBlocks)
	}
	text := printUnit(res)
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
}

func printUnit(res *codegen.Result) string {
	s := asmPrint(res)
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtcc:", err)
	os.Exit(1)
}
