package main

import (
	"xmtgo/internal/asm"
	"xmtgo/internal/codegen"
)

func asmPrint(res *codegen.Result) string { return asm.Print(res.Unit) }
