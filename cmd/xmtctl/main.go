// Command xmtctl is the client for the xmtd simulation daemon: it submits
// jobs, queries and waits on them, cancels them, and drains the daemon,
// speaking the xmt-jobs/v1 line-JSON protocol (docs/XMTD.md).
//
// Usage:
//
//	xmtctl -addr unix:/tmp/xmtd.sock <command> [flags]
//
// Commands:
//
//	submit  -name N [-tenant T] [-priority P] [-kind asm|xmtc] [-budget C]
//	        [-deadline C] [-set k=v ...] program.{s,c}
//	status  <job-id>
//	wait    [-timeout D] <job-id>
//	list    [-tenant T]
//	cancel  <job-id>
//	trace   [-o file]
//	logs    [-level L] [-job ID] [-n N]
//	ping
//	drain
//
// Examples:
//
//	xmtctl -addr unix:/tmp/x.sock submit -name sort -priority 5 sort.s
//	xmtctl -addr 127.0.0.1:9901 wait -timeout 60s j3
//	xmtctl -addr 127.0.0.1:9901 trace -o trace.json
//	xmtctl -addr 127.0.0.1:9901 logs -level warn -n 50
//	xmtctl -addr 127.0.0.1:9901 drain
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xmtgo/internal/daemon"
)

// exitCode carries run's exit status out of deeply nested helpers (usage,
// fatal); run recovers it so tests can drive the CLI in-process.
type exitCode int

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) (code int) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(c)
		}
	}()
	addr := "unix:/tmp/xmtd.sock"
	jsonOut := false
	// Global flags may precede the command.
	for len(args) > 0 {
		switch {
		case args[0] == "-addr" && len(args) > 1:
			addr, args = args[1], args[2:]
		case strings.HasPrefix(args[0], "-addr="):
			addr, args = strings.TrimPrefix(args[0], "-addr="), args[1:]
		case args[0] == "-json":
			jsonOut, args = true, args[1:]
		default:
			goto done
		}
	}
done:
	if len(args) == 0 {
		usage()
	}
	cmd, args := args[0], args[1:]

	c, err := daemon.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "submit":
		cmdSubmit(c, args, jsonOut)
	case "status":
		if len(args) != 1 {
			usage()
		}
		st, err := c.Status(args[0])
		if err != nil {
			fatal(err)
		}
		printJob(st, jsonOut)
	case "wait":
		cmdWait(c, args, jsonOut)
	case "list":
		tenant := ""
		if len(args) == 2 && args[0] == "-tenant" {
			tenant = args[1]
		} else if len(args) != 0 {
			usage()
		}
		jobs, err := c.List(tenant)
		if err != nil {
			fatal(err)
		}
		if jsonOut {
			emitJSON(jobs)
			return 0
		}
		for i := range jobs {
			printJob(&jobs[i], false)
		}
	case "cancel":
		if len(args) != 1 {
			usage()
		}
		st, err := c.Cancel(args[0])
		if err != nil {
			fatal(err)
		}
		printJob(st, jsonOut)
	case "trace":
		cmdTrace(c, args)
	case "logs":
		cmdLogs(c, args)
	case "ping":
		info, err := c.Ping()
		if err != nil {
			fatal(err)
		}
		emitJSON(info)
	case "drain":
		info, err := c.Drain()
		if err != nil {
			fatal(err)
		}
		if jsonOut {
			emitJSON(info)
		} else {
			fmt.Printf("drained: completed=%d failed=%d canceled=%d queued=%d\n",
				info.Completed, info.Failed, info.Canceled, info.QueueDepth)
		}
	default:
		usage()
	}
	return 0
}

func cmdSubmit(c *daemon.Client, args []string, jsonOut bool) {
	spec := &daemon.JobSpec{}
	var sets []string
	var file string
	for i := 0; i < len(args); i++ {
		need := func() string {
			i++
			if i >= len(args) {
				usage()
			}
			return args[i]
		}
		switch args[i] {
		case "-name":
			spec.Name = need()
		case "-tenant":
			spec.Tenant = need()
		case "-priority":
			fmt.Sscanf(need(), "%d", &spec.Priority)
		case "-kind":
			spec.Kind = need()
		case "-budget":
			fmt.Sscanf(need(), "%d", &spec.BudgetCycles)
		case "-deadline":
			fmt.Sscanf(need(), "%d", &spec.DeadlineCycles)
		case "-set":
			sets = append(sets, need())
		default:
			if strings.HasPrefix(args[i], "-") || file != "" {
				usage()
			}
			file = args[i]
		}
	}
	if file == "" {
		usage()
	}
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	spec.Source = string(src)
	spec.Sets = sets
	if spec.Kind == "" && filepath.Ext(file) != ".s" {
		spec.Kind = "xmtc"
	}
	if spec.Name == "" {
		spec.Name = strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
	}
	st, err := c.Submit(spec)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		emitJSON(st)
	} else {
		fmt.Println(st.ID)
	}
}

func cmdWait(c *daemon.Client, args []string, jsonOut bool) {
	timeout := time.Duration(0)
	id := ""
	for i := 0; i < len(args); i++ {
		if args[i] == "-timeout" && i+1 < len(args) {
			d, err := time.ParseDuration(args[i+1])
			if err != nil {
				fatal(err)
			}
			timeout = d
			i++
			continue
		}
		if id != "" {
			usage()
		}
		id = args[i]
	}
	if id == "" {
		usage()
	}
	st, err := c.Wait(id, timeout)
	if err != nil {
		fatal(err)
	}
	printJob(st, jsonOut)
	if st.State != daemon.StateDone {
		panic(exitCode(1))
	}
}

// cmdTrace fetches the daemon's job-lifecycle trace as Chrome trace-event
// JSON — load the file into Perfetto or chrome://tracing.
func cmdTrace(c *daemon.Client, args []string) {
	out := ""
	for i := 0; i < len(args); i++ {
		if args[i] == "-o" && i+1 < len(args) {
			out = args[i+1]
			i++
			continue
		}
		usage()
	}
	data, err := c.Trace()
	if err != nil {
		fatal(err)
	}
	if out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", out)
}

// cmdLogs fetches the daemon's buffered structured log records as ndjson,
// oldest first.
func cmdLogs(c *daemon.Client, args []string) {
	level, job := "", ""
	max := 0
	for i := 0; i < len(args); i++ {
		need := func() string {
			i++
			if i >= len(args) {
				usage()
			}
			return args[i]
		}
		switch args[i] {
		case "-level":
			level = need()
		case "-job":
			job = need()
		case "-n":
			fmt.Sscanf(need(), "%d", &max)
		default:
			usage()
		}
	}
	recs, err := c.Logs(level, job, max)
	if err != nil {
		fatal(err)
	}
	for _, r := range recs {
		fmt.Println(string(r))
	}
}

func printJob(st *daemon.JobStatus, jsonOut bool) {
	if jsonOut {
		emitJSON(st)
		return
	}
	line := fmt.Sprintf("%-6s %-12s tenant=%s prio=%d state=%s attempts=%d resumes=%d preemptions=%d cycles=%d",
		st.ID, st.Name, st.Tenant, st.Priority, st.State, st.Attempt, st.Resumes, st.Preemptions, st.Cycles)
	if st.Result != nil {
		if st.Result.Err != "" {
			line += fmt.Sprintf(" err=%q", st.Result.Err)
		} else {
			line += fmt.Sprintf(" output=%q memhash=%s", st.Result.Output, st.Result.MemHash)
		}
	}
	fmt.Println(line)
}

func emitJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xmtctl [-addr A] [-json] <command> [flags]
commands:
  submit  -name N [-tenant T] [-priority P] [-kind asm|xmtc] [-budget C]
          [-deadline C] [-set k=v ...] program.{s,c}
  status  <job-id>
  wait    [-timeout D] <job-id>
  list    [-tenant T]
  cancel  <job-id>
  trace   [-o file]
  logs    [-level debug|info|warn|error] [-job ID] [-n N]
  ping
  drain`)
	panic(exitCode(2))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtctl:", err)
	panic(exitCode(1))
}
