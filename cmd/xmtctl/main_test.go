package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmtgo/internal/config"
	"xmtgo/internal/daemon"
)

const (
	shortProg = `
        .data
A:      .space 64
        .text
        .global main
main:
        li    $t0, 2000
        li    $t2, 0
Lloop:  addiu $t2, $t2, 1
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        la    $t1, A
        sw    $t2, 0($t1)
        lw    $v0, 0($t1)
        sys   1
        sys   0
`
	longProg = `
        .text
        .global main
main:
        li    $t0, 2000000
Lloop:  addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        sys   0
`
)

// startTestDaemon serves an in-process daemon on a unix socket and returns
// its -addr value plus a direct client for assertions the CLI prints to
// stdout (job ids).
func startTestDaemon(t *testing.T) (addr string, c *daemon.Client) {
	t.Helper()
	cfg, err := config.Preset("fpga64")
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Set("mem_bytes=1048576"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := daemon.New(daemon.Options{
		Config:          cfg,
		DataDir:         filepath.Join(dir, "data"),
		Workers:         1,
		CheckpointEvery: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)
	t.Cleanup(func() { d.Close() })

	addr = "unix:" + sock
	c, err = daemon.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return addr, c
}

func writeProg(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCommands drives every xmtctl subcommand in-process against a live
// daemon and asserts exit codes; job state is verified through a direct
// client since run prints to the real stdout.
func TestRunCommands(t *testing.T) {
	addr, c := startTestDaemon(t)
	prog := writeProg(t, "short.s", shortProg)

	if got := run([]string{"-addr", addr, "ping"}); got != 0 {
		t.Fatalf("ping: run = %d, want 0", got)
	}
	if got := run([]string{"-addr=" + addr, "-json", "submit", "-name", "s1", "-tenant", "alice",
		"-priority", "3", "-kind", "asm", "-budget", "10000000", "-deadline", "0",
		"-set", "dram_latency=40", prog}); got != 0 {
		t.Fatalf("submit: run = %d, want 0", got)
	}
	jobs, err := c.List("alice")
	if err != nil || len(jobs) != 1 {
		t.Fatalf("list after submit: %v %v", jobs, err)
	}
	id := jobs[0].ID

	if got := run([]string{"-addr", addr, "wait", "-timeout", "30s", id}); got != 0 {
		t.Fatalf("wait: run = %d, want 0", got)
	}
	if got := run([]string{"-addr", addr, "status", id}); got != 0 {
		t.Fatalf("status: run = %d, want 0", got)
	}
	if got := run([]string{"-addr", addr, "-json", "status", id}); got != 0 {
		t.Fatalf("status -json: run = %d, want 0", got)
	}
	if got := run([]string{"-addr", addr, "list"}); got != 0 {
		t.Fatalf("list: run = %d, want 0", got)
	}
	if got := run([]string{"-addr", addr, "-json", "list", "-tenant", "alice"}); got != 0 {
		t.Fatalf("list -tenant: run = %d, want 0", got)
	}

	// trace -o writes a Chrome trace-event document carrying the finished
	// job's lifecycle; logs returns its structured records.
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	if got := run([]string{"-addr", addr, "trace", "-o", traceFile}); got != 0 {
		t.Fatalf("trace: run = %d, want 0", got)
	}
	traceData, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file carries no events")
	}
	if !strings.Contains(string(traceData), `"`+id+`"`) {
		t.Errorf("trace file lacks job %s", id)
	}
	if got := run([]string{"-addr", addr, "logs", "-level", "info", "-job", id, "-n", "10"}); got != 0 {
		t.Fatalf("logs: run = %d, want 0", got)
	}

	// Fill the single worker, then cancel a queued job; waiting on the
	// canceled job must exit 1.
	long := writeProg(t, "long.s", longProg)
	if got := run([]string{"-addr", addr, "submit", long}); got != 0 {
		t.Fatalf("submit long: run = %d, want 0", got)
	}
	if got := run([]string{"-addr", addr, "submit", "-name", "victim", prog}); got != 0 {
		t.Fatalf("submit victim: run = %d, want 0", got)
	}
	jobs, err = c.List("")
	if err != nil {
		t.Fatal(err)
	}
	victim := jobs[len(jobs)-1].ID
	if got := run([]string{"-addr", addr, "cancel", victim}); got != 0 {
		t.Fatalf("cancel: run = %d, want 0", got)
	}
	if got := run([]string{"-addr", addr, "wait", "-timeout", "30s", victim}); got != 1 {
		t.Fatalf("wait canceled: run = %d, want 1", got)
	}

	// A .c file defaults to kind xmtc; garbage source is a typed
	// compile_error, which the CLI reports as exit 1.
	bad := writeProg(t, "bad.c", "not xmtc at all {{{")
	if got := run([]string{"-addr", addr, "submit", bad}); got != 1 {
		t.Fatalf("submit bad xmtc: run = %d, want 1", got)
	}

	if got := run([]string{"-addr", addr, "drain"}); got != 0 {
		t.Fatalf("drain: run = %d, want 0", got)
	}
	waitGone := time.Now().Add(10 * time.Second)
	for {
		if got := run([]string{"-addr", addr, "ping"}); got == 1 {
			break // dial refused: daemon gone
		}
		if time.Now().After(waitGone) {
			t.Fatal("daemon still answering after drain")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"bad dial", []string{"-addr", "unix:/nonexistent/d.sock", "ping"}, 1},
	} {
		if got := run(tc.args); got != tc.want {
			t.Errorf("%s: run = %d, want %d", tc.name, got, tc.want)
		}
	}

	addr, _ := startTestDaemon(t)
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"unknown command", []string{"-addr", addr, "bogus"}, 2},
		{"status no id", []string{"-addr", addr, "status"}, 2},
		{"wait no id", []string{"-addr", addr, "wait"}, 2},
		{"cancel no id", []string{"-addr", addr, "cancel"}, 2},
		{"list extra args", []string{"-addr", addr, "list", "x", "y", "z"}, 2},
		{"submit no file", []string{"-addr", addr, "submit", "-name", "x"}, 2},
		{"submit two files", []string{"-addr", addr, "submit", "a.s", "b.s"}, 2},
		{"submit unreadable", []string{"-addr", addr, "submit", "/nonexistent/p.s"}, 1},
		{"wait bad timeout", []string{"-addr", addr, "wait", "-timeout", "zzz", "j1"}, 1},
		{"status unknown job", []string{"-addr", addr, "status", "j999"}, 1},
		{"trace bad flag", []string{"-addr", addr, "trace", "-x"}, 2},
		{"logs bad flag", []string{"-addr", addr, "logs", "-x"}, 2},
		{"logs dangling level", []string{"-addr", addr, "logs", "-level"}, 2},
	} {
		if got := run(tc.args); got != tc.want {
			t.Errorf("%s: run = %d, want %d", tc.name, got, tc.want)
		}
	}
}
