// Command xmtd is the simulation-as-a-service daemon: a long-running server
// that accepts simulation jobs over a unix or TCP socket (the xmt-jobs/v1
// line-JSON protocol, docs/XMTD.md), runs them on a worker pool with
// priorities, per-tenant quotas, checkpoint-backed preemption and bounded
// retry-with-backoff, and journals every state change durably — kill -9 the
// daemon at any instant and the next xmtd on the same -data directory
// resumes every unfinished job from its last checkpoint.
//
// Usage:
//
//	xmtd -listen unix:/tmp/xmtd.sock -data /var/lib/xmtd [flags]
//
// Examples:
//
//	xmtd -listen 127.0.0.1:9901 -data d/ -workers 2 -checkpoint-every 50000
//	xmtd -listen unix:/tmp/x.sock -data d/ -budget 10000000 -retries 2
//	xmtd -listen :9901 -data d/ -serve :8080 -max-queued 64
//	xmtd -listen :9901 -data d/ -serve :8080 -pprof -trace trace.json
//
// Observability (docs/OBSERVABILITY.md): progress lines are structured JSON
// (-log-level sets the floor), -serve exposes /metrics latency histograms
// and /logs, -trace writes the job-lifecycle trace (open in Perfetto or
// chrome://tracing) on exit, and -pprof adds /debug/pprof/.
//
// SIGTERM or SIGINT drains gracefully: admission stops, running jobs
// checkpoint at their next quiescent boundary, the journal gets its
// clean-shutdown marker, and xmtd exits 0 with zero lost jobs. A second
// signal forces immediate exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"xmtgo/internal/config"
	"xmtgo/internal/daemon"
	"xmtgo/internal/obs"
	"xmtgo/internal/sim/metrics"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// exitCode carries run's exit status out of fatal; run recovers it so tests
// can drive the daemon in-process.
type exitCode int

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) (code int) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(c)
		}
	}()
	fs := flag.NewFlagSet("xmtd", flag.ExitOnError)
	var sets listFlag
	var (
		listenAddr = fs.String("listen", "unix:/tmp/xmtd.sock", "job API address: unix:/path or [tcp:]host:port")
		dataDir    = fs.String("data", "xmtd-data", "durable state directory (journal + checkpoint envelopes)")
		cfgName    = fs.String("config", "fpga64", "machine preset: fpga64 or chip1024")
		workers    = fs.Int("workers", 1, "concurrent simulation workers")
		ckptEvery  = fs.Int64("checkpoint-every", 100000, "checkpoint running jobs every N cluster cycles (also bounds preemption latency)")
		budget     = fs.Int64("budget", 0, "default first-attempt cycle budget per job (0 = unlimited)")
		retries    = fs.Int("retries", 2, "retry attempts after a timeout or watchdog trip")
		backoff    = fs.Float64("backoff", 2, "budget and watchdog multiplier between attempts")
		maxQueued  = fs.Int("max-queued", 256, "global ready-queue bound (beyond it: queue_full)")

		tenantQueued  = fs.Int("tenant-max-queued", 0, "per-tenant queued-job quota (0 = unlimited)")
		tenantRunning = fs.Int("tenant-max-running", 0, "per-tenant running-job quota (0 = unlimited)")
		tenantBudget  = fs.Int64("tenant-max-budget", 0, "per-tenant cap on requested budget_cycles (0 = unlimited)")

		serveAddr    = fs.String("serve", "", "serve live metrics on this address (/metrics /status /stream?job=ID /logs)")
		sampleCycles = fs.Int64("sample-cycles", -1, "interval-sampler period for -serve (-1 = preset's sample_cycles)")
		quiet        = fs.Bool("q", false, "suppress progress lines")

		logLevel  = fs.String("log-level", "info", "minimum structured-log level: debug, info, warn or error")
		traceOut  = fs.String("trace", "", "write the lifecycle trace (Chrome trace-event JSON) to this file on exit")
		pprofFlag = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -serve address")
	)
	fs.Var(&sets, "set", "override one configuration key=value (repeatable)")
	fs.Parse(args)

	cfg, err := config.Preset(*cfgName)
	if err != nil {
		fatal(err)
	}
	for _, kv := range sets {
		if err := cfg.Set(kv); err != nil {
			fatal(err)
		}
	}
	if *sampleCycles >= 0 {
		cfg.SampleCycles = *sampleCycles
	}

	opts := daemon.Options{
		Config:          cfg,
		DataDir:         *dataDir,
		Workers:         *workers,
		BudgetCycles:    *budget,
		CheckpointEvery: *ckptEvery,
		Retries:         *retries,
		Backoff:         *backoff,
		MaxQueued:       *maxQueued,

		TenantMaxQueued:  *tenantQueued,
		TenantMaxRunning: *tenantRunning,
		TenantMaxBudget:  *tenantBudget,

		SampleCycles: cfg.SampleCycles,

		LogLevel: obs.ParseLevel(*logLevel),
	}
	if !*quiet {
		opts.Log = os.Stderr
	}

	var msrv *metrics.Server
	if *serveAddr != "" {
		msrv = metrics.NewServer()
		if *pprofFlag {
			msrv.EnablePprof()
		}
		addr, err := msrv.ListenAndServe(*serveAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s (/metrics /status /stream)\n", addr)
		opts.Monitor = msrv
	} else if *pprofFlag {
		fatal(fmt.Errorf("-pprof requires -serve"))
	}

	d, err := daemon.New(opts)
	if err != nil {
		fatal(err)
	}

	network, address := daemon.ParseAddr(*listenAddr)
	if network == "unix" {
		// A stale socket from a crashed daemon would block the bind; the
		// journal, not the socket, is the source of truth.
		os.Remove(address)
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "xmtd listening on %s:%s (data %s)\n", network, ln.Addr().String(), *dataDir)

	// First signal: graceful drain. Second: force exit.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "xmtd: draining (signal again to force exit)")
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "xmtd: forced exit")
			os.Exit(1)
		}()
		if err := d.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "xmtd: drain:", err)
		}
		ln.Close()
	}()

	if err := d.Serve(ln); err != nil {
		fatal(err)
	}
	// Serve returned because the listener closed: drain (signal or API op)
	// already checkpointed running jobs and sealed the journal.
	if msrv != nil {
		msrv.Close()
	}
	if *traceOut != "" {
		data, err := d.TraceJSON()
		if err == nil {
			err = os.WriteFile(*traceOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmtd: trace:", err)
		} else {
			fmt.Fprintf(os.Stderr, "xmtd: trace written to %s\n", *traceOut)
		}
	}
	if network == "unix" {
		os.Remove(address)
	}
	fmt.Fprintln(os.Stderr, "xmtd: exit")
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtd:", err)
	panic(exitCode(1))
}
