package main

import (
	"path/filepath"
	"testing"
	"time"

	"xmtgo/internal/daemon"
)

const testProg = `
        .data
A:      .space 64
        .text
        .global main
main:
        li    $t0, 2000
        li    $t2, 0
Lloop:  addiu $t2, $t2, 1
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        la    $t1, A
        sw    $t2, 0($t1)
        lw    $v0, 0($t1)
        sys   1
        sys   0
`

// TestRunServeSubmitDrain drives the daemon entrypoint in-process: start it
// on a unix socket with metrics serving on, submit and finish a job over the
// protocol, drain, and require the clean exit code.
func TestRunServeSubmitDrain(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "d.sock")
	code := make(chan int, 1)
	go func() {
		code <- run([]string{
			"-listen", "unix:" + sock,
			"-data", filepath.Join(dir, "data"),
			"-workers", "1",
			"-checkpoint-every", "50000",
			"-set", "mem_bytes=1048576",
			"-serve", "127.0.0.1:0",
		})
	}()

	var c *daemon.Client
	deadline := time.Now().Add(30 * time.Second)
	for {
		var err error
		if c, err = daemon.Dial("unix:" + sock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c.Close()

	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	st, err := c.Submit(&daemon.JobSpec{Name: "t", Kind: "asm", Source: testProg})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(st.ID, 30*time.Second)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != daemon.StateDone || fin.Result == nil || fin.Result.Output != "2000" {
		t.Fatalf("job finished %s with %+v", fin.State, fin.Result)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case got := <-code:
		if got != 0 {
			t.Fatalf("run exited %d after drain, want 0", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after drain")
	}
}

func TestRunFatalPaths(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad preset", []string{"-config", "nope", "-data", filepath.Join(dir, "a")}},
		{"bad set", []string{"-set", "bogus", "-data", filepath.Join(dir, "b")}},
		{"bad serve addr", []string{"-serve", "127.0.0.1:99999", "-data", filepath.Join(dir, "c")}},
		{"bad listen addr", []string{"-listen", "unix:" + filepath.Join(dir, "missing", "d.sock"), "-data", filepath.Join(dir, "d")}},
	} {
		if got := run(tc.args); got != 1 {
			t.Errorf("%s: run = %d, want 1", tc.name, got)
		}
	}
}
