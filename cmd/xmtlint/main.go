// Command xmtlint is the XMTC static analyzer: it runs the registered
// analysis passes (package analysis) over one or more source files and
// reports memory-model races, illegal spawn dataflow, prefix-sum misuse
// and volatile misuse as file:line:col diagnostics.
//
// Usage:
//
//	xmtlint [flags] program.c ...
//
// The exit status is 1 when any finding of warning severity or higher
// survives suppression, 2 on usage or I/O errors, and 0 otherwise, so the
// command can gate a build. Individual findings are silenced with a
// "// xmtlint:ignore <check>" comment on the flagged line or the line
// above; see docs/ANALYZER.md for the check catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmtgo/internal/analysis"
	"xmtgo/internal/codegen"
	"xmtgo/internal/diag"
)

func main() {
	var (
		checks  = flag.String("checks", "", "comma-separated checks to run (default: all; see -list)")
		list    = flag.Bool("list", false, "list the registered checks and exit")
		werror  = flag.Bool("Werror", false, "report warnings as errors")
		compile = flag.Bool("compile", false, "also compile error-free files to surface IR and post-pass findings (dead-load, memmodel)")
		jsonOut = flag.Bool("json", false, "emit diagnostics as machine-readable JSON (schema xmt-diag/v1) on stdout")
	)
	flag.Parse()
	if *list {
		for _, p := range analysis.Passes() {
			fmt.Printf("%-15s %s\n", p.Name, p.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xmtlint [flags] program.c ...")
		flag.Usage()
		os.Exit(2)
	}
	enabled, err := parseChecks(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmtlint:", err)
		os.Exit(2)
	}

	findings := 0
	var all []diag.Diagnostic
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmtlint:", err)
			os.Exit(2)
		}
		ds := lintFile(file, string(src), enabled, *compile)
		if *werror {
			ds = diag.Promote(ds)
		}
		for _, d := range ds {
			if !*jsonOut {
				fmt.Println(d)
			}
			if d.Severity >= diag.Warning {
				findings++
			}
		}
		all = append(all, ds...)
	}
	if *jsonOut {
		if err := diag.WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "xmtlint:", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// lintFile analyzes one source file. When compile is set and the front
// end is clean, the file is also run through the full pipeline so the
// IR-level dead-load notes and the post-pass memory-model verifier can
// report; their diagnostics honor the same suppression comments.
func lintFile(file, src string, enabled map[string]bool, compile bool) []diag.Diagnostic {
	ds := analysis.Analyze(file, src, enabled)
	if !compile || diag.Count(ds, diag.Error) > 0 {
		return ds
	}
	res, err := codegen.Compile(file, src, codegen.Options{OptLevel: 1, PrefetchSlots: 4, Analyze: true})
	if err != nil {
		return ds
	}
	var extra []diag.Diagnostic
	for _, d := range res.Diagnostics {
		// The AST passes already ran above; keep only the layers the
		// front-end analyzer cannot see.
		switch d.Check {
		case "dead-load", "memmodel", "postpass":
			extra = append(extra, d)
		}
	}
	ds = append(ds, analysis.Suppress(extra, strings.Split(src, "\n"))...)
	diag.Sort(ds)
	return ds
}

// parseChecks validates a -checks list against the registry.
func parseChecks(s string) (map[string]bool, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, p := range analysis.Passes() {
		known[p.Name] = true
	}
	enabled := make(map[string]bool)
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown check %q (see -list)", name)
		}
		enabled[name] = true
	}
	return enabled, nil
}
