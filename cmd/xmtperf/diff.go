package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// direction says which way a metric is allowed to move freely.
type direction int

const (
	lowerBetter  direction = iota // e.g. ns/op, cycles
	higherBetter                  // e.g. sim_cycle/sec
	infoOnly                      // reported, never gated (e.g. instruction counts)
)

type metric struct {
	Value float64
	Dir   direction
}

// artifact is one loaded performance file flattened to named metrics. Keys
// are "benchmark:metric" for benchjson files and plain counter names for
// counter snapshots.
type artifact struct {
	Label   string
	Metrics map[string]metric
}

type verdict string

const (
	verdictOK        verdict = "ok"
	verdictRegressed verdict = "REGRESSED"
	verdictImproved  verdict = "improved"
	verdictNew       verdict = "new"
	verdictGone      verdict = "gone"
)

type row struct {
	Name         string
	Old, New     float64
	DeltaPct     float64 // signed relative change, percent (NaN when Old==0)
	ThresholdPct float64
	Verdict      verdict
}

// benchFile mirrors cmd/benchjson's output (and one line of
// BENCH_HISTORY.jsonl).
type benchFile struct {
	Date    string `json:"date"`
	Results []struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	} `json:"results"`
}

// countersFile is the subset of the xmt-counters/v1 snapshot the differ
// gates on.
type countersFile struct {
	Schema       string `json:"schema"`
	Cycle        float64
	Instructions struct {
		Total float64 `json:"total"`
	} `json:"instructions"`
	Stalls map[string]float64 `json:"stalls"`
	Memory struct {
		CacheHits     float64 `json:"cache_hits"`
		CacheMisses   float64 `json:"cache_misses"`
		QueueFull     float64 `json:"queue_full"`
		DRAMTotal     float64 `json:"dram_total"`
		ICNTraversals float64 `json:"icn_traversals"`
		LoadLatency   struct {
			P50 float64 `json:"p50"`
			P99 float64 `json:"p99"`
		} `json:"load_latency"`
	} `json:"memory"`
	PrefixSum struct {
		Latency struct {
			P99 float64 `json:"p99"`
		} `json:"latency"`
	} `json:"prefix_sum"`
}

// loadArtifact reads a performance artifact, detecting its kind: a
// counters snapshot (by schema), a benchjson file (by "results"), or a
// .jsonl history whose last line is a benchjson entry.
func loadArtifact(path string) (*artifact, error) {
	if strings.HasSuffix(path, ".jsonl") {
		lines, err := readJSONLines(path)
		if err != nil {
			return nil, err
		}
		if len(lines) == 0 {
			return nil, fmt.Errorf("%s: empty history", path)
		}
		return parseArtifact(path+"#last", lines[len(lines)-1])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseArtifact(path, data)
}

// loadHistoryPair reads a .jsonl history and returns its last two entries
// as (old, new).
func loadHistoryPair(path string) (*artifact, *artifact, error) {
	lines, err := readJSONLines(path)
	if err != nil {
		return nil, nil, err
	}
	if len(lines) < 2 {
		return nil, nil, fmt.Errorf("%s: need at least 2 history entries, have %d", path, len(lines))
	}
	oldArt, err := parseArtifact(fmt.Sprintf("%s#%d", path, len(lines)-1), lines[len(lines)-2])
	if err != nil {
		return nil, nil, err
	}
	newArt, err := parseArtifact(fmt.Sprintf("%s#%d", path, len(lines)), lines[len(lines)-1])
	if err != nil {
		return nil, nil, err
	}
	return oldArt, newArt, nil
}

func readJSONLines(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines = append(lines, []byte(line))
	}
	return lines, sc.Err()
}

func parseArtifact(label string, data []byte) (*artifact, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %v", label, err)
	}
	if schema, ok := probe["schema"]; ok && strings.Contains(string(schema), "xmt-counters/") {
		return parseCounters(label, data)
	}
	if _, ok := probe["results"]; ok {
		return parseBench(label, data)
	}
	return nil, fmt.Errorf("%s: unrecognized artifact (want benchjson or xmt-counters/v1)", label)
}

func parseBench(label string, data []byte) (*artifact, error) {
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %v", label, err)
	}
	if bf.Date != "" {
		label = bf.Date
	}
	art := &artifact{Label: label, Metrics: map[string]metric{}}
	for _, r := range bf.Results {
		name := strings.TrimPrefix(r.Name, "Benchmark")
		for m, v := range r.Metrics {
			art.Metrics[name+":"+m] = metric{Value: v, Dir: metricDirection(m)}
		}
	}
	return art, nil
}

func parseCounters(label string, data []byte) (*artifact, error) {
	var cf countersFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("%s: %v", label, err)
	}
	var stalls float64
	for _, v := range cf.Stalls {
		stalls += v
	}
	art := &artifact{Label: label, Metrics: map[string]metric{
		"cycles":           {cf.Cycle, lowerBetter},
		"instrs":           {cf.Instructions.Total, infoOnly},
		"stall_cycles":     {stalls, lowerBetter},
		"cache_miss_rate":  {ratio(cf.Memory.CacheMisses, cf.Memory.CacheHits+cf.Memory.CacheMisses), lowerBetter},
		"cache_queue_full": {cf.Memory.QueueFull, lowerBetter},
		"dram_accesses":    {cf.Memory.DRAMTotal, lowerBetter},
		"icn_traversals":   {cf.Memory.ICNTraversals, lowerBetter},
		"load_latency_p99": {cf.Memory.LoadLatency.P99, lowerBetter},
		"ps_latency_p99":   {cf.PrefixSum.Latency.P99, lowerBetter},
	}}
	return art, nil
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// metricDirection classifies a benchmark metric name.
func metricDirection(m string) direction {
	switch {
	case strings.HasSuffix(m, "/sec"), strings.Contains(m, "rate"), strings.Contains(m, "ipc"):
		return higherBetter
	case m == "iterations":
		return infoOnly
	default: // ns/op, B/op, allocs/op, cycles, ...
		return lowerBetter
	}
}

// thresholdFor resolves the threshold for a metric key: exact key first,
// then the basename after the "bench:" prefix, then the default.
func thresholdFor(key string, defPct float64, overrides map[string]float64) float64 {
	if pct, ok := overrides[key]; ok {
		return pct
	}
	if _, base, ok := strings.Cut(key, ":"); ok {
		if pct, okO := overrides[base]; okO {
			return pct
		}
	}
	return defPct
}

// compare produces one row per metric present in either artifact, sorted by
// name. A metric regresses when it moves beyond its threshold in the bad
// direction; info-only metrics and zero-baseline metrics never regress.
func compare(oldArt, newArt *artifact, defPct float64, overrides map[string]float64) []row {
	keys := map[string]bool{}
	for k := range oldArt.Metrics {
		keys[k] = true
	}
	for k := range newArt.Metrics {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)

	rows := make([]row, 0, len(names))
	for _, name := range names {
		o, hasOld := oldArt.Metrics[name]
		n, hasNew := newArt.Metrics[name]
		r := row{Name: name, Old: o.Value, New: n.Value,
			ThresholdPct: thresholdFor(name, defPct, overrides)}
		switch {
		case !hasOld:
			r.Verdict, r.DeltaPct = verdictNew, math.NaN()
		case !hasNew:
			r.Verdict, r.DeltaPct = verdictGone, math.NaN()
		default:
			if o.Value == 0 {
				r.DeltaPct = math.NaN()
				r.Verdict = verdictOK
				break
			}
			r.DeltaPct = (n.Value - o.Value) / o.Value * 100
			dir := o.Dir
			bad := r.DeltaPct // lower-better: an increase is bad
			if dir == higherBetter {
				bad = -r.DeltaPct
			}
			switch {
			case dir == infoOnly:
				r.Verdict = verdictOK
			case bad > r.ThresholdPct:
				r.Verdict = verdictRegressed
			case bad < -r.ThresholdPct:
				r.Verdict = verdictImproved
			default:
				r.Verdict = verdictOK
			}
		}
		rows = append(rows, r)
	}
	return rows
}

// renderMarkdown formats the verdict table.
func renderMarkdown(oldLabel, newLabel string, rows []row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## xmtperf: %s → %s\n\n", oldLabel, newLabel)
	b.WriteString("| metric | old | new | Δ% | threshold | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		delta := "—"
		if !math.IsNaN(r.DeltaPct) {
			delta = fmt.Sprintf("%+.1f%%", r.DeltaPct)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %g%% | %s |\n",
			r.Name, num(r.Old), num(r.New), delta, r.ThresholdPct, r.Verdict)
	}
	return b.String()
}

// num renders values compactly: integers without decimals, rates with a few.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
