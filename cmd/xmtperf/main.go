// Command xmtperf compares two performance artifacts and fails on
// regression — the cross-run gate behind scripts/bench.sh and
// scripts/check.sh (docs/PERF.md, docs/OBSERVABILITY.md).
//
// It understands three artifact kinds, auto-detected from content:
//
//   - benchjson files (BENCH_*.json, schema of cmd/benchjson): every
//     benchmark metric is compared;
//   - counter snapshots (xmt-counters/v1, from -counters-json): a curated
//     set of performance-relevant counters is compared;
//   - .jsonl history files (BENCH_HISTORY.jsonl): the last line is used,
//     or the last two lines when only one file is given.
//
// Usage:
//
//	xmtperf [flags] old.json new.json
//	xmtperf [flags] BENCH_HISTORY.jsonl       # previous entry vs latest
//
// Each metric has a direction (lower-better for ns/op, B/op, cycles, …;
// higher-better for */sec rates) and a relative threshold: a change beyond
// the threshold in the bad direction is a regression. The verdict table is
// markdown; the exit status is 1 when any metric regressed.
//
// Examples:
//
//	xmtperf BENCH_2026-08-05.json BENCH_2026-08-06.json
//	xmtperf -threshold 5 old_counters.json new_counters.json
//	xmtperf -t ns/op=25 -t sim_cycle/sec=15 old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type thresholdFlag map[string]float64

func (t thresholdFlag) String() string { return "" }
func (t thresholdFlag) Set(v string) error {
	name, pct, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want metric=percent, got %q", v)
	}
	f, err := strconv.ParseFloat(pct, 64)
	if err != nil || f < 0 {
		return fmt.Errorf("bad threshold percent in %q", v)
	}
	t[name] = f
	return nil
}

func main() {
	thresholds := thresholdFlag{}
	defPct := flag.Float64("threshold", 10, "default allowed change in the bad direction, percent")
	mdOut := flag.String("md", "", "also write the verdict table to this file")
	flag.Var(thresholds, "t", "per-metric threshold override, metric=percent (repeatable; full key or metric basename)")
	flag.Parse()

	var oldArt, newArt *artifact
	var err error
	switch flag.NArg() {
	case 1:
		oldArt, newArt, err = loadHistoryPair(flag.Arg(0))
	case 2:
		if oldArt, err = loadArtifact(flag.Arg(0)); err == nil {
			newArt, err = loadArtifact(flag.Arg(1))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: xmtperf [flags] old new   |   xmtperf [flags] history.jsonl")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	rows := compare(oldArt, newArt, *defPct, thresholds)
	table := renderMarkdown(oldArt.Label, newArt.Label, rows)
	fmt.Print(table)
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(table), 0o644); err != nil {
			fatal(err)
		}
	}

	regressed := 0
	for _, r := range rows {
		if r.Verdict == verdictRegressed {
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "xmtperf: %d metric(s) regressed beyond threshold\n", regressed)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xmtperf: no regressions (%d metrics compared)\n", len(rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtperf:", err)
	os.Exit(1)
}
