package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOld = `{
  "schema": "xmt-bench/v1", "date": "d1", "go": "go1.24.0", "cpus": 1,
  "results": [
    {"name": "BenchmarkA", "iterations": 5,
     "metrics": {"ns/op": 100, "sim_cycle/sec": 1000, "allocs/op": 50}}
  ]
}`

const benchRegressed = `{
  "schema": "xmt-bench/v1", "date": "d2", "go": "go1.24.0", "cpus": 1,
  "results": [
    {"name": "BenchmarkA", "iterations": 5,
     "metrics": {"ns/op": 150, "sim_cycle/sec": 600, "allocs/op": 50}}
  ]
}`

func write(t *testing.T, name, data string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func verdictOf(t *testing.T, rows []row, name string) verdict {
	t.Helper()
	for _, r := range rows {
		if r.Name == name {
			return r.Verdict
		}
	}
	t.Fatalf("no row %q in %+v", name, rows)
	return ""
}

func TestCompareBench(t *testing.T) {
	oldArt, err := loadArtifact(write(t, "old.json", benchOld))
	if err != nil {
		t.Fatal(err)
	}
	newArt, err := loadArtifact(write(t, "new.json", benchRegressed))
	if err != nil {
		t.Fatal(err)
	}
	rows := compare(oldArt, newArt, 10, nil)
	if v := verdictOf(t, rows, "A:ns/op"); v != verdictRegressed {
		t.Errorf("ns/op +50%% = %s, want REGRESSED", v)
	}
	if v := verdictOf(t, rows, "A:sim_cycle/sec"); v != verdictRegressed {
		t.Errorf("sim_cycle/sec -40%% = %s, want REGRESSED (higher is better)", v)
	}
	if v := verdictOf(t, rows, "A:allocs/op"); v != verdictOK {
		t.Errorf("unchanged allocs/op = %s, want ok", v)
	}

	// Identical inputs never regress.
	rows = compare(oldArt, oldArt, 10, nil)
	for _, r := range rows {
		if r.Verdict != verdictOK {
			t.Errorf("identical inputs: %s = %s", r.Name, r.Verdict)
		}
	}

	// A generous per-metric threshold waives the regression.
	rows = compare(oldArt, newArt, 10, map[string]float64{"ns/op": 60, "sim_cycle/sec": 60})
	if v := verdictOf(t, rows, "A:ns/op"); v != verdictOK {
		t.Errorf("ns/op with 60%% threshold = %s, want ok", v)
	}
}

func TestCompareDirections(t *testing.T) {
	cases := []struct {
		metric string
		want   direction
	}{
		{"ns/op", lowerBetter}, {"B/op", lowerBetter}, {"allocs/op", lowerBetter},
		{"sim_cycle/sec", higherBetter}, {"sim_instr/sec", higherBetter},
		{"iterations", infoOnly},
	}
	for _, c := range cases {
		if got := metricDirection(c.metric); got != c.want {
			t.Errorf("direction(%s) = %v, want %v", c.metric, got, c.want)
		}
	}
}

func TestCompareImprovedAndNewGone(t *testing.T) {
	oldArt := &artifact{Label: "o", Metrics: map[string]metric{
		"cycles": {1000, lowerBetter},
		"gone":   {5, lowerBetter},
	}}
	newArt := &artifact{Label: "n", Metrics: map[string]metric{
		"cycles": {700, lowerBetter},
		"fresh":  {9, lowerBetter},
	}}
	rows := compare(oldArt, newArt, 10, nil)
	if v := verdictOf(t, rows, "cycles"); v != verdictImproved {
		t.Errorf("cycles -30%% = %s, want improved", v)
	}
	if v := verdictOf(t, rows, "gone"); v != verdictGone {
		t.Errorf("gone = %s", v)
	}
	if v := verdictOf(t, rows, "fresh"); v != verdictNew {
		t.Errorf("fresh = %s", v)
	}
}

func TestCountersArtifact(t *testing.T) {
	counters := `{
	  "schema": "xmt-counters/v1", "cycle": 556, "ticks": 4448,
	  "instructions": {"total": 1038, "master": 414, "tcu": 624},
	  "stalls": {"mem": 184, "fpu_mdu": 0, "ps": 480, "icn_send": 0, "master_mem": 48, "master_send": 0},
	  "memory": {"cache_hits": 49, "cache_misses": 5, "queue_full": 0, "dram_total": 3,
	    "icn_traversals": 54, "load_latency": {"p50": 120, "p99": 255}},
	  "prefix_sum": {"latency": {"p99": 63}}
	}`
	art, err := loadArtifact(write(t, "counters.json", counters))
	if err != nil {
		t.Fatal(err)
	}
	if got := art.Metrics["cycles"].Value; got != 556 {
		t.Errorf("cycles = %v", got)
	}
	if got := art.Metrics["stall_cycles"].Value; got != 712 {
		t.Errorf("stall_cycles = %v", got)
	}
	if d := art.Metrics["instrs"].Dir; d != infoOnly {
		t.Errorf("instrs direction = %v, want infoOnly", d)
	}
	want := 5.0 / 54.0
	if got := art.Metrics["cache_miss_rate"].Value; math.Abs(got-want) > 1e-12 {
		t.Errorf("cache_miss_rate = %v, want %v", got, want)
	}

	// A 30% cycle slowdown trips the gate.
	slow := strings.Replace(counters, `"cycle": 556`, `"cycle": 723`, 1)
	slowArt, err := loadArtifact(write(t, "slow.json", slow))
	if err != nil {
		t.Fatal(err)
	}
	rows := compare(art, slowArt, 10, nil)
	if v := verdictOf(t, rows, "cycles"); v != verdictRegressed {
		t.Errorf("cycles +30%% = %s, want REGRESSED", v)
	}
}

func TestHistoryPair(t *testing.T) {
	hist := write(t, "hist.jsonl",
		strings.ReplaceAll(benchOld, "\n", " ")+"\n"+strings.ReplaceAll(benchRegressed, "\n", " ")+"\n")
	oldArt, newArt, err := loadHistoryPair(hist)
	if err != nil {
		t.Fatal(err)
	}
	if oldArt.Label != "d1" || newArt.Label != "d2" {
		t.Fatalf("labels %q -> %q", oldArt.Label, newArt.Label)
	}
	rows := compare(oldArt, newArt, 10, nil)
	if v := verdictOf(t, rows, "A:ns/op"); v != verdictRegressed {
		t.Errorf("history pair ns/op = %s, want REGRESSED", v)
	}

	// loadArtifact on a .jsonl picks the last entry.
	art, err := loadArtifact(hist)
	if err != nil {
		t.Fatal(err)
	}
	if art.Metrics["A:ns/op"].Value != 150 {
		t.Errorf("last entry ns/op = %v", art.Metrics["A:ns/op"].Value)
	}

	if _, _, err := loadHistoryPair(write(t, "one.jsonl", strings.ReplaceAll(benchOld, "\n", " ")+"\n")); err == nil {
		t.Error("single-entry history should fail")
	}
}

func TestRenderMarkdown(t *testing.T) {
	rows := []row{
		{Name: "a:ns/op", Old: 100, New: 150, DeltaPct: 50, ThresholdPct: 10, Verdict: verdictRegressed},
		{Name: "b", Old: 1, New: 1, DeltaPct: math.NaN(), ThresholdPct: 10, Verdict: verdictOK},
	}
	md := renderMarkdown("old", "new", rows)
	for _, want := range []string{"| metric |", "| a:ns/op | 100 | 150 | +50.0% | 10% | REGRESSED |", "| — |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
