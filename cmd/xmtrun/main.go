// Command xmtrun compiles and immediately simulates an XMTC program — the
// one-step workflow students and algorithm developers use ("install the
// toolchain on any personal computer and work on assignments", paper §I).
//
// Usage:
//
//	xmtrun [flags] program.c
//
// Examples:
//
//	xmtrun prog.c                          # cycle-accurate on fpga64
//	xmtrun -config chip1024 -stats prog.c
//	xmtrun -mode func prog.c               # fast functional debugging mode
//	xmtrun -mem input.map prog.c
//	xmtrun -profile prog.c                 # cycles per XMTC source line
//	xmtrun -counters prog.c                # hardware performance counters
//	xmtrun -trace out.json prog.c          # Chrome trace for Perfetto
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"xmtgo/internal/asm"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/prof"
	"xmtgo/internal/sigctl"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/funcvm"
	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var sets, memmaps listFlag
	var (
		cfgName   = flag.String("config", "fpga64", "machine preset: fpga64 or chip1024")
		mode      = flag.String("mode", "cycle", "simulation mode: cycle or func")
		backend   = flag.String("backend", "", "functional-mode backend: interp or vm (default: config func_backend, else interp)")
		maxCycles = flag.Int64("max-cycles", 0, "stop after this many cycles (0 = unlimited)")
		showStats = flag.Bool("stats", false, "print instruction and activity counters")
		counters  = flag.Bool("counters", false, "print the hardware performance counter report")
		profFlag  = flag.Bool("profile", false, "print the cycle profile attributed to XMTC source lines")
		traceOut  = flag.String("trace", "", "write a Chrome trace (Perfetto) to this .json file")
		optLevel  = flag.Int("O", 1, "optimization level")
		ckptOut   = flag.String("checkpoint", "", "write a checkpoint here when the run stops at a checkpoint boundary (e.g. on SIGINT; resume with xmtsim -resume)")
		cluster   = flag.Int("cluster", 0, "virtual-thread clustering factor")
		noPref    = flag.Bool("no-prefetch", false, "disable compiler prefetching")
		noNB      = flag.Bool("no-nbstore", false, "disable non-blocking stores")
		workers   = flag.Int("workers", 0, "host worker goroutines for the cluster shards (0 = GOMAXPROCS, 1 = serial; results identical)")
		faultPlan = flag.String("fault", "", `fault-injection plan, e.g. "memflip:10;tcufail:2@5000-90000" (docs/ROBUSTNESS.md)`)
		faultSeed = flag.Uint64("fault-seed", 0, "fault plan seed (0 = keep the preset's fault_seed)")
		watchdog  = flag.Int64("watchdog", -1, "no-progress watchdog window in cluster cycles (0 disables; -1 = keep the preset's watchdog_cycles)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")

		raceCheck = flag.Bool("race-check", false, "enable xmtsan, the deterministic dynamic race sanitizer (cycle mode; report on stderr)")

		sampleCycles = flag.Int64("sample-cycles", -1, "interval-sampler period in cluster cycles (0 disables; -1 = keep the preset's sample_cycles)")
		samplesOut   = flag.String("samples", "", "write the interval-sample time series here (.jsonl or .csv; needs a sampling interval)")
		countersJSON = flag.String("counters-json", "", "write the machine-readable counter snapshot (xmt-counters/v1 JSON) to this file")
	)
	flag.Var(&sets, "set", "override one configuration key=value (repeatable)")
	flag.Var(&memmaps, "mem", "memory-map input file (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xmtrun [flags] program.c")
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := config.Preset(*cfgName)
	if err != nil {
		fatal(err)
	}
	for _, kv := range sets {
		if err := cfg.Set(kv); err != nil {
			fatal(err)
		}
	}
	if *workers != 0 {
		cfg.HostWorkers = *workers
	}
	if *faultPlan != "" {
		cfg.FaultPlan = *faultPlan
	}
	if *faultSeed != 0 {
		cfg.FaultSeed = *faultSeed
	}
	if *watchdog >= 0 {
		cfg.WatchdogCycles = *watchdog
	}
	if *sampleCycles >= 0 {
		cfg.SampleCycles = *sampleCycles
	}
	if *raceCheck {
		cfg.RaceCheck = true
	}
	if *backend != "" {
		if err := cfg.Set("func_backend=" + *backend); err != nil {
			fatal(err)
		}
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "xmtrun: profile:", err)
		}
	}()

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := codegen.Compile(flag.Arg(0), string(src), codegen.Options{
		OptLevel:      *optLevel,
		ClusterFactor: *cluster,
		NoPrefetch:    *noPref,
		NoNBStore:     *noNB,
		PrefetchSlots: 4,
	})
	if err != nil {
		fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}
	prog, err := asm.Assemble(res.Unit)
	if err != nil {
		fatal(err)
	}
	for _, mm := range memmaps {
		data, err := os.ReadFile(mm)
		if err != nil {
			fatal(err)
		}
		if err := asm.ApplyMemMap(prog, mm, string(data)); err != nil {
			fatal(err)
		}
	}

	if *mode == "func" {
		if *traceOut != "" || *counters || *profFlag {
			fatal(fmt.Errorf("-trace, -counters and -profile need the cycle-accurate mode"))
		}
		if cfg.RaceCheck {
			fatal(fmt.Errorf("-race-check needs the cycle-accurate mode"))
		}
		if *samplesOut != "" || *countersJSON != "" {
			fatal(fmt.Errorf("-samples and -counters-json need the cycle-accurate mode"))
		}
		m, err := funcmodel.New(prog, cfg.MemBytes, os.Stdout)
		if err != nil {
			fatal(err)
		}
		// First SIGINT/SIGTERM raises a flag; the chunked run loops stop at
		// the next quiescent instruction boundary, persist a checkpoint when
		// -checkpoint was given, and exit cleanly (second signal forces exit).
		var interrupted atomic.Bool
		stopSig := sigctl.Notify("xmtrun", func() { interrupted.Store(true) })
		defer stopSig()
		stoppedBySignal := func(backend string) {
			if *ckptOut != "" {
				f, err := os.Create(*ckptOut)
				if err != nil {
					fatal(err)
				}
				if err := checkpoint.Save(f, checkpoint.Capture(m, int64(m.InstrCount))); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "checkpoint written to %s (instruction %d)\n", *ckptOut, m.InstrCount)
			}
			fmt.Fprintf(os.Stderr, "\n=== %d instructions (functional mode%s, stopped by signal) ===\n", m.InstrCount, backend)
		}
		const chunk = 1 << 16
		if cfg.FuncBackend == config.FuncBackendVM {
			vm, err := funcvm.Attach(m)
			if err != nil {
				fatal(err)
			}
			for !m.Halted {
				if err := vm.RunTo(m.InstrCount + chunk); err != nil {
					fatal(err)
				}
				if interrupted.Load() && !m.Halted {
					stoppedBySignal(", vm backend")
					return
				}
			}
			fmt.Fprintf(os.Stderr, "\n=== %d instructions (functional mode, vm backend) ===\n", m.InstrCount)
			return
		}
		for !m.Halted {
			if err := m.RunTo(m.InstrCount + chunk); err != nil {
				fatal(err)
			}
			if interrupted.Load() && !m.Halted {
				stoppedBySignal("")
				return
			}
		}
		fmt.Fprintf(os.Stderr, "\n=== %d instructions (functional mode) ===\n", m.InstrCount)
		return
	}
	if cfg.FuncBackend == config.FuncBackendVM {
		fatal(fmt.Errorf("-backend vm applies to the functional mode (-mode func)"))
	}

	sys, err := cycle.New(prog, cfg, os.Stdout)
	if err != nil {
		fatal(err)
	}
	// First SIGINT/SIGTERM stops the run at the next architecturally
	// quiescent point (persisting a checkpoint when -checkpoint was given);
	// a second signal forces exit.
	stopSig := sigctl.Notify("xmtrun", sys.RequestCheckpoint)
	defer stopSig()
	if *showStats {
		sys.Stats.AddFilter(&stats.OpHistogram{})
	}
	if *traceOut != "" {
		sys.SetEventLog(trace.NewEventLog())
	}
	var lineProf *stats.LineProfile
	if *profFlag {
		// Instruction line numbers point into the XMTC source for compiled
		// programs, so the flat report annotates XMTC lines directly.
		lineProf = stats.NewLineProfile(prog, cfg.Clusters+1)
		lineProf.SetSource(string(src))
		sys.AttachProfile(lineProf)
	}
	smp := metrics.Attach(sys, cfg.SampleCycles)
	if *samplesOut != "" && smp == nil {
		fatal(fmt.Errorf("-samples needs a sampling interval (-sample-cycles or sample_cycles)"))
	}
	r, err := sys.Run(*maxCycles)
	if err != nil {
		fatal(err)
	}
	if smp != nil {
		smp.Finalize(r.Cycles, int64(r.Ticks), sys.Stats, sys.AliveTCUs())
	}
	fmt.Fprintf(os.Stderr, "\n=== %d cycles, %d instructions ===\n", r.Cycles, r.Instrs)
	if r.Checkpoint && *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fatal(err)
		}
		if err := checkpoint.Save(f, sys.Capture()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s (cycle %d; resume with xmtsim -resume)\n", *ckptOut, r.Cycles)
	}
	if det := sys.RaceDetector(); det != nil {
		if err := det.WriteReport(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *showStats {
		sys.Stats.Report(os.Stderr)
	}
	if *counters {
		sys.Stats.ReportCounters(os.Stderr)
	}
	if *countersJSON != "" {
		if err := metrics.ExportCounters(*countersJSON, sys.Stats, r.Cycles, int64(r.Ticks)); err != nil {
			fatal(err)
		}
	}
	if *samplesOut != "" {
		if err := metrics.ExportSamples(*samplesOut, smp); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "interval samples written to %s (%d samples)\n", *samplesOut, len(smp.Samples()))
	}
	if lineProf != nil {
		lineProf.Report(os.Stderr, 30)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := sys.EventLog().WriteChrome(f, sys.ChromeMeta()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (%d events; load in Perfetto or chrome://tracing)\n",
			*traceOut, len(sys.EventLog().Events))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtrun:", err)
	os.Exit(1)
}
