// Command xmtsim is the XMT simulator driver: it loads an XMT assembly
// program (plus optional memory-map input files) and simulates it either
// cycle-accurately or in the fast functional mode, with the statistics,
// tracing, plug-in, checkpoint and floorplan facilities of XMTSim.
//
// Usage:
//
//	xmtsim [flags] program.s
//
// Examples:
//
//	xmtsim -config chip1024 -stats prog.s
//	xmtsim -mode func prog.s
//	xmtsim -set clusters=16 -set dram_latency=100 prog.s
//	xmtsim -trace cycle -trace-tcu 0 prog.s
//	xmtsim -hot prog.s
//	xmtsim -checkpoint state.ckpt prog.s           # save at sys checkpoint
//	xmtsim -resume state.ckpt prog.s               # resume from a checkpoint
//	xmtsim -thermal -floorplan prog.s
//	xmtsim -describe -config fpga64
//	xmtsim -workers 4 prog.s                       # host-parallel (results identical)
//	xmtsim -sample-cycles 5000 -samples ts.jsonl prog.s  # interval telemetry
//	xmtsim -serve 127.0.0.1:9090 prog.s            # live /metrics /status /stream
//	xmtsim -cpuprofile cpu.pprof prog.s            # see docs/PERF.md
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync/atomic"

	"xmtgo/internal/asm"
	"xmtgo/internal/asm/postpass"
	"xmtgo/internal/config"
	"xmtgo/internal/floorplan"
	"xmtgo/internal/prof"
	"xmtgo/internal/sigctl"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/funcvm"
	"xmtgo/internal/sim/metrics"
	"xmtgo/internal/sim/power"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var sets, memmaps listFlag
	var (
		cfgName   = flag.String("config", "fpga64", "machine preset: fpga64 or chip1024")
		cfgFile   = flag.String("config-file", "", "key=value configuration file")
		mode      = flag.String("mode", "cycle", "simulation mode: cycle or func")
		backend   = flag.String("backend", "", "functional-mode backend: interp or vm (default: config func_backend, else interp)")
		maxCycles = flag.Int64("max-cycles", 0, "stop after this many cycles (0 = unlimited)")
		showStats = flag.Bool("stats", false, "print instruction and activity counters")
		hot       = flag.Bool("hot", false, "enable the hottest-memory-locations filter plug-in")
		histogram = flag.Bool("histogram", false, "enable the opcode-histogram filter plug-in")
		traceLvl  = flag.String("trace", "", "execution trace: func, cycle, or a .json path (Chrome trace for Perfetto)")
		counters  = flag.Bool("counters", false, "print the hardware performance counter report")
		profile   = flag.Bool("profile", false, "print the cycle profile (flat by source line + cumulative by function)")
		traceTCU  = flag.Int("trace-tcu", math.MinInt, "limit trace to one TCU (-1 = master)")
		traceOp   = flag.String("trace-op", "", "limit trace to one mnemonic")
		ckptOut   = flag.String("checkpoint", "", "write a checkpoint here when the program requests one")
		ckptIn    = flag.String("resume", "", "resume from this checkpoint file")
		thermal   = flag.Bool("thermal", false, "attach the power/thermal DVFS manager plug-in")
		plan      = flag.Bool("floorplan", false, "render the cluster floorplan at exit (activity or temperature)")
		describe  = flag.Bool("describe", false, "print the machine configuration and exit")
		workers   = flag.Int("workers", 0, "host worker goroutines for the cluster shards (0 = GOMAXPROCS, 1 = serial; results identical)")
		faultPlan = flag.String("fault", "", `fault-injection plan, e.g. "memflip:10;tcufail:2@5000-90000" (docs/ROBUSTNESS.md)`)
		faultSeed = flag.Uint64("fault-seed", 0, "fault plan seed (0 = keep the preset's fault_seed)")
		watchdog  = flag.Int64("watchdog", -1, "no-progress watchdog window in cluster cycles (0 disables; -1 = keep the preset's watchdog_cycles)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")

		raceCheck = flag.Bool("race-check", false, "enable xmtsan, the deterministic dynamic race sanitizer (cycle mode; report on stderr)")

		sampleCycles = flag.Int64("sample-cycles", -1, "interval-sampler period in cluster cycles (0 disables; -1 = keep the preset's sample_cycles)")
		samplesOut   = flag.String("samples", "", "write the interval-sample time series here (.jsonl or .csv; needs a sampling interval)")
		countersJSON = flag.String("counters-json", "", "write the machine-readable counter snapshot (xmt-counters/v1 JSON) to this file")
		serveAddr    = flag.String("serve", "", "serve live metrics on this address while running (/metrics, /status, /stream)")
	)
	var dumps listFlag
	flag.Var(&dumps, "dump", "memory dump at exit: symbol or symbol:words (repeatable)")
	flag.Var(&sets, "set", "override one configuration key=value (repeatable)")
	flag.Var(&memmaps, "mem", "memory-map input file (repeatable)")
	flag.Parse()

	cfg, err := config.Preset(*cfgName)
	if err != nil {
		fatal(err)
	}
	if *cfgFile != "" {
		src, err := os.ReadFile(*cfgFile)
		if err != nil {
			fatal(err)
		}
		if err := cfg.Load(string(src)); err != nil {
			fatal(err)
		}
	}
	for _, kv := range sets {
		if err := cfg.Set(kv); err != nil {
			fatal(err)
		}
	}
	if *workers != 0 {
		cfg.HostWorkers = *workers
	}
	if *faultPlan != "" {
		cfg.FaultPlan = *faultPlan
	}
	if *faultSeed != 0 {
		cfg.FaultSeed = *faultSeed
	}
	if *watchdog >= 0 {
		cfg.WatchdogCycles = *watchdog
	}
	if *sampleCycles >= 0 {
		cfg.SampleCycles = *sampleCycles
	}
	if *raceCheck {
		cfg.RaceCheck = true
	}
	if *backend != "" {
		if err := cfg.Set("func_backend=" + *backend); err != nil {
			fatal(err)
		}
	}
	if *describe {
		fmt.Print(cfg.Describe())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xmtsim [flags] program.s")
		flag.Usage()
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "xmtsim: profile:", err)
		}
	}()

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	u, err := asm.Parse(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	if _, err := postpass.Run(u); err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(u)
	if err != nil {
		fatal(err)
	}
	for _, mm := range memmaps {
		data, err := os.ReadFile(mm)
		if err != nil {
			fatal(err)
		}
		if err := asm.ApplyMemMap(prog, mm, string(data)); err != nil {
			fatal(err)
		}
	}

	var resume *checkpoint.State
	if *ckptIn != "" {
		f, err := os.Open(*ckptIn)
		if err != nil {
			fatal(err)
		}
		resume, err = checkpoint.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	traceJSON := strings.HasSuffix(*traceLvl, ".json")
	if *mode == "func" {
		if traceJSON || *counters || *profile {
			fatal(fmt.Errorf("-trace *.json, -counters and -profile need the cycle-accurate mode"))
		}
		if cfg.RaceCheck {
			fatal(fmt.Errorf("-race-check needs the cycle-accurate mode"))
		}
		if *samplesOut != "" || *countersJSON != "" || *serveAddr != "" {
			fatal(fmt.Errorf("-samples, -counters-json and -serve need the cycle-accurate mode"))
		}
		m := runFunctional(prog, cfg, resume, *ckptOut, *traceLvl != "")
		if err := dumpMemory(prog, m.ReadWord, dumps); err != nil {
			fatal(err)
		}
		return
	}
	if cfg.FuncBackend == config.FuncBackendVM {
		fatal(fmt.Errorf("-backend vm applies to the functional mode (-mode func)"))
	}

	sys, err := cycle.New(prog, cfg, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if resume != nil {
		if err := sys.RestoreState(resume); err != nil {
			fatal(err)
		}
	}
	// First SIGINT/SIGTERM stops the run at the next architecturally
	// quiescent point; the epilogue below then persists the checkpoint when
	// -checkpoint was given, so an interrupted run can be resumed exactly.
	stopSig := sigctl.Notify("xmtsim", sys.RequestCheckpoint)
	defer stopSig()
	if *hot {
		sys.Stats.AddFilter(stats.NewHotLocations(uint32(cfg.CacheLineSize), 10))
	}
	if *histogram {
		sys.Stats.AddFilter(&stats.OpHistogram{})
	}
	var tm *power.ThermalManager
	if *thermal {
		tm, err = power.NewThermalManager(&cfg, 5000, 85)
		if err != nil {
			fatal(err)
		}
		sys.AddActivityPlugin(tm)
	}
	switch {
	case traceJSON:
		sys.SetEventLog(trace.NewEventLog())
	case *traceLvl != "":
		lvl := trace.LevelFunctional
		if *traceLvl == "cycle" {
			lvl = trace.LevelCycle
		}
		tr := trace.New(os.Stderr, lvl)
		if *traceTCU != math.MinInt {
			tr.LimitTCU(*traceTCU)
		}
		if *traceOp != "" {
			if err := tr.LimitOp(*traceOp); err != nil {
				fatal(err)
			}
		}
		sys.SetTrace(tr.CycleHook())
	}
	var lineProf *stats.LineProfile
	if *profile {
		lineProf = stats.NewLineProfile(prog, cfg.Clusters+1)
		lineProf.SetSource(string(src))
		sys.AttachProfile(lineProf)
	}

	// The sampler attaches after RestoreState so resumed runs report
	// absolute cycles, and after the thermal manager so its plug-in event
	// runs later at each boundary and reads the already-advanced grid.
	sampleInterval := cfg.SampleCycles
	if *serveAddr != "" && sampleInterval <= 0 {
		sampleInterval = 10000 // live serving needs a publish cadence
	}
	smp := metrics.Attach(sys, sampleInterval)
	if smp != nil && tm != nil {
		smp.AttachThermal(tm)
	}
	if *samplesOut != "" && smp == nil {
		fatal(fmt.Errorf("-samples needs a sampling interval (-sample-cycles or sample_cycles)"))
	}
	if *serveAddr != "" {
		msrv := metrics.NewServer()
		addr, err := msrv.ListenAndServe(*serveAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s (/metrics /status /stream)\n", addr)
		smp.SetServer(msrv)
		defer msrv.Close()
	}

	res, err := sys.Run(*maxCycles)
	if err != nil {
		fatal(err)
	}
	if smp != nil {
		smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
	}
	fmt.Fprintf(os.Stderr, "\n=== %d cycles, %d instructions (%s) ===\n", res.Cycles, res.Instrs, endState(res))
	if res.Checkpoint && *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fatal(err)
		}
		if err := checkpoint.Save(f, sys.Capture()); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "checkpoint written to %s (cycle %d)\n", *ckptOut, res.Cycles)
	}
	if *showStats {
		sys.Stats.Report(os.Stderr)
	}
	if det := sys.RaceDetector(); det != nil {
		if err := det.WriteReport(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *counters {
		sys.Stats.ReportCounters(os.Stderr)
	}
	if *countersJSON != "" {
		if err := metrics.ExportCounters(*countersJSON, sys.Stats, res.Cycles, int64(res.Ticks)); err != nil {
			fatal(err)
		}
	}
	if *samplesOut != "" {
		if err := metrics.ExportSamples(*samplesOut, smp); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "interval samples written to %s (%d samples)\n", *samplesOut, len(smp.Samples()))
	}
	if lineProf != nil {
		lineProf.Report(os.Stderr, 30)
	}
	if traceJSON {
		f, err := os.Create(*traceLvl)
		if err != nil {
			fatal(err)
		}
		if err := sys.EventLog().WriteChrome(f, sys.ChromeMeta()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (%d events; load in Perfetto or chrome://tracing)\n",
			*traceLvl, len(sys.EventLog().Events))
	}
	if err := dumpMemory(prog, sys.Machine.ReadWord, dumps); err != nil {
		fatal(err)
	}
	if *plan {
		renderPlan(sys, tm, cfg)
	}
}

// dumpMemory implements the "memory dump" output of Fig. 3: it prints
// words starting at a data symbol.
func dumpMemory(prog *asm.Program, read func(uint32) (int32, error), dumps []string) error {
	for _, spec := range dumps {
		name, cntStr, hasCnt := strings.Cut(spec, ":")
		count := 8
		if hasCnt {
			if _, err := fmt.Sscanf(cntStr, "%d", &count); err != nil || count <= 0 {
				return fmt.Errorf("bad -dump count in %q", spec)
			}
		}
		addr, ok := prog.SymAddr(name)
		if !ok {
			return fmt.Errorf("-dump: unknown data symbol %q", name)
		}
		fmt.Fprintf(os.Stderr, "%s @0x%08x:", name, addr)
		for i := 0; i < count; i++ {
			v, err := read(addr + uint32(4*i))
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, " %d", v)
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}

func endState(res *cycle.Result) string {
	switch {
	case res.Halted:
		return "halted"
	case res.Checkpoint:
		return "checkpoint"
	case res.TimedOut:
		return "cycle budget exhausted"
	}
	return "stopped"
}

func renderPlan(sys *cycle.System, tm *power.ThermalManager, cfg config.Config) {
	p := floorplan.NewGridPlan(cfg.Clusters)
	if tm != nil {
		p.Render(os.Stderr, "die temperature (°C)", tm.Grid().T, math.NaN(), math.NaN())
		return
	}
	vals := make([]float64, cfg.Clusters)
	for i := range vals {
		vals[i] = float64(sys.Stats.Cluster[i].TCUInstrs)
	}
	p.Render(os.Stderr, "per-cluster committed instructions", vals, math.NaN(), math.NaN())
}

func runFunctional(prog *asm.Program, cfg config.Config, resume *checkpoint.State, ckptOut string, traceOn bool) *funcmodel.Machine {
	m, err := funcmodel.New(prog, cfg.MemBytes, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if resume != nil {
		if err := checkpoint.Restore(m, resume); err != nil {
			fatal(err)
		}
	}
	if traceOn {
		tr := trace.New(os.Stderr, trace.LevelFunctional)
		m.Trace = tr.FuncHook()
	}
	saveCkpt := func(m *funcmodel.Machine) error {
		f, err := os.Create(ckptOut)
		if err != nil {
			return err
		}
		if err := checkpoint.Save(f, checkpoint.Capture(m, int64(m.InstrCount))); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "checkpoint written to %s (instruction %d)\n", ckptOut, m.InstrCount)
		return nil
	}
	// Functional mode has no cycle loop to piggyback on, so the signal
	// handler just raises a flag; the run loops below stop at the next
	// quiescent instruction boundary, persist a checkpoint when -checkpoint
	// was given, and exit cleanly.
	var interrupted atomic.Bool
	stopSig := sigctl.Notify("xmtsim", func() { interrupted.Store(true) })
	defer stopSig()
	stoppedBySignal := func() {
		if ckptOut != "" {
			if err := saveCkpt(m); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "\n=== %d instructions (functional mode, stopped by signal) ===\n", m.InstrCount)
	}
	if cfg.FuncBackend == config.FuncBackendVM {
		vm, err := funcvm.Attach(m)
		if err != nil {
			fatal(err)
		}
		if ckptOut != "" {
			vm.OnCheckpoint = saveCkpt
		}
		// Run in bounded chunks so the interrupt flag is observed promptly
		// without a per-instruction check in the VM dispatch loop.
		const chunk = 1 << 16
		for !m.Halted {
			if err := vm.RunTo(m.InstrCount + chunk); err != nil {
				fatal(err)
			}
			if interrupted.Load() && !m.Halted {
				stoppedBySignal()
				return m
			}
		}
		fmt.Fprintf(os.Stderr, "\n=== %d instructions (functional mode, vm backend) ===\n", m.InstrCount)
		return m
	}
	for {
		ok, err := m.Step()
		if err != nil {
			fatal(err)
		}
		if m.CheckpointRequested && ckptOut != "" {
			if err := saveCkpt(m); err != nil {
				fatal(err)
			}
			m.CheckpointRequested = false
		}
		if !ok {
			break
		}
		if interrupted.Load() && m.Quiescent() {
			stoppedBySignal()
			return m
		}
	}
	fmt.Fprintf(os.Stderr, "\n=== %d instructions (functional mode) ===\n", m.InstrCount)
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtsim:", err)
	os.Exit(1)
}
