// Differential conformance: the functional interpreter, the funcvm
// bytecode backend and the cycle-accurate model are three implementations
// of the same architecture, so every workload program must leave all of
// them in the same architectural state — final shared memory, global
// registers, master context, printf output and halt state. Divergence
// means one of the models (or the compiler) broke; this corpus is the
// tripwire. scripts/check.sh runs it.
//
// The matrix is three-way: interp↔vm is compared fully strictly (both
// functional backends serialize spawn sections in the same order, so even
// interleaving-dependent memory must match byte-for-byte, and so must the
// instruction count and every global register including G[GRegSpawn]);
// interp↔cycle keeps two deliberate exclusions:
//   - G[GRegSpawn] (the virtual-thread grab counter): the functional mode
//     serializes each spawn on one virtual TCU while the cycle model runs
//     Cfg.TCUs() of them, and every TCU performs one final failing grab, so
//     the counter's final value legitimately differs between the models.
//   - For programs whose result placement depends on the thread
//     interleaving (marked skipMem below) only the printed invariants and
//     registers are compared, not raw memory. Programs that deliberately
//     exhibit relaxed-memory outcomes (the litmus tests of paper Figs. 6-7)
//     live in examples/xmtc and are not run here at all.
package xmtgo_test

import (
	"bytes"
	"testing"

	"xmtgo"
	"xmtgo/internal/isa"
	"xmtgo/internal/workloads"
)

type confCase struct {
	name    string
	src     string
	memmaps []string
	// skipMem: the program is correct under any thread interleaving but
	// places results at interleaving-dependent positions (a ps-grabbed
	// compaction index, a psm-claimed BFS parent), so the two models'
	// memories legitimately differ byte-wise. The printed invariants and
	// registers must still match exactly.
	skipMem bool
}

// conformanceCorpus lists every program generator in internal/workloads,
// both the parallel and the serial-reference variants.
func conformanceCorpus() []confCase {
	var cases []confCase
	add := func(name, src string, memmaps ...string) {
		cases = append(cases, confCase{name: name, src: src, memmaps: memmaps})
	}
	addNondet := func(name, src string, memmaps ...string) {
		cases = append(cases, confCase{name: name, src: src, memmaps: memmaps, skipMem: true})
	}

	for _, g := range []workloads.TableIGroup{
		workloads.ParallelMemory, workloads.ParallelCompute,
		workloads.SerialMemory, workloads.SerialCompute,
	} {
		add("tableI-"+g.Name(), workloads.TableI(g, 64, 8))
	}

	comp, _ := workloads.Compaction(256, 0.3, 7)
	addNondet("compaction", comp) // B[] order depends on ps grab order

	redPar, redSer, _ := workloads.Reduction(512)
	add("reduction-par", redPar)
	add("reduction-ser", redSer)

	vecPar, vecSer, _ := workloads.VecAdd(512)
	add("vecadd-par", vecPar)
	add("vecadd-ser", vecSer)

	mmPar, mmSer := workloads.MatMul(10)
	add("matmul-par", mmPar)
	add("matmul-ser", mmSer)

	psPar, psSer, _, _ := workloads.PrefixSum(256)
	add("prefixsum-par", psPar)
	add("prefixsum-ser", psSer)

	g := workloads.RandomGraph(96, 5, 3)
	bfsPar, bfsSer := workloads.BFS(256, 2048)
	addNondet("bfs-par", bfsPar, g.MemMap()) // frontier order depends on psm claim order
	add("bfs-ser", bfsSer, g.MemMap())

	fftPar, fftSer := workloads.FFT(64)
	add("fft-par", fftPar)
	add("fft-ser", fftSer)

	cg, _ := workloads.ComponentsGraph(96, 4, 3, 11)
	conPar, conSer := workloads.Connectivity(256, 4096)
	add("connectivity-par", conPar, cg)
	add("connectivity-ser", conSer, cg)

	return cases
}

func TestFuncCycleConformance(t *testing.T) {
	cfg := xmtgo.ConfigFPGA64()
	for _, tc := range conformanceCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			runConformanceCase(t, tc, cfg)
		})
	}
}

// TestDegradedConformance re-runs the whole corpus with two permanent TCU
// failures injected early in each run (docs/ROBUSTNESS.md): graceful
// degradation must preserve full architectural conformance with the
// functional model — same memory, registers and output, only more cycles.
func TestDegradedConformance(t *testing.T) {
	cfg := xmtgo.ConfigFPGA64()
	cfg.FaultPlan = "tcufail:2@40-200"
	cfg.FaultSeed = 13
	for _, tc := range conformanceCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			sys := runConformanceCase(t, tc, cfg)
			if got := sys.Stats.TCUsDecommissioned; got != 2 {
				t.Errorf("TCUsDecommissioned = %d, want 2 (fault window missed the run?)", got)
			}
		})
	}
}

// runConformanceCase runs one corpus program under all three models with
// cfg and fails the test on any architectural divergence. It returns the
// cycle simulator for extra assertions.
func runConformanceCase(t *testing.T, tc confCase, cfg xmtgo.Config) *xmtgo.Simulator {
	t.Helper()
	prog, _, err := xmtgo.Build(tc.name+".c", tc.src, xmtgo.DefaultCompileOptions(), tc.memmaps...)
	if err != nil {
		t.Fatal(err)
	}

	var funcOut bytes.Buffer
	fm, err := xmtgo.NewMachine(prog, cfg, &funcOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Run(50_000_000); err != nil {
		t.Fatalf("functional interp: %v", err)
	}
	if !fm.Halted {
		t.Fatalf("functional interp run did not halt (%d instructions)", fm.InstrCount)
	}

	var vmOut bytes.Buffer
	vmm, err := xmtgo.NewMachine(prog, cfg, &vmOut)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := xmtgo.NewFuncVM(vmm)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(50_000_000); err != nil {
		t.Fatalf("functional vm: %v", err)
	}
	if !vmm.Halted {
		t.Fatalf("functional vm run did not halt (%d instructions)", vmm.InstrCount)
	}
	compareFuncBackends(t, fm, vmm, funcOut.String(), vmOut.String())

	var cycOut bytes.Buffer
	sys, err := xmtgo.NewSimulator(prog, cfg, &cycOut)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(10_000_000)
	if err != nil {
		t.Fatalf("cycle: %v", err)
	}
	if !res.Halted {
		t.Fatalf("cycle run did not halt (cycles=%d timedOut=%v)", res.Cycles, res.TimedOut)
	}

	if got, want := cycOut.String(), funcOut.String(); got != want {
		t.Errorf("printf output diverged:\ncycle: %q\nfunc:  %q", got, want)
	}
	for gr := 0; gr < isa.NumGRegs; gr++ {
		if isa.GReg(gr) == isa.GRegSpawn {
			continue // grab counts differ by design; see file comment
		}
		if sys.Machine.G[gr] != fm.G[gr] {
			t.Errorf("global register g%d: cycle=%d func=%d", gr, sys.Machine.G[gr], fm.G[gr])
		}
	}
	mc := sys.MasterContext()
	if mc.PC != fm.Master.PC {
		t.Errorf("master PC: cycle=%d func=%d", mc.PC, fm.Master.PC)
	}
	if mc.Reg != fm.Master.Reg {
		for r := 0; r < isa.NumRegs; r++ {
			if mc.Reg[r] != fm.Master.Reg[r] {
				t.Errorf("master $%d: cycle=%d func=%d", r, mc.Reg[r], fm.Master.Reg[r])
			}
		}
	}
	if !tc.skipMem && !bytes.Equal(sys.Machine.Mem, fm.Mem) {
		for i := range fm.Mem {
			if sys.Machine.Mem[i] != fm.Mem[i] {
				t.Errorf("memory diverged first at 0x%08x: cycle=%#02x func=%#02x",
					i, sys.Machine.Mem[i], fm.Mem[i])
				break
			}
		}
	}
	return sys
}

// compareFuncBackends checks the interpreter and the funcvm backend for
// full architectural equality: both serialize spawn sections virtual
// thread by virtual thread in the same order, so nothing is excluded —
// memory, every global register (including G[GRegSpawn]), master context,
// instruction count, halt state and output must all be identical.
func compareFuncBackends(t *testing.T, interp, vm *xmtgo.Machine, interpOut, vmOut string) {
	t.Helper()
	if vmOut != interpOut {
		t.Errorf("printf output diverged:\nvm:     %q\ninterp: %q", vmOut, interpOut)
	}
	if vm.Halted != interp.Halted {
		t.Errorf("halt state: vm=%v interp=%v", vm.Halted, interp.Halted)
	}
	if vm.InstrCount != interp.InstrCount {
		t.Errorf("instruction count: vm=%d interp=%d", vm.InstrCount, interp.InstrCount)
	}
	for gr := 0; gr < isa.NumGRegs; gr++ {
		if vm.G[gr] != interp.G[gr] {
			t.Errorf("global register g%d: vm=%d interp=%d", gr, vm.G[gr], interp.G[gr])
		}
	}
	if vm.Master.PC != interp.Master.PC {
		t.Errorf("master PC: vm=%d interp=%d", vm.Master.PC, interp.Master.PC)
	}
	if vm.Master.Reg != interp.Master.Reg {
		for r := 0; r < isa.NumRegs; r++ {
			if vm.Master.Reg[r] != interp.Master.Reg[r] {
				t.Errorf("master $%d: vm=%d interp=%d", r, vm.Master.Reg[r], interp.Master.Reg[r])
			}
		}
	}
	if !bytes.Equal(vm.Mem, interp.Mem) {
		for i := range interp.Mem {
			if vm.Mem[i] != interp.Mem[i] {
				t.Errorf("memory diverged first at 0x%08x: vm=%#02x interp=%#02x",
					i, vm.Mem[i], interp.Mem[i])
				break
			}
		}
	}
}
