// End-to-end crash recovery for the xmtd simulation daemon (docs/XMTD.md):
// a real daemon process, real xmtctl clients over a unix socket, a real
// kill -9 mid-job, and a restart on the same data directory that must
// resume the interrupted job from its journaled checkpoint and finish it
// with the right output. scripts/check.sh runs this by name as the xmtd
// gate.
package xmtgo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemonLoopSrc is a register-dominated loop with a final store: it retires
// every cycle, so the daemon's periodic checkpoints fire on schedule (a
// blocking load/store loop would starve the quiescent-point check — see
// docs/XMTD.md), and it prints its iteration count so recovery is checked
// against real output.
func daemonLoopSrc(iters int) string {
	return fmt.Sprintf(`
        .data
A:      .space 64
        .text
        .global main
main:
        li    $t0, %d
        li    $t2, 0
Lloop:  addiu $t2, $t2, 1
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        la    $t1, A
        sw    $t2, 0($t1)
        lw    $v0, 0($t1)
        sys   1
        sys   0
`, iters)
}

func TestCLIDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"xmtd", "xmtctl"} {
		out := filepath.Join(dir, tool)
		if msg, err := exec.Command("go", "build", "-o", out, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}

	// ~60M cycles: several seconds of wall clock, so the kill lands mid-job.
	longS := filepath.Join(dir, "long.s")
	if err := os.WriteFile(longS, []byte(daemonLoopSrc(20_000_000)), 0o644); err != nil {
		t.Fatal(err)
	}
	shortS := filepath.Join(dir, "short.s")
	if err := os.WriteFile(shortS, []byte(daemonLoopSrc(2000)), 0o644); err != nil {
		t.Fatal(err)
	}

	sock := "unix:" + filepath.Join(dir, "xmtd.sock")
	dataDir := filepath.Join(dir, "data")

	startDaemon := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bins["xmtd"],
			"-listen", sock, "-data", dataDir,
			"-workers", "1", "-checkpoint-every", "200000",
			"-set", "mem_bytes=1048576")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for the listening announcement before any client call.
		ready := make(chan bool, 1)
		go func() {
			buf := make([]byte, 4096)
			var got []byte
			for {
				n, err := stderr.Read(buf)
				got = append(got, buf[:n]...)
				if strings.Contains(string(got), "xmtd listening on ") {
					ready <- true
				}
				if err != nil {
					return
				}
			}
		}()
		select {
		case <-ready:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatal("xmtd never announced its listening address")
		}
		return cmd
	}

	ctl := func(args ...string) (string, error) {
		out, err := exec.Command(bins["xmtctl"], append([]string{"-addr", sock}, args...)...).CombinedOutput()
		return string(out), err
	}
	mustCtl := func(args ...string) string {
		t.Helper()
		out, err := ctl(args...)
		if err != nil {
			t.Fatalf("xmtctl %v: %v\n%s", args, err, out)
		}
		return out
	}
	jobStatus := func(id string) (state string, cycles int64, resumes, preemptions int) {
		t.Helper()
		out := mustCtl("-json", "status", id)
		var st struct {
			State       string `json:"state"`
			Cycles      int64  `json:"cycles"`
			Resumes     int    `json:"resumes"`
			Preemptions int    `json:"preemptions"`
		}
		if err := json.Unmarshal([]byte(out), &st); err != nil {
			t.Fatalf("status %s: %v\n%s", id, err, out)
		}
		return st.State, st.Cycles, st.Resumes, st.Preemptions
	}

	daemon1 := startDaemon()
	longID := strings.TrimSpace(mustCtl("submit", "-name", "long", "-priority", "1", longS))

	// A higher-priority job must preempt the running long job at its next
	// checkpoint boundary, complete, and hand the worker back.
	waitUntil := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitUntil("long job to start running", func() bool {
		state, _, _, _ := jobStatus(longID)
		return state == "running"
	})
	shortID := strings.TrimSpace(mustCtl("submit", "-name", "short", "-priority", "9", shortS))
	out := mustCtl("wait", "-timeout", "60s", shortID)
	if !strings.Contains(out, `output="2000"`) {
		t.Fatalf("short job result missing its output:\n%s", out)
	}
	waitUntil("long job to be preempted and resume", func() bool {
		state, _, _, preemptions := jobStatus(longID)
		return preemptions >= 1 && state == "running"
	})

	// Let the resumed long job persist at least one post-resume checkpoint,
	// then kill -9 the daemon mid-flight.
	_, cyclesAtPreempt, _, _ := jobStatus(longID)
	waitUntil("a post-resume checkpoint", func() bool {
		_, cycles, _, _ := jobStatus(longID)
		return cycles > cyclesAtPreempt
	})
	if err := daemon1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon1.Wait()

	// Restart on the same data directory: the journal replay must re-queue
	// the interrupted job, resume it from its last checkpoint envelope, and
	// finish with the correct output.
	daemon2 := startDaemon()
	defer func() {
		if daemon2.ProcessState == nil {
			daemon2.Process.Kill()
			daemon2.Wait()
		}
	}()
	out = mustCtl("-json", "wait", "-timeout", "120s", longID)
	var done struct {
		State   string `json:"state"`
		Resumes int    `json:"resumes"`
		Result  *struct {
			Output  string `json:"output"`
			MemHash string `json:"memhash"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &done); err != nil {
		t.Fatalf("wait after restart: %v\n%s", err, out)
	}
	if done.State != "done" || done.Result == nil {
		t.Fatalf("recovered job did not complete: %s", out)
	}
	if done.Result.Output != "20000000" {
		t.Fatalf("recovered job output %q, want %q", done.Result.Output, "20000000")
	}
	var info struct {
		Recoveries uint64 `json:"recoveries"`
		Completed  uint64 `json:"completed"`
	}
	if err := json.Unmarshal([]byte(mustCtl("ping")), &info); err != nil {
		t.Fatal(err)
	}
	if info.Recoveries < 1 {
		t.Errorf("daemon reports %d recoveries after kill -9, want >= 1", info.Recoveries)
	}

	// Graceful drain: the daemon writes the clean-shutdown marker and the
	// process exits 0.
	mustCtl("drain")
	exited := make(chan error, 1)
	go func() { exited <- daemon2.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("xmtd exited non-zero after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("xmtd did not exit after drain")
	}
	journal, err := os.ReadFile(filepath.Join(dataDir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), `"kind":"drain"`) {
		t.Error("journal missing the clean-shutdown drain marker")
	}
}
