// End-to-end observability for the xmtd simulation daemon (ISSUE 10,
// docs/OBSERVABILITY.md): a real daemon process with -serve, -pprof and
// -trace, a submit → preempt → resume → done lifecycle driven by real
// xmtctl clients, then the whole observability surface is checked — the
// Chrome trace from xmtctl trace, the structured JSON records from
// xmtctl logs and /logs, the latency-histogram families on /metrics, the
// pprof index, and the trace file xmtd writes on drain. scripts/check.sh
// runs this by name as the xmtd observability gate.
package xmtgo_test

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCLIDaemonObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"xmtd", "xmtctl"} {
		out := filepath.Join(dir, tool)
		if msg, err := exec.Command("go", "build", "-o", out, "./cmd/"+tool).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}

	longS := filepath.Join(dir, "long.s")
	if err := os.WriteFile(longS, []byte(daemonLoopSrc(2_000_000)), 0o644); err != nil {
		t.Fatal(err)
	}
	shortS := filepath.Join(dir, "short.s")
	if err := os.WriteFile(shortS, []byte(daemonLoopSrc(2000)), 0o644); err != nil {
		t.Fatal(err)
	}

	sock := "unix:" + filepath.Join(dir, "xmtd.sock")
	traceFile := filepath.Join(dir, "trace.json")
	cmd := exec.Command(bins["xmtd"],
		"-listen", sock, "-data", filepath.Join(dir, "data"),
		"-workers", "1", "-checkpoint-every", "50000",
		"-serve", "127.0.0.1:0", "-pprof", "-trace", traceFile,
		"-log-level", "debug",
		"-set", "mem_bytes=1048576")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Collect stderr continuously; wait for both announcements.
	var semu sync.Mutex
	var stderrBuf strings.Builder
	stderrText := func() string {
		semu.Lock()
		defer semu.Unlock()
		return stderrBuf.String()
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := stderrPipe.Read(buf)
			semu.Lock()
			stderrBuf.Write(buf[:n])
			semu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	waitUntil := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stderr:\n%s", desc, stderrText())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitUntil("xmtd announcements", func() bool {
		s := stderrText()
		return strings.Contains(s, "xmtd listening on ") && strings.Contains(s, "serving metrics on http://")
	})
	metricsAddr := ""
	for _, line := range strings.Split(stderrText(), "\n") {
		if rest, ok := strings.CutPrefix(line, "serving metrics on http://"); ok {
			metricsAddr = strings.Fields(rest)[0]
		}
	}
	if metricsAddr == "" {
		t.Fatalf("no metrics address announced:\n%s", stderrText())
	}
	httpGet := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + metricsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return string(body)
	}

	ctl := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bins["xmtctl"], append([]string{"-addr", sock}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("xmtctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	jobState := func(id string) (state string, preemptions int) {
		t.Helper()
		var st struct {
			State       string `json:"state"`
			Preemptions int    `json:"preemptions"`
		}
		if err := json.Unmarshal([]byte(ctl("-json", "status", id)), &st); err != nil {
			t.Fatal(err)
		}
		return st.State, st.Preemptions
	}

	// Drive a preempted lifecycle: long job runs, a high-priority short job
	// preempts it at a checkpoint boundary, both finish.
	longID := strings.TrimSpace(ctl("submit", "-name", "long", "-tenant", "alice", "-priority", "1", longS))
	waitUntil("long job to start running", func() bool {
		state, _ := jobState(longID)
		return state == "running"
	})
	shortID := strings.TrimSpace(ctl("submit", "-name", "short", "-tenant", "bob", "-priority", "9", shortS))
	ctl("wait", "-timeout", "60s", shortID)
	ctl("wait", "-timeout", "120s", longID)
	if _, preemptions := jobState(longID); preemptions < 1 {
		t.Fatalf("long job was never preempted; the trace below cannot carry the preempt span")
	}

	// xmtctl trace: a Perfetto-loadable Chrome trace-event document with
	// the lifecycle spans of both jobs.
	traceOut := filepath.Join(dir, "ctl-trace.json")
	ctl("trace", "-o", traceOut)
	traceData, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(traceData, &doc); err != nil {
		t.Fatalf("xmtctl trace output is not valid JSON: %v", err)
	}
	spanJobs := map[string]map[string]bool{} // span name -> set of job ids
	for _, e := range doc.TraceEvents {
		job, _ := e.Args["job"].(string)
		if job == "" {
			continue
		}
		if spanJobs[e.Name] == nil {
			spanJobs[e.Name] = map[string]bool{}
		}
		spanJobs[e.Name][job] = true
	}
	for _, name := range []string{"compile", "queued", "run", "checkpoint-write", "preempt", "resume", "done"} {
		if !spanJobs[name][longID] {
			t.Errorf("trace lacks a %q span for the preempted job %s", name, longID)
		}
	}
	if !spanJobs["done"][shortID] {
		t.Errorf("trace lacks the short job's done instant")
	}
	if doc.OtherData["dropped"] == "" {
		t.Error("trace lacks the otherData dropped counter")
	}

	// xmtctl logs: structured ndjson with job/tenant correlation.
	logsOut := ctl("logs", "-level", "info", "-job", longID)
	if !strings.Contains(logsOut, `"job":"`+longID+`","tenant":"alice"`) {
		t.Errorf("xmtctl logs lacks job/tenant fields:\n%s", logsOut)
	}
	for _, line := range strings.Split(strings.TrimSpace(logsOut), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
	}

	// /metrics: every daemon latency-histogram family plus the sim trace
	// drop counter.
	metrics := httpGet("/metrics")
	for _, key := range []string{"queue_wait", "compile", "ttfs", "ckpt_write",
		"journal_fsync", "preempt_requeue", "retry_backoff"} {
		family := "xmt_daemon_" + key + "_ns"
		if !strings.Contains(metrics, "# TYPE "+family+" histogram") {
			t.Errorf("/metrics lacks histogram family %s", family)
		}
	}
	for _, needle := range []string{
		`xmt_daemon_queue_wait_ns_bucket{le="+Inf"}`,
		"xmt_daemon_queue_wait_ns_count",
		"xmt_trace_dropped_total",
		"xmt_daemon_preemptions_total",
	} {
		if !strings.Contains(metrics, needle) {
			t.Errorf("/metrics lacks %s", needle)
		}
	}

	// /logs endpoint mirrors xmtctl logs.
	if !strings.Contains(httpGet("/logs?level=info&job="+longID), `"job":"`+longID+`"`) {
		t.Error("/logs endpoint lacks the long job's records")
	}
	// /debug/pprof/ answers when -pprof is set.
	if !strings.Contains(httpGet("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index looks wrong")
	}

	// Drain: xmtd exits 0 and writes the -trace file.
	ctl("drain")
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("xmtd exited non-zero after drain: %v\n%s", err, stderrText())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("xmtd did not exit after drain")
	}
	fileData, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("xmtd -trace wrote nothing: %v", err)
	}
	var fileDoc map[string]json.RawMessage
	if err := json.Unmarshal(fileData, &fileDoc); err != nil {
		t.Fatalf("xmtd -trace file is not valid JSON: %v", err)
	}
	if _, ok := fileDoc["traceEvents"]; !ok {
		t.Error("xmtd -trace file lacks traceEvents")
	}

	// The daemon's own stderr is structured JSON: every non-plain line
	// parses, and the job records carry tenant fields.
	var jsonLines int
	for _, line := range strings.Split(stderrText(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // plain announcements (listening, metrics, exit)
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q", line)
		}
		jsonLines++
	}
	if jsonLines == 0 {
		t.Error("xmtd stderr carried no structured log lines")
	}
	if !strings.Contains(stderrText(), `"tenant":"alice"`) {
		t.Error("xmtd stderr logs lack tenant correlation fields")
	}
}
