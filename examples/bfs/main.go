// BFS: the paper's motivating irregular workload (§II-C: students got 8x
// to 25x speedups on XMT where OpenMP got none). This example builds a
// random graph, feeds it to PRAM-style parallel BFS and to serial
// queue-based BFS through a memory-map file, and compares cycle counts on
// the 64-TCU FPGA machine and the envisioned 1024-TCU chip.
package main

import (
	"fmt"
	"io"
	"os"

	"xmtgo"
	"xmtgo/internal/workloads"
)

func main() {
	const n, deg = 400, 8
	g := workloads.RandomGraph(n, deg, 1)
	par, ser := workloads.BFS(512, 8192)
	mm := g.MemMap()
	fmt.Printf("graph: %d vertices, %d directed edges; BFS from vertex 0 reaches %d vertices\n\n",
		g.N, g.M, g.Reached)

	run := func(name, src string, cfg xmtgo.Config) int64 {
		prog, _, err := xmtgo.Build(name+".c", src, xmtgo.DefaultCompileOptions(), mm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys, err := xmtgo.NewSimulator(prog, cfg, io.Discard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := sys.Run(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-28s %10d cycles\n", name+" ("+cfg.Name+")", res.Cycles)
		return res.Cycles
	}

	s64 := run("serial-bfs", ser, xmtgo.ConfigFPGA64())
	p64 := run("parallel-bfs", par, xmtgo.ConfigFPGA64())
	p1024 := run("parallel-bfs", par, xmtgo.ConfigChip1024())

	fmt.Printf("\nspeedup on 64 TCUs:   %.2fx\n", float64(s64)/float64(p64))
	fmt.Printf("speedup on 1024 TCUs: %.2fx (vs. serial on fpga64)\n", float64(s64)/float64(p1024))
}
