// Designspace: the paper's "reason 3" for releasing the toolchain — using
// the simulator's configurability to evaluate alternative system
// components. This example sweeps two architectural knobs (cluster count
// and DRAM latency) for the parallel BFS workload and prints the cycle
// counts, the kind of table a design-space study would plot.
package main

import (
	"fmt"
	"io"
	"os"

	"xmtgo"
	"xmtgo/internal/workloads"
)

func main() {
	g := workloads.RandomGraph(600, 8, 3)
	par, _ := workloads.BFS(1024, 16384)
	mm := g.MemMap()
	prog, _, err := xmtgo.Build("bfs.c", par, xmtgo.DefaultCompileOptions(), mm)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cycles := func(cfg xmtgo.Config) int64 {
		sys, err := xmtgo.NewSimulator(prog, cfg, io.Discard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := sys.Run(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res.Cycles
	}

	fmt.Printf("BFS (%d vertices, %d edges): simulated cycles across the design space\n\n", g.N, g.M)

	fmt.Println("clusters (x16 TCUs) sweep, chip1024 baseline otherwise:")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		cfg := xmtgo.ConfigChip1024()
		cfg.Clusters = n
		cfg.CacheModules = n
		fmt.Printf("    %4d TCUs: %8d cycles\n", n*cfg.TCUsPerCluster, cycles(cfg))
	}

	fmt.Println("\nDRAM latency sweep on chip1024:")
	for _, lat := range []int64{20, 60, 120, 240} {
		cfg := xmtgo.ConfigChip1024()
		cfg.DRAMLatency = lat
		fmt.Printf("    %4d DRAM cycles: %8d cycles\n", lat, cycles(cfg))
	}

	fmt.Println("\ninterconnect variant on chip1024:")
	sync := xmtgo.ConfigChip1024()
	async := xmtgo.ConfigChip1024()
	async.ICNAsync = true
	fmt.Printf("    synchronous ICN:  %8d cycles\n", cycles(sync))
	fmt.Printf("    asynchronous ICN: %8d cycles\n", cycles(async))
}
