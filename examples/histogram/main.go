// Histogram: a struct-based parallel histogram in XMTC. Each virtual
// thread classifies one sample and updates a shared bucket with psm (the
// prefix-sum-to-memory primitive, which the cache modules queue and apply
// atomically). The example also shows memory-map input — the OS-less
// toolchain's mechanism for feeding data to programs — and compares the
// cycle cost of the psm-based histogram against a serial one.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"xmtgo"
	"xmtgo/internal/prng"
)

const parallelSrc = `
struct Bucket { int count; int sum; };
struct Bucket hist[16];
int samples[4096];
int n = 0;

int main() {
    spawn(0, n - 1) {
        int v = samples[$];
        int b = (v >> 8) & 15;       // 16 buckets over 0..4095
        int one = 1;
        psm(one, hist[b].count);
        int add = v;
        psm(add, hist[b].sum);
    }
    int i;
    for (i = 0; i < 16; i++) {
        print_int(i);
        print_string(": ");
        print_int(hist[i].count);
        print_string(" (sum ");
        print_int(hist[i].sum);
        print_string(")\n");
    }
    return 0;
}
`

const serialSrc = `
struct Bucket { int count; int sum; };
struct Bucket hist[16];
int samples[4096];
int n = 0;

int main() {
    int i;
    for (i = 0; i < n; i++) {
        int v = samples[i];
        int b = (v >> 8) & 15;
        hist[b].count++;
        hist[b].sum += v;
    }
    int c = 0;
    for (i = 0; i < 16; i++) c += hist[i].count;
    print_int(c);
    return 0;
}
`

func main() {
	const n = 4096
	rng := prng.New(2026)
	var mm strings.Builder
	fmt.Fprintf(&mm, "n = %d\nsamples =", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&mm, " %d", rng.Intn(4096))
	}
	mm.WriteByte('\n')

	run := func(name, src string, w io.Writer) int64 {
		prog, _, err := xmtgo.Build(name, src, xmtgo.DefaultCompileOptions(), mm.String())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys, err := xmtgo.NewSimulator(prog, xmtgo.ConfigChip1024(), w)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := sys.Run(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res.Cycles
	}

	fmt.Printf("histogram of %d samples into 16 struct buckets (chip1024):\n\n", n)
	p := run("hist_par.c", parallelSrc, os.Stdout)
	s := run("hist_ser.c", serialSrc, io.Discard)
	fmt.Printf("\nparallel: %d cycles, serial: %d cycles -> speedup %.1fx\n",
		p, s, float64(s)/float64(p))
}
