// Memorymodel: the litmus tests of the paper's Figs. 6 and 7. Thread A
// writes x then y; thread B reads y then x. Without synchronization the
// relaxed XMT memory model admits every outcome — including the
// counterintuitive (x=0, y=1), which arises here from a stale prefetched
// line, exactly the hazard the paper describes. Synchronizing over y with
// prefix-sum operations (and the compiler's fence-before-prefix-sum rule)
// restores the partial order: y==1 then implies x==1.
package main

import (
	"fmt"
	"os"
	"sort"

	"xmtgo"
	"xmtgo/internal/workloads"
)

func sweep(title, src string) map[workloads.LitmusOutcome]int {
	cfg := xmtgo.ConfigFPGA64()
	outcomes, err := workloads.SweepLitmus(src, cfg, 30, 60, 2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", title)
	var keys []workloads.LitmusOutcome
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].X != keys[j].X {
			return keys[i].X < keys[j].X
		}
		return keys[i].Y < keys[j].Y
	})
	for _, k := range keys {
		fmt.Printf("    (x=%d, y=%d): %4d trials\n", k.X, k.Y, outcomes[k])
	}
	fmt.Println()
	return outcomes
}

func main() {
	fmt.Println("Fig. 6 — no order-enforcing operations (496 timing trials each):")
	rel := sweep("  thread B with compiler-style prefetch of x:", workloads.LitmusRelaxed())
	relNP := sweep("  thread B without prefetch:", workloads.LitmusRelaxedNoPref())

	if rel[workloads.LitmusOutcome{X: 0, Y: 1}] > 0 {
		fmt.Println("=> (x=0, y=1) observed: reads effectively reordered by the stale prefetch buffer.")
	}
	_ = relNP

	fmt.Println("\nFig. 7 — synchronizing over y with prefix-sums:")
	psm := sweep("  psm-synchronized:", workloads.LitmusPSM())
	if psm[workloads.LitmusOutcome{X: 0, Y: 1}] == 0 {
		fmt.Println("=> invariant holds in every trial: if y==1 then x==1.")
	} else {
		fmt.Println("=> INVARIANT VIOLATED — memory model bug!")
	}
}
