// Quickstart: compile and simulate the paper's Fig. 2a array-compaction
// XMTC program — the canonical "first XMT program" — on the 64-TCU FPGA
// configuration, in both the fast functional mode and the cycle-accurate
// mode, and print the simulator statistics.
package main

import (
	"fmt"
	"os"

	"xmtgo"
)

const src = `
// Fig. 2a: copy the non-zero elements of A into B (order not preserved).
int A[64];
int B[64];
int base = 0;

int main() {
    int i;
    for (i = 0; i < 64; i++) A[i] = (i % 3 == 0) ? i + 1 : 0;

    spawn(0, 63) {
        int inc = 1;
        if (A[$] != 0) {
            ps(inc, base);       // hardware prefix-sum: inc gets old base
            B[inc] = A[$];
        }
    }

    print_string("non-zero elements: ");
    print_int(base);
    print_char('\n');
    return 0;
}
`

func main() {
	prog, cres, err := xmtgo.Build("compact.c", src, xmtgo.DefaultCompileOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("compiled: %d functions, %d outlined spawn(s), %d non-blocking stores, %d prefetches\n\n",
		cres.Stats.Functions, cres.Stats.OutlinedSpawns, cres.Stats.NonBlocking, cres.Stats.Prefetches)

	// Fast functional mode: the debugging workflow.
	fmt.Println("--- functional mode ---")
	instrs, err := xmtgo.RunFunctional(prog, xmtgo.ConfigFPGA64(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("executed %d instructions\n\n", instrs)

	// Cycle-accurate mode with the hottest-locations filter plug-in.
	fmt.Println("--- cycle-accurate mode (fpga64) ---")
	sys, err := xmtgo.NewSimulator(prog, xmtgo.ConfigFPGA64(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.Stats.AddFilter(xmtgo.NewHotLocationsFilter(32, 5))
	res, err := sys.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("completed in %d cycles (%d instructions)\n\n", res.Cycles, res.Instrs)
	sys.Stats.Report(os.Stdout)
}
