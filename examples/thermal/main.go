// Thermal: the dynamic power/thermal management pipeline the paper calls
// unique to XMTSim (§III-B, §III-F): an activity plug-in samples the
// instruction/activity counters at regular simulated-time intervals,
// converts them to power, advances a HotSpot-style RC thermal grid, and
// throttles the cluster clock domain when the die gets too hot — then the
// floorplan visualization renders the resulting temperature map.
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	"xmtgo"
	"xmtgo/internal/floorplan"
	"xmtgo/internal/workloads"
)

func main() {
	cfg := xmtgo.ConfigFPGA64()
	// A long, hot, compute-bound parallel program.
	src := workloads.TableI(workloads.ParallelCompute, cfg.Clusters*cfg.TCUsPerCluster, 3000)

	prog, _, err := xmtgo.Build("hot.c", src, xmtgo.DefaultCompileOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys, err := xmtgo.NewSimulator(prog, cfg, io.Discard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tm, err := xmtgo.NewThermalManager(&cfg, 2000, 55)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.AddActivityPlugin(tm)

	res, err := sys.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("completed in %d cycles; %d thermal-manager samples\n\n", res.Cycles, len(tm.History))

	throttles := 0
	peak := 0.0
	for i, s := range tm.History {
		if s.MaxTemp > peak {
			peak = s.MaxTemp
		}
		if s.Throttled && (i == 0 || !tm.History[i-1].Throttled) {
			throttles++
		}
	}
	fmt.Printf("peak die temperature: %.1f °C, throttle episodes: %d\n", peak, throttles)
	if len(tm.History) > 0 {
		last := tm.History[len(tm.History)-1]
		fmt.Printf("final: max %.1f °C, mean %.1f °C, power %.1f W, throttled=%v\n\n",
			last.MaxTemp, last.MeanTemp, last.TotalWatt, last.Throttled)
	}

	plan := floorplan.NewGridPlan(cfg.Clusters)
	plan.Render(os.Stdout, "die temperature (°C)", tm.Grid().T, math.NaN(), math.NaN())
	plan.RenderValues(os.Stdout, "\nper-cell temperatures:", tm.Grid().T, "%7.1f")
}
