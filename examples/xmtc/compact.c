// Fig. 2a: copy the non-zero elements of A into B (order not preserved).
// The canonical first XMT program; xmtlint reports it clean.
int A[64];
int B[64];
int base = 0;

int main() {
    int i;
    for (i = 0; i < 64; i++) A[i] = (i % 3 == 0) ? i + 1 : 0;

    spawn(0, 63) {
        int inc = 1;
        if (A[$] != 0) {
            ps(inc, base);       // hardware prefix-sum: inc gets old base
            B[inc] = A[$];
        }
    }

    print_string("non-zero elements: ");
    print_int(base);
    print_char('\n');
    return 0;
}
