// Struct-based parallel histogram: each virtual thread classifies one
// sample and updates a shared bucket with psm (the prefix-sum-to-memory
// primitive, which the cache modules queue and apply atomically).
// xmtlint reports it clean.
struct Bucket { int count; int sum; };
struct Bucket hist[16];
int samples[4096];
int n = 0;

int main() {
    spawn(0, n - 1) {
        int v = samples[$];
        int b = (v >> 8) & 15;       // 16 buckets over 0..4095
        int one = 1;
        psm(one, hist[b].count);
        int add = v;
        psm(add, hist[b].sum);
    }
    int i;
    for (i = 0; i < 16; i++) {
        print_int(i);
        print_string(": ");
        print_int(hist[i].count);
        print_string(" (sum ");
        print_int(hist[i].sum);
        print_string(")\n");
    }
    return 0;
}
