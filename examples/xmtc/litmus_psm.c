// The paper's Fig. 7 litmus test at the source level: the writer releases
// its store to x by synchronizing over y with a psm, and the reader
// acquires through a psm on y before reading x. The compiler's
// fence-before-prefix-sum rule plus the buffer flush at prefix-sum
// completion make "obsY == 1 implies obsX == 1" hold. xmtlint must report
// this program clean — even through the full pipeline with -compile.
int x = 0;
int y = 0;
int obsX = 0;
int obsY = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            int one = 1;
            x = 1;
            psm(one, y);
        } else {
            int t = 0;
            psm(t, y);
            obsY = t;
            obsX = x;
        }
    }
    print_int(obsY);
    print_int(obsX);
    return 0;
}
