// The paper's Fig. 6 litmus test at the source level: thread 0 writes x
// then y, thread 1 reads y then x, with no order-enforcing operation in
// between. Under the relaxed XMT memory model the reader may observe
// (obsY, obsX) = (1, 0) — a prefetched line can hand thread 1 a stale x
// after it has already seen the new y. xmtlint must flag both access
// pairs with the spawn-race check.
int x = 0;
int y = 0;
int obsX = 0;
int obsY = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            x = 1;
            y = 1;
        } else {
            obsY = y;
            obsX = x;
        }
    }
    print_int(obsY);
    print_int(obsX);
    return 0;
}
