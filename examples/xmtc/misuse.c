// Deliberately broken XMTC exercising the analyzer's source-level checks.
// Every finding below is intentional; this file is a golden-test fixture
// and a living catalog of the bug classes docs/ANALYZER.md describes.
int total = 0;
int x = 0;
int flag = 0;
int A[64];

int main() {
    int sum = 0;
    spawn(0, 63) {
        sum = sum + A[$];        // spawn-dataflow: serial local, captured by reference
        int inc = 2;
        ps(inc, total);          // ps-misuse: increment is statically 2, not 0/1
        int mine = 0;
        int one = 1;
        psm(one, mine);          // ps-misuse: psm to thread-private storage
        if ($ == 0) {
            x = 1;               // spawn-race: unordered write ...
        }
        A[$] = x + mine;         // ... and read of x, no prefix-sum between
        if ($ == 1) {
            flag = 1;
        }
        while (flag == 0) { }    // volatile: spin-wait on non-volatile global
    }
    print_int(total);
    return 0;
}
