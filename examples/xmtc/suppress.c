// Suppression demo: an "xmtlint:ignore <check>" comment on the flagged
// line or the line directly above silences that check's finding there (a
// bare "xmtlint:ignore" silences every check). The capture below is the
// Fig. 8 bug class, acknowledged deliberately: with a single virtual
// thread there is no interleaving to race with. xmtlint reports this
// file clean.
int out = 0;

int main() {
    int last = 0;
    spawn(0, 0) {
        // xmtlint:ignore spawn-dataflow
        last = $;
    }
    out = last;
    print_int(out);
    return 0;
}
