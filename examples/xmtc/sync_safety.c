// Deliberately broken XMTC exercising the dataflow-based checks that ride
// on the CFG engine: uninit-read (reaching definitions), dead-store
// (liveness), and join-safety (reachability of the spawn's implicit
// barrier). Every finding below is intentional; this file is a golden-test
// fixture and a must-fail input for scripts/check.sh. The spin-wait
// variant of join-safety lives in misuse.c.
int done = 0;
int A[64];

int main() {
    int seed;
    int sum = 0;
    sum = seed + 1;          // uninit-read: no path has assigned seed
    print_int(sum);
    int scratch = 0;
    scratch = sum * 3;       // dead-store: no path ever reads this value
    spawn(0, 63) {
        while (1) { }        // join-safety: the join barrier is unreachable
    }
    print_int(done);
    return 0;
}
