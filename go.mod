module xmtgo

go 1.22
