// Package analysis is the XMTC static analyzer behind cmd/xmtlint and
// xmtcc -analyze: a registry of passes over the checked XMTC AST that
// report memory-model hazards, illegal spawn dataflow, prefix-sum misuse
// and volatile misuse as structured diagnostics (package diag).
//
// The passes run on the front-end AST *before* the outlining pre-pass
// mutates it, so positions and names match what the programmer wrote.
// Each diagnostic carries the name of the producing check; a source
// comment of the form
//
//	// xmtlint:ignore <check> [<check>...]
//
// on the flagged line or the line directly above suppresses it (a bare
// "xmtlint:ignore" suppresses every check on that line). See
// docs/ANALYZER.md for the check catalog.
package analysis

import (
	"strings"

	"xmtgo/internal/analysis/dataflow"
	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// Unit is the analyzed translation unit.
type Unit struct {
	Filename string
	File     *xmtc.File
	// Info is the sema result; nil when Check failed, in which case only
	// passes with NeedsInfo == false run (identifiers are unresolved).
	Info *xmtc.Info
	// Lines are the raw source lines, for suppression-comment scanning.
	Lines []string

	cfgs      []*dataflow.Graph
	cfgsBuilt bool
}

// Graphs lazily builds and caches one dataflow CFG per function with a
// body, in declaration order. The graphs tolerate unchecked ASTs (nil
// symbols), so passes with NeedsInfo == false may use them too.
func (u *Unit) Graphs() []*dataflow.Graph {
	if !u.cfgsBuilt {
		u.cfgsBuilt = true
		for _, d := range u.File.Decls {
			if fn, ok := d.(*xmtc.FuncDecl); ok && fn.Body != nil {
				u.cfgs = append(u.cfgs, dataflow.Build(fn))
			}
		}
	}
	return u.cfgs
}

// Pass is one registered check.
type Pass struct {
	// Name identifies the check in output ("[spawn-race]"), suppression
	// comments and -checks filters.
	Name string
	// Doc is a one-line description for xmtlint -list.
	Doc string
	// NeedsInfo marks passes that require resolved symbols and types.
	NeedsInfo bool
	Run       func(*Unit) []diag.Diagnostic
}

// Passes returns the registered checks in execution order.
func Passes() []Pass {
	return []Pass{
		{
			Name:      "spawn-race",
			Doc:       "conflicting unsynchronized accesses to shared memory inside a spawn region (the Fig. 6 litmus hazard)",
			NeedsInfo: true,
			Run:       checkSpawnRace,
		},
		{
			Name:      "spawn-dataflow",
			Doc:       "control flow or serial-local dataflow illegally crossing a spawn boundary (the Fig. 8 outlining bug class)",
			NeedsInfo: false,
			Run:       checkSpawnDataflow,
		},
		{
			Name:      "ps-misuse",
			Doc:       "prefix-sum misuse: ps increments outside {0,1}, psm to thread-private storage",
			NeedsInfo: true,
			Run:       checkPsMisuse,
		},
		{
			Name:      "volatile",
			Doc:       "re-reads of and spin-waits on non-volatile shared globals that register allocation will fold",
			NeedsInfo: true,
			Run:       checkVolatile,
		},
		{
			Name:      "uninit-read",
			Doc:       "reads of scalar locals no reaching definition ever initialized",
			NeedsInfo: true,
			Run:       checkUninitRead,
		},
		{
			Name:      "dead-store",
			Doc:       "stores to scalar locals whose value no path ever reads",
			NeedsInfo: true,
			Run:       checkDeadStore,
		},
		{
			Name:      "join-safety",
			Doc:       "spawn regions whose virtual threads cannot all reach the join barrier, and spin-waits substituting for it",
			NeedsInfo: true,
			Run:       checkJoinSafety,
		},
	}
}

// Run executes the enabled passes over an already parsed (and, when Info
// is non-nil, checked) unit. A nil enabled map runs every pass. Front-end
// warnings are not included — the caller owns those. Suppression comments
// are applied and the result is sorted.
func Run(u *Unit, enabled map[string]bool) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, p := range Passes() {
		if enabled != nil && !enabled[p.Name] {
			continue
		}
		if p.NeedsInfo && u.Info == nil {
			continue
		}
		ds = append(ds, p.Run(u)...)
	}
	ds = suppress(ds, u.Lines)
	diag.Sort(ds)
	return ds
}

// Analyze parses, checks and analyzes one XMTC source file. Front-end
// failures are reported as diagnostics, not errors: a parse error yields
// a single "parse" diagnostic; a sema error yields a "sema" diagnostic
// and the syntactic passes still run. Sema warnings (e.g. nested-spawn
// serialization) are included.
func Analyze(filename, src string, enabled map[string]bool) []diag.Diagnostic {
	u := &Unit{Filename: filename, Lines: strings.Split(src, "\n")}
	f, err := xmtc.Parse(filename, src)
	if err != nil {
		return []diag.Diagnostic{errDiag("parse", err)}
	}
	u.File = f
	var ds []diag.Diagnostic
	info, err := xmtc.Check(f)
	if err != nil {
		ds = append(ds, errDiag("sema", err))
	} else {
		u.Info = info
		ds = append(ds, info.Warnings...)
	}
	ds = append(ds, Run(u, enabled)...)
	ds = suppress(ds, u.Lines)
	diag.Sort(ds)
	return ds
}

// errDiag converts a front-end error into a diagnostic, preserving the
// position when the error carries one.
func errDiag(check string, err error) diag.Diagnostic {
	d := diag.Diagnostic{Check: check, Severity: diag.Error, Msg: err.Error()}
	if fe, ok := err.(*xmtc.Error); ok {
		d.Pos = fe.Pos.Diag()
		d.Msg = fe.Msg
	}
	return d
}

// Suppress applies the xmtlint:ignore comment filter to diagnostics
// produced outside the pass registry (the compiler's post-pass verifier
// and IR notes), so one suppression syntax covers every layer.
func Suppress(ds []diag.Diagnostic, lines []string) []diag.Diagnostic {
	return suppress(ds, lines)
}

// suppress drops diagnostics covered by an "xmtlint:ignore" comment on
// the same line or the line directly above.
func suppress(ds []diag.Diagnostic, lines []string) []diag.Diagnostic {
	if len(ds) == 0 || len(lines) == 0 {
		return ds
	}
	ignored := func(line int, check string) bool {
		for _, l := range []int{line, line - 1} {
			if l < 1 || l > len(lines) {
				continue
			}
			text := lines[l-1]
			i := strings.Index(text, "xmtlint:ignore")
			if i < 0 {
				continue
			}
			rest := strings.Fields(text[i+len("xmtlint:ignore"):])
			if len(rest) == 0 {
				return true // bare ignore: every check
			}
			for _, name := range rest {
				if name == check {
					return true
				}
			}
		}
		return false
	}
	out := ds[:0]
	for _, d := range ds {
		if !ignored(d.Pos.Line, d.Check) {
			out = append(out, d)
		}
	}
	return out
}
