package analysis

import (
	"fmt"

	"xmtgo/internal/analysis/dataflow"
	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// scalarLocal reports whether sym is a scalar local variable the
// definition-based checks can reason about soundly: address-taken locals
// escape through pointers and are excluded.
func scalarLocal(g *dataflow.Graph, sym *xmtc.Symbol) bool {
	return sym != nil && sym.Kind == xmtc.SymLocal &&
		sym.Type != nil && sym.Type.IsScalar() && !g.AddressTaken[sym]
}

// checkUninitRead flags reads of scalar locals all of whose reaching
// definitions are an initializer-less declaration: every path from the
// function entry to the read leaves the variable holding garbage. (If even
// one path assigns first, the read is not flagged — mixed paths are the
// classic false positive of pattern-based uninitialized checks, and the
// reaching-definitions solution rules them out.) Unreachable code is
// skipped: its reaching sets are vacuous.
func checkUninitRead(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, g := range u.Graphs() {
		reach := g.ReachingDefs()
		reachable := g.Reachable()
		reported := make(map[*xmtc.Symbol]bool)
		for _, blk := range g.Blocks {
			if !reachable[blk.ID] {
				continue
			}
			for i := range blk.Refs {
				ref := &blk.Refs[i]
				if ref.Kind != dataflow.RefUse || reported[ref.Sym] ||
					!scalarLocal(g, ref.Sym) || ref.Index != nil {
					continue
				}
				defs := reach.At(blk, i, ref.Sym)
				if len(defs) == 0 {
					continue
				}
				bad := true
				var declPos xmtc.Pos
				for _, d := range defs {
					r := d.Ref()
					if r == nil || !r.Decl || r.HasInit {
						bad = false
						break
					}
					declPos = r.Pos
				}
				if !bad {
					continue
				}
				reported[ref.Sym] = true
				ds = append(ds, diag.Diagnostic{
					Check:    "uninit-read",
					Severity: diag.Error,
					Pos:      ref.Pos.Diag(),
					Msg: fmt.Sprintf("%q is read here but no path from the function entry has assigned it: the declaration leaves it holding garbage",
						ref.Sym.Name),
					Related: []diag.Related{{
						Pos: declPos.Diag(),
						Msg: fmt.Sprintf("%q declared without an initializer here", ref.Sym.Name),
					}},
				})
			}
		}
	}
	return ds
}

// checkDeadStore flags plain assignments to scalar locals whose stored
// value no path ever reads before the next overwrite (or the end of the
// function). The exclusions keep it to the unambiguous shape:
//
//   - declarations with initializers are idiomatic defaults, not flagged;
//   - compound assignments and ++/-- read the location themselves;
//   - ps/psm write the old base into their increment as a *result* — the
//     store is the point of the primitive, not a redundancy;
//   - a right-hand side containing a call may be executed for effect;
//   - a self-assignment (x = x) is the C idiom for "intentionally unused";
//   - parameters and address-taken or aggregate locals escape the model;
//   - unreachable code is dead wholesale, which is a different finding.
func checkDeadStore(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, g := range u.Graphs() {
		live := g.Liveness()
		reachable := g.Reachable()
		for _, blk := range g.Blocks {
			if !reachable[blk.ID] {
				continue
			}
			for i := range blk.Refs {
				ref := &blk.Refs[i]
				if ref.Kind != dataflow.RefDef || !scalarLocal(g, ref.Sym) {
					continue
				}
				if ref.Decl || ref.Compound || ref.SyncDef || ref.Weak ||
					ref.Index != nil || ref.RHS == nil || ref.RHSCall {
					continue
				}
				if id, ok := ref.RHS.(*xmtc.Ident); ok && id.Sym == ref.Sym {
					continue // self-assignment: intentional "unused" marker
				}
				if !live.DeadAfter(blk, i, ref.Sym) {
					continue
				}
				ds = append(ds, diag.Diagnostic{
					Check:    "dead-store",
					Severity: diag.Warning,
					Pos:      ref.Pos.Diag(),
					Msg: fmt.Sprintf("value stored to %q is never read: every path overwrites it or reaches the end of the function first",
						ref.Sym.Name),
				})
			}
		}
	}
	return ds
}

// checkJoinSafety enforces the sync-safety discipline around the spawn's
// implicit barrier (in the spirit of clocked X10: every activity must be
// able to quiesce at the clock):
//
//   - (a) a block inside a spawn region from which the join is unreachable
//     — an infinite loop with no break — means those virtual threads never
//     arrive at the barrier and the spawn never completes (error). Regions
//     with boundary escapes are skipped; those are already errors;
//   - (b) a spin-wait inside the region on a scalar global that the region
//     also writes with a plain store is a hand-rolled barrier: under the
//     relaxed XMT memory model the write may stay invisible to the spinner
//     indefinitely (warning; ps/psm-updated globals are the sanctioned
//     discipline and are not flagged, since the prefix-sum orders them).
func checkJoinSafety(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, g := range u.Graphs() {
		reachable := g.Reachable()
		for _, reg := range g.Regions {
			if len(reg.Escapes) > 0 {
				continue
			}
			back := g.CanReach(reg.Exit)
			for _, blk := range reg.Blocks {
				if !reachable[blk.ID] || back[blk.ID] {
					continue
				}
				ds = append(ds, diag.Diagnostic{
					Check:    "join-safety",
					Severity: diag.Error,
					Pos:      blk.Pos.Diag(),
					Msg:      "virtual threads reaching this point can never arrive at the spawn's join barrier: no path out of the loop, so the spawn never completes",
				})
				break // one finding per region
			}
		}
		ds = append(ds, spinBarrierDiags(g)...)
	}
	return ds
}

// spinBarrierDiags implements join-safety (b): spin-waits standing in for
// the join barrier.
func spinBarrierDiags(g *dataflow.Graph) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, sl := range g.SpinLoops {
		sym, ok := spunGlobal(sl.Cond)
		if !ok {
			continue
		}
		// Only a plain store in the same region makes this a hand-rolled
		// barrier; a psm-updated flag is ordered by the prefix-sum.
		var writePos xmtc.Pos
		found := false
		for _, blk := range sl.Region.Blocks {
			for i := range blk.Refs {
				ref := &blk.Refs[i]
				if ref.Kind == dataflow.RefDef && ref.Sym == sym && !ref.SyncDef {
					writePos, found = ref.Pos, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			continue
		}
		ds = append(ds, diag.Diagnostic{
			Check:    "join-safety",
			Severity: diag.Warning,
			Pos:      sl.Pos.Diag(),
			Msg: fmt.Sprintf("spin-wait on %q stands in for the spawn's join barrier: the relaxed XMT memory model never obliges the write at %s to become visible here; update the flag with ps/psm or rely on the implicit join",
				sym.Name, writePos),
			Related: []diag.Related{{
				Pos: writePos.Diag(),
				Msg: fmt.Sprintf("%q written with a plain store here", sym.Name),
			}},
		})
	}
	return ds
}

// spunGlobal returns the scalar global a spin condition is polling, if the
// condition reads exactly one global and no sync intervenes syntactically.
func spunGlobal(cond xmtc.Expr) (*xmtc.Symbol, bool) {
	var sym *xmtc.Symbol
	count := 0
	eachExpr(cond, func(e xmtc.Expr) {
		id, ok := e.(*xmtc.Ident)
		if !ok || id.Sym == nil || id.Sym.Kind != xmtc.SymGlobal {
			return
		}
		if id.Sym.Type == nil || !id.Sym.Type.IsScalar() {
			return
		}
		if sym != id.Sym {
			count++
			sym = id.Sym
		}
	})
	return sym, count == 1
}
