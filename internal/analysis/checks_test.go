package analysis_test

import (
	"strings"
	"testing"

	"xmtgo/internal/analysis"
	"xmtgo/internal/diag"
)

// lintCase is one table entry: a source, the check under test, and the
// expected findings of that check (matched as substrings of the rendered
// diagnostics, in order).
type lintCase struct {
	name string
	src  string
	// check restricts Analyze to a single pass (empty = all).
	check string
	// want are substrings, one per expected diagnostic of that check.
	want []string
	// falsePositive documents findings that are known over-approximations
	// of the analysis: the program is (or may be) correct, but the
	// analyzer flags it anyway. Kept in the table deliberately so the
	// trade-off is visible and a future precision improvement shows up as
	// a test change.
	falsePositive bool
}

func runCase(t *testing.T, c lintCase) {
	t.Helper()
	var enabled map[string]bool
	if c.check != "" {
		enabled = map[string]bool{c.check: true}
	}
	ds := analysis.Analyze(c.name+".c", c.src, enabled)
	var got []string
	for _, d := range ds {
		if c.check == "" || d.Check == c.check {
			got = append(got, d.String())
		}
	}
	if len(got) != len(c.want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(c.want), strings.Join(got, "\n"))
	}
	for i, w := range c.want {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i], w)
		}
	}
}

func TestSpawnRace(t *testing.T) {
	cases := []lintCase{
		{
			name:  "guarded_write_read",
			check: "spawn-race",
			src: `
int x = 0;
int A[8];
int main() {
    spawn(0, 7) {
        if ($ == 0) x = 1;
        A[$] = x;
    }
    return 0;
}`,
			want: []string{`possible data race on "x"`},
		},
		{
			name:  "ps_orders_the_pair",
			check: "spawn-race",
			src: `
int x = 0;
int y = 0;
int A[8];
int main() {
    spawn(0, 7) {
        int inc = 1;
        if ($ == 0) x = 1;
        ps(inc, y);
        A[$] = x;
    }
    return 0;
}`,
			want: nil, // release (write side) / acquire (read side) via ps
		},
		{
			name:  "private_elements_never_conflict",
			check: "spawn-race",
			src: `
int A[8];
int main() {
    spawn(0, 7) {
        A[$] = A[$] + 1;
    }
    return 0;
}`,
			want: nil, // identical $-dependent index: per-thread element
		},
		{
			name:  "distinct_constant_elements",
			check: "spawn-race",
			src: `
int A[8];
int main() {
    spawn(0, 1) {
        if ($ == 0) A[0] = 1;
        if ($ == 1) A[1] = 2;
    }
    return 0;
}`,
			want: nil, // provably different elements
		},
		{
			name:  "varying_array_indices_conflict",
			check: "spawn-race",
			src: `
int A[8];
int B[8];
int main() {
    spawn(0, 7) {
        A[$] = 1;
        B[$] = A[7 - $];
    }
    return 0;
}`,
			want: []string{`possible data race on "A"`},
		},
		{
			// Formerly a documented false positive: both writes are guarded
			// by the same `$ == 0` condition, so only thread 0 ever executes
			// them and they are sequenced within that thread. The CFG builder
			// records the pinned thread id of `$ == k` guards, and two
			// accesses pinned to the same id are suppressed.
			name:  "same_guard_now_clean",
			check: "spawn-race",
			src: `
int x = 0;
int main() {
    spawn(0, 7) {
        if ($ == 0) x = 1;
        if ($ == 0) x = 2;
    }
    return 0;
}`,
			want: nil,
		},
		{
			name:  "different_pins_still_race",
			check: "spawn-race",
			src: `
int x = 0;
int main() {
    spawn(0, 7) {
        if ($ == 0) x = 1;
        if ($ == 1) x = 2;
    }
    return 0;
}`,
			want: []string{`possible data race on "x"`},
		},
		{
			name:  "single_thread_region_clean",
			check: "spawn-race",
			src: `
int x = 0;
int main() {
    spawn(0, 0) {
        x = $;
        x = x + 1;
    }
    return 0;
}`,
			want: nil, // spawn(0, 0): one virtual thread cannot race
		},
		{
			name:  "affine_disjoint_strides",
			check: "spawn-race",
			src: `
int A[16];
int main() {
    spawn(0, 7) {
        A[2 * $] = 1;
        A[2 * $ + 1] = A[2 * $];
    }
    return 0;
}`,
			want: nil, // 2$ vs 2$+1: different parity, never the same element
		},
		{
			name:  "affine_chased_through_local",
			check: "spawn-race",
			src: `
int A[16];
int main() {
    spawn(0, 7) {
        int i = $ + 8;
        A[i] = A[$];
    }
    return 0;
}`,
			want: nil, // i = $+8 > 7 >= any other thread's $ under spawn(0,7)
		},
		{
			name:  "affine_overlapping_strides_race",
			check: "spawn-race",
			src: `
int A[16];
int main() {
    spawn(0, 7) {
        A[$] = 1;
        A[$ + 1] = 2;
    }
    return 0;
}`,
			want: []string{`possible data race on "A"`}, // thread t and t+1 collide
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestSpawnDataflow(t *testing.T) {
	cases := []lintCase{
		{
			name:  "return_crosses_boundary",
			check: "spawn-dataflow",
			src: `
int A[8];
int main() {
    spawn(0, 7) {
        if (A[$] < 0) return 1;
    }
    return 0;
}`,
			want: []string{"return crosses the spawn boundary"},
		},
		{
			name:  "break_without_loop",
			check: "spawn-dataflow",
			src: `
int A[8];
int main() {
    int i;
    for (i = 0; i < 8; i++) {
        spawn(0, 7) {
            if (A[$] < 0) break;
        }
    }
    return 0;
}`,
			want: []string{"break crosses the spawn boundary"},
		},
		{
			name:  "break_inside_spawn_loop_ok",
			check: "spawn-dataflow",
			src: `
int A[8];
int main() {
    spawn(0, 7) {
        int j;
        for (j = 0; j < 8; j++) {
            if (A[j] < 0) break;
        }
        A[$] = 1;
    }
    return 0;
}`,
			want: nil,
		},
		{
			name:  "serial_accumulator_captured",
			check: "spawn-dataflow",
			src: `
int A[8];
int main() {
    int sum = 0;
    spawn(0, 7) {
        sum = sum + A[$];
    }
    print_int(sum);
    return 0;
}`,
			want: []string{`serial-scope local "sum" is assigned inside the spawn`},
		},
		{
			name:  "serial_ps_increment_rejected",
			check: "spawn-dataflow",
			src: `
int total = 0;
int main() {
    int inc = 1;
    spawn(0, 7) {
        ps(inc, total);
    }
    return 0;
}`,
			want: []string{`ps increment "inc" must be declared inside the spawn block`},
		},
		{
			// Formerly a documented false positive: with a single virtual
			// thread there is no second writer, so the shared capture cannot
			// race. The CFG's constant spawn bounds prove it.
			name:  "single_thread_capture_now_clean",
			check: "spawn-dataflow",
			src: `
int main() {
    int last = 0;
    spawn(0, 0) {
        last = $;
    }
    print_int(last);
    return 0;
}`,
			want: nil,
		},
		{
			name:  "single_thread_ps_increment_still_rejected",
			check: "spawn-dataflow",
			src: `
int total = 0;
int main() {
    int inc = 1;
    spawn(0, 0) {
        ps(inc, total);
    }
    return 0;
}`,
			// The register contract is broken regardless of thread count.
			want: []string{`ps increment "inc" must be declared inside the spawn block`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestPsMisuse(t *testing.T) {
	cases := []lintCase{
		{
			name:  "constant_increment_two",
			check: "ps-misuse",
			src: `
int total = 0;
int main() {
    spawn(0, 7) {
        int inc = 2;
        ps(inc, total);
    }
    return 0;
}`,
			want: []string{`ps increment "inc" is 2 here`},
		},
		{
			name:  "increment_zero_and_one_ok",
			check: "ps-misuse",
			src: `
int total = 0;
int A[8];
int main() {
    spawn(0, 7) {
        int inc = 0;
        if (A[$] != 0) inc = 1;
        ps(inc, total);
    }
    return 0;
}`,
			want: nil,
		},
		{
			name:  "psm_to_thread_private",
			check: "ps-misuse",
			src: `
int main() {
    spawn(0, 7) {
        int mine = 0;
        int one = 1;
        psm(one, mine);
    }
    return 0;
}`,
			want: []string{`psm to thread-private "mine"`},
		},
		{
			name:  "psm_to_global_ok",
			check: "ps-misuse",
			src: `
int total = 0;
int main() {
    spawn(0, 7) {
        int v = 5;
        psm(v, total);
    }
    return 0;
}`,
			want: nil,
		},
		{
			// FALSE POSITIVE (documented): the increment is 1 unless the
			// branch runs, and the branch may never run at runtime. The
			// constant tracker is traversal-order (no path merging), so
			// the branch assignment wins and the ps is flagged even on
			// executions that skip it. Statically the program still
			// violates the contract on the taken path, which is why the
			// shape stays a warning rather than being dropped.
			name:          "branch_overwrite_false_positive",
			check:         "ps-misuse",
			falsePositive: true,
			src: `
int total = 0;
int A[8];
int main() {
    spawn(0, 7) {
        int inc = 1;
        if (A[$] != 0) inc = 3;
        ps(inc, total);
    }
    return 0;
}`,
			want: []string{`ps increment "inc" is 3 here`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestVolatileChecks(t *testing.T) {
	cases := []lintCase{
		{
			name:  "reread_of_written_global",
			check: "volatile",
			src: `
int flag = 0;
int A[8];
int main() {
    spawn(0, 7) {
        if ($ == 0) flag = 1;
        int a = flag;
        int b = flag;
        A[$] = a + b;
    }
    return 0;
}`,
			want: []string{`"flag" is re-read with no intervening write or prefix-sum`},
		},
		{
			name:  "reread_of_uniform_global_ok",
			check: "volatile",
			src: `
int n = 8;
int A[8];
int main() {
    spawn(0, 7) {
        int a = n;
        int b = n;
        A[$] = a + b;
    }
    return 0;
}`,
			want: nil, // nothing writes n inside the spawn: the fold is harmless
		},
		{
			name:  "prefix_sum_refreshes",
			check: "volatile",
			src: `
int flag = 0;
int y = 0;
int A[8];
int main() {
    spawn(0, 7) {
        if ($ == 0) flag = 1;
        int a = flag;
        int inc = 0;
        ps(inc, y);
        int b = flag;
        A[$] = a + b;
    }
    return 0;
}`,
			want: nil,
		},
		{
			name:  "spin_wait",
			check: "volatile",
			src: `
int flag = 0;
int main() {
    spawn(0, 7) {
        if ($ == 0) flag = 1;
        while (flag == 0) { }
    }
    return 0;
}`,
			want: []string{`spin-wait on non-volatile global "flag"`},
		},
		{
			name:  "volatile_spin_ok",
			check: "volatile",
			src: `
volatile int flag = 0;
int main() {
    spawn(0, 7) {
        if ($ == 0) flag = 1;
        while (flag == 0) { }
    }
    return 0;
}`,
			want: nil,
		},
		{
			// FALSE POSITIVE (documented): the programmer may well want
			// one consistent snapshot and not care that both reads fold
			// into one load — the transformation is semantics-preserving
			// for this thread. The check cannot distinguish "wants a
			// fresh value" from "copied a value twice", so it flags the
			// re-read whenever another thread writes the global.
			name:          "snapshot_false_positive",
			check:         "volatile",
			falsePositive: true,
			src: `
int cnt = 0;
int A[8];
int B[8];
int main() {
    spawn(0, 7) {
        if ($ == 0) cnt = 7;
        A[$] = cnt;
        B[$] = cnt;
    }
    return 0;
}`,
			want: []string{`"cnt" is re-read`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestUninitRead(t *testing.T) {
	cases := []lintCase{
		{
			name:  "read_before_any_assignment",
			check: "uninit-read",
			src: `
int main() {
    int x;
    int y = x + 1;
    print_int(y);
    return 0;
}`,
			want: []string{`"x" is read here but no path from the function entry has assigned it`},
		},
		{
			name:  "assigned_on_all_paths_ok",
			check: "uninit-read",
			src: `
int n = 3;
int main() {
    int x;
    if (n > 0) { x = 1; } else { x = 2; }
    print_int(x);
    return 0;
}`,
			want: nil,
		},
		{
			// Deliberately quiet: one path assigns, so the read is only
			// *maybe* uninitialized. The check demands that every reaching
			// definition is the bare declaration before it speaks up.
			name:  "assigned_on_some_paths_stays_quiet",
			check: "uninit-read",
			src: `
int n = 3;
int main() {
    int x;
    if (n > 0) { x = 1; }
    print_int(x);
    return 0;
}`,
			want: nil,
		},
		{
			name:  "garbage_psm_increment",
			check: "uninit-read",
			src: `
int total = 0;
int main() {
    spawn(0, 7) {
        int t;
        psm(t, total);
    }
    return 0;
}`,
			// psm reads its increment before overwriting it with the old base.
			want: []string{`"t" is read here but no path from the function entry has assigned it`},
		},
		{
			name:  "unreachable_read_ignored",
			check: "uninit-read",
			src: `
int main() {
    int x;
    return 0;
    print_int(x);
    return 1;
}`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestDeadStore(t *testing.T) {
	cases := []lintCase{
		{
			name:  "overwritten_before_read",
			check: "dead-store",
			src: `
int main() {
    int x;
    x = 1;
    x = 2;
    print_int(x);
    return 0;
}`,
			want: []string{`value stored to "x" is never read`},
		},
		{
			name:  "final_store_never_read",
			check: "dead-store",
			src: `
int n = 3;
int main() {
    int x = 0;
    x = n + 1;
    return 0;
}`,
			want: []string{`value stored to "x" is never read`},
		},
		{
			name:  "loop_carried_store_is_live",
			check: "dead-store",
			src: `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 8; i = i + 1) {
        s = s + i;
    }
    print_int(s);
    return 0;
}`,
			want: nil, // i = i + 1 and s = s + i are read by the next iteration
		},
		{
			name:  "spawn_carried_store_is_live",
			check: "dead-store",
			src: `
int A[8];
int main() {
    spawn(0, 7) {
        int mine = A[$];
        A[$] = mine + 1;
    }
    return 0;
}`,
			want: nil,
		},
		{
			name:  "self_assignment_idiom_ok",
			check: "dead-store",
			src: `
int main() {
    int unused = 0;
    unused = unused;
    return 0;
}`,
			want: nil, // the C idiom for an intentionally unused variable
		},
		{
			name:  "branch_read_keeps_store_alive",
			check: "dead-store",
			src: `
int n = 3;
int main() {
    int x = 0;
    x = 7;
    if (n > 0) { print_int(x); }
    return 0;
}`,
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestJoinSafety(t *testing.T) {
	cases := []lintCase{
		{
			name:  "infinite_loop_never_joins",
			check: "join-safety",
			src: `
int A[8];
int main() {
    spawn(0, 7) {
        while (1) { A[$] = A[$] + 1; }
    }
    return 0;
}`,
			want: []string{"can never arrive at the spawn's join barrier"},
		},
		{
			name:  "breakable_loop_joins",
			check: "join-safety",
			src: `
int A[8];
int main() {
    spawn(0, 7) {
        while (1) {
            if (A[$] > 0) { break; }
            A[$] = A[$] + 1;
        }
    }
    return 0;
}`,
			want: nil,
		},
		{
			name:  "spin_wait_as_barrier",
			check: "join-safety",
			src: `
int flag = 0;
int A[8];
int main() {
    spawn(0, 7) {
        if ($ == 0) { flag = 1; }
        while (flag == 0) { }
        A[$] = 1;
    }
    return 0;
}`,
			want: []string{`spin-wait on "flag" stands in for the spawn's join barrier`},
		},
		{
			name:  "psm_updated_flag_ok",
			check: "join-safety",
			src: `
int done = 0;
int A[8];
int main() {
    spawn(0, 7) {
        int one = 1;
        A[$] = $;
        psm(one, done);
        while (done < 8) { }
    }
    return 0;
}`,
			want: nil, // the prefix-sum orders the flag updates
		},
		{
			name:  "serial_infinite_loop_out_of_scope",
			check: "join-safety",
			src: `
int main() {
    while (1) { }
    return 0;
}`,
			want: nil, // only spawn regions owe the join barrier
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { runCase(t, c) })
	}
}

func TestSuppressionComments(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    spawn(0, 7) {
        sum = sum + $; // xmtlint:ignore spawn-dataflow
    }
    print_int(sum);
    return 0;
}`
	if ds := analysis.Analyze("s.c", src, nil); len(ds) != 0 {
		t.Errorf("same-line suppression failed: %v", ds)
	}
	above := strings.Replace(src,
		"        sum = sum + $; // xmtlint:ignore spawn-dataflow",
		"        // xmtlint:ignore\n        sum = sum + $;", 1)
	if ds := analysis.Analyze("s.c", above, nil); len(ds) != 0 {
		t.Errorf("bare line-above suppression failed: %v", ds)
	}
	wrong := strings.Replace(src, "ignore spawn-dataflow", "ignore volatile", 1)
	if ds := analysis.Analyze("s.c", wrong, nil); len(ds) != 1 {
		t.Errorf("suppression of a different check must not apply: %v", ds)
	}
}

func TestFrontEndFailuresBecomeDiagnostics(t *testing.T) {
	// Parse error: one position-carrying "parse" diagnostic.
	ds := analysis.Analyze("p.c", "int main( {", nil)
	if len(ds) != 1 || ds[0].Check != "parse" || ds[0].Severity != diag.Error || !ds[0].Pos.IsValid() {
		t.Errorf("parse failure diagnostics = %v", ds)
	}
	// Sema error: a "sema" diagnostic plus the syntactic passes.
	src := `
int main() {
    undeclared = 1;
    spawn(0, 7) {
        return 1;
    }
    return 0;
}`
	ds = analysis.Analyze("s.c", src, nil)
	var checks []string
	for _, d := range ds {
		checks = append(checks, d.Check)
	}
	joined := strings.Join(checks, ",")
	if !strings.Contains(joined, "sema") || !strings.Contains(joined, "spawn-dataflow") {
		t.Errorf("sema failure should keep syntactic passes running, got checks %v", checks)
	}
}

func TestRunChecksFilter(t *testing.T) {
	// misuse-style source that trips several checks; the filter must
	// restrict output to the requested pass.
	src := `
int total = 0;
int main() {
    int sum = 0;
    spawn(0, 7) {
        sum = sum + $;
        int inc = 2;
        ps(inc, total);
    }
    return 0;
}`
	ds := analysis.Analyze("f.c", src, map[string]bool{"ps-misuse": true})
	if len(ds) != 1 || ds[0].Check != "ps-misuse" {
		t.Errorf("-checks filter leaked other passes: %v", ds)
	}
}
