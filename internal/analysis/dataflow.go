package analysis

import (
	"fmt"

	"xmtgo/internal/analysis/dataflow"
	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// checkSpawnDataflow flags dataflow and control flow that illegally
// crosses a spawn boundary — the bug class the outlining pre-pass exists
// to contain (paper Fig. 8):
//
//   - return, and break/continue whose target loop or switch lies outside
//     the spawn, would transfer control out of parallel code, which has
//     no meaning on the TCUs (errors; these double the sema rules so
//     xmtlint reports them even on sources sema rejects). The CFG builder
//     records these as region escapes, so the check is a readout;
//   - a serial-scope local written inside the spawn is captured by
//     reference by the outlining pass and therefore shared — unsynchronized
//     — by every virtual thread; the classic broken pattern is a serial
//     accumulator updated with += instead of ps/psm (warning; needs
//     resolved symbols, so it is skipped when sema failed). A spawn whose
//     constant bounds prove a single virtual thread (spawn(k, k)) has no
//     second writer and is not warned about — though a serial-scope ps/psm
//     increment stays an error, because the register contract is broken
//     regardless of thread count.
func checkSpawnDataflow(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, g := range u.Graphs() {
		for _, reg := range g.Regions {
			for _, esc := range reg.Escapes {
				ds = append(ds, escapeDiag(esc))
			}
			ds = append(ds, captureDiags(reg)...)
		}
	}
	return ds
}

func escapeDiag(esc dataflow.Escape) diag.Diagnostic {
	var msg string
	switch esc.Kind {
	case dataflow.EscReturn:
		msg = "return crosses the spawn boundary: a virtual thread cannot leave parallel code (the outlined spawn function has no caller frame to return to, paper Fig. 8)"
	case dataflow.EscBreak:
		msg = "break crosses the spawn boundary: the enclosing loop or switch is outside the parallel region"
	default:
		msg = "continue crosses the spawn boundary: the enclosing loop is outside the parallel region"
	}
	return diag.Diagnostic{
		Check:    "spawn-dataflow",
		Severity: diag.Error,
		Pos:      esc.Pos.Diag(),
		Msg:      msg,
	}
}

// captureDiags flags serial-scope locals mutated inside the spawn body.
// After outlining they are captured by reference, so every virtual thread
// writes the same storage with no ordering — almost always a racy
// accumulator that should be a ps/psm instead. Requires resolved symbols;
// silently does nothing before sema (Sym is nil).
func captureDiags(reg *dataflow.Region) []diag.Diagnostic {
	sp := reg.Spawn
	single := reg.SingleThread()
	private := declaredIn(sp.Body)
	reported := make(map[*xmtc.Symbol]bool)
	var ds []diag.Diagnostic
	serialLocal := func(sym *xmtc.Symbol) bool {
		if sym == nil || private[sym] || reported[sym] {
			return false
		}
		return sym.Kind == xmtc.SymLocal || sym.Kind == xmtc.SymParam
	}
	flag := func(sym *xmtc.Symbol, pos xmtc.Pos, how string) {
		reported[sym] = true
		if single {
			return // one virtual thread: the shared capture cannot race
		}
		ds = append(ds, diag.Diagnostic{
			Check:    "spawn-dataflow",
			Severity: diag.Warning,
			Pos:      pos.Diag(),
			Msg: fmt.Sprintf("serial-scope local %q is %s inside the spawn: outlining captures it by reference, so every virtual thread shares one unsynchronized copy (paper Fig. 8); declare it inside the spawn or combine per-thread results with ps/psm",
				sym.Name, how),
		})
	}
	eachStmt(sp.Body, func(s xmtc.Stmt) {
		stmtExprs(s, func(root xmtc.Expr) {
			eachExpr(root, func(e xmtc.Expr) {
				switch n := e.(type) {
				case *xmtc.Assign:
					if id, ok := n.LHS.(*xmtc.Ident); ok && serialLocal(id.Sym) {
						flag(id.Sym, n.Pos, "assigned")
					}
				case *xmtc.IncDec:
					if id, ok := n.X.(*xmtc.Ident); ok && serialLocal(id.Sym) {
						flag(id.Sym, n.Pos, "modified")
					}
				case *xmtc.Call:
					// ps/psm store the old base value into their increment,
					// so a serial-scope increment is also a by-reference
					// capture — and one the pre-pass will reject outright.
					if _, ok := isSyncCall(n); ok && len(n.Args) > 0 {
						if id, ok := n.Args[0].(*xmtc.Ident); ok && serialLocal(id.Sym) {
							reported[id.Sym] = true
							ds = append(ds, diag.Diagnostic{
								Check:    "spawn-dataflow",
								Severity: diag.Error,
								Pos:      n.Pos.Diag(),
								Msg: fmt.Sprintf("%s increment %q must be declared inside the spawn block: a by-reference capture would break the primitive's register contract",
									n.Name, id.Sym.Name),
							})
						}
					}
				}
			})
		})
	})
	return ds
}
