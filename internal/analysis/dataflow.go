package analysis

import (
	"fmt"

	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// checkSpawnDataflow flags dataflow and control flow that illegally
// crosses a spawn boundary — the bug class the outlining pre-pass exists
// to contain (paper Fig. 8):
//
//   - return, and break/continue whose target loop or switch lies outside
//     the spawn, would transfer control out of parallel code, which has
//     no meaning on the TCUs (errors; these double the sema rules so
//     xmtlint reports them even on sources sema rejects);
//   - a serial-scope local written inside the spawn is captured by
//     reference by the outlining pass and therefore shared — unsynchronized
//     — by every virtual thread; the classic broken pattern is a serial
//     accumulator updated with += instead of ps/psm (warning; needs
//     resolved symbols, so it is skipped when sema failed).
func checkSpawnDataflow(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, d := range u.File.Decls {
		fd, ok := d.(*xmtc.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		w := &dataflowWalker{}
		w.stmt(fd.Body)
		ds = append(ds, w.ds...)
	}
	return ds
}

type dataflowWalker struct {
	ds         []diag.Diagnostic
	inSpawn    bool
	loopDepth  int // loops opened inside the current spawn
	breakDepth int // loops or switches opened inside the current spawn
}

func (w *dataflowWalker) report(sev diag.Severity, pos xmtc.Pos, format string, args ...any) {
	w.ds = append(w.ds, diag.Diagnostic{
		Check:    "spawn-dataflow",
		Severity: sev,
		Pos:      pos.Diag(),
		Msg:      fmt.Sprintf(format, args...),
	})
}

func (w *dataflowWalker) stmt(s xmtc.Stmt) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			w.stmt(st)
		}
	case *xmtc.IfStmt:
		w.stmt(n.Then)
		if n.Else != nil {
			w.stmt(n.Else)
		}
	case *xmtc.WhileStmt:
		w.loop(n.Body)
	case *xmtc.DoStmt:
		w.loop(n.Body)
	case *xmtc.ForStmt:
		if n.Init != nil {
			w.stmt(n.Init)
		}
		w.loop(n.Body)
	case *xmtc.SwitchStmt:
		if w.inSpawn {
			w.breakDepth++
		}
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				w.stmt(st)
			}
		}
		if w.inSpawn {
			w.breakDepth--
		}
	case *xmtc.ReturnStmt:
		if w.inSpawn {
			w.report(diag.Error, n.Pos,
				"return crosses the spawn boundary: a virtual thread cannot leave parallel code (the outlined spawn function has no caller frame to return to, paper Fig. 8)")
		}
	case *xmtc.BreakStmt:
		if w.inSpawn && w.breakDepth == 0 {
			w.report(diag.Error, n.Pos,
				"break crosses the spawn boundary: the enclosing loop or switch is outside the parallel region")
		}
	case *xmtc.ContinueStmt:
		if w.inSpawn && w.loopDepth == 0 {
			w.report(diag.Error, n.Pos,
				"continue crosses the spawn boundary: the enclosing loop is outside the parallel region")
		}
	case *xmtc.SpawnStmt:
		if w.inSpawn {
			// Nested spawn: serialized, stays in the same region.
			w.stmt(n.Body)
			return
		}
		w.inSpawn = true
		savedLoop, savedBreak := w.loopDepth, w.breakDepth
		w.loopDepth, w.breakDepth = 0, 0
		w.checkCaptures(n)
		w.stmt(n.Body)
		w.loopDepth, w.breakDepth = savedLoop, savedBreak
		w.inSpawn = false
	}
}

func (w *dataflowWalker) loop(body xmtc.Stmt) {
	if w.inSpawn {
		w.loopDepth++
		w.breakDepth++
	}
	w.stmt(body)
	if w.inSpawn {
		w.loopDepth--
		w.breakDepth--
	}
}

// checkCaptures flags serial-scope locals mutated inside the spawn body.
// After outlining they are captured by reference, so every virtual thread
// writes the same storage with no ordering — almost always a racy
// accumulator that should be a ps/psm instead. Requires resolved symbols;
// silently does nothing before sema (Sym is nil).
func (w *dataflowWalker) checkCaptures(sp *xmtc.SpawnStmt) {
	private := declaredIn(sp.Body)
	reported := make(map[*xmtc.Symbol]bool)
	serialLocal := func(sym *xmtc.Symbol) bool {
		if sym == nil || private[sym] || reported[sym] {
			return false
		}
		return sym.Kind == xmtc.SymLocal || sym.Kind == xmtc.SymParam
	}
	flag := func(sym *xmtc.Symbol, pos xmtc.Pos, how string) {
		reported[sym] = true
		w.report(diag.Warning, pos,
			"serial-scope local %q is %s inside the spawn: outlining captures it by reference, so every virtual thread shares one unsynchronized copy (paper Fig. 8); declare it inside the spawn or combine per-thread results with ps/psm", sym.Name, how)
	}
	eachStmt(sp.Body, func(s xmtc.Stmt) {
		stmtExprs(s, func(root xmtc.Expr) {
			eachExpr(root, func(e xmtc.Expr) {
				switch n := e.(type) {
				case *xmtc.Assign:
					if id, ok := n.LHS.(*xmtc.Ident); ok && serialLocal(id.Sym) {
						flag(id.Sym, n.Pos, "assigned")
					}
				case *xmtc.IncDec:
					if id, ok := n.X.(*xmtc.Ident); ok && serialLocal(id.Sym) {
						flag(id.Sym, n.Pos, "modified")
					}
				case *xmtc.Call:
					// ps/psm store the old base value into their increment,
					// so a serial-scope increment is also a by-reference
					// capture — and one the pre-pass will reject outright.
					if _, ok := isSyncCall(n); ok && len(n.Args) > 0 {
						if id, ok := n.Args[0].(*xmtc.Ident); ok && serialLocal(id.Sym) {
							reported[id.Sym] = true
							w.report(diag.Error, n.Pos,
								"%s increment %q must be declared inside the spawn block: a by-reference capture would break the primitive's register contract", n.Name, id.Sym.Name)
						}
					}
				}
			})
		})
	})
}
