package dataflow

import (
	"xmtgo/internal/xmtc"
)

// bits is a fixed-width bitset used by the dataflow solvers.
type bits []uint64

func newBits(n int) bits { return make(bits, (n+63)/64) }

func (b bits) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bits) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// orWith unions o into b and reports whether b changed.
func (b bits) orWith(o bits) bool {
	changed := false
	for i, w := range o {
		if nw := b[i] | w; nw != b[i] {
			b[i] = nw
			changed = true
		}
	}
	return changed
}

func (b bits) clone() bits {
	c := make(bits, len(b))
	copy(c, b)
	return c
}

// DefSite is one definition tracked by reaching-definitions analysis: either
// a RefDef in some block, or a synthetic entry definition modeling the value
// a parameter or global already holds when the function starts.
type DefSite struct {
	ID     int
	Sym    *xmtc.Symbol
	Block  *Block // nil for entry definitions
	RefIdx int
	Entry  bool
}

// Ref returns the defining reference, or nil for an entry definition.
func (d *DefSite) Ref() *Ref {
	if d.Block == nil {
		return nil
	}
	return &d.Block.Refs[d.RefIdx]
}

// Reach is the reaching-definitions solution for one graph.
type Reach struct {
	g     *Graph
	defs  []*DefSite
	bySym map[*xmtc.Symbol][]*DefSite
	in    []bits // per block ID: definitions reaching the block entry
}

// ReachingDefs runs forward reaching-definitions analysis. A strong
// definition (whole-scalar write of a symbol whose address is never taken)
// kills prior definitions of the symbol; element and member writes are weak
// (generate, never kill). Calls are ignored: queries about address-taken
// symbols are not supported (callers must consult Graph.AddressTaken).
func (g *Graph) ReachingDefs() *Reach {
	r := &Reach{g: g, bySym: make(map[*xmtc.Symbol][]*DefSite)}
	addDef := func(d *DefSite) *DefSite {
		d.ID = len(r.defs)
		r.defs = append(r.defs, d)
		r.bySym[d.Sym] = append(r.bySym[d.Sym], d)
		return d
	}

	// Entry definitions: parameters and globals hold a value on entry
	// (globals are zero-initialized by the loader, parameters by the call).
	entryDefs := make(map[*xmtc.Symbol]*DefSite)
	for _, blk := range g.Blocks {
		for _, ref := range blk.Refs {
			s := ref.Sym
			if s == nil || entryDefs[s] != nil {
				continue
			}
			if s.Kind == xmtc.SymParam || s.Kind == xmtc.SymGlobal {
				entryDefs[s] = addDef(&DefSite{Sym: s, Entry: true})
			}
		}
	}
	// Real definitions, in traversal order (deterministic IDs).
	for _, blk := range g.Blocks {
		for i := range blk.Refs {
			ref := &blk.Refs[i]
			if ref.Kind == RefDef && ref.Sym != nil {
				addDef(&DefSite{Sym: ref.Sym, Block: blk, RefIdx: i})
			}
		}
	}

	n := len(r.defs)
	gen := make([]bits, len(g.Blocks))
	kill := make([]bits, len(g.Blocks))
	out := make([]bits, len(g.Blocks))
	r.in = make([]bits, len(g.Blocks))
	defAt := make(map[*Block]map[int]*DefSite)
	for _, d := range r.defs {
		if d.Block != nil {
			m := defAt[d.Block]
			if m == nil {
				m = make(map[int]*DefSite)
				defAt[d.Block] = m
			}
			m[d.RefIdx] = d
		}
	}
	for id, blk := range g.Blocks {
		gen[id], kill[id], out[id], r.in[id] = newBits(n), newBits(n), newBits(n), newBits(n)
		for i := range blk.Refs {
			ref := &blk.Refs[i]
			if ref.Kind != RefDef || ref.Sym == nil {
				continue
			}
			d := defAt[blk][i]
			if r.strong(ref) {
				for _, o := range r.bySym[ref.Sym] {
					gen[id][o.ID/64] &^= 1 << (uint(o.ID) % 64)
					kill[id].set(o.ID)
				}
				kill[id][d.ID/64] &^= 1 << (uint(d.ID) % 64)
			}
			gen[id].set(d.ID)
		}
	}
	for _, d := range entryDefs {
		r.in[g.Entry.ID].set(d.ID)
	}

	// Round-robin to a fixpoint; graphs are small and blocks are already in
	// near-topological (traversal) order, so this converges in a few passes.
	for changed := true; changed; {
		changed = false
		for id, blk := range g.Blocks {
			for _, p := range blk.Preds {
				if r.in[id].orWith(out[p.ID]) {
					changed = true
				}
			}
			for w := range out[id] {
				nw := gen[id][w] | (r.in[id][w] &^ kill[id][w])
				if nw != out[id][w] {
					out[id][w] = nw
					changed = true
				}
			}
		}
	}
	return r
}

// strong reports whether ref is a killing definition of its symbol.
func (r *Reach) strong(ref *Ref) bool {
	return !ref.Weak && !r.g.AddressTaken[ref.Sym]
}

// At returns the definitions of sym reaching the reference at refIdx in blk
// (i.e. just before it executes), in deterministic ID order.
func (r *Reach) At(blk *Block, refIdx int, sym *xmtc.Symbol) []*DefSite {
	live := make(map[int]bool)
	for _, d := range r.bySym[sym] {
		if r.in[blk.ID].has(d.ID) {
			live[d.ID] = true
		}
	}
	for i := 0; i < refIdx && i < len(blk.Refs); i++ {
		ref := &blk.Refs[i]
		if ref.Kind != RefDef || ref.Sym != sym {
			continue
		}
		if r.strong(ref) {
			live = make(map[int]bool)
		}
		for _, d := range r.bySym[sym] {
			if d.Block == blk && d.RefIdx == i {
				live[d.ID] = true
			}
		}
	}
	var out []*DefSite
	for _, d := range r.bySym[sym] { // bySym is in ID order
		if live[d.ID] {
			out = append(out, d)
		}
	}
	return out
}

// AffineIndex tries to resolve an index expression, evaluated just before
// the reference at refIdx in blk, to the affine form a*$ + c, chasing local
// scalars through their unique reaching definitions. Inside a spawn region
// only region-private locals are chased (a serial-scope local is shared by
// all virtual threads, so its value is not a per-thread function of $).
func (r *Reach) AffineIndex(blk *Block, refIdx int, e xmtc.Expr) (a, c int32, ok bool) {
	return r.affine(blk, refIdx, e, 8)
}

func (r *Reach) affine(blk *Block, refIdx int, e xmtc.Expr, depth int) (a, c int32, ok bool) {
	if e == nil || depth == 0 {
		return 0, 0, false
	}
	if v, isConst := xmtc.FoldConst(e); isConst {
		return 0, v, true
	}
	switch n := e.(type) {
	case *xmtc.TidExpr:
		return 1, 0, true
	case *xmtc.Cast:
		return r.affine(blk, refIdx, n.X, depth)
	case *xmtc.Unary:
		switch n.Op {
		case xmtc.ADD:
			return r.affine(blk, refIdx, n.X, depth)
		case xmtc.SUB:
			if xa, xc, xok := r.affine(blk, refIdx, n.X, depth); xok {
				return -xa, -xc, true
			}
		}
	case *xmtc.Binary:
		xa, xc, xok := r.affine(blk, refIdx, n.X, depth)
		ya, yc, yok := r.affine(blk, refIdx, n.Y, depth)
		if !xok || !yok {
			return 0, 0, false
		}
		switch n.Op {
		case xmtc.ADD:
			return xa + ya, xc + yc, true
		case xmtc.SUB:
			return xa - ya, xc - yc, true
		case xmtc.MUL:
			if xa == 0 {
				return xc * ya, xc * yc, true
			}
			if ya == 0 {
				return xa * yc, xc * yc, true
			}
		}
	case *xmtc.Ident:
		sym := n.Sym
		if sym == nil || sym.Kind != xmtc.SymLocal || r.g.AddressTaken[sym] {
			return 0, 0, false
		}
		if blk.Region != nil && !blk.Region.Private[sym] {
			return 0, 0, false
		}
		ds := r.At(blk, refIdx, sym)
		if len(ds) != 1 || ds[0].Entry {
			return 0, 0, false
		}
		def := ds[0].Ref()
		if def == nil || def.Weak || def.SyncDef || def.Compound || def.RHS == nil || def.RHSCall {
			return 0, 0, false
		}
		return r.affine(ds[0].Block, ds[0].RefIdx, def.RHS, depth-1)
	}
	return 0, 0, false
}

// TidDependent reports whether e, evaluated just before the reference at
// refIdx in blk, carries the thread id *routed through shared data*: it
// reads a global array element whose index is $-dependent — directly, or
// transitively through region-private locals chased by their unique
// reaching definitions (the same discipline and depth as AffineIndex):
//
//	int u = esrc[$];
//	label[u] = ...;   // TidDependent: u came out of shared data at $
//
// Pure arithmetic of $ (shifts, masks, strides — the FFT butterfly index
// pattern) deliberately answers false even though it mentions $: such
// indices express a partition the programmer designed to be disjoint, and
// flagging every unprovable one would bury real findings. A value loaded
// from shared memory at a $-dependent position, by contrast, can collide
// for perfectly ordinary inputs (two edges sharing a vertex), so it is
// the precision worth buying. Any unresolvable link in the chase —
// multiple reaching definitions, a call, a serial-scope local — answers
// false: a true verdict is a proof of data-routed $-dependence, never a
// guess.
func (r *Reach) TidDependent(blk *Block, refIdx int, e xmtc.Expr) bool {
	return r.tidData(blk, refIdx, e, 8)
}

// tidData looks for a global-array load at a $-dependent index anywhere
// inside e, chasing locals through unique reaching definitions.
func (r *Reach) tidData(blk *Block, refIdx int, e xmtc.Expr, depth int) bool {
	if e == nil || depth == 0 {
		return false
	}
	dep := false
	eachExpr(e, func(x xmtc.Expr) {
		if dep {
			return
		}
		switch n := x.(type) {
		case *xmtc.Index:
			sym := rootSym(n.X)
			if sym != nil && sym.Kind == xmtc.SymGlobal && r.tidAny(blk, refIdx, n.I, depth-1) {
				dep = true
			}
		case *xmtc.Ident:
			if def, dblk, didx, ok := r.uniqueDef(blk, refIdx, n.Sym); ok &&
				r.tidData(dblk, didx, def, depth-1) {
				dep = true
			}
		}
	})
	return dep
}

// tidAny reports plain $-dependence of e in any form (arithmetic included),
// chasing locals through unique reaching definitions.
func (r *Reach) tidAny(blk *Block, refIdx int, e xmtc.Expr, depth int) bool {
	if e == nil || depth == 0 {
		return false
	}
	if containsTid(e) {
		return true
	}
	dep := false
	eachExpr(e, func(x xmtc.Expr) {
		if dep {
			return
		}
		if id, ok := x.(*xmtc.Ident); ok {
			if def, dblk, didx, okd := r.uniqueDef(blk, refIdx, id.Sym); okd &&
				r.tidAny(dblk, didx, def, depth-1) {
				dep = true
			}
		}
	})
	return dep
}

// uniqueDef resolves a region-private local to the right-hand side of its
// single chaseable reaching definition, mirroring the affine chase's
// eligibility rules.
func (r *Reach) uniqueDef(blk *Block, refIdx int, sym *xmtc.Symbol) (rhs xmtc.Expr, dblk *Block, didx int, ok bool) {
	if sym == nil || sym.Kind != xmtc.SymLocal || r.g.AddressTaken[sym] {
		return nil, nil, 0, false
	}
	if blk.Region != nil && !blk.Region.Private[sym] {
		return nil, nil, 0, false
	}
	ds := r.At(blk, refIdx, sym)
	if len(ds) != 1 || ds[0].Entry {
		return nil, nil, 0, false
	}
	def := ds[0].Ref()
	if def == nil || def.Weak || def.SyncDef || def.Compound || def.RHS == nil || def.RHSCall {
		return nil, nil, 0, false
	}
	return def.RHS, ds[0].Block, ds[0].RefIdx, true
}

// Disjoint reports whether two accesses with affine indices a1*$+c1 and
// a2*$+c2 into the same array can be proven never to touch the same element
// on two *different* virtual threads of region reg. (Same-thread aliasing is
// ordered by program order and cannot race.)
func Disjoint(a1, c1, a2, c2 int32, reg *Region) bool {
	if a1 == 0 && a2 == 0 {
		return c1 != c2
	}
	if a1 == a2 { // equal stride: a*(t-u) == c2-c1
		d := c2 - c1
		if d == 0 {
			return true // same element only when the threads coincide
		}
		if d%a1 != 0 {
			return true
		}
		if reg != nil && reg.BoundsKnown {
			k := int64(d / a1)
			if k < 0 {
				k = -k
			}
			if k > int64(reg.HighConst)-int64(reg.LowConst) {
				return true // required thread-id offset exceeds the range
			}
		}
		return false
	}
	if a1 == 0 || a2 == 0 {
		// One side is a fixed element k, the other a*u+c: they can only
		// collide on the thread u = (k-c)/a, which must exist and (when the
		// bounds are known) lie in [low, high].
		var a, c, k int32
		if a1 == 0 {
			a, c, k = a2, c2, c1
		} else {
			a, c, k = a1, c1, c2
		}
		if (k-c)%a != 0 {
			return true
		}
		if reg != nil && reg.BoundsKnown {
			u := (k - c) / a
			if u < reg.LowConst || u > reg.HighConst {
				return true
			}
		}
		return false
	}
	// Different nonzero strides: with known, modest bounds, scan thread ids
	// for a cross-thread collision; otherwise stay conservative.
	if reg != nil && reg.BoundsKnown {
		lo, hi := int64(reg.LowConst), int64(reg.HighConst)
		if hi >= lo && hi-lo <= 4096 {
			for t := lo; t <= hi; t++ {
				num := int64(a1)*t + int64(c1) - int64(c2)
				if num%int64(a2) != 0 {
					continue
				}
				if u := num / int64(a2); u >= lo && u <= hi && u != t {
					return false
				}
			}
			return true
		}
	}
	return false
}

// Live is the liveness solution for one graph. It is sound only for scalar
// locals whose address is never taken (the only symbols the dead-store
// check queries): globals escape through calls and the function return, and
// address-taken locals through pointers, neither of which is modeled.
type Live struct {
	g   *Graph
	idx map[*xmtc.Symbol]int
	out []bits // per block ID: symbols live at block exit
}

// Liveness runs backward liveness analysis over all symbols referenced in
// the graph. The spawn region's carried back edge makes a value written by
// one virtual thread and read by another count as live, so dead-store never
// fires on legitimately loop-carried (cross-thread) stores.
func (g *Graph) Liveness() *Live {
	l := &Live{g: g, idx: make(map[*xmtc.Symbol]int)}
	for _, blk := range g.Blocks {
		for i := range blk.Refs {
			if s := blk.Refs[i].Sym; s != nil {
				if _, ok := l.idx[s]; !ok {
					l.idx[s] = len(l.idx)
				}
			}
		}
	}
	n := len(l.idx)
	l.out = make([]bits, len(g.Blocks))
	in := make([]bits, len(g.Blocks))
	for id := range g.Blocks {
		l.out[id], in[id] = newBits(n), newBits(n)
	}
	for changed := true; changed; {
		changed = false
		for id := len(g.Blocks) - 1; id >= 0; id-- {
			blk := g.Blocks[id]
			for _, s := range blk.Succs {
				if l.out[id].orWith(in[s.ID]) {
					changed = true
				}
			}
			live := l.out[id].clone()
			for i := len(blk.Refs) - 1; i >= 0; i-- {
				ref := &blk.Refs[i]
				if ref.Sym == nil {
					continue
				}
				si := l.idx[ref.Sym]
				switch ref.Kind {
				case RefDef:
					if !ref.Weak && !g.AddressTaken[ref.Sym] {
						live[si/64] &^= 1 << (uint(si) % 64)
					}
					if ref.Index != nil {
						live.set(si) // element write reads the base address
					}
				case RefUse:
					live.set(si)
				}
			}
			if in[id].orWith(live) {
				changed = true
			}
		}
	}
	return l
}

// DeadAfter reports whether the definition of sym at refIdx in blk is dead:
// no path from just after it reads sym before the next killing write.
func (l *Live) DeadAfter(blk *Block, refIdx int, sym *xmtc.Symbol) bool {
	for i := refIdx + 1; i < len(blk.Refs); i++ {
		ref := &blk.Refs[i]
		if ref.Sym != sym {
			continue
		}
		switch ref.Kind {
		case RefUse:
			return false
		case RefDef:
			if ref.Index != nil {
				return false // element write uses the base
			}
			if !ref.Weak && !l.g.AddressTaken[sym] {
				return true
			}
		}
	}
	si, ok := l.idx[sym]
	return ok && !l.out[blk.ID].has(si)
}

// Reachable returns, indexed by block ID, whether each block is reachable
// from the function entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if g.Entry != nil {
		walk(g.Entry)
	}
	return seen
}

// CanReach returns, indexed by block ID, whether each block can reach
// target by following successor edges.
func (g *Graph) CanReach(target *Block) []bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, p := range b.Preds {
			walk(p)
		}
	}
	if target != nil {
		walk(target)
	}
	return seen
}
