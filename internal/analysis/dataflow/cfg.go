// Package dataflow is the control-flow-graph and dataflow engine under the
// XMTC static analyzer: it lowers each function body to a per-function CFG
// of basic blocks whose contents are a linear stream of symbol references
// (reads, writes, prefix-sum syncs, call clobbers), and runs classic
// forward/backward dataflow over it — reaching definitions, liveness — plus
// the XMT-specific queries the checks in package analysis need: spawn-region
// membership, loop-carried dependence across virtual threads (a spawn body
// is modeled as a parallel loop with a carried back edge), affine `$`-index
// resolution through reaching definitions, and join reachability.
//
// The builder is deliberately faithful to the traversal order of the
// original AST-pattern checks: concatenating the Refs of Blocks in slice
// order reproduces the exact event order (including the prefix-sum counter
// values) the pre-CFG analyzer observed, so every suppression the old
// spawn-race check performed still holds; the CFG only ever adds precision.
// It also tolerates unchecked ASTs (nil symbols and types), because the
// spawn-dataflow escape check must run even when sema failed.
package dataflow

import (
	"xmtgo/internal/xmtc"
)

// RefKind classifies one entry of a block's reference stream.
type RefKind uint8

const (
	// RefUse reads a symbol (or an element of it).
	RefUse RefKind = iota
	// RefDef writes a symbol (or an element of it).
	RefDef
	// RefSync is a ps/psm call: a release/acquire ordering point.
	RefSync
	// RefClobber is a user function call: it may write any address-taken
	// local and any global, so definition tracking is cut conservatively.
	RefClobber
)

// Ref is one symbol reference in evaluation order. For an assignment the
// right-hand side's uses precede the left-hand side's definition, matching
// evaluation order (which is what point queries for reaching definitions
// and liveness need to get `x = x + 1` right).
type Ref struct {
	Kind  RefKind
	Sym   *xmtc.Symbol // nil for RefSync/RefClobber, or when sema failed
	Expr  xmtc.Expr    // the access path expression (nil for sync/clobber)
	Index xmtc.Expr    // innermost array index of the path, nil for scalars
	RHS   xmtc.Expr    // RefDef: assigned expression, nil when opaque
	Pos   xmtc.Pos
	Text  string // rendered access path, for messages

	// Race-model context, mirroring the legacy scanner.
	ValueTid bool  // definition whose stored value mentions $
	GuardTid bool  // executes under a $-dependent condition
	Pinned   bool  // the guard pins $ to exactly PinnedTid
	PinVal   int32 // the pinned thread id when Pinned
	Compound bool  // hidden half of a compound assignment or ++/--
	SyncIdx  int   // prefix-sums seen before this ref, traversal order

	// Definition provenance.
	Decl    bool // definition produced by a declaration statement
	HasInit bool // the declaration had an initializer
	SyncDef bool // ps/psm writing the old base value into its increment
	Weak    bool // may-write (array element or clobber): generates, never kills
	RHSCall bool // the assigned expression contains a call (side effects)
}

// Block is one basic block. Blocks appear in Graph.Blocks in source
// traversal order (the legacy analyzer's walk order), not reverse postorder.
type Block struct {
	ID     int
	Pos    xmtc.Pos
	Refs   []Ref
	Succs  []*Block
	Preds  []*Block
	Region *Region // enclosing outermost spawn region, nil in serial code
}

// EscapeKind classifies control flow illegally leaving a spawn region.
type EscapeKind uint8

const (
	EscReturn EscapeKind = iota
	EscBreak
	EscContinue
)

// Escape records a return/break/continue whose target lies outside the
// spawn region it occurs in (the paper's Fig. 8 outlining bug class).
type Escape struct {
	Kind EscapeKind
	Pos  xmtc.Pos
}

// SpinLoop is a non-constant loop inside a spawn region whose condition is
// re-evaluated every iteration — the candidate shape for a spin-wait on a
// shared location (the sync-safety discipline check inspects these).
type SpinLoop struct {
	Cond   xmtc.Expr
	Pos    xmtc.Pos
	Region *Region
}

// Region is one outermost spawn region. Nested spawns are serialized by the
// toolchain and folded into the enclosing region, exactly as the legacy
// checks did.
type Region struct {
	Spawn *xmtc.SpawnStmt
	Entry *Block // first block of the body
	Exit  *Block // the join: the block control reaches after the barrier
	// Blocks lists the region's blocks in traversal order.
	Blocks []*Block
	// SyncStart/SyncEnd delimit the function-wide sync counter over the
	// region, so SyncEnd-SyncStart is the region's prefix-sum count and
	// ref.SyncIdx-SyncStart is the legacy per-region "syncs before me".
	SyncStart, SyncEnd int
	Escapes            []Escape
	// Private are the symbols declared inside the body (per-thread storage).
	Private map[*xmtc.Symbol]bool
	// Low/High bounds when they fold to constants.
	LowConst, HighConst int32
	BoundsKnown         bool
}

// Syncs returns the number of prefix-sum sites in the region.
func (r *Region) Syncs() int { return r.SyncEnd - r.SyncStart }

// SingleThread reports whether the spawn provably starts exactly one
// virtual thread (spawn(k, k)), which cannot race with itself.
func (r *Region) SingleThread() bool {
	return r.BoundsKnown && r.LowConst == r.HighConst
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *xmtc.FuncDecl
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Regions are the outermost spawn regions in traversal order.
	Regions []*Region
	// SpinLoops are candidate spin-wait loops inside regions.
	SpinLoops []SpinLoop
	// AddressTaken marks symbols whose address escapes (&x): definition
	// tracking for them is conservative.
	AddressTaken map[*xmtc.Symbol]bool
	TotalSyncs   int
}

// Build lowers one function body to its CFG. fn.Body must be non-nil.
func Build(fn *xmtc.FuncDecl) *Graph {
	g := &Graph{Fn: fn, AddressTaken: make(map[*xmtc.Symbol]bool)}
	b := &builder{g: g}
	g.Entry = b.enter(b.newBlock(fn.GetPos()))
	g.Exit = b.newBlock(fn.GetPos())
	b.stmt(fn.Body)
	b.edge(b.cur, g.Exit)
	b.place(g.Exit)
	return g
}

// builder threads the walk state: the current block, the guard/pin stacks,
// the traversal-order sync counter and the break/continue targets.
type builder struct {
	g   *Graph
	cur *Block

	syncs    int
	guardTid int
	pins     []int32 // innermost pinned $ value last

	region *Region
	// loop/break depth inside the current region (escape classification).
	regionLoops  int
	regionBreaks int

	breakTargets    []*Block
	continueTargets []*Block
}

// newBlock creates a block without placing it in traversal order yet.
func (b *builder) newBlock(pos xmtc.Pos) *Block {
	return &Block{ID: -1, Pos: pos, Region: b.region}
}

// place appends a block at the current traversal position.
func (b *builder) place(blk *Block) *Block {
	blk.ID = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, blk)
	if blk.Region != nil {
		blk.Region.Blocks = append(blk.Region.Blocks, blk)
	}
	return blk
}

// enter places blk and makes it the current block.
func (b *builder) enter(blk *Block) *Block {
	b.place(blk)
	b.cur = blk
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// detach starts a fresh, unreachable block at the current position (after a
// return/break/continue): the legacy analyzer kept scanning statically dead
// code, so refs must still be emitted in order — just without a flow edge.
func (b *builder) detach(pos xmtc.Pos) {
	b.cur = b.enter(b.newBlock(pos))
	// Re-entering via enter() appended it; no predecessor edge on purpose.
}

func (b *builder) ref(r Ref) {
	r.SyncIdx = b.syncs
	r.GuardTid = r.GuardTid || b.guardTid > 0
	if len(b.pins) > 0 {
		r.Pinned = true
		r.PinVal = b.pins[len(b.pins)-1]
	}
	b.cur.Refs = append(b.cur.Refs, r)
}

// guarded runs body with cond's $-dependence pushed on the guard stack.
func (b *builder) guarded(cond xmtc.Expr, body func()) {
	tid := cond != nil && containsTid(cond)
	if tid {
		b.guardTid++
	}
	body()
	if tid {
		b.guardTid--
	}
}

// pinnedTid recognizes conditions of the form `$ == k` / `k == $` for a
// constant k: inside the then-branch, exactly one virtual thread runs.
func pinnedTid(cond xmtc.Expr) (int32, bool) {
	bin, ok := cond.(*xmtc.Binary)
	if !ok || bin.Op != xmtc.EQ {
		return 0, false
	}
	if _, ok := bin.X.(*xmtc.TidExpr); ok {
		if v, ok := xmtc.FoldConst(bin.Y); ok {
			return v, true
		}
	}
	if _, ok := bin.Y.(*xmtc.TidExpr); ok {
		if v, ok := xmtc.FoldConst(bin.X); ok {
			return v, true
		}
	}
	return 0, false
}

// condConst folds a loop/branch condition: known reports whether it folded,
// val its truth value. A nil condition (for(;;)) folds to true.
func condConst(cond xmtc.Expr) (val, known bool) {
	if cond == nil {
		return true, true
	}
	if v, ok := xmtc.FoldConst(cond); ok {
		return v != 0, true
	}
	return false, false
}

func (b *builder) stmt(s xmtc.Stmt) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			b.stmt(st)
		}
	case *xmtc.DeclStmt:
		b.declStmt(n)
	case *xmtc.ExprStmt:
		b.expr(n.X, false)
	case *xmtc.IfStmt:
		b.ifStmt(n)
	case *xmtc.WhileStmt:
		b.whileStmt(n)
	case *xmtc.DoStmt:
		b.doStmt(n)
	case *xmtc.ForStmt:
		b.forStmt(n)
	case *xmtc.SwitchStmt:
		b.switchStmt(n)
	case *xmtc.ReturnStmt:
		if n.X != nil {
			b.expr(n.X, false)
		}
		if b.region != nil {
			b.region.Escapes = append(b.region.Escapes, Escape{Kind: EscReturn, Pos: n.Pos})
		} else {
			b.edge(b.cur, b.g.Exit)
		}
		b.detach(n.Pos)
	case *xmtc.BreakStmt:
		if b.region != nil && b.regionBreaks == 0 {
			b.region.Escapes = append(b.region.Escapes, Escape{Kind: EscBreak, Pos: n.Pos})
		} else if len(b.breakTargets) > 0 {
			b.edge(b.cur, b.breakTargets[len(b.breakTargets)-1])
		}
		b.detach(n.Pos)
	case *xmtc.ContinueStmt:
		if b.region != nil && b.regionLoops == 0 {
			b.region.Escapes = append(b.region.Escapes, Escape{Kind: EscContinue, Pos: n.Pos})
		} else if len(b.continueTargets) > 0 {
			b.edge(b.cur, b.continueTargets[len(b.continueTargets)-1])
		}
		b.detach(n.Pos)
	case *xmtc.SpawnStmt:
		b.spawnStmt(n)
	}
}

func (b *builder) declStmt(n *xmtc.DeclStmt) {
	d := n.Decl
	hasInit := d.Init != nil || len(d.InitList) > 0
	if d.Init != nil {
		b.expr(d.Init, false)
	}
	for _, e := range d.InitList {
		b.expr(e, false)
	}
	if d.Sym != nil {
		b.ref(Ref{Kind: RefDef, Sym: d.Sym, RHS: d.Init, Pos: n.Pos,
			Decl: true, HasInit: hasInit,
			ValueTid: d.Init != nil && containsTid(d.Init),
			RHSCall:  containsCall(d.Init)})
	}
}

func (b *builder) ifStmt(n *xmtc.IfStmt) {
	b.expr(n.Cond, false)
	condBlk := b.cur
	join := b.newBlock(n.Pos)
	tid := n.Cond != nil && containsTid(n.Cond)
	if tid {
		b.guardTid++
	}
	pv, pinned := pinnedTid(n.Cond)

	thenBlk := b.newBlock(n.Then.GetPos())
	b.edge(condBlk, thenBlk)
	// The pin applies to the then-branch only: `if ($ == k)` proves exactly
	// one virtual thread executes it.
	if pinned {
		b.pins = append(b.pins, pv)
	}
	b.enter(thenBlk)
	b.stmt(n.Then)
	b.edge(b.cur, join)
	if pinned {
		b.pins = b.pins[:len(b.pins)-1]
	}
	if n.Else != nil {
		elseBlk := b.newBlock(n.Else.GetPos())
		b.edge(condBlk, elseBlk)
		b.enter(elseBlk)
		b.stmt(n.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(condBlk, join)
	}
	if tid {
		b.guardTid--
	}
	b.enter(join)
}

func (b *builder) whileStmt(n *xmtc.WhileStmt) {
	head := b.newBlock(n.Pos)
	b.edge(b.cur, head)
	b.enter(head)
	b.expr(n.Cond, false)
	val, known := condConst(n.Cond)
	exit := b.newBlock(n.Pos)
	body := b.newBlock(n.Body.GetPos())
	if !known || val {
		b.edge(head, body)
	}
	if !known || !val {
		b.edge(head, exit)
	}
	b.noteSpin(n.Cond, n.Pos, known)
	b.loopBody(exit, head, func() {
		b.guarded(n.Cond, func() {
			b.enter(body)
			b.stmt(n.Body)
		})
		b.edge(b.cur, head)
	})
	b.enter(exit)
}

func (b *builder) doStmt(n *xmtc.DoStmt) {
	body := b.newBlock(n.Body.GetPos())
	b.edge(b.cur, body)
	cond := b.newBlock(n.Pos)
	exit := b.newBlock(n.Pos)
	b.loopBody(exit, cond, func() {
		b.guarded(n.Cond, func() {
			b.enter(body)
			b.stmt(n.Body)
		})
		b.edge(b.cur, cond)
	})
	b.enter(cond)
	b.expr(n.Cond, false)
	val, known := condConst(n.Cond)
	if !known || val {
		b.edge(cond, body)
	}
	if !known || !val {
		b.edge(cond, exit)
	}
	b.noteSpin(n.Cond, n.Pos, known)
	b.enter(exit)
}

func (b *builder) forStmt(n *xmtc.ForStmt) {
	if n.Init != nil {
		b.stmt(n.Init)
	}
	head := b.newBlock(n.Pos)
	b.edge(b.cur, head)
	b.enter(head)
	if n.Cond != nil {
		b.expr(n.Cond, false)
	}
	val, known := condConst(n.Cond)
	exit := b.newBlock(n.Pos)
	body := b.newBlock(n.Body.GetPos())
	post := b.newBlock(n.Pos)
	if !known || val {
		b.edge(head, body)
	}
	if !known || !val {
		b.edge(head, exit)
	}
	b.noteSpin(n.Cond, n.Pos, known)
	b.loopBody(exit, post, func() {
		b.guarded(n.Cond, func() {
			b.enter(body)
			b.stmt(n.Body)
			b.edge(b.cur, post)
			b.enter(post)
			if n.Post != nil {
				b.expr(n.Post, false)
			}
			b.edge(post, head)
		})
	})
	b.enter(exit)
}

func (b *builder) switchStmt(n *xmtc.SwitchStmt) {
	b.expr(n.Tag, false)
	tag := b.cur
	exit := b.newBlock(n.Pos)
	if b.region != nil {
		b.regionBreaks++
	}
	b.breakTargets = append(b.breakTargets, exit)
	b.guarded(n.Tag, func() {
		var prev *Block // fallthrough source
		hasDefault := false
		for _, cl := range n.Cases {
			if cl.IsDefault {
				hasDefault = true
			}
			caseBlk := b.newBlock(cl.Pos)
			b.edge(tag, caseBlk)
			if prev != nil {
				b.edge(prev, caseBlk)
			}
			b.enter(caseBlk)
			for _, st := range cl.Body {
				b.stmt(st)
			}
			prev = b.cur
		}
		if prev != nil {
			b.edge(prev, exit)
		}
		if !hasDefault {
			b.edge(tag, exit)
		}
	})
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if b.region != nil {
		b.regionBreaks--
	}
	b.enter(exit)
}

// loopBody runs fn with the loop's break/continue targets pushed and, when
// inside a spawn region, the escape depths bumped.
func (b *builder) loopBody(brk, cont *Block, fn func()) {
	if b.region != nil {
		b.regionLoops++
		b.regionBreaks++
	}
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	fn()
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if b.region != nil {
		b.regionLoops--
		b.regionBreaks--
	}
}

// noteSpin records non-constant loops inside a region as spin candidates.
func (b *builder) noteSpin(cond xmtc.Expr, pos xmtc.Pos, constCond bool) {
	if b.region == nil || constCond || cond == nil {
		return
	}
	b.g.SpinLoops = append(b.g.SpinLoops, SpinLoop{Cond: cond, Pos: pos, Region: b.region})
}

func (b *builder) spawnStmt(n *xmtc.SpawnStmt) {
	b.expr(n.Low, false)
	b.expr(n.High, false)
	if b.region != nil {
		// Nested spawn: serialized by the toolchain, same region.
		b.stmt(n.Body)
		return
	}
	r := &Region{Spawn: n, SyncStart: b.syncs, Private: declaredIn(n.Body)}
	if lo, ok := xmtc.FoldConst(n.Low); ok {
		if hi, ok := xmtc.FoldConst(n.High); ok {
			r.LowConst, r.HighConst, r.BoundsKnown = lo, hi, true
		}
	}
	b.g.Regions = append(b.g.Regions, r)
	b.region = r

	body := b.newBlock(n.Body.GetPos())
	r.Entry = body
	b.edge(b.cur, body)
	b.enter(body)
	b.stmt(n.Body)
	last := b.cur
	r.SyncEnd = b.syncs
	b.region = nil
	exit := b.newBlock(n.Pos) // the join: serial code, outside the region
	r.Exit = exit
	// The join edge, plus the carried back edge: a spawn is a parallel
	// loop over $, so a value live at the body's end may be consumed by
	// another virtual thread's iteration.
	b.edge(last, exit)
	b.edge(last, body)
	b.enter(exit)
}

// expr emits the reference stream of one expression tree, in evaluation
// order. write applies to the root access path only.
func (b *builder) expr(e xmtc.Expr, write bool) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *xmtc.Assign:
		if n.Op != xmtc.ASSIGN {
			// Compound assignment: the location is read, combined, written.
			b.access(n.LHS, RefUse, Ref{Compound: true})
			b.indexReads(n.LHS)
			b.expr(n.RHS, false)
			b.access(n.LHS, RefDef, Ref{Compound: true,
				ValueTid: containsTid(n.RHS), RHSCall: containsCall(n.RHS)})
			return
		}
		b.expr(n.RHS, false)
		b.indexReads(n.LHS)
		b.access(n.LHS, RefDef, Ref{RHS: n.RHS,
			ValueTid: containsTid(n.RHS), RHSCall: containsCall(n.RHS)})
	case *xmtc.IncDec:
		b.access(n.X, RefUse, Ref{Compound: true})
		b.indexReads(n.X)
		b.access(n.X, RefDef, Ref{Compound: true})
	case *xmtc.Call:
		if isSyncCall(n) && len(n.Args) >= 2 {
			// The prefix-sum is the ordering operation itself: its base is
			// updated atomically at the ps unit / cache module, so it is not
			// a plain access. Index sub-expressions of the base are ordinary
			// reads; the increment is read and overwritten with the old base.
			b.ref(Ref{Kind: RefSync, Pos: n.GetPos()})
			b.syncs++
			b.g.TotalSyncs++
			b.indexReads(n.Args[1])
			if id, ok := n.Args[0].(*xmtc.Ident); ok && id.Sym != nil &&
				(id.Sym.Kind == xmtc.SymLocal || id.Sym.Kind == xmtc.SymParam) {
				b.access(n.Args[0], RefUse, Ref{})
				b.access(n.Args[0], RefDef, Ref{SyncDef: true})
			}
			return
		}
		for _, a := range n.Args {
			b.expr(a, false)
		}
		if n.Builtin == xmtc.NotBuiltin {
			b.ref(Ref{Kind: RefClobber, Pos: n.GetPos()})
		}
	case *xmtc.Unary:
		if n.Op == xmtc.AND {
			// Address taken: the path escapes reference tracking; remember
			// the root so definition analyses stay conservative about it.
			if sym := rootSym(n.X); sym != nil {
				b.g.AddressTaken[sym] = true
			}
			return
		}
		b.expr(n.X, false)
	case *xmtc.Binary:
		b.expr(n.X, false)
		b.expr(n.Y, false)
	case *xmtc.Cond:
		b.expr(n.C, false)
		b.guarded(n.C, func() {
			b.expr(n.T, false)
			b.expr(n.F, false)
		})
	case *xmtc.Cast:
		b.expr(n.X, false)
	case *xmtc.SizeofExpr:
		// Operand is not evaluated.
	case *xmtc.Ident, *xmtc.Index, *xmtc.Member:
		if write {
			b.access(e, RefDef, Ref{})
		} else {
			b.access(e, RefUse, Ref{})
		}
		b.indexReads(e)
	}
}

// access records a use or definition of an lvalue path, for any resolved
// symbol (the race check filters to globals itself).
func (b *builder) access(e xmtc.Expr, kind RefKind, tmpl Ref) {
	sym := rootSym(e)
	if sym == nil {
		return
	}
	tmpl.Kind = kind
	tmpl.Sym = sym
	tmpl.Expr = e
	tmpl.Pos = e.GetPos()
	tmpl.Text = xmtc.RenderExpr(e)
	if ix, ok := innerIndex(e); ok {
		tmpl.Index = ix
		if kind == RefDef {
			tmpl.Weak = true // element write: may-def of the aggregate
		}
	}
	if _, isIdent := e.(*xmtc.Ident); !isIdent && tmpl.Index == nil && kind == RefDef {
		tmpl.Weak = true // member write: partial def of the aggregate
	}
	b.ref(tmpl)
}

// indexReads emits the reads performed by the index sub-expressions of an
// access path (the b in hist[b].count).
func (b *builder) indexReads(e xmtc.Expr) {
	switch n := e.(type) {
	case *xmtc.Index:
		b.expr(n.I, false)
		b.indexReads(n.X)
	case *xmtc.Member:
		b.indexReads(n.X)
	}
}

// --- small AST helpers (duplicated from package analysis to avoid an
// import cycle; the analyzer's copies remain the public ones) ---

func containsTid(e xmtc.Expr) bool {
	found := false
	eachExpr(e, func(x xmtc.Expr) {
		if _, ok := x.(*xmtc.TidExpr); ok {
			found = true
		}
	})
	return found
}

func containsCall(e xmtc.Expr) bool {
	found := false
	eachExpr(e, func(x xmtc.Expr) {
		if _, ok := x.(*xmtc.Call); ok {
			found = true
		}
	})
	return found
}

func eachExpr(e xmtc.Expr, fn func(xmtc.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *xmtc.Binary:
		eachExpr(n.X, fn)
		eachExpr(n.Y, fn)
	case *xmtc.Unary:
		eachExpr(n.X, fn)
	case *xmtc.Assign:
		eachExpr(n.LHS, fn)
		eachExpr(n.RHS, fn)
	case *xmtc.IncDec:
		eachExpr(n.X, fn)
	case *xmtc.Cond:
		eachExpr(n.C, fn)
		eachExpr(n.T, fn)
		eachExpr(n.F, fn)
	case *xmtc.Call:
		for _, a := range n.Args {
			eachExpr(a, fn)
		}
	case *xmtc.Index:
		eachExpr(n.X, fn)
		eachExpr(n.I, fn)
	case *xmtc.Member:
		eachExpr(n.X, fn)
	case *xmtc.Cast:
		eachExpr(n.X, fn)
	case *xmtc.SizeofExpr:
		eachExpr(n.OfExpr, fn)
	}
}

func rootSym(e xmtc.Expr) *xmtc.Symbol {
	for {
		switch n := e.(type) {
		case *xmtc.Ident:
			return n.Sym
		case *xmtc.Index:
			e = n.X
		case *xmtc.Member:
			if n.Arrow {
				return nil
			}
			e = n.X
		default:
			return nil
		}
	}
}

func innerIndex(e xmtc.Expr) (xmtc.Expr, bool) {
	switch n := e.(type) {
	case *xmtc.Index:
		return n.I, true
	case *xmtc.Member:
		return innerIndex(n.X)
	}
	return nil, false
}

func isSyncCall(c *xmtc.Call) bool {
	return c.Builtin == xmtc.BuiltinPs || c.Builtin == xmtc.BuiltinPsm
}

func declaredIn(s xmtc.Stmt) map[*xmtc.Symbol]bool {
	out := make(map[*xmtc.Symbol]bool)
	var walk func(xmtc.Stmt)
	walk = func(st xmtc.Stmt) {
		if st == nil {
			return
		}
		if d, ok := st.(*xmtc.DeclStmt); ok && d.Decl.Sym != nil {
			out[d.Decl.Sym] = true
		}
		switch n := st.(type) {
		case *xmtc.BlockStmt:
			for _, c := range n.List {
				walk(c)
			}
		case *xmtc.IfStmt:
			walk(n.Then)
			walk(n.Else)
		case *xmtc.WhileStmt:
			walk(n.Body)
		case *xmtc.DoStmt:
			walk(n.Body)
		case *xmtc.ForStmt:
			walk(n.Init)
			walk(n.Body)
		case *xmtc.SwitchStmt:
			for _, cl := range n.Cases {
				for _, c := range cl.Body {
					walk(c)
				}
			}
		case *xmtc.SpawnStmt:
			walk(n.Body)
		}
	}
	walk(s)
	return out
}
