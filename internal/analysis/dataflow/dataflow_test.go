package dataflow_test

import (
	"testing"

	"xmtgo/internal/analysis/dataflow"
	"xmtgo/internal/xmtc"
)

// build parses, checks and lowers the first function of src.
func build(t *testing.T, src string) *dataflow.Graph {
	t.Helper()
	f, err := xmtc.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmtc.Check(f); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*xmtc.FuncDecl); ok && fn.Body != nil {
			return dataflow.Build(fn)
		}
	}
	t.Fatal("no function in source")
	return nil
}

func TestRegionShape(t *testing.T) {
	g := build(t, `
int A[8];
int main() {
    spawn(2, 5) {
        A[$] = 1;
    }
    return 0;
}`)
	if len(g.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(g.Regions))
	}
	r := g.Regions[0]
	if !r.BoundsKnown || r.LowConst != 2 || r.HighConst != 5 {
		t.Errorf("bounds = (%v, %d, %d), want known (2, 5)", r.BoundsKnown, r.LowConst, r.HighConst)
	}
	if r.SingleThread() {
		t.Error("spawn(2,5) is not single-thread")
	}
	if r.Entry == nil || r.Exit == nil {
		t.Fatal("region missing entry/exit")
	}
	if r.Exit.Region != nil {
		t.Error("the join block must be serial (outside the region)")
	}
	// The carried back edge: the body's last block loops to the entry.
	carried := false
	for _, p := range r.Entry.Preds {
		if p.Region == r {
			carried = true
		}
	}
	if !carried {
		t.Error("missing carried back edge into the region entry")
	}
}

func TestNestedSpawnFoldsIntoOuterRegion(t *testing.T) {
	g := build(t, `
int A[8];
int main() {
    spawn(0, 7) {
        spawn(0, 3) {
            A[$] = 1;
        }
    }
    return 0;
}`)
	if len(g.Regions) != 1 {
		t.Fatalf("regions = %d, want 1 (nested spawn is serialized)", len(g.Regions))
	}
}

func TestEscapesRecorded(t *testing.T) {
	// Sema itself rejects these escapes, so lower the unchecked AST — the
	// configuration xmtlint's spawn-dataflow pass sees.
	f, err := xmtc.Parse("t.c", `
int A[8];
int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        spawn(0, 7) {
            if (A[$] < 0) { break; }
            if (A[$] > 9) { return 1; }
        }
    }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var g *dataflow.Graph
	for _, d := range f.Decls {
		if fn, ok := d.(*xmtc.FuncDecl); ok && fn.Body != nil {
			g = dataflow.Build(fn)
		}
	}
	if g == nil || len(g.Regions) != 1 {
		t.Fatalf("want 1 region")
	}
	kinds := map[dataflow.EscapeKind]int{}
	for _, e := range g.Regions[0].Escapes {
		kinds[e.Kind]++
	}
	if kinds[dataflow.EscBreak] != 1 || kinds[dataflow.EscReturn] != 1 {
		t.Errorf("escapes = %v, want one break and one return", kinds)
	}
}

func TestSyncCounting(t *testing.T) {
	g := build(t, `
int x = 0;
int y = 0;
int main() {
    spawn(0, 7) {
        int inc = 1;
        if ($ == 0) { x = 1; }
        ps(inc, y);
        print_int(x);
    }
    return 0;
}`)
	r := g.Regions[0]
	if r.Syncs() != 1 {
		t.Fatalf("region syncs = %d, want 1", r.Syncs())
	}
	// The write of x precedes the ps (SyncIdx 0), the read follows it.
	var writeIdx, readIdx = -1, -1
	for _, blk := range r.Blocks {
		for _, ref := range blk.Refs {
			if ref.Sym == nil || ref.Sym.Name != "x" {
				continue
			}
			if ref.Kind == dataflow.RefDef {
				writeIdx = ref.SyncIdx - r.SyncStart
			} else if ref.Kind == dataflow.RefUse {
				readIdx = ref.SyncIdx - r.SyncStart
			}
		}
	}
	if writeIdx != 0 || readIdx != 1 {
		t.Errorf("sync indices: write=%d read=%d, want 0 and 1", writeIdx, readIdx)
	}
}

func TestReachingDefsPointQuery(t *testing.T) {
	g := build(t, `
int n = 3;
int main() {
    int x;
    if (n > 0) { x = 1; }
    print_int(x);
    return 0;
}`)
	reach := g.ReachingDefs()
	// Find the use of x (the print_int argument).
	for _, blk := range g.Blocks {
		for i, ref := range blk.Refs {
			if ref.Kind != dataflow.RefUse || ref.Sym == nil || ref.Sym.Name != "x" {
				continue
			}
			defs := reach.At(blk, i, ref.Sym)
			if len(defs) != 2 {
				t.Fatalf("reaching defs at use of x = %d, want 2 (bare decl + branch store)", len(defs))
			}
			return
		}
	}
	t.Fatal("use of x not found")
}

func TestLivenessDeadAfter(t *testing.T) {
	g := build(t, `
int main() {
    int x;
    x = 1;
    x = 2;
    print_int(x);
    return 0;
}`)
	live := g.Liveness()
	var stores []struct {
		blk *dataflow.Block
		i   int
	}
	for _, blk := range g.Blocks {
		for i, ref := range blk.Refs {
			if ref.Kind == dataflow.RefDef && !ref.Decl && ref.Sym != nil && ref.Sym.Name == "x" {
				stores = append(stores, struct {
					blk *dataflow.Block
					i   int
				}{blk, i})
			}
		}
	}
	if len(stores) != 2 {
		t.Fatalf("stores to x = %d, want 2", len(stores))
	}
	if !live.DeadAfter(stores[0].blk, stores[0].i, g.Blocks[stores[0].blk.ID].Refs[stores[0].i].Sym) {
		t.Error("x = 1 should be dead (overwritten before any read)")
	}
	if live.DeadAfter(stores[1].blk, stores[1].i, g.Blocks[stores[1].blk.ID].Refs[stores[1].i].Sym) {
		t.Error("x = 2 should be live (read by print_int)")
	}
}

func TestDisjoint(t *testing.T) {
	reg := &dataflow.Region{LowConst: 0, HighConst: 7, BoundsKnown: true}
	cases := []struct {
		name           string
		a1, c1, a2, c2 int32
		reg            *dataflow.Region
		want           bool
	}{
		{"distinct constants", 0, 3, 0, 5, nil, true},
		{"same constant", 0, 3, 0, 3, nil, false},
		{"same element per thread", 1, 0, 1, 0, nil, true},
		{"stride parity", 2, 0, 2, 1, nil, true},
		{"unit stride offset", 1, 0, 1, 1, reg, false},
		{"offset beyond range", 1, 8, 1, 0, reg, true},
		{"const hits a thread", 1, 0, 0, 3, reg, false},
		{"const outside range", 1, 0, 0, 9, reg, true},
		{"mixed strides collide", 1, 0, 2, 0, reg, false},
		{"mixed strides no bounds", 1, 0, 2, 1, nil, false},
	}
	for _, c := range cases {
		if got := dataflow.Disjoint(c.a1, c.c1, c.a2, c.c2, c.reg); got != c.want {
			t.Errorf("%s: Disjoint(%d,%d,%d,%d) = %v, want %v", c.name, c.a1, c.c1, c.a2, c.c2, got, c.want)
		}
	}
}

func TestAffineIndexChasing(t *testing.T) {
	g := build(t, `
int A[32];
int main() {
    spawn(0, 7) {
        int base = 2 * $;
        int i = base + 1;
        A[i] = 1;
    }
    return 0;
}`)
	reach := g.ReachingDefs()
	for _, blk := range g.Blocks {
		for i, ref := range blk.Refs {
			if ref.Kind == dataflow.RefDef && ref.Sym != nil && ref.Sym.Name == "A" {
				a, c, ok := reach.AffineIndex(blk, i, ref.Index)
				if !ok || a != 2 || c != 1 {
					t.Fatalf("AffineIndex = (%d, %d, %v), want (2, 1, true)", a, c, ok)
				}
				return
			}
		}
	}
	t.Fatal("store to A not found")
}

func TestBuildToleratesUncheckedAST(t *testing.T) {
	// No sema: symbols are nil. The builder must not panic and must still
	// record the boundary escape.
	f, err := xmtc.Parse("t.c", `
int main() {
    spawn(0, 7) {
        return 1;
    }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*xmtc.FuncDecl); ok && fn.Body != nil {
			g := dataflow.Build(fn)
			if len(g.Regions) != 1 || len(g.Regions[0].Escapes) != 1 {
				t.Fatalf("unchecked AST: regions/escapes not recorded")
			}
		}
	}
}

// TidDependent must see $ routed through shared data (u = esrc[$]; A[u])
// but deliberately stay quiet on pure index arithmetic of $ (the FFT
// butterfly partition pattern) and on locals it cannot chase.
func TestTidDependentDataRouting(t *testing.T) {
	g := build(t, `
int E[32];
int A[32];
int main() {
    spawn(0, 7) {
        int u = E[$];
        int v = E[u];
        int w = ($ * 2) + 1;
        A[u] = 1;
        A[v] = 2;
        A[w] = 3;
    }
    return 0;
}`)
	reach := g.ReachingDefs()
	want := map[string]bool{"u": true, "v": true, "w": false}
	seen := 0
	for _, blk := range g.Blocks {
		for i, ref := range blk.Refs {
			if ref.Kind != dataflow.RefDef || ref.Sym == nil || ref.Sym.Name != "A" {
				continue
			}
			id, ok := ref.Index.(*xmtc.Ident)
			if !ok {
				t.Fatalf("store index is not a plain local: %s", ref.Text)
			}
			seen++
			if got := reach.TidDependent(blk, i, ref.Index); got != want[id.Sym.Name] {
				t.Errorf("TidDependent(A[%s]) = %v, want %v", id.Sym.Name, got, want[id.Sym.Name])
			}
		}
	}
	if seen != 3 {
		t.Fatalf("found %d stores to A, want 3", seen)
	}
}
