package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"xmtgo/internal/analysis"
)

// FuzzAnalyze drives the full analyzer — parser, sema, the CFG/dataflow
// engine and every registered pass — over mutated XMTC sources. The
// contract is total: no input may panic it or hang it (the dataflow
// solvers iterate to a fixpoint over monotone bitsets, so termination is
// structural, but the fuzzer guards the builder's many traversal paths).
func FuzzAnalyze(f *testing.F) {
	seeds, _ := filepath.Glob("../../examples/xmtc/*.c")
	for _, p := range seeds {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("int main() { spawn(0, 7) { return 1; } }")
	f.Add("int x; int main() { int y; y = y; while (1) { } }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return // linear in source size; keep the corpus fast
		}
		analysis.Analyze("fuzz.c", src, nil)
	})
}
