package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmtgo/internal/analysis"
	"xmtgo/internal/diag"
	"xmtgo/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the analyzer golden files")

// TestGoldenExamples runs the analyzer over every XMTC fixture in
// examples/xmtc and compares the rendered diagnostics against
// testdata/<name>.golden (regenerate with -update). The fixtures include
// the Fig. 6 litmus (must flag spawn-race) and the Fig. 7 version (must
// be clean), so this is also the acceptance test for the race detector.
func TestGoldenExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "xmtc", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".c")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			// Analyze with the base name so golden output is independent
			// of where the repo is checked out.
			ds := analysis.Analyze(filepath.Base(file), string(src), nil)
			var b strings.Builder
			for _, d := range ds {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed for %s:\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}

// TestGoldenLitmusAcceptance pins the two headline properties without
// golden files, so a stale -update cannot weaken them: the Fig. 6 source
// must produce spawn-race warnings and the Fig. 7 source must produce no
// diagnostics at all.
func TestGoldenLitmusAcceptance(t *testing.T) {
	ds := analysis.Analyze("fig6.c", workloads.LitmusRelaxedXMTC(), nil)
	races := 0
	for _, d := range ds {
		if d.Check == "spawn-race" && d.Severity >= diag.Warning {
			races++
		}
	}
	if races != 2 {
		t.Errorf("Fig. 6 litmus: got %d spawn-race warnings, want 2 (the x and y pairs):\n%v", races, ds)
	}
	if ds := analysis.Analyze("fig7.c", workloads.LitmusPSMXMTC(), nil); len(ds) != 0 {
		t.Errorf("Fig. 7 litmus must be clean, got:\n%v", ds)
	}
}

// TestWorkloadsClean analyzes every XMTC source the workload generators
// produce — the programs behind the examples/ binaries — and requires
// zero diagnostics: the analyzer must not cry wolf on the repository's
// own known-good programs. The one exception is connectivity_par, whose
// label-propagation rounds race by design ("races inside a round only
// delay convergence"): its data-routed label[u]/label[v] accesses must be
// flagged by spawn-race — the dynamic sanitizer confirms them at runtime
// (TestXmtsanDifferentialGate) — and nothing else may fire on it.
func TestWorkloadsClean(t *testing.T) {
	srcs := map[string]string{}
	add := func(name, src string) { srcs[name] = src }
	c, _ := workloads.Compaction(64, 0.3, 1)
	add("compaction", c)
	p, s, _ := workloads.Reduction(64)
	add("reduction_par", p)
	add("reduction_ser", s)
	p, s, _ = workloads.VecAdd(64)
	add("vecadd_par", p)
	add("vecadd_ser", s)
	p, s = workloads.MatMul(8)
	add("matmul_par", p)
	add("matmul_ser", s)
	p, s = workloads.BFS(512, 8192)
	add("bfs_par", p)
	add("bfs_ser", s)
	p, s = workloads.FFT(64)
	add("fft_par", p)
	add("fft_ser", s)
	p, s, _, _ = workloads.PrefixSum(64)
	add("prefixsum_par", p)
	add("prefixsum_ser", s)
	p, s = workloads.Connectivity(512, 8192)
	add("connectivity_par", p)
	add("connectivity_ser", s)
	for i, g := range []workloads.TableIGroup{workloads.ParallelMemory, workloads.ParallelCompute, workloads.SerialMemory, workloads.SerialCompute} {
		add(fmt.Sprintf("tablei_%d", i), workloads.TableI(g, 16, 4))
	}
	racyByDesign := map[string]bool{"connectivity_par": true}
	for name, src := range srcs {
		ds := analysis.Analyze(name+".c", src, nil)
		if racyByDesign[name] {
			if len(ds) == 0 {
				t.Errorf("%s: races by design, expected spawn-race findings, got none", name)
			}
			for _, d := range ds {
				if d.Check != "spawn-race" {
					t.Errorf("%s: non-race finding on the racy-by-design workload: %v", name, d)
				}
			}
			continue
		}
		if len(ds) != 0 {
			t.Errorf("%s: expected clean, got:\n%v", name, ds)
		}
	}
}
