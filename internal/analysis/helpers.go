package analysis

import (
	"xmtgo/internal/xmtc"
)

// eachExpr visits e and every sub-expression, pre-order.
func eachExpr(e xmtc.Expr, fn func(xmtc.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *xmtc.Binary:
		eachExpr(n.X, fn)
		eachExpr(n.Y, fn)
	case *xmtc.Unary:
		eachExpr(n.X, fn)
	case *xmtc.Assign:
		eachExpr(n.LHS, fn)
		eachExpr(n.RHS, fn)
	case *xmtc.IncDec:
		eachExpr(n.X, fn)
	case *xmtc.Cond:
		eachExpr(n.C, fn)
		eachExpr(n.T, fn)
		eachExpr(n.F, fn)
	case *xmtc.Call:
		for _, a := range n.Args {
			eachExpr(a, fn)
		}
	case *xmtc.Index:
		eachExpr(n.X, fn)
		eachExpr(n.I, fn)
	case *xmtc.Member:
		eachExpr(n.X, fn)
	case *xmtc.Cast:
		eachExpr(n.X, fn)
	case *xmtc.SizeofExpr:
		eachExpr(n.OfExpr, fn)
	}
}

// eachStmt visits s and every sub-statement, pre-order, including spawn
// bodies.
func eachStmt(s xmtc.Stmt, fn func(xmtc.Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			eachStmt(st, fn)
		}
	case *xmtc.IfStmt:
		eachStmt(n.Then, fn)
		eachStmt(n.Else, fn)
	case *xmtc.WhileStmt:
		eachStmt(n.Body, fn)
	case *xmtc.DoStmt:
		eachStmt(n.Body, fn)
	case *xmtc.ForStmt:
		eachStmt(n.Init, fn)
		eachStmt(n.Body, fn)
	case *xmtc.SwitchStmt:
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				eachStmt(st, fn)
			}
		}
	case *xmtc.SpawnStmt:
		eachStmt(n.Body, fn)
	}
}

// stmtExprs calls fn on every top-level expression directly attached to s
// (not recursing into sub-statements).
func stmtExprs(s xmtc.Stmt, fn func(xmtc.Expr)) {
	switch n := s.(type) {
	case *xmtc.DeclStmt:
		fn(n.Decl.Init)
		for _, e := range n.Decl.InitList {
			fn(e)
		}
	case *xmtc.ExprStmt:
		fn(n.X)
	case *xmtc.IfStmt:
		fn(n.Cond)
	case *xmtc.WhileStmt:
		fn(n.Cond)
	case *xmtc.DoStmt:
		fn(n.Cond)
	case *xmtc.ForStmt:
		fn(n.Cond)
		fn(n.Post)
	case *xmtc.ReturnStmt:
		fn(n.X)
	case *xmtc.SwitchStmt:
		fn(n.Tag)
	case *xmtc.SpawnStmt:
		fn(n.Low)
		fn(n.High)
	}
}

// spawnSite is one spawn statement and its enclosing function.
type spawnSite struct {
	fn *xmtc.FuncDecl
	sp *xmtc.SpawnStmt
}

// spawnSites collects every spawn statement in the file, outermost first.
// Nested spawns are serialized by the toolchain, so their bodies are
// analyzed as part of the outer region and not returned separately.
func spawnSites(f *xmtc.File) []spawnSite {
	var sites []spawnSite
	for _, d := range f.Decls {
		fd, ok := d.(*xmtc.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		depth := 0
		var walk func(s xmtc.Stmt)
		walk = func(s xmtc.Stmt) {
			if sp, ok := s.(*xmtc.SpawnStmt); ok {
				if depth == 0 {
					sites = append(sites, spawnSite{fn: fd, sp: sp})
				}
				depth++
				walkChildren(sp, walk)
				depth--
				return
			}
			walkChildren(s, walk)
		}
		walk(fd.Body)
	}
	return sites
}

// walkChildren visits the direct sub-statements of s.
func walkChildren(s xmtc.Stmt, fn func(xmtc.Stmt)) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			fn(st)
		}
	case *xmtc.IfStmt:
		fn(n.Then)
		if n.Else != nil {
			fn(n.Else)
		}
	case *xmtc.WhileStmt:
		fn(n.Body)
	case *xmtc.DoStmt:
		fn(n.Body)
	case *xmtc.ForStmt:
		if n.Init != nil {
			fn(n.Init)
		}
		fn(n.Body)
	case *xmtc.SwitchStmt:
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				fn(st)
			}
		}
	case *xmtc.SpawnStmt:
		fn(n.Body)
	}
}

// containsTid reports whether the expression mentions $ (the virtual
// thread id), directly or in any sub-expression.
func containsTid(e xmtc.Expr) bool {
	found := false
	eachExpr(e, func(x xmtc.Expr) {
		if _, ok := x.(*xmtc.TidExpr); ok {
			found = true
		}
	})
	return found
}

// rootSym resolves the base symbol of an access path: the symbol behind
// x, x[i], x.f, x[i].f chains. Returns nil for pointer dereferences and
// other shapes the analyzer does not model.
func rootSym(e xmtc.Expr) *xmtc.Symbol {
	for {
		switch n := e.(type) {
		case *xmtc.Ident:
			return n.Sym
		case *xmtc.Index:
			e = n.X
		case *xmtc.Member:
			if n.Arrow {
				return nil // through a pointer: aliasing unknown
			}
			e = n.X
		default:
			return nil
		}
	}
}

// declaredIn collects the symbols declared anywhere under s (the
// spawn-private variables when s is a spawn body).
func declaredIn(s xmtc.Stmt) map[*xmtc.Symbol]bool {
	out := make(map[*xmtc.Symbol]bool)
	eachStmt(s, func(st xmtc.Stmt) {
		if d, ok := st.(*xmtc.DeclStmt); ok && d.Decl.Sym != nil {
			out[d.Decl.Sym] = true
		}
	})
	return out
}

// isSyncCall reports whether e is a ps or psm builtin call.
func isSyncCall(e xmtc.Expr) (*xmtc.Call, bool) {
	c, ok := e.(*xmtc.Call)
	if !ok {
		return nil, false
	}
	if c.Builtin == xmtc.BuiltinPs || c.Builtin == xmtc.BuiltinPsm {
		return c, true
	}
	return nil, false
}
