package analysis

import (
	"fmt"

	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// checkPsMisuse flags prefix-sum primitives used outside their hardware
// contract:
//
//   - a ps increment whose value is statically known and not 0 or 1: the
//     dedicated prefix-sum unit only combines single-bit increments
//     (paper §II-A); larger increments need psm, which the cache modules
//     serialize. The value is tracked by the nearest dominating constant
//     assignment in traversal order — a deliberately shallow analysis
//     whose one false-positive shape (a constant overwritten on a branch
//     not taken at runtime) is documented in the tests;
//   - a psm whose base is a spawn-private variable: every virtual thread
//     updates its own copy, so the "synchronization" orders nothing and
//     a plain += would be cheaper.
//
// ps bases that are not globals are already hard sema errors and are not
// re-reported here.
func checkPsMisuse(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, d := range u.File.Decls {
		fd, ok := d.(*xmtc.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		w := &psWalker{consts: make(map[*xmtc.Symbol]constVal)}
		w.stmt(fd.Body)
		ds = append(ds, w.ds...)
	}
	return ds
}

// constVal is the tracked value of an integer variable.
type constVal struct {
	known bool
	val   int32
}

type psWalker struct {
	ds      []diag.Diagnostic
	consts  map[*xmtc.Symbol]constVal
	private map[*xmtc.Symbol]bool // spawn-private decls of the current spawn
}

func (w *psWalker) report(sev diag.Severity, pos xmtc.Pos, format string, args ...any) {
	w.ds = append(w.ds, diag.Diagnostic{
		Check:    "ps-misuse",
		Severity: sev,
		Pos:      pos.Diag(),
		Msg:      fmt.Sprintf(format, args...),
	})
}

func (w *psWalker) stmt(s xmtc.Stmt) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			w.stmt(st)
		}
	case *xmtc.DeclStmt:
		d := n.Decl
		if d.Init != nil {
			w.expr(d.Init)
		}
		for _, e := range d.InitList {
			w.expr(e)
		}
		if d.Sym != nil {
			if d.Init != nil {
				if v, ok := xmtc.FoldConst(d.Init); ok {
					w.consts[d.Sym] = constVal{known: true, val: v}
				} else {
					w.consts[d.Sym] = constVal{}
				}
			} else {
				// Uninitialized locals read as zero on this toolchain, but
				// treat them as unknown: the read is a bug of its own.
				w.consts[d.Sym] = constVal{}
			}
		}
	case *xmtc.ExprStmt:
		w.expr(n.X)
	case *xmtc.IfStmt:
		w.expr(n.Cond)
		w.stmt(n.Then)
		if n.Else != nil {
			w.stmt(n.Else)
		}
	case *xmtc.WhileStmt:
		w.expr(n.Cond)
		w.stmt(n.Body)
	case *xmtc.DoStmt:
		w.stmt(n.Body)
		w.expr(n.Cond)
	case *xmtc.ForStmt:
		if n.Init != nil {
			w.stmt(n.Init)
		}
		if n.Cond != nil {
			w.expr(n.Cond)
		}
		w.stmt(n.Body)
		if n.Post != nil {
			w.expr(n.Post)
		}
	case *xmtc.SwitchStmt:
		w.expr(n.Tag)
		for _, cl := range n.Cases {
			for _, st := range cl.Body {
				w.stmt(st)
			}
		}
	case *xmtc.ReturnStmt:
		if n.X != nil {
			w.expr(n.X)
		}
	case *xmtc.SpawnStmt:
		w.expr(n.Low)
		w.expr(n.High)
		outer := w.private
		if outer == nil { // outermost spawn of this function
			w.private = declaredIn(n.Body)
		}
		w.stmt(n.Body)
		w.private = outer
	}
}

func (w *psWalker) expr(e xmtc.Expr) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *xmtc.Assign:
		w.expr(n.RHS)
		if id, ok := n.LHS.(*xmtc.Ident); ok && id.Sym != nil {
			if v, ok := xmtc.FoldConst(n.RHS); ok && n.Op == xmtc.ASSIGN {
				w.consts[id.Sym] = constVal{known: true, val: v}
			} else {
				w.consts[id.Sym] = constVal{}
			}
		} else {
			w.expr(n.LHS)
		}
	case *xmtc.IncDec:
		if id, ok := n.X.(*xmtc.Ident); ok && id.Sym != nil {
			w.consts[id.Sym] = constVal{}
		} else {
			w.expr(n.X)
		}
	case *xmtc.Call:
		for _, a := range n.Args {
			w.expr(a)
		}
		w.syncCall(n)
		// The builtin writes the old base value into its increment:
		// afterwards the increment is no longer a known constant.
		if _, ok := isSyncCall(n); ok && len(n.Args) > 0 {
			if id, ok := n.Args[0].(*xmtc.Ident); ok && id.Sym != nil {
				w.consts[id.Sym] = constVal{}
			}
		}
	case *xmtc.Binary:
		w.expr(n.X)
		w.expr(n.Y)
	case *xmtc.Unary:
		w.expr(n.X)
	case *xmtc.Cond:
		w.expr(n.C)
		w.expr(n.T)
		w.expr(n.F)
	case *xmtc.Index:
		w.expr(n.X)
		w.expr(n.I)
	case *xmtc.Member:
		w.expr(n.X)
	case *xmtc.Cast:
		w.expr(n.X)
	}
}

func (w *psWalker) syncCall(n *xmtc.Call) {
	c, ok := isSyncCall(n)
	if !ok || len(c.Args) != 2 {
		return
	}
	if c.Builtin == xmtc.BuiltinPs {
		if id, ok := c.Args[0].(*xmtc.Ident); ok && id.Sym != nil {
			if cv := w.consts[id.Sym]; cv.known && cv.val != 0 && cv.val != 1 {
				w.report(diag.Warning, n.Pos,
					"ps increment %q is %d here: the hardware prefix-sum unit combines only 0/1 increments (paper §II-A); use psm for arbitrary values", id.Sym.Name, cv.val)
			}
		}
		return
	}
	// psm: a spawn-private base synchronizes nothing.
	if id, ok := c.Args[1].(*xmtc.Ident); ok && id.Sym != nil && w.private != nil && w.private[id.Sym] {
		w.report(diag.Warning, n.Pos,
			"psm to thread-private %q: each virtual thread updates its own copy, so the prefix-sum provides no cross-thread ordering; a plain assignment is cheaper", id.Sym.Name)
	}
}
