package analysis

import (
	"fmt"

	"xmtgo/internal/analysis/dataflow"
	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// checkSpawnRace is the spawn-region race detector: it flags pairs of
// conflicting accesses (write/write or read/write of the same global, or
// of potentially aliasing elements of the same global array) inside a
// spawn body when neither access is ordered by a prefix-sum. This is the
// static form of the paper's Fig. 6 litmus hazard: under the relaxed XMT
// memory model such a pair may be observed out of order (a prefetched
// line can make thread B read the old x after the new y), while the
// Fig. 7 pattern — releasing writes with ps/psm and acquiring reads after
// one — restores the partial order and is reported clean.
//
// The check runs over the dataflow CFG (the reference streams of a spawn
// region's blocks reproduce the legacy traversal order exactly), which errs
// quiet in the same deliberate ways as before:
//
//   - only accesses whose base is a global (or a global array/struct
//     element) are tracked; pointer dereferences are ignored;
//   - a pair is racy only if at least one side is thread-varying — its
//     index or stored value mentions $, it executes under a $-dependent
//     condition, or its index chases (through unique reaching definitions
//     of region-private locals) to a value loaded from shared data at a
//     $-dependent position: u = esrc[$]; label[u] = ... can collide for
//     ordinary inputs. Pure index arithmetic of $ (the FFT butterfly
//     partition) deliberately stays quiet — see Reach.TidDependent;
//   - a ps/psm earlier in traversal order than access R and later than
//     access W orders the pair (release/acquire); this over-approximates
//     across sibling branches, a deliberate false-negative trade;
//   - a single access site never races with itself.
//
// Reaching definitions buy three suppressions the AST walk could not see:
//
//   - spawn(k, k) starts exactly one virtual thread, so nothing in the
//     region can race;
//   - two accesses both pinned to the same thread by `$ == k` guards are
//     sequenced within that thread;
//   - array indices that resolve (through unique reaching definitions of
//     region-private locals) to affine forms a*$+c proven disjoint across
//     distinct thread ids — A[$] vs A[$], A[2*$] vs A[2*$+1], A[$] vs A[9]
//     under spawn(0, 7) — cannot alias.
func checkSpawnRace(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, g := range u.Graphs() {
		if len(g.Regions) == 0 {
			continue
		}
		reach := g.ReachingDefs()
		for _, reg := range g.Regions {
			ds = append(ds, raceScanRegion(reach, reg)...)
		}
	}
	return ds
}

// raceAccess is one tracked shared-memory access inside a spawn region.
type raceAccess struct {
	sym     *xmtc.Symbol
	index   xmtc.Expr // innermost array index, nil for scalars
	write   bool
	tidDep  bool
	pinned  bool  // guarded by `$ == pinVal`
	pinVal  int32 // the pinning thread id
	pos     xmtc.Pos
	text    string // rendered access, for messages
	syncsAt int    // prefix-sums seen before this access, traversal order
	blk     *dataflow.Block
	refIdx  int
}

func raceScanRegion(reach *dataflow.Reach, reg *dataflow.Region) []diag.Diagnostic {
	if reg.SingleThread() {
		return nil // spawn(k, k): one virtual thread cannot race with itself
	}
	var accs []raceAccess
	for _, blk := range reg.Blocks {
		for i := range blk.Refs {
			ref := &blk.Refs[i]
			if ref.Sym == nil || ref.Sym.Kind != xmtc.SymGlobal {
				continue
			}
			switch ref.Kind {
			case dataflow.RefUse:
				// A compound assignment also reads the location, but the
				// write access already conflicts with everything the read
				// would.
				if ref.Compound {
					continue
				}
			case dataflow.RefDef:
			default:
				continue
			}
			accs = append(accs, raceAccess{
				sym:   ref.Sym,
				index: ref.Index,
				write: ref.Kind == dataflow.RefDef,
				// Thread-varying directly ($ in the value, the guard, or the
				// index) or through data routing: an index that chases to a
				// shared-data load at a $-dependent position (u = esrc[$];
				// label[u] = ...) varies per thread and can collide across
				// threads for ordinary inputs.
				tidDep: ref.ValueTid || ref.GuardTid ||
					(ref.Index != nil && (containsTid(ref.Index) ||
						reach.TidDependent(blk, i, ref.Index))),
				pinned: ref.Pinned,
				pinVal: ref.PinVal,
				pos:    ref.Pos,
				text:   ref.Text,
				// The legacy per-region counter: syncs seen since the spawn.
				syncsAt: ref.SyncIdx - reg.SyncStart,
				blk:     blk,
				refIdx:  i,
			})
		}
	}

	total := reg.Syncs()
	type pairKey struct {
		a, b xmtc.Pos
	}
	reported := make(map[pairKey]bool)
	var ds []diag.Diagnostic
	for i := 0; i < len(accs); i++ {
		for j := i + 1; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if !racePair(a, b, total) {
				continue
			}
			if a.pinned && b.pinned && a.pinVal == b.pinVal {
				continue // both run on the same pinned thread: program order
			}
			if disjointIndexes(reach, reg, a, b) {
				continue // provably different elements on different threads
			}
			key := pairKey{a.pos, b.pos}
			if reported[key] {
				continue
			}
			reported[key] = true
			ds = append(ds, diag.Diagnostic{
				Check:    "spawn-race",
				Severity: diag.Warning,
				Pos:      b.pos.Diag(),
				Msg: fmt.Sprintf("possible data race on %q: this %s and the %s at %s are not ordered by a prefix-sum; under the relaxed XMT memory model they may be observed out of order (paper Fig. 6)",
					a.sym.Name, accessWord(b), accessWord(a), a.pos),
				Related: []diag.Related{{
					Pos: a.pos.Diag(),
					Msg: fmt.Sprintf("conflicting %s of %q", accessWord(a), a.text),
				}},
			})
		}
	}
	return ds
}

func accessWord(a raceAccess) string {
	if a.write {
		return "write"
	}
	return "read"
}

// racePair decides whether two accesses form an unordered conflict.
func racePair(a, b raceAccess, totalSyncs int) bool {
	if a.sym != b.sym {
		return false
	}
	if !a.write && !b.write {
		return false
	}
	if !a.tidDep && !b.tidDep {
		return false
	}
	if a.pos == b.pos {
		return false // one site racing with itself is out of scope
	}
	// Array element aliasing, on syntax alone (the affine suppression in
	// the caller subsumes these, but they need no reaching definitions).
	if a.index != nil && b.index != nil {
		ai, aok := xmtc.FoldConst(a.index)
		bi, bok := xmtc.FoldConst(b.index)
		if aok && bok && ai != bi {
			return false // provably distinct elements
		}
		if containsTid(a.index) && containsTid(b.index) &&
			xmtc.RenderExpr(a.index) == xmtc.RenderExpr(b.index) {
			return false // same $-dependent element: private to each thread
		}
	}
	// Release/acquire ordering through a prefix-sum: one side issues a
	// ps/psm after its access, the other before.
	after := func(x raceAccess) bool { return totalSyncs-x.syncsAt > 0 }
	before := func(x raceAccess) bool { return x.syncsAt > 0 }
	if after(a) && before(b) {
		return false
	}
	if after(b) && before(a) {
		return false
	}
	return true
}

// disjointIndexes suppresses an array-element pair when both indices
// resolve to affine functions of $ that can never collide across two
// distinct virtual threads of the region.
func disjointIndexes(reach *dataflow.Reach, reg *dataflow.Region, a, b raceAccess) bool {
	if a.index == nil || b.index == nil {
		return false
	}
	a1, c1, ok := reach.AffineIndex(a.blk, a.refIdx, a.index)
	if !ok {
		return false
	}
	a2, c2, ok := reach.AffineIndex(b.blk, b.refIdx, b.index)
	if !ok {
		return false
	}
	return dataflow.Disjoint(a1, c1, a2, c2, reg)
}
