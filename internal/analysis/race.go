package analysis

import (
	"fmt"

	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// checkSpawnRace is the spawn-region race detector: it flags pairs of
// conflicting accesses (write/write or read/write of the same global, or
// of potentially aliasing elements of the same global array) inside a
// spawn body when neither access is ordered by a prefix-sum. This is the
// static form of the paper's Fig. 6 litmus hazard: under the relaxed XMT
// memory model such a pair may be observed out of order (a prefetched
// line can make thread B read the old x after the new y), while the
// Fig. 7 pattern — releasing writes with ps/psm and acquiring reads after
// one — restores the partial order and is reported clean.
//
// The model is deliberately simple and errs quiet:
//
//   - only accesses whose base is a global (or a global array/struct
//     element) are tracked; pointer dereferences are ignored;
//   - a pair is racy only if at least one side is thread-varying —
//     its index or stored value mentions $, or it executes under a
//     $-dependent condition — since uniform accesses write the same
//     value from every thread;
//   - accesses to the same array element through a syntactically
//     identical $-dependent index (A[$] vs A[$]) are per-thread private
//     and never conflict; distinct constant indices never conflict;
//   - a ps/psm earlier in traversal order than access R and later than
//     access W orders the pair (release/acquire); this over-approximates
//     across sibling branches, a deliberate false-negative trade;
//   - a single access site never races with itself.
func checkSpawnRace(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, site := range spawnSites(u.File) {
		ds = append(ds, raceScanSpawn(site.sp)...)
	}
	return ds
}

// raceAccess is one tracked shared-memory access inside a spawn body.
type raceAccess struct {
	sym     *xmtc.Symbol
	index   xmtc.Expr // innermost array index, nil for scalars
	write   bool
	tidDep  bool
	pos     xmtc.Pos
	text    string // rendered access, for messages
	syncsAt int    // prefix-sums seen before this access, traversal order
}

// raceScanner walks one spawn body collecting accesses and sync points.
type raceScanner struct {
	accesses []raceAccess
	syncs    int
	guardTid int // depth of enclosing $-dependent conditions
}

func raceScanSpawn(sp *xmtc.SpawnStmt) []diag.Diagnostic {
	sc := &raceScanner{}
	sc.stmt(sp.Body)
	total := sc.syncs

	type pairKey struct {
		a, b xmtc.Pos
	}
	reported := make(map[pairKey]bool)
	var ds []diag.Diagnostic
	for i := 0; i < len(sc.accesses); i++ {
		for j := i + 1; j < len(sc.accesses); j++ {
			a, b := sc.accesses[i], sc.accesses[j]
			if !racePair(a, b, total) {
				continue
			}
			key := pairKey{a.pos, b.pos}
			if reported[key] {
				continue
			}
			reported[key] = true
			ds = append(ds, diag.Diagnostic{
				Check:    "spawn-race",
				Severity: diag.Warning,
				Pos:      b.pos.Diag(),
				Msg: fmt.Sprintf("possible data race on %q: this %s and the %s at %s are not ordered by a prefix-sum; under the relaxed XMT memory model they may be observed out of order (paper Fig. 6)",
					a.sym.Name, accessWord(b), accessWord(a), a.pos),
				Related: []diag.Related{{
					Pos: a.pos.Diag(),
					Msg: fmt.Sprintf("conflicting %s of %q", accessWord(a), a.text),
				}},
			})
		}
	}
	return ds
}

func accessWord(a raceAccess) string {
	if a.write {
		return "write"
	}
	return "read"
}

// racePair decides whether two accesses form an unordered conflict.
func racePair(a, b raceAccess, totalSyncs int) bool {
	if a.sym != b.sym {
		return false
	}
	if !a.write && !b.write {
		return false
	}
	if !a.tidDep && !b.tidDep {
		return false
	}
	if a.pos == b.pos {
		return false // one site racing with itself is out of scope
	}
	// Array element aliasing.
	if a.index != nil && b.index != nil {
		ai, aok := xmtc.FoldConst(a.index)
		bi, bok := xmtc.FoldConst(b.index)
		if aok && bok && ai != bi {
			return false // provably distinct elements
		}
		if containsTid(a.index) && containsTid(b.index) &&
			xmtc.RenderExpr(a.index) == xmtc.RenderExpr(b.index) {
			return false // same $-dependent element: private to each thread
		}
	}
	// Release/acquire ordering through a prefix-sum: one side issues a
	// ps/psm after its access, the other before.
	after := func(x raceAccess) bool { return totalSyncs-x.syncsAt > 0 }
	before := func(x raceAccess) bool { return x.syncsAt > 0 }
	if after(a) && before(b) {
		return false
	}
	if after(b) && before(a) {
		return false
	}
	return true
}

func (sc *raceScanner) stmt(s xmtc.Stmt) {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			sc.stmt(st)
		}
	case *xmtc.DeclStmt:
		if n.Decl.Init != nil {
			sc.expr(n.Decl.Init, false)
		}
		for _, e := range n.Decl.InitList {
			sc.expr(e, false)
		}
	case *xmtc.ExprStmt:
		sc.expr(n.X, false)
	case *xmtc.IfStmt:
		sc.expr(n.Cond, false)
		sc.guarded(n.Cond, func() {
			sc.stmt(n.Then)
			if n.Else != nil {
				sc.stmt(n.Else)
			}
		})
	case *xmtc.WhileStmt:
		sc.expr(n.Cond, false)
		sc.guarded(n.Cond, func() { sc.stmt(n.Body) })
	case *xmtc.DoStmt:
		sc.guarded(n.Cond, func() { sc.stmt(n.Body) })
		sc.expr(n.Cond, false)
	case *xmtc.ForStmt:
		if n.Init != nil {
			sc.stmt(n.Init)
		}
		if n.Cond != nil {
			sc.expr(n.Cond, false)
		}
		sc.guarded(n.Cond, func() {
			sc.stmt(n.Body)
			if n.Post != nil {
				sc.expr(n.Post, false)
			}
		})
	case *xmtc.SwitchStmt:
		sc.expr(n.Tag, false)
		sc.guarded(n.Tag, func() {
			for _, cl := range n.Cases {
				for _, st := range cl.Body {
					sc.stmt(st)
				}
			}
		})
	case *xmtc.ReturnStmt:
		if n.X != nil {
			sc.expr(n.X, false)
		}
	case *xmtc.SpawnStmt: // nested spawn: serialized, same region
		sc.expr(n.Low, false)
		sc.expr(n.High, false)
		sc.stmt(n.Body)
	}
}

// guarded runs body with the $-dependence of cond pushed onto the guard
// stack.
func (sc *raceScanner) guarded(cond xmtc.Expr, body func()) {
	tid := cond != nil && containsTid(cond)
	if tid {
		sc.guardTid++
	}
	body()
	if tid {
		sc.guardTid--
	}
}

// expr records the accesses of one expression tree. write applies to the
// root access path only.
func (sc *raceScanner) expr(e xmtc.Expr, write bool) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *xmtc.Assign:
		// A compound assignment also reads the location, but the write
		// access already conflicts with everything the read would.
		sc.access(n.LHS, true, containsTid(n.RHS))
		sc.indexReads(n.LHS)
		sc.expr(n.RHS, false)
	case *xmtc.IncDec:
		sc.access(n.X, true, false)
		sc.indexReads(n.X)
	case *xmtc.Call:
		if _, ok := isSyncCall(e); ok {
			// The prefix-sum itself is an ordering operation: its base is
			// updated atomically by the ps unit or the cache modules, so
			// it is not a plain access. Index sub-expressions of the base
			// are ordinary reads.
			sc.syncs++
			sc.indexReads(n.Args[1])
			return
		}
		for _, a := range n.Args {
			sc.expr(a, false)
		}
	case *xmtc.Unary:
		if n.Op == xmtc.AND {
			// Address taken: escapes the analysis, ignore (documented).
			return
		}
		sc.expr(n.X, false)
	case *xmtc.Binary:
		sc.expr(n.X, false)
		sc.expr(n.Y, false)
	case *xmtc.Cond:
		sc.expr(n.C, false)
		sc.guarded(n.C, func() {
			sc.expr(n.T, false)
			sc.expr(n.F, false)
		})
	case *xmtc.Cast:
		sc.expr(n.X, false)
	case *xmtc.SizeofExpr:
		// Operand is not evaluated.
	case *xmtc.Ident, *xmtc.Index, *xmtc.Member:
		sc.access(e, write, false)
		sc.indexReads(e)
	}
}

// access records a read or write of an lvalue path if its base is a
// global symbol.
func (sc *raceScanner) access(e xmtc.Expr, write, valueTid bool) {
	sym := rootSym(e)
	if sym == nil || sym.Kind != xmtc.SymGlobal {
		return
	}
	var index xmtc.Expr
	if ix, ok := innerIndex(e); ok {
		index = ix
	}
	tid := valueTid || sc.guardTid > 0 || (index != nil && containsTid(index))
	sc.accesses = append(sc.accesses, raceAccess{
		sym:     sym,
		index:   index,
		write:   write,
		tidDep:  tid,
		pos:     e.GetPos(),
		text:    xmtc.RenderExpr(e),
		syncsAt: sc.syncs,
	})
}

// indexReads records the reads performed by the index sub-expressions of
// an access path (the b in hist[b].count).
func (sc *raceScanner) indexReads(e xmtc.Expr) {
	switch n := e.(type) {
	case *xmtc.Index:
		sc.expr(n.I, false)
		sc.indexReads(n.X)
	case *xmtc.Member:
		sc.indexReads(n.X)
	}
}

// innerIndex returns the innermost array index of an access path, e.g.
// the i of A[i] or hist[i].count.
func innerIndex(e xmtc.Expr) (xmtc.Expr, bool) {
	switch n := e.(type) {
	case *xmtc.Index:
		return n.I, true
	case *xmtc.Member:
		return innerIndex(n.X)
	}
	return nil, false
}
