package analysis

import (
	"fmt"

	"xmtgo/internal/diag"
	"xmtgo/internal/xmtc"
)

// checkVolatile flags reads of non-volatile shared globals inside a spawn
// body that register allocation is entitled to fold away, so the program
// cannot observe other threads' updates even though the programmer
// appears to expect it:
//
//   - a second read of the same non-volatile global scalar in one
//     straight-line statement sequence, with no intervening write or
//     prefix-sum: the optimizer keeps the first value in a register and
//     the second load is dead. Only globals some thread actually writes
//     inside the spawn body are tracked — re-reading a uniform that stays
//     constant for the whole parallel section is harmless, and flagging
//     it would bury the real findings (the FFT workload reads its stage
//     geometry globals repeatedly, for example);
//   - a loop whose condition reads a non-volatile global scalar that the
//     loop body neither writes nor synchronizes on: the load hoists out
//     of the loop and the spin never terminates (or never spins).
//
// Both are warnings; the fix is the volatile qualifier or a ps/psm. Only
// scalar globals are tracked — array elements are left to spawn-race.
func checkVolatile(u *Unit) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, site := range spawnSites(u.File) {
		w := &volWalker{written: writtenGlobals(site.sp.Body)}
		w.stmts(site.sp.Body.List)
		ds = append(ds, w.ds...)
	}
	return ds
}

type volWalker struct {
	ds []diag.Diagnostic
	// written holds the globals some statement of the spawn body stores
	// to (plain write or psm base); only their re-reads are suspicious.
	written map[*xmtc.Symbol]bool
}

// writtenGlobals collects the global scalars the spawn body writes,
// including psm bases (the cache modules update those in place).
func writtenGlobals(body xmtc.Stmt) map[*xmtc.Symbol]bool {
	out := make(map[*xmtc.Symbol]bool)
	record := func(e xmtc.Expr) {
		if sym := rootSym(e); sym != nil && sym.Kind == xmtc.SymGlobal {
			out[sym] = true
		}
	}
	eachStmt(body, func(s xmtc.Stmt) {
		stmtExprs(s, func(root xmtc.Expr) {
			eachExpr(root, func(e xmtc.Expr) {
				switch n := e.(type) {
				case *xmtc.Assign:
					record(n.LHS)
				case *xmtc.IncDec:
					record(n.X)
				case *xmtc.Call:
					if c, ok := isSyncCall(n); ok && len(c.Args) == 2 {
						record(c.Args[1])
					}
				}
			})
		})
	})
	return out
}

func (w *volWalker) report(pos xmtc.Pos, format string, args ...any) {
	w.ds = append(w.ds, diag.Diagnostic{
		Check:    "volatile",
		Severity: diag.Warning,
		Pos:      pos.Diag(),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// sharedScalar reports whether sym is a non-volatile global scalar.
func sharedScalar(sym *xmtc.Symbol) bool {
	return sym != nil && sym.Kind == xmtc.SymGlobal &&
		sym.Type.Kind != xmtc.KArray && sym.Type.Kind != xmtc.KStruct &&
		!sym.Type.Volatile && !sym.PsBase
}

// stmts scans one straight-line statement list, tracking the first read
// of each shared scalar; control-flow statements recurse with a fresh
// tracking state and act as barriers in the enclosing sequence.
func (w *volWalker) stmts(list []xmtc.Stmt) {
	first := make(map[*xmtc.Symbol]xmtc.Pos)
	reset := func() { first = make(map[*xmtc.Symbol]xmtc.Pos) }
	for _, s := range list {
		switch n := s.(type) {
		case *xmtc.DeclStmt:
			if n.Decl.Init != nil {
				w.scanReads(n.Decl.Init, first)
			}
		case *xmtc.ExprStmt:
			w.scanReads(n.X, first)
			w.scanEffects(n.X, first, reset)
		case *xmtc.BlockStmt:
			w.stmts(n.List)
			reset()
		case *xmtc.IfStmt:
			w.scanReads(n.Cond, first)
			w.branch(n.Then)
			w.branch(n.Else)
			reset()
		case *xmtc.WhileStmt:
			w.spin(n.Cond, n.Body, n.GetPos())
			w.branch(n.Body)
			reset()
		case *xmtc.DoStmt:
			w.spin(n.Cond, n.Body, n.GetPos())
			w.branch(n.Body)
			reset()
		case *xmtc.ForStmt:
			w.spin(n.Cond, n.Body, n.GetPos())
			w.branch(n.Body)
			reset()
		case *xmtc.SwitchStmt:
			w.scanReads(n.Tag, first)
			for _, cl := range n.Cases {
				w.stmts(cl.Body)
			}
			reset()
		case *xmtc.SpawnStmt:
			w.stmts(n.Body.List)
			reset()
		}
	}
}

func (w *volWalker) branch(s xmtc.Stmt) {
	switch n := s.(type) {
	case nil:
	case *xmtc.BlockStmt:
		w.stmts(n.List)
	default:
		w.stmts([]xmtc.Stmt{s})
	}
}

// scanReads records every read of a shared scalar in e and reports
// duplicates within the current sequence.
func (w *volWalker) scanReads(e xmtc.Expr, first map[*xmtc.Symbol]xmtc.Pos) {
	eachExpr(e, func(x xmtc.Expr) {
		id, ok := x.(*xmtc.Ident)
		if !ok || !sharedScalar(id.Sym) || !w.written[id.Sym] {
			return
		}
		if isWriteTarget(e, id) {
			return
		}
		if prev, seen := first[id.Sym]; seen {
			w.report(id.Pos,
				"%q is re-read with no intervening write or prefix-sum (first read at %s): register allocation folds the second load into the first, so it cannot observe another thread's update; declare %q volatile if that is the intent",
				id.Name, prev, id.Name)
			return
		}
		first[id.Sym] = id.Pos
	})
}

// scanEffects invalidates tracking state for writes and sync operations
// in e: a write makes the next read legitimately fresh, and a prefix-sum
// flushes the reader's buffers.
func (w *volWalker) scanEffects(e xmtc.Expr, first map[*xmtc.Symbol]xmtc.Pos, reset func()) {
	eachExpr(e, func(x xmtc.Expr) {
		switch n := x.(type) {
		case *xmtc.Assign:
			if id, ok := n.LHS.(*xmtc.Ident); ok && id.Sym != nil {
				delete(first, id.Sym)
			}
		case *xmtc.IncDec:
			if id, ok := n.X.(*xmtc.Ident); ok && id.Sym != nil {
				delete(first, id.Sym)
			}
		case *xmtc.Call:
			if _, ok := isSyncCall(n); ok {
				reset()
			}
		}
	})
}

// isWriteTarget reports whether id is the store target of the root
// expression (the x of x = ..., x++), which is not a read.
func isWriteTarget(root xmtc.Expr, id *xmtc.Ident) bool {
	switch n := root.(type) {
	case *xmtc.Assign:
		return n.Op == xmtc.ASSIGN && n.LHS == xmtc.Expr(id)
	case *xmtc.IncDec:
		return n.X == xmtc.Expr(id)
	}
	return false
}

// spin flags a loop inside a spawn that busy-waits on a non-volatile
// global: the condition reads it, and the body neither writes it nor
// performs a prefix-sum.
func (w *volWalker) spin(cond xmtc.Expr, body xmtc.Stmt, pos xmtc.Pos) {
	if cond == nil {
		return
	}
	var watched []*xmtc.Ident
	eachExpr(cond, func(x xmtc.Expr) {
		if id, ok := x.(*xmtc.Ident); ok && sharedScalar(id.Sym) {
			watched = append(watched, id)
		}
	})
	if len(watched) == 0 {
		return
	}
	writes := make(map[*xmtc.Symbol]bool)
	syncs := false
	eachStmt(body, func(s xmtc.Stmt) {
		stmtExprs(s, func(root xmtc.Expr) {
			eachExpr(root, func(x xmtc.Expr) {
				switch n := x.(type) {
				case *xmtc.Assign:
					if id, ok := n.LHS.(*xmtc.Ident); ok && id.Sym != nil {
						writes[id.Sym] = true
					}
				case *xmtc.IncDec:
					if id, ok := n.X.(*xmtc.Ident); ok && id.Sym != nil {
						writes[id.Sym] = true
					}
				case *xmtc.Call:
					if _, ok := isSyncCall(n); ok {
						syncs = true
					}
				}
			})
		})
	})
	if syncs {
		return
	}
	for _, id := range watched {
		if !writes[id.Sym] {
			w.report(pos,
				"spin-wait on non-volatile global %q: the loop body never writes it and performs no prefix-sum, so the load hoists out of the loop and the condition never changes; declare %q volatile or synchronize with ps/psm",
				id.Name, id.Name)
			return
		}
	}
}
