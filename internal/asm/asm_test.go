package asm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"xmtgo/internal/isa"
)

func parse(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Parse("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(parse(t, src))
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := assemble(t, `
        .data
v:      .word 42, -1, 0x10
s:      .asciiz "hi"
        .text
main:   lw  $t0, v
        sys 0
`)
	if p.Entry < 0 {
		t.Fatal("no entry")
	}
	addr, ok := p.SymAddr("v")
	if !ok || addr != DataBase {
		t.Fatalf("v at 0x%x", addr)
	}
	// Word values in the image.
	get := func(off uint32) int32 {
		return int32(uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 |
			uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24)
	}
	if get(0) != 42 || get(4) != -1 || get(8) != 0x10 {
		t.Fatalf("words = %d %d %d", get(0), get(4), get(8))
	}
	sAddr, _ := p.SymAddr("s")
	if string(p.Data[sAddr-DataBase:sAddr-DataBase+2]) != "hi" {
		t.Fatal("string not in image")
	}
}

func TestPseudoExpansion(t *testing.T) {
	p := assemble(t, `
        .text
main:   li   $t0, 70000
        li   $t1, 5
        move $t2, $t0
        not  $t3, $t0
        neg  $t4, $t0
        blt  $t0, $t1, main
        bge  $t0, $t1, main
        bgt  $t0, $t1, main
        ble  $t0, $t1, main
        b    main
        sys  0
`)
	// li 70000 expands to lui+ori; li 5 to addiu.
	if p.Text[0].Op != isa.OpLui || p.Text[1].Op != isa.OpOri {
		t.Fatalf("large li expansion: %v %v", p.Text[0].Op, p.Text[1].Op)
	}
	if p.Text[2].Op != isa.OpAddiu {
		t.Fatalf("small li: %v", p.Text[2].Op)
	}
}

func TestBranchResolution(t *testing.T) {
	p := assemble(t, `
        .text
main:   j end
mid:    nop
end:    beq $t0, $t1, mid
        sys 0
`)
	if p.Text[0].Target != 2 {
		t.Fatalf("j target = %d", p.Text[0].Target)
	}
	if p.Text[2].Target != 1 {
		t.Fatalf("beq target = %d", p.Text[2].Target)
	}
}

func TestSpawnRegions(t *testing.T) {
	p := assemble(t, `
        .text
main:   spawn $t0, $t1
        nop
        join
        spawn $t2, $t3
        join
        sys 0
`)
	if len(p.Spawns) != 2 {
		t.Fatalf("regions = %d", len(p.Spawns))
	}
	if p.Spawns[0].Spawn != 0 || p.Spawns[0].Join != 2 {
		t.Fatalf("region 0 = %+v", p.Spawns[0])
	}
	if r := p.RegionOf(1); r == nil || r.Spawn != 0 {
		t.Fatal("RegionOf(1) wrong")
	}
	if p.RegionOf(5) != nil {
		t.Fatal("RegionOf(5) should be nil")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"undefined label":  "\t.text\nmain: j nowhere\n",
		"nested spawn":     "\t.text\nmain: spawn $t0,$t1\n spawn $t2,$t3\n join\n join\n sys 0\n",
		"join no spawn":    "\t.text\nmain: join\n sys 0\n",
		"unjoined spawn":   "\t.text\nmain: spawn $t0,$t1\n sys 0\n",
		"no entry":         "\t.text\nfoo: sys 0\n",
		"duplicate label":  "\t.text\nmain: nop\nmain: sys 0\n",
		"duplicate symbol": "\t.data\nv: .word 1\nv: .word 2\n\t.text\nmain: sys 0\n",
		"unaligned word":   "\t.data\nc: .byte 1\nw: .word 2\n\t.text\nmain: sys 0\n",
		"bad register":     "\t.text\nmain: add $t0, $zz, $t1\n",
		"bad mnemonic":     "\t.text\nmain: frobnicate $t0\n",
		"bad operands":     "\t.text\nmain: add $t0, $t1\n",
		"word outside":     "\t.text\n.word 5\nmain: sys 0\n",
	}
	for name, src := range cases {
		u, err := Parse("t.s", src)
		if err == nil {
			_, err = Assemble(u)
		}
		if err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestMemMap(t *testing.T) {
	p := assemble(t, `
        .data
n:      .word 0
arr:    .space 40
f:      .float 0.0
str:    .space 16
        .text
main:   sys 0
`)
	err := ApplyMemMap(p, "m", `
# comment
n = 7
arr = 1 2 3
arr[5] = 99
f = 2.5
str = "hey"
`)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, woff uint32) int32 {
		a, _ := p.SymAddr(name)
		off := a - DataBase + 4*woff
		return int32(uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 |
			uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24)
	}
	if get("n", 0) != 7 || get("arr", 0) != 1 || get("arr", 2) != 3 || get("arr", 5) != 99 {
		t.Fatal("int patches wrong")
	}
	if math.Float32frombits(uint32(get("f", 0))) != 2.5 {
		t.Fatal("float patch wrong")
	}
	sa, _ := p.SymAddr("str")
	if string(p.Data[sa-DataBase:sa-DataBase+3]) != "hey" {
		t.Fatal("string patch wrong")
	}

	for name, m := range map[string]string{
		"unknown symbol": "zzz = 1",
		"bad syntax":     "n 7",
		"bad value":      "n = abc",
		"out of range":   "f[4000] = 1",
		"bad subscript":  "arr[x] = 1",
	} {
		if err := ApplyMemMap(p, "m", m); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestPrintParseRoundTrip: Print followed by Parse reproduces the same
// instruction stream (property-style over a handwritten corpus).
func TestPrintParseRoundTrip(t *testing.T) {
	src := `
        .data
a:      .word 1, 2, x
        .byte 1, 2
        .space 9
        .align 2
f:      .float 1.5, -0.25
x:      .asciiz "end\n"
        .text
        .global main
main:   addiu $t0, $zero, 4
        lui   $t1, %hi(a)
        ori   $t1, $t1, %lo(a)
        lw    $t2, 0($t1)
        sw.nb $t2, 4($t1)
        psm   $t2, 8($t1)
        ps    $t3, g5
        grr   $t4, g0
        grw   $t4, g1
        bcast $t4
        fence
        pref  $zero, 0($t1)
        lwro  $t5, 0($t1)
        mul   $t6, $t5, $t4
        add.s $t7, $t6, $t5
        cvt.s.w $t8, $t7
        spawn $t0, $t2
L:      chkid $t3
        beq   $t3, $zero, L
        j     L
        join
        jal   main
        jr    $ra
        sys   0
`
	u1 := parse(t, src)
	text := Print(u1)
	u2, err := Parse("round.s", text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	i1, i2 := u1.Instrs(), u2.Instrs()
	if len(i1) != len(i2) {
		t.Fatalf("instr count %d vs %d\n%s", len(i1), len(i2), text)
	}
	for i := range i1 {
		a, b := i1[i], i2[i]
		a.Line, b.Line = 0, 0
		if a != b {
			t.Fatalf("instr %d: %v vs %v", i, a, b)
		}
	}
	p1, err := Assemble(u1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(u2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Data) != len(p2.Data) || string(p1.Data) != string(p2.Data) {
		t.Fatal("data images differ after round trip")
	}
}

// Property: any int32 survives a .word round trip through the image.
func TestWordImageProperty(t *testing.T) {
	f := func(v int32) bool {
		u := &Unit{File: "q.s", Globals: map[string]bool{}}
		u.Data = append(u.Data, DataItem{Label: "v", Kind: DataWord, Values: []DataValue{{Val: v}}})
		u.AppendLabel("main", 1)
		u.AppendInstr(isa.Instr{Op: isa.OpSys, Imm: 0, Target: -1}, RelNone, 2)
		p, err := Assemble(u)
		if err != nil {
			return false
		}
		got := int32(uint32(p.Data[0]) | uint32(p.Data[1])<<8 | uint32(p.Data[2])<<16 | uint32(p.Data[3])<<24)
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: emitLoadImm (li expansion) materializes any int32 exactly:
// lui/ori or addiu evaluated by hand must reproduce the constant.
func TestLoadImmProperty(t *testing.T) {
	f := func(v int32) bool {
		u := &Unit{File: "q.s", Globals: map[string]bool{}}
		u.emitLoadImm(isa.RegT0, v, 1)
		var acc int32
		for _, it := range u.Text {
			in := it.Instr
			switch in.Op {
			case isa.OpAddiu:
				acc = in.Imm
			case isa.OpLui:
				acc = in.Imm << 16
			case isa.OpOri:
				acc |= in.Imm & 0xffff
			default:
				return false
			}
		}
		return acc == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndLabelsOnOneLine(t *testing.T) {
	p := assemble(t, strings.Join([]string{
		"\t.text",
		"main: start: nop # trailing comment",
		"\tsys 0 // also a comment",
	}, "\n"))
	if len(p.Text) != 2 {
		t.Fatalf("got %d instrs", len(p.Text))
	}
	if p.Syms["start"].Value != 0 {
		t.Fatal("stacked labels broken")
	}
}
