package asm

import (
	"fmt"
	"sort"
	"sync"

	"xmtgo/internal/isa"
)

// Memory layout constants of the simulated XMT machine. The text segment is
// a separate instruction-index space (the hardware broadcasts instructions;
// programs cannot modify code), so only data addresses appear here.
const (
	// DataBase is the byte address where the linked data segment starts.
	DataBase uint32 = 0x0001_0000
	// StackTop is the initial master-TCU stack pointer. Parallel code has
	// no stack in the current toolchain release (paper §IV-D).
	StackTop uint32 = 0x00f0_0000
	// DefaultMemSize is the default size of the simulated shared memory.
	DefaultMemSize uint32 = 0x0100_0000 // 16 MiB
)

// SymKind discriminates symbol namespaces.
type SymKind uint8

const (
	SymText SymKind = iota // value is an instruction index
	SymData                // value is a byte address
)

// Symbol is a linked symbol.
type Symbol struct {
	Name  string
	Kind  SymKind
	Value uint32
}

// SpawnRegion records a broadcast region: the instruction indices of a
// spawn instruction and its matching join.
type SpawnRegion struct {
	Spawn int // index of the spawn instruction
	Join  int // index of the matching join
}

// Program is a fully linked executable for the XMT simulator.
type Program struct {
	Text     []isa.Instr
	Syms     map[string]Symbol
	Data     []byte // initial data image, loaded at DataBase
	DataEnd  uint32 // first free byte after the data segment (heap start)
	Entry    int    // instruction index where the Master TCU starts
	Spawns   []SpawnRegion
	SrcFiles []string

	// lowered caches backend-specific lowered forms of the program, keyed
	// by backend name (e.g. "funcvm" for the bytecode VM). A program is
	// lowered once and the immutable result shared by every machine
	// attached to it, so batch and benchmark drivers pay the lowering cost
	// a single time. Guarded for concurrent simulations of one program.
	loweredMu sync.Mutex
	lowered   map[string]any
}

// CachedLowered returns the cached lowered form for backend, if any.
func (p *Program) CachedLowered(backend string) (any, bool) {
	p.loweredMu.Lock()
	defer p.loweredMu.Unlock()
	v, ok := p.lowered[backend]
	return v, ok
}

// StoreLowered caches a lowered form for backend. The stored value must be
// immutable: it is shared by every simulation of this program. The first
// store for a backend wins; concurrent duplicate lowerings are discarded.
func (p *Program) StoreLowered(backend string, v any) {
	p.loweredMu.Lock()
	defer p.loweredMu.Unlock()
	if p.lowered == nil {
		p.lowered = make(map[string]any)
	}
	if _, dup := p.lowered[backend]; !dup {
		p.lowered[backend] = v
	}
}

// SymAddr returns the value of a data symbol.
func (p *Program) SymAddr(name string) (uint32, bool) {
	s, ok := p.Syms[name]
	if !ok || s.Kind != SymData {
		return 0, false
	}
	return s.Value, true
}

// RegionOf returns the spawn region containing instruction index idx (the
// region spans (spawn, join], exclusive of the spawn itself), or nil.
func (p *Program) RegionOf(idx int) *SpawnRegion {
	for i := range p.Spawns {
		r := &p.Spawns[i]
		if idx > r.Spawn && idx <= r.Join {
			return r
		}
	}
	return nil
}

// Assemble lays out and links a single parsed unit into an executable
// Program. Multi-unit programs are concatenated by the caller (the compiler
// emits one unit).
func Assemble(units ...*Unit) (*Program, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("asm: no units")
	}
	merged := &Unit{File: units[0].File, Globals: make(map[string]bool)}
	for _, u := range units {
		merged.Text = append(merged.Text, u.Text...)
		merged.Data = append(merged.Data, u.Data...)
		for g := range u.Globals {
			merged.Globals[g] = true
		}
		merged.File = u.File
	}
	u := merged

	p := &Program{Syms: make(map[string]Symbol), Entry: -1}
	for _, un := range units {
		p.SrcFiles = append(p.SrcFiles, un.File)
	}

	// 1. Text labels -> instruction indices.
	labels, err := u.Labels()
	if err != nil {
		return nil, err
	}
	for name, idx := range labels {
		p.Syms[name] = Symbol{Name: name, Kind: SymText, Value: uint32(idx)}
	}

	// 2. Data layout.
	cursor := DataBase
	var image []byte
	grow := func(to uint32) {
		if n := int(to - DataBase); n > len(image) {
			image = append(image, make([]byte, n-len(image))...)
		}
	}
	putWord := func(addr uint32, v int32) {
		grow(addr + 4)
		off := addr - DataBase
		image[off] = byte(v)
		image[off+1] = byte(v >> 8)
		image[off+2] = byte(v >> 16)
		image[off+3] = byte(v >> 24)
	}
	type fixup struct {
		addr uint32
		sym  string
		line int
	}
	var fixups []fixup
	for _, d := range u.Data {
		if d.Label != "" {
			if _, dup := p.Syms[d.Label]; dup {
				return nil, errf(u.File, d.Line, "duplicate symbol %q", d.Label)
			}
			p.Syms[d.Label] = Symbol{Name: d.Label, Kind: SymData, Value: cursor}
		}
		switch d.Kind {
		case DataAlign:
			if d.Size > 0 {
				a := uint32(1) << uint(d.Size)
				cursor = (cursor + a - 1) &^ (a - 1)
				// Labels placed just before an .align must follow it; re-bind.
				if d.Label != "" {
					p.Syms[d.Label] = Symbol{Name: d.Label, Kind: SymData, Value: cursor}
				}
			}
		case DataWord, DataFloat:
			if cursor%4 != 0 {
				return nil, errf(u.File, d.Line, ".word/.float at unaligned address 0x%x; insert .align 2", cursor)
			}
			for _, v := range d.Values {
				if v.Sym != "" {
					fixups = append(fixups, fixup{cursor, v.Sym, d.Line})
					putWord(cursor, 0)
				} else {
					putWord(cursor, v.Val)
				}
				cursor += 4
			}
		case DataByte:
			for _, v := range d.Values {
				grow(cursor + 1)
				image[cursor-DataBase] = byte(v.Val)
				cursor++
			}
		case DataSpace:
			cursor += uint32(d.Size)
			grow(cursor)
		case DataAsciiz:
			grow(cursor + uint32(len(d.Str)) + 1)
			copy(image[cursor-DataBase:], d.Str)
			cursor += uint32(len(d.Str)) + 1
		}
	}
	p.Data = image
	p.DataEnd = (cursor + 7) &^ 7

	// 3. Resolve data fixups (.word sym).
	for _, f := range fixups {
		s, ok := p.Syms[f.sym]
		if !ok {
			return nil, errf(u.File, f.line, ".word: undefined symbol %q", f.sym)
		}
		putWord(f.addr, int32(s.Value))
	}
	p.Data = image

	// 4. Resolve instruction relocations.
	idx := 0
	for _, it := range u.Text {
		if it.Kind != ItemInstr {
			continue
		}
		in := it.Instr
		switch it.Reloc {
		case RelBranch:
			s, ok := p.Syms[in.Sym]
			if !ok || s.Kind != SymText {
				return nil, errf(u.File, it.Line, "undefined label %q", in.Sym)
			}
			in.Target = int(s.Value)
		case RelHi16, RelLo16, RelAbs:
			s, ok := p.Syms[in.Sym]
			if !ok {
				return nil, errf(u.File, it.Line, "undefined symbol %q", in.Sym)
			}
			switch it.Reloc {
			case RelHi16:
				in.Imm = int32(s.Value >> 16)
			case RelLo16:
				in.Imm = int32(s.Value & 0xffff)
			default:
				in.Imm = int32(s.Value)
			}
		}
		if err := in.Validate(); err != nil {
			return nil, errf(u.File, it.Line, "%v", err)
		}
		p.Text = append(p.Text, in)
		idx++
	}
	_ = idx

	// 5. Spawn region scan: spawn/join must be properly bracketed and not
	// nested (the compiler serializes nested spawns).
	open := -1
	for i, in := range p.Text {
		switch in.Op {
		case isa.OpSpawn:
			if open >= 0 {
				return nil, errf(u.File, in.Line, "nested spawn at instruction %d (previous spawn at %d not joined)", i, open)
			}
			open = i
		case isa.OpJoin:
			if open < 0 {
				return nil, errf(u.File, in.Line, "join at instruction %d without spawn", i)
			}
			p.Spawns = append(p.Spawns, SpawnRegion{Spawn: open, Join: i})
			open = -1
		}
	}
	if open >= 0 {
		return nil, errf(u.File, 0, "spawn at instruction %d has no matching join", open)
	}

	// 6. Entry point.
	if s, ok := p.Syms["_start"]; ok && s.Kind == SymText {
		p.Entry = int(s.Value)
	} else if s, ok := p.Syms["main"]; ok && s.Kind == SymText {
		p.Entry = int(s.Value)
	} else {
		return nil, errf(u.File, 0, "no entry point: define main or _start")
	}
	return p, nil
}

// DataSymbols returns the data symbols sorted by address, useful for memory
// dumps and the hottest-locations filter plug-in.
func (p *Program) DataSymbols() []Symbol {
	var out []Symbol
	for _, s := range p.Syms {
		if s.Kind == SymData {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// SymbolAt returns the name of the data symbol whose region contains addr
// (the closest symbol at or below addr), or "".
func (p *Program) SymbolAt(addr uint32) string {
	var best string
	var bestAddr uint32
	for _, s := range p.Syms {
		if s.Kind == SymData && s.Value <= addr && (best == "" || s.Value > bestAddr) {
			best, bestAddr = s.Name, s.Value
		}
	}
	return best
}
