package asm_test

import (
	"os"
	"path/filepath"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/asm/postpass"
	"xmtgo/internal/codegen"
)

// FuzzAssemble drives the full assembly path — parser, post-pass block
// relocation/verification, and the assembler — with arbitrary inputs. All
// three stages must reject malformed input with an error, never panic.
// Seeds are handwritten snippets plus the compiled form of every bundled
// XMTC example, so the corpus starts from realistic codegen output. Run at
// length with
//
//	go test -fuzz FuzzAssemble ./internal/asm
//
// scripts/check.sh runs a short smoke of this target.
func FuzzAssemble(f *testing.F) {
	srcs, _ := filepath.Glob("../../examples/xmtc/*.c")
	for _, path := range srcs {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		res, err := codegen.Compile(path, string(src), codegen.Options{OptLevel: 1, PrefetchSlots: 4})
		if err != nil {
			continue // examples that need memmaps or flags still seed the parser below
		}
		f.Add(asm.Print(res.Unit))
	}
	f.Add("\t.data\nv:\t.word 42, -1, 0x10\ns:\t.asciiz \"hi\"\n\t.text\nmain:\tlw $t0, v\n\tsys 0\n")
	f.Add("\t.text\nmain:\tspawn L1, $t0\n\tjoin\nL1:\tps $t1, g5\n\tret\n")
	f.Add("\t.text\nmain:\tbeq $t0, $t1, main\n")

	f.Fuzz(func(t *testing.T, src string) {
		u, err := asm.Parse("fuzz.s", src)
		if err != nil {
			return
		}
		if _, err := postpass.Run(u); err != nil {
			return
		}
		_, _ = asm.Assemble(u)
	})
}
