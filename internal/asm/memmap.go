package asm

import (
	"math"
	"strconv"
	"strings"
)

// A memory-map file provides initial values for global variables — the only
// way to feed input to an XMTC program in the OS-less XMT toolchain (paper
// §III-A). The format is line-oriented:
//
//	# comment
//	n       = 1024
//	A       = 5 0 3 0 0 9 1
//	A[100]  = 7          # word offset 100 within A
//	name    = "a string"
//	weights = 0.5 1.25 3.0
//
// Integer values are written as 32-bit words, values containing '.' or an
// exponent as IEEE-754 float32 words, and strings as NUL-terminated bytes.

// ApplyMemMap parses src and patches the program's initial data image.
func ApplyMemMap(p *Program, file, src string) error {
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		text := strings.TrimSpace(stripComment(raw))
		if text == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(text, "=")
		if !ok {
			return errf(file, line, "expected 'symbol = values'")
		}
		lhs = strings.TrimSpace(lhs)
		rhs = strings.TrimSpace(rhs)

		var wordOff int64
		if i := strings.IndexByte(lhs, '['); i >= 0 {
			if !strings.HasSuffix(lhs, "]") {
				return errf(file, line, "bad subscript in %q", lhs)
			}
			var err error
			wordOff, err = strconv.ParseInt(lhs[i+1:len(lhs)-1], 0, 32)
			if err != nil || wordOff < 0 {
				return errf(file, line, "bad subscript in %q", lhs)
			}
			lhs = strings.TrimSpace(lhs[:i])
		}
		sym, ok := p.Syms[lhs]
		if !ok || sym.Kind != SymData {
			return errf(file, line, "unknown data symbol %q", lhs)
		}
		addr := sym.Value + uint32(wordOff)*4

		if strings.HasPrefix(rhs, "\"") {
			s, err := strconv.Unquote(rhs)
			if err != nil {
				return errf(file, line, "bad string %s", rhs)
			}
			if err := p.patchBytes(addr, append([]byte(s), 0)); err != nil {
				return errf(file, line, "%s: %v", lhs, err)
			}
			continue
		}
		for _, f := range strings.Fields(rhs) {
			var word int32
			if looksFloat(f) {
				fv, err := strconv.ParseFloat(f, 32)
				if err != nil {
					return errf(file, line, "bad float %q", f)
				}
				word = int32(math.Float32bits(float32(fv)))
			} else {
				v, err := strconv.ParseInt(f, 0, 64)
				if err != nil || v < math.MinInt32 || v > math.MaxUint32 {
					return errf(file, line, "bad value %q", f)
				}
				word = int32(uint32(v))
			}
			if err := p.patchWord(addr, word); err != nil {
				return errf(file, line, "%s: %v", lhs, err)
			}
			addr += 4
		}
	}
	return nil
}

func looksFloat(s string) bool {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		return false
	}
	return strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0b")
}

func (p *Program) patchWord(addr uint32, v int32) error {
	if addr < DataBase || addr+4 > DataBase+uint32(len(p.Data)) {
		return errf("", 0, "address 0x%x outside the data segment", addr)
	}
	off := addr - DataBase
	p.Data[off] = byte(v)
	p.Data[off+1] = byte(v >> 8)
	p.Data[off+2] = byte(v >> 16)
	p.Data[off+3] = byte(v >> 24)
	return nil
}

func (p *Program) patchBytes(addr uint32, b []byte) error {
	if addr < DataBase || addr+uint32(len(b)) > DataBase+uint32(len(p.Data)) {
		return errf("", 0, "address 0x%x outside the data segment", addr)
	}
	copy(p.Data[addr-DataBase:], b)
	return nil
}
