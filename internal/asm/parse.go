package asm

import (
	"math"
	"strconv"
	"strings"

	"xmtgo/internal/isa"
)

// Parse parses XMT assembly source into a Unit. The syntax is the classic
// MIPS-style one the XMT toolchain uses:
//
//	        .data
//	arr:    .word 1, 2, 3
//	        .space 400
//	msg:    .asciiz "done"
//	        .text
//	        .global main
//	main:   li   $t0, 5
//	        la   $a0, arr
//	loop:   lw   $t1, 0($a0)
//	        bne  $t1, $zero, loop
//	        sys  0
//
// Comments run from '#' (or "//") to end of line. Pseudo-instructions
// li/la/move/b/not/neg/bge/bgt/ble/blt/seq/sne and symbolic lw/sw are
// expanded here.
func Parse(file, src string) (*Unit, error) {
	u := &Unit{File: file, Globals: make(map[string]bool)}
	inData := false
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := ln + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Leading labels (possibly several, "a: b: instr").
		for {
			i := strings.IndexByte(text, ':')
			if i < 0 {
				break
			}
			head := strings.TrimSpace(text[:i])
			if !isIdent(head) {
				break
			}
			if inData {
				u.Data = append(u.Data, DataItem{Label: head, Kind: DataAlign, Size: 0, Line: line})
			} else {
				u.AppendLabel(head, line)
			}
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			var err error
			inData, err = u.parseDirective(text, line, inData)
			if err != nil {
				return nil, err
			}
			continue
		}
		if inData {
			return nil, errf(file, line, "instruction %q in .data section", text)
		}
		if err := u.parseInstr(text, line); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
		case !inStr && s[i] == '#':
			return s[:i]
		case !inStr && s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (u *Unit) parseDirective(text string, line int, inData bool) (bool, error) {
	name, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".data":
		return true, nil
	case ".text":
		return false, nil
	case ".global", ".globl":
		if !isIdent(rest) {
			return inData, errf(u.File, line, "%s: bad symbol %q", name, rest)
		}
		u.Globals[rest] = true
		return inData, nil
	case ".word", ".byte", ".float":
		if !inData {
			return inData, errf(u.File, line, "%s outside .data", name)
		}
		kind := DataWord
		if name == ".byte" {
			kind = DataByte
		} else if name == ".float" {
			kind = DataFloat
		}
		var vals []DataValue
		for _, f := range splitArgs(rest) {
			if kind == DataFloat {
				fv, err := strconv.ParseFloat(f, 32)
				if err != nil {
					return inData, errf(u.File, line, ".float: bad value %q", f)
				}
				vals = append(vals, DataValue{Val: int32(math.Float32bits(float32(fv)))})
				continue
			}
			if v, err := parseInt(f); err == nil {
				vals = append(vals, DataValue{Val: v})
			} else if isIdent(f) {
				vals = append(vals, DataValue{Sym: f})
			} else {
				return inData, errf(u.File, line, "%s: bad value %q", name, f)
			}
		}
		if len(vals) == 0 {
			return inData, errf(u.File, line, "%s: missing values", name)
		}
		u.Data = append(u.Data, DataItem{Kind: kind, Values: vals, Line: line})
		return inData, nil
	case ".space", ".align":
		if !inData {
			return inData, errf(u.File, line, "%s outside .data", name)
		}
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return inData, errf(u.File, line, "%s: bad size %q", name, rest)
		}
		kind := DataSpace
		if name == ".align" {
			kind = DataAlign
		}
		u.Data = append(u.Data, DataItem{Kind: kind, Size: n, Line: line})
		return inData, nil
	case ".asciiz":
		if !inData {
			return inData, errf(u.File, line, ".asciiz outside .data")
		}
		s, err := strconv.Unquote(rest)
		if err != nil {
			return inData, errf(u.File, line, ".asciiz: bad string %s", rest)
		}
		u.Data = append(u.Data, DataItem{Kind: DataAsciiz, Str: s, Line: line})
		return inData, nil
	}
	return inData, errf(u.File, line, "unknown directive %q", name)
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return 0, strconv.ErrRange
	}
	return int32(uint32(v)), nil
}

// parseInstr parses one instruction (or pseudo-instruction) line.
func (u *Unit) parseInstr(text string, line int) error {
	mn, rest, _ := strings.Cut(text, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	args := splitArgs(strings.TrimSpace(rest))
	if err := u.expandPseudo(mn, args, line); err != errNotPseudo {
		return err
	}
	op, ok := isa.ByName[mn]
	if !ok {
		return errf(u.File, line, "unknown mnemonic %q", mn)
	}
	in := isa.Instr{Op: op, Target: -1, Line: line}
	reloc := RelNone
	meta := op.Meta()
	need := func(n int) error {
		if len(args) != n {
			return errf(u.File, line, "%s: want %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	reg := func(s string) (isa.Reg, error) {
		r, err := isa.ParseReg(s)
		if err != nil {
			return 0, errf(u.File, line, "%s: %v", mn, err)
		}
		return r, nil
	}
	var err error
	switch meta.Fmt {
	case isa.FmtNone:
		if err = need(0); err != nil {
			return err
		}
	case isa.FmtRRR:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		if in.Rs, err = reg(args[1]); err != nil {
			return err
		}
		if in.Rt, err = reg(args[2]); err != nil {
			return err
		}
	case isa.FmtRRI:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		if in.Rs, err = reg(args[1]); err != nil {
			return err
		}
		if sym, kind, ok := tryHiLo(args[2]); ok {
			in.Sym, reloc = sym, kind
		} else if in.Imm, err = parseInt(args[2]); err != nil {
			return errf(u.File, line, "%s: bad immediate %q", mn, args[2])
		}
	case isa.FmtRI:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		if sym, kind, ok := tryHiLo(args[1]); ok {
			in.Sym, reloc = sym, kind
		} else if in.Imm, err = parseInt(args[1]); err != nil {
			return errf(u.File, line, "%s: bad immediate %q", mn, args[1])
		}
	case isa.FmtRR:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		if in.Rs, err = reg(args[1]); err != nil {
			return err
		}
	case isa.FmtR:
		if err = need(1); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		if op == isa.OpJr || op == isa.OpJalr || op == isa.OpChkid {
			in.Rs = in.Rd
		}
	case isa.FmtMem:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		off, base, perr := parseMemOperand(args[1])
		if perr != nil {
			// Symbolic form: "lw $t0, sym" expands to la $at + access.
			if isIdent(args[1]) {
				u.AppendInstr(isa.Instr{Op: isa.OpLui, Rd: isa.RegAT, Sym: args[1], Target: -1, Line: line}, RelHi16, line)
				u.AppendInstr(isa.Instr{Op: isa.OpOri, Rd: isa.RegAT, Rs: isa.RegAT, Sym: args[1], Target: -1, Line: line}, RelLo16, line)
				in.Rs = isa.RegAT
				in.Imm = 0
				u.AppendInstr(in, RelNone, line)
				return nil
			}
			return errf(u.File, line, "%s: bad memory operand %q", mn, args[1])
		}
		in.Imm = off
		if in.Rs, err = reg(base); err != nil {
			return err
		}
	case isa.FmtBranch2:
		if err = need(3); err != nil {
			return err
		}
		if in.Rs, err = reg(args[0]); err != nil {
			return err
		}
		if in.Rt, err = reg(args[1]); err != nil {
			return err
		}
		in.Sym = args[2]
		reloc = RelBranch
	case isa.FmtBranch1:
		if err = need(2); err != nil {
			return err
		}
		if in.Rs, err = reg(args[0]); err != nil {
			return err
		}
		in.Sym = args[1]
		reloc = RelBranch
	case isa.FmtJump:
		if err = need(1); err != nil {
			return err
		}
		in.Sym = args[0]
		reloc = RelBranch
	case isa.FmtPS:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return err
		}
		g, gerr := parseGReg(args[1])
		if gerr != nil {
			return errf(u.File, line, "%s: %v", mn, gerr)
		}
		in.G = g
	case isa.FmtSpawn:
		if err = need(2); err != nil {
			return err
		}
		if in.Rs, err = reg(args[0]); err != nil {
			return err
		}
		if in.Rt, err = reg(args[1]); err != nil {
			return err
		}
	case isa.FmtSys:
		if err = need(1); err != nil {
			return err
		}
		if in.Imm, err = parseInt(args[0]); err != nil {
			return errf(u.File, line, "sys: bad code %q", args[0])
		}
	}
	u.AppendInstr(in, reloc, line)
	return nil
}

// tryHiLo recognizes the %hi(sym) / %lo(sym) relocation operand syntax.
func tryHiLo(s string) (sym string, kind RelocKind, ok bool) {
	switch {
	case strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")"):
		return s[4 : len(s)-1], RelHi16, true
	case strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")"):
		return s[4 : len(s)-1], RelLo16, true
	}
	return "", RelNone, false
}

func parseMemOperand(s string) (off int32, base string, err error) {
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", errNotPseudo
	}
	offStr := strings.TrimSpace(s[:i])
	base = strings.TrimSpace(s[i+1 : len(s)-1])
	if offStr == "" {
		return 0, base, nil
	}
	off, err = parseInt(offStr)
	return off, base, err
}

func parseGReg(s string) (isa.GReg, error) {
	if len(s) < 2 || (s[0] != 'g' && s[0] != 'G') {
		return 0, errNotPseudo
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumGRegs {
		return 0, errf("", 0, "bad global register %q", s)
	}
	return isa.GReg(n), nil
}

// errNotPseudo is a sentinel: the mnemonic was not a pseudo-instruction and
// should be handled by the regular path.
var errNotPseudo = &Error{Msg: "not a pseudo-instruction"}

// expandPseudo expands assembler pseudo-instructions into real ones.
func (u *Unit) expandPseudo(mn string, args []string, line int) error {
	reg := func(s string) (isa.Reg, error) {
		r, err := isa.ParseReg(s)
		if err != nil {
			return 0, errf(u.File, line, "%s: %v", mn, err)
		}
		return r, nil
	}
	switch mn {
	case "li":
		if len(args) != 2 {
			return errf(u.File, line, "li: want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := parseInt(args[1])
		if err != nil {
			return errf(u.File, line, "li: bad immediate %q", args[1])
		}
		u.emitLoadImm(rd, v, line)
		return nil
	case "la":
		if len(args) != 2 {
			return errf(u.File, line, "la: want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		if !isIdent(args[1]) {
			return errf(u.File, line, "la: bad symbol %q", args[1])
		}
		u.AppendInstr(isa.Instr{Op: isa.OpLui, Rd: rd, Sym: args[1], Target: -1, Line: line}, RelHi16, line)
		u.AppendInstr(isa.Instr{Op: isa.OpOri, Rd: rd, Rs: rd, Sym: args[1], Target: -1, Line: line}, RelLo16, line)
		return nil
	case "move":
		if len(args) != 2 {
			return errf(u.File, line, "move: want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		u.AppendInstr(isa.Instr{Op: isa.OpAddu, Rd: rd, Rs: rs, Rt: isa.RegZero, Target: -1, Line: line}, RelNone, line)
		return nil
	case "b":
		if len(args) != 1 {
			return errf(u.File, line, "b: want 1 operand")
		}
		u.AppendInstr(isa.Instr{Op: isa.OpJ, Sym: args[0], Target: -1, Line: line}, RelBranch, line)
		return nil
	case "not":
		if len(args) != 2 {
			return errf(u.File, line, "not: want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		u.AppendInstr(isa.Instr{Op: isa.OpNor, Rd: rd, Rs: rs, Rt: isa.RegZero, Target: -1, Line: line}, RelNone, line)
		return nil
	case "neg":
		if len(args) != 2 {
			return errf(u.File, line, "neg: want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		u.AppendInstr(isa.Instr{Op: isa.OpSub, Rd: rd, Rs: isa.RegZero, Rt: rs, Target: -1, Line: line}, RelNone, line)
		return nil
	case "blt", "bge", "bgt", "ble":
		if len(args) != 3 {
			return errf(u.File, line, "%s: want 3 operands", mn)
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		rt, err := reg(args[1])
		if err != nil {
			return err
		}
		a, b := rs, rt
		if mn == "bgt" || mn == "ble" {
			a, b = rt, rs // swap operands: bgt x,y == blt y,x
		}
		u.AppendInstr(isa.Instr{Op: isa.OpSlt, Rd: isa.RegAT, Rs: a, Rt: b, Target: -1, Line: line}, RelNone, line)
		br := isa.OpBne // blt/bgt: taken when slt produced 1
		if mn == "bge" || mn == "ble" {
			br = isa.OpBeq // taken when slt produced 0
		}
		u.AppendInstr(isa.Instr{Op: br, Rs: isa.RegAT, Rt: isa.RegZero, Sym: args[2], Target: -1, Line: line}, RelBranch, line)
		return nil
	}
	return errNotPseudo
}

// emitLoadImm emits the shortest sequence loading v into rd.
func (u *Unit) emitLoadImm(rd isa.Reg, v int32, line int) {
	if v >= -32768 && v <= 32767 {
		u.AppendInstr(isa.Instr{Op: isa.OpAddiu, Rd: rd, Rs: isa.RegZero, Imm: v, Target: -1, Line: line}, RelNone, line)
		return
	}
	hi := int32(uint32(v) >> 16)
	lo := int32(uint32(v) & 0xffff)
	u.AppendInstr(isa.Instr{Op: isa.OpLui, Rd: rd, Imm: hi, Target: -1, Line: line}, RelNone, line)
	if lo != 0 {
		u.AppendInstr(isa.Instr{Op: isa.OpOri, Rd: rd, Rs: rd, Imm: lo, Target: -1, Line: line}, RelNone, line)
	}
}
