package postpass

import (
	"strings"
	"testing"

	"xmtgo/internal/diag"
)

// verifyMM parses src and returns the rendered memory-model diagnostics.
func verifyMM(t *testing.T, src string) []string {
	t.Helper()
	u := parse(t, src)
	var got []string
	for _, d := range VerifyMemoryModel(u) {
		if d.Check != "memmodel" {
			t.Fatalf("unexpected check %q", d.Check)
		}
		if d.Severity != diag.Warning {
			t.Fatalf("memmodel findings must be warnings, got %v", d.Severity)
		}
		got = append(got, d.String())
	}
	return got
}

func TestMemModelFencedPsClean(t *testing.T) {
	src := `
        .text
main:
        spawn $t0, $t1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        addiu $t2, $zero, 1
        fence
        ps    $t2, g10
        join
        jr    $ra
`
	if ds := verifyMM(t, src); len(ds) != 0 {
		t.Errorf("fenced ps flagged: %v", ds)
	}
}

func TestMemModelUnfencedPs(t *testing.T) {
	src := `
        .text
main:
        spawn $t0, $t1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        addiu $t2, $zero, 1
        ps    $t2, g10
        join
        jr    $ra
`
	ds := verifyMM(t, src)
	if len(ds) != 1 || !strings.Contains(ds[0], "fence-before-prefix-sum") {
		t.Errorf("unfenced ps diagnostics = %v", ds)
	}
}

func TestMemModelHoistedMemoryOp(t *testing.T) {
	// The store sits between the fence and its prefix-sum: exactly the
	// reordering the fence exists to forbid.
	src := `
        .text
main:
        spawn $t0, $t1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        fence
        sw    $t3, 0($t4)
        addiu $t2, $zero, 1
        psm   $t2, 0($t5)
        join
        jr    $ra
`
	ds := verifyMM(t, src)
	if len(ds) != 1 || !strings.Contains(ds[0], "illegally hoisted") {
		t.Errorf("hoisted-op diagnostics = %v", ds)
	}
}

func TestMemModelThreadIDGrabExempt(t *testing.T) {
	// The grab ps at a spawn-region head is validated by chkid and runs
	// in a fresh context with no pending memory operations; it needs no
	// fence and must not be flagged.
	src := `
        .text
main:
        spawn $t0, $t1
Lgrab:  addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        join
        jr    $ra
`
	if ds := verifyMM(t, src); len(ds) != 0 {
		t.Errorf("thread-id grab flagged: %v", ds)
	}
}

func TestMemModelPsAtBlockHead(t *testing.T) {
	// A ps right after a label (jump target) has an unfenced incoming
	// path even if some other path fences.
	src := `
        .text
main:
        spawn $t0, $t1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        fence
        j     Lps
Lps:    addiu $t2, $zero, 1
        ps    $t2, g10
        join
        jr    $ra
`
	ds := verifyMM(t, src)
	if len(ds) != 1 || !strings.Contains(ds[0], "head of a basic block") {
		t.Errorf("block-head diagnostics = %v", ds)
	}
}
