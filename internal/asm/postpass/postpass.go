// Package postpass implements the third compiler pass of the XMT toolchain
// (the SableCC-based pass in the paper): it verifies that assembly complies
// with XMT semantics and fixes basic-block layout.
//
// The key check reproduces Fig. 9 of the paper: all code of a spawn block
// must be placed between the spawn and join instructions, because the XMT
// hardware broadcasts exactly that window to the TCUs and TCUs cannot fetch
// instructions that were not broadcast. An optimizing core pass may place a
// basic block that logically belongs to the spawn region after the join
// (e.g. after the enclosing function's return) to save a jump; this pass
// detects such blocks and relocates them back inside the region, inserting a
// jump to the join where fall-through would otherwise be broken.
package postpass

import (
	"fmt"

	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
)

// Diagnostic is one verification failure.
type Diagnostic struct {
	Line int
	Msg  string
}

func (d Diagnostic) Error() string {
	if d.Line > 0 {
		return fmt.Sprintf("line %d: %s", d.Line, d.Msg)
	}
	return d.Msg
}

// Result reports what the post-pass did.
type Result struct {
	RelocatedBlocks int      // basic blocks moved back into spawn regions
	InsertedJumps   int      // fall-through protection jumps added
	Diagnostics     []string // non-fatal notes
}

// Run verifies and fixes a unit in place. It returns an error for
// violations that cannot be repaired (illegal instructions in parallel code,
// unbalanced spawn/join, blocks that cannot be extracted).
func Run(u *asm.Unit) (*Result, error) {
	res := &Result{}
	if err := relocateMisplacedBlocks(u, res); err != nil {
		return res, err
	}
	if err := verify(u); err != nil {
		return res, err
	}
	return res, nil
}

// region is a spawn..join window in item coordinates.
type region struct {
	spawn, join int // item indices
}

func findRegions(u *asm.Unit) ([]region, error) {
	var regions []region
	open := -1
	for i, it := range u.Text {
		if it.Kind != asm.ItemInstr {
			continue
		}
		switch it.Instr.Op {
		case isa.OpSpawn:
			if open >= 0 {
				return nil, Diagnostic{Line: it.Line, Msg: "nested spawn (previous spawn not joined)"}
			}
			open = i
		case isa.OpJoin:
			if open < 0 {
				return nil, Diagnostic{Line: it.Line, Msg: "join without matching spawn"}
			}
			regions = append(regions, region{spawn: open, join: i})
			open = -1
		}
	}
	if open >= 0 {
		return nil, Diagnostic{Line: u.Text[open].Line, Msg: "spawn without matching join"}
	}
	return regions, nil
}

func labelPositions(u *asm.Unit) map[string]int {
	m := make(map[string]int)
	for i, it := range u.Text {
		if it.Kind == asm.ItemLabel {
			m[it.Label] = i
		}
	}
	return m
}

// relocateMisplacedBlocks implements the Fig. 9 fix. It iterates to a fixed
// point because a relocated block may itself branch to another misplaced
// block.
func relocateMisplacedBlocks(u *asm.Unit, res *Result) error {
	for iter := 0; ; iter++ {
		if iter > 4*len(u.Text)+16 {
			return Diagnostic{Msg: "postpass: block relocation did not converge"}
		}
		moved, err := relocateOne(u, res)
		if err != nil {
			return err
		}
		if !moved {
			return nil
		}
	}
}

func relocateOne(u *asm.Unit, res *Result) (bool, error) {
	regions, err := findRegions(u)
	if err != nil {
		return false, err
	}
	labels := labelPositions(u)
	for _, r := range regions {
		for i := r.spawn + 1; i < r.join; i++ {
			it := u.Text[i]
			if it.Kind != asm.ItemInstr || it.Instr.Sym == "" || !it.Instr.Op.IsBranch() {
				continue
			}
			pos, ok := labels[it.Instr.Sym]
			if !ok {
				return false, Diagnostic{Line: it.Line, Msg: fmt.Sprintf("undefined label %q", it.Instr.Sym)}
			}
			if pos > r.spawn && pos < r.join {
				continue // already inside the broadcast window
			}
			if pos < r.spawn {
				return false, Diagnostic{Line: it.Line, Msg: fmt.Sprintf("spawn block branches to %q before the spawn instruction; cannot relocate backwards-shared code", it.Instr.Sym)}
			}
			if err := moveBlockIntoRegion(u, r, pos, res); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// moveBlockIntoRegion extracts the basic-block chain starting at item index
// pos (a label) and reinserts it immediately before the region's join,
// protecting fall-through into the join with a fresh jump when needed.
func moveBlockIntoRegion(u *asm.Unit, r region, pos int, res *Result) error {
	end := pos
	found := false
	for end < len(u.Text) {
		it := u.Text[end]
		if it.Kind == asm.ItemInstr {
			op := it.Instr.Op
			if op == isa.OpSpawn || op == isa.OpJoin {
				return Diagnostic{Line: it.Line, Msg: "misplaced spawn-block code runs into another spawn region"}
			}
			if op == isa.OpJ || op == isa.OpJr || op == isa.OpJalr {
				end++
				found = true
				break
			}
		}
		end++
	}
	if !found {
		return Diagnostic{Line: u.Text[pos].Line, Msg: "misplaced spawn-block code falls off the end of the unit"}
	}
	block := make([]asm.TextItem, end-pos)
	copy(block, u.Text[pos:end])

	// Remove the block, then compute the insertion point (join shifts left
	// when the block preceded it — it cannot, since pos > join, but keep the
	// general form).
	rest := append(append([]asm.TextItem{}, u.Text[:pos]...), u.Text[end:]...)
	join := r.join
	if pos < join {
		join -= len(block)
	}

	// Fall-through protection: if the last instruction before the join can
	// fall through, route it around the inserted block via a fresh label at
	// the join (Fig. 9b's "j BB_join").
	var insert []asm.TextItem
	last := -1
	for i := join - 1; i > r.spawn; i-- {
		if rest[i].Kind == asm.ItemInstr {
			last = i
			break
		}
	}
	needJump := true
	if last >= 0 {
		op := rest[last].Instr.Op
		if op == isa.OpJ || op == isa.OpJr || op == isa.OpJalr {
			needJump = false
		}
	}
	if needJump {
		joinLabel := fmt.Sprintf("__bbjoin_%d", res.RelocatedBlocks)
		insert = append(insert, asm.TextItem{
			Kind:  asm.ItemInstr,
			Instr: isa.Instr{Op: isa.OpJ, Sym: joinLabel, Target: -1, Line: rest[join].Line},
			Reloc: asm.RelBranch,
		})
		insert = append(insert, block...)
		insert = append(insert, asm.TextItem{Kind: asm.ItemLabel, Label: joinLabel, Line: rest[join].Line})
		res.InsertedJumps++
	} else {
		insert = append(insert, block...)
	}

	u.Text = append(append(append([]asm.TextItem{}, rest[:join]...), insert...), rest[join:]...)
	res.RelocatedBlocks++
	res.Diagnostics = append(res.Diagnostics,
		fmt.Sprintf("relocated basic block %q into spawn region", blockLabel(block)))
	return nil
}

func blockLabel(block []asm.TextItem) string {
	for _, it := range block {
		if it.Kind == asm.ItemLabel {
			return it.Label
		}
	}
	return "?"
}

// verify enforces the XMT semantic rules on the final layout:
//
//   - every branch issued inside a spawn region targets the same region
//     (TCUs can only fetch broadcast instructions);
//   - parallel code contains no function calls or returns (no parallel
//     stack in the current release, paper §IV-D/E), no spawn, and no
//     master-only instructions;
//   - parallel code never touches $sp or $fp;
//   - ps increments use a register (checked dynamically to be 0/1) and a
//     legal global register.
func verify(u *asm.Unit) error {
	regions, err := findRegions(u)
	if err != nil {
		return err
	}
	labels := labelPositions(u)
	inRegion := func(i int) *region {
		for k := range regions {
			if i > regions[k].spawn && i < regions[k].join {
				return &regions[k]
			}
		}
		return nil
	}
	for i, it := range u.Text {
		if it.Kind != asm.ItemInstr {
			continue
		}
		in := it.Instr
		r := inRegion(i)
		if r == nil {
			continue
		}
		meta := in.Op.Meta()
		if meta.MasterOnly {
			return Diagnostic{Line: it.Line, Msg: fmt.Sprintf("%s is illegal in parallel code", in.Op)}
		}
		switch in.Op {
		case isa.OpJal, isa.OpJalr:
			return Diagnostic{Line: it.Line, Msg: "function calls in parallel code require the parallel cactus stack (not in this release)"}
		case isa.OpJr:
			return Diagnostic{Line: it.Line, Msg: "return (jr) inside a spawn region"}
		}
		if usesReg(in, isa.RegSP) || usesReg(in, isa.RegFP) {
			return Diagnostic{Line: it.Line, Msg: "parallel code must not use the stack ($sp/$fp): no parallel stack allocation in this release"}
		}
		if in.Sym != "" && in.Op.IsBranch() {
			pos, ok := labels[in.Sym]
			if !ok {
				return Diagnostic{Line: it.Line, Msg: fmt.Sprintf("undefined label %q", in.Sym)}
			}
			if pos <= r.spawn || pos >= r.join {
				return Diagnostic{Line: it.Line, Msg: fmt.Sprintf("branch to %q escapes the spawn region: the target was not broadcast", in.Sym)}
			}
		}
	}
	return nil
}

func usesReg(in isa.Instr, r isa.Reg) bool {
	meta := in.Op.Meta()
	switch meta.Fmt {
	case isa.FmtRRR, isa.FmtBranch2:
		return in.Rd == r || in.Rs == r || in.Rt == r
	case isa.FmtRRI, isa.FmtRR, isa.FmtMem:
		return in.Rd == r || in.Rs == r
	case isa.FmtRI, isa.FmtR, isa.FmtPS:
		return in.Rd == r
	case isa.FmtBranch1:
		return in.Rs == r
	case isa.FmtSpawn:
		return in.Rs == r || in.Rt == r
	}
	return false
}
