// Package postpass implements the third compiler pass of the XMT toolchain
// (the SableCC-based pass in the paper): it verifies that assembly complies
// with XMT semantics and fixes basic-block layout.
//
// The key check reproduces Fig. 9 of the paper: all code of a spawn block
// must be placed between the spawn and join instructions, because the XMT
// hardware broadcasts exactly that window to the TCUs and TCUs cannot fetch
// instructions that were not broadcast. An optimizing core pass may place a
// basic block that logically belongs to the spawn region after the join
// (e.g. after the enclosing function's return) to save a jump; this pass
// detects such blocks and relocates them back inside the region, inserting a
// jump to the join where fall-through would otherwise be broken.
//
// Beyond the structural rules, VerifyMemoryModel checks the emitted code
// against the XMT memory-model discipline: every prefix-sum instruction in
// parallel code must be fenced (the paper's fence-before-prefix-sum rule,
// §IV-A), and no load or store may sit between the fence and its
// prefix-sum — a memory operation hoisted across a ps would be exactly the
// reordering the fence exists to forbid.
package postpass

import (
	"fmt"

	"xmtgo/internal/asm"
	"xmtgo/internal/diag"
	"xmtgo/internal/isa"
)

// Diagnostic is the shared structured diagnostic type; the post-pass
// produces line-granular positions (no column) with check "postpass" or
// "memmodel".
type Diagnostic = diag.Diagnostic

// pdiag builds a fatal post-pass diagnostic for the unit.
func pdiag(u *asm.Unit, line int, format string, args ...any) Diagnostic {
	return Diagnostic{
		Check:    "postpass",
		Severity: diag.Error,
		Pos:      diag.Pos{File: u.File, Line: line},
		Msg:      fmt.Sprintf(format, args...),
	}
}

// Result reports what the post-pass did.
type Result struct {
	RelocatedBlocks int          // basic blocks moved back into spawn regions
	InsertedJumps   int          // fall-through protection jumps added
	Diagnostics     []Diagnostic // non-fatal notes and memory-model warnings
}

// Run verifies and fixes a unit in place. It returns an error for
// violations that cannot be repaired (illegal instructions in parallel code,
// unbalanced spawn/join, blocks that cannot be extracted). Non-fatal
// findings — relocation notes and memory-model warnings — are collected in
// Result.Diagnostics.
func Run(u *asm.Unit) (*Result, error) {
	res := &Result{}
	if err := relocateMisplacedBlocks(u, res); err != nil {
		return res, err
	}
	if err := verify(u); err != nil {
		return res, err
	}
	res.Diagnostics = append(res.Diagnostics, VerifyMemoryModel(u)...)
	return res, nil
}

// region is a spawn..join window in item coordinates.
type region struct {
	spawn, join int // item indices
}

func findRegions(u *asm.Unit) ([]region, error) {
	var regions []region
	open := -1
	for i, it := range u.Text {
		if it.Kind != asm.ItemInstr {
			continue
		}
		switch it.Instr.Op {
		case isa.OpSpawn:
			if open >= 0 {
				return nil, pdiag(u, it.Line, "nested spawn (previous spawn not joined)")
			}
			open = i
		case isa.OpJoin:
			if open < 0 {
				return nil, pdiag(u, it.Line, "join without matching spawn")
			}
			regions = append(regions, region{spawn: open, join: i})
			open = -1
		}
	}
	if open >= 0 {
		return nil, pdiag(u, u.Text[open].Line, "spawn without matching join")
	}
	return regions, nil
}

func labelPositions(u *asm.Unit) map[string]int {
	m := make(map[string]int)
	for i, it := range u.Text {
		if it.Kind == asm.ItemLabel {
			m[it.Label] = i
		}
	}
	return m
}

// relocateMisplacedBlocks implements the Fig. 9 fix. It iterates to a fixed
// point because a relocated block may itself branch to another misplaced
// block.
func relocateMisplacedBlocks(u *asm.Unit, res *Result) error {
	for iter := 0; ; iter++ {
		if iter > 4*len(u.Text)+16 {
			return pdiag(u, 0, "block relocation did not converge")
		}
		moved, err := relocateOne(u, res)
		if err != nil {
			return err
		}
		if !moved {
			return nil
		}
	}
}

func relocateOne(u *asm.Unit, res *Result) (bool, error) {
	regions, err := findRegions(u)
	if err != nil {
		return false, err
	}
	labels := labelPositions(u)
	for _, r := range regions {
		for i := r.spawn + 1; i < r.join; i++ {
			it := u.Text[i]
			if it.Kind != asm.ItemInstr || it.Instr.Sym == "" || !it.Instr.Op.IsBranch() {
				continue
			}
			pos, ok := labels[it.Instr.Sym]
			if !ok {
				return false, pdiag(u, it.Line, "undefined label %q", it.Instr.Sym)
			}
			if pos > r.spawn && pos < r.join {
				continue // already inside the broadcast window
			}
			if pos < r.spawn {
				return false, pdiag(u, it.Line, "spawn block branches to %q before the spawn instruction; cannot relocate backwards-shared code", it.Instr.Sym)
			}
			if err := moveBlockIntoRegion(u, r, pos, res); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// moveBlockIntoRegion extracts the basic-block chain starting at item index
// pos (a label) and reinserts it immediately before the region's join,
// protecting fall-through into the join with a fresh jump when needed.
func moveBlockIntoRegion(u *asm.Unit, r region, pos int, res *Result) error {
	end := pos
	found := false
	for end < len(u.Text) {
		it := u.Text[end]
		if it.Kind == asm.ItemInstr {
			op := it.Instr.Op
			if op == isa.OpSpawn || op == isa.OpJoin {
				return pdiag(u, it.Line, "misplaced spawn-block code runs into another spawn region")
			}
			if op == isa.OpJ || op == isa.OpJr || op == isa.OpJalr {
				end++
				found = true
				break
			}
		}
		end++
	}
	if !found {
		return pdiag(u, u.Text[pos].Line, "misplaced spawn-block code falls off the end of the unit")
	}
	block := make([]asm.TextItem, end-pos)
	copy(block, u.Text[pos:end])

	// Remove the block, then compute the insertion point (join shifts left
	// when the block preceded it — it cannot, since pos > join, but keep the
	// general form).
	rest := append(append([]asm.TextItem{}, u.Text[:pos]...), u.Text[end:]...)
	join := r.join
	if pos < join {
		join -= len(block)
	}

	// Fall-through protection: if the last instruction before the join can
	// fall through, route it around the inserted block via a fresh label at
	// the join (Fig. 9b's "j BB_join").
	var insert []asm.TextItem
	last := -1
	for i := join - 1; i > r.spawn; i-- {
		if rest[i].Kind == asm.ItemInstr {
			last = i
			break
		}
	}
	needJump := true
	if last >= 0 {
		op := rest[last].Instr.Op
		if op == isa.OpJ || op == isa.OpJr || op == isa.OpJalr {
			needJump = false
		}
	}
	if needJump {
		joinLabel := fmt.Sprintf("__bbjoin_%d", res.RelocatedBlocks)
		insert = append(insert, asm.TextItem{
			Kind:  asm.ItemInstr,
			Instr: isa.Instr{Op: isa.OpJ, Sym: joinLabel, Target: -1, Line: rest[join].Line},
			Reloc: asm.RelBranch,
		})
		insert = append(insert, block...)
		insert = append(insert, asm.TextItem{Kind: asm.ItemLabel, Label: joinLabel, Line: rest[join].Line})
		res.InsertedJumps++
	} else {
		insert = append(insert, block...)
	}

	u.Text = append(append(append([]asm.TextItem{}, rest[:join]...), insert...), rest[join:]...)
	res.RelocatedBlocks++
	res.Diagnostics = append(res.Diagnostics, Diagnostic{
		Check:    "postpass",
		Severity: diag.Note,
		Pos:      diag.Pos{File: u.File, Line: u.Text[join].Line},
		Msg:      fmt.Sprintf("relocated basic block %q into spawn region", blockLabel(block)),
	})
	return nil
}

func blockLabel(block []asm.TextItem) string {
	for _, it := range block {
		if it.Kind == asm.ItemLabel {
			return it.Label
		}
	}
	return "?"
}

// verify enforces the XMT semantic rules on the final layout:
//
//   - every branch issued inside a spawn region targets the same region
//     (TCUs can only fetch broadcast instructions);
//   - parallel code contains no function calls or returns (no parallel
//     stack in the current release, paper §IV-D/E), no spawn, and no
//     master-only instructions;
//   - parallel code never touches $sp or $fp;
//   - ps increments use a register (checked dynamically to be 0/1) and a
//     legal global register.
func verify(u *asm.Unit) error {
	regions, err := findRegions(u)
	if err != nil {
		return err
	}
	labels := labelPositions(u)
	inRegion := func(i int) *region {
		for k := range regions {
			if i > regions[k].spawn && i < regions[k].join {
				return &regions[k]
			}
		}
		return nil
	}
	for i, it := range u.Text {
		if it.Kind != asm.ItemInstr {
			continue
		}
		in := it.Instr
		r := inRegion(i)
		if r == nil {
			continue
		}
		meta := in.Op.Meta()
		if meta.MasterOnly {
			return pdiag(u, it.Line, "%s is illegal in parallel code", in.Op)
		}
		switch in.Op {
		case isa.OpJal, isa.OpJalr:
			return pdiag(u, it.Line, "function calls in parallel code require the parallel cactus stack (not in this release)")
		case isa.OpJr:
			return pdiag(u, it.Line, "return (jr) inside a spawn region")
		}
		if usesReg(in, isa.RegSP) || usesReg(in, isa.RegFP) {
			return pdiag(u, it.Line, "parallel code must not use the stack ($sp/$fp): no parallel stack allocation in this release")
		}
		if in.Sym != "" && in.Op.IsBranch() {
			pos, ok := labels[in.Sym]
			if !ok {
				return pdiag(u, it.Line, "undefined label %q", in.Sym)
			}
			if pos <= r.spawn || pos >= r.join {
				return pdiag(u, it.Line, "branch to %q escapes the spawn region: the target was not broadcast", in.Sym)
			}
		}
	}
	return nil
}

func usesReg(in isa.Instr, r isa.Reg) bool {
	meta := in.Op.Meta()
	switch meta.Fmt {
	case isa.FmtRRR, isa.FmtBranch2:
		return in.Rd == r || in.Rs == r || in.Rt == r
	case isa.FmtRRI, isa.FmtRR, isa.FmtMem:
		return in.Rd == r || in.Rs == r
	case isa.FmtRI, isa.FmtR, isa.FmtPS:
		return in.Rd == r
	case isa.FmtBranch1:
		return in.Rs == r
	case isa.FmtSpawn:
		return in.Rs == r || in.Rt == r
	}
	return false
}

// VerifyMemoryModel checks the emitted code against the XMT memory-model
// discipline the compiler is supposed to enforce (paper §IV-A):
//
//   - every prefix-sum instruction (ps, psm) is preceded by a fence on its
//     fall-through path, so all of the issuing context's pending memory
//     operations complete before the prefix-sum becomes visible;
//   - no load or store sits between the fence and its prefix-sum — a
//     memory operation placed (or hoisted by an optimizer) into that
//     window would be exactly the reordering the fence forbids.
//
// The scan is per fall-through path: it walks backward from each
// prefix-sum and stops at the first fence, memory operation, label,
// branch or spawn boundary. Findings are warnings with check "memmodel";
// they do not fail the post-pass, because handwritten assembly may fence
// by other means (e.g. a dedicated synchronization thread).
func VerifyMemoryModel(u *asm.Unit) []Diagnostic {
	var ds []Diagnostic
	warn := func(line int, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Check:    "memmodel",
			Severity: diag.Warning,
			Pos:      diag.Pos{File: u.File, Line: line},
			Msg:      fmt.Sprintf(format, args...),
		})
	}
	for i, it := range u.Text {
		if it.Kind != asm.ItemInstr {
			continue
		}
		op := it.Instr.Op
		if op != isa.OpPs && op != isa.OpPsm {
			continue
		}
		if op == isa.OpPs && nextInstrIsChkid(u, i) {
			// The thread-id grab at the head of a spawn region (ps into
			// the id register, validated by chkid). The TCU context is
			// fresh at that point — no memory operation of this virtual
			// thread can be pending — so the fence rule does not apply.
			continue
		}
	scan:
		for k := i - 1; ; k-- {
			if k < 0 {
				warn(it.Line, "%s without a preceding fence (fence-before-prefix-sum rule)", op)
				break scan
			}
			prev := u.Text[k]
			if prev.Kind == asm.ItemLabel {
				warn(it.Line, "%s at the head of a basic block has no fence on this path (fence-before-prefix-sum rule)", op)
				break scan
			}
			pop := prev.Instr.Op
			switch {
			case pop == isa.OpFence:
				break scan // properly fenced
			case pop == isa.OpSpawn || pop == isa.OpJoin:
				warn(it.Line, "%s without a preceding fence in this spawn region (fence-before-prefix-sum rule)", op)
				break scan
			case pop.Meta().Mem:
				warn(it.Line, "%s between a fence and its %s: the memory operation may still be pending at the prefix-sum (illegally hoisted across the fence?)", pop, op)
				break scan
			case pop.IsBranch() || pop == isa.OpJ || pop == isa.OpJr || pop == isa.OpJalr || pop == isa.OpJal:
				warn(it.Line, "%s without a preceding fence on the fall-through path (fence-before-prefix-sum rule)", op)
				break scan
			}
		}
	}
	return ds
}

// nextInstrIsChkid reports whether the next instruction after item i is a
// chkid — the signature of the thread-id grab sequence at a spawn-region
// head.
func nextInstrIsChkid(u *asm.Unit, i int) bool {
	for k := i + 1; k < len(u.Text); k++ {
		if u.Text[k].Kind == asm.ItemInstr {
			return u.Text[k].Instr.Op == isa.OpChkid
		}
	}
	return false
}
