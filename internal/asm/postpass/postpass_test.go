package postpass

import (
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
)

func parse(t *testing.T, src string) *asm.Unit {
	t.Helper()
	u, err := asm.Parse("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

// fig9a is the paper's Fig. 9a: basic block BB2 logically belongs to the
// spawn-join section but is placed after the return instruction.
const fig9a = `
        .text
main:
        spawn $t0, $t1
BB1:    addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        bne   $t2, $zero, BB2
        join
        jr    $ra
BB2:    addiu $t3, $zero, 1
        j     BB1
`

func TestPostpassRelocatesBlocks(t *testing.T) {
	u := parse(t, fig9a)
	res, err := Run(u)
	if err != nil {
		t.Fatalf("postpass: %v", err)
	}
	if res.RelocatedBlocks != 1 {
		t.Fatalf("relocated %d blocks, want 1", res.RelocatedBlocks)
	}
	if res.InsertedJumps != 1 {
		t.Fatalf("inserted %d jumps, want 1 (fall-through protection)", res.InsertedJumps)
	}
	// The fixed unit must now assemble with BB2 inside the region.
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatalf("assemble after fix: %v\n%s", err, asm.Print(u))
	}
	if len(p.Spawns) != 1 {
		t.Fatal("region lost")
	}
	bb2 := int(p.Syms["BB2"].Value)
	r := p.Spawns[0]
	if bb2 <= r.Spawn || bb2 >= r.Join {
		t.Fatalf("BB2 at %d still outside region (%d, %d)\n%s", bb2, r.Spawn, r.Join, asm.Print(u))
	}
	// Verify again: running the post-pass on fixed code is a no-op.
	res2, err := Run(u)
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if res2.RelocatedBlocks != 0 {
		t.Fatal("post-pass is not idempotent")
	}
}

// TestRelocationChain: a misplaced block branching to another misplaced
// block; both must come back.
func TestRelocationChain(t *testing.T) {
	u := parse(t, `
        .text
main:
        spawn $t0, $t1
BB1:    addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        bne   $t2, $zero, BB2
        join
        jr    $ra
BB2:    addiu $t3, $zero, 1
        beq   $t3, $zero, BB3
        j     BB1
BB3:    addiu $t4, $zero, 2
        j     BB1
`)
	res, err := Run(u)
	if err != nil {
		t.Fatalf("postpass: %v", err)
	}
	if res.RelocatedBlocks != 2 {
		t.Fatalf("relocated %d, want 2", res.RelocatedBlocks)
	}
	if _, err := asm.Assemble(u); err != nil {
		t.Fatalf("assemble: %v", err)
	}
}

func TestVerifyRejectsIllegalParallelCode(t *testing.T) {
	cases := map[string]string{
		"call in parallel code": `
        .text
main:   spawn $t0, $t1
L:      chkid $t2
        jal helper
        j L
        join
helper: jr $ra
`,
		"return in parallel code": `
        .text
main:   spawn $t0, $t1
L:      chkid $t2
        jr $ra
        join
`,
		"stack use in parallel code": `
        .text
main:   spawn $t0, $t1
L:      chkid $t2
        lw $t3, 0($sp)
        j L
        join
`,
		"spawn in parallel code": `
        .text
main:   spawn $t0, $t1
        spawn $t2, $t3
        join
        join
`,
		"branch before spawn": `
        .text
main:   nop
back:   nop
        spawn $t0, $t1
L:      chkid $t2
        beq $t2, $zero, back
        j L
        join
`,
		"undefined label in region": `
        .text
main:   spawn $t0, $t1
L:      chkid $t2
        beq $t2, $zero, nowhere
        j L
        join
`,
	}
	for name, src := range cases {
		u := parse(t, src)
		if _, err := Run(u); err == nil {
			t.Errorf("%s: expected post-pass rejection", name)
		}
	}
}

func TestMisplacedBlockFallsOffEnd(t *testing.T) {
	u := parse(t, `
        .text
main:   spawn $t0, $t1
L:      chkid $t2
        bne $t2, $zero, BB2
        join
        jr $ra
BB2:    addiu $t3, $zero, 1
`)
	_, err := Run(u)
	if err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Fatalf("want falls-off error, got %v", err)
	}
}

func TestVerifyAcceptsWellFormedRegion(t *testing.T) {
	u := parse(t, `
        .text
main:   spawn $t0, $t1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 2
        sw.nb $t2, 0($t2)
        j     L
        join
        sys 0
`)
	res, err := Run(u)
	if err != nil {
		t.Fatalf("well-formed region rejected: %v", err)
	}
	if res.RelocatedBlocks != 0 {
		t.Fatal("nothing should move")
	}
}

func TestUsesRegCoverage(t *testing.T) {
	// usesReg must see $sp in every operand position.
	ins := []isa.Instr{
		{Op: isa.OpAdd, Rd: isa.RegSP, Rs: 1, Rt: 2},
		{Op: isa.OpAdd, Rd: 1, Rs: isa.RegSP, Rt: 2},
		{Op: isa.OpAdd, Rd: 1, Rs: 2, Rt: isa.RegSP},
		{Op: isa.OpLw, Rd: 1, Rs: isa.RegSP},
		{Op: isa.OpBlez, Rs: isa.RegSP},
		{Op: isa.OpSpawn, Rs: isa.RegSP, Rt: 1},
	}
	for _, in := range ins {
		if !usesReg(in, isa.RegSP) {
			t.Errorf("usesReg missed $sp in %v", in)
		}
	}
	if usesReg(isa.Instr{Op: isa.OpNop}, isa.RegSP) {
		t.Error("nop does not use $sp")
	}
}
