package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"xmtgo/internal/isa"
)

// Print renders a Unit back to assembly text. Print and Parse round-trip:
// Parse(Print(u)) yields a unit with the same instruction stream, which the
// assembler property tests rely on.
func Print(u *Unit) string {
	var b strings.Builder
	if len(u.Data) > 0 {
		b.WriteString("\t.data\n")
		for _, d := range u.Data {
			if d.Label != "" {
				fmt.Fprintf(&b, "%s:", d.Label)
			}
			switch d.Kind {
			case DataAlign:
				if d.Size > 0 {
					fmt.Fprintf(&b, "\t.align %d", d.Size)
				}
			case DataWord, DataFloat:
				dir := ".word"
				if d.Kind == DataFloat {
					dir = ".float"
				}
				vals := make([]string, len(d.Values))
				for i, v := range d.Values {
					if v.Sym != "" {
						vals[i] = v.Sym
					} else if d.Kind == DataFloat {
						vals[i] = strconv.FormatFloat(float64(math.Float32frombits(uint32(v.Val))), 'g', -1, 32)
					} else {
						vals[i] = strconv.FormatInt(int64(v.Val), 10)
					}
				}
				fmt.Fprintf(&b, "\t%s %s", dir, strings.Join(vals, ", "))
			case DataByte:
				vals := make([]string, len(d.Values))
				for i, v := range d.Values {
					vals[i] = strconv.FormatInt(int64(v.Val), 10)
				}
				fmt.Fprintf(&b, "\t.byte %s", strings.Join(vals, ", "))
			case DataSpace:
				fmt.Fprintf(&b, "\t.space %d", d.Size)
			case DataAsciiz:
				fmt.Fprintf(&b, "\t.asciiz %s", strconv.Quote(d.Str))
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("\t.text\n")
	for g := range u.Globals {
		fmt.Fprintf(&b, "\t.global %s\n", g)
	}
	for _, it := range u.Text {
		switch it.Kind {
		case ItemLabel:
			fmt.Fprintf(&b, "%s:\n", it.Label)
		case ItemInstr:
			b.WriteByte('\t')
			b.WriteString(FormatInstr(it.Instr, it.Reloc))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatInstr renders one instruction with its relocation in parseable
// assembler syntax.
func FormatInstr(in isa.Instr, reloc RelocKind) string {
	switch reloc {
	case RelHi16, RelLo16:
		part := "%hi"
		if reloc == RelLo16 {
			part = "%lo"
		}
		if in.Op == isa.OpLui {
			return fmt.Sprintf("lui %s, %s(%s)", isa.RegName(in.Rd), part, in.Sym)
		}
		return fmt.Sprintf("%s %s, %s, %s(%s)", in.Op, isa.RegName(in.Rd), isa.RegName(in.Rs), part, in.Sym)
	}
	return in.String()
}
