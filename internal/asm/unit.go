// Package asm implements the assembler and linker of the XMT toolchain: it
// parses XMT assembly units (the output of the compiler's core pass, or
// handwritten files), lays out the data segment, links memory-map files that
// provide initial values for global variables (the only input mechanism of
// the OS-less XMT toolchain), and produces an executable Program for the
// simulator.
//
// The in-memory Unit representation keeps labels and instructions as a flat
// item sequence so that the post-pass (package postpass) can verify and fix
// basic-block layout before final assembly, exactly like the SableCC-based
// post-pass the paper describes.
package asm

import (
	"fmt"

	"xmtgo/internal/isa"
)

// ItemKind discriminates the entries of a Unit's text stream.
type ItemKind uint8

const (
	ItemLabel ItemKind = iota
	ItemInstr
)

// RelocKind describes how an instruction operand is patched at link time.
type RelocKind uint8

const (
	RelNone   RelocKind = iota
	RelBranch           // Sym names a text label; resolve to instruction index
	RelHi16             // Imm := upper 16 bits of the symbol's address
	RelLo16             // Imm := lower 16 bits of the symbol's address
	RelAbs              // Imm := full 32-bit address of the symbol (fits; simulator is decoded-form)
)

// TextItem is a label definition or an instruction in a unit's text stream.
type TextItem struct {
	Kind  ItemKind
	Label string // ItemLabel
	Instr isa.Instr
	Reloc RelocKind
	Line  int
}

// DataKind discriminates data-segment directives.
type DataKind uint8

const (
	DataWord   DataKind = iota // .word v, v, ...  (value may be a symbol)
	DataByte                   // .byte v, v, ...
	DataFloat                  // .float v, v, ...
	DataSpace                  // .space n
	DataAsciiz                 // .asciiz "..."
	DataAlign                  // .align n (power-of-two exponent)
)

// DataValue is one initializer of a .word directive: either a constant or
// the address of a symbol.
type DataValue struct {
	Sym string
	Val int32
}

// DataItem is one entry of a unit's data stream.
type DataItem struct {
	Label  string // optional label defined at this item
	Kind   DataKind
	Values []DataValue
	Str    string // DataAsciiz
	Size   int32  // DataSpace / DataAlign argument
	Line   int
}

// Unit is a parsed assembly translation unit.
type Unit struct {
	File    string
	Text    []TextItem
	Data    []DataItem
	Globals map[string]bool // symbols declared .global
}

// Error is an assembler diagnostic carrying a file position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.File, e.Msg)
}

func errf(file string, line int, format string, args ...any) error {
	return &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// AppendInstr appends an instruction item to the unit's text stream.
func (u *Unit) AppendInstr(in isa.Instr, reloc RelocKind, line int) {
	u.Text = append(u.Text, TextItem{Kind: ItemInstr, Instr: in, Reloc: reloc, Line: line})
}

// AppendLabel appends a label definition to the unit's text stream.
func (u *Unit) AppendLabel(name string, line int) {
	u.Text = append(u.Text, TextItem{Kind: ItemLabel, Label: name, Line: line})
}

// Instrs returns only the instruction items, in order.
func (u *Unit) Instrs() []isa.Instr {
	out := make([]isa.Instr, 0, len(u.Text))
	for _, it := range u.Text {
		if it.Kind == ItemInstr {
			out = append(out, it.Instr)
		}
	}
	return out
}

// Labels returns a map from label name to the index (within the instruction
// stream, ignoring label items) it refers to.
func (u *Unit) Labels() (map[string]int, error) {
	m := make(map[string]int)
	idx := 0
	for _, it := range u.Text {
		switch it.Kind {
		case ItemLabel:
			if _, dup := m[it.Label]; dup {
				return nil, errf(u.File, it.Line, "duplicate label %q", it.Label)
			}
			m[it.Label] = idx
		case ItemInstr:
			idx++
		}
	}
	return m, nil
}
