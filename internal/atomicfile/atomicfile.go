// Package atomicfile writes files atomically and durably: content goes to a
// temporary file in the destination directory, is fsync'd, renamed over the
// destination, and the parent directory is fsync'd so the rename itself
// survives a crash. Every checkpoint, journal snapshot and result artifact
// in the toolchain goes through this path (docs/ROBUSTNESS.md): a `kill -9`
// at any instant leaves either the old file or the new one, never a torn
// mix, and never a rename that a power loss can undo.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFunc writes path atomically from whatever fill writes: the content
// lands in a same-directory temp file first, is flushed to stable storage,
// and replaces path in one rename, followed by a directory sync. On any
// error the temp file is removed and the previous content of path is left
// untouched.
func WriteFunc(path string, perm os.FileMode, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %s: %w", path, err)
	}
	if err := fill(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	// Sync before rename: otherwise the rename can be durable while the
	// content is not, leaving an empty or partial file after a power loss.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: %w", err)
	}
	return SyncDir(dir)
}

// WriteFile atomically replaces path with data (see WriteFunc).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFunc(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry in it
// is durable. Filesystems that reject directory fsync (some network mounts)
// are tolerated: the rename is still atomic there, just not crash-durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncErr(err) {
		return fmt.Errorf("atomicfile: sync %s: %w", dir, err)
	}
	return nil
}

// ignorableSyncErr reports errors that mean "this filesystem cannot sync a
// directory" rather than "the sync failed".
func ignorableSyncErr(err error) bool {
	pe, ok := err.(*os.PathError)
	if !ok {
		return false
	}
	msg := pe.Err.Error()
	return msg == "invalid argument" || msg == "operation not supported" ||
		msg == "not supported" || msg == "bad file descriptor"
}
