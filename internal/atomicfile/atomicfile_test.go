package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// No temp litter may remain after successful writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the target", len(entries))
	}
}

func TestWriteFuncFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFile(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFunc(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "good" {
		t.Fatalf("old content lost: %q, %v", data, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("failed write left %d entries behind", len(entries))
	}
}

func TestIgnorableSyncErr(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&os.PathError{Op: "sync", Path: "/nfs", Err: errors.New("invalid argument")}, true},
		{&os.PathError{Op: "sync", Path: "/nfs", Err: errors.New("operation not supported")}, true},
		{&os.PathError{Op: "sync", Path: "/nfs", Err: errors.New("not supported")}, true},
		{&os.PathError{Op: "sync", Path: "/nfs", Err: errors.New("bad file descriptor")}, true},
		{&os.PathError{Op: "sync", Path: "/disk", Err: errors.New("input/output error")}, false},
		{errors.New("invalid argument"), false}, // not a PathError: never ignorable
	} {
		if got := ignorableSyncErr(tc.err); got != tc.want {
			t.Errorf("ignorableSyncErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory must error")
	}
}

func TestWriteFileCreatesFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh")
	if err := WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", st.Mode().Perm())
	}
}
