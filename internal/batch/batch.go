// Package batch implements the resilient batch runner behind cmd/xmtbatch:
// it drives a list of simulation jobs to completion with per-job cycle
// budgets, periodic checkpoints, and bounded retry-with-backoff that resumes
// each retry from the job's last checkpoint — so a timed-out attempt loses
// at most one checkpoint interval of progress, and the growing budget
// eventually covers any finite job (docs/ROBUSTNESS.md).
//
// The paper motivates exactly this shape of tooling (§III-E): long
// simulation campaigns are run as batches, and checkpoints exist to
// load-balance and restart them without redoing completed work.
package batch

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"xmtgo/internal/asm"
	"xmtgo/internal/atomicfile"
	"xmtgo/internal/config"
	"xmtgo/internal/obs"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/metrics"
)

// ErrInterrupted reports a batch stopped by Interrupt.Trigger (typically a
// SIGINT/SIGTERM handler): the current job checkpointed at its next
// quiescent point and no further work was started. Jobs already completed
// keep their normal results.
var ErrInterrupted = errors.New("batch: interrupted")

// Interrupt coordinates an external stop request with a running batch.
// Trigger is safe to call from any goroutine (including signal handlers):
// the currently running simulation is asked to checkpoint at its next
// quiescent point, the checkpoint is persisted as usual, and Run returns
// early with ErrInterrupted on the interrupted job.
type Interrupt struct {
	flag atomic.Bool

	mu  sync.Mutex
	sys *cycle.System
}

// Trigger requests the stop. Idempotent.
func (i *Interrupt) Trigger() {
	i.flag.Store(true)
	i.mu.Lock()
	if i.sys != nil {
		i.sys.RequestCheckpoint()
	}
	i.mu.Unlock()
}

// Triggered reports whether a stop has been requested.
func (i *Interrupt) Triggered() bool { return i.flag.Load() }

// attach points the interrupt at the segment currently simulating, so a
// trigger that raced with system construction is still delivered.
func (i *Interrupt) attach(sys *cycle.System) {
	i.mu.Lock()
	i.sys = sys
	if i.flag.Load() && sys != nil {
		sys.RequestCheckpoint()
	}
	i.mu.Unlock()
}

// Job is one simulation to drive to completion.
type Job struct {
	Name string
	Prog *asm.Program
	// Sets are per-job "key=value" config overrides applied on top of
	// Options.Config.
	Sets []string
}

// Options configures a batch run.
type Options struct {
	// Config is the base machine configuration for every job.
	Config config.Config
	// TimeoutCycles is the first attempt's total-cycle budget per job
	// (0 = unlimited, which also disables retries).
	TimeoutCycles int64
	// CheckpointEvery periodically checkpoints each job at quiescent points
	// so retries resume instead of restarting (0 = only program-requested
	// checkpoints persist progress).
	CheckpointEvery int64
	// Retries bounds how many times a failed or timed-out attempt is
	// retried (total attempts = Retries + 1).
	Retries int
	// Backoff multiplies the cycle budget between attempts (default 2).
	Backoff float64
	// OutDir receives per-job checkpoint files; empty disables persistence
	// (retries then restart from the beginning).
	OutDir string
	// Log, when set, receives per-attempt progress as structured JSON log
	// lines (one object per line; see internal/obs). Ignored when Logger is
	// set.
	Log io.Writer
	// Logger, when set, receives the structured progress records instead of
	// a default JSON logger writing to Log.
	Logger *slog.Logger
	// Monitor, when set, receives live telemetry: per-job batch progress on
	// /status and interval samples from the currently running job.
	Monitor *metrics.Server
	// SampleCycles is the interval-sampler period used when Monitor is set
	// (0 = a default cadence).
	SampleCycles int64
	// Interrupt, when set, lets a signal handler stop the batch cleanly:
	// the running job checkpoints and Run returns ErrInterrupted for it.
	Interrupt *Interrupt
}

// Result is the outcome of one job.
type Result struct {
	Name     string
	Attempts int    // attempts consumed (1 = first try succeeded)
	Resumes  int    // attempts that resumed from a checkpoint
	Cycles   int64  // total simulated cycles of the final attempt
	Instrs   uint64 // instructions retired by the final attempt's suffix
	// Output is the program output of the final attempt. A resumed attempt
	// replays only the suffix after its checkpoint, so output emitted
	// before the checkpoint appears in the attempt that produced it, not
	// here; callers that need the full stream should concatenate attempt
	// logs.
	Output string
	Err    error
}

// Run drives every job to completion (or to its retry bound) sequentially
// and returns one Result per job, in order.
func Run(jobs []Job, opts Options) []Result {
	if opts.Backoff <= 1 {
		opts.Backoff = 2
	}
	if opts.Logger == nil {
		// Default structured logger: JSON lines to Log (a nil Log discards).
		opts.Logger = obs.NewLogger(obs.HandlerOptions{Writer: opts.Log, Level: slog.LevelDebug})
	}
	prog := &progress{srv: opts.Monitor}
	prog.st.JobsTotal = len(jobs)
	prog.publish()
	results := make([]Result, 0, len(jobs))
	for _, j := range jobs {
		if opts.Interrupt != nil && opts.Interrupt.Triggered() {
			break // remaining jobs are simply not started
		}
		r := runJob(j, opts, prog)
		results = append(results, r)
		if r.Err != nil {
			prog.st.JobsFailed++
		} else {
			prog.st.JobsDone++
		}
		prog.st.Resumes += r.Resumes
		prog.st.Current, prog.st.Attempt, prog.st.BudgetCycles = "", 0, 0
		prog.publish()
		if errors.Is(r.Err, ErrInterrupted) {
			break
		}
	}
	return results
}

// progress tracks the campaign state published to the live metrics server.
type progress struct {
	srv *metrics.Server
	st  metrics.BatchStatus
}

func (p *progress) publish() {
	if p.srv != nil {
		p.srv.PublishBatch(p.st)
	}
}

func runJob(job Job, opts Options, prog *progress) Result {
	r := Result{Name: job.Name}
	jlog := opts.Logger.With("job", job.Name)
	cfg := opts.Config
	for _, kv := range job.Sets {
		if err := cfg.Set(kv); err != nil {
			r.Err = fmt.Errorf("job %s: %v", job.Name, err)
			return r
		}
	}

	ckptPath := ""
	if opts.OutDir != "" {
		ckptPath = filepath.Join(opts.OutDir, job.Name+".ckpt")
	}
	budget := opts.TimeoutCycles
	for attempt := 0; ; attempt++ {
		r.Attempts = attempt + 1
		prog.st.Current, prog.st.Attempt, prog.st.BudgetCycles = job.Name, r.Attempts, budget
		prog.publish()
		res, out, resumed, err := runAttempt(job, cfg, ckptPath, budget, opts, jlog)
		if resumed {
			r.Resumes++
		}
		if res != nil {
			r.Cycles = res.Cycles
			r.Instrs = res.Instrs
		}
		r.Output = out
		switch {
		case errors.Is(err, ErrInterrupted):
			r.Err = err
			jlog.Info("interrupted", "op", "interrupt", "attempt", r.Attempts, "cycle", r.Cycles, "checkpoint_saved", ckptPath != "")
			return r
		case err == nil && res != nil && res.Halted:
			jlog.Info("done", "op", "done", "attempt", r.Attempts, "cycles", res.Cycles, "instrs", res.Instrs, "resumes", r.Resumes)
			return r
		case err == nil && res != nil && res.TimedOut:
			err = fmt.Errorf("job %s: cycle budget %d exhausted", job.Name, budget)
		case err == nil:
			err = fmt.Errorf("job %s: stopped without halting", job.Name)
		}
		if attempt >= opts.Retries {
			r.Err = err
			jlog.Error("giving up", "op", "fail", "attempt", r.Attempts, "err", err.Error())
			return r
		}
		if budget > 0 {
			budget = int64(float64(budget) * opts.Backoff)
		}
		jlog.Warn("retrying", "op", "retry", "attempt", attempt+1, "err", err.Error(), "budget", budget)
	}
}

// runAttempt runs one attempt: a chain of simulation segments separated by
// checkpoint stops, resuming from the job's persisted checkpoint if one
// exists. budget is the attempt's absolute total-cycle ceiling (0 =
// unlimited).
func runAttempt(job Job, cfg config.Config, ckptPath string, budget int64, opts Options, jlog *slog.Logger) (*cycle.Result, string, bool, error) {
	var out bytes.Buffer
	st, err := loadCheckpoint(ckptPath)
	if err != nil {
		return nil, "", false, fmt.Errorf("job %s: %v", job.Name, err)
	}
	resumed := st != nil // resumed from a previous attempt's persisted state
	for {
		sys, err := cycle.New(job.Prog, cfg, &out)
		if err != nil {
			return nil, out.String(), resumed, fmt.Errorf("job %s: %v", job.Name, err)
		}
		if st != nil {
			if err := sys.RestoreState(st); err != nil {
				return nil, out.String(), resumed, fmt.Errorf("job %s: %v", job.Name, err)
			}
		}
		sys.CheckpointEvery(opts.CheckpointEvery)
		if opts.Interrupt != nil {
			opts.Interrupt.attach(sys)
		}

		var smp *metrics.Sampler
		if opts.Monitor != nil {
			interval := opts.SampleCycles
			if interval <= 0 {
				interval = 10000
			}
			if smp = metrics.Attach(sys, interval); smp != nil {
				smp.SetServer(opts.Monitor)
			}
		}

		// Run accepts this segment's local cycle budget; the checkpoint
		// offset already consumed part of the absolute budget.
		segBudget := int64(0)
		if budget > 0 {
			segBudget = budget - checkpointOffset(st)
			if segBudget <= 0 {
				res := &cycle.Result{Cycles: checkpointOffset(st), TimedOut: true}
				return res, out.String(), resumed, nil
			}
		}
		res, err := sys.Run(segBudget)
		if smp != nil && res != nil {
			smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
		}
		if err != nil {
			return res, out.String(), resumed, fmt.Errorf("job %s: %v", job.Name, err)
		}
		if res.Checkpoint {
			st = sys.Capture()
			if ckptPath != "" {
				if err := saveCheckpoint(ckptPath, st); err != nil {
					return res, out.String(), resumed, fmt.Errorf("job %s: %v", job.Name, err)
				}
			}
			jlog.Debug("checkpoint", "op", "checkpoint", "cycle", res.Cycles, "persisted", ckptPath != "")
			if opts.Interrupt != nil && opts.Interrupt.Triggered() {
				return res, out.String(), resumed, ErrInterrupted
			}
			continue
		}
		return res, out.String(), resumed, nil
	}
}

func checkpointOffset(st *checkpoint.State) int64 {
	if st == nil {
		return 0
	}
	return st.CycleOffset
}

func loadCheckpoint(path string) (*checkpoint.State, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return checkpoint.Load(f)
}

// saveCheckpoint writes atomically and durably (fsync'd temp + rename +
// directory sync, internal/atomicfile) so a crash — or a power loss — at
// any instant never corrupts or loses the last good checkpoint.
func saveCheckpoint(path string, st *checkpoint.State) error {
	return atomicfile.WriteFunc(path, 0o644, func(w io.Writer) error {
		return checkpoint.Save(w, st)
	})
}
