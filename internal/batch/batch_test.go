package batch

import (
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/metrics"
)

// longSerialAsm runs a serial accumulation loop long enough to cross
// several checkpoint intervals, then prints the sum.
const longSerialAsm = `
        .text
main:
        li    $t0, 2000
        li    $t1, 0
L:      addu  $t1, $t1, $t0
        addiu $t0, $t0, -1
        bgtz  $t0, L
        move  $v0, $t1
        sys   1
        sys   0
`

const longSerialSum = "2001000" // sum 1..2000

func mustProgram(t *testing.T, src string) *asm.Program {
	t.Helper()
	u, err := asm.Parse("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// TestBatchCompletesFirstTry runs a healthy job with a generous budget.
func TestBatchCompletesFirstTry(t *testing.T) {
	res := Run([]Job{{Name: "ok", Prog: mustProgram(t, longSerialAsm)}}, Options{
		Config:        config.FPGA64(),
		TimeoutCycles: 10_000_000,
		Retries:       0,
		OutDir:        t.TempDir(),
	})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("job failed: %+v", res)
	}
	if res[0].Attempts != 1 || res[0].Resumes != 0 {
		t.Fatalf("attempts=%d resumes=%d, want 1/0", res[0].Attempts, res[0].Resumes)
	}
	if res[0].Output != longSerialSum {
		t.Fatalf("output %q, want %s", res[0].Output, longSerialSum)
	}
}

// TestBatchResumesFromCheckpoint gives the first attempt a budget too small
// to finish but large enough to cross checkpoints; the retry must resume
// from the last checkpoint (not restart) and converge under backoff.
func TestBatchResumesFromCheckpoint(t *testing.T) {
	prog := mustProgram(t, longSerialAsm)
	dir := t.TempDir()

	// Measure the uninterrupted cost once so the budgets below stay valid
	// if machine parameters drift.
	full := Run([]Job{{Name: "probe", Prog: prog}}, Options{Config: config.FPGA64(), OutDir: dir})
	if full[0].Err != nil {
		t.Fatalf("probe failed: %v", full[0].Err)
	}
	need := full[0].Cycles

	res := Run([]Job{{Name: "resume", Prog: prog}}, Options{
		Config:          config.FPGA64(),
		TimeoutCycles:   need / 3,
		CheckpointEvery: need / 10,
		Retries:         4,
		Backoff:         2,
		OutDir:          dir,
	})[0]
	if res.Err != nil {
		t.Fatalf("job failed: %v", res.Err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want a timed-out first attempt", res.Attempts)
	}
	if res.Resumes == 0 {
		t.Fatal("no attempt resumed from a checkpoint")
	}
	// The final attempt's output suffix must end with the program's print
	// (the print happens after the last checkpoint or the output is empty —
	// either way the job result reflects a completed run).
	if !strings.HasSuffix(longSerialSum, res.Output) {
		t.Fatalf("final output %q is not a suffix of %q", res.Output, longSerialSum)
	}
	if res.Cycles < need {
		t.Fatalf("final cycles %d < uninterrupted %d: resumed run skipped work", res.Cycles, need)
	}
}

// memWalkAsm walks memory a cache line per iteration, so the master is
// always a few cycles from its next shared-cache access — an injected
// permanent stall of every module wedges it.
const memWalkAsm = `
        .data
A:      .space 8192
        .text
main:
        la    $t0, A
        li    $t1, 0
        li    $t3, 0
L:      lw    $t2, 0($t0)
        addu  $t1, $t1, $t2
        addiu $t0, $t0, 32
        addiu $t3, $t3, 1
        slti  $at, $t3, 200
        bne   $at, $zero, L
        move  $v0, $t1
        sys   1
        sys   0
`

// TestBatchGivesUpAfterRetries bounds the retry loop: a job wedged by a
// permanent injected stall must fail with the watchdog diagnostic after
// exactly Retries+1 attempts, not hang.
func TestBatchGivesUpAfterRetries(t *testing.T) {
	cfg := config.FPGA64()
	cfg.FaultPlan = "cachestall:8x100000000@100-120"
	cfg.WatchdogCycles = 2000
	res := Run([]Job{{Name: "wedge", Prog: mustProgram(t, memWalkAsm)}}, Options{
		Config:        cfg,
		TimeoutCycles: 10_000_000,
		Retries:       2,
		OutDir:        t.TempDir(),
	})[0]
	if res.Err == nil {
		t.Fatal("wedged job reported success")
	}
	if !strings.Contains(res.Err.Error(), "watchdog") {
		t.Fatalf("error %q does not carry the watchdog diagnostic", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (retries+1)", res.Attempts)
	}
}

// TestBatchPerJobOverrides applies job-level config Sets.
func TestBatchPerJobOverrides(t *testing.T) {
	res := Run([]Job{{
		Name: "tiny",
		Prog: mustProgram(t, longSerialAsm),
		Sets: []string{"clusters=2", "cache_modules=2"},
	}}, Options{Config: config.FPGA64(), TimeoutCycles: 10_000_000})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("job failed: %+v", res)
	}
	if res[0].Output != longSerialSum {
		t.Fatalf("output %q, want %s", res[0].Output, longSerialSum)
	}
}

// TestBatchPublishesMonitor runs two jobs with a live metrics server
// attached (not listening; we read the published bundles directly) and
// checks the batch progress block and the per-segment sampler publishes.
func TestBatchPublishesMonitor(t *testing.T) {
	srv := metrics.NewServer()
	prog := mustProgram(t, longSerialAsm)
	res := Run([]Job{
		{Name: "a", Prog: prog},
		{Name: "b", Prog: prog},
	}, Options{
		Config:        config.FPGA64(),
		TimeoutCycles: 10_000_000,
		OutDir:        t.TempDir(),
		Monitor:       srv,
		SampleCycles:  500,
	})
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Name, r.Err)
		}
	}
	p := srv.Latest()
	if p == nil {
		t.Fatal("no bundle published")
	}
	if p.Status.Batch == nil {
		t.Fatalf("no batch block in %+v", p.Status)
	}
	if got := *p.Status.Batch; got.JobsTotal != 2 || got.JobsDone != 2 || got.JobsFailed != 0 {
		t.Fatalf("final batch status = %+v", got)
	}
	// The last published sample comes from job b's finalize at its end
	// cycle, with live counters attached.
	if p.Sample == nil || p.Sample.Cycle == 0 || p.Counters == nil {
		t.Fatalf("bundle missing sample/counters: %+v", p)
	}
}
