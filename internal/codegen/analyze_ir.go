package codegen

import (
	"fmt"

	"xmtgo/internal/diag"
	"xmtgo/internal/ir"
)

// deadLoadNotes reports loads whose result is never used, computed on the
// freshly lowered IR with per-block liveness. Under the relaxed XMT memory
// model a dead load is worse than wasted work: programmers sometimes write
// one to "refresh" a shared location, but the optimizer is entitled to
// delete it (it has no side effects unless volatile), so it observes
// nothing. Emitted as notes under Options.Analyze; liveness must already
// be computed on f.
func deadLoadNotes(file string, f *ir.Func) []diag.Diagnostic {
	var ds []diag.Diagnostic
	seen := make(map[int]bool) // one note per source line
	var buf []ir.VReg
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if (in.Op != ir.Load && in.Op != ir.LoadRO) || in.Volatile || in.Dst == ir.NoReg {
				continue
			}
			if !loadIsDead(b, i, in.Dst, &buf) {
				continue
			}
			if in.Line > 0 && seen[in.Line] {
				continue
			}
			seen[in.Line] = true
			ds = append(ds, diag.Diagnostic{
				Check:    "dead-load",
				Severity: diag.Note,
				Pos:      diag.Pos{File: file, Line: in.Line},
				Msg: fmt.Sprintf("in %q: loaded value is never used and the load will be eliminated; a read intended to observe another thread's write has no effect here",
					f.Name),
			})
		}
	}
	return ds
}

// loadIsDead reports whether the value defined at b.Instrs[i] is dead: no
// later instruction in the block reads it (a plain copy propagates the
// question to the copy's destination) before a redefinition, and none of
// the vregs carrying it are live out of the block.
func loadIsDead(b *ir.Block, i int, v ir.VReg, buf *[]ir.VReg) bool {
	carrying := map[ir.VReg]bool{v: true}
	for _, in := range b.Instrs[i+1:] {
		if in.Op == ir.Mov && carrying[in.A] {
			// The copy is not a real use: the value just moves into
			// another vreg (int t = x lowers to a load plus a Mov).
			carrying[in.Dst] = true
			continue
		}
		*buf = in.Uses(*buf)
		for _, u := range *buf {
			if carrying[u] {
				return false
			}
		}
		if d := in.Def(); d != ir.NoReg && carrying[d] {
			delete(carrying, d)
			if len(carrying) == 0 {
				return true
			}
		}
	}
	for u := range carrying {
		if b.LiveOut()[u] {
			return false
		}
	}
	return true
}
