package codegen

import (
	"strings"
	"testing"

	"xmtgo/internal/diag"
)

const fig6Src = `
int x = 0;
int y = 0;
int obsX = 0;
int obsY = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            x = 1;
            y = 1;
        } else {
            obsY = y;
            obsX = x;
        }
    }
    print_int(obsY);
    print_int(obsX);
    return 0;
}
`

const fig7Src = `
int x = 0;
int y = 0;
int obsX = 0;
int obsY = 0;
int main() {
    spawn(0, 1) {
        if ($ == 0) {
            int one = 1;
            x = 1;
            psm(one, y);
        } else {
            int t = 0;
            psm(t, y);
            obsY = t;
            obsX = x;
        }
    }
    print_int(obsY);
    print_int(obsX);
    return 0;
}
`

func checksOf(ds []diag.Diagnostic) map[string]int {
	out := make(map[string]int)
	for _, d := range ds {
		out[d.Check]++
	}
	return out
}

// TestAnalyzeOptionSurfacesRaces: with Options.Analyze the Fig. 6 litmus
// compiles (the race is legal code) but Result.Diagnostics carries the
// spawn-race findings; without the option the compile stays silent.
func TestAnalyzeOptionSurfacesRaces(t *testing.T) {
	opts := DefaultOptions()
	opts.Analyze = true
	res, err := Compile("fig6.c", fig6Src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if n := checksOf(res.Diagnostics)["spawn-race"]; n != 2 {
		t.Errorf("got %d spawn-race diagnostics, want 2:\n%v", n, res.Diagnostics)
	}
	res, err = Compile("fig6.c", fig6Src, DefaultOptions())
	if err != nil {
		t.Fatalf("compile without analyze: %v", err)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("without Analyze expected no diagnostics, got %v", res.Diagnostics)
	}
}

// TestAnalyzePipelineCleanOnFig7: the prefix-sum-synchronized litmus must
// come through the entire pipeline — AST passes, IR dead-load scan, and
// the post-pass memory-model verifier — with zero findings.
func TestAnalyzePipelineCleanOnFig7(t *testing.T) {
	opts := DefaultOptions()
	opts.Analyze = true
	res, err := Compile("fig7.c", fig7Src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("Fig. 7 must be clean end to end, got:\n%v", res.Diagnostics)
	}
}

// TestDeadLoadNote: a global read whose value is discarded earns a
// dead-load note (the optimizer will delete it, so it can't observe
// another thread's write), both as a bare expression statement and when
// the value dies through a copy into an unused local.
func TestDeadLoadNote(t *testing.T) {
	for _, src := range []string{
		"int x = 0;\nint main() {\n    x;\n    return 0;\n}\n",
		"int x = 0;\nint main() {\n    int t = x;\n    return 0;\n}\n",
	} {
		opts := DefaultOptions()
		opts.Analyze = true
		res, err := Compile("dead.c", src, opts)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		var notes []diag.Diagnostic
		for _, d := range res.Diagnostics {
			if d.Check == "dead-load" {
				notes = append(notes, d)
			}
		}
		if len(notes) != 1 || notes[0].Severity != diag.Note || notes[0].Pos.Line != 3 {
			t.Errorf("source %q: dead-load notes = %v, want one note at line 3", src, notes)
		}
	}
}

// TestPostpassDiagnosticsReachResult: the Fig. 9 scrambled layout makes
// the post-pass relocate a block; its note must surface in
// Result.Diagnostics even without Options.Analyze.
func TestPostpassDiagnosticsReachResult(t *testing.T) {
	src := `
int A[64];
int main() {
    spawn(0, 63) {
        if (A[$] > 0) {
            A[$] = 0;
        } else {
            A[$] = 1;
        }
    }
    return 0;
}
`
	opts := DefaultOptions()
	opts.ScrambleLayout = true
	res, err := Compile("scram.c", src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Stats.RelocatedBlocks == 0 {
		t.Skip("layout scrambler found no candidate block")
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Check == "postpass" && strings.Contains(d.Msg, "relocat") {
			found = true
		}
	}
	if !found {
		t.Errorf("relocation note missing from Diagnostics: %v", res.Diagnostics)
	}
}
