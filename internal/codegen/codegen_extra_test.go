package codegen_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"xmtgo/internal/asm"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
)

// corpus is a set of programs whose output must be identical at -O0 and
// -O1 and under every XMT-optimization toggle: the optimizer must preserve
// semantics.
var corpus = []string{
	`int main() {
        int i, s = 0;
        for (i = 1; i <= 100; i++) s += i * i - (i << 1) + i % 7;
        print_int(s);
        return 0;
    }`,
	`int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
    int main() { print_int(fact(10)); return 0; }`,
	`int A[32];
    int total = 0;
    int main() {
        int i;
        for (i = 0; i < 32; i++) A[i] = (i * 37) % 13;
        spawn(0, 31) {
            int v = A[$] * 2;
            psm(v, total);
        }
        print_int(total);
        return 0;
    }`,
	`float geo(float r, int n) {
        float s = 0.0, t = 1.0;
        int i;
        for (i = 0; i < n; i++) { s += t; t *= r; }
        return s;
    }
    int main() { print_int((int)(geo(0.5, 20) * 1000.0)); return 0; }`,
	`int B[64];
    int count = 0;
    int main() {
        spawn(0, 63) {
            int inc = 1;
            if (($ & 3) == 0) {
                ps(inc, count);
                B[inc] = $;
            }
        }
        print_int(count);
        return 0;
    }`,
	`int main() {
        unsigned u = 3000000000u > 1u ? 40u : 2u;
        int x = -7;
        print_int((int)(u >> 2));
        print_int(x / 2);
        print_int(x % 3);
        char c = 'A' + 2;
        print_char(c);
        return 0;
    }`,
}

func outputOf(t *testing.T, src string, opts codegen.Options) string {
	t.Helper()
	_, p := compile(t, src, opts)
	return runFunc(t, p)
}

func TestOptimizerPreservesSemantics(t *testing.T) {
	for i, src := range corpus {
		base := codegen.Options{OptLevel: 0, PrefetchSlots: 4}
		want := outputOf(t, src, base)
		variants := []codegen.Options{
			codegen.DefaultOptions(),
			{OptLevel: 1, NoNBStore: true, PrefetchSlots: 4},
			{OptLevel: 1, NoPrefetch: true, PrefetchSlots: 4},
			{OptLevel: 1, ClusterFactor: 3, PrefetchSlots: 4},
			{OptLevel: 1, ClusterFactor: 7, PrefetchSlots: 2},
		}
		for j, opts := range variants {
			if got := outputOf(t, src, opts); got != want {
				t.Errorf("program %d variant %d: got %q, want %q", i, j, got, want)
			}
		}
	}
}

// TestOptimizedCycleOutputs: the same corpus under cycle-accurate
// simulation agrees with functional mode.
func TestOptimizedCycleOutputs(t *testing.T) {
	for i, src := range corpus {
		_, p := compile(t, src, codegen.DefaultOptions())
		want := runFunc(t, p)
		got, _ := runCycle(t, p, config.FPGA64())
		if got != want {
			t.Errorf("program %d: cycle %q vs functional %q", i, got, want)
		}
	}
}

// TestClusteringFactorProperty: thread clustering preserves the result of
// an order-insensitive parallel reduction for any factor.
func TestClusteringFactorProperty(t *testing.T) {
	src := `
int A[97];
int total = 0;
int main() {
    int i;
    for (i = 0; i < 97; i++) A[i] = i + 1;
    spawn(0, 96) {
        int v = A[$];
        psm(v, total);
    }
    print_int(total);
    return 0;
}`
	f := func(factor uint8) bool {
		opts := codegen.DefaultOptions()
		opts.ClusterFactor = int(factor%16) + 1
		return outputOf(t, src, opts) == "4753"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterSpillErrorInParallelCode reproduces the paper's §IV-D rule:
// a spawn body needing more registers than available is a compile error,
// not a silent stack spill.
func TestRegisterSpillErrorInParallelCode(t *testing.T) {
	var b strings.Builder
	b.WriteString("int A[64];\nint main() {\n    spawn(0, 63) {\n")
	// Declare many live locals, then consume them all at once.
	n := 40
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "        int v%d = A[$] + %d;\n", i, i)
	}
	b.WriteString("        int acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "        acc += v%d * v%d;\n", i, (i+1)%n)
	}
	b.WriteString("        A[$] = acc;\n    }\n    return 0;\n}\n")

	_, err := codegen.Compile("spill.c", b.String(), codegen.DefaultOptions())
	if err == nil {
		t.Fatal("expected a register spill error in parallel code")
	}
	if !strings.Contains(err.Error(), "register spill in parallel code") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestSerialSpillsWork: the same pressure in serial code spills to the
// stack and still computes correctly.
func TestSerialSpillsWork(t *testing.T) {
	var b strings.Builder
	b.WriteString("int main() {\n")
	n := 40
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    volatile int s%d = %d;\n", i, i)
		fmt.Fprintf(&b, "    int v%d = s%d + 1;\n", i, i)
	}
	b.WriteString("    int acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    acc += v%d;\n", i)
	}
	b.WriteString("    print_int(acc);\n    return 0;\n}\n")
	want := fmt.Sprint(n*(n-1)/2 + n)
	if got := outputOf(t, b.String(), codegen.DefaultOptions()); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestScrambleLayoutFixedByPostpass reproduces Fig. 9 end to end through
// the compiler: the scrambled layout is repaired by the post-pass and the
// program still runs correctly.
func TestScrambleLayoutFixedByPostpass(t *testing.T) {
	src := `
int A[32];
int hits = 0;
int main() {
    int i;
    for (i = 0; i < 32; i++) A[i] = i % 3;
    spawn(0, 31) {
        int inc = 1;
        if (A[$] != 0) {
            ps(inc, hits);
        }
    }
    print_int(hits);
    return 0;
}`
	opts := codegen.DefaultOptions()
	opts.ScrambleLayout = true
	res, err := codegen.Compile("fig9.c", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RelocatedBlocks == 0 {
		t.Fatal("scrambled layout produced nothing for the post-pass to relocate")
	}
	p, err := asm.Assemble(res.Unit)
	if err != nil {
		t.Fatal(err)
	}
	want := "21" // 32 - ceil(32/3): indices where i%3 != 0
	if got := runFunc(t, p); got != want {
		t.Fatalf("scrambled+fixed output %q, want %q", got, want)
	}
	got, _ := runCycle(t, p, config.FPGA64())
	if got != want {
		t.Fatalf("cycle: %q, want %q", got, want)
	}
}

// TestGoldenCycleCounts pins FPGA64 cycle counts for a fixed corpus — the
// self-consistency regression standing in for the paper's verification of
// XMTSim against the Paraleap FPGA prototype.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		name string
		src  string
	}{
		{"serial-sum", `int main() { int i, s = 0; for (i = 0; i < 100; i++) s += i; print_int(s); return 0; }`},
		{"par-fill", `int B[64]; int main() { spawn(0, 63) { B[$] = $; } print_int(B[63]); return 0; }`},
	}
	for _, g := range golden {
		_, p := compile(t, g.src, codegen.DefaultOptions())
		_, c1 := runCycle(t, p, config.FPGA64())
		_, c2 := runCycle(t, p, config.FPGA64())
		if c1 != c2 {
			t.Fatalf("%s: simulation not deterministic: %d vs %d", g.name, c1, c2)
		}
		if c1 <= 0 || c1 > 1_000_000 {
			t.Fatalf("%s: implausible cycle count %d", g.name, c1)
		}
		t.Logf("%s: %d cycles", g.name, c1)
	}
}

func TestDumpIR(t *testing.T) {
	opts := codegen.DefaultOptions()
	opts.DumpIR = true
	res, err := codegen.Compile("d.c", `int main() { print_int(2 + 3); return 0; }`, opts)
	if err != nil {
		t.Fatal(err)
	}
	dump, ok := res.IRDumps["main"]
	if !ok || !strings.Contains(dump, "func main") {
		t.Fatalf("IR dump missing: %v", res.IRDumps)
	}
	// 2+3 must be folded in the dump.
	if !strings.Contains(dump, "= 5") {
		t.Fatalf("constant folding not visible in IR:\n%s", dump)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	cases := []string{
		`int main() { return x; }`,
		`int main() { spawn(0, 1) { int *p = &$; } return 0; }`,
		"int main() {",
	}
	for _, src := range cases {
		if _, err := codegen.Compile("e.c", src, codegen.DefaultOptions()); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

// TestBcastLiveRegisters (§IV-B): values computed in serial code and read
// by the spawn body must be broadcast to the TCUs — the compiler chose
// broadcasting over reloading "because it conserves memory bandwidth".
func TestBcastLiveRegisters(t *testing.T) {
	res, p := compile(t, `
int B[32];
int main() {
    int scaleA = 3;
    int scaleB = 5;
    int bias = 7;
    spawn(0, 31) {
        B[$] = $ * scaleA + $ * scaleB + bias;
    }
    print_int(B[10]);   // 10*3 + 10*5 + 7 = 87
    return 0;
}`, codegen.DefaultOptions())
	text := asm.Print(res.Unit)
	if n := strings.Count(text, "bcast"); n < 3 {
		t.Fatalf("expected at least 3 bcast instructions (captured values), got %d:\n%s", n, text)
	}
	if got := runFunc(t, p); got != "87" {
		t.Fatalf("got %q", got)
	}
	// The functional model zeroes non-broadcast TCU registers, so a wrong
	// or missing bcast set would change this output.
	if got, _ := runCycle(t, p, config.FPGA64()); got != "87" {
		t.Fatalf("cycle: got %q", got)
	}
}
