package codegen_test

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
)

// compile builds a program from XMTC source with default options.
func compile(t testing.TB, src string, opts codegen.Options) (*codegen.Result, *asm.Program) {
	t.Helper()
	res, err := codegen.Compile("test.c", src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := asm.Assemble(res.Unit)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, asm.Print(res.Unit))
	}
	return res, p
}

// runFunc executes a program in fast functional mode and returns output.
func runFunc(t testing.TB, p *asm.Program) string {
	t.Helper()
	var out bytes.Buffer
	m, err := funcmodel.New(p, 4<<20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("functional run: %v (output so far %q)", err, out.String())
	}
	return out.String()
}

// runCycle executes a program cycle-accurately on FPGA64 and returns the
// output and cycle count.
func runCycle(t testing.TB, p *asm.Program, cfg config.Config) (string, int64) {
	t.Helper()
	var out bytes.Buffer
	sys, err := cycle.New(p, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(200_000_000)
	if err != nil {
		t.Fatalf("cycle run: %v (output so far %q)", err, out.String())
	}
	if !res.Halted {
		t.Fatalf("cycle run did not halt: %+v", res)
	}
	return out.String(), res.Cycles
}

// both runs in both modes and checks they agree.
func both(t testing.TB, src, want string) {
	t.Helper()
	_, p := compile(t, src, codegen.DefaultOptions())
	fOut := runFunc(t, p)
	if fOut != want {
		t.Fatalf("functional output %q, want %q", fOut, want)
	}
	cOut, _ := runCycle(t, p, config.FPGA64())
	if cOut != want {
		t.Fatalf("cycle output %q, want %q", cOut, want)
	}
}

func TestSerialArithmetic(t *testing.T) {
	both(t, `
int main() {
    int a = 6, b = 7;
    int c = a * b;
    print_int(c);
    print_char('\n');
    print_int(100 / 7);
    print_char(' ');
    print_int(100 % 7);
    print_char(' ');
    print_int(1 << 10);
    print_char(' ');
    print_int(-5 / 2);
    return 0;
}`, "42\n14 2 1024 -2")
}

func TestControlFlow(t *testing.T) {
	both(t, `
int main() {
    int i, sum = 0;
    for (i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        sum += i;
    }
    print_int(sum);      // 1+3+5+7+9 = 25
    int n = 0;
    while (1) { n++; if (n >= 5) break; }
    print_int(n);
    do { n--; } while (n > 2);
    print_int(n);
    return 0;
}`, "2552")
}

func TestFunctionsAndRecursion(t *testing.T) {
	both(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}
int main() {
    print_int(fib(15));
    return 0;
}`, "610")
}

func TestGlobalsAndArrays(t *testing.T) {
	both(t, `
int A[10];
int total = 3;
int main() {
    int i;
    for (i = 0; i < 10; i++) A[i] = i * i;
    for (i = 0; i < 10; i++) total += A[i];
    print_int(total);   // 285 + 3
    return 0;
}`, "288")
}

func TestPointers(t *testing.T) {
	both(t, `
int g = 5;
void bump(int *p, int by) { *p = *p + by; }
int main() {
    int local = 10;
    bump(&g, 2);
    bump(&local, g);
    print_int(local);  // 10 + 7
    int arr[4] = {1, 2, 3, 4};
    int *q = arr;
    q++;
    print_int(*q + q[1]); // 2 + 3
    return 0;
}`, "175")
}

func TestFloats(t *testing.T) {
	both(t, `
float half(float x) { return x / 2.0; }
int main() {
    float a = 3.5;
    float b = half(a) + 0.25;
    print_int((int)(b * 4.0)); // (1.75+0.25)*4 = 8
    if (a > 3.0 && a <= 3.5) print_int(1); else print_int(0);
    return 0;
}`, "81")
}

func TestMalloc(t *testing.T) {
	both(t, `
int main() {
    int *p = (int*)malloc(10 * sizeof(int));
    int i;
    for (i = 0; i < 10; i++) p[i] = i;
    int *q = (int*)malloc(4);
    *q = 100;
    print_int(p[9] + *q);
    return 0;
}`, "109")
}

func TestStringsAndChars(t *testing.T) {
	both(t, `
char msg[6] = {'h','e','l','l','o'};
int main() {
    print_string("xmt: ");
    int i;
    for (i = 0; msg[i] != 0; i++) print_char(msg[i]);
    return 0;
}`, "xmt: hello")
}

// TestArrayCompaction is the paper's Fig. 2a example, end to end.
func TestArrayCompaction(t *testing.T) {
	src := `
int A[8] = {5, 0, 3, 0, 0, 9, 1, 0};
int B[8];
int base = 0;
int main() {
    spawn(0, 7) {
        int inc = 1;
        if (A[$] != 0) {
            ps(inc, base);
            B[inc] = A[$];
        }
    }
    print_int(base);
    int i, sum = 0;
    for (i = 0; i < base; i++) sum += B[i];
    print_char(' ');
    print_int(sum); // 5+3+9+1 = 18 in any order
    return 0;
}`
	both(t, src, "4 18")
}

func TestSpawnSum(t *testing.T) {
	both(t, `
int A[64];
int total = 0;
int main() {
    int i;
    for (i = 0; i < 64; i++) A[i] = i + 1;
    spawn(0, 63) {
        int v = A[$];
        psm(v, total);
    }
    print_int(total); // 64*65/2
    return 0;
}`, "2080")
}

func TestNestedSpawnSerializes(t *testing.T) {
	res, p := compile(t, `
int M[16];
int main() {
    spawn(0, 3) {
        int r = $;
        spawn(0, 3) {
            int c = $;
            M[r * 4 + c] = r * 10 + c;
        }
    }
    int i, sum = 0;
    for (i = 0; i < 16; i++) sum += M[i];
    print_int(sum);
    return 0;
}`, codegen.DefaultOptions())
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0].Msg, "serialized") {
		t.Fatalf("expected a serialization warning, got %v", res.Warnings)
	}
	want := "264" // sum over r,c of 10r+c = 10*6*4/... = 10*(0+1+2+3)*4 + (0+1+2+3)*4 = 240+24
	if got := runFunc(t, p); got != want {
		t.Fatalf("functional: got %q want %q", got, want)
	}
	if got, _ := runCycle(t, p, config.FPGA64()); got != want {
		t.Fatalf("cycle: got %q want %q", got, want)
	}
}

func TestOutliningHappened(t *testing.T) {
	res, _ := compile(t, `
int A[8];
int found = 0;
int main() {
    int localFound = 0;
    spawn(0, 7) {
        if (A[$] != 0) localFound = 1;
    }
    print_int(localFound);
    return 0;
}`, codegen.DefaultOptions())
	if res.Stats.OutlinedSpawns != 1 {
		t.Fatalf("outlined %d spawns, want 1", res.Stats.OutlinedSpawns)
	}
	if !strings.Contains(res.PrepassSource, "__outl_main_0") {
		t.Fatalf("prepass dump does not show the outlined function:\n%s", res.PrepassSource)
	}
	// localFound is written by parallel code: must be captured by
	// reference (Fig. 8c's &found).
	if !strings.Contains(res.PrepassSource, "__outl_main_0(&localFound)") &&
		!strings.Contains(res.PrepassSource, "__outl_main_0((&localFound))") {
		t.Fatalf("expected by-reference capture in:\n%s", res.PrepassSource)
	}
}

func TestVolatileGlobal(t *testing.T) {
	both(t, `
volatile int flag = 0;
int main() {
    flag = 3;
    int a = flag + flag; // two loads: volatile is never CSE'd
    print_int(a);
    return 0;
}`, "6")
}

func TestTernaryAndLogical(t *testing.T) {
	both(t, `
int main() {
    int x = 7;
    int y = x > 5 ? x * 2 : x - 1;
    print_int(y);
    int z = (x > 0) || (y / 0 > 0); // short circuit: no trap
    print_int(z);
    int w = (x < 0) && (y / 0 > 0);
    print_int(w);
    return 0;
}`, "1410")
}

func TestXmtCycleBuiltin(t *testing.T) {
	_, p := compile(t, `
int main() {
    int c0 = xmt_cycle();
    int i, s = 0;
    for (i = 0; i < 100; i++) s += i;
    int c1 = xmt_cycle();
    print_int(c1 > c0 ? 1 : 0);
    print_int(s == 4950 ? 1 : 0);
    return 0;
}`, codegen.DefaultOptions())
	if got := runFunc(t, p); got != "11" {
		t.Fatalf("functional: got %q", got)
	}
	if got, _ := runCycle(t, p, config.FPGA64()); got != "11" {
		t.Fatalf("cycle: got %q", got)
	}
}
