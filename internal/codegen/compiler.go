package codegen

import (
	"fmt"
	"math"
	"strings"

	"xmtgo/internal/analysis"
	"xmtgo/internal/asm"
	"xmtgo/internal/asm/postpass"
	"xmtgo/internal/diag"
	"xmtgo/internal/ir"
	"xmtgo/internal/isa"
	"xmtgo/internal/xmtc"
	"xmtgo/internal/xmtc/prepass"
)

// Options configure a compilation.
type Options struct {
	// OptLevel 0 disables the core-pass optimizer.
	OptLevel int
	// NoNBStore disables the non-blocking-store optimization (ablation).
	NoNBStore bool
	// NoPrefetch disables compiler prefetch insertion (ablation).
	NoPrefetch bool
	// PrefetchSlots caps prefetches per virtual thread (default 4).
	PrefetchSlots int
	// ClusterFactor > 1 enables virtual-thread clustering by that factor.
	ClusterFactor int
	// DisableOutline keeps spawns inline (compiler experiments).
	DisableOutline bool
	// ScrambleLayout mimics GCC's basic-block placement of Fig. 9: one
	// spawn-region block is moved after the region so the post-pass must
	// relocate it back.
	ScrambleLayout bool
	// SkipPostpass emits without verification (used by tests that drive
	// the post-pass separately).
	SkipPostpass bool
	// DumpIR collects the optimized IR of every function.
	DumpIR bool
	// Analyze runs the static analyzer (package analysis) over the
	// checked AST before the pre-pass rewrites it, and collects IR- and
	// assembly-level findings; everything lands in Result.Diagnostics.
	Analyze bool
}

// DefaultOptions is the standard -O1 pipeline.
func DefaultOptions() Options {
	return Options{OptLevel: 1, PrefetchSlots: 4}
}

// Stats reports what the XMT-specific passes did.
type Stats struct {
	Functions       int
	OutlinedSpawns  int
	NonBlocking     int
	Prefetches      int
	RelocatedBlocks int
}

// Result is a successful compilation.
type Result struct {
	Unit *asm.Unit
	// Warnings are the front-end's structured diagnostics (e.g. the
	// nested-spawn serialization warning).
	Warnings []diag.Diagnostic
	// Diagnostics are analyzer findings: the static analysis passes
	// (with Options.Analyze), IR-level observations, and the post-pass
	// relocation notes and memory-model warnings.
	Diagnostics []diag.Diagnostic
	Stats       Stats
	IRDumps     map[string]string
	// PrepassSource is the outlined XMTC rendered back to source-like
	// form (the -dump-prepass view of Fig. 8c).
	PrepassSource string
}

// Compile runs the full three-pass XMTC pipeline (pre-pass, core pass,
// post-pass) and returns the resulting assembly unit, ready for
// asm.Assemble (optionally after asm.ApplyMemMap).
func Compile(file, src string, opts Options) (*Result, error) {
	if opts.PrefetchSlots == 0 {
		opts.PrefetchSlots = 4
	}
	f, err := xmtc.Parse(file, src)
	if err != nil {
		return nil, err
	}
	info, err := xmtc.Check(f)
	if err != nil {
		return nil, err
	}
	// The analyzer must see the AST before the pre-pass outlines spawn
	// bodies into synthetic functions, or positions and scopes would no
	// longer match the source.
	var analysisDiags []diag.Diagnostic
	if opts.Analyze {
		analysisDiags = analysis.Run(&analysis.Unit{
			Filename: file,
			File:     f,
			Info:     info,
			Lines:    strings.Split(src, "\n"),
		}, nil)
	}
	if err := prepass.Run(f, prepass.Options{
		ClusterFactor:  opts.ClusterFactor,
		DisableOutline: opts.DisableOutline,
	}); err != nil {
		return nil, err
	}

	res := &Result{
		Unit:          &asm.Unit{File: file, Globals: map[string]bool{"main": true}},
		Warnings:      info.Warnings,
		Diagnostics:   analysisDiags,
		IRDumps:       make(map[string]string),
		PrepassSource: xmtc.Render(f),
	}
	u := res.Unit

	// Data segment: globals (ps bases live in global registers instead),
	// then string literals.
	for _, g := range info.Globals {
		if g.Sym.PsBase {
			continue
		}
		if err := emitGlobalData(u, g); err != nil {
			return nil, err
		}
	}
	for _, s := range f.Strings {
		u.Data = append(u.Data, asm.DataItem{Label: s.Label, Kind: asm.DataAsciiz, Str: s.Val})
	}

	// Startup code: initialize ps-base global registers, call main, halt.
	u.AppendLabel("_start", 0)
	for _, sym := range info.PsBases {
		init := int32(0)
		if vd, ok := sym.Def.(*xmtc.VarDecl); ok && vd.Init != nil {
			if v, ok := xmtc.FoldConst(vd.Init); ok {
				init = v
			}
		}
		if init >= -32768 && init <= 32767 {
			u.AppendInstr(isa.Instr{Op: isa.OpAddiu, Rd: isa.RegT0, Rs: isa.RegZero, Imm: init, Target: -1}, asm.RelNone, 0)
		} else {
			u.AppendInstr(isa.Instr{Op: isa.OpLui, Rd: isa.RegT0, Imm: int32(uint32(init) >> 16), Target: -1}, asm.RelNone, 0)
			u.AppendInstr(isa.Instr{Op: isa.OpOri, Rd: isa.RegT0, Rs: isa.RegT0, Imm: int32(uint32(init) & 0xffff), Target: -1}, asm.RelNone, 0)
		}
		u.AppendInstr(isa.Instr{Op: isa.OpGrw, Rd: isa.RegT0, G: isa.GReg(sym.GReg), Target: -1}, asm.RelNone, 0)
	}
	u.AppendInstr(isa.Instr{Op: isa.OpJal, Sym: "main", Target: -1}, asm.RelBranch, 0)
	u.AppendInstr(isa.Instr{Op: isa.OpSys, Imm: isa.SysHalt, Target: -1}, asm.RelNone, 0)

	// Functions (including outlined spawn functions appended by the
	// pre-pass; re-collect them from the rewritten file).
	needMalloc := false
	var funcs []*xmtc.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*xmtc.FuncDecl); ok && fd.Body != nil {
			funcs = append(funcs, fd)
			if fd.IsOutlinedSpawn {
				res.Stats.OutlinedSpawns++
			}
		}
	}
	cg := &Compiler{opts: opts}
	for _, fd := range funcs {
		irf, err := cg.lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		if opts.Analyze {
			// Dead loads must be spotted before Optimize silently deletes
			// them; liveness on the raw lowered IR is cheap.
			irf.Liveness()
			res.Diagnostics = append(res.Diagnostics, deadLoadNotes(file, irf)...)
		}
		irf.Optimize(opts.OptLevel)
		irf.Liveness()
		if !opts.NoNBStore {
			res.Stats.NonBlocking += nonBlockingStores(irf)
		}
		if !opts.NoPrefetch {
			res.Stats.Prefetches += insertPrefetches(irf, opts.PrefetchSlots)
		}
		if opts.DumpIR {
			res.IRDumps[fd.Name] = irf.Dump()
		}
		alloc, err := allocate(irf)
		if err != nil {
			return nil, err
		}
		if err := emitFunc(u, irf, alloc); err != nil {
			return nil, err
		}
		res.Stats.Functions++
		// malloc is referenced through the runtime.
		for _, b := range irf.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.Call && b.Instrs[i].CallName == "malloc" {
					needMalloc = true
				}
			}
		}
	}

	if needMalloc {
		if err := appendRuntime(u); err != nil {
			return nil, err
		}
	}

	if opts.ScrambleLayout {
		scrambleUnit(u)
	}

	if !opts.SkipPostpass {
		pres, err := postpass.Run(u)
		if err != nil {
			return nil, err
		}
		res.Stats.RelocatedBlocks = pres.RelocatedBlocks
		res.Diagnostics = append(res.Diagnostics, pres.Diagnostics...)
	}
	diag.Sort(res.Diagnostics)
	return res, nil
}

// Compiler carries per-compilation state shared across functions.
type Compiler struct {
	opts Options
}

// emitGlobalData lays out one global variable.
func emitGlobalData(u *asm.Unit, g *xmtc.VarDecl) error {
	t := g.Type
	constOf := func(e xmtc.Expr) (int32, error) {
		if fl, ok := e.(*xmtc.FloatLit); ok {
			return int32(math.Float32bits(float32(fl.Val))), nil
		}
		if v, ok := xmtc.FoldConst(e); ok {
			return v, nil
		}
		return 0, fmt.Errorf("%s: initializer for %q is not constant", g.Pos, g.Name)
	}
	switch {
	case t.Kind == xmtc.KArray && t.Elem.Kind == xmtc.KChar:
		u.Data = append(u.Data, asm.DataItem{Label: g.Name, Kind: asm.DataAlign, Size: 2})
		var vals []asm.DataValue
		for _, e := range g.InitList {
			v, err := constOf(e)
			if err != nil {
				return err
			}
			vals = append(vals, asm.DataValue{Val: v})
		}
		if len(vals) > 0 {
			u.Data = append(u.Data, asm.DataItem{Kind: asm.DataByte, Values: vals})
		}
		if rem := t.ArrayLen - int32(len(vals)); rem > 0 {
			u.Data = append(u.Data, asm.DataItem{Kind: asm.DataSpace, Size: rem})
		}
	case t.Kind == xmtc.KArray:
		u.Data = append(u.Data, asm.DataItem{Label: g.Name, Kind: asm.DataAlign, Size: 2})
		var vals []asm.DataValue
		for _, e := range g.InitList {
			v, err := constOf(e)
			if err != nil {
				return err
			}
			vals = append(vals, asm.DataValue{Val: v})
		}
		if len(vals) > 0 {
			u.Data = append(u.Data, asm.DataItem{Kind: asm.DataWord, Values: vals})
		}
		if rem := t.Size() - int32(len(vals))*t.Elem.Size(); rem > 0 {
			u.Data = append(u.Data, asm.DataItem{Kind: asm.DataSpace, Size: rem})
		}
	case t.Kind == xmtc.KStruct:
		u.Data = append(u.Data, asm.DataItem{Label: g.Name, Kind: asm.DataAlign, Size: 2})
		u.Data = append(u.Data, asm.DataItem{Kind: asm.DataSpace, Size: t.Size()})
	case t.Kind == xmtc.KChar:
		u.Data = append(u.Data, asm.DataItem{Label: g.Name, Kind: asm.DataAlign, Size: 0})
		v := int32(0)
		if g.Init != nil {
			var err error
			if v, err = constOf(g.Init); err != nil {
				return err
			}
		}
		u.Data = append(u.Data, asm.DataItem{Kind: asm.DataByte, Values: []asm.DataValue{{Val: v}}})
	default:
		u.Data = append(u.Data, asm.DataItem{Label: g.Name, Kind: asm.DataAlign, Size: 2})
		v := int32(0)
		if g.Init != nil {
			var err error
			if v, err = constOf(g.Init); err != nil {
				return err
			}
		}
		u.Data = append(u.Data, asm.DataItem{Kind: asm.DataWord, Values: []asm.DataValue{{Val: v}}})
	}
	return nil
}

// runtimeAsm is the serial-mode runtime library: a bump allocator whose
// heap begins after all linked data (dynamic memory allocation is a
// serial-code library call in the current XMT release, paper §IV-D).
const runtimeAsm = `
        .data
        .align 3
__heap_ptr: .word 0
        .text
malloc:
        lw    $t0, __heap_ptr
        bne   $t0, $zero, __m_have
        la    $t0, __heap_base
__m_have:
        addiu $t1, $t0, 7
        srl   $t1, $t1, 3
        sll   $v0, $t1, 3
        addu  $t2, $v0, $a0
        la    $t3, __heap_ptr
        sw    $t2, 0($t3)
        jr    $ra
        .data
        .align 3
__heap_base:
        .word 0
`

func appendRuntime(u *asm.Unit) error {
	ru, err := asm.Parse("runtime.s", runtimeAsm)
	if err != nil {
		return fmt.Errorf("internal: runtime assembly: %v", err)
	}
	u.Text = append(u.Text, ru.Text...)
	u.Data = append(u.Data, ru.Data...)
	return nil
}

// scrambleUnit reproduces the GCC layout issue of Fig. 9: it moves one
// spawn-region basic block (a jump-target block ending in an unconditional
// jump) to the end of the unit, after the region. The post-pass must then
// detect and relocate it back.
func scrambleUnit(u *asm.Unit) bool {
	// Find a region (spawn .. join) and a candidate block inside it.
	type pos struct{ spawn, join int }
	var regions []pos
	open := -1
	for i, it := range u.Text {
		if it.Kind != asm.ItemInstr {
			continue
		}
		switch it.Instr.Op {
		case isa.OpSpawn:
			open = i
		case isa.OpJoin:
			if open >= 0 {
				regions = append(regions, pos{open, i})
				open = -1
			}
		}
	}
	for _, r := range regions {
		// Candidate: label L where the previous instruction is an
		// unconditional j, and the chunk from L extends to the next
		// unconditional j before the join.
		for i := r.spawn + 1; i < r.join; i++ {
			if u.Text[i].Kind != asm.ItemLabel {
				continue
			}
			prev := -1
			for k := i - 1; k > r.spawn; k-- {
				if u.Text[k].Kind == asm.ItemInstr {
					prev = k
					break
				}
			}
			if prev < 0 || u.Text[prev].Instr.Op != isa.OpJ {
				continue
			}
			end := -1
			for k := i; k < r.join; k++ {
				if u.Text[k].Kind == asm.ItemInstr && u.Text[k].Instr.Op == isa.OpJ {
					end = k
					break
				}
			}
			if end < 0 {
				continue
			}
			chunk := append([]asm.TextItem(nil), u.Text[i:end+1]...)
			rest := append(append([]asm.TextItem(nil), u.Text[:i]...), u.Text[end+1:]...)
			u.Text = append(rest, chunk...)
			return true
		}
	}
	return false
}
