package codegen

import (
	"fmt"

	"xmtgo/internal/asm"
	"xmtgo/internal/ir"
	"xmtgo/internal/isa"
)

// emitter translates allocated IR to assembly text items.
type emitter struct {
	u     *asm.Unit
	f     *ir.Func
	alloc *allocation

	frameSize   int32
	outArgBytes int32
	spillBase   int32 // $sp offset of spill slot 0
	localBase   int32 // $sp offset of FrameAddr slot 0
	savedBase   int32

	blockLabel map[*ir.Block]string
}

const (
	scratchA = isa.RegAT // first scratch (also destination scratch)
	scratchB = isa.RegK1 // second scratch
)

// emitFunc appends one function's code to the unit.
func emitFunc(u *asm.Unit, f *ir.Func, alloc *allocation) error {
	e := &emitter{u: u, f: f, alloc: alloc, blockLabel: make(map[*ir.Block]string)}

	maxArgs := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.Call && len(b.Instrs[i].CallArgs) > maxArgs {
				maxArgs = len(b.Instrs[i].CallArgs)
			}
		}
	}
	if maxArgs > 4 {
		e.outArgBytes = int32(maxArgs-4) * 4
	}
	e.spillBase = e.outArgBytes
	e.localBase = e.spillBase + int32(alloc.numSpills)*4
	e.savedBase = e.localBase + (f.FrameLocals+3)&^3
	saved := int32(len(alloc.usedSaved)) * 4
	if f.HasCall {
		saved += 4
	}
	e.frameSize = (e.savedBase + saved + 7) &^ 7

	for _, b := range f.Blocks {
		e.blockLabel[b] = b.Label
	}

	u.AppendLabel(f.Name, 0)
	e.prologue()

	for bi, b := range f.Blocks {
		u.AppendLabel(b.Label, 0)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			// Elide an unconditional jump to the next block in layout.
			if in.Op == ir.Jmp && ii == len(b.Instrs)-1 && bi+1 < len(f.Blocks) && in.Target == f.Blocks[bi+1] {
				continue
			}
			if err := e.instr(in); err != nil {
				return fmt.Errorf("codegen: %s: %v", f.Name, err)
			}
		}
	}
	return nil
}

func (e *emitter) put(in isa.Instr, reloc asm.RelocKind, line int) {
	in.Target = -1
	// Carry the XMTC source line on the instruction itself: this is the
	// PC-to-line table the cycle profiler and trace exporter attribute by.
	in.Line = line
	e.u.AppendInstr(in, reloc, line)
}

func (e *emitter) prologue() {
	if e.frameSize > 0 {
		e.put(isa.Instr{Op: isa.OpAddiu, Rd: isa.RegSP, Rs: isa.RegSP, Imm: -e.frameSize}, asm.RelNone, 0)
	}
	off := e.savedBase
	for _, r := range e.alloc.usedSaved {
		e.put(isa.Instr{Op: isa.OpSw, Rd: r, Rs: isa.RegSP, Imm: off}, asm.RelNone, 0)
		off += 4
	}
	if e.f.HasCall {
		e.put(isa.Instr{Op: isa.OpSw, Rd: isa.RegRA, Rs: isa.RegSP, Imm: off}, asm.RelNone, 0)
	}
	// Bind incoming arguments.
	for i, v := range e.f.ArgRegs {
		if i < 4 {
			src := isa.RegA0 + isa.Reg(i)
			if r, ok := e.alloc.regOf[v]; ok {
				e.move(r, src, 0)
			} else if slot, ok := e.alloc.slotOf[v]; ok {
				e.put(isa.Instr{Op: isa.OpSw, Rd: src, Rs: isa.RegSP, Imm: e.spillBase + int32(slot)*4}, asm.RelNone, 0)
			}
			continue
		}
		inOff := e.frameSize + int32(i-4)*4
		if r, ok := e.alloc.regOf[v]; ok {
			e.put(isa.Instr{Op: isa.OpLw, Rd: r, Rs: isa.RegSP, Imm: inOff}, asm.RelNone, 0)
		} else if slot, ok := e.alloc.slotOf[v]; ok {
			e.put(isa.Instr{Op: isa.OpLw, Rd: scratchA, Rs: isa.RegSP, Imm: inOff}, asm.RelNone, 0)
			e.put(isa.Instr{Op: isa.OpSw, Rd: scratchA, Rs: isa.RegSP, Imm: e.spillBase + int32(slot)*4}, asm.RelNone, 0)
		}
	}
}

func (e *emitter) epilogue(line int) {
	off := e.savedBase
	for _, r := range e.alloc.usedSaved {
		e.put(isa.Instr{Op: isa.OpLw, Rd: r, Rs: isa.RegSP, Imm: off}, asm.RelNone, line)
		off += 4
	}
	if e.f.HasCall {
		e.put(isa.Instr{Op: isa.OpLw, Rd: isa.RegRA, Rs: isa.RegSP, Imm: off}, asm.RelNone, line)
	}
	if e.frameSize > 0 {
		e.put(isa.Instr{Op: isa.OpAddiu, Rd: isa.RegSP, Rs: isa.RegSP, Imm: e.frameSize}, asm.RelNone, line)
	}
	e.put(isa.Instr{Op: isa.OpJr, Rd: isa.RegRA, Rs: isa.RegRA}, asm.RelNone, line)
}

func (e *emitter) move(dst, src isa.Reg, line int) {
	if dst == src {
		return
	}
	e.put(isa.Instr{Op: isa.OpAddu, Rd: dst, Rs: src, Rt: isa.RegZero}, asm.RelNone, line)
}

// src materializes a vreg value into a register (loading spills into the
// given scratch register).
func (e *emitter) src(v ir.VReg, scratch isa.Reg, line int) (isa.Reg, error) {
	if v == ir.NoReg {
		return isa.RegZero, nil
	}
	if r, ok := e.alloc.regOf[v]; ok {
		return r, nil
	}
	if slot, ok := e.alloc.slotOf[v]; ok {
		e.put(isa.Instr{Op: isa.OpLw, Rd: scratch, Rs: isa.RegSP, Imm: e.spillBase + int32(slot)*4}, asm.RelNone, line)
		return scratch, nil
	}
	// A vreg with no assignment has no uses that survived optimization;
	// its value is irrelevant, but emitting $zero keeps things defined.
	return isa.RegZero, nil
}

// dst returns the register to compute a destination into and a flush
// function storing it back when the vreg is spilled.
func (e *emitter) dst(v ir.VReg, line int) (isa.Reg, func()) {
	if r, ok := e.alloc.regOf[v]; ok {
		return r, func() {}
	}
	if slot, ok := e.alloc.slotOf[v]; ok {
		return scratchA, func() {
			e.put(isa.Instr{Op: isa.OpSw, Rd: scratchA, Rs: isa.RegSP, Imm: e.spillBase + int32(slot)*4}, asm.RelNone, line)
		}
	}
	return scratchA, func() {} // dead destination
}

// binOps maps IR register-form operations to machine opcodes.
var binOps = map[ir.Op]isa.Op{
	ir.Add: isa.OpAddu, ir.Sub: isa.OpSubu, ir.Mul: isa.OpMul,
	ir.Div: isa.OpDiv, ir.DivU: isa.OpDivu, ir.Rem: isa.OpRem, ir.RemU: isa.OpRemu,
	ir.And: isa.OpAnd, ir.Or: isa.OpOr, ir.Xor: isa.OpXor, ir.Nor: isa.OpNor,
	ir.Shl: isa.OpSllv, ir.Shr: isa.OpSrlv, ir.Sar: isa.OpSrav,
	ir.SltS: isa.OpSlt, ir.SltU: isa.OpSltu,
	ir.FAdd: isa.OpAddS, ir.FSub: isa.OpSubS, ir.FMul: isa.OpMulS, ir.FDiv: isa.OpDivS,
	ir.FEq: isa.OpCeqS, ir.FLt: isa.OpCltS, ir.FLe: isa.OpCleS,
}

var immOps = map[ir.Op]isa.Op{
	ir.AddImm: isa.OpAddiu, ir.AndImm: isa.OpAndi, ir.OrImm: isa.OpOri,
	ir.XorImm: isa.OpXori, ir.ShlImm: isa.OpSll, ir.ShrImm: isa.OpSrl,
	ir.SarImm: isa.OpSra, ir.SltImm: isa.OpSlti, ir.SltUImm: isa.OpSltiu,
}

var unOps = map[ir.Op]isa.Op{
	ir.FNeg: isa.OpNegS, ir.FAbs: isa.OpAbsS, ir.FSqrt: isa.OpSqrtS,
	ir.CvtIF: isa.OpCvtSW, ir.CvtFI: isa.OpCvtWS,
}

func (e *emitter) instr(in *ir.Instr) error {
	line := in.Line
	switch in.Op {
	case ir.Nop:
		return nil
	case ir.LdImm:
		rd, flush := e.dst(in.Dst, line)
		e.loadImm(rd, in.Imm, line)
		flush()
	case ir.LdSym:
		rd, flush := e.dst(in.Dst, line)
		e.put(isa.Instr{Op: isa.OpLui, Rd: rd, Sym: in.Sym}, asm.RelHi16, line)
		e.put(isa.Instr{Op: isa.OpOri, Rd: rd, Rs: rd, Sym: in.Sym}, asm.RelLo16, line)
		flush()
	case ir.FrameAddr:
		rd, flush := e.dst(in.Dst, line)
		e.put(isa.Instr{Op: isa.OpAddiu, Rd: rd, Rs: isa.RegSP, Imm: e.localBase + in.Imm}, asm.RelNone, line)
		flush()
	case ir.Mov:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		e.move(rd, ra, line)
		flush()
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.DivU, ir.Rem, ir.RemU,
		ir.And, ir.Or, ir.Xor, ir.Nor, ir.Shl, ir.Shr, ir.Sar,
		ir.SltS, ir.SltU, ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.FEq, ir.FLt, ir.FLe:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		rb, err := e.src(in.B, scratchB, line)
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		e.put(isa.Instr{Op: binOps[in.Op], Rd: rd, Rs: ra, Rt: rb}, asm.RelNone, line)
		flush()
	case ir.AddImm, ir.AndImm, ir.OrImm, ir.XorImm, ir.ShlImm, ir.ShrImm,
		ir.SarImm, ir.SltImm, ir.SltUImm:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		e.put(isa.Instr{Op: immOps[in.Op], Rd: rd, Rs: ra, Imm: in.Imm}, asm.RelNone, line)
		flush()
	case ir.FNeg, ir.FAbs, ir.FSqrt, ir.CvtIF, ir.CvtFI:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		e.put(isa.Instr{Op: unOps[in.Op], Rd: rd, Rs: ra}, asm.RelNone, line)
		flush()
	case ir.Load, ir.LoadRO:
		ra, err := e.src(in.A, scratchB, line)
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		op := isa.OpLw
		if in.Op == ir.LoadRO {
			op = isa.OpLwRO
		} else if in.Size == 1 {
			if in.Signed {
				op = isa.OpLb
			} else {
				op = isa.OpLbu
			}
		}
		e.put(isa.Instr{Op: op, Rd: rd, Rs: ra, Imm: in.Imm}, asm.RelNone, line)
		flush()
	case ir.Store:
		ra, err := e.src(in.A, scratchB, line)
		if err != nil {
			return err
		}
		rb, err := e.src(in.B, scratchA, line)
		if err != nil {
			return err
		}
		op := isa.OpSw
		if in.Size == 1 {
			op = isa.OpSb
		} else if in.NB {
			op = isa.OpSwNB
		}
		e.put(isa.Instr{Op: op, Rd: rb, Rs: ra, Imm: in.Imm}, asm.RelNone, line)
	case ir.Pref:
		ra, err := e.src(in.A, scratchB, line)
		if err != nil {
			return err
		}
		e.put(isa.Instr{Op: isa.OpPref, Rd: isa.RegZero, Rs: ra, Imm: in.Imm}, asm.RelNone, line)
	case ir.Ps:
		ra, err := e.src(in.A, scratchB, line)
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		e.move(rd, ra, line)
		e.put(isa.Instr{Op: isa.OpPs, Rd: rd, G: isa.GReg(in.G)}, asm.RelNone, line)
		flush()
	case ir.Psm:
		ra, err := e.src(in.A, scratchB, line) // base address
		if err != nil {
			return err
		}
		rd, flush := e.dst(in.Dst, line)
		rb, err := e.src(in.B, scratchA, line) // increment
		if err != nil {
			return err
		}
		if rd == ra {
			// The destination would clobber the base before the access:
			// route through the scratch register.
			e.move(scratchA, rb, line)
			e.put(isa.Instr{Op: isa.OpPsm, Rd: scratchA, Rs: ra, Imm: in.Imm}, asm.RelNone, line)
			e.move(rd, scratchA, line)
		} else {
			e.move(rd, rb, line)
			e.put(isa.Instr{Op: isa.OpPsm, Rd: rd, Rs: ra, Imm: in.Imm}, asm.RelNone, line)
		}
		flush()
	case ir.Grr:
		rd, flush := e.dst(in.Dst, line)
		e.put(isa.Instr{Op: isa.OpGrr, Rd: rd, G: isa.GReg(in.G)}, asm.RelNone, line)
		flush()
	case ir.Grw:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		e.put(isa.Instr{Op: isa.OpGrw, Rd: ra, G: isa.GReg(in.G)}, asm.RelNone, line)
	case ir.Fence:
		e.put(isa.Instr{Op: isa.OpFence}, asm.RelNone, line)
	case ir.Spawn:
		for _, r := range e.alloc.bcast[int(in.Imm)] {
			e.put(isa.Instr{Op: isa.OpBcast, Rd: r}, asm.RelNone, line)
		}
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		rb, err := e.src(in.B, scratchB, line)
		if err != nil {
			return err
		}
		e.put(isa.Instr{Op: isa.OpSpawn, Rs: ra, Rt: rb}, asm.RelNone, line)
	case ir.Join:
		e.put(isa.Instr{Op: isa.OpJoin}, asm.RelNone, line)
	case ir.Chkid:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		e.put(isa.Instr{Op: isa.OpChkid, Rd: ra, Rs: ra}, asm.RelNone, line)
	case ir.Sys:
		if in.A != ir.NoReg {
			ra, err := e.src(in.A, scratchA, line)
			if err != nil {
				return err
			}
			e.move(isa.RegV0, ra, line)
		}
		e.put(isa.Instr{Op: isa.OpSys, Imm: in.Imm}, asm.RelNone, line)
		if in.Dst != ir.NoReg {
			rd, flush := e.dst(in.Dst, line)
			e.move(rd, isa.RegV0, line)
			flush()
		}
	case ir.Call:
		for i, a := range in.CallArgs {
			ra, err := e.src(a, scratchA, line)
			if err != nil {
				return err
			}
			if i < 4 {
				e.move(isa.RegA0+isa.Reg(i), ra, line)
			} else {
				e.put(isa.Instr{Op: isa.OpSw, Rd: ra, Rs: isa.RegSP, Imm: int32(i-4) * 4}, asm.RelNone, line)
			}
		}
		e.put(isa.Instr{Op: isa.OpJal, Sym: in.CallName}, asm.RelBranch, line)
		if in.Dst != ir.NoReg {
			rd, flush := e.dst(in.Dst, line)
			e.move(rd, isa.RegV0, line)
			flush()
		}
	case ir.Ret:
		if in.A != ir.NoReg {
			ra, err := e.src(in.A, scratchA, line)
			if err != nil {
				return err
			}
			e.move(isa.RegV0, ra, line)
		}
		e.epilogue(line)
	case ir.Jmp:
		e.put(isa.Instr{Op: isa.OpJ, Sym: in.Target.Label}, asm.RelBranch, line)
	case ir.Br:
		ra, err := e.src(in.A, scratchA, line)
		if err != nil {
			return err
		}
		lbl := in.Target.Label
		switch in.Cond {
		case ir.BrEQ, ir.BrNE:
			rb, err := e.src(in.B, scratchB, line)
			if err != nil {
				return err
			}
			op := isa.OpBeq
			if in.Cond == ir.BrNE {
				op = isa.OpBne
			}
			e.put(isa.Instr{Op: op, Rs: ra, Rt: rb, Sym: lbl}, asm.RelBranch, line)
		case ir.BrLEZ:
			e.put(isa.Instr{Op: isa.OpBlez, Rs: ra, Sym: lbl}, asm.RelBranch, line)
		case ir.BrGTZ:
			e.put(isa.Instr{Op: isa.OpBgtz, Rs: ra, Sym: lbl}, asm.RelBranch, line)
		case ir.BrLTZ:
			e.put(isa.Instr{Op: isa.OpBltz, Rs: ra, Sym: lbl}, asm.RelBranch, line)
		case ir.BrGEZ:
			e.put(isa.Instr{Op: isa.OpBgez, Rs: ra, Sym: lbl}, asm.RelBranch, line)
		}
	default:
		return fmt.Errorf("cannot emit IR op %d", in.Op)
	}
	return nil
}

func (e *emitter) loadImm(rd isa.Reg, v int32, line int) {
	if v >= -32768 && v <= 32767 {
		e.put(isa.Instr{Op: isa.OpAddiu, Rd: rd, Rs: isa.RegZero, Imm: v}, asm.RelNone, line)
		return
	}
	hi := int32(uint32(v) >> 16)
	lo := int32(uint32(v) & 0xffff)
	e.put(isa.Instr{Op: isa.OpLui, Rd: rd, Imm: hi}, asm.RelNone, line)
	if lo != 0 {
		e.put(isa.Instr{Op: isa.OpOri, Rd: rd, Rs: rd, Imm: lo}, asm.RelNone, line)
	}
}
