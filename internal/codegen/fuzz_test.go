package codegen_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/prng"
)

// Differential fuzzing: generate random XMTC programs together with a
// host-evaluated int32 oracle, then require the -O0 functional, -O1
// functional and -O1 cycle-accurate executions to all agree with it. This
// randomly exercises the lexer, parser, type checker, lowering, the whole
// optimizer, register allocation (including spills) and both simulator
// engines.

// exprGen builds a random expression over the current variables and
// returns (source, host value).
type progGen struct {
	rng  *prng.PCG
	vars []string
	vals map[string]int32
	b    strings.Builder
}

func (g *progGen) konst() (string, int32) {
	v := int32(g.rng.Intn(2001) - 1000)
	return fmt.Sprint(v), v
}

func (g *progGen) operand() (string, int32) {
	if len(g.vars) > 0 && g.rng.Intn(10) < 7 {
		name := g.vars[g.rng.Intn(len(g.vars))]
		return name, g.vals[name]
	}
	return g.konst()
}

// expr generates a random expression of the given depth.
func (g *progGen) expr(depth int) (string, int32) {
	if depth <= 0 {
		return g.operand()
	}
	switch g.rng.Intn(12) {
	case 0, 1: // add
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 2: // sub
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 3: // mul
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 4: // div by positive constant
		a, av := g.expr(depth - 1)
		c := int32(g.rng.Intn(30) + 1)
		return fmt.Sprintf("(%s / %d)", a, c), av / c
	case 5: // rem by positive constant
		a, av := g.expr(depth - 1)
		c := int32(g.rng.Intn(30) + 1)
		return fmt.Sprintf("(%s %% %d)", a, c), av % c
	case 6: // and
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s & %s)", a, b), av & bv
	case 7: // or
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s | %s)", a, b), av | bv
	case 8: // xor
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s ^ %s)", a, b), av ^ bv
	case 9: // shift by constant
		a, av := g.expr(depth - 1)
		sh := g.rng.Intn(31)
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("(%s << %d)", a, sh), av << uint(sh)
		}
		return fmt.Sprintf("(%s >> %d)", a, sh), av >> uint(sh)
	case 10: // comparison (0/1)
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		op := ops[g.rng.Intn(len(ops))]
		var r bool
		switch op {
		case "<":
			r = av < bv
		case "<=":
			r = av <= bv
		case ">":
			r = av > bv
		case ">=":
			r = av >= bv
		case "==":
			r = av == bv
		case "!=":
			r = av != bv
		}
		v := int32(0)
		if r {
			v = 1
		}
		return fmt.Sprintf("(%s %s %s)", a, op, b), v
	default: // ternary
		c, cv := g.expr(depth - 1)
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		if cv != 0 {
			return fmt.Sprintf("(%s ? %s : %s)", c, a, b), av
		}
		return fmt.Sprintf("(%s ? %s : %s)", c, a, b), bv
	}
}

// generate builds one random program and its expected output.
func generate(seed uint64, stmts int) (src string, want string) {
	g := &progGen{rng: prng.New(seed), vals: map[string]int32{}}
	g.b.WriteString("int main() {\n")
	nvars := 3 + g.rng.Intn(6)
	for i := 0; i < nvars; i++ {
		name := fmt.Sprintf("v%d", i)
		ks, kv := g.konst()
		fmt.Fprintf(&g.b, "    int %s = %s;\n", name, ks)
		g.vars = append(g.vars, name)
		g.vals[name] = kv
	}
	for i := 0; i < stmts; i++ {
		switch g.rng.Intn(5) {
		case 0: // conditional assignment
			cs, cv := g.expr(1)
			tgt := g.vars[g.rng.Intn(len(g.vars))]
			es, ev := g.expr(2)
			fmt.Fprintf(&g.b, "    if (%s) %s = %s;\n", cs, tgt, es)
			if cv != 0 {
				g.vals[tgt] = ev
			}
		case 1: // compound assignment
			tgt := g.vars[g.rng.Intn(len(g.vars))]
			es, ev := g.expr(2)
			ops := []string{"+=", "-=", "^=", "|=", "&="}
			op := ops[g.rng.Intn(len(ops))]
			fmt.Fprintf(&g.b, "    %s %s %s;\n", tgt, op, es)
			switch op {
			case "+=":
				g.vals[tgt] += ev
			case "-=":
				g.vals[tgt] -= ev
			case "^=":
				g.vals[tgt] ^= ev
			case "|=":
				g.vals[tgt] |= ev
			case "&=":
				g.vals[tgt] &= ev
			}
		default: // plain assignment
			tgt := g.vars[g.rng.Intn(len(g.vars))]
			es, ev := g.expr(3)
			fmt.Fprintf(&g.b, "    %s = %s;\n", tgt, es)
			g.vals[tgt] = ev
		}
	}
	var acc int32
	g.b.WriteString("    int acc = 0;\n")
	for _, v := range g.vars {
		fmt.Fprintf(&g.b, "    acc ^= %s;\n", v)
		acc ^= g.vals[v]
	}
	g.b.WriteString("    print_int(acc);\n    return 0;\n}\n")
	return g.b.String(), fmt.Sprint(acc)
}

func TestFuzzSerialPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	if v, err := strconv.Atoi(os.Getenv("XMTGO_FUZZ_N")); err == nil && v > 0 {
		n = v // extended fuzzing: XMTGO_FUZZ_N=1000 go test -run FuzzSerial
	}
	for seed := 0; seed < n; seed++ {
		src, want := generate(uint64(seed)+1, 24)
		o0 := codegen.Options{OptLevel: 0, PrefetchSlots: 4}
		if got := outputOf(t, src, o0); got != want {
			t.Fatalf("seed %d: -O0 got %q want %q\n%s", seed, got, want, src)
		}
		if got := outputOf(t, src, codegen.DefaultOptions()); got != want {
			t.Fatalf("seed %d: -O1 got %q want %q\n%s", seed, got, want, src)
		}
		if seed%6 == 0 { // cycle-accurate spot checks (slower)
			_, p := compile(t, src, codegen.DefaultOptions())
			if got, _ := runCycle(t, p, config.FPGA64()); got != want {
				t.Fatalf("seed %d: cycle got %q want %q\n%s", seed, got, want, src)
			}
		}
	}
}

// TestFuzzSpawnPrograms: random thread bodies computing f($) into B[$],
// summed with psm; the host computes the same sum.
func TestFuzzSpawnPrograms(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	if v, err := strconv.Atoi(os.Getenv("XMTGO_FUZZ_N")); err == nil && v > 0 {
		n = v
	}
	for seed := 0; seed < n; seed++ {
		g := &progGen{rng: prng.New(uint64(seed) + 500), vals: map[string]int32{}}
		threads := 16 + g.rng.Intn(49)
		// Expression over $ and two broadcast constants.
		g.vars = []string{"$", "k1", "k2"}
		k1 := int32(g.rng.Intn(200) - 100)
		k2 := int32(g.rng.Intn(200) - 100)
		// Build once symbolically, then evaluate per thread id.
		exprSrc := ""
		var total int32
		for id := int32(0); id < int32(threads); id++ {
			g2 := &progGen{rng: prng.New(uint64(seed) + 500), vals: map[string]int32{
				"$": id, "k1": k1, "k2": k2,
			}}
			g2.vars = g.vars
			s, v := g2.expr(3)
			exprSrc = s
			total += v
		}
		src := fmt.Sprintf(`
int B[%d];
int total = 0;
int main() {
    int k1 = %d;
    int k2 = %d;
    spawn(0, %d) {
        int v = %s;
        B[$] = v;
        psm(v, total);
    }
    print_int(total);
    return 0;
}`, threads, k1, k2, threads-1, exprSrc)
		want := fmt.Sprint(total)
		if got := outputOf(t, src, codegen.DefaultOptions()); got != want {
			t.Fatalf("seed %d: functional got %q want %q\n%s", seed, got, want, src)
		}
		if seed%5 == 0 {
			_, p := compile(t, src, codegen.DefaultOptions())
			if got, _ := runCycle(t, p, config.FPGA64()); got != want {
				t.Fatalf("seed %d: cycle got %q want %q\n%s", seed, got, want, src)
			}
		}
	}
}
