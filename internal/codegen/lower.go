// Package codegen is the back half of the XMTC compiler's core pass: it
// lowers the checked (and pre-passed) AST to IR, runs the optimizer under
// the XMT memory-model constraints, applies the XMT-specific optimizations
// (non-blocking stores, prefetch insertion, live-register broadcast), and
// performs register allocation and assembly emission. Register allocation
// for parallel code is done as if the code were serial (paper §IV-A), with
// the added rule that values inside a spawn region must never spill — the
// compiler "checks if the available registers suffice and produces a
// register spill error otherwise" (§IV-D).
package codegen

import (
	"fmt"

	"xmtgo/internal/ir"
	"xmtgo/internal/isa"
	"xmtgo/internal/xmtc"
)

// lowerer converts one function to IR.
type lowerer struct {
	cg  *Compiler
	fn  *xmtc.FuncDecl
	f   *ir.Func
	cur *ir.Block

	locals   map[*xmtc.Symbol]ir.VReg // register-resident locals
	slots    map[*xmtc.Symbol]int32   // frame-resident locals: byte offsets
	needSlot map[*xmtc.Symbol]bool    // address-taken locals (pre-scan)

	breakT []*ir.Block
	contT  []*ir.Block

	spawnID int
	tidReg  ir.VReg
	// privates are symbols declared inside the current spawn body.
	privates map[*xmtc.Symbol]bool

	labelN int
}

func (lo *lowerer) errf(pos xmtc.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

func (lo *lowerer) label(prefix string) string {
	lo.labelN++
	return fmt.Sprintf("%s_%s_%d", prefix, lo.fn.Name, lo.labelN)
}

func (lo *lowerer) emit(in ir.Instr) {
	if in.A == 0 && in.B == 0 && in.Dst == 0 {
		// Zero-value instructions are fine; fields default to vreg 0 only
		// when explicitly set by callers.
	}
	lo.cur.Emit(in)
}

func (lo *lowerer) newBlock(prefix string) *ir.Block {
	b := lo.f.NewBlock(lo.label(prefix))
	b.SpawnID = lo.spawnID
	return b
}

// lowerFunc builds the IR for one function definition.
func (cg *Compiler) lowerFunc(fd *xmtc.FuncDecl) (*ir.Func, error) {
	lo := &lowerer{
		cg:       cg,
		fn:       fd,
		f:        &ir.Func{Name: fd.Name, NumArgs: len(fd.Params), RetVoid: fd.Ret.Kind == xmtc.KVoid},
		locals:   make(map[*xmtc.Symbol]ir.VReg),
		slots:    make(map[*xmtc.Symbol]int32),
		privates: make(map[*xmtc.Symbol]bool),
	}
	entry := lo.f.NewBlock("entry_" + fd.Name)
	lo.cur = entry

	// Decide which locals need memory (frame slots): address-taken,
	// arrays, or volatile.
	lo.needSlot = make(map[*xmtc.Symbol]bool)
	collectSlotLocals(fd.Body, lo.needSlot)
	for _, p := range fd.Params {
		if lo.needSlot[p.Sym] {
			lo.addSlot(p.Sym)
		}
	}

	// Bind parameters.
	for i, p := range fd.Params {
		v := lo.f.NewVReg()
		lo.f.ArgRegs = append(lo.f.ArgRegs, v)
		_ = i
		if off, isSlot := lo.slots[p.Sym]; isSlot {
			addr := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: addr, Imm: off, A: ir.NoReg, B: ir.NoReg})
			lo.emit(ir.Instr{Op: ir.Store, A: addr, B: v, Imm: 0, Size: 4})
		} else {
			lo.locals[p.Sym] = v
		}
	}

	if err := lo.stmt(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return.
	if !lo.cur.Terminated() {
		lo.emit(ir.Instr{Op: ir.Ret, A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg})
	}
	return lo.f, nil
}

// collectSlotLocals finds locals that must live in memory.
func collectSlotLocals(s xmtc.Stmt, out map[*xmtc.Symbol]bool) {
	var walkE func(e xmtc.Expr)
	walkE = func(e xmtc.Expr) {
		switch n := e.(type) {
		case *xmtc.Unary:
			if n.Op == xmtc.AND {
				if id, ok := n.X.(*xmtc.Ident); ok && id.Sym != nil &&
					(id.Sym.Kind == xmtc.SymLocal || id.Sym.Kind == xmtc.SymParam) &&
					id.Sym.Type.Kind != xmtc.KArray {
					out[id.Sym] = true
				}
			}
			walkE(n.X)
		case *xmtc.Binary:
			walkE(n.X)
			walkE(n.Y)
		case *xmtc.Assign:
			walkE(n.LHS)
			walkE(n.RHS)
		case *xmtc.IncDec:
			walkE(n.X)
		case *xmtc.Cond:
			walkE(n.C)
			walkE(n.T)
			walkE(n.F)
		case *xmtc.Call:
			for _, a := range n.Args {
				walkE(a)
			}
		case *xmtc.Index:
			walkE(n.X)
			walkE(n.I)
		case *xmtc.Member:
			walkE(n.X)
		case *xmtc.Cast:
			walkE(n.X)
		}
	}
	var walkS func(s xmtc.Stmt)
	walkS = func(s xmtc.Stmt) {
		switch n := s.(type) {
		case *xmtc.BlockStmt:
			for _, st := range n.List {
				walkS(st)
			}
		case *xmtc.DeclStmt:
			if n.Decl.Type.Kind == xmtc.KArray || n.Decl.Type.Kind == xmtc.KStruct || n.Decl.Type.Volatile {
				out[n.Decl.Sym] = true
			}
			if n.Decl.Init != nil {
				walkE(n.Decl.Init)
			}
			for _, e := range n.Decl.InitList {
				walkE(e)
			}
		case *xmtc.ExprStmt:
			walkE(n.X)
		case *xmtc.IfStmt:
			walkE(n.Cond)
			walkS(n.Then)
			if n.Else != nil {
				walkS(n.Else)
			}
		case *xmtc.WhileStmt:
			walkE(n.Cond)
			walkS(n.Body)
		case *xmtc.DoStmt:
			walkS(n.Body)
			walkE(n.Cond)
		case *xmtc.ForStmt:
			if n.Init != nil {
				walkS(n.Init)
			}
			if n.Cond != nil {
				walkE(n.Cond)
			}
			if n.Post != nil {
				walkE(n.Post)
			}
			walkS(n.Body)
		case *xmtc.ReturnStmt:
			if n.X != nil {
				walkE(n.X)
			}
		case *xmtc.SwitchStmt:
			walkE(n.Tag)
			for _, cl := range n.Cases {
				for _, st := range cl.Body {
					walkS(st)
				}
			}
		case *xmtc.SpawnStmt:
			walkE(n.Low)
			walkE(n.High)
			walkS(n.Body)
		}
	}
	walkS(s)
}

func (lo *lowerer) addSlot(sym *xmtc.Symbol) int32 {
	size := sym.Type.Size()
	align := sym.Type.Align()
	off := (lo.f.FrameLocals + align - 1) &^ (align - 1)
	lo.f.FrameLocals = off + size
	lo.slots[sym] = off
	return off
}

// --- statements ---

func (lo *lowerer) stmt(s xmtc.Stmt) error {
	switch n := s.(type) {
	case *xmtc.BlockStmt:
		for _, st := range n.List {
			if err := lo.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *xmtc.EmptyStmt:
		return nil
	case *xmtc.DeclStmt:
		return lo.declStmt(n)
	case *xmtc.ExprStmt:
		_, err := lo.expr(n.X)
		return err
	case *xmtc.IfStmt:
		return lo.ifStmt(n)
	case *xmtc.WhileStmt:
		return lo.whileStmt(n)
	case *xmtc.DoStmt:
		return lo.doStmt(n)
	case *xmtc.ForStmt:
		return lo.forStmt(n)
	case *xmtc.BreakStmt:
		if len(lo.breakT) == 0 {
			return lo.errf(n.Pos, "break outside loop")
		}
		lo.emit(ir.Instr{Op: ir.Jmp, Target: lo.breakT[len(lo.breakT)-1], A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
		lo.cur = lo.newBlock("dead")
		return nil
	case *xmtc.ContinueStmt:
		if len(lo.contT) == 0 {
			return lo.errf(n.Pos, "continue outside loop")
		}
		lo.emit(ir.Instr{Op: ir.Jmp, Target: lo.contT[len(lo.contT)-1], A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
		lo.cur = lo.newBlock("dead")
		return nil
	case *xmtc.ReturnStmt:
		if n.X == nil {
			lo.emit(ir.Instr{Op: ir.Ret, A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg, Line: n.Pos.Line})
		} else {
			v, err := lo.exprConv(n.X, lo.fn.Ret)
			if err != nil {
				return err
			}
			lo.emit(ir.Instr{Op: ir.Ret, A: v, B: ir.NoReg, Dst: ir.NoReg, Line: n.Pos.Line})
		}
		lo.cur = lo.newBlock("dead")
		return nil
	case *xmtc.SwitchStmt:
		return lo.switchStmt(n)
	case *xmtc.SpawnStmt:
		return lo.spawnStmt(n)
	}
	return lo.errf(s.GetPos(), "internal: cannot lower %T", s)
}

// switchStmt lowers a C switch: a compare-and-branch dispatch chain into
// the clause bodies, which are laid out in order so C fallthrough is the
// natural control flow; break targets the end block.
func (lo *lowerer) switchStmt(n *xmtc.SwitchStmt) error {
	line := n.Pos.Line
	tag, err := lo.exprConv(n.Tag, xmtc.TypeInt)
	if err != nil {
		return err
	}
	bodies := make([]*ir.Block, len(n.Cases))
	for i := range n.Cases {
		bodies[i] = lo.newBlock("case")
	}
	end := lo.newBlock("swend")

	// Dispatch chain (explicitly terminated, so later block creation
	// cannot break fallthrough).
	for i, cl := range n.Cases {
		for _, v := range cl.Values {
			c := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.LdImm, Dst: c, Imm: v, A: ir.NoReg, B: ir.NoReg, Line: line})
			lo.emit(ir.Instr{Op: ir.Br, Cond: ir.BrEQ, A: tag, B: c, Target: bodies[i], Dst: ir.NoReg, Line: line})
		}
	}
	if n.Default >= 0 {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: bodies[n.Default], A: ir.NoReg, B: ir.NoReg, Line: line})
	} else {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: end, A: ir.NoReg, B: ir.NoReg, Line: line})
	}

	lo.breakT = append(lo.breakT, end)
	for i, cl := range n.Cases {
		lo.cur = bodies[i]
		for _, st := range cl.Body {
			if err := lo.stmt(st); err != nil {
				lo.breakT = lo.breakT[:len(lo.breakT)-1]
				return err
			}
		}
		if !lo.cur.Terminated() {
			// C fallthrough into the next clause (or the end).
			next := end
			if i+1 < len(bodies) {
				next = bodies[i+1]
			}
			lo.emit(ir.Instr{Op: ir.Jmp, Target: next, A: ir.NoReg, B: ir.NoReg, Line: line})
		}
	}
	lo.breakT = lo.breakT[:len(lo.breakT)-1]
	lo.moveBlockToEnd(end)
	lo.cur = end
	return nil
}

func (lo *lowerer) declStmt(n *xmtc.DeclStmt) error {
	d := n.Decl
	sym := d.Sym
	if lo.spawnID > 0 {
		lo.privates[sym] = true
	}
	if d.Type.Kind == xmtc.KArray || d.Type.Kind == xmtc.KStruct || d.Type.Volatile || lo.isSlotCandidate(sym) {
		if lo.spawnID > 0 {
			return lo.errf(d.Pos, "%q requires stack storage inside parallel code (no parallel stack in this release)", d.Name)
		}
		if _, ok := lo.slots[sym]; !ok {
			lo.addSlot(sym)
		}
		if d.Init != nil {
			v, err := lo.exprConv(d.Init, d.Type)
			if err != nil {
				return err
			}
			addr := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: addr, Imm: lo.slots[sym], A: ir.NoReg, B: ir.NoReg})
			lo.storeTo(addr, 0, d.Type, v, d.Pos.Line)
		}
		for i, e := range d.InitList {
			v, err := lo.exprConv(e, d.Type.Elem)
			if err != nil {
				return err
			}
			addr := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: addr, Imm: lo.slots[sym], A: ir.NoReg, B: ir.NoReg})
			lo.storeTo(addr, int32(i)*d.Type.Elem.Size(), d.Type.Elem, v, d.Pos.Line)
		}
		return nil
	}
	v := lo.f.NewVReg()
	lo.locals[sym] = v
	if d.Init != nil {
		iv, err := lo.exprConv(d.Init, d.Type)
		if err != nil {
			return err
		}
		lo.emit(ir.Instr{Op: ir.Mov, Dst: v, A: iv, B: ir.NoReg, Line: d.Pos.Line})
	} else {
		lo.emit(ir.Instr{Op: ir.LdImm, Dst: v, Imm: 0, A: ir.NoReg, B: ir.NoReg, Line: d.Pos.Line})
	}
	return nil
}

// isSlotCandidate consults the pre-scan (address-taken locals).
func (lo *lowerer) isSlotCandidate(sym *xmtc.Symbol) bool {
	if lo.needSlot[sym] {
		return true
	}
	_, ok := lo.slots[sym]
	return ok
}

func (lo *lowerer) ifStmt(n *xmtc.IfStmt) error {
	thenB := lo.newBlock("then")
	elseB := thenB
	endB := lo.newBlock("endif")
	if n.Else != nil {
		elseB = lo.newBlock("else")
	}
	// Blocks are created in layout order: then, endif[, else]. Reorder so
	// layout is then .. else .. endif.
	lo.reorderTail(n.Else != nil)
	if err := lo.cond(n.Cond, thenB, elseBOrEnd(elseB, endB, n.Else != nil)); err != nil {
		return err
	}
	lo.cur = thenB
	if err := lo.stmt(n.Then); err != nil {
		return err
	}
	if !lo.cur.Terminated() {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: endB, A: ir.NoReg, B: ir.NoReg})
	}
	if n.Else != nil {
		lo.cur = elseB
		if err := lo.stmt(n.Else); err != nil {
			return err
		}
		if !lo.cur.Terminated() {
			lo.emit(ir.Instr{Op: ir.Jmp, Target: endB, A: ir.NoReg, B: ir.NoReg})
		}
	}
	lo.cur = endB
	return nil
}

func elseBOrEnd(elseB, endB *ir.Block, hasElse bool) *ir.Block {
	if hasElse {
		return elseB
	}
	return endB
}

// reorderTail fixes the layout order of the last blocks created by ifStmt
// so fallthrough chains stay natural: [then, endif, else] -> [then, else,
// endif].
func (lo *lowerer) reorderTail(hasElse bool) {
	if !hasElse {
		return
	}
	n := len(lo.f.Blocks)
	// current tail: ..., then, endif, else
	lo.f.Blocks[n-2], lo.f.Blocks[n-1] = lo.f.Blocks[n-1], lo.f.Blocks[n-2]
	for i, b := range lo.f.Blocks {
		b.ID = i
	}
}

func (lo *lowerer) whileStmt(n *xmtc.WhileStmt) error {
	head := lo.newBlock("while")
	body := lo.newBlock("wbody")
	end := lo.newBlock("wend")
	lo.emit(ir.Instr{Op: ir.Jmp, Target: head, A: ir.NoReg, B: ir.NoReg})
	lo.cur = head
	if err := lo.cond(n.Cond, body, end); err != nil {
		return err
	}
	lo.cur = body
	lo.breakT = append(lo.breakT, end)
	lo.contT = append(lo.contT, head)
	err := lo.stmt(n.Body)
	lo.breakT = lo.breakT[:len(lo.breakT)-1]
	lo.contT = lo.contT[:len(lo.contT)-1]
	if err != nil {
		return err
	}
	if !lo.cur.Terminated() {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: head, A: ir.NoReg, B: ir.NoReg})
	}
	lo.moveBlockToEnd(end)
	lo.cur = end
	return nil
}

// moveBlockToEnd puts b last in layout (it was created before body blocks).
func (lo *lowerer) moveBlockToEnd(b *ir.Block) {
	var rest []*ir.Block
	for _, x := range lo.f.Blocks {
		if x != b {
			rest = append(rest, x)
		}
	}
	lo.f.Blocks = append(rest, b)
	for i, x := range lo.f.Blocks {
		x.ID = i
	}
}

func (lo *lowerer) doStmt(n *xmtc.DoStmt) error {
	body := lo.newBlock("dobody")
	cond := lo.newBlock("docond")
	end := lo.newBlock("doend")
	lo.emit(ir.Instr{Op: ir.Jmp, Target: body, A: ir.NoReg, B: ir.NoReg})
	lo.cur = body
	lo.breakT = append(lo.breakT, end)
	lo.contT = append(lo.contT, cond)
	err := lo.stmt(n.Body)
	lo.breakT = lo.breakT[:len(lo.breakT)-1]
	lo.contT = lo.contT[:len(lo.contT)-1]
	if err != nil {
		return err
	}
	if !lo.cur.Terminated() {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: cond, A: ir.NoReg, B: ir.NoReg})
	}
	lo.moveBlockToEnd(cond)
	lo.moveBlockToEnd(end)
	lo.cur = cond
	if err := lo.cond(n.Cond, body, end); err != nil {
		return err
	}
	lo.cur = end
	return nil
}

func (lo *lowerer) forStmt(n *xmtc.ForStmt) error {
	if n.Init != nil {
		if err := lo.stmt(n.Init); err != nil {
			return err
		}
	}
	head := lo.newBlock("for")
	body := lo.newBlock("fbody")
	post := lo.newBlock("fpost")
	end := lo.newBlock("fend")
	lo.emit(ir.Instr{Op: ir.Jmp, Target: head, A: ir.NoReg, B: ir.NoReg})
	lo.cur = head
	if n.Cond != nil {
		if err := lo.cond(n.Cond, body, end); err != nil {
			return err
		}
	} else {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: body, A: ir.NoReg, B: ir.NoReg})
	}
	lo.cur = body
	lo.breakT = append(lo.breakT, end)
	lo.contT = append(lo.contT, post)
	err := lo.stmt(n.Body)
	lo.breakT = lo.breakT[:len(lo.breakT)-1]
	lo.contT = lo.contT[:len(lo.contT)-1]
	if err != nil {
		return err
	}
	if !lo.cur.Terminated() {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: post, A: ir.NoReg, B: ir.NoReg})
	}
	lo.moveBlockToEnd(post)
	lo.cur = post
	if n.Post != nil {
		if _, err := lo.expr(n.Post); err != nil {
			return err
		}
	}
	lo.emit(ir.Instr{Op: ir.Jmp, Target: head, A: ir.NoReg, B: ir.NoReg})
	lo.moveBlockToEnd(end)
	lo.cur = end
	return nil
}

// spawnStmt lowers a parallel spawn into the XMT protocol (paper §IV-D):
// the master evaluates the bounds and executes spawn; each TCU repeatedly
// grabs a virtual thread id with ps on the dedicated spawn counter,
// validates it with chkid (which blocks the TCU when the ids are
// exhausted), runs the body, and loops back.
func (lo *lowerer) spawnStmt(n *xmtc.SpawnStmt) error {
	if lo.spawnID > 0 {
		return lo.errf(n.Pos, "internal: nested spawn survived the pre-pass")
	}
	low, err := lo.exprConv(n.Low, xmtc.TypeInt)
	if err != nil {
		return err
	}
	high, err := lo.exprConv(n.High, xmtc.TypeInt)
	if err != nil {
		return err
	}
	lo.f.SpawnCount++
	id := lo.f.SpawnCount

	// The spawn instruction gets a fresh block at the current end of the
	// layout so the broadcast region (spawn .. join) is a contiguous run
	// of blocks in the emitted assembly.
	preB := lo.newBlock("prespawn")
	lo.emit(ir.Instr{Op: ir.Jmp, Target: preB, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
	lo.cur = preB
	lo.emit(ir.Instr{Op: ir.Spawn, A: low, B: high, Imm: int32(id), Dst: ir.NoReg, Line: n.Pos.Line})

	lo.spawnID = id
	lo.privates = make(map[*xmtc.Symbol]bool)
	grab := lo.newBlock("grab")
	lo.cur = grab
	one := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.LdImm, Dst: one, Imm: 1, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
	tid := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.Ps, Dst: tid, A: one, G: uint8(isa.GRegSpawn), B: ir.NoReg, Line: n.Pos.Line})
	lo.emit(ir.Instr{Op: ir.Chkid, A: tid, B: ir.NoReg, Dst: ir.NoReg, Line: n.Pos.Line})
	savedTid := lo.tidReg
	lo.tidReg = tid

	if err := lo.stmt(n.Body); err != nil {
		return err
	}
	if !lo.cur.Terminated() {
		lo.emit(ir.Instr{Op: ir.Jmp, Target: grab, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
	}
	joinB := lo.newBlock("join")
	lo.cur = joinB
	lo.emit(ir.Instr{Op: ir.Join, Imm: int32(id), A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg, Line: n.Pos.Line})

	// CFG edge for the master's control flow: after all virtual threads
	// complete, execution resumes past the join. Without this edge the
	// continuation would look unreachable (the grab loop never branches
	// to it) and liveness across the parallel section would be lost.
	for i := range preB.Instrs {
		if preB.Instrs[i].Op == ir.Spawn {
			preB.Instrs[i].Target = joinB
		}
	}

	lo.tidReg = savedTid
	lo.spawnID = 0
	cont := lo.newBlock("postjoin")
	lo.cur = cont
	return nil
}
