package codegen

import (
	"math"

	"xmtgo/internal/ir"
	"xmtgo/internal/xmtc"
)

// lvKind discriminates lvalue locations.
type lvKind uint8

const (
	lvReg  lvKind = iota // register-resident local
	lvMem                // memory: base register + offset
	lvGReg               // ps-base global living in a global register
)

type lval struct {
	kind lvKind
	reg  ir.VReg // lvReg
	base ir.VReg // lvMem
	off  int32
	g    uint8 // lvGReg
	t    *xmtc.Type
	vol  bool
	sym  *xmtc.Symbol // lvReg: underlying symbol (for spawn-write checks)
}

func memSize(t *xmtc.Type) (size uint8, signed bool) {
	if t.Kind == xmtc.KChar {
		return 1, true
	}
	return 4, false
}

// loadLV reads an lvalue into a vreg.
func (lo *lowerer) loadLV(lv lval, line int) ir.VReg {
	switch lv.kind {
	case lvReg:
		return lv.reg
	case lvGReg:
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Grr, Dst: d, G: lv.g, A: ir.NoReg, B: ir.NoReg, Line: line})
		return d
	default:
		d := lo.f.NewVReg()
		size, signed := memSize(lv.t)
		lo.emit(ir.Instr{Op: ir.Load, Dst: d, A: lv.base, Imm: lv.off,
			Size: size, Signed: signed, Volatile: lv.vol, B: ir.NoReg, Line: line})
		return d
	}
}

// storeLV writes v to an lvalue.
func (lo *lowerer) storeLV(lv lval, v ir.VReg, line int) error {
	switch lv.kind {
	case lvReg:
		if lo.spawnID > 0 && lv.sym != nil && !lo.privates[lv.sym] && lv.reg != lo.tidReg {
			return lo.errf(xmtc.Pos{Line: line, File: lo.fn.GetPos().File},
				"write to serial-scope variable %q inside a spawn block would be lost (illegal dataflow; the outlining pre-pass normally rewrites this by reference)", lv.sym.Name)
		}
		lo.emit(ir.Instr{Op: ir.Mov, Dst: lv.reg, A: v, B: ir.NoReg, Line: line})
	case lvGReg:
		lo.emit(ir.Instr{Op: ir.Grw, G: lv.g, A: v, B: ir.NoReg, Dst: ir.NoReg, Line: line})
	default:
		size, _ := memSize(lv.t)
		lo.emit(ir.Instr{Op: ir.Store, A: lv.base, B: v, Imm: lv.off,
			Size: size, Volatile: lv.vol, Dst: ir.NoReg, Line: line})
	}
	return nil
}

// storeTo is a raw memory store helper.
func (lo *lowerer) storeTo(base ir.VReg, off int32, t *xmtc.Type, v ir.VReg, line int) {
	size, _ := memSize(t)
	lo.emit(ir.Instr{Op: ir.Store, A: base, B: v, Imm: off, Size: size,
		Volatile: t.Volatile, Dst: ir.NoReg, Line: line})
}

// lvalue lowers an lvalue expression to a location.
func (lo *lowerer) lvalue(e xmtc.Expr) (lval, error) {
	switch n := e.(type) {
	case *xmtc.Ident:
		sym := n.Sym
		switch sym.Kind {
		case xmtc.SymLocal, xmtc.SymParam:
			if off, ok := lo.slots[sym]; ok {
				if lo.spawnID > 0 {
					return lval{}, lo.errf(n.Pos, "%q lives on the serial stack and cannot be accessed from parallel code", sym.Name)
				}
				base := lo.f.NewVReg()
				lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: base, Imm: off, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
				return lval{kind: lvMem, base: base, off: 0, t: sym.Type, vol: sym.Type.Volatile}, nil
			}
			return lval{kind: lvReg, reg: lo.locals[sym], t: sym.Type, sym: sym}, nil
		case xmtc.SymGlobal:
			if sym.PsBase {
				return lval{kind: lvGReg, g: sym.GReg, t: sym.Type}, nil
			}
			base := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.LdSym, Dst: base, Sym: sym.Name, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
			return lval{kind: lvMem, base: base, off: 0, t: sym.Type, vol: sym.Type.Volatile}, nil
		}
		return lval{}, lo.errf(n.Pos, "cannot assign to %q", n.Name)
	case *xmtc.Index:
		base, off, err := lo.indexAddr(n)
		if err != nil {
			return lval{}, err
		}
		t := n.TypeOf()
		return lval{kind: lvMem, base: base, off: off, t: t, vol: t.Volatile}, nil
	case *xmtc.Unary:
		if n.Op == xmtc.MUL {
			p, err := lo.expr(n.X)
			if err != nil {
				return lval{}, err
			}
			t := n.TypeOf()
			return lval{kind: lvMem, base: p, off: 0, t: t, vol: t.Volatile}, nil
		}
	case *xmtc.Member:
		base, off, err := lo.memberLoc(n)
		if err != nil {
			return lval{}, err
		}
		t := n.TypeOf()
		return lval{kind: lvMem, base: base, off: off, t: t, vol: t.Volatile}, nil
	}
	return lval{}, lo.errf(e.GetPos(), "expression is not an lvalue")
}

// memberLoc computes the (base, offset) location of X.f / X->f.
func (lo *lowerer) memberLoc(n *xmtc.Member) (ir.VReg, int32, error) {
	if n.Arrow {
		p, err := lo.expr(n.X)
		if err != nil {
			return 0, 0, err
		}
		return p, n.Field.Offset, nil
	}
	base, off, err := lo.structAddr(n.X)
	if err != nil {
		return 0, 0, err
	}
	return base, off + n.Field.Offset, nil
}

// structAddr computes the address of a struct-valued expression.
func (lo *lowerer) structAddr(e xmtc.Expr) (ir.VReg, int32, error) {
	switch n := e.(type) {
	case *xmtc.Ident:
		sym := n.Sym
		if sym.Kind == xmtc.SymGlobal {
			base := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.LdSym, Dst: base, Sym: sym.Name, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
			return base, 0, nil
		}
		if off, ok := lo.slots[sym]; ok {
			if lo.spawnID > 0 {
				return 0, 0, lo.errf(n.Pos, "%q lives on the serial stack and cannot be accessed from parallel code", sym.Name)
			}
			base := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: base, Imm: off, A: ir.NoReg, B: ir.NoReg, Line: n.Pos.Line})
			return base, 0, nil
		}
		return 0, 0, lo.errf(n.Pos, "internal: struct %q has no storage", n.Name)
	case *xmtc.Member:
		return lo.memberLoc(n)
	case *xmtc.Index:
		return lo.indexAddr(n)
	case *xmtc.Unary:
		if n.Op == xmtc.MUL {
			p, err := lo.expr(n.X)
			return p, 0, err
		}
	}
	return 0, 0, lo.errf(e.GetPos(), "cannot take the address of this struct expression")
}

// indexAddr computes the address of X[I] as (base, constant offset).
func (lo *lowerer) indexAddr(n *xmtc.Index) (ir.VReg, int32, error) {
	base, err := lo.expr(n.X) // arrays yield their address
	if err != nil {
		return 0, 0, err
	}
	elemSize := n.TypeOf().Size()
	if c, ok := xmtc.FoldConst(n.I); ok {
		return base, c * elemSize, nil
	}
	idx, err := lo.exprConv(n.I, xmtc.TypeInt)
	if err != nil {
		return 0, 0, err
	}
	scaled := lo.scale(idx, elemSize, n.Pos.Line)
	sum := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.Add, Dst: sum, A: base, B: scaled, Line: n.Pos.Line})
	return sum, 0, nil
}

// scale multiplies idx by a (positive) element size.
func (lo *lowerer) scale(idx ir.VReg, size int32, line int) ir.VReg {
	if size == 1 {
		return idx
	}
	d := lo.f.NewVReg()
	if size&(size-1) == 0 {
		sh := int32(0)
		for s := size; s > 1; s >>= 1 {
			sh++
		}
		lo.emit(ir.Instr{Op: ir.ShlImm, Dst: d, A: idx, Imm: sh, B: ir.NoReg, Line: line})
		return d
	}
	c := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.LdImm, Dst: c, Imm: size, A: ir.NoReg, B: ir.NoReg, Line: line})
	lo.emit(ir.Instr{Op: ir.Mul, Dst: d, A: idx, B: c, Line: line})
	return d
}

// conv converts a value between scalar types.
func (lo *lowerer) conv(v ir.VReg, from, to *xmtc.Type, line int) ir.VReg {
	if from == nil || to == nil || from.Kind == to.Kind {
		return v
	}
	isF := func(t *xmtc.Type) bool { return t.Kind == xmtc.KFloat }
	switch {
	case isF(from) && !isF(to):
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.CvtFI, Dst: d, A: v, B: ir.NoReg, Line: line})
		v = d
		from = xmtc.TypeInt
	case !isF(from) && isF(to):
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.CvtIF, Dst: d, A: v, B: ir.NoReg, Line: line})
		return d
	}
	if to.Kind == xmtc.KChar && from.Kind != xmtc.KChar {
		// Truncate and sign-extend to char width.
		t1 := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.ShlImm, Dst: t1, A: v, Imm: 24, B: ir.NoReg, Line: line})
		t2 := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.SarImm, Dst: t2, A: t1, Imm: 24, B: ir.NoReg, Line: line})
		return t2
	}
	return v
}

// exprConv lowers an expression and converts it to the target type.
func (lo *lowerer) exprConv(e xmtc.Expr, to *xmtc.Type) (ir.VReg, error) {
	v, err := lo.expr(e)
	if err != nil {
		return 0, err
	}
	return lo.conv(v, decayT(e.TypeOf()), to, e.GetPos().Line), nil
}

func decayT(t *xmtc.Type) *xmtc.Type {
	if t != nil && t.Kind == xmtc.KArray {
		return xmtc.PtrTo(t.Elem)
	}
	return t
}

// expr lowers an expression to a value vreg (arrays yield addresses).
func (lo *lowerer) expr(e xmtc.Expr) (ir.VReg, error) {
	line := e.GetPos().Line
	switch n := e.(type) {
	case *xmtc.IntLit:
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.LdImm, Dst: d, Imm: int32(n.Val), A: ir.NoReg, B: ir.NoReg, Line: line})
		return d, nil
	case *xmtc.FloatLit:
		d := lo.f.NewVReg()
		bits := int32(math.Float32bits(float32(n.Val)))
		lo.emit(ir.Instr{Op: ir.LdImm, Dst: d, Imm: bits, A: ir.NoReg, B: ir.NoReg, Line: line})
		return d, nil
	case *xmtc.StringLit:
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.LdSym, Dst: d, Sym: n.Label, A: ir.NoReg, B: ir.NoReg, Line: line})
		return d, nil
	case *xmtc.TidExpr:
		return lo.tidReg, nil
	case *xmtc.Ident:
		return lo.identValue(n)
	case *xmtc.SizeofExpr:
		size := int32(0)
		if n.OfType != nil {
			size = n.OfType.Size()
		} else {
			size = n.OfExpr.TypeOf().Size()
		}
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.LdImm, Dst: d, Imm: size, A: ir.NoReg, B: ir.NoReg, Line: line})
		return d, nil
	case *xmtc.Cast:
		v, err := lo.expr(n.X)
		if err != nil {
			return 0, err
		}
		return lo.conv(v, decayT(n.X.TypeOf()), n.To, line), nil
	case *xmtc.Member:
		base, off, err := lo.memberLoc(n)
		if err != nil {
			return 0, err
		}
		t := n.TypeOf()
		if t.Kind == xmtc.KArray || t.Kind == xmtc.KStruct {
			if off == 0 {
				return base, nil
			}
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.AddImm, Dst: d, A: base, Imm: off, B: ir.NoReg, Line: line})
			return d, nil
		}
		d := lo.f.NewVReg()
		size, signed := memSize(t)
		lo.emit(ir.Instr{Op: ir.Load, Dst: d, A: base, Imm: off, Size: size,
			Signed: signed, Volatile: t.Volatile, B: ir.NoReg, Line: line})
		return d, nil
	case *xmtc.Index:
		base, off, err := lo.indexAddr(n)
		if err != nil {
			return 0, err
		}
		t := n.TypeOf()
		if t.Kind == xmtc.KArray || t.Kind == xmtc.KStruct {
			// Aggregate element: the value is its address.
			if off == 0 {
				return base, nil
			}
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.AddImm, Dst: d, A: base, Imm: off, B: ir.NoReg, Line: line})
			return d, nil
		}
		d := lo.f.NewVReg()
		size, signed := memSize(t)
		lo.emit(ir.Instr{Op: ir.Load, Dst: d, A: base, Imm: off, Size: size,
			Signed: signed, Volatile: t.Volatile, B: ir.NoReg, Line: line})
		return d, nil
	case *xmtc.Unary:
		return lo.unary(n)
	case *xmtc.Binary:
		return lo.binary(n)
	case *xmtc.Assign:
		return lo.assign(n)
	case *xmtc.IncDec:
		return lo.incDec(n)
	case *xmtc.Cond:
		return lo.ternary(n)
	case *xmtc.Call:
		return lo.call(n)
	}
	return 0, lo.errf(e.GetPos(), "internal: cannot lower expression %T", e)
}

func (lo *lowerer) identValue(n *xmtc.Ident) (ir.VReg, error) {
	sym := n.Sym
	line := n.Pos.Line
	switch sym.Kind {
	case xmtc.SymLocal, xmtc.SymParam:
		if off, ok := lo.slots[sym]; ok {
			if lo.spawnID > 0 {
				return 0, lo.errf(n.Pos, "%q lives on the serial stack and cannot be accessed from parallel code", sym.Name)
			}
			base := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: base, Imm: off, A: ir.NoReg, B: ir.NoReg, Line: line})
			if sym.Type.Kind == xmtc.KArray || sym.Type.Kind == xmtc.KStruct {
				return base, nil
			}
			d := lo.f.NewVReg()
			size, signed := memSize(sym.Type)
			lo.emit(ir.Instr{Op: ir.Load, Dst: d, A: base, Imm: 0, Size: size,
				Signed: signed, Volatile: sym.Type.Volatile, B: ir.NoReg, Line: line})
			return d, nil
		}
		return lo.locals[sym], nil
	case xmtc.SymGlobal:
		if sym.PsBase {
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.Grr, Dst: d, G: sym.GReg, A: ir.NoReg, B: ir.NoReg, Line: line})
			return d, nil
		}
		base := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.LdSym, Dst: base, Sym: sym.Name, A: ir.NoReg, B: ir.NoReg, Line: line})
		if sym.Type.Kind == xmtc.KArray || sym.Type.Kind == xmtc.KStruct {
			return base, nil
		}
		d := lo.f.NewVReg()
		size, signed := memSize(sym.Type)
		lo.emit(ir.Instr{Op: ir.Load, Dst: d, A: base, Imm: 0, Size: size,
			Signed: signed, Volatile: sym.Type.Volatile, B: ir.NoReg, Line: line})
		return d, nil
	}
	return 0, lo.errf(n.Pos, "cannot use %q as a value", n.Name)
}

func (lo *lowerer) unary(n *xmtc.Unary) (ir.VReg, error) {
	line := n.Pos.Line
	switch n.Op {
	case xmtc.AND: // address-of
		switch x := n.X.(type) {
		case *xmtc.Ident:
			sym := x.Sym
			if sym.Kind == xmtc.SymGlobal {
				if sym.PsBase {
					return 0, lo.errf(n.Pos, "cannot take the address of %q: ps-base globals live in a global register, not memory", sym.Name)
				}
				d := lo.f.NewVReg()
				lo.emit(ir.Instr{Op: ir.LdSym, Dst: d, Sym: sym.Name, A: ir.NoReg, B: ir.NoReg, Line: line})
				return d, nil
			}
			if off, ok := lo.slots[sym]; ok {
				if lo.spawnID > 0 {
					return 0, lo.errf(n.Pos, "cannot take the address of %q in parallel code (no parallel stack)", sym.Name)
				}
				d := lo.f.NewVReg()
				lo.emit(ir.Instr{Op: ir.FrameAddr, Dst: d, Imm: off, A: ir.NoReg, B: ir.NoReg, Line: line})
				return d, nil
			}
			if sym.Type.Kind == xmtc.KPtr && sym.Kind == xmtc.SymParam {
				// &param where param was not slotted cannot happen (the
				// pre-scan slots address-taken params); defensive error.
				return 0, lo.errf(n.Pos, "internal: address of register parameter %q", sym.Name)
			}
			return 0, lo.errf(n.Pos, "internal: address of register local %q", sym.Name)
		case *xmtc.Index:
			base, off, err := lo.indexAddr(x)
			if err != nil {
				return 0, err
			}
			if off == 0 {
				return base, nil
			}
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.AddImm, Dst: d, A: base, Imm: off, B: ir.NoReg, Line: line})
			return d, nil
		case *xmtc.Unary:
			if x.Op == xmtc.MUL {
				return lo.expr(x.X)
			}
		case *xmtc.Member:
			base, off, err := lo.memberLoc(x)
			if err != nil {
				return 0, err
			}
			if off == 0 {
				return base, nil
			}
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.AddImm, Dst: d, A: base, Imm: off, B: ir.NoReg, Line: line})
			return d, nil
		}
		return 0, lo.errf(n.Pos, "& needs an lvalue")
	case xmtc.MUL: // deref
		p, err := lo.expr(n.X)
		if err != nil {
			return 0, err
		}
		t := n.TypeOf()
		if t.Kind == xmtc.KArray || t.Kind == xmtc.KStruct {
			return p, nil
		}
		d := lo.f.NewVReg()
		size, signed := memSize(t)
		lo.emit(ir.Instr{Op: ir.Load, Dst: d, A: p, Imm: 0, Size: size,
			Signed: signed, Volatile: t.Volatile, B: ir.NoReg, Line: line})
		return d, nil
	case xmtc.SUB:
		v, err := lo.expr(n.X)
		if err != nil {
			return 0, err
		}
		d := lo.f.NewVReg()
		if n.TypeOf().Kind == xmtc.KFloat {
			lo.emit(ir.Instr{Op: ir.FNeg, Dst: d, A: v, B: ir.NoReg, Line: line})
		} else {
			z := lo.zero(line)
			lo.emit(ir.Instr{Op: ir.Sub, Dst: d, A: z, B: v, Line: line})
		}
		return d, nil
	case xmtc.TILDE:
		v, err := lo.expr(n.X)
		if err != nil {
			return 0, err
		}
		z := lo.zero(line)
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Nor, Dst: d, A: v, B: z, Line: line})
		return d, nil
	case xmtc.NOT:
		v, err := lo.expr(n.X)
		if err != nil {
			return 0, err
		}
		if decayT(n.X.TypeOf()).Kind == xmtc.KFloat {
			z := lo.zero(line)
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FEq, Dst: d, A: v, B: z, Line: line})
			return d, nil
		}
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.SltUImm, Dst: d, A: v, Imm: 1, B: ir.NoReg, Line: line})
		return d, nil
	}
	return 0, lo.errf(n.Pos, "internal: unary %s", n.Op)
}

func (lo *lowerer) zero(line int) ir.VReg {
	d := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.LdImm, Dst: d, Imm: 0, A: ir.NoReg, B: ir.NoReg, Line: line})
	return d
}
