package codegen

import (
	"xmtgo/internal/ir"
	"xmtgo/internal/isa"
	"xmtgo/internal/xmtc"
)

func isUnsignedT(t *xmtc.Type) bool { return t.Kind == xmtc.KUnsigned || t.Kind == xmtc.KPtr }

func (lo *lowerer) binary(n *xmtc.Binary) (ir.VReg, error) {
	line := n.Pos.Line
	switch n.Op {
	case xmtc.COMMA:
		if _, err := lo.expr(n.X); err != nil {
			return 0, err
		}
		return lo.expr(n.Y)
	case xmtc.ANDAND, xmtc.OROR:
		// Value form: materialize 0/1 through short-circuit blocks.
		res := lo.f.NewVReg()
		tB := lo.newBlock("sc_t")
		fB := lo.newBlock("sc_f")
		end := lo.newBlock("sc_end")
		if err := lo.cond(n, tB, fB); err != nil {
			return 0, err
		}
		lo.cur = tB
		lo.emit(ir.Instr{Op: ir.LdImm, Dst: res, Imm: 1, A: ir.NoReg, B: ir.NoReg, Line: line})
		lo.emit(ir.Instr{Op: ir.Jmp, Target: end, A: ir.NoReg, B: ir.NoReg})
		lo.cur = fB
		lo.emit(ir.Instr{Op: ir.LdImm, Dst: res, Imm: 0, A: ir.NoReg, B: ir.NoReg, Line: line})
		lo.emit(ir.Instr{Op: ir.Jmp, Target: end, A: ir.NoReg, B: ir.NoReg})
		lo.cur = end
		return res, nil
	case xmtc.EQ, xmtc.NE, xmtc.LT, xmtc.GT, xmtc.LE, xmtc.GE:
		return lo.compareValue(n)
	}

	xt, yt := decayT(n.X.TypeOf()), decayT(n.Y.TypeOf())
	isFloat := n.TypeOf().Kind == xmtc.KFloat

	// Pointer arithmetic.
	if n.Op == xmtc.ADD || n.Op == xmtc.SUB {
		if xt.Kind == xmtc.KPtr && yt.IsInteger() {
			p, err := lo.expr(n.X)
			if err != nil {
				return 0, err
			}
			i, err := lo.expr(n.Y)
			if err != nil {
				return 0, err
			}
			s := lo.scale(i, xt.Elem.Size(), line)
			d := lo.f.NewVReg()
			op := ir.Add
			if n.Op == xmtc.SUB {
				op = ir.Sub
			}
			lo.emit(ir.Instr{Op: op, Dst: d, A: p, B: s, Line: line})
			return d, nil
		}
		if n.Op == xmtc.ADD && yt.Kind == xmtc.KPtr && xt.IsInteger() {
			i, err := lo.expr(n.X)
			if err != nil {
				return 0, err
			}
			p, err := lo.expr(n.Y)
			if err != nil {
				return 0, err
			}
			s := lo.scale(i, yt.Elem.Size(), line)
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.Add, Dst: d, A: p, B: s, Line: line})
			return d, nil
		}
		if n.Op == xmtc.SUB && xt.Kind == xmtc.KPtr && yt.Kind == xmtc.KPtr {
			a, err := lo.expr(n.X)
			if err != nil {
				return 0, err
			}
			b, err := lo.expr(n.Y)
			if err != nil {
				return 0, err
			}
			diff := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.Sub, Dst: diff, A: a, B: b, Line: line})
			size := xt.Elem.Size()
			if size == 1 {
				return diff, nil
			}
			if size&(size-1) == 0 {
				sh := int32(0)
				for s := size; s > 1; s >>= 1 {
					sh++
				}
				d := lo.f.NewVReg()
				lo.emit(ir.Instr{Op: ir.SarImm, Dst: d, A: diff, Imm: sh, B: ir.NoReg, Line: line})
				return d, nil
			}
			c := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.LdImm, Dst: c, Imm: size, A: ir.NoReg, B: ir.NoReg, Line: line})
			d := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.Div, Dst: d, A: diff, B: c, Line: line})
			return d, nil
		}
	}

	common := xmtc.TypeInt
	if isFloat {
		common = xmtc.TypeFloat
	} else if xt.Kind == xmtc.KUnsigned || yt.Kind == xmtc.KUnsigned {
		common = xmtc.TypeUnsigned
	}
	a, err := lo.exprConv(n.X, common)
	if err != nil {
		return 0, err
	}
	b, err := lo.exprConv(n.Y, common)
	if err != nil {
		return 0, err
	}
	d := lo.f.NewVReg()
	var op ir.Op
	unsigned := common.Kind == xmtc.KUnsigned
	switch n.Op {
	case xmtc.ADD:
		op = ir.Add
		if isFloat {
			op = ir.FAdd
		}
	case xmtc.SUB:
		op = ir.Sub
		if isFloat {
			op = ir.FSub
		}
	case xmtc.MUL:
		op = ir.Mul
		if isFloat {
			op = ir.FMul
		}
	case xmtc.DIV:
		switch {
		case isFloat:
			op = ir.FDiv
		case unsigned:
			op = ir.DivU
		default:
			op = ir.Div
		}
	case xmtc.REM:
		op = ir.Rem
		if unsigned {
			op = ir.RemU
		}
	case xmtc.AND:
		op = ir.And
	case xmtc.OR:
		op = ir.Or
	case xmtc.XOR:
		op = ir.Xor
	case xmtc.SHL:
		op = ir.Shl
	case xmtc.SHR:
		op = ir.Sar
		if unsigned {
			op = ir.Shr
		}
	default:
		return 0, lo.errf(n.Pos, "internal: binary %s", n.Op)
	}
	lo.emit(ir.Instr{Op: op, Dst: d, A: a, B: b, Line: line})
	return d, nil
}

// compareValue materializes a comparison as 0/1.
func (lo *lowerer) compareValue(n *xmtc.Binary) (ir.VReg, error) {
	line := n.Pos.Line
	xt, yt := decayT(n.X.TypeOf()), decayT(n.Y.TypeOf())
	isFloat := xt.Kind == xmtc.KFloat || yt.Kind == xmtc.KFloat
	common := xmtc.TypeInt
	if isFloat {
		common = xmtc.TypeFloat
	} else if isUnsignedT(xt) || isUnsignedT(yt) {
		common = xmtc.TypeUnsigned
	}
	a, err := lo.exprConv(n.X, common)
	if err != nil {
		return 0, err
	}
	b, err := lo.exprConv(n.Y, common)
	if err != nil {
		return 0, err
	}
	op := n.Op
	// Normalize GT/GE to LT/LE by swapping.
	if op == xmtc.GT {
		a, b, op = b, a, xmtc.LT
	} else if op == xmtc.GE {
		a, b, op = b, a, xmtc.LE
	}
	d := lo.f.NewVReg()
	if isFloat {
		switch op {
		case xmtc.EQ:
			lo.emit(ir.Instr{Op: ir.FEq, Dst: d, A: a, B: b, Line: line})
		case xmtc.NE:
			t := lo.f.NewVReg()
			lo.emit(ir.Instr{Op: ir.FEq, Dst: t, A: a, B: b, Line: line})
			lo.emit(ir.Instr{Op: ir.XorImm, Dst: d, A: t, Imm: 1, B: ir.NoReg, Line: line})
		case xmtc.LT:
			lo.emit(ir.Instr{Op: ir.FLt, Dst: d, A: a, B: b, Line: line})
		case xmtc.LE:
			lo.emit(ir.Instr{Op: ir.FLe, Dst: d, A: a, B: b, Line: line})
		}
		return d, nil
	}
	unsigned := common.Kind == xmtc.KUnsigned
	slt := ir.SltS
	if unsigned {
		slt = ir.SltU
	}
	switch op {
	case xmtc.EQ:
		t := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Xor, Dst: t, A: a, B: b, Line: line})
		lo.emit(ir.Instr{Op: ir.SltUImm, Dst: d, A: t, Imm: 1, B: ir.NoReg, Line: line})
	case xmtc.NE:
		t := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Xor, Dst: t, A: a, B: b, Line: line})
		z := lo.zero(line)
		lo.emit(ir.Instr{Op: ir.SltU, Dst: d, A: z, B: t, Line: line})
	case xmtc.LT:
		lo.emit(ir.Instr{Op: slt, Dst: d, A: a, B: b, Line: line})
	case xmtc.LE:
		t := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: slt, Dst: t, A: b, B: a, Line: line}) // b < a == a > b
		lo.emit(ir.Instr{Op: ir.XorImm, Dst: d, A: t, Imm: 1, B: ir.NoReg, Line: line})
	}
	return d, nil
}

// cond lowers a boolean expression as control flow into tB/fB. Every block
// it finishes is explicitly terminated, so block layout never matters.
func (lo *lowerer) cond(e xmtc.Expr, tB, fB *ir.Block) error {
	line := e.GetPos().Line
	switch n := e.(type) {
	case *xmtc.Binary:
		switch n.Op {
		case xmtc.ANDAND:
			mid := lo.newBlock("and_mid")
			if err := lo.cond(n.X, mid, fB); err != nil {
				return err
			}
			lo.cur = mid
			return lo.cond(n.Y, tB, fB)
		case xmtc.OROR:
			mid := lo.newBlock("or_mid")
			if err := lo.cond(n.X, tB, mid); err != nil {
				return err
			}
			lo.cur = mid
			return lo.cond(n.Y, tB, fB)
		case xmtc.EQ, xmtc.NE:
			xt, yt := decayT(n.X.TypeOf()), decayT(n.Y.TypeOf())
			if xt.Kind != xmtc.KFloat && yt.Kind != xmtc.KFloat {
				a, err := lo.expr(n.X)
				if err != nil {
					return err
				}
				b, err := lo.expr(n.Y)
				if err != nil {
					return err
				}
				k := ir.BrEQ
				if n.Op == xmtc.NE {
					k = ir.BrNE
				}
				lo.emit(ir.Instr{Op: ir.Br, Cond: k, A: a, B: b, Target: tB, Dst: ir.NoReg, Line: line})
				lo.emit(ir.Instr{Op: ir.Jmp, Target: fB, A: ir.NoReg, B: ir.NoReg, Line: line})
				return nil
			}
		case xmtc.LT, xmtc.GT, xmtc.LE, xmtc.GE:
			// Compute the 0/1 value and branch on it (one slt + branch).
			v, err := lo.compareValue(n)
			if err != nil {
				return err
			}
			lo.emit(ir.Instr{Op: ir.Br, Cond: ir.BrGTZ, A: v, B: ir.NoReg, Target: tB, Dst: ir.NoReg, Line: line})
			lo.emit(ir.Instr{Op: ir.Jmp, Target: fB, A: ir.NoReg, B: ir.NoReg, Line: line})
			return nil
		}
	case *xmtc.Unary:
		if n.Op == xmtc.NOT {
			return lo.cond(n.X, fB, tB)
		}
	case *xmtc.IntLit:
		target := fB
		if n.Val != 0 {
			target = tB
		}
		lo.emit(ir.Instr{Op: ir.Jmp, Target: target, A: ir.NoReg, B: ir.NoReg, Line: line})
		return nil
	}
	// Generic: compare the value against zero.
	v, err := lo.expr(e)
	if err != nil {
		return err
	}
	if decayT(e.TypeOf()).Kind == xmtc.KFloat {
		z := lo.zero(line)
		eq := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.FEq, Dst: eq, A: v, B: z, Line: line})
		lo.emit(ir.Instr{Op: ir.Br, Cond: ir.BrGTZ, A: eq, B: ir.NoReg, Target: fB, Dst: ir.NoReg, Line: line})
		lo.emit(ir.Instr{Op: ir.Jmp, Target: tB, A: ir.NoReg, B: ir.NoReg, Line: line})
		return nil
	}
	z := lo.zero(line)
	lo.emit(ir.Instr{Op: ir.Br, Cond: ir.BrNE, A: v, B: z, Target: tB, Dst: ir.NoReg, Line: line})
	lo.emit(ir.Instr{Op: ir.Jmp, Target: fB, A: ir.NoReg, B: ir.NoReg, Line: line})
	return nil
}

func (lo *lowerer) assign(n *xmtc.Assign) (ir.VReg, error) {
	line := n.Pos.Line
	lv, err := lo.lvalue(n.LHS)
	if err != nil {
		return 0, err
	}
	if n.Op == xmtc.ASSIGN {
		v, err := lo.exprConv(n.RHS, lv.t)
		if err != nil {
			return 0, err
		}
		if err := lo.storeLV(lv, v, line); err != nil {
			return 0, err
		}
		return v, nil
	}
	// Compound assignment.
	cur := lo.loadLV(lv, line)
	lt := decayT(lv.t)
	var bin *xmtc.Binary
	tok := map[xmtc.Tok]xmtc.Tok{
		xmtc.ADDA: xmtc.ADD, xmtc.SUBA: xmtc.SUB, xmtc.MULA: xmtc.MUL,
		xmtc.DIVA: xmtc.DIV, xmtc.REMA: xmtc.REM, xmtc.ANDA: xmtc.AND,
		xmtc.ORA: xmtc.OR, xmtc.XORA: xmtc.XOR, xmtc.SHLA: xmtc.SHL, xmtc.SHRA: xmtc.SHR,
	}[n.Op]
	_ = bin

	// Pointer += / -= scales the increment.
	if lt.Kind == xmtc.KPtr {
		i, err := lo.exprConv(n.RHS, xmtc.TypeInt)
		if err != nil {
			return 0, err
		}
		s := lo.scale(i, lt.Elem.Size(), line)
		d := lo.f.NewVReg()
		op := ir.Add
		if tok == xmtc.SUB {
			op = ir.Sub
		}
		lo.emit(ir.Instr{Op: op, Dst: d, A: cur, B: s, Line: line})
		if err := lo.storeLV(lv, d, line); err != nil {
			return 0, err
		}
		return d, nil
	}

	isFloat := lt.Kind == xmtc.KFloat || decayT(n.RHS.TypeOf()).Kind == xmtc.KFloat
	common := xmtc.TypeInt
	if isFloat {
		common = xmtc.TypeFloat
	} else if lt.Kind == xmtc.KUnsigned || decayT(n.RHS.TypeOf()).Kind == xmtc.KUnsigned {
		common = xmtc.TypeUnsigned
	}
	a := lo.conv(cur, lt, common, line)
	b, err := lo.exprConv(n.RHS, common)
	if err != nil {
		return 0, err
	}
	d := lo.f.NewVReg()
	unsigned := common.Kind == xmtc.KUnsigned
	var op ir.Op
	switch tok {
	case xmtc.ADD:
		op = ir.Add
		if isFloat {
			op = ir.FAdd
		}
	case xmtc.SUB:
		op = ir.Sub
		if isFloat {
			op = ir.FSub
		}
	case xmtc.MUL:
		op = ir.Mul
		if isFloat {
			op = ir.FMul
		}
	case xmtc.DIV:
		switch {
		case isFloat:
			op = ir.FDiv
		case unsigned:
			op = ir.DivU
		default:
			op = ir.Div
		}
	case xmtc.REM:
		op = ir.Rem
		if unsigned {
			op = ir.RemU
		}
	case xmtc.AND:
		op = ir.And
	case xmtc.OR:
		op = ir.Or
	case xmtc.XOR:
		op = ir.Xor
	case xmtc.SHL:
		op = ir.Shl
	case xmtc.SHR:
		op = ir.Sar
		if unsigned {
			op = ir.Shr
		}
	}
	lo.emit(ir.Instr{Op: op, Dst: d, A: a, B: b, Line: line})
	res := lo.conv(d, common, lt, line)
	if err := lo.storeLV(lv, res, line); err != nil {
		return 0, err
	}
	return res, nil
}

func (lo *lowerer) incDec(n *xmtc.IncDec) (ir.VReg, error) {
	line := n.Pos.Line
	lv, err := lo.lvalue(n.X)
	if err != nil {
		return 0, err
	}
	cur := lo.loadLV(lv, line)
	old := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.Mov, Dst: old, A: cur, B: ir.NoReg, Line: line})
	step := int32(1)
	lt := decayT(lv.t)
	if lt.Kind == xmtc.KPtr {
		step = lt.Elem.Size()
	}
	if n.Op == xmtc.DEC {
		step = -step
	}
	d := lo.f.NewVReg()
	lo.emit(ir.Instr{Op: ir.AddImm, Dst: d, A: old, Imm: step, B: ir.NoReg, Line: line})
	if err := lo.storeLV(lv, d, line); err != nil {
		return 0, err
	}
	if n.Pre {
		return d, nil
	}
	return old, nil
}

func (lo *lowerer) ternary(n *xmtc.Cond) (ir.VReg, error) {
	res := lo.f.NewVReg()
	tB := lo.newBlock("tern_t")
	fB := lo.newBlock("tern_f")
	end := lo.newBlock("tern_end")
	if err := lo.cond(n.C, tB, fB); err != nil {
		return 0, err
	}
	lo.cur = tB
	tv, err := lo.exprConv(n.T, n.TypeOf())
	if err != nil {
		return 0, err
	}
	lo.emit(ir.Instr{Op: ir.Mov, Dst: res, A: tv, B: ir.NoReg, Line: n.Pos.Line})
	lo.emit(ir.Instr{Op: ir.Jmp, Target: end, A: ir.NoReg, B: ir.NoReg})
	lo.cur = fB
	fv, err := lo.exprConv(n.F, n.TypeOf())
	if err != nil {
		return 0, err
	}
	lo.emit(ir.Instr{Op: ir.Mov, Dst: res, A: fv, B: ir.NoReg, Line: n.Pos.Line})
	lo.emit(ir.Instr{Op: ir.Jmp, Target: end, A: ir.NoReg, B: ir.NoReg})
	lo.moveBlockToEnd(end)
	lo.cur = end
	return res, nil
}

func (lo *lowerer) call(n *xmtc.Call) (ir.VReg, error) {
	line := n.Pos.Line
	if n.Builtin != xmtc.NotBuiltin {
		return lo.builtin(n)
	}
	fd := n.Sym.Def.(*xmtc.FuncDecl)
	var args []ir.VReg
	for i, a := range n.Args {
		v, err := lo.exprConv(a, fd.Sym.Type.Params[i])
		if err != nil {
			return 0, err
		}
		args = append(args, v)
	}
	lo.f.HasCall = true
	dst := ir.NoReg
	if n.TypeOf().Kind != xmtc.KVoid {
		dst = lo.f.NewVReg()
	}
	lo.emit(ir.Instr{Op: ir.Call, Dst: dst, CallName: n.Name, CallArgs: args, A: ir.NoReg, B: ir.NoReg, Line: line})
	if dst == ir.NoReg {
		return lo.zero(line), nil
	}
	return dst, nil
}

func (lo *lowerer) builtin(n *xmtc.Call) (ir.VReg, error) {
	line := n.Pos.Line
	switch n.Builtin {
	case xmtc.BuiltinPs:
		incLV, err := lo.lvalue(n.Args[0])
		if err != nil {
			return 0, err
		}
		base := n.Args[1].(*xmtc.Ident).Sym
		inc := lo.loadLV(incLV, line)
		// The compiler issues a memory fence before each prefix-sum to
		// enforce the XMT memory model (paper §IV-A).
		lo.emit(ir.Instr{Op: ir.Fence, A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg, Line: line})
		old := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Ps, Dst: old, A: inc, G: base.GReg, B: ir.NoReg, Line: line})
		if err := lo.storeLV(incLV, old, line); err != nil {
			return 0, err
		}
		return old, nil
	case xmtc.BuiltinPsm:
		incLV, err := lo.lvalue(n.Args[0])
		if err != nil {
			return 0, err
		}
		baseLV, err := lo.lvalue(n.Args[1])
		if err != nil {
			return 0, err
		}
		if baseLV.kind != lvMem {
			return 0, lo.errf(n.Pos, "psm base must be a memory location (use ps for global-register bases)")
		}
		inc := lo.loadLV(incLV, line)
		lo.emit(ir.Instr{Op: ir.Fence, A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg, Line: line})
		old := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Psm, Dst: old, A: baseLV.base, Imm: baseLV.off, B: inc, Line: line})
		if err := lo.storeLV(incLV, old, line); err != nil {
			return 0, err
		}
		return old, nil
	case xmtc.BuiltinPrintInt, xmtc.BuiltinPrintChar, xmtc.BuiltinPrintString, xmtc.BuiltinPrintFloat:
		var v ir.VReg
		var err error
		if n.Builtin == xmtc.BuiltinPrintFloat {
			v, err = lo.exprConv(n.Args[0], xmtc.TypeFloat)
		} else {
			v, err = lo.expr(n.Args[0])
		}
		if err != nil {
			return 0, err
		}
		code := map[xmtc.Builtin]int32{
			xmtc.BuiltinPrintInt:    isa.SysPrintInt,
			xmtc.BuiltinPrintChar:   isa.SysPrintChar,
			xmtc.BuiltinPrintString: isa.SysPrintStr,
			xmtc.BuiltinPrintFloat:  isa.SysPrintFloat,
		}[n.Builtin]
		lo.emit(ir.Instr{Op: ir.Sys, Imm: code, A: v, B: ir.NoReg, Dst: ir.NoReg, Line: line})
		return lo.zero(line), nil
	case xmtc.BuiltinCycle:
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Sys, Imm: isa.SysCycle, Dst: d, A: ir.NoReg, B: ir.NoReg, Line: line})
		return d, nil
	case xmtc.BuiltinCheckpoint:
		lo.emit(ir.Instr{Op: ir.Sys, Imm: isa.SysCheckpoint, A: ir.NoReg, B: ir.NoReg, Dst: ir.NoReg, Line: line})
		return lo.zero(line), nil
	case xmtc.BuiltinMalloc:
		v, err := lo.exprConv(n.Args[0], xmtc.TypeInt)
		if err != nil {
			return 0, err
		}
		lo.f.HasCall = true
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.Call, Dst: d, CallName: "malloc", CallArgs: []ir.VReg{v}, A: ir.NoReg, B: ir.NoReg, Line: line})
		return d, nil
	case xmtc.BuiltinPrefetch:
		p, err := lo.expr(n.Args[0])
		if err != nil {
			return 0, err
		}
		lo.emit(ir.Instr{Op: ir.Pref, A: p, Imm: 0, B: ir.NoReg, Dst: ir.NoReg, Line: line})
		return lo.zero(line), nil
	case xmtc.BuiltinReadOnly:
		p, err := lo.expr(n.Args[0])
		if err != nil {
			return 0, err
		}
		d := lo.f.NewVReg()
		lo.emit(ir.Instr{Op: ir.LoadRO, Dst: d, A: p, Imm: 0, Size: 4, B: ir.NoReg, Line: line})
		return d, nil
	}
	return 0, lo.errf(n.Pos, "internal: builtin %d", n.Builtin)
}
