package codegen

import (
	"fmt"
	"sort"

	"xmtgo/internal/ir"
	"xmtgo/internal/isa"
)

// Register allocation is a linear scan over live intervals built from the
// block-level liveness solution. Registers are split into a caller-saved
// pool and a callee-saved pool; intervals that span a call site must take a
// callee-saved register or spill. Intervals that overlap a spawn region
// must not spill: parallel code has no stack, so the allocator reports the
// paper's "register spill error" (§IV-D) instead.

var callerSaved = []isa.Reg{
	isa.RegT0, isa.RegT0 + 1, isa.RegT0 + 2, isa.RegT0 + 3,
	isa.RegT0 + 4, isa.RegT0 + 5, isa.RegT0 + 6, isa.RegT0 + 7,
	isa.RegT8, isa.RegT9, isa.RegV1, isa.RegTID,
}

var calleeSaved = []isa.Reg{
	isa.RegS0, isa.RegS0 + 1, isa.RegS0 + 2, isa.RegS0 + 3,
	isa.RegS0 + 4, isa.RegS0 + 5, isa.RegS0 + 6, isa.RegS0 + 7,
	isa.RegGP,
}

// interval is one vreg's live range over the linearized instruction order.
type interval struct {
	v          ir.VReg
	start, end int
	crossCall  bool
	inSpawn    bool

	reg     isa.Reg
	spilled bool
	slot    int // spill slot index
}

// allocation is the result of register allocation.
type allocation struct {
	regOf     map[ir.VReg]isa.Reg
	slotOf    map[ir.VReg]int
	numSpills int
	usedSaved []isa.Reg // callee-saved registers written (to save/restore)
	// bcast lists the physical registers that must be broadcast before
	// each spawn (live-in registers of the spawn region), per spawn id.
	bcast map[int][]isa.Reg
}

// SpillError is the paper's "register spill error" for parallel code.
type SpillError struct {
	Func string
	VReg ir.VReg
}

func (e *SpillError) Error() string {
	return fmt.Sprintf("codegen: %s: register spill in parallel code (spawn block needs more registers than available; simplify the spawn body or move values to global memory)", e.Func)
}

// linearize numbers instructions in layout order and returns block start
// positions.
func linearize(f *ir.Func) (blockStart []int, total int) {
	blockStart = make([]int, len(f.Blocks))
	pos := 0
	for i, b := range f.Blocks {
		blockStart[i] = pos
		pos += len(b.Instrs) + 1 // +1 keeps block boundaries distinct
	}
	return blockStart, pos
}

// buildIntervals computes live intervals, call-crossing and spawn-overlap
// flags.
func buildIntervals(f *ir.Func) ([]*interval, map[int][2]int) {
	f.Liveness()
	blockStart, _ := linearize(f)

	iv := make(map[ir.VReg]*interval)
	touch := func(v ir.VReg, p int) {
		it, ok := iv[v]
		if !ok {
			it = &interval{v: v, start: p, end: p}
			iv[v] = it
			return
		}
		if p < it.start {
			it.start = p
		}
		if p > it.end {
			it.end = p
		}
	}

	var callPos []int
	inSpawnSet := make(map[ir.VReg]bool)
	spawnSpan := make(map[int][2]int) // spawn id -> [spawnPos, joinPos] (informational)

	var buf []ir.VReg
	for bi, b := range f.Blocks {
		bStart := blockStart[bi]
		bEnd := bStart + len(b.Instrs)
		for v := range b.LiveIn() {
			touch(v, bStart)
			if b.SpawnID > 0 {
				inSpawnSet[v] = true
			}
		}
		for v := range b.LiveOut() {
			touch(v, bEnd)
			if b.SpawnID > 0 {
				inSpawnSet[v] = true
			}
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			p := bStart + ii
			buf = in.Uses(buf)
			for _, u := range buf {
				touch(u, p)
				if b.SpawnID > 0 {
					inSpawnSet[u] = true
				}
			}
			if d := in.Def(); d != ir.NoReg {
				touch(d, p)
				if b.SpawnID > 0 {
					inSpawnSet[d] = true
				}
			}
			switch in.Op {
			case ir.Call:
				callPos = append(callPos, p)
			case ir.Spawn:
				span := spawnSpan[int(in.Imm)]
				span[0] = p
				spawnSpan[int(in.Imm)] = span
			case ir.Join:
				span := spawnSpan[int(in.Imm)]
				span[1] = p
				spawnSpan[int(in.Imm)] = span
			}
		}
	}

	out := make([]*interval, 0, len(iv))
	for _, it := range iv {
		for _, cp := range callPos {
			if it.start < cp && cp < it.end {
				it.crossCall = true
				break
			}
		}
		it.inSpawn = inSpawnSet[it.v]
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].v < out[j].v
	})
	return out, spawnSpan
}

// allocate runs the linear scan.
func allocate(f *ir.Func) (*allocation, error) {
	intervals, _ := buildIntervals(f)

	type activeReg struct {
		it *interval
	}
	free := make(map[isa.Reg]bool)
	for _, r := range callerSaved {
		free[r] = true
	}
	for _, r := range calleeSaved {
		free[r] = true
	}
	isCalleeSaved := make(map[isa.Reg]bool)
	for _, r := range calleeSaved {
		isCalleeSaved[r] = true
	}

	var active []*interval
	expire := func(pos int) {
		kept := active[:0]
		for _, a := range active {
			if a.end < pos {
				if !a.spilled {
					free[a.reg] = true
				}
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}

	takeFrom := func(pool []isa.Reg) (isa.Reg, bool) {
		for _, r := range pool {
			if free[r] {
				free[r] = false
				return r, true
			}
		}
		return 0, false
	}

	alloc := &allocation{
		regOf:  make(map[ir.VReg]isa.Reg),
		slotOf: make(map[ir.VReg]int),
		bcast:  make(map[int][]isa.Reg),
	}
	usedSaved := make(map[isa.Reg]bool)

	for _, it := range intervals {
		expire(it.start)
		var r isa.Reg
		var ok bool
		if it.crossCall {
			r, ok = takeFrom(calleeSaved)
		} else {
			r, ok = takeFrom(callerSaved)
			if !ok {
				r, ok = takeFrom(calleeSaved)
			}
		}
		if !ok {
			// Spill: prefer spilling the active interval with the furthest
			// end if it frees a compatible register and this interval is
			// in a spawn region (which cannot spill).
			if it.inSpawn {
				victimIdx := -1
				for i, a := range active {
					if a.spilled || a.inSpawn {
						continue
					}
					if it.crossCall && !isCalleeSaved[a.reg] {
						continue
					}
					if victimIdx < 0 || a.end > active[victimIdx].end {
						victimIdx = i
					}
				}
				if victimIdx < 0 {
					return nil, &SpillError{Func: f.Name, VReg: it.v}
				}
				victim := active[victimIdx]
				r = victim.reg
				victim.spilled = true
				victim.slot = alloc.numSpills
				alloc.numSpills++
				alloc.regOf[victim.v] = 0
				delete(alloc.regOf, victim.v)
				alloc.slotOf[victim.v] = victim.slot
				it.reg = r
				alloc.regOf[it.v] = r
				if isCalleeSaved[r] {
					usedSaved[r] = true
				}
				active = append(active, it)
				continue
			}
			it.spilled = true
			it.slot = alloc.numSpills
			alloc.numSpills++
			alloc.slotOf[it.v] = it.slot
			active = append(active, it)
			continue
		}
		it.reg = r
		alloc.regOf[it.v] = r
		if isCalleeSaved[r] {
			usedSaved[r] = true
		}
		active = append(active, it)
	}

	for r := range usedSaved {
		alloc.usedSaved = append(alloc.usedSaved, r)
	}
	sort.Slice(alloc.usedSaved, func(i, j int) bool { return alloc.usedSaved[i] < alloc.usedSaved[j] })

	// Compute the broadcast register sets: the registers live into each
	// spawn region's first block (the grab loop) that were defined before
	// the spawn — the master must bcast them to the TCUs (paper §IV-B).
	for bi, b := range f.Blocks {
		if b.SpawnID == 0 {
			continue
		}
		// First block of this region?
		if bi > 0 && f.Blocks[bi-1].SpawnID == b.SpawnID {
			continue
		}
		var regs []isa.Reg
		seen := make(map[isa.Reg]bool)
		for v := range b.LiveIn() {
			if r, ok := alloc.regOf[v]; ok && !seen[r] {
				seen[r] = true
				regs = append(regs, r)
			} else if _, sp := alloc.slotOf[v]; sp {
				return nil, &SpillError{Func: f.Name, VReg: v}
			}
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		alloc.bcast[b.SpawnID] = regs
	}
	return alloc, nil
}
