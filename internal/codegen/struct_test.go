package codegen_test

import (
	"strings"
	"testing"

	"xmtgo/internal/codegen"
)

func TestStructBasics(t *testing.T) {
	both(t, `
struct Point { int x; int y; };
struct Point origin;
int main() {
    struct Point p;
    p.x = 3;
    p.y = 4;
    origin.x = p.x * p.x;
    origin.y = p.y * p.y;
    print_int(origin.x + origin.y);   // 25
    return 0;
}`, "25")
}

func TestStructPointersAndArrow(t *testing.T) {
	both(t, `
struct Node { int val; struct Node *next; };
struct Node a, b, c;
int main() {
    a.val = 1; b.val = 2; c.val = 3;
    a.next = &b;
    b.next = &c;
    c.next = (struct Node*)0;
    struct Node *p = &a;
    int sum = 0;
    while (p != 0) {
        sum += p->val;
        p = p->next;
    }
    print_int(sum);
    return 0;
}`, "6")
}

func TestStructArraysAndNesting(t *testing.T) {
	both(t, `
struct Inner { int a; char tag; int b; };
struct Outer { struct Inner in; int extra; };
struct Outer arr[4];
int main() {
    int i;
    for (i = 0; i < 4; i++) {
        arr[i].in.a = i;
        arr[i].in.tag = 'A' + i;
        arr[i].in.b = i * 10;
        arr[i].extra = 100;
    }
    int sum = 0;
    for (i = 0; i < 4; i++) {
        sum += arr[i].in.a + arr[i].in.b + arr[i].extra;
    }
    print_int(sum);                   // (0+1+2+3) + (0+10+20+30) + 400 = 466
    print_char(arr[2].in.tag);        // 'C'
    print_int(sizeof(struct Outer));  // 12 (inner) + 4
    return 0;
}`, "466C16")
}

func TestStructByPointerFunction(t *testing.T) {
	both(t, `
struct Vec { int x; int y; int z; };
int dot(struct Vec *a, struct Vec *b) {
    return a->x * b->x + a->y * b->y + a->z * b->z;
}
void scale(struct Vec *v, int k) {
    v->x *= k; v->y *= k; v->z *= k;
}
struct Vec u;
int main() {
    struct Vec v;
    u.x = 1; u.y = 2; u.z = 3;
    v.x = 4; v.y = 5; v.z = 6;
    scale(&v, 2);
    print_int(dot(&u, &v));   // 1*8+2*10+3*12 = 64
    return 0;
}`, "64")
}

func TestStructInSpawn(t *testing.T) {
	// Global struct arrays accessed from parallel code; one struct field
	// accumulated with psm.
	both(t, `
struct Cell { int weight; int hits; };
struct Cell grid[64];
int totalWeight = 0;
int main() {
    int i;
    for (i = 0; i < 64; i++) grid[i].weight = i;
    spawn(0, 63) {
        int w = grid[$].weight;
        grid[$].hits = w > 31 ? 1 : 0;
        psm(w, totalWeight);
    }
    int hits = 0;
    for (i = 0; i < 64; i++) hits += grid[i].hits;
    print_int(totalWeight);   // 2016
    print_char(' ');
    print_int(hits);          // 32
    return 0;
}`, "2016 32")
}

func TestStructCapturedByReference(t *testing.T) {
	res, p := compile(t, `
struct Acc { int lo; int hi; };
int A[32];
int main() {
    int i;
    for (i = 0; i < 32; i++) A[i] = i;
    struct Acc acc;
    acc.lo = 0;
    acc.hi = 0;
    spawn(0, 31) {
        int v = A[$];
        if ($ < 16) { psm(v, acc.lo); } else { psm(v, acc.hi); }
    }
    print_int(acc.lo);
    print_char(' ');
    print_int(acc.hi);
    return 0;
}`, codegen.DefaultOptions())
	if !strings.Contains(res.PrepassSource, "__cap_acc") {
		t.Fatalf("struct not captured:\n%s", res.PrepassSource)
	}
	want := "120 376"
	if got := runFunc(t, p); got != want {
		t.Fatalf("functional %q, want %q", got, want)
	}
}

func TestStructMalloc(t *testing.T) {
	both(t, `
struct Pair { int a; int b; };
int main() {
    struct Pair *p = (struct Pair*)malloc(sizeof(struct Pair) * 3);
    int i;
    for (i = 0; i < 3; i++) {
        p[i].a = i;
        p[i].b = i * i;
    }
    print_int(p[2].a + p[2].b);  // 6
    return 0;
}`, "6")
}

func TestStructErrors(t *testing.T) {
	cases := map[string]string{
		"undefined tag":     `struct Missing m; int main() { return 0; }`,
		"unknown member":    `struct S { int a; }; struct S s; int main() { return s.q; }`,
		"dot on non-struct": `int main() { int x = 1; return x.a; }`,
		"arrow on struct":   `struct S { int a; }; struct S s; int main() { return s->a; }`,
		"struct param":      `struct S { int a; }; int f(struct S s) { return 0; } int main() { return 0; }`,
		"struct return":     `struct S { int a; }; struct S f() { struct S s; return s; } int main() { return 0; }`,
		"struct assign":     `struct S { int a; }; struct S x, y; int main() { x = y; return 0; }`,
		"struct in spawn":   `struct S { int a; }; int main() { spawn(0,1) { struct S s; s.a = $; } return 0; }`,
		"redefined tag":     `struct S { int a; }; struct S { int b; }; int main() { return 0; }`,
		"empty struct":      `struct S { }; int main() { return 0; }`,
		"dup member":        `struct S { int a; int a; }; int main() { return 0; }`,
	}
	for name, src := range cases {
		if _, err := codegen.Compile("s.c", src, codegen.DefaultOptions()); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestSwitchStatement(t *testing.T) {
	both(t, `
int classify(int v) {
    int r = 0;
    switch (v) {
    case 0:
        r = 100;
        break;
    case 1:
    case 2:
        r = 200;
        break;
    case 3:
        r = 300;            // falls through
    case 4:
        r += 5;
        break;
    default:
        r = -1;
    }
    return r;
}
int main() {
    int i;
    for (i = 0; i < 6; i++) {
        print_int(classify(i));
        print_char(' ');
    }
    return 0;
}`, "100 200 200 305 5 -1 ")
}

func TestSwitchInSpawn(t *testing.T) {
	both(t, `
int B[32];
int total = 0;
int main() {
    spawn(0, 31) {
        int v = 0;
        switch ($ & 3) {
        case 0: v = 1; break;
        case 1: v = 10; break;
        case 2: v = 100; break;
        default: v = 1000;
        }
        psm(v, total);
    }
    print_int(total);   // 8*(1+10+100+1000)
    return 0;
}`, "8888")
}

func TestSwitchErrors(t *testing.T) {
	cases := map[string]string{
		"duplicate case":     `int main() { switch (1) { case 1: break; case 1: break; } return 0; }`,
		"duplicate default":  `int main() { switch (1) { default: break; default: break; } return 0; }`,
		"non-const case":     `int main() { int x = 1; switch (1) { case x: break; } return 0; }`,
		"float tag":          `int main() { float f = 1.0; switch (f) { case 1: break; } return 0; }`,
		"stmt before label":  `int main() { switch (1) { print_int(1); case 1: break; } return 0; }`,
		"continue in switch": `int main() { switch (1) { case 1: continue; } return 0; }`,
	}
	for name, src := range cases {
		if _, err := codegen.Compile("sw.c", src, codegen.DefaultOptions()); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestPsBaseAddressRejected(t *testing.T) {
	_, err := codegen.Compile("pb.c", `
int base = 0;
int main() {
    int *p = &base;      // base becomes a ps base below
    spawn(0, 3) {
        int inc = 1;
        ps(inc, base);
    }
    return *p;
}`, codegen.DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "global register") {
		t.Fatalf("want ps-base address error, got %v", err)
	}
}
