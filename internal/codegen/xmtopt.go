package codegen

import (
	"xmtgo/internal/ir"
)

// XMT-specific optimizations (paper §IV-C).

// nonBlockingStores replaces eligible word stores in parallel code with
// non-blocking stores. Because the compiler already fences before every
// prefix-sum and the spawn end drains pending stores, every non-volatile
// word store inside a spawn region is eligible; the TCU then overlaps the
// store's shared-memory round trip with computation.
func nonBlockingStores(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		if b.SpawnID == 0 {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Store && in.Size == 4 && !in.Volatile && !in.NB {
				in.NB = true
				n++
			}
		}
	}
	return n
}

// insertPrefetches hoists prefetches for loads whose addresses are
// computable at virtual-thread start — i.e. derivable from the grabbed
// thread id and broadcast values through pure arithmetic (the common
// A[f($)] pattern). The address chain is cloned right after chkid so the
// prefetch overlaps the thread body's leading computation; the later load
// then hits the TCU prefetch buffer (paper §IV-C, [8]).
//
// maxPerThread caps insertions at the prefetch buffer capacity.
func insertPrefetches(f *ir.Func, maxPerThread int) int {
	if maxPerThread <= 0 {
		return 0
	}
	total := 0
	for bi, b := range f.Blocks {
		if b.SpawnID == 0 {
			continue
		}
		// Region entry block: previous block is outside the region.
		if bi > 0 && f.Blocks[bi-1].SpawnID == b.SpawnID {
			continue
		}
		total += prefetchRegion(f, bi, maxPerThread)
	}
	return total
}

func prefetchRegion(f *ir.Func, entry int, maxPerThread int) int {
	id := f.Blocks[entry].SpawnID

	// Collect region blocks and definition counts.
	defCount := make(map[ir.VReg]int)
	defInstr := make(map[ir.VReg]*ir.Instr)
	var region []*ir.Block
	for bi := entry; bi < len(f.Blocks) && f.Blocks[bi].SpawnID == id; bi++ {
		b := f.Blocks[bi]
		region = append(region, b)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.NoReg {
				defCount[d]++
				defInstr[d] = in
			}
		}
	}
	if len(region) == 0 {
		return 0
	}
	grab := region[0]
	// Find the chkid position in the entry block.
	chkidIdx := -1
	var tid ir.VReg = ir.NoReg
	for i := range grab.Instrs {
		if grab.Instrs[i].Op == ir.Chkid {
			chkidIdx = i
			tid = grab.Instrs[i].A
			break
		}
	}
	if chkidIdx < 0 {
		return 0
	}

	// "early" vregs: single-def values derivable from the thread id,
	// broadcast live-ins, and constants through pure arithmetic.
	early := make(map[ir.VReg]bool)
	early[tid] = true
	for v := range grab.LiveIn() {
		early[v] = true
	}
	var isEarly func(v ir.VReg, depth int) bool
	isEarly = func(v ir.VReg, depth int) bool {
		if early[v] {
			return true
		}
		if depth > 8 || defCount[v] != 1 {
			return false
		}
		in := defInstr[v]
		if in == nil {
			return false
		}
		switch in.Op {
		case ir.LdImm, ir.LdSym:
			return true
		case ir.AddImm, ir.ShlImm, ir.SarImm, ir.ShrImm, ir.AndImm, ir.OrImm, ir.XorImm, ir.Mov:
			return isEarly(in.A, depth+1)
		case ir.Add, ir.Sub, ir.Mul, ir.Shl:
			return isEarly(in.A, depth+1) && isEarly(in.B, depth+1)
		}
		return false
	}

	// Clone an early chain at the insertion point, returning the new vreg.
	var inserted []ir.Instr
	cloned := make(map[ir.VReg]ir.VReg)
	var clone func(v ir.VReg) ir.VReg
	clone = func(v ir.VReg) ir.VReg {
		if early[v] {
			return v // already available at entry
		}
		if nv, ok := cloned[v]; ok {
			return nv
		}
		in := *defInstr[v]
		switch in.Op {
		case ir.LdImm, ir.LdSym:
		case ir.AddImm, ir.ShlImm, ir.SarImm, ir.ShrImm, ir.AndImm, ir.OrImm, ir.XorImm, ir.Mov:
			in.A = clone(in.A)
		default:
			in.A = clone(in.A)
			in.B = clone(in.B)
		}
		nv := f.NewVReg()
		in.Dst = nv
		cloned[v] = nv
		inserted = append(inserted, in)
		return nv
	}

	// Scan region loads, capped at the prefetch buffer capacity.
	type target struct {
		base ir.VReg
		off  int32
		line int
	}
	var targets []target
	seen := make(map[target]bool)
	for _, b := range region {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.Load || in.Volatile || in.Size != 4 {
				continue
			}
			if !isEarly(in.A, 0) {
				continue
			}
			t := target{base: in.A, off: in.Imm, line: in.Line}
			if seen[t] || len(targets) >= maxPerThread {
				continue
			}
			seen[t] = true
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return 0
	}

	count := 0
	var prefs []ir.Instr
	for _, t := range targets {
		base := clone(t.base)
		prefs = append(prefs, ir.Instr{Op: ir.Pref, A: base, Imm: t.off, B: ir.NoReg, Dst: ir.NoReg, Line: t.line})
		count++
	}

	// Splice: grab.Instrs[:chkid+1] ++ inserted ++ prefs ++ rest.
	rest := append([]ir.Instr(nil), grab.Instrs[chkidIdx+1:]...)
	out := append([]ir.Instr(nil), grab.Instrs[:chkidIdx+1]...)
	out = append(out, inserted...)
	out = append(out, prefs...)
	out = append(out, rest...)
	grab.Instrs = out
	return count
}
