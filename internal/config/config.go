// Package config holds the simulated-machine configuration. XMTSim is
// "highly configurable … including number of TCUs, the cache size, DRAM
// bandwidth and relative clock frequencies of components" (paper §III); this
// package models that: every architectural knob is a field, configurations
// load from key=value files and command-line overrides, and the two built-in
// machines of the paper — the 64-TCU Paraleap FPGA prototype and the
// envisioned 1024-TCU XMT chip — ship as presets.
package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xmtgo/internal/sim/fault"
)

// Config describes one simulated XMT machine.
type Config struct {
	Name string

	// Parallel core organization (Fig. 1).
	Clusters       int // number of TCU clusters
	TCUsPerCluster int // lightweight cores per cluster
	FPUsPerCluster int // floating-point units shared inside a cluster
	MDUsPerCluster int // multiply/divide units shared inside a cluster

	// Per-TCU latency-tolerance resources.
	PrefetchBufEntries int // TCU prefetch buffer slots (paper §IV-C, [8])

	// Cluster read-only cache (constant data across threads).
	ROCacheLines    int   // lines per cluster read-only cache
	ROCacheLineSize int   // bytes per line (power of two)
	ROCacheLatency  int64 // hit latency, cluster cycles

	// Shared first-level cache, partitioned into mutually exclusive
	// modules that hash the address space.
	CacheModules     int   // number of shared cache modules
	CacheLinesPerMod int   // lines per module
	CacheLineSize    int   // bytes per line (power of two)
	CacheAssoc       int   // set associativity
	CacheHitLatency  int64 // module service latency per request, cache cycles
	CacheQueue       int   // request queue depth per module

	// DRAM: modeled as simple latency behind ports (paper §III: "DRAM is
	// modeled as simple latency").
	DRAMPorts     int   // off-chip memory channels
	DRAMLatency   int64 // DRAM cycles per access
	DRAMGapCycles int64 // minimum gap between accesses on one port (1/bandwidth)

	// Interconnection network (mesh-of-trees): per-traversal base latency
	// plus per-cluster injection limit per ICN cycle.
	ICNBaseLatency  int64 // ICN cycles for an uncontended traversal
	ICNInjectPerCyc int   // packages a cluster may inject per ICN cycle
	ICNAcceptPerCyc int   // packages a cache module may accept per ICN cycle

	// Asynchronous interconnect (paper §III-F, following [39]): packages
	// traverse with continuous-time handshake delays instead of clocked
	// hops — possible because the simulator is discrete-event, not
	// discrete-time. Latencies are raw engine ticks, unquantized.
	ICNAsync         bool
	ICNAsyncHopTicks int64 // handshake delay per tree hop
	ICNAsyncGapTicks int64 // min spacing between injections at one port

	// Master TCU.
	MasterCacheLines    int
	MasterCacheLineSize int
	MasterCacheLatency  int64
	MasterIssueWidth    int // instructions the master may issue per cycle

	// Spawn hardware.
	SpawnOverhead int64 // cycles to broadcast a spawn region and start TCUs
	JoinOverhead  int64 // cycles to detect all-TCUs-blocked and resume master
	PSLatency     int64 // global prefix-sum unit one-way latency, cluster cycles
	PSPerCycle    int   // prefix-sum requests the combining hardware retires per cycle

	// Clock domain periods in abstract ticks (relative frequencies).
	ClusterPeriod int64
	ICNPeriod     int64
	CachePeriod   int64
	DRAMPeriod    int64
	MasterPeriod  int64

	// Memory.
	MemBytes uint32 // simulated shared-memory size

	// Determinism.
	Seed uint64

	// Fault injection and resilience (docs/ROBUSTNESS.md). FaultPlan is a
	// fault spec in internal/sim/fault grammar ("" disables injection);
	// FaultSeed seeds the per-kind fault streams. WatchdogCycles is the
	// no-retire progress watchdog period in cluster cycles (0 disables):
	// if no instruction retires for that long while the program has not
	// halted, the run fails with a diagnostic instead of spinning.
	FaultSeed      uint64
	FaultPlan      string
	WatchdogCycles int64

	// Host execution. HostWorkers is the number of host goroutines that
	// tick the cluster shards in parallel (0 = GOMAXPROCS, 1 = serial).
	// Simulation results are bit-identical for any value.
	HostWorkers int

	// Bounded-lookahead engine (docs/PERF.md). Lookahead is the maximum
	// number of consecutive cluster cycles one scheduler event may cover:
	// 0 derives the window from the minimum cross-cluster round-trip
	// latency, 1 restores the single-cycle engine. EngineMode selects the
	// window strategy: EngineWindowed (conservative lockstep, the default;
	// "" means windowed) or EngineOptimistic (speculative free-run with
	// snapshot rollback). Results are bit-identical for every combination.
	Lookahead  int
	EngineMode string

	// Telemetry. SampleCycles is the interval, in cluster cycles, at which
	// the interval sampler snapshots the activity counters (0 disables
	// sampling). Samples are taken at outbox-commit boundaries, so the
	// resulting time series is bit-identical for any HostWorkers value.
	SampleCycles int64

	// FuncBackend selects the functional-mode execution backend
	// (docs/SIMULATOR.md §Functional backends): FuncBackendInterp (the
	// per-step ISA interpreter, the default; "" means interp) or
	// FuncBackendVM (the direct-threaded bytecode VM in internal/sim/
	// funcvm). Architectural results are bit-identical for either value.
	FuncBackend string

	// RaceCheck enables xmtsan, the deterministic happens-before race
	// sanitizer in the cycle simulator (docs/ANALYZER.md). Reports are
	// byte-identical for any HostWorkers value; when off, the simulation is
	// untouched (no shadow state is allocated).
	RaceCheck bool

	// Power model parameters (nJ per event; lumped, see internal/sim/power).
	EnergyALU             float64
	EnergyMDU             float64
	EnergyFPU             float64
	EnergyMem             float64
	EnergyICNHop          float64
	EnergyCache           float64
	EnergyDRAM            float64
	StaticWattsPerCluster float64
	StaticWattsOther      float64
}

// Engine modes for the bounded-lookahead parallel engine (docs/PERF.md).
const (
	// EngineWindowed runs conservative lockstep windows: every cluster
	// ticks cycle k before any ticks k+1, and a window-closing effect in
	// any cluster truncates the window for all of them.
	EngineWindowed = "windowed"
	// EngineOptimistic lets clusters free-run the whole window
	// independently; clusters that overran the consensus boundary roll
	// back to their window-entry snapshot and replay.
	EngineOptimistic = "optimistic"
)

// Functional-mode backends (docs/SIMULATOR.md §Functional backends).
const (
	// FuncBackendInterp decodes and executes ISA instructions one Step at
	// a time (funcmodel's interpreter, the default).
	FuncBackendInterp = "interp"
	// FuncBackendVM lowers the program once into direct-threaded bytecode
	// and dispatches pre-resolved handlers (internal/sim/funcvm).
	FuncBackendVM = "vm"
)

// TCUs returns the total number of parallel TCUs.
func (c *Config) TCUs() int { return c.Clusters * c.TCUsPerCluster }

// Validate checks internal consistency.
func (c *Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	checks := []check{
		{c.Clusters > 0, "Clusters must be positive"},
		{c.TCUsPerCluster > 0, "TCUsPerCluster must be positive"},
		{c.FPUsPerCluster > 0, "FPUsPerCluster must be positive"},
		{c.MDUsPerCluster > 0, "MDUsPerCluster must be positive"},
		{c.CacheModules > 0, "CacheModules must be positive"},
		{pow2(c.CacheLineSize), "CacheLineSize must be a power of two"},
		{c.CacheLinesPerMod > 0, "CacheLinesPerMod must be positive"},
		{c.CacheAssoc > 0 && c.CacheLinesPerMod%c.CacheAssoc == 0, "CacheAssoc must divide CacheLinesPerMod"},
		{c.CacheQueue > 0, "CacheQueue must be positive"},
		{c.DRAMPorts > 0, "DRAMPorts must be positive"},
		{c.DRAMLatency >= 0, "DRAMLatency must be non-negative"},
		{c.DRAMGapCycles >= 1, "DRAMGapCycles must be >= 1"},
		{c.ICNBaseLatency >= 1, "ICNBaseLatency must be >= 1"},
		{!c.ICNAsync || (c.ICNAsyncHopTicks >= 1 && c.ICNAsyncGapTicks >= 1), "async ICN timings must be positive"},
		{c.ICNInjectPerCyc > 0, "ICNInjectPerCyc must be positive"},
		{c.ICNAcceptPerCyc > 0, "ICNAcceptPerCyc must be positive"},
		{c.PrefetchBufEntries >= 0, "PrefetchBufEntries must be non-negative"},
		{c.ROCacheLines >= 0, "ROCacheLines must be non-negative"},
		{c.ROCacheLines == 0 || pow2(c.ROCacheLineSize), "ROCacheLineSize must be a power of two"},
		{c.MasterCacheLines > 0 && pow2(c.MasterCacheLineSize), "master cache geometry invalid"},
		{c.MasterIssueWidth > 0, "MasterIssueWidth must be positive"},
		{c.ClusterPeriod > 0 && c.ICNPeriod > 0 && c.CachePeriod > 0 && c.DRAMPeriod > 0 && c.MasterPeriod > 0, "clock periods must be positive"},
		{c.MemBytes >= 1<<16, "MemBytes too small"},
		{c.SpawnOverhead >= 0 && c.JoinOverhead >= 0 && c.PSLatency >= 1, "spawn/join/ps latencies invalid"},
		{c.PSPerCycle > 0, "PSPerCycle must be positive"},
		{c.HostWorkers >= 0, "HostWorkers must be non-negative"},
		{c.Lookahead >= 0, "Lookahead must be non-negative"},
		{c.EngineMode == "" || c.EngineMode == EngineWindowed || c.EngineMode == EngineOptimistic,
			"EngineMode must be windowed or optimistic"},
		{c.FuncBackend == "" || c.FuncBackend == FuncBackendInterp || c.FuncBackend == FuncBackendVM,
			"FuncBackend must be interp or vm"},
		{c.WatchdogCycles >= 0, "WatchdogCycles must be non-negative"},
		{c.SampleCycles >= 0, "SampleCycles must be non-negative"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("config %q: %s", c.Name, ch.msg)
		}
	}
	if c.FaultPlan != "" {
		if _, err := fault.ParseSpec(c.FaultPlan); err != nil {
			return fmt.Errorf("config %q: fault_plan: %v", c.Name, err)
		}
	}
	return nil
}

// FPGA64 models the 64-TCU Paraleap FPGA prototype the simulator was
// verified against: 8 clusters × 8 TCUs, 8 shared cache modules, modest
// clock ratios.
func FPGA64() Config {
	return Config{
		Name:                "fpga64",
		Clusters:            8,
		TCUsPerCluster:      8,
		FPUsPerCluster:      1,
		MDUsPerCluster:      1,
		PrefetchBufEntries:  4,
		ROCacheLines:        64,
		ROCacheLineSize:     32,
		ROCacheLatency:      2,
		CacheModules:        8,
		CacheLinesPerMod:    512,
		CacheLineSize:       32,
		CacheAssoc:          2,
		CacheHitLatency:     2,
		CacheQueue:          16,
		DRAMPorts:           1,
		DRAMLatency:         40,
		DRAMGapCycles:       4,
		ICNBaseLatency:      6,
		ICNInjectPerCyc:     1,
		ICNAcceptPerCyc:     2,
		ICNAsyncHopTicks:    3,
		ICNAsyncGapTicks:    6,
		MasterCacheLines:    512,
		MasterCacheLineSize: 32,
		MasterCacheLatency:  1,
		MasterIssueWidth:    1,
		SpawnOverhead:       12,
		JoinOverhead:        6,
		PSLatency:           2,
		PSPerCycle:          16,
		ClusterPeriod:       8,
		ICNPeriod:           8,
		CachePeriod:         8,
		DRAMPeriod:          16,
		MasterPeriod:        8,
		MemBytes:            16 << 20,
		Seed:                1,
		FaultSeed:           1,
		WatchdogCycles:      2_000_000,
		EnergyALU:           0.05, EnergyMDU: 0.4, EnergyFPU: 0.6,
		EnergyMem: 0.1, EnergyICNHop: 0.08, EnergyCache: 0.25, EnergyDRAM: 2.0,
		StaticWattsPerCluster: 0.05, StaticWattsOther: 0.4,
	}
}

// Chip1024 models the envisioned 1024-TCU XMT chip: 64 clusters × 16 TCUs,
// 64 shared cache modules, ~30-cycle shared-cache access latency for loads
// that traverse the ICN (paper §IV-C), and higher DRAM bandwidth.
func Chip1024() Config {
	return Config{
		Name:                "chip1024",
		Clusters:            64,
		TCUsPerCluster:      16,
		FPUsPerCluster:      4,
		MDUsPerCluster:      2,
		PrefetchBufEntries:  8,
		ROCacheLines:        128,
		ROCacheLineSize:     32,
		ROCacheLatency:      2,
		CacheModules:        64,
		CacheLinesPerMod:    1024,
		CacheLineSize:       32,
		CacheAssoc:          4,
		CacheHitLatency:     3,
		CacheQueue:          32,
		DRAMPorts:           8,
		DRAMLatency:         60,
		DRAMGapCycles:       2,
		ICNBaseLatency:      12, // with cache service: ~30-cycle load round trip
		ICNInjectPerCyc:     2,
		ICNAcceptPerCyc:     4,
		ICNAsyncHopTicks:    3,
		ICNAsyncGapTicks:    3,
		MasterCacheLines:    1024,
		MasterCacheLineSize: 32,
		MasterCacheLatency:  1,
		MasterIssueWidth:    2,
		SpawnOverhead:       20,
		JoinOverhead:        10,
		PSLatency:           2,
		PSPerCycle:          64,
		ClusterPeriod:       8,
		ICNPeriod:           8,
		CachePeriod:         8,
		DRAMPeriod:          24,
		MasterPeriod:        8,
		MemBytes:            64 << 20,
		Seed:                1,
		FaultSeed:           1,
		WatchdogCycles:      2_000_000,
		EnergyALU:           0.05, EnergyMDU: 0.4, EnergyFPU: 0.6,
		EnergyMem: 0.1, EnergyICNHop: 0.08, EnergyCache: 0.25, EnergyDRAM: 2.0,
		StaticWattsPerCluster: 0.08, StaticWattsOther: 1.5,
	}
}

// Preset returns a named built-in configuration.
func Preset(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "fpga64", "fpga", "64":
		return FPGA64(), nil
	case "chip1024", "1024":
		return Chip1024(), nil
	}
	return Config{}, fmt.Errorf("config: unknown preset %q (have fpga64, chip1024)", name)
}

// fields maps config-file keys to setters; built once.
var fieldSetters = map[string]func(*Config, string) error{
	"name":                 func(c *Config, v string) error { c.Name = v; return nil },
	"clusters":             intField(func(c *Config) *int { return &c.Clusters }),
	"tcus_per_cluster":     intField(func(c *Config) *int { return &c.TCUsPerCluster }),
	"fpus_per_cluster":     intField(func(c *Config) *int { return &c.FPUsPerCluster }),
	"mdus_per_cluster":     intField(func(c *Config) *int { return &c.MDUsPerCluster }),
	"prefetch_buf_entries": intField(func(c *Config) *int { return &c.PrefetchBufEntries }),
	"rocache_lines":        intField(func(c *Config) *int { return &c.ROCacheLines }),
	"rocache_line_size":    intField(func(c *Config) *int { return &c.ROCacheLineSize }),
	"rocache_latency":      int64Field(func(c *Config) *int64 { return &c.ROCacheLatency }),
	"cache_modules":        intField(func(c *Config) *int { return &c.CacheModules }),
	"cache_lines_per_mod":  intField(func(c *Config) *int { return &c.CacheLinesPerMod }),
	"cache_line_size":      intField(func(c *Config) *int { return &c.CacheLineSize }),
	"cache_assoc":          intField(func(c *Config) *int { return &c.CacheAssoc }),
	"cache_hit_latency":    int64Field(func(c *Config) *int64 { return &c.CacheHitLatency }),
	"cache_queue":          intField(func(c *Config) *int { return &c.CacheQueue }),
	"dram_ports":           intField(func(c *Config) *int { return &c.DRAMPorts }),
	"dram_latency":         int64Field(func(c *Config) *int64 { return &c.DRAMLatency }),
	"dram_gap_cycles":      int64Field(func(c *Config) *int64 { return &c.DRAMGapCycles }),
	"icn_base_latency":     int64Field(func(c *Config) *int64 { return &c.ICNBaseLatency }),
	"icn_inject_per_cyc":   intField(func(c *Config) *int { return &c.ICNInjectPerCyc }),
	"icn_accept_per_cyc":   intField(func(c *Config) *int { return &c.ICNAcceptPerCyc }),
	"icn_async": func(c *Config, v string) error {
		switch strings.ToLower(v) {
		case "1", "true", "on", "yes":
			c.ICNAsync = true
		case "0", "false", "off", "no":
			c.ICNAsync = false
		default:
			return fmt.Errorf("want a boolean, got %q", v)
		}
		return nil
	},
	"icn_async_hop_ticks":    int64Field(func(c *Config) *int64 { return &c.ICNAsyncHopTicks }),
	"icn_async_gap_ticks":    int64Field(func(c *Config) *int64 { return &c.ICNAsyncGapTicks }),
	"master_cache_lines":     intField(func(c *Config) *int { return &c.MasterCacheLines }),
	"master_cache_line_size": intField(func(c *Config) *int { return &c.MasterCacheLineSize }),
	"master_cache_latency":   int64Field(func(c *Config) *int64 { return &c.MasterCacheLatency }),
	"master_issue_width":     intField(func(c *Config) *int { return &c.MasterIssueWidth }),
	"spawn_overhead":         int64Field(func(c *Config) *int64 { return &c.SpawnOverhead }),
	"join_overhead":          int64Field(func(c *Config) *int64 { return &c.JoinOverhead }),
	"ps_latency":             int64Field(func(c *Config) *int64 { return &c.PSLatency }),
	"ps_per_cycle":           intField(func(c *Config) *int { return &c.PSPerCycle }),
	"cluster_period":         int64Field(func(c *Config) *int64 { return &c.ClusterPeriod }),
	"icn_period":             int64Field(func(c *Config) *int64 { return &c.ICNPeriod }),
	"cache_period":           int64Field(func(c *Config) *int64 { return &c.CachePeriod }),
	"dram_period":            int64Field(func(c *Config) *int64 { return &c.DRAMPeriod }),
	"master_period":          int64Field(func(c *Config) *int64 { return &c.MasterPeriod }),
	"mem_bytes": func(c *Config, v string) error {
		n, err := strconv.ParseUint(v, 0, 32)
		if err != nil {
			return err
		}
		c.MemBytes = uint32(n)
		return nil
	},
	"host_workers": intField(func(c *Config) *int { return &c.HostWorkers }),
	"lookahead":    intField(func(c *Config) *int { return &c.Lookahead }),
	"engine_mode": func(c *Config, v string) error {
		switch strings.ToLower(v) {
		case "", EngineWindowed, EngineOptimistic:
			c.EngineMode = strings.ToLower(v)
		default:
			return fmt.Errorf("want windowed or optimistic, got %q", v)
		}
		return nil
	},
	"seed": func(c *Config, v string) error {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			return err
		}
		c.Seed = n
		return nil
	},
	"fault_seed": func(c *Config, v string) error {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			return err
		}
		c.FaultSeed = n
		return nil
	},
	"fault_plan": func(c *Config, v string) error {
		if v != "" {
			if _, err := fault.ParseSpec(v); err != nil {
				return err
			}
		}
		c.FaultPlan = v
		return nil
	},
	"func_backend": func(c *Config, v string) error {
		switch strings.ToLower(v) {
		case "", FuncBackendInterp, FuncBackendVM:
			c.FuncBackend = strings.ToLower(v)
		default:
			return fmt.Errorf("want interp or vm, got %q", v)
		}
		return nil
	},
	"watchdog_cycles": int64Field(func(c *Config) *int64 { return &c.WatchdogCycles }),
	"sample_cycles":   int64Field(func(c *Config) *int64 { return &c.SampleCycles }),
	"race_check": func(c *Config, v string) error {
		switch strings.ToLower(v) {
		case "1", "true", "on", "yes":
			c.RaceCheck = true
		case "0", "false", "off", "no":
			c.RaceCheck = false
		default:
			return fmt.Errorf("want a boolean, got %q", v)
		}
		return nil
	},
}

func intField(get func(*Config) *int) func(*Config, string) error {
	return func(c *Config, v string) error {
		n, err := strconv.ParseInt(v, 0, 64)
		if err != nil {
			return err
		}
		*get(c) = int(n)
		return nil
	}
}

func int64Field(get func(*Config) *int64) func(*Config, string) error {
	return func(c *Config, v string) error {
		n, err := strconv.ParseInt(v, 0, 64)
		if err != nil {
			return err
		}
		*get(c) = n
		return nil
	}
}

// Set applies one "key=value" override (command-line style).
func (c *Config) Set(kv string) error {
	key, val, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("config: expected key=value, got %q", kv)
	}
	key = strings.ToLower(strings.TrimSpace(key))
	val = strings.TrimSpace(val)
	setter, ok := fieldSetters[key]
	if !ok {
		return fmt.Errorf("config: unknown key %q (known: %s)", key, strings.Join(Keys(), ", "))
	}
	if err := setter(c, val); err != nil {
		return fmt.Errorf("config: %s: %v", key, err)
	}
	return nil
}

// Load applies a key=value configuration file on top of c. '#' starts a
// comment.
func (c *Config) Load(src string) error {
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := c.Set(line); err != nil {
			return fmt.Errorf("line %d: %v", ln+1, err)
		}
	}
	return nil
}

// Keys lists the recognized configuration keys, sorted.
func Keys() []string {
	out := make([]string, 0, len(fieldSetters))
	for k := range fieldSetters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe renders the configuration as a key=value listing.
func (c *Config) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s\n", c.Name)
	fmt.Fprintf(&b, "clusters=%d\ntcus_per_cluster=%d (total TCUs: %d)\n", c.Clusters, c.TCUsPerCluster, c.TCUs())
	fmt.Fprintf(&b, "fpus_per_cluster=%d\nmdus_per_cluster=%d\n", c.FPUsPerCluster, c.MDUsPerCluster)
	fmt.Fprintf(&b, "prefetch_buf_entries=%d\n", c.PrefetchBufEntries)
	fmt.Fprintf(&b, "rocache: lines=%d line=%dB lat=%d\n", c.ROCacheLines, c.ROCacheLineSize, c.ROCacheLatency)
	fmt.Fprintf(&b, "cache: modules=%d lines/mod=%d line=%dB assoc=%d hit=%d queue=%d\n",
		c.CacheModules, c.CacheLinesPerMod, c.CacheLineSize, c.CacheAssoc, c.CacheHitLatency, c.CacheQueue)
	fmt.Fprintf(&b, "dram: ports=%d latency=%d gap=%d\n", c.DRAMPorts, c.DRAMLatency, c.DRAMGapCycles)
	fmt.Fprintf(&b, "icn: base=%d inject/cyc=%d accept/cyc=%d async=%v\n", c.ICNBaseLatency, c.ICNInjectPerCyc, c.ICNAcceptPerCyc, c.ICNAsync)
	fmt.Fprintf(&b, "master: cache_lines=%d issue=%d\n", c.MasterCacheLines, c.MasterIssueWidth)
	fmt.Fprintf(&b, "spawn_overhead=%d join_overhead=%d ps_latency=%d ps_per_cycle=%d\n", c.SpawnOverhead, c.JoinOverhead, c.PSLatency, c.PSPerCycle)
	fmt.Fprintf(&b, "periods: cluster=%d icn=%d cache=%d dram=%d master=%d\n",
		c.ClusterPeriod, c.ICNPeriod, c.CachePeriod, c.DRAMPeriod, c.MasterPeriod)
	fmt.Fprintf(&b, "mem_bytes=%d seed=%d\n", c.MemBytes, c.Seed)
	fmt.Fprintf(&b, "host_workers=%d (0 = GOMAXPROCS; results identical for any value)\n", c.HostWorkers)
	mode := c.EngineMode
	if mode == "" {
		mode = EngineWindowed
	}
	fmt.Fprintf(&b, "lookahead=%d engine_mode=%s (0 = derive window from min cross-cluster latency)\n", c.Lookahead, mode)
	fmt.Fprintf(&b, "fault_seed=%d fault_plan=%q watchdog_cycles=%d\n", c.FaultSeed, c.FaultPlan, c.WatchdogCycles)
	fmt.Fprintf(&b, "sample_cycles=%d (0 = interval sampling off)\n", c.SampleCycles)
	backend := c.FuncBackend
	if backend == "" {
		backend = FuncBackendInterp
	}
	fmt.Fprintf(&b, "func_backend=%s (functional-mode backend: interp or vm; results identical)\n", backend)
	fmt.Fprintf(&b, "race_check=%v (xmtsan dynamic race sanitizer)\n", c.RaceCheck)
	return b.String()
}
