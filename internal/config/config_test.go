package config

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range []string{"fpga64", "chip1024"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset must fail")
	}
}

func TestPresetShapes(t *testing.T) {
	f := FPGA64()
	if f.TCUs() != 64 {
		t.Fatalf("fpga64 has %d TCUs", f.TCUs())
	}
	c := Chip1024()
	if c.TCUs() != 1024 {
		t.Fatalf("chip1024 has %d TCUs", c.TCUs())
	}
}

func TestSetAndLoad(t *testing.T) {
	cfg := FPGA64()
	if err := cfg.Set("clusters=16"); err != nil {
		t.Fatal(err)
	}
	if cfg.Clusters != 16 {
		t.Fatal("Set did not apply")
	}
	err := cfg.Load(`
# comment
tcus_per_cluster = 4
dram_latency=99   # trailing comment
seed=7
mem_bytes=0x200000
host_workers=3
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TCUsPerCluster != 4 || cfg.DRAMLatency != 99 || cfg.Seed != 7 || cfg.MemBytes != 0x200000 {
		t.Fatalf("Load did not apply: %+v", cfg)
	}
	if cfg.HostWorkers != 3 {
		t.Fatalf("host_workers did not apply: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetErrors(t *testing.T) {
	cfg := FPGA64()
	for _, bad := range []string{"nokey=1", "clusters", "clusters=abc", "seed=-1x"} {
		if err := cfg.Set(bad); err == nil {
			t.Errorf("Set(%q) should fail", bad)
		}
	}
	if err := cfg.Load("line1=1\nclusters=zz"); err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("Load should report the failing line, got %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.TCUsPerCluster = -1 },
		func(c *Config) { c.CacheLineSize = 24 },
		func(c *Config) { c.CacheAssoc = 3 },
		func(c *Config) { c.CacheQueue = 0 },
		func(c *Config) { c.DRAMPorts = 0 },
		func(c *Config) { c.DRAMGapCycles = 0 },
		func(c *Config) { c.ICNInjectPerCyc = 0 },
		func(c *Config) { c.ClusterPeriod = 0 },
		func(c *Config) { c.MemBytes = 100 },
		func(c *Config) { c.PSLatency = 0 },
		func(c *Config) { c.PSPerCycle = 0 },
		func(c *Config) { c.MasterIssueWidth = 0 },
		func(c *Config) { c.HostWorkers = -1 },
	}
	for i, mut := range mutations {
		cfg := FPGA64()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestKeysSortedAndSettable(t *testing.T) {
	keys := Keys()
	if len(keys) < 20 {
		t.Fatalf("only %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
	// ps_per_cycle must be reachable from config files.
	found := false
	for _, k := range keys {
		if k == "ps_per_cycle" {
			found = true
		}
	}
	if !found {
		t.Fatal("ps_per_cycle missing from the key set")
	}
}

func TestDescribeMentionsEverything(t *testing.T) {
	cfg := Chip1024()
	d := cfg.Describe()
	for _, want := range []string{"chip1024", "clusters=64", "total TCUs: 1024", "ps_per_cycle=64"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestSampleCyclesKey(t *testing.T) {
	cfg := FPGA64()
	if err := cfg.Set("sample_cycles=5000"); err != nil {
		t.Fatal(err)
	}
	if cfg.SampleCycles != 5000 {
		t.Fatalf("SampleCycles = %d, want 5000", cfg.SampleCycles)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.SampleCycles = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative SampleCycles validated")
	}
	if !strings.Contains(cfg.Describe(), "sample_cycles=") {
		t.Fatal("Describe does not mention sample_cycles")
	}
}
