package config

import (
	"strings"
	"testing"
)

// FuzzConfig throws arbitrary key=value text at the configuration loader.
// Invariants: Load never panics; a Load that succeeds leaves a config that
// Describe can render; and Validate either accepts the result or returns a
// diagnostic — it must never panic on any loadable configuration (including
// fault plans, which are parsed and bound-checked at Validate time).
func FuzzConfig(f *testing.F) {
	f.Add("clusters=8\ntcus_per_cluster=8\n")
	fpga, chip := FPGA64(), Chip1024()
	f.Add(fpga.Describe())
	f.Add(chip.Describe())
	f.Add("fault_plan=memflip:10;tcufail:2@5000-90000\nfault_seed=7\nwatchdog_cycles=1000\n")
	f.Add("fault_plan=clusterfail:999xzz@9-1\n")
	f.Add("# comment\nclusters=0\nmem_bytes=-5\n")
	f.Add("periods=\ncluster_period=0\nicn_async=maybe\n")
	f.Fuzz(func(t *testing.T, src string) {
		cfg := FPGA64()
		if err := cfg.Load(src); err != nil {
			return // rejected input: fine, as long as nothing panicked
		}
		_ = cfg.Validate()
		if d := cfg.Describe(); !strings.Contains(d, "clusters=") {
			t.Fatalf("Describe lost the clusters key:\n%s", d)
		}
	})
}
