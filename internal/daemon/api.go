// Package daemon implements xmtd, the crash-safe simulation-as-a-service
// server behind cmd/xmtd and cmd/xmtctl: a persistent multi-tenant job
// queue with priorities, per-tenant quotas, checkpoint-backed preemption, a
// durable append-only journal replayed on startup, per-job deadlines and
// no-progress watchdogs, and graceful drain — the "many small sims
// multiplexed over one warm process" direction of the roadmap, hardened the
// way docs/ROBUSTNESS.md hardens single runs (docs/XMTD.md).
package daemon

import (
	"encoding/json"
	"fmt"
)

// APIVersion tags every request and response of the line-JSON protocol:
// one JSON object per line over a unix or TCP socket.
const APIVersion = "xmt-jobs/v1"

// Error codes of the typed API errors. Overload and quota violations map to
// these — never to a dropped connection or an unbounded queue.
const (
	ErrBadRequest    = "bad_request"    // malformed request or unknown op
	ErrUnsupported   = "unsupported"    // api version mismatch
	ErrCompile       = "compile_error"  // program failed to parse/compile
	ErrQuotaExceeded = "quota_exceeded" // per-tenant quota violated
	ErrQueueFull     = "queue_full"     // global queue bound reached
	ErrDraining      = "draining"       // daemon is shutting down
	ErrNotFound      = "not_found"      // unknown job id
	ErrNotDone       = "not_done"       // result requested before completion
	ErrTimeout       = "timeout"        // wait deadline expired
	ErrInternal      = "internal"
)

// APIError is the typed error payload of a failed request.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func apiErrorf(code, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// JobSpec is a job submission: the program source travels inline so clients
// need no filesystem shared with the daemon.
type JobSpec struct {
	// Name is a client-side label (not necessarily unique); Tenant scopes
	// quotas ("" = "default"). Priority orders the queue: higher runs
	// sooner, and a submission may preempt a strictly lower-priority
	// running job at its next checkpoint boundary.
	Name     string `json:"name,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// Kind is "asm" (XMT assembly) or "xmtc" (compiled XMTC); Source is the
	// program text. Sets are per-job "key=value" machine-config overrides.
	Kind   string   `json:"kind,omitempty"`
	Source string   `json:"source"`
	Sets   []string `json:"sets,omitempty"`

	// BudgetCycles is the first attempt's cycle budget (0 = daemon
	// default); retries grow it by the daemon's backoff factor. A tenant
	// quota may cap it.
	BudgetCycles int64 `json:"budget_cycles,omitempty"`
	// DeadlineCycles, when set, is a hard per-job ceiling on simulated
	// cycles across all attempts: the job fails with a structured
	// diagnostic rather than retrying past it.
	DeadlineCycles int64 `json:"deadline_cycles,omitempty"`
}

// JobResult is the terminal outcome of a job.
type JobResult struct {
	Cycles int64  `json:"cycles"`
	Instrs uint64 `json:"instrs"`
	Output string `json:"output"`
	// MemHash fingerprints the final architectural state (FNV-1a over
	// shared memory, global registers and output), so clients can verify
	// recovered or preempted runs are bit-identical to uninterrupted ones
	// without shipping the memory image.
	MemHash string `json:"mem_hash,omitempty"`
	Err     string `json:"error,omitempty"`
}

// Job states reported by status/list.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    string `json:"state"`

	Attempt     int   `json:"attempt,omitempty"`
	Resumes     int   `json:"resumes,omitempty"`
	Preemptions int   `json:"preemptions,omitempty"`
	Cycles      int64 `json:"cycles,omitempty"` // progress: last checkpointed/final cycle
	Budget      int64 `json:"budget,omitempty"` // current attempt's cycle budget

	Result *JobResult `json:"result,omitempty"`
}

// Request is one line of the client→daemon stream.
type Request struct {
	API string `json:"api"`
	Op  string `json:"op"`

	ID        string   `json:"id,omitempty"`     // status, wait, cancel; logs job filter
	Tenant    string   `json:"tenant,omitempty"` // list filter
	Spec      *JobSpec `json:"spec,omitempty"`   // submit
	TimeoutMS int64    `json:"timeout_ms,omitempty"`

	// logs op: minimum level ("debug"/"info"/"warn"/"error", "" = all) and
	// record cap (0 = all buffered).
	Level string `json:"level,omitempty"`
	Max   int    `json:"max,omitempty"`
}

// Response is one line of the daemon→client stream.
type Response struct {
	OK  bool      `json:"ok"`
	Err *APIError `json:"error,omitempty"`

	ID   string      `json:"id,omitempty"`
	Job  *JobStatus  `json:"job,omitempty"`
	Jobs []JobStatus `json:"jobs,omitempty"`
	Info *Info       `json:"info,omitempty"`

	// Trace is the trace op's Chrome trace-event document (compact, one
	// line); Logs are the logs op's structured records, one JSON object
	// each, oldest first.
	Trace json.RawMessage   `json:"trace,omitempty"`
	Logs  []json.RawMessage `json:"logs,omitempty"`
}

// Info answers ping: daemon identity and live occupancy.
type Info struct {
	API        string `json:"api"`
	Config     string `json:"config"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	Draining   bool   `json:"draining"`

	Preemptions uint64 `json:"preemptions"`
	Retries     uint64 `json:"retries"`
	Recoveries  uint64 `json:"recoveries"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
}
