package daemon

import (
	"testing"
	"time"

	"xmtgo/internal/config"
	"xmtgo/internal/obs"
)

// BenchmarkDaemon measures the daemon's service quality end to end
// (scripts/bench_daemon.sh records both into BENCH_*.json):
//
//   - jobs/sec: short jobs pushed through the full pipeline — fsync'd
//     journal append, admission, queue, worker, result — per second.
//   - ttfs_ns: time-to-first-sample, from Submit until /status first shows
//     checkpointed progress for a longer job (how quickly a client watching
//     a fresh job sees it move).
func BenchmarkDaemon(b *testing.B) {
	cfg, err := config.Preset("fpga64")
	if err != nil {
		b.Fatal(err)
	}
	if err := cfg.Set("mem_bytes=1048576"); err != nil {
		b.Fatal(err)
	}
	d, err := New(Options{
		Config:          cfg,
		DataDir:         b.TempDir(),
		Workers:         2,
		CheckpointEvery: 50_000,
		Retries:         1,
		MaxQueued:       1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()

	// Time-to-first-sample: a ~300k-cycle job checkpoints several times;
	// measure submit -> first status carrying progress.
	t0 := time.Now()
	st, aerr := d.Submit(&JobSpec{Name: "ttfs", Kind: "asm", Source: loopSrc(100_000)})
	if aerr != nil {
		b.Fatal(aerr)
	}
	for {
		cur, aerr := d.Status(st.ID)
		if aerr != nil {
			b.Fatal(aerr)
		}
		if cur.Cycles > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ttfs := time.Since(t0)
	if _, aerr := d.Wait(st.ID, time.Minute); aerr != nil {
		b.Fatal(aerr)
	}

	spec := &JobSpec{Name: "bench", Kind: "asm", Source: loopSrc(2000)}
	b.ResetTimer()
	start := time.Now()
	ids := make([]string, 0, b.N)
	for i := 0; i < b.N; i++ {
		st, aerr := d.Submit(spec)
		if aerr != nil {
			b.Fatal(aerr)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, aerr := d.Wait(id, time.Minute)
		if aerr != nil {
			b.Fatal(aerr)
		}
		if st.State != StateDone {
			b.Fatalf("job %s ended %s: %+v", id, st.State, st.Result)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/sec")
	b.ReportMetric(float64(ttfs.Nanoseconds()), "ttfs_ns")

	// Distribution-aware service quality from the daemon's own latency
	// histograms (internal/obs): single-number averages hide tail latency,
	// so the bench gate tracks p50/p99 of queue wait and time-to-first-
	// sample across every job this run pushed through.
	sums := d.Hists().Summaries()
	b.ReportMetric(float64(sums[obs.HistQueueWait].P50Ns), "queue_wait_p50_ns")
	b.ReportMetric(float64(sums[obs.HistQueueWait].P99Ns), "queue_wait_p99_ns")
	b.ReportMetric(float64(sums[obs.HistTTFS].P50Ns), "ttfs_p50_ns")
	b.ReportMetric(float64(sums[obs.HistTTFS].P99Ns), "ttfs_p99_ns")
}
