package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"
)

// ParseAddr splits an xmtd address into network and address for net.Dial /
// net.Listen: "unix:/path/to.sock" selects a unix socket, everything else
// (optionally prefixed "tcp:") is a TCP host:port.
func ParseAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// Client is a synchronous xmt-jobs/v1 client: one request, one response, in
// order, over a single connection.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Dial connects to an xmtd daemon at addr (see ParseAddr).
func Dial(addr string) (*Client, error) {
	network, address := ParseAddr(addr)
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads its response. A response carrying a typed
// API error is returned as that *APIError.
func (c *Client) Do(req *Request) (*Response, error) {
	if req.API == "" {
		req.API = APIVersion
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("daemon: send: %v", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("daemon: recv: %v", err)
		}
		return nil, fmt.Errorf("daemon: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("daemon: recv: %v", err)
	}
	if resp.Err != nil {
		return &resp, resp.Err
	}
	return &resp, nil
}

// Submit enqueues a job and returns its status.
func (c *Client) Submit(spec *JobSpec) (*JobStatus, error) {
	resp, err := c.Do(&Request{Op: "submit", Spec: spec})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Status fetches one job's state.
func (c *Client) Status(id string) (*JobStatus, error) {
	resp, err := c.Do(&Request{Op: "status", ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// List fetches every job (optionally one tenant's).
func (c *Client) List(tenant string) ([]JobStatus, error) {
	resp, err := c.Do(&Request{Op: "list", Tenant: tenant})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Wait blocks until the job is terminal or timeout expires (0 = forever).
func (c *Client) Wait(id string, timeout time.Duration) (*JobStatus, error) {
	resp, err := c.Do(&Request{Op: "wait", ID: id, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(id string) (*JobStatus, error) {
	resp, err := c.Do(&Request{Op: "cancel", ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Trace snapshots the daemon's lifecycle span ring as a Chrome trace-event
// JSON document (Perfetto-loadable).
func (c *Client) Trace() ([]byte, error) {
	resp, err := c.Do(&Request{Op: "trace"})
	if err != nil {
		return nil, err
	}
	return []byte(resp.Trace), nil
}

// Logs fetches buffered structured log records, oldest first: level is the
// minimum ("debug"/"info"/"warn"/"error", "" = all), job filters to one job
// id, max caps the count (0 = all buffered).
func (c *Client) Logs(level, job string, max int) ([]json.RawMessage, error) {
	resp, err := c.Do(&Request{Op: "logs", Level: level, ID: job, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Logs, nil
}

// Ping checks liveness and returns daemon info.
func (c *Client) Ping() (*Info, error) {
	resp, err := c.Do(&Request{Op: "ping"})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// Drain asks the daemon to shut down gracefully; it responds after every
// running job has checkpointed and the journal carries the clean-shutdown
// marker.
func (c *Client) Drain() (*Info, error) {
	resp, err := c.Do(&Request{Op: "drain"})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}
