package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xmtgo/internal/asm"
	"xmtgo/internal/atomicfile"
	"xmtgo/internal/codegen"
	"xmtgo/internal/config"
	"xmtgo/internal/obs"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/metrics"
)

// Options configures a Daemon.
type Options struct {
	// Config is the base machine configuration; per-job Sets layer on top.
	Config config.Config
	// DataDir holds the journal (jobs.journal) and per-job checkpoint
	// envelopes (<id>.ckpt). Created if absent.
	DataDir string
	// Workers is the number of concurrent simulation workers (min 1).
	Workers int

	// BudgetCycles is the default first-attempt cycle budget for jobs that
	// do not set one (0 = unlimited, which disables timeout retries).
	BudgetCycles int64
	// CheckpointEvery checkpoints running jobs every N cluster cycles; it
	// also bounds preemption latency, since preemption and drain yield at
	// checkpoint boundaries (0 = only explicit requests checkpoint).
	CheckpointEvery int64
	// Retries bounds per-job retry attempts after a timeout or watchdog
	// trip; Backoff scales both the cycle budget and the watchdog window
	// between attempts (default 2).
	Retries int
	Backoff float64

	// MaxQueued bounds the global ready queue (default 256); beyond it
	// submissions fail with queue_full.
	MaxQueued int
	// TenantMaxQueued / TenantMaxRunning / TenantMaxBudget are per-tenant
	// quotas (0 = unlimited): queued jobs, concurrently running jobs, and
	// the largest per-job cycle budget a tenant may request (an unlimited
	// budget request counts as exceeding it).
	TenantMaxQueued  int
	TenantMaxRunning int
	TenantMaxBudget  int64

	// Monitor, when set, receives the daemon block on /status and per-job
	// interval samples on /stream?job=ID; the daemon also mounts its /logs
	// ring and latency-histogram series on it. SampleCycles is the sampler
	// period (0 = default).
	Monitor      *metrics.Server
	SampleCycles int64

	// Log, when set, receives the structured JSON log stream (one
	// slog record per line with job/tenant/attempt correlation fields).
	Log io.Writer
	// LogLevel is the minimum level emitted (zero value = Info; set
	// slog.LevelDebug for per-checkpoint detail).
	LogLevel slog.Level
	// TraceCapacity / LogCapacity bound the lifecycle span ring and the
	// /logs record ring (0 = obs package defaults).
	TraceCapacity int
	LogCapacity   int
}

// sentinel outcomes of one attempt's segment loop.
var (
	errPreempted = errors.New("daemon: preempted")
	errDrained   = errors.New("daemon: drained")
	errCanceled  = errors.New("daemon: canceled")
	errAborted   = errors.New("daemon: aborted")
)

// job is the daemon-internal job state. Mutable fields are guarded by
// Daemon.mu except where noted.
type job struct {
	id   string
	spec JobSpec
	seq  uint64 // journal seq of the submit record: FIFO tie-break
	prog *asm.Program

	heapIdx int // index in the ready heap (-1 when not queued)

	state       string
	attempt     int
	resumes     int
	preemptions int
	cycles      int64 // last checkpointed / final cycle
	budget      int64 // current attempt's budget
	result      *JobResult

	hasCkpt bool // a checkpoint envelope exists on disk

	// Requests delivered to the running attempt at its next checkpoint
	// boundary.
	preemptReq, cancelReq, drainReq bool
	sys                             *cycle.System // non-nil while simulating

	// Observability clocks (host ns on the daemon tracer's epoch):
	// submittedNs anchors the queued span (set on every enqueue),
	// preemptNs the preempt span, retryNs the retry-backoff histogram.
	// Each is consumed (reset to 0) by the stage that closes its span.
	submittedNs, preemptNs, retryNs int64

	log *slog.Logger // pre-bound with job/tenant correlation fields

	done chan struct{} // closed when the job reaches a terminal state
}

// Daemon is the xmtd core: queue, workers, journal and API handlers.
type Daemon struct {
	opts Options

	jmu     sync.Mutex // serializes journal appends (fsync outside d.mu)
	journal *Journal

	mu          sync.Mutex
	cond        *sync.Cond
	queue       jobQueue
	jobs        map[string]*job
	order       []string // submission order, for list
	nextID      uint64
	running     int
	runningBy   map[string]int // tenant -> running count
	draining    bool
	stopWorkers bool
	ln          net.Listener

	preemptions, retries, recoveries uint64
	completed, failed, canceled      uint64

	aborted atomic.Bool // test hook: simulate a crash (no clean journaling)

	obs *obsState // lifecycle tracer, latency histograms, structured logs

	compiles sync.Map // source hash -> *asm.Program

	wg sync.WaitGroup
}

// New opens (or creates) the daemon state under opts.DataDir, replays the
// journal, re-queues every non-terminal job — jobs that were mid-run when
// the previous process died resume from their last checkpoint envelope —
// and starts the worker pool.
func New(opts Options) (*Daemon, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Backoff <= 1 {
		opts.Backoff = 2
	}
	if opts.MaxQueued <= 0 {
		opts.MaxQueued = 256
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, err
	}
	jl, recs, err := OpenJournal(filepath.Join(opts.DataDir, "jobs.journal"))
	if err != nil {
		return nil, err
	}

	d := &Daemon{
		opts:      opts,
		journal:   jl,
		jobs:      make(map[string]*job),
		runningBy: make(map[string]int),
	}
	d.obs = newObsState(&opts)
	d.cond = sync.NewCond(&d.mu)
	if err := d.recover(recs); err != nil {
		jl.Close()
		return nil, err
	}
	if opts.Monitor != nil {
		opts.Monitor.SetPromExtra(d.renderPromObs)
		opts.Monitor.Handle("/logs", d.obs.ring)
	}

	for i := 0; i < opts.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	d.mu.Lock()
	d.publishLocked()
	d.mu.Unlock()
	return d, nil
}

// recover rebuilds the job table from journal records and re-queues
// unfinished work.
func (d *Daemon) recover(recs []Record) error {
	interrupted := make(map[string]bool) // running (not cleanly suspended) at crash
	for _, rec := range recs {
		j := d.jobs[rec.ID]
		switch rec.Kind {
		case RecSubmit:
			if rec.Spec == nil {
				return fmt.Errorf("daemon: journal: submit %s without spec", rec.ID)
			}
			j = &job{
				id:      rec.ID,
				spec:    *rec.Spec,
				seq:     rec.Seq,
				heapIdx: -1,
				state:   StateQueued,
				done:    make(chan struct{}),
			}
			j.log = d.obs.log.With("job", j.id, "tenant", tenantOf(&j.spec))
			d.jobs[rec.ID] = j
			d.order = append(d.order, rec.ID)
			var n uint64
			if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > d.nextID {
				d.nextID = n
			}
		case RecStart:
			if j != nil {
				j.attempt = rec.Attempt
				interrupted[j.id] = true
			}
		case RecCkpt:
			if j != nil {
				j.cycles = rec.Cycle
				j.hasCkpt = true
			}
		case RecPreempt:
			if j != nil {
				interrupted[j.id] = false
				if rec.Reason == "preempt" {
					j.preemptions++
				}
			}
		case RecDone:
			if j != nil {
				j.state, j.result = StateDone, rec.Result
				interrupted[j.id] = false
				close(j.done)
			}
		case RecFail:
			if j != nil {
				j.state = StateFailed
				j.result = &JobResult{Err: rec.Reason}
				if rec.Result != nil {
					j.result = rec.Result
				}
				interrupted[j.id] = false
				close(j.done)
			}
		case RecCancel:
			if j != nil {
				j.state = StateCanceled
				j.result = &JobResult{Err: "canceled"}
				interrupted[j.id] = false
				close(j.done)
			}
		case RecDrain:
			// Clean shutdown marker; nothing per-job to do.
		}
	}

	for _, id := range d.order {
		j := d.jobs[id]
		if j.state != StateQueued {
			continue
		}
		prog, aerr := d.compile(&j.spec)
		if aerr != nil {
			// The spec compiled at submit time; failing here means the
			// journal was tampered with or the toolchain changed.
			j.state = StateFailed
			j.result = &JobResult{Err: aerr.Error()}
			close(j.done)
			d.failed++
			continue
		}
		j.prog = prog
		if interrupted[id] {
			d.recoveries++
			d.obs.tracer.Instant(id, tenantOf(&j.spec), "recovered", j.attempt)
			j.log.Info("recovered from journal", "op", "recover",
				"attempt", j.attempt, "cycle", j.cycles)
		}
		j.submittedNs = d.obs.tracer.Now()
		d.queue.push(j)
	}
	return nil
}

// appendT journals one record (fsync included), timing it into the
// journal_fsync histogram and a journal-append span. tenant may be ""
// for records without one (the span then lands on the daemon pid).
func (d *Daemon) appendT(rec Record, tenant string) (uint64, error) {
	start := d.obs.tracer.Now()
	d.jmu.Lock()
	if d.journal == nil {
		d.jmu.Unlock()
		return 0, errors.New("daemon: journal closed")
	}
	seq, err := d.journal.Append(rec)
	d.jmu.Unlock()
	dur := d.obs.tracer.Now() - start
	d.obs.hists.Observe(obs.HistJournalFsync, dur)
	d.obs.tracer.Add(obs.Span{Job: rec.ID, Tenant: tenant, Name: "journal-append",
		StartNs: start, DurNs: dur, Detail: rec.Kind})
	return seq, err
}

func tenantOf(spec *JobSpec) string {
	if spec.Tenant == "" {
		return "default"
	}
	return spec.Tenant
}

// compile builds (or fetches from cache) the program for a spec.
func (d *Daemon) compile(spec *JobSpec) (*asm.Program, *APIError) {
	h := fnv.New64a()
	io.WriteString(h, spec.Kind)
	h.Write([]byte{0})
	io.WriteString(h, spec.Source)
	key := h.Sum64()
	if p, ok := d.compiles.Load(key); ok {
		return p.(*asm.Program), nil
	}

	var unit *asm.Unit
	var err error
	switch spec.Kind {
	case "", "asm":
		unit, err = asm.Parse(spec.Name+".s", spec.Source)
	case "xmtc", "c":
		var res *codegen.Result
		res, err = codegen.Compile(spec.Name+".c", spec.Source, codegen.Options{OptLevel: 1, PrefetchSlots: 4})
		if res != nil {
			unit = res.Unit
		}
	default:
		return nil, apiErrorf(ErrBadRequest, "unknown program kind %q (want asm or xmtc)", spec.Kind)
	}
	if err != nil {
		return nil, apiErrorf(ErrCompile, "%v", err)
	}
	prog, err := asm.Assemble(unit)
	if err != nil {
		return nil, apiErrorf(ErrCompile, "%v", err)
	}
	d.compiles.Store(key, prog)
	return prog, nil
}

// Submit validates, journals and enqueues a job. It performs admission
// control: draining, queue bounds and tenant quotas map to typed errors. A
// successful return means the job is durably journaled — it survives
// kill -9 from this point on.
func (d *Daemon) Submit(spec *JobSpec) (*JobStatus, *APIError) {
	if spec == nil || spec.Source == "" {
		return nil, apiErrorf(ErrBadRequest, "submit needs spec.source")
	}
	cfg := d.opts.Config
	for _, kv := range spec.Sets {
		if err := cfg.Set(kv); err != nil {
			return nil, apiErrorf(ErrBadRequest, "%v", err)
		}
	}
	tenant := tenantOf(spec)
	compileStart := d.obs.tracer.Now()
	prog, aerr := d.compile(spec)
	compileDur := d.obs.tracer.Now() - compileStart
	if aerr != nil {
		d.obs.log.Warn("compile failed", "op", "submit", "tenant", tenant,
			"name", spec.Name, "err", aerr.Message)
		return nil, aerr
	}
	d.obs.hists.Observe(obs.HistCompile, compileDur)

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil, apiErrorf(ErrDraining, "daemon is draining; not accepting jobs")
	}
	if d.queue.Len() >= d.opts.MaxQueued {
		d.mu.Unlock()
		return nil, apiErrorf(ErrQueueFull, "ready queue full (%d jobs)", d.opts.MaxQueued)
	}
	if q := d.opts.TenantMaxQueued; q > 0 {
		queued := 0
		for _, other := range d.jobs {
			if other.state == StateQueued && tenantOf(&other.spec) == tenant {
				queued++
			}
		}
		if queued >= q {
			d.mu.Unlock()
			return nil, apiErrorf(ErrQuotaExceeded, "tenant %s: %d jobs already queued (max %d)", tenant, queued, q)
		}
	}
	if cap := d.opts.TenantMaxBudget; cap > 0 {
		if spec.BudgetCycles <= 0 || spec.BudgetCycles > cap {
			d.mu.Unlock()
			return nil, apiErrorf(ErrQuotaExceeded, "tenant %s: budget_cycles %d exceeds quota %d (unlimited counts as exceeding)",
				tenant, spec.BudgetCycles, cap)
		}
	}
	d.nextID++
	id := fmt.Sprintf("j%d", d.nextID)
	d.mu.Unlock()

	// The compile span carries the job id, so it is emitted only now that
	// the id exists (the measured start/duration are unaffected).
	d.obs.tracer.Add(obs.Span{Job: id, Tenant: tenant, Name: "compile",
		StartNs: compileStart, DurNs: compileDur, Priority: spec.Priority})

	// Journal before exposing the job: once acknowledged, it is durable.
	seq, err := d.appendT(Record{Kind: RecSubmit, ID: id, Spec: spec}, tenant)
	if err != nil {
		return nil, apiErrorf(ErrInternal, "journal: %v", err)
	}

	d.mu.Lock()
	j := &job{
		id:      id,
		spec:    *spec,
		seq:     seq,
		prog:    prog,
		heapIdx: -1,
		state:   StateQueued,
		done:    make(chan struct{}),
	}
	j.log = d.obs.log.With("job", id, "tenant", tenant)
	j.submittedNs = d.obs.tracer.Now()
	d.jobs[id] = j
	d.order = append(d.order, id)
	d.queue.push(j)
	d.maybePreemptLocked(j)
	d.cond.Signal()
	d.publishLocked()
	st := statusOf(j)
	d.mu.Unlock()
	j.log.Info("queued", "op", "submit", "priority", spec.Priority,
		"kind", spec.Kind, "name", spec.Name)
	return st, nil
}

// maybePreemptLocked asks the lowest-priority running job to yield when a
// strictly higher-priority submission arrives and no worker is free. The
// victim checkpoints at its next quiescent boundary and re-enters the queue
// with its original position; the resumed run is bit-identical.
func (d *Daemon) maybePreemptLocked(newJob *job) {
	if d.running < d.opts.Workers {
		return // a free worker will pick the new job up
	}
	var victim *job
	for _, j := range d.jobs {
		if j.state != StateRunning || j.preemptReq || j.cancelReq || j.drainReq {
			continue
		}
		if j.spec.Priority >= newJob.spec.Priority {
			continue
		}
		if victim == nil || j.spec.Priority < victim.spec.Priority ||
			(j.spec.Priority == victim.spec.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim == nil {
		return
	}
	victim.preemptReq = true
	victim.preemptNs = d.obs.tracer.Now()
	if victim.sys != nil {
		victim.sys.RequestCheckpoint()
	}
	victim.log.Info("preempting", "op", "preempt", "for", newJob.id,
		"new_priority", newJob.spec.Priority, "priority", victim.spec.Priority)
}

// Status returns a job's externally visible state.
func (d *Daemon) Status(id string) (*JobStatus, *APIError) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.jobs[id]
	if j == nil {
		return nil, apiErrorf(ErrNotFound, "no job %s", id)
	}
	return statusOf(j), nil
}

// List returns every job (optionally one tenant's) in submission order.
func (d *Daemon) List(tenant string) []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		j := d.jobs[id]
		if tenant != "" && tenantOf(&j.spec) != tenant {
			continue
		}
		out = append(out, *statusOf(j))
	}
	return out
}

// Wait blocks until the job reaches a terminal state or the timeout
// expires.
func (d *Daemon) Wait(id string, timeout time.Duration) (*JobStatus, *APIError) {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return nil, apiErrorf(ErrNotFound, "no job %s", id)
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-j.done:
	case <-timer:
		return nil, apiErrorf(ErrTimeout, "job %s not done after %v", id, timeout)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return statusOf(j), nil
}

// Cancel cancels a queued job immediately, or asks a running job to stop at
// its next checkpoint boundary.
func (d *Daemon) Cancel(id string) (*JobStatus, *APIError) {
	d.mu.Lock()
	j := d.jobs[id]
	if j == nil {
		d.mu.Unlock()
		return nil, apiErrorf(ErrNotFound, "no job %s", id)
	}
	switch j.state {
	case StateQueued:
		d.queue.remove(j)
		j.state = StateCanceled
		j.result = &JobResult{Err: "canceled"}
		d.canceled++
		close(j.done)
		d.publishLocked()
		d.mu.Unlock()
		// Journal after the state flip: a crash in between re-queues the
		// job once, and the cancel is simply lost — never a double-run.
		d.appendT(Record{Kind: RecCancel, ID: id}, tenantOf(&j.spec))
		d.obs.tracer.Instant(id, tenantOf(&j.spec), "cancel", j.attempt)
		j.log.Info("canceled while queued", "op", "cancel")
		d.mu.Lock()
	case StateRunning:
		j.cancelReq = true
		if j.sys != nil {
			j.sys.RequestCheckpoint()
		}
	}
	defer d.mu.Unlock()
	return statusOf(j), nil
}

// Info returns the ping payload.
func (d *Daemon) Info() *Info {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &Info{
		API:        APIVersion,
		Config:     d.opts.Config.Name,
		Workers:    d.opts.Workers,
		QueueDepth: d.queue.Len(),
		Running:    d.running,
		Draining:   d.draining,

		Preemptions: d.preemptions,
		Retries:     d.retries,
		Recoveries:  d.recoveries,
		Completed:   d.completed,
		Failed:      d.failed,
		Canceled:    d.canceled,
	}
}

func statusOf(j *job) *JobStatus {
	st := &JobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		Tenant:      tenantOf(&j.spec),
		Priority:    j.spec.Priority,
		State:       j.state,
		Attempt:     j.attempt,
		Resumes:     j.resumes,
		Preemptions: j.preemptions,
		Cycles:      j.cycles,
		Budget:      j.budget,
		Result:      j.result,
	}
	return st
}

// publishLocked pushes the daemon block to the metrics server. Caller holds
// d.mu.
func (d *Daemon) publishLocked() {
	if d.opts.Monitor == nil {
		return
	}
	ds := metrics.DaemonStatus{
		QueueDepth: d.queue.Len(),
		Running:    d.running,
		Workers:    d.opts.Workers,
		Draining:   d.draining,

		Preemptions: d.preemptions,
		Retries:     d.retries,
		Recoveries:  d.recoveries,
		Completed:   d.completed,
		Failed:      d.failed,
		Canceled:    d.canceled,

		Latencies:  d.obs.hists.Summaries(),
		LogDropped: d.obs.ring.Dropped(),
	}
	ds.TraceSpans, ds.TraceDropped = d.obs.tracer.Stats()
	ds.Tenants = make(map[string]metrics.TenantOccupancy)
	for _, j := range d.jobs {
		t := tenantOf(&j.spec)
		occ := ds.Tenants[t]
		switch j.state {
		case StateQueued:
			occ.Queued++
		case StateRunning:
			occ.Running++
		}
		ds.Tenants[t] = occ
	}
	d.opts.Monitor.PublishDaemon(ds)
}

// worker is one simulation worker: pull the highest-priority eligible job,
// run it to a terminal state or a yield point, repeat.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		j := d.nextJob()
		if j == nil {
			return
		}
		d.runJob(j)
	}
}

// nextJob blocks until a job is eligible (tenant running-quota respected) or
// the daemon stops dispatching.
func (d *Daemon) nextJob() *job {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.stopWorkers {
			return nil
		}
		var skipped []*job
		var pick *job
		for !d.queue.empty() {
			j := d.queue.pop()
			if q := d.opts.TenantMaxRunning; q > 0 && d.runningBy[tenantOf(&j.spec)] >= q {
				skipped = append(skipped, j)
				continue
			}
			pick = j
			break
		}
		for _, s := range skipped {
			d.queue.push(s)
		}
		if pick != nil {
			pick.state = StateRunning
			d.running++
			d.runningBy[tenantOf(&pick.spec)]++
			if pick.submittedNs > 0 {
				wait := d.obs.tracer.Now() - pick.submittedNs
				d.obs.hists.Observe(obs.HistQueueWait, wait)
				d.obs.tracer.Add(obs.Span{Job: pick.id, Tenant: tenantOf(&pick.spec),
					Name: "queued", StartNs: pick.submittedNs, DurNs: wait,
					Priority: pick.spec.Priority})
				pick.submittedNs = 0
			}
			d.publishLocked()
			return pick
		}
		d.cond.Wait()
	}
}

// release takes a job off a worker: clears the running accounting. Caller
// then either re-queues it (yield) or marks it terminal.
func (d *Daemon) releaseLocked(j *job) {
	d.running--
	d.runningBy[tenantOf(&j.spec)]--
	j.sys = nil
	// Completion may unblock a tenant at its running quota.
	d.cond.Broadcast()
}

// terminal flips a job into a terminal state and wakes waiters.
func (d *Daemon) terminal(j *job, state string, result *JobResult) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseLocked(j)
	j.state = state
	j.result = result
	if result != nil {
		j.cycles = result.Cycles
	}
	switch state {
	case StateDone:
		d.completed++
	case StateFailed:
		d.failed++
	case StateCanceled:
		d.canceled++
	}
	close(j.done)
	d.publishLocked()
}

// requeue returns a preempted job to the ready queue with its original
// enqueue sequence.
func (d *Daemon) requeue(j *job) {
	now := d.obs.tracer.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseLocked(j)
	j.state = StateQueued
	j.preemptReq = false
	j.preemptions++
	d.preemptions++
	if j.preemptNs > 0 {
		// The preempt span covers request -> back in queue: the daemon's
		// preemption turnaround (bounded by CheckpointEvery).
		d.obs.hists.Observe(obs.HistPreemptRequeue, now-j.preemptNs)
		d.obs.tracer.Add(obs.Span{Job: j.id, Tenant: tenantOf(&j.spec),
			Name: "preempt", StartNs: j.preemptNs, DurNs: now - j.preemptNs,
			Attempt: j.attempt, Priority: j.spec.Priority})
		j.preemptNs = 0
	}
	j.submittedNs = now
	d.queue.push(j)
	d.cond.Signal()
	d.publishLocked()
}

// suspend parks a job cleanly during drain: it stays queued (and journaled
// as such) so the next daemon on this data dir resumes it from its
// checkpoint. Zero lost jobs.
func (d *Daemon) suspend(j *job) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseLocked(j)
	j.state = StateQueued
	j.drainReq = false
	j.submittedNs = d.obs.tracer.Now()
	d.queue.push(j)
	d.publishLocked()
}

// envelope is the per-job checkpoint sidecar (<id>.ckpt): the simulator
// checkpoint plus the output accumulated up to it, so a resumed job's final
// output is byte-identical to an uninterrupted run's.
type envelope struct {
	Ckpt   []byte // checkpoint.Save bytes (self-versioned)
	Output string
}

func (d *Daemon) envPath(j *job) string {
	return filepath.Join(d.opts.DataDir, j.id+".ckpt")
}

func (d *Daemon) saveEnvelope(j *job, st *checkpoint.State, output string) error {
	var buf bytes.Buffer
	if err := checkpoint.Save(&buf, st); err != nil {
		return err
	}
	return atomicfile.WriteFunc(d.envPath(j), 0o644, func(w io.Writer) error {
		return gobEncode(w, &envelope{Ckpt: buf.Bytes(), Output: output})
	})
}

func (d *Daemon) loadEnvelope(j *job) (*checkpoint.State, string, error) {
	f, err := os.Open(d.envPath(j))
	if os.IsNotExist(err) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var env envelope
	if err := gobDecode(f, &env); err != nil {
		return nil, "", fmt.Errorf("daemon: envelope %s: %v", d.envPath(j), err)
	}
	st, err := checkpoint.Load(bytes.NewReader(env.Ckpt))
	if err != nil {
		return nil, "", err
	}
	return st, env.Output, nil
}

// runJob drives one job from its current checkpoint (if any) to a terminal
// state, a preemption/drain yield, or its retry bound.
func (d *Daemon) runJob(j *job) {
	tenant := tenantOf(&j.spec)
	st, prefix, err := d.loadEnvelope(j)
	if err != nil {
		d.appendT(Record{Kind: RecFail, ID: j.id, Reason: err.Error()}, tenant)
		d.terminal(j, StateFailed, &JobResult{Err: err.Error()})
		d.obs.tracer.Instant(j.id, tenant, "fail", j.attempt)
		j.log.Error("envelope load failed", "op", "run", "err", err.Error())
		return
	}

	cfg := d.opts.Config
	for _, kv := range j.spec.Sets {
		_ = cfg.Set(kv) // validated at submit
	}
	base := j.spec.BudgetCycles
	if base == 0 {
		base = d.opts.BudgetCycles
	}
	deadline := j.spec.DeadlineCycles
	baseWatchdog := cfg.WatchdogCycles

	retries := 0
	for {
		budget := base
		if budget > 0 && retries > 0 {
			budget = int64(float64(budget) * math.Pow(d.opts.Backoff, float64(retries)))
		}
		if deadline > 0 && (budget <= 0 || budget > deadline) {
			budget = deadline
		}
		if baseWatchdog > 0 && retries > 0 {
			// A watchdog trip retries with a wider no-retire window too:
			// the hang may have been a configuration artifact, and the
			// budget alone cannot help if the watchdog re-trips first.
			cfg.WatchdogCycles = int64(float64(baseWatchdog) * math.Pow(d.opts.Backoff, float64(retries)))
		}

		d.mu.Lock()
		j.attempt++
		j.budget = budget
		resumed := st != nil
		if resumed {
			j.resumes++
		}
		att := j.attempt
		d.mu.Unlock()
		attStart := d.obs.tracer.Now()
		if j.retryNs > 0 {
			d.obs.hists.Observe(obs.HistRetryBackoff, attStart-j.retryNs)
			j.retryNs = 0
		}
		if resumed {
			d.obs.tracer.Instant(j.id, tenant, "resume", att)
		}
		if _, err := d.appendT(Record{Kind: RecStart, ID: j.id, Attempt: att}, tenant); err != nil {
			d.terminal(j, StateFailed, &JobResult{Err: fmt.Sprintf("journal: %v", err)})
			d.obs.tracer.Instant(j.id, tenant, "fail", att)
			return
		}
		j.log.Info("attempt started", "op", "run", "attempt", att,
			"budget", budget, "resumed", resumed)

		out := d.runSegments(j, cfg, &st, &prefix, budget, att, attStart)
		d.obs.tracer.Add(obs.Span{Job: j.id, Tenant: tenant, Name: "run",
			StartNs: attStart, DurNs: d.obs.tracer.Now() - attStart,
			Attempt: att, Priority: j.spec.Priority, Detail: outcomeOf(&out)})
		switch {
		case errors.Is(out.err, errAborted):
			return // simulated crash: leave no clean trace
		case errors.Is(out.err, errCanceled):
			d.appendT(Record{Kind: RecCancel, ID: j.id}, tenant)
			d.terminal(j, StateCanceled, &JobResult{Cycles: out.cycle, Output: out.output, Err: "canceled"})
			d.obs.tracer.Instant(j.id, tenant, "cancel", att)
			j.log.Info("canceled", "op", "run", "attempt", att, "cycle", out.cycle)
			return
		case errors.Is(out.err, errPreempted):
			d.appendT(Record{Kind: RecPreempt, ID: j.id, Cycle: out.cycle, Reason: "preempt"}, tenant)
			d.requeue(j)
			j.log.Info("preempted", "op", "run", "attempt", att, "cycle", out.cycle)
			return
		case errors.Is(out.err, errDrained):
			d.appendT(Record{Kind: RecPreempt, ID: j.id, Cycle: out.cycle, Reason: "drain"}, tenant)
			d.suspend(j)
			j.log.Info("suspended for drain", "op", "run", "attempt", att, "cycle", out.cycle)
			return
		}

		if out.err == nil && out.halted {
			res := &JobResult{
				Cycles:  out.cycle,
				Instrs:  out.instrs,
				Output:  out.output,
				MemHash: out.memHash,
			}
			d.appendT(Record{Kind: RecDone, ID: j.id, Result: res}, tenant)
			d.terminal(j, StateDone, res)
			d.obs.tracer.Instant(j.id, tenant, "done", att)
			j.log.Info("done", "op", "run", "attempt", att,
				"cycles", out.cycle, "instrs", out.instrs)
			return
		}

		// Failure or timeout: build the structured diagnostic, decide
		// whether to retry from the last checkpoint.
		diag := ""
		switch {
		case out.err != nil:
			diag = out.err.Error()
		case deadline > 0 && out.cycle >= deadline:
			diag = fmt.Sprintf("deadline_cycles %d reached at cycle %d (attempt %d)", deadline, out.cycle, att)
			d.appendT(Record{Kind: RecFail, ID: j.id, Reason: diag}, tenant)
			d.terminal(j, StateFailed, &JobResult{Cycles: out.cycle, Output: out.output, Err: diag})
			d.obs.tracer.Instant(j.id, tenant, "fail", att)
			j.log.Warn("failed", "op", "run", "attempt", att, "err", diag)
			return
		default:
			diag = fmt.Sprintf("cycle budget %d exhausted at cycle %d (attempt %d)", budget, out.cycle, att)
		}
		if retries >= d.opts.Retries {
			d.appendT(Record{Kind: RecFail, ID: j.id, Reason: diag}, tenant)
			d.terminal(j, StateFailed, &JobResult{Cycles: out.cycle, Output: out.output, Err: diag})
			d.obs.tracer.Instant(j.id, tenant, "fail", att)
			j.log.Warn("giving up", "op", "run", "attempt", att, "err", diag)
			return
		}
		retries++
		j.retryNs = d.obs.tracer.Now()
		d.mu.Lock()
		d.retries++
		d.mu.Unlock()
		j.log.Warn("attempt failed; retrying", "op", "run", "attempt", att, "err", diag)
		// st/prefix were advanced to the last persisted checkpoint by
		// runSegments; the retry resumes there.
	}
}

// segmentsOut is the outcome of one attempt.
type segmentsOut struct {
	halted  bool
	cycle   int64
	instrs  uint64
	output  string // total accumulated output (resumed prefix included)
	memHash string // set when halted
	err     error  // nil, a sentinel, or a simulation error (watchdog etc.)
}

// outcomeOf classifies one attempt's outcome for the run span's detail arg.
func outcomeOf(out *segmentsOut) string {
	switch {
	case errors.Is(out.err, errAborted):
		return "abort"
	case errors.Is(out.err, errCanceled):
		return "cancel"
	case errors.Is(out.err, errPreempted):
		return "preempt"
	case errors.Is(out.err, errDrained):
		return "drain"
	case out.err != nil:
		return "error"
	case out.halted:
		return "done"
	default:
		return "timeout"
	}
}

// runSegments runs one attempt as a chain of simulation segments separated
// by checkpoint stops. At each stop it persists the envelope and the
// journal record, then honors pending cancel/drain/preempt requests. st and
// prefix track the last persisted checkpoint across the call — on a retry
// the caller resumes from exactly that state.
func (d *Daemon) runSegments(j *job, cfg config.Config, st **checkpoint.State, prefix *string, budget int64, att int, attStart int64) segmentsOut {
	tenant := tenantOf(&j.spec)
	ttfsSeen := false
	// ttfs measures worker start -> the attempt's first observable sample
	// (first persisted checkpoint, or completion when the run never
	// checkpoints): how long a client waits before progress is visible.
	observeTTFS := func() {
		if !ttfsSeen {
			ttfsSeen = true
			d.obs.hists.Observe(obs.HistTTFS, d.obs.tracer.Now()-attStart)
		}
	}
	var out bytes.Buffer
	startPrefix := *prefix
	for {
		sys, err := cycle.New(j.prog, cfg, &out)
		if err != nil {
			return segmentsOut{err: err, output: startPrefix + out.String()}
		}
		if *st != nil {
			if err := sys.RestoreState(*st); err != nil {
				return segmentsOut{err: err, output: startPrefix + out.String()}
			}
		}
		sys.CheckpointEvery(d.opts.CheckpointEvery)

		// Expose the system for preemption/cancel; deliver requests that
		// raced with construction.
		d.mu.Lock()
		j.sys = sys
		if j.preemptReq || j.cancelReq || j.drainReq {
			sys.RequestCheckpoint()
		}
		d.mu.Unlock()
		if d.aborted.Load() {
			return segmentsOut{err: errAborted}
		}

		var smp *metrics.Sampler
		if d.opts.Monitor != nil {
			interval := d.opts.SampleCycles
			if interval <= 0 {
				interval = 10000
			}
			if smp = metrics.Attach(sys, interval); smp != nil {
				smp.SetServer(d.opts.Monitor)
				smp.SetJob(j.id)
			}
		}

		segBudget := int64(0)
		if budget > 0 {
			segBudget = budget - offsetOf(*st)
			if segBudget <= 0 {
				return segmentsOut{cycle: offsetOf(*st), output: startPrefix + out.String()}
			}
		}
		res, err := sys.Run(segBudget)
		if smp != nil && res != nil {
			smp.Finalize(res.Cycles, int64(res.Ticks), sys.Stats, sys.AliveTCUs())
		}
		if err != nil {
			cyc := offsetOf(*st)
			if res != nil {
				cyc = res.Cycles
			}
			return segmentsOut{cycle: cyc, output: startPrefix + out.String(), err: err}
		}

		if res.Checkpoint {
			// A crash may land anywhere in this window; every ordering is
			// recoverable because the envelope write is atomic and the
			// journal append is the commit point.
			if d.aborted.Load() {
				return segmentsOut{err: errAborted}
			}
			cst := sys.Capture()
			envOut := startPrefix + out.String()
			ckptStart := d.obs.tracer.Now()
			if err := d.saveEnvelope(j, cst, envOut); err != nil {
				return segmentsOut{cycle: res.Cycles, output: envOut, err: err}
			}
			ckptDur := d.obs.tracer.Now() - ckptStart
			d.obs.hists.Observe(obs.HistCkptWrite, ckptDur)
			d.obs.tracer.Add(obs.Span{Job: j.id, Tenant: tenant, Name: "checkpoint-write",
				StartNs: ckptStart, DurNs: ckptDur, Attempt: att})
			if d.aborted.Load() {
				return segmentsOut{err: errAborted}
			}
			if _, err := d.appendT(Record{Kind: RecCkpt, ID: j.id, Cycle: res.Cycles}, tenant); err != nil {
				return segmentsOut{cycle: res.Cycles, output: envOut, err: err}
			}
			observeTTFS()
			*st, *prefix = cst, envOut
			j.hasCkpt = true
			j.log.Debug("checkpoint", "op", "ckpt", "attempt", att, "cycle", res.Cycles)

			d.mu.Lock()
			j.cycles = res.Cycles
			cancel, drain, preempt := j.cancelReq, j.drainReq, j.preemptReq
			stopping := d.stopWorkers
			d.publishLocked()
			d.mu.Unlock()
			switch {
			case cancel:
				return segmentsOut{cycle: res.Cycles, output: envOut, err: errCanceled}
			case drain || (stopping && d.draining):
				return segmentsOut{cycle: res.Cycles, output: envOut, err: errDrained}
			case preempt:
				return segmentsOut{cycle: res.Cycles, output: envOut, err: errPreempted}
			}
			continue
		}

		totalOut := startPrefix + out.String()
		if res.Halted {
			observeTTFS()
			fin := sys.Capture()
			return segmentsOut{
				halted:  true,
				cycle:   res.Cycles,
				instrs:  res.Instrs,
				output:  totalOut,
				memHash: memHash(fin, totalOut),
			}
		}
		// Timed out (budget exhausted).
		return segmentsOut{cycle: res.Cycles, output: totalOut}
	}
}

func offsetOf(st *checkpoint.State) int64 {
	if st == nil {
		return 0
	}
	return st.CycleOffset
}

// memHash fingerprints the final architectural state: FNV-1a over shared
// memory, the global registers and the program output. Two runs with equal
// hashes ended bit-identical for every architecturally visible artifact.
func memHash(st *checkpoint.State, output string) string {
	h := fnv.New64a()
	h.Write(st.Mem)
	var b [4]byte
	for _, g := range st.G {
		b[0], b[1], b[2], b[3] = byte(g), byte(g>>8), byte(g>>16), byte(g>>24)
		h.Write(b[:])
	}
	io.WriteString(h, output)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Serve accepts connections on ln and speaks the xmt-jobs/v1 line protocol
// until the listener closes (drain or Close).
func (d *Daemon) Serve(ln net.Listener) error {
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			stopping := d.draining || d.stopWorkers
			d.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		go d.handleConn(conn)
	}
}

// Drain performs the graceful shutdown: stop admitting, suspend running
// jobs at their next checkpoint boundary, journal the clean-shutdown
// marker, close the journal. Queued and suspended jobs remain durably
// journaled for the next daemon on this data dir. Idempotent.
func (d *Daemon) Drain() error {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	d.stopWorkers = true
	for _, j := range d.jobs {
		if j.state == StateRunning {
			j.drainReq = true
			if j.sys != nil {
				j.sys.RequestCheckpoint()
			}
		}
	}
	d.cond.Broadcast()
	d.publishLocked()
	d.mu.Unlock()

	d.wg.Wait()
	if already {
		return nil
	}
	var err error
	d.jmu.Lock()
	if d.journal != nil {
		_, err = d.journal.Append(Record{Kind: RecDrain})
		if cerr := d.journal.Close(); err == nil {
			err = cerr
		}
		d.journal = nil
	}
	d.jmu.Unlock()
	d.mu.Lock()
	d.publishLocked()
	d.mu.Unlock()
	d.obs.log.Info("drained", "op", "drain")
	return err
}

// Abort simulates a crash for recovery tests: workers stop at their next
// checkpoint boundary without journaling any clean suspend/terminal
// records, and the journal file is closed as-is — exactly the on-disk state
// a kill -9 would leave (appends are fsync'd individually). Not part of the
// public protocol.
func (d *Daemon) Abort() {
	d.aborted.Store(true)
	d.mu.Lock()
	d.stopWorkers = true
	for _, j := range d.jobs {
		if j.state == StateRunning && j.sys != nil {
			j.sys.RequestCheckpoint()
		}
	}
	d.cond.Broadcast()
	if d.ln != nil {
		d.ln.Close()
	}
	d.mu.Unlock()
	d.wg.Wait()
	d.jmu.Lock()
	if d.journal != nil {
		d.journal.f.Close() // no flush beyond the already-fsync'd appends
		d.journal = nil
	}
	d.jmu.Unlock()
}

// Close shuts the daemon down without the drain protocol (used on fatal
// errors). Prefer Drain for orderly shutdown.
func (d *Daemon) Close() error {
	d.mu.Lock()
	d.stopWorkers = true
	d.cond.Broadcast()
	if d.ln != nil {
		d.ln.Close()
	}
	for _, j := range d.jobs {
		if j.state == StateRunning {
			j.drainReq = true
			if j.sys != nil {
				j.sys.RequestCheckpoint()
			}
		}
	}
	d.draining = true
	d.mu.Unlock()
	d.wg.Wait()
	d.jmu.Lock()
	defer d.jmu.Unlock()
	if d.journal != nil {
		err := d.journal.Close()
		d.journal = nil
		return err
	}
	return nil
}

// CloseListener stops the accept loop (the drain API op uses it after
// responding).
func (d *Daemon) CloseListener() {
	d.mu.Lock()
	if d.ln != nil {
		d.ln.Close()
	}
	d.mu.Unlock()
}
