package daemon

import (
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"xmtgo/internal/sim/metrics"
)

func TestParseAddr(t *testing.T) {
	for _, tc := range []struct {
		in, network, address string
	}{
		{"unix:/tmp/x.sock", "unix", "/tmp/x.sock"},
		{"tcp:127.0.0.1:9901", "tcp", "127.0.0.1:9901"},
		{"127.0.0.1:9901", "tcp", "127.0.0.1:9901"},
		{":9901", "tcp", ":9901"},
	} {
		network, address := ParseAddr(tc.in)
		if network != tc.network || address != tc.address {
			t.Errorf("ParseAddr(%q) = %q, %q; want %q, %q",
				tc.in, network, address, tc.network, tc.address)
		}
	}
}

// TestDaemonCancelPaths drives every Cancel branch — queued (immediate),
// running (at the next checkpoint boundary), terminal (no-op), unknown id —
// with a Monitor and Log attached so the publish and logging paths run too.
func TestDaemonCancelPaths(t *testing.T) {
	msrv := metrics.NewServer()
	defer msrv.Close()
	d := newDaemon(t, t.TempDir(), func(o *Options) {
		o.Monitor = msrv
		o.Log = io.Discard
	})
	defer d.Close()

	long := mustSubmit(t, d, &JobSpec{Name: "long", Kind: "asm", Source: loopSrc(longIters)})
	waitFor(t, "long job running", func() bool {
		st, _ := d.Status(long.ID)
		return st != nil && st.State == StateRunning
	})

	// With the single worker busy, the second job stays queued.
	queued := mustSubmit(t, d, &JobSpec{Name: "q", Tenant: "other", Kind: "asm", Source: loopSrc(shortIters)})
	st, aerr := d.Cancel(queued.ID)
	if aerr != nil {
		t.Fatalf("cancel queued: %v", aerr)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job after cancel: state %s, want %s", st.State, StateCanceled)
	}
	// Terminal job: cancel is a no-op that just reports the state.
	if st, aerr = d.Cancel(queued.ID); aerr != nil || st.State != StateCanceled {
		t.Fatalf("cancel terminal job: state %v err %v", st, aerr)
	}
	if _, aerr = d.Cancel("nope"); aerr == nil || aerr.Code != ErrNotFound {
		t.Fatalf("cancel unknown id: got %v, want %s", aerr, ErrNotFound)
	}

	// Running job: the cancel lands at the next checkpoint boundary.
	if _, aerr = d.Cancel(long.ID); aerr != nil {
		t.Fatalf("cancel running: %v", aerr)
	}
	fin, aerr := d.Wait(long.ID, 30*time.Second)
	if aerr != nil {
		t.Fatalf("wait canceled: %v", aerr)
	}
	if fin.State != StateCanceled || fin.Result == nil || fin.Result.Err != "canceled" {
		t.Fatalf("running job after cancel: %+v", fin)
	}
	if info := d.Info(); info.Canceled != 2 {
		t.Fatalf("Info().Canceled = %d, want 2", info.Canceled)
	}
}

// TestClientCancelOverWire exercises the cancel op end to end through the
// line protocol.
func TestClientCancelOverWire(t *testing.T) {
	d := newDaemon(t, t.TempDir(), nil)
	defer d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	long, err := c.Submit(&JobSpec{Name: "long", Kind: "asm", Source: loopSrc(longIters)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(&JobSpec{Name: "q", Kind: "asm", Source: loopSrc(shortIters)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("client cancel: %v", err)
	}
	if st.State != StateCanceled {
		t.Fatalf("canceled job state %s, want %s", st.State, StateCanceled)
	}
	if _, err := c.Cancel(long.ID); err != nil {
		t.Fatalf("client cancel running: %v", err)
	}
	fin, err := c.Wait(long.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("long job state %s, want %s", fin.State, StateCanceled)
	}
}

// TestDaemonRecoverDamagedHistory rebuilds a job table from hand-written
// journal records: a spec that no longer compiles must come back as failed
// (never silently requeued), and replayed fail/cancel terminals must stay
// terminal.
func TestDaemonRecoverDamagedHistory(t *testing.T) {
	dir := t.TempDir()
	jl, _, err := OpenJournal(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	append1 := func(rec Record) {
		t.Helper()
		if _, err := jl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	append1(Record{Kind: RecSubmit, ID: "j1", Spec: &JobSpec{Name: "bad", Kind: "asm", Source: "this is not assembly"}})
	append1(Record{Kind: RecSubmit, ID: "j2", Spec: &JobSpec{Name: "failed", Kind: "asm", Source: loopSrc(10)}})
	append1(Record{Kind: RecFail, ID: "j2", Reason: "watchdog", Result: &JobResult{Err: "watchdog", Cycles: 42}})
	append1(Record{Kind: RecSubmit, ID: "j3", Spec: &JobSpec{Name: "canceled", Kind: "asm", Source: loopSrc(10)}})
	append1(Record{Kind: RecCancel, ID: "j3"})
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	d := newDaemon(t, dir, func(o *Options) { o.Log = io.Discard })
	defer d.Close()

	for id, want := range map[string]string{
		"j1": StateFailed,
		"j2": StateFailed,
		"j3": StateCanceled,
	} {
		st, aerr := d.Status(id)
		if aerr != nil {
			t.Fatalf("status %s: %v", id, aerr)
		}
		if st.State != want {
			t.Errorf("recovered %s: state %s, want %s", id, st.State, want)
		}
	}
	if st, _ := d.Status("j2"); st.Result == nil || st.Result.Err != "watchdog" {
		t.Errorf("recovered j2 result = %+v, want the journaled failure", st.Result)
	}
	// The tampered job must never reach a worker.
	if st, _ := d.Status("j1"); st.Result == nil || st.Result.Err == "" {
		t.Errorf("recovered j1 result = %+v, want a compile diagnostic", st.Result)
	}
}
