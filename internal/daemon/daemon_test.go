package daemon

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmtgo/internal/config"
)

// loopSrc is a serial register loop with a final store: register-dominated
// so the master passes architecturally quiescent points every cycle (a
// back-to-back blocking-memory loop would starve checkpoint boundaries —
// see docs/XMTD.md), with the result written to memory and printed so both
// the memory image and the output witness bit-identical completion.
func loopSrc(iters int) string {
	return fmt.Sprintf(`
        .data
A:      .space 64
        .text
        .global main
main:
        li    $t0, %d
        li    $t2, 0
Lloop:  addiu $t2, $t2, 1
        addiu $t0, $t0, -1
        bne   $t0, $zero, Lloop
        la    $t1, A
        sw    $t2, 0($t1)
        lw    $v0, 0($t1)
        sys   1
        sys   0
`, iters)
}

const (
	longIters  = 2_000_000 // ~6M cycles: survives many checkpoint boundaries
	shortIters = 2000      // ~6k cycles: finishes almost immediately
)

func newDaemon(t *testing.T, dir string, mod func(*Options)) *Daemon {
	t.Helper()
	cfg, err := config.Preset("fpga64")
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Set("mem_bytes=1048576"); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Config:          cfg,
		DataDir:         dir,
		Workers:         1,
		CheckpointEvery: 50000,
		Retries:         2,
		Backoff:         2,
	}
	if mod != nil {
		mod(&opts)
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func mustSubmit(t *testing.T, d *Daemon, spec *JobSpec) *JobStatus {
	t.Helper()
	st, aerr := d.Submit(spec)
	if aerr != nil {
		t.Fatalf("submit %s: %v", spec.Name, aerr)
	}
	return st
}

func mustDone(t *testing.T, d *Daemon, id string) *JobResult {
	t.Helper()
	st, aerr := d.Wait(id, 30*time.Second)
	if aerr != nil {
		t.Fatalf("wait %s: %v", id, aerr)
	}
	if st.State != StateDone {
		t.Fatalf("job %s: state %s, result %+v", id, st.State, st.Result)
	}
	return st.Result
}

// refResult runs the spec uninterrupted (fresh daemon, no periodic
// checkpoints beyond the default) and returns its terminal result: the
// bit-identity yardstick for preempted, retried and crash-recovered runs.
func refResult(t *testing.T, spec JobSpec) *JobResult {
	t.Helper()
	d := newDaemon(t, t.TempDir(), func(o *Options) { o.CheckpointEvery = 0 })
	defer d.Close()
	st := mustSubmit(t, d, &spec)
	return mustDone(t, d, st.ID)
}

// sameResult asserts bit-identical architectural artifacts: program output
// and the memory/registers fingerprint. Cycle counts are deliberately not
// compared — as in TestCycleCheckpointResume, a checkpoint holds only
// architectural state, so runs with different checkpoint histories
// legitimately drift by a few cycles while ending in the same state.
func sameResult(t *testing.T, got, want *JobResult, context string) {
	t.Helper()
	if got.Output != want.Output || got.MemHash != want.MemHash {
		t.Errorf("%s: result diverged from uninterrupted run:\n got  output=%q memhash=%s\n want output=%q memhash=%s",
			context, got.Output, got.MemHash, want.Output, want.MemHash)
	}
}

func TestDaemonCompletesJobs(t *testing.T) {
	d := newDaemon(t, t.TempDir(), func(o *Options) { o.Workers = 2 })
	defer d.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		st := mustSubmit(t, d, &JobSpec{Name: fmt.Sprintf("s%d", i), Source: loopSrc(shortIters + i)})
		ids = append(ids, st.ID)
	}
	for i, id := range ids {
		res := mustDone(t, d, id)
		want := fmt.Sprintf("%d", shortIters+i)
		if res.Output != want {
			t.Errorf("job %s: output %q, want %q", id, res.Output, want)
		}
		if res.MemHash == "" {
			t.Errorf("job %s: missing memhash", id)
		}
	}
	info := d.Info()
	if info.Completed != 3 || info.Failed != 0 {
		t.Errorf("info: completed=%d failed=%d, want 3/0", info.Completed, info.Failed)
	}
	jobs := d.List("")
	if len(jobs) != 3 {
		t.Errorf("list: %d jobs, want 3", len(jobs))
	}
}

func TestDaemonTypedErrors(t *testing.T) {
	d := newDaemon(t, t.TempDir(), func(o *Options) {
		o.MaxQueued = 2
		o.TenantMaxQueued = 1
		o.TenantMaxBudget = 5_000_000
	})
	defer d.Close()

	codeOf := func(_ *JobStatus, aerr *APIError) string {
		if aerr == nil {
			return "ok"
		}
		return aerr.Code
	}

	if got := codeOf(d.Submit(&JobSpec{})); got != ErrBadRequest {
		t.Errorf("empty spec: %s, want %s", got, ErrBadRequest)
	}
	if got := codeOf(d.Submit(&JobSpec{Source: "not asm at all $$$", BudgetCycles: 1000})); got != ErrCompile {
		t.Errorf("bad program: %s, want %s", got, ErrCompile)
	}
	if got := codeOf(d.Submit(&JobSpec{Source: loopSrc(10), Kind: "fortran", BudgetCycles: 1000})); got != ErrBadRequest {
		t.Errorf("bad kind: %s, want %s", got, ErrBadRequest)
	}
	if got := codeOf(d.Submit(&JobSpec{Source: loopSrc(10)})); got != ErrQuotaExceeded {
		t.Errorf("unlimited budget under budget quota: %s, want %s", got, ErrQuotaExceeded)
	}
	if got := codeOf(d.Submit(&JobSpec{Source: loopSrc(10), BudgetCycles: 9_000_000})); got != ErrQuotaExceeded {
		t.Errorf("budget over quota: %s, want %s", got, ErrQuotaExceeded)
	}
	if _, aerr := d.Status("j999"); aerr == nil || aerr.Code != ErrNotFound {
		t.Errorf("unknown id: %v, want %s", aerr, ErrNotFound)
	}

	// Occupy the single worker so subsequent submissions stay queued.
	blocker := mustSubmit(t, d, &JobSpec{Name: "blocker", Source: loopSrc(longIters), BudgetCycles: 4_000_000})
	waitFor(t, "blocker running", func() bool {
		st, _ := d.Status(blocker.ID)
		return st != nil && st.State == StateRunning
	})
	if got := codeOf(d.Submit(&JobSpec{Tenant: "a", Source: loopSrc(11), BudgetCycles: 1000})); got != "ok" {
		t.Fatalf("first queued job for tenant a: %s", got)
	}
	if got := codeOf(d.Submit(&JobSpec{Tenant: "a", Source: loopSrc(12), BudgetCycles: 1000})); got != ErrQuotaExceeded {
		t.Errorf("tenant queue quota: %s, want %s", got, ErrQuotaExceeded)
	}
	if got := codeOf(d.Submit(&JobSpec{Tenant: "b", Source: loopSrc(13), BudgetCycles: 1000})); got != "ok" {
		t.Fatalf("second queued job (tenant b): %s", got)
	}
	if got := codeOf(d.Submit(&JobSpec{Tenant: "c", Source: loopSrc(14), BudgetCycles: 1000})); got != ErrQueueFull {
		t.Errorf("global queue bound: %s, want %s", got, ErrQueueFull)
	}

	// Cancel the blocker (running: stops at next checkpoint) and a queued
	// job (immediate).
	if _, aerr := d.Cancel(blocker.ID); aerr != nil {
		t.Fatal(aerr)
	}
	waitFor(t, "blocker canceled", func() bool {
		st, _ := d.Status(blocker.ID)
		return st != nil && st.State == StateCanceled
	})
}

func TestDaemonPreemptResumeBitIdentical(t *testing.T) {
	spec := JobSpec{Name: "victim", Source: loopSrc(longIters)}
	want := refResult(t, spec)

	d := newDaemon(t, t.TempDir(), nil) // 1 worker
	defer d.Close()
	victim := mustSubmit(t, d, &spec)
	waitFor(t, "victim running", func() bool {
		st, _ := d.Status(victim.ID)
		return st != nil && st.State == StateRunning
	})

	hi := mustSubmit(t, d, &JobSpec{Name: "urgent", Priority: 10, Source: loopSrc(shortIters)})
	hiRes := mustDone(t, d, hi.ID)
	if hiRes.Output != fmt.Sprintf("%d", shortIters) {
		t.Errorf("urgent job output %q", hiRes.Output)
	}
	// The urgent job finished first, which means the victim yielded.
	vicSt, _ := d.Status(victim.ID)
	if vicSt.State == StateDone {
		t.Fatalf("victim finished before the urgent job ran — no preemption happened")
	}

	vicRes := mustDone(t, d, victim.ID)
	sameResult(t, vicRes, want, "preempted+resumed victim")

	fin, _ := d.Status(victim.ID)
	if fin.Preemptions < 1 || fin.Resumes < 1 {
		t.Errorf("victim preemptions=%d resumes=%d, want >=1 each", fin.Preemptions, fin.Resumes)
	}
	if info := d.Info(); info.Preemptions < 1 {
		t.Errorf("daemon preemption counter %d, want >=1", info.Preemptions)
	}
}

func TestDaemonCrashRecovery(t *testing.T) {
	spec := JobSpec{Name: "survivor", Source: loopSrc(longIters)}
	queuedSpec := JobSpec{Name: "pending", Source: loopSrc(shortIters)}
	want := refResult(t, spec)
	wantQueued := refResult(t, queuedSpec)

	dir := t.TempDir()
	d1 := newDaemon(t, dir, nil)
	run := mustSubmit(t, d1, &spec)
	queued := mustSubmit(t, d1, &queuedSpec)

	// Let the running job pass at least one durable checkpoint, then
	// "crash": workers abandon work without journaling clean records —
	// on-disk state is exactly what kill -9 leaves.
	waitFor(t, "first checkpoint", func() bool {
		st, _ := d1.Status(run.ID)
		return st != nil && st.Cycles > 0
	})
	d1.Abort()

	d2 := newDaemon(t, dir, nil)
	defer d2.Close()
	if info := d2.Info(); info.Recoveries < 1 {
		t.Errorf("recoveries=%d after crash, want >=1", info.Recoveries)
	}
	res := mustDone(t, d2, run.ID)
	sameResult(t, res, want, "crash-recovered job")
	qres := mustDone(t, d2, queued.ID)
	sameResult(t, qres, wantQueued, "queued-at-crash job")

	st, _ := d2.Status(run.ID)
	if st.Resumes < 1 {
		t.Errorf("recovered job resumes=%d, want >=1 (must have resumed from checkpoint)", st.Resumes)
	}
}

func TestDaemonDrainAndResume(t *testing.T) {
	spec := JobSpec{Name: "drained", Source: loopSrc(longIters)}
	want := refResult(t, spec)

	dir := t.TempDir()
	d1 := newDaemon(t, dir, nil)
	st := mustSubmit(t, d1, &spec)
	waitFor(t, "job running", func() bool {
		s, _ := d1.Status(st.ID)
		return s != nil && s.State == StateRunning && s.Cycles > 0
	})
	if err := d1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The drained daemon suspended the job cleanly: queued, not lost.
	s, _ := d1.Status(st.ID)
	if s.State != StateQueued {
		t.Fatalf("after drain: state %s, want %s", s.State, StateQueued)
	}
	if !d1.Info().Draining {
		t.Error("info must report draining")
	}
	// Admission is closed.
	if _, aerr := d1.Submit(&JobSpec{Source: loopSrc(10)}); aerr == nil || aerr.Code != ErrDraining {
		t.Errorf("submit while draining: %v, want %s", aerr, ErrDraining)
	}
	// The journal carries the clean-shutdown marker.
	data, err := os.ReadFile(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"drain"`) {
		t.Error("journal missing drain record")
	}

	d2 := newDaemon(t, dir, nil)
	defer d2.Close()
	// Clean drain is not a crash: no recovery counted.
	if info := d2.Info(); info.Recoveries != 0 {
		t.Errorf("recoveries=%d after clean drain, want 0", info.Recoveries)
	}
	res := mustDone(t, d2, st.ID)
	sameResult(t, res, want, "drain-suspended job")
}

func TestDaemonRetryWithBackoff(t *testing.T) {
	spec := JobSpec{Name: "slowpoke", Source: loopSrc(longIters)}
	want := refResult(t, spec)

	// First-attempt budget far below the ~6M cycles needed; backoff doubles
	// it each retry, and each retry resumes from the last checkpoint, so
	// the third attempt's 6.4M budget completes the job.
	d := newDaemon(t, t.TempDir(), func(o *Options) { o.BudgetCycles = 1_600_000 })
	defer d.Close()
	st := mustSubmit(t, d, &spec)
	res := mustDone(t, d, st.ID)
	sameResult(t, res, want, "retried job")

	fin, _ := d.Status(st.ID)
	if fin.Attempt < 2 || fin.Resumes < 1 {
		t.Errorf("attempts=%d resumes=%d, want >=2 and >=1", fin.Attempt, fin.Resumes)
	}
	if info := d.Info(); info.Retries < 1 {
		t.Errorf("retry counter %d, want >=1", info.Retries)
	}
}

func TestDaemonDeadlineFailsWithDiagnostic(t *testing.T) {
	d := newDaemon(t, t.TempDir(), func(o *Options) { o.BudgetCycles = 100_000 })
	defer d.Close()
	st := mustSubmit(t, d, &JobSpec{Name: "doomed", Source: loopSrc(longIters), DeadlineCycles: 150_000})
	fin, aerr := d.Wait(st.ID, 30*time.Second)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if fin.State != StateFailed {
		t.Fatalf("state %s, want %s", fin.State, StateFailed)
	}
	if fin.Result == nil || !strings.Contains(fin.Result.Err, "deadline_cycles 150000") {
		t.Errorf("diagnostic %+v must name the deadline", fin.Result)
	}
}

func TestDaemonProtocolOverWire(t *testing.T) {
	d := newDaemon(t, t.TempDir(), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.API != APIVersion {
		t.Errorf("ping api %q, want %q", info.API, APIVersion)
	}

	st, err := c.Submit(&JobSpec{Name: "wire", Source: loopSrc(shortIters)})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(st.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result.Output != fmt.Sprintf("%d", shortIters) {
		t.Fatalf("wire job: %+v", fin)
	}

	jobs, err := c.List("")
	if err != nil || len(jobs) != 1 {
		t.Fatalf("list: %d jobs, err %v", len(jobs), err)
	}

	// Typed errors cross the wire intact.
	if _, err := c.Status("j999"); err == nil {
		t.Error("status of unknown id must fail")
	} else if aerr, ok := err.(*APIError); !ok || aerr.Code != ErrNotFound {
		t.Errorf("wire error %v, want *APIError %s", err, ErrNotFound)
	}

	// Version negotiation.
	if _, err := c.Do(&Request{API: "xmt-jobs/v99", Op: "ping"}); err == nil {
		t.Error("bad api version must be rejected")
	} else if aerr, ok := err.(*APIError); !ok || aerr.Code != ErrUnsupported {
		t.Errorf("version error %v, want %s", err, ErrUnsupported)
	}

	// Drain over the wire: response arrives, then the daemon stops serving.
	if _, err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop after drain")
	}
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Error("dial after drain must fail (listener closed)")
	}
}
