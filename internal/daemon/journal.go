package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"xmtgo/internal/atomicfile"
)

// Journal record kinds. Together with the checkpoint envelopes they make
// every job state reconstructible after a crash: the journal is the intent
// log, the envelopes are the bulky state.
const (
	RecSubmit  = "submit"  // job accepted into the queue (carries the spec)
	RecStart   = "start"   // an attempt began on a worker
	RecCkpt    = "ckpt"    // checkpoint envelope persisted at this cycle
	RecPreempt = "preempt" // job yielded at a checkpoint (preemption or drain)
	RecDone    = "done"    // terminal: success (carries the result)
	RecFail    = "fail"    // terminal: failure (carries the diagnostic)
	RecCancel  = "cancel"  // terminal: canceled by a client
	RecDrain   = "drain"   // daemon shut down cleanly after this point
)

// Record is one line of the append-only job journal (JSON, one object per
// line). Seq is strictly increasing; replay rejects regressions so a
// corrupted middle of the file cannot masquerade as valid history.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	ID   string `json:"id,omitempty"`

	Spec    *JobSpec   `json:"spec,omitempty"`    // submit
	Attempt int        `json:"attempt,omitempty"` // start
	Cycle   int64      `json:"cycle,omitempty"`   // ckpt, preempt
	Reason  string     `json:"reason,omitempty"`  // preempt ("preempt"/"drain"), fail
	Result  *JobResult `json:"result,omitempty"`  // done
}

// Journal is the daemon's durable append-only log. Every Append is fsync'd
// before it returns, so once the daemon has acknowledged a submission the
// job survives kill -9: replay on the next startup re-queues every
// non-terminal job.
type Journal struct {
	f    *os.File
	w    *bufio.Writer
	path string
	seq  uint64
}

// OpenJournal opens (creating if absent) the journal at path and replays the
// existing records. A torn final line — the telltale of a crash mid-append —
// is tolerated and truncated away; corruption anywhere else is an error,
// because silently skipping interior history could resurrect completed work.
func OpenJournal(path string) (*Journal, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	recs, validLen, err := replay(path)
	if err != nil {
		return nil, nil, err
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop the torn tail so the next append starts on a clean line boundary.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	// Make sure the journal file itself is durable before the first append
	// (a just-created file may not have its directory entry on disk yet).
	if err := atomicfile.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, err
	}

	j := &Journal{f: f, w: bufio.NewWriter(f), path: path}
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq
	}
	return j, recs, nil
}

// replay parses the journal, returning the valid records and the byte length
// of the valid prefix (everything after it is a torn tail to truncate).
func replay(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}

	var recs []Record
	var validLen int64
	var lastSeq uint64
	for off := 0; off < len(data); {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// Unterminated final line: torn append, drop it.
			break
		}
		line := data[off:nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Kind == "" {
			if nl == len(data)-1 {
				// Torn final line that happens to end in a stray newline.
				break
			}
			return nil, 0, fmt.Errorf("daemon: journal %s: corrupt record at byte %d", path, off)
		}
		if rec.Seq <= lastSeq {
			return nil, 0, fmt.Errorf("daemon: journal %s: sequence regressed at byte %d (%d after %d)",
				path, off, rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off = nl + 1
		validLen = int64(off)
	}
	return recs, validLen, nil
}

// Append stamps the next sequence number on rec, writes it, fsyncs, and
// returns the assigned sequence. When Append returns nil the record is on
// disk; when the process dies mid-call the record is at worst a torn tail
// the next OpenJournal discards — the state machine only ever moves at
// record granularity.
func (j *Journal) Append(rec Record) (uint64, error) {
	j.seq++
	rec.Seq = j.seq
	data, err := json.Marshal(&rec)
	if err != nil {
		return 0, err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return 0, err
	}
	if err := j.w.Flush(); err != nil {
		return 0, err
	}
	return j.seq, j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}
