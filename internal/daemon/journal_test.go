package daemon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: RecSubmit, ID: "j1", Spec: &JobSpec{Name: "a", Source: "x"}},
		{Kind: RecStart, ID: "j1", Attempt: 1},
		{Kind: RecCkpt, ID: "j1", Cycle: 1234},
		{Kind: RecDone, ID: "j1", Result: &JobResult{Cycles: 5000, Output: "ok\n"}},
	}
	for i, rec := range want {
		seq, err := j.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Kind != want[i].Kind || rec.ID != want[i].ID {
			t.Errorf("record %d: %s/%s, want %s/%s", i, rec.Kind, rec.ID, want[i].Kind, want[i].ID)
		}
	}
	if recs[3].Result == nil || recs[3].Result.Output != "ok\n" {
		t.Errorf("done record lost its result: %+v", recs[3].Result)
	}

	// Appends after replay continue the sequence.
	if seq, err := j2.Append(Record{Kind: RecDrain}); err != nil || seq != 5 {
		t.Fatalf("append after replay: seq=%d err=%v", seq, err)
	}
	if _, recs, err := OpenJournal(path); err != nil || len(recs) != 5 || recs[4].Seq != 5 {
		t.Fatalf("after reopen+append: recs=%d err=%v", len(recs), err)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: RecSubmit, ID: "j1", Spec: &JobSpec{Source: "x"}})
	j.Append(Record{Kind: RecStart, ID: "j1", Attempt: 1})
	j.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"kind":"ck`)
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (torn tail dropped)", len(recs))
	}
	// The torn bytes are truncated, so the next append lands cleanly.
	if _, err := j2.Append(Record{Kind: RecCkpt, ID: "j1", Cycle: 9}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if _, recs, err := OpenJournal(path); err != nil || len(recs) != 3 || recs[2].Kind != RecCkpt {
		t.Fatalf("after truncate+append: recs=%d err=%v", len(recs), err)
	}
}

func TestJournalCorruptMiddleRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: RecSubmit, ID: "j1", Spec: &JobSpec{Source: "x"}})
	j.Append(Record{Kind: RecDone, ID: "j1", Result: &JobResult{}})
	j.Close()

	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	corrupted := "GARBAGE NOT JSON\n" + lines[1]
	os.WriteFile(path, []byte(lines[0]+corrupted), 0o644)

	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("interior corruption must be rejected, not skipped")
	}
}
