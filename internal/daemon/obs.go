package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"

	"xmtgo/internal/obs"
)

// obsState bundles the daemon's always-on observability surfaces
// (internal/obs): the lifecycle span ring behind `xmtctl trace`, the
// service-latency histograms behind /metrics and /status, and the
// structured log ring behind /logs and `xmtctl logs`.
type obsState struct {
	tracer *obs.Tracer
	hists  *obs.Hists
	ring   *obs.LogRing
	log    *slog.Logger
}

func newObsState(opts *Options) *obsState {
	o := &obsState{
		tracer: obs.NewTracer(opts.TraceCapacity),
		hists:  obs.NewHists(),
		ring:   obs.NewLogRing(opts.LogCapacity),
	}
	o.log = obs.NewLogger(obs.HandlerOptions{
		Writer: opts.Log,
		Level:  opts.LogLevel,
		Ring:   o.ring,
	})
	return o
}

// Tracer exposes the lifecycle span ring (tests and the trace op).
func (d *Daemon) Tracer() *obs.Tracer { return d.obs.tracer }

// Hists exposes the service-latency histograms (benchmarks and /metrics).
func (d *Daemon) Hists() *obs.Hists { return d.obs.hists }

// LogRing exposes the bounded structured-log buffer (/logs, the logs op).
func (d *Daemon) LogRing() *obs.LogRing { return d.obs.ring }

// TraceJSON snapshots the lifecycle span ring as Chrome trace-event JSON.
func (d *Daemon) TraceJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.obs.tracer.WriteChrome(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// traceJSONCompact renders the trace on a single line for the line-JSON
// protocol (the pretty export contains newlines).
func (d *Daemon) traceJSONCompact() (json.RawMessage, error) {
	pretty, err := d.TraceJSON()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, pretty); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// renderPromObs appends the daemon's service-latency histogram series to
// every /metrics response (metrics.Server.SetPromExtra).
func (d *Daemon) renderPromObs(w io.Writer) {
	d.obs.hists.RenderProm(w, "xmt_daemon_")
}

// logEntriesRaw snapshots the log ring for the logs op: minLevel parsed
// from the request ("" = everything), optional job filter, max <= 0 = all.
func (d *Daemon) logEntriesRaw(level, job string, max int) []json.RawMessage {
	min := slog.LevelDebug
	if level != "" {
		min = obs.ParseLevel(level)
	}
	entries := d.obs.ring.Snapshot(min, job, max)
	out := make([]json.RawMessage, len(entries))
	for i, e := range entries {
		out[i] = json.RawMessage(e.Raw)
	}
	return out
}
