package daemon

import (
	"encoding/json"
	"log/slog"
	"net"
	"strings"
	"testing"
	"time"

	"xmtgo/internal/obs"
)

// spanNames collects the distinct span names recorded for one job.
func spanNames(spans []obs.Span, job string) map[string]int {
	out := make(map[string]int)
	for _, s := range spans {
		if s.Job == job {
			out[s.Name]++
		}
	}
	return out
}

// TestDaemonLifecycleObservability drives a submit → preempt → resume →
// done job and asserts the full observability surface around it: the
// lifecycle spans (queued, compile, both run attempts, checkpoint write,
// preempt, resume, done), the latency histograms, the structured log ring,
// and a Perfetto-loadable trace export (ISSUE 10 acceptance).
func TestDaemonLifecycleObservability(t *testing.T) {
	var logBuf strings.Builder
	d := newDaemon(t, t.TempDir(), func(o *Options) {
		o.Log = &logBuf
		o.LogLevel = slog.LevelDebug
	})
	defer d.Close()

	victim := mustSubmit(t, d, &JobSpec{Name: "victim", Tenant: "alice", Source: loopSrc(longIters)})
	waitFor(t, "victim running", func() bool {
		st, _ := d.Status(victim.ID)
		return st != nil && st.State == StateRunning
	})
	urgent := mustSubmit(t, d, &JobSpec{Name: "urgent", Tenant: "bob", Priority: 10, Source: loopSrc(shortIters)})
	mustDone(t, d, urgent.ID)
	res := mustDone(t, d, victim.ID)
	if res.Output == "" {
		t.Fatalf("victim produced no output")
	}

	spans, _ := d.Tracer().Snapshot()
	vs := spanNames(spans, victim.ID)
	for _, name := range []string{"compile", "queued", "run", "checkpoint-write", "preempt", "resume", "done", "journal-append"} {
		if vs[name] == 0 {
			t.Errorf("victim %s: no %q span; got %v", victim.ID, name, vs)
		}
	}
	if vs["run"] < 2 {
		t.Errorf("victim %s: %d run spans, want >= 2 (preempted attempt + resumed attempt)", victim.ID, vs["run"])
	}
	if vs["queued"] < 2 {
		t.Errorf("victim %s: %d queued spans, want >= 2 (initial + requeue after preempt)", victim.ID, vs["queued"])
	}
	us := spanNames(spans, urgent.ID)
	for _, name := range []string{"compile", "queued", "run", "done"} {
		if us[name] == 0 {
			t.Errorf("urgent %s: no %q span; got %v", urgent.ID, name, us)
		}
	}
	// Tenant/priority args ride on the spans.
	for _, s := range spans {
		if s.Job == victim.ID && s.Tenant != "alice" {
			t.Fatalf("victim span %q has tenant %q, want alice", s.Name, s.Tenant)
		}
	}

	// The run spans' outcome details classify the preemption and completion.
	var details []string
	for _, s := range spans {
		if s.Job == victim.ID && s.Name == "run" {
			details = append(details, s.Detail)
		}
	}
	if len(details) < 2 || details[0] != "preempt" || details[len(details)-1] != "done" {
		t.Errorf("victim run details = %v, want [preempt ... done]", details)
	}

	// Histograms: every stage of this lifecycle observed at least once.
	sums := d.Hists().Summaries()
	for _, key := range []string{obs.HistQueueWait, obs.HistCompile, obs.HistTTFS,
		obs.HistCkptWrite, obs.HistJournalFsync, obs.HistPreemptRequeue} {
		if sums[key].Count == 0 {
			t.Errorf("histogram %s: count 0, want > 0", key)
		}
	}
	if n := sums[obs.HistQueueWait].Count; n < 3 {
		t.Errorf("queue_wait count = %d, want >= 3 (two submits + one requeue)", n)
	}

	// The Chrome export parses and carries the lifecycle events.
	trace, err := d.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	procs := make(map[string]bool)
	for _, e := range doc.TraceEvents {
		if e.Name == "process_name" {
			procs["pid"] = true
		}
	}
	if !procs["pid"] || doc.OtherData["dropped"] != "0" {
		t.Errorf("trace export missing process metadata or dropped count: %v", doc.OtherData)
	}

	// Structured logs: JSON lines with job/tenant correlation fields, both
	// on the writer and in the ring.
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q (%v)", line, err)
		}
	}
	if !strings.Contains(logBuf.String(), `"job":"`+victim.ID+`","tenant":"alice"`) {
		t.Errorf("log output lacks victim job/tenant fields:\n%s", logBuf.String())
	}
	victimLogs := d.LogRing().Snapshot(slog.LevelInfo, victim.ID, 0)
	if len(victimLogs) == 0 {
		t.Errorf("log ring has no info records for %s", victim.ID)
	}
	var sawPreempted bool
	for _, e := range victimLogs {
		if strings.Contains(string(e.Raw), `"msg":"preempted"`) {
			sawPreempted = true
		}
	}
	if !sawPreempted {
		t.Errorf("log ring lacks the victim's preempted record")
	}
}

// TestDaemonTraceAndLogsOps exercises the trace and logs wire ops.
func TestDaemonTraceAndLogsOps(t *testing.T) {
	dir := t.TempDir()
	d := newDaemon(t, dir, nil)
	defer d.Close()
	ln, err := net.Listen("unix", dir+"/d.sock")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)

	c, err := Dial("unix:" + dir + "/d.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Submit(&JobSpec{Name: "wire", Tenant: "carol", Source: loopSrc(shortIters)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(st.ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	trace, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace over the wire is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatalf("trace lacks traceEvents: %s", trace[:min(len(trace), 200)])
	}
	if !strings.Contains(string(trace), `"name":"done"`) {
		t.Errorf("wire trace lacks the done instant")
	}

	logs, err := c.Logs("info", st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Fatal("logs op returned nothing")
	}
	for _, raw := range logs {
		var rec map[string]any
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("log record is not JSON: %s", raw)
		}
		if rec["job"] != st.ID {
			t.Fatalf("job filter leaked: %s", raw)
		}
	}
	// Cap and level filters.
	capped, err := c.Logs("", "", 1)
	if err != nil || len(capped) != 1 {
		t.Fatalf("capped logs = %d records (%v), want 1", len(capped), err)
	}
	none, err := c.Logs("error", "", 0)
	if err != nil || len(none) != 0 {
		t.Fatalf("error-level logs = %d records (%v), want 0", len(none), err)
	}
}
