package daemon

import "container/heap"

// jobQueue is the ready queue: a priority heap ordered by descending
// priority, then ascending enqueue sequence — so equal-priority jobs run in
// submission order, and a preempted job (which keeps its original sequence)
// resumes ahead of later arrivals at its priority.
type jobQueue struct{ items []*job }

func (q *jobQueue) Len() int { return len(q.items) }

func (q *jobQueue) Less(i, k int) bool {
	a, b := q.items[i], q.items[k]
	if a.spec.Priority != b.spec.Priority {
		return a.spec.Priority > b.spec.Priority
	}
	return a.seq < b.seq
}

func (q *jobQueue) Swap(i, k int) {
	q.items[i], q.items[k] = q.items[k], q.items[i]
	q.items[i].heapIdx, q.items[k].heapIdx = i, k
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(q.items)
	q.items = append(q.items, j)
}

func (q *jobQueue) Pop() any {
	old := q.items
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	q.items = old[:n-1]
	return j
}

func (q *jobQueue) push(j *job) { heap.Push(q, j) }
func (q *jobQueue) pop() *job   { return heap.Pop(q).(*job) }
func (q *jobQueue) empty() bool { return len(q.items) == 0 }

// remove unlinks a specific job (cancellation of a queued job).
func (q *jobQueue) remove(j *job) bool {
	if j.heapIdx < 0 || j.heapIdx >= len(q.items) || q.items[j.heapIdx] != j {
		return false
	}
	heap.Remove(q, j.heapIdx)
	return true
}
