package daemon

import "testing"

func qjob(id string, prio int, seq uint64) *job {
	return &job{id: id, spec: JobSpec{Priority: prio}, seq: seq, heapIdx: -1}
}

func TestQueueOrdering(t *testing.T) {
	var q jobQueue
	q.push(qjob("low1", 0, 1))
	q.push(qjob("hi", 5, 2))
	q.push(qjob("low2", 0, 3))
	q.push(qjob("mid", 3, 4))

	want := []string{"hi", "mid", "low1", "low2"}
	for _, id := range want {
		if got := q.pop().id; got != id {
			t.Fatalf("pop %s, want %s", got, id)
		}
	}
	if !q.empty() {
		t.Fatal("queue not drained")
	}
}

func TestQueuePreemptedKeepsPosition(t *testing.T) {
	var q jobQueue
	q.push(qjob("a", 1, 1))
	q.push(qjob("b", 1, 5))
	// A preempted job re-enters with its original sequence and must run
	// before later arrivals at its priority.
	preempted := qjob("victim", 1, 2)
	q.push(preempted)
	if got := q.pop().id; got != "a" {
		t.Fatalf("pop %s, want a", got)
	}
	if got := q.pop().id; got != "victim" {
		t.Fatalf("pop %s, want victim (original seq ahead of b)", got)
	}
}

func TestQueueRemove(t *testing.T) {
	var q jobQueue
	a, b, c := qjob("a", 2, 1), qjob("b", 1, 2), qjob("c", 0, 3)
	q.push(a)
	q.push(b)
	q.push(c)
	if !q.remove(b) {
		t.Fatal("remove b failed")
	}
	if q.remove(b) {
		t.Fatal("double remove must report false")
	}
	if got := q.pop().id; got != "a" {
		t.Fatalf("pop %s, want a", got)
	}
	if got := q.pop().id; got != "c" {
		t.Fatalf("pop %s, want c", got)
	}
}
