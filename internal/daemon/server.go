package daemon

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"io"
	"net"
	"time"
)

// maxLine bounds one protocol line (program sources travel inline).
const maxLine = 8 << 20

func gobEncode(w io.Writer, v any) error { return gob.NewEncoder(w).Encode(v) }
func gobDecode(r io.Reader, v any) error { return gob.NewDecoder(r).Decode(v) }

// handleConn serves one client: newline-delimited JSON requests, one
// response line each, in order.
func (d *Daemon) handleConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(&Response{Err: apiErrorf(ErrBadRequest, "bad json: %v", err)})
			return
		}
		resp, closeAfter := d.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if closeAfter {
			// The drain op tears the daemon down after the response is on
			// the wire.
			d.CloseListener()
			return
		}
	}
}

// handle dispatches one request. The second return asks the connection loop
// to stop the daemon's accept loop after responding (drain).
func (d *Daemon) handle(req *Request) (*Response, bool) {
	if req.API != "" && req.API != APIVersion {
		return &Response{Err: apiErrorf(ErrUnsupported, "api %q not supported (want %s)", req.API, APIVersion)}, false
	}
	switch req.Op {
	case "ping":
		return &Response{OK: true, Info: d.Info()}, false
	case "submit":
		st, aerr := d.Submit(req.Spec)
		if aerr != nil {
			return &Response{Err: aerr}, false
		}
		return &Response{OK: true, ID: st.ID, Job: st}, false
	case "status":
		st, aerr := d.Status(req.ID)
		if aerr != nil {
			return &Response{Err: aerr}, false
		}
		return &Response{OK: true, ID: st.ID, Job: st}, false
	case "list":
		return &Response{OK: true, Jobs: d.List(req.Tenant)}, false
	case "wait":
		timeout := time.Duration(req.TimeoutMS) * time.Millisecond
		st, aerr := d.Wait(req.ID, timeout)
		if aerr != nil {
			return &Response{Err: aerr}, false
		}
		return &Response{OK: true, ID: st.ID, Job: st}, false
	case "cancel":
		st, aerr := d.Cancel(req.ID)
		if aerr != nil {
			return &Response{Err: aerr}, false
		}
		return &Response{OK: true, ID: st.ID, Job: st}, false
	case "trace":
		raw, err := d.traceJSONCompact()
		if err != nil {
			return &Response{Err: apiErrorf(ErrInternal, "trace: %v", err)}, false
		}
		return &Response{OK: true, Trace: raw}, false
	case "logs":
		return &Response{OK: true, Logs: d.logEntriesRaw(req.Level, req.ID, req.Max)}, false
	case "drain":
		if err := d.Drain(); err != nil {
			return &Response{Err: apiErrorf(ErrInternal, "drain: %v", err)}, true
		}
		return &Response{OK: true, Info: d.Info()}, true
	default:
		return &Response{Err: apiErrorf(ErrBadRequest, "unknown op %q", req.Op)}, false
	}
}
