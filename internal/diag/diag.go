// Package diag defines the structured diagnostic type shared by every
// layer of the toolchain: front-end warnings (package xmtc), the static
// analyzer (package analysis), and the assembly post-pass verifier
// (package asm/postpass). A Diagnostic carries the check that produced
// it, a severity, a source position and optional related positions, and
// renders in the conventional "file:line:col: severity: message" form so
// editors can jump to it.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity uint8

const (
	// Note is informational: something worth knowing, never actionable
	// on its own (e.g. a related position, an optimizer observation).
	Note Severity = iota
	// Warning marks code that is legal but likely wrong under the XMT
	// execution or memory model.
	Warning
	// Error marks a definite rule violation.
	Error
)

func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Pos is a source position. Col may be zero for line-granular producers
// (the assembler and post-pass work on assembly lines).
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	switch {
	case p.Line <= 0:
		return p.File
	case p.Col <= 0:
		return fmt.Sprintf("%s:%d", p.File, p.Line)
	default:
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
	}
}

// IsValid reports whether the position carries at least a line number.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Related points at a second program location that participates in the
// finding (e.g. the other access of a race pair).
type Related struct {
	Pos Pos
	Msg string
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Check is the registry name of the producing check ("spawn-race",
	// "postpass", ...); used by suppression comments and -checks filters.
	Check    string
	Severity Severity
	Pos      Pos
	Msg      string
	Related  []Related
}

// String renders "file:line:col: severity: message [check]". Related
// positions are appended as indented note lines.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos.File != "" || d.Pos.Line > 0 {
		fmt.Fprintf(&b, "%s: ", d.Pos)
	}
	fmt.Fprintf(&b, "%s: %s", d.Severity, d.Msg)
	if d.Check != "" {
		fmt.Fprintf(&b, " [%s]", d.Check)
	}
	for _, r := range d.Related {
		fmt.Fprintf(&b, "\n\t%s: note: %s", r.Pos, r.Msg)
	}
	return b.String()
}

// Error makes a Diagnostic usable as an error value.
func (d Diagnostic) Error() string { return d.String() }

// Sort orders diagnostics by file, line, column, then check name, for
// stable output and golden-file comparison.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// Count returns how many diagnostics have at least the given severity.
func Count(ds []Diagnostic, min Severity) int {
	n := 0
	for _, d := range ds {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// Promote raises every Warning to Error (the -Werror treatment) and
// returns the slice for chaining. Notes are untouched.
func Promote(ds []Diagnostic) []Diagnostic {
	for i := range ds {
		if ds[i].Severity == Warning {
			ds[i].Severity = Error
		}
	}
	return ds
}
