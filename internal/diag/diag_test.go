package diag

import (
	"strings"
	"testing"
)

func TestPosString(t *testing.T) {
	cases := []struct {
		pos  Pos
		want string
	}{
		{Pos{File: "a.c", Line: 3, Col: 7}, "a.c:3:7"},
		{Pos{File: "a.c", Line: 3}, "a.c:3"},
		{Pos{File: "a.c"}, "a.c"},
		{Pos{}, ""},
	}
	for _, c := range cases {
		if got := c.pos.String(); got != c.want {
			t.Errorf("Pos%+v.String() = %q, want %q", c.pos, got, c.want)
		}
	}
	if (Pos{File: "a.c"}).IsValid() {
		t.Error("file-only position should not be valid")
	}
	if !(Pos{File: "a.c", Line: 1}).IsValid() {
		t.Error("line-carrying position should be valid")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Check:    "spawn-race",
		Severity: Warning,
		Pos:      Pos{File: "p.c", Line: 9, Col: 5},
		Msg:      "possible data race",
		Related:  []Related{{Pos: Pos{File: "p.c", Line: 4, Col: 5}, Msg: "conflicting write"}},
	}
	want := "p.c:9:5: warning: possible data race [spawn-race]\n\tp.c:4:5: note: conflicting write"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if d.Error() != d.String() {
		t.Error("Error() should match String()")
	}
	// A position-less diagnostic omits the location prefix entirely.
	plain := Diagnostic{Severity: Error, Msg: "no main function defined"}
	if got := plain.String(); got != "error: no main function defined" {
		t.Errorf("position-less String() = %q", got)
	}
}

func TestSortOrder(t *testing.T) {
	ds := []Diagnostic{
		{Pos: Pos{File: "b.c", Line: 1}, Check: "z"},
		{Pos: Pos{File: "a.c", Line: 9, Col: 2}, Check: "z"},
		{Pos: Pos{File: "a.c", Line: 9, Col: 2}, Check: "a"},
		{Pos: Pos{File: "a.c", Line: 2}, Check: "z"},
	}
	Sort(ds)
	var order []string
	for _, d := range ds {
		order = append(order, d.Pos.String()+"/"+d.Check)
	}
	want := "a.c:2/z a.c:9:2/a a.c:9:2/z b.c:1/z"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("sorted order = %q, want %q", got, want)
	}
}

func TestCountAndPromote(t *testing.T) {
	ds := []Diagnostic{
		{Severity: Note},
		{Severity: Warning},
		{Severity: Warning},
		{Severity: Error},
	}
	if got := Count(ds, Warning); got != 3 {
		t.Errorf("Count(Warning) = %d, want 3", got)
	}
	if got := Count(ds, Error); got != 1 {
		t.Errorf("Count(Error) = %d, want 1", got)
	}
	Promote(ds)
	if got := Count(ds, Error); got != 3 {
		t.Errorf("after Promote, Count(Error) = %d, want 3", got)
	}
	if ds[0].Severity != Note {
		t.Error("Promote must leave notes untouched")
	}
}
