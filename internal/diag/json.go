package diag

import (
	"encoding/json"
	"io"
)

// JSONSchema versions the machine-readable diagnostic stream (xmtlint
// -json). Bump it whenever a field is renamed, removed, or changes
// meaning; adding fields is backward compatible and does not require a
// bump.
const JSONSchema = "xmt-diag/v1"

// jsonReport is the top-level -json document.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// jsonDiagnostic is the stable machine-readable form of one Diagnostic.
type jsonDiagnostic struct {
	File     string        `json:"file"`
	Line     int           `json:"line"`
	Col      int           `json:"col,omitempty"`
	Severity string        `json:"severity"`
	Check    string        `json:"check,omitempty"`
	Message  string        `json:"message"`
	Related  []jsonRelated `json:"related,omitempty"`
}

// jsonRelated is one related position.
type jsonRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

// WriteJSON renders diagnostics as the xmt-diag/v1 JSON document, indented
// with a trailing newline. An empty slice produces an explicit empty
// diagnostics array (never null), so consumers can rely on the shape. The
// output order is the slice order — sort with Sort first for stable bytes.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	rep := jsonReport{Schema: JSONSchema, Diagnostics: make([]jsonDiagnostic, 0, len(ds))}
	for _, d := range ds {
		jd := jsonDiagnostic{
			File: d.Pos.File, Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Severity.String(), Check: d.Check, Message: d.Msg,
		}
		for _, r := range d.Related {
			jd.Related = append(jd.Related, jsonRelated{
				File: r.Pos.File, Line: r.Pos.Line, Col: r.Pos.Col, Message: r.Msg,
			})
		}
		rep.Diagnostics = append(rep.Diagnostics, jd)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
