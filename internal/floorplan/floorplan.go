// Package floorplan is the floorplan visualization companion of XMTSim
// (paper §III-E): it renders per-cluster (or per-cache-module) data — e.g.
// temperatures or activity counters sampled by an activity plug-in — on an
// XMT floorplan, in text form, so the overwhelming output of a many-TCU
// configuration can be read at a glance or animated over a run.
package floorplan

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// shades maps normalized intensity to ASCII density.
const shades = " .:-=+*#%@"

// Plan describes the die layout: a W×H grid of cells.
type Plan struct {
	W, H   int
	Labels []string // optional, len W*H
}

// NewGridPlan arranges n cells in a near-square grid (the layout used for
// clusters on the XMT die).
func NewGridPlan(n int) *Plan {
	w := int(math.Ceil(math.Sqrt(float64(n))))
	h := (n + w - 1) / w
	return &Plan{W: w, H: h}
}

// Render draws the values (len <= W*H) as a shaded map with a legend.
// Values are normalized between min and max; pass math.NaN() for automatic
// scaling.
func (p *Plan) Render(w io.Writer, title string, values []float64, lo, hi float64) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, "%s  [%.4g .. %.4g]\n", title, lo, hi)
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", p.W*2))
	for y := 0; y < p.H; y++ {
		fmt.Fprint(w, "|")
		for x := 0; x < p.W; x++ {
			i := y*p.W + x
			if i >= len(values) {
				fmt.Fprint(w, "  ")
				continue
			}
			n := (values[i] - lo) / (hi - lo)
			if n < 0 {
				n = 0
			}
			if n > 1 {
				n = 1
			}
			c := shades[int(n*float64(len(shades)-1))]
			fmt.Fprintf(w, "%c%c", c, c)
		}
		fmt.Fprintln(w, "|")
	}
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", p.W*2))
}

// RenderValues draws the raw numbers in a grid (text mode of the
// visualization package).
func (p *Plan) RenderValues(w io.Writer, title string, values []float64, format string) {
	if format == "" {
		format = "%8.2f"
	}
	fmt.Fprintln(w, title)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			i := y*p.W + x
			if i < len(values) {
				fmt.Fprintf(w, format, values[i])
			}
		}
		fmt.Fprintln(w)
	}
}
