package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGridPlanShape(t *testing.T) {
	for _, tc := range []struct{ n, w, h int }{
		{1, 1, 1}, {4, 2, 2}, {8, 3, 3}, {64, 8, 8}, {65, 9, 8},
	} {
		p := NewGridPlan(tc.n)
		if p.W != tc.w || p.H != tc.h {
			t.Errorf("NewGridPlan(%d) = %dx%d, want %dx%d", tc.n, p.W, p.H, tc.w, tc.h)
		}
		if p.W*p.H < tc.n {
			t.Errorf("plan too small for %d cells", tc.n)
		}
	}
}

func TestRenderShading(t *testing.T) {
	p := NewGridPlan(4)
	var buf bytes.Buffer
	p.Render(&buf, "test", []float64{0, 0.5, 1, 0.25}, 0, 1)
	out := buf.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "[0 .. 1]") {
		t.Fatalf("header missing:\n%s", out)
	}
	// The max cell renders with the densest shade, the min with the
	// lightest.
	if !strings.Contains(out, "@@") || !strings.Contains(out, "  ") {
		t.Fatalf("shading missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + top border + 2 rows + bottom border
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderAutoScale(t *testing.T) {
	p := NewGridPlan(2)
	var buf bytes.Buffer
	p.Render(&buf, "auto", []float64{10, 20}, math.NaN(), math.NaN())
	if !strings.Contains(buf.String(), "[10 .. 20]") {
		t.Fatalf("auto scale wrong:\n%s", buf.String())
	}
	// Degenerate all-equal values must not divide by zero.
	buf.Reset()
	p.Render(&buf, "flat", []float64{5, 5}, math.NaN(), math.NaN())
	if !strings.Contains(buf.String(), "flat") {
		t.Fatal("flat render failed")
	}
}

func TestRenderValues(t *testing.T) {
	p := NewGridPlan(4)
	var buf bytes.Buffer
	p.RenderValues(&buf, "vals", []float64{1, 2, 3, 4}, "%6.1f")
	out := buf.String()
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "4.0") {
		t.Fatalf("values missing:\n%s", out)
	}
}
