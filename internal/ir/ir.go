// Package ir is the intermediate representation of the XMTC compiler's
// core pass: three-address code over unlimited virtual registers in basic
// blocks. The IR mirrors the XMT ISA closely (the back end is nearly 1:1)
// and encodes the XMT memory-model constraints structurally: prefix-sum,
// fence, call, sys, spawn and join instructions are memory barriers that
// the optimizer never moves memory operations across (paper §IV-A), and
// blocks belonging to a spawn region are marked so the register allocator
// can enforce the no-stack rule of parallel code (§IV-D).
package ir

import "fmt"

// VReg is a virtual register index (>= 0). NoReg marks unused operands.
type VReg int32

// NoReg is the absent-operand marker.
const NoReg VReg = -1

// Op is an IR operation.
type Op uint8

const (
	Nop Op = iota

	// Values.
	LdImm     // Dst = Imm
	LdSym     // Dst = address of data symbol Sym (or text label index)
	FrameAddr // Dst = $sp + frame slot offset Imm (serial code only)
	Mov       // Dst = A

	// Integer arithmetic (register forms; *Imm use Imm as second operand).
	Add
	AddImm
	Sub
	Mul
	Div
	DivU
	Rem
	RemU
	And
	AndImm
	Or
	OrImm
	Xor
	XorImm
	Nor
	Shl
	ShlImm
	Shr
	ShrImm
	Sar
	SarImm
	SltS
	SltImm
	SltU
	SltUImm

	// Floating point (bits in integer vregs).
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FAbs
	FSqrt
	CvtIF // int -> float
	CvtFI // float -> int
	FEq
	FLt
	FLe

	// Memory. Size is 1 or 4; Signed applies to 1-byte loads; Volatile
	// loads/stores are never eliminated; NB marks a non-blocking store.
	Load  // Dst = mem[A + Imm]
	Store // mem[A + Imm] = B

	// XMT operations.
	Ps     // Dst = fetch-add(greg G, A); A must be 0/1 at run time
	Psm    // Dst = fetch-add(mem[A + Imm], B)
	Grr    // Dst = greg G
	Grw    // greg G = A
	Fence  // wait for this context's pending memory operations
	Pref   // prefetch line of mem[A + Imm]
	LoadRO // Dst = mem[A + Imm] via the cluster read-only cache

	// Control.
	Spawn // enter parallel mode: A = low, B = high (paired with Join)
	Join  // end of the spawn region
	Chkid // validate virtual-thread id in A; blocks the TCU when out of range
	Sys   // simulator trap Imm; A optional argument, Dst optional result
	Call  // Dst = CallName(CallArgs...)
	Ret   // return A (or nothing when A == NoReg)

	// Terminators.
	Jmp // unconditional to Target
	Br  // conditional: BrKind(A, B) -> Target, else fall through

	numIROps
)

// BrKind is the fused compare-and-branch condition.
type BrKind uint8

const (
	BrEQ  BrKind = iota // A == B
	BrNE                // A != B
	BrLEZ               // A <= 0
	BrGTZ               // A > 0
	BrLTZ               // A < 0
	BrGEZ               // A >= 0
)

// Instr is one IR instruction.
type Instr struct {
	Op   Op
	Dst  VReg
	A, B VReg
	Imm  int32
	Sym  string
	G    uint8 // global register for Ps/Grr/Grw

	Size     uint8 // memory access size (1 or 4)
	Signed   bool  // sign-extend byte loads
	Volatile bool
	NB       bool // non-blocking store

	Cond   BrKind
	Target *Block

	CallName string
	CallArgs []VReg

	Line int // source line for diagnostics and asm mapping
}

// Block is a basic block. Control falls through to the next block in the
// function's Blocks slice unless the last instruction is an unconditional
// transfer.
type Block struct {
	ID     int
	Label  string
	Instrs []Instr

	// SpawnID > 0 marks blocks inside that spawn region.
	SpawnID int

	// liveIn/liveOut are filled by Liveness.
	liveIn, liveOut map[VReg]bool
}

// Func is an IR function.
type Func struct {
	Name     string
	NumArgs  int
	ArgRegs  []VReg // vregs holding incoming arguments
	RetVoid  bool
	Blocks   []*Block
	NumVRegs int

	// HasCall is set when the function calls others (so $ra is saved).
	HasCall bool
	// SpawnCount is the number of spawn regions lowered in this function.
	SpawnCount int
	// FrameLocals is the byte size of memory-resident locals (arrays,
	// address-taken or volatile locals); slots are addressed $sp+offset.
	FrameLocals int32
}

// NewVReg allocates a fresh virtual register.
func (f *Func) NewVReg() VReg {
	v := VReg(f.NumVRegs)
	f.NumVRegs++
	return v
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{ID: len(f.Blocks), Label: label}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Emit appends an instruction to the block.
func (b *Block) Emit(in Instr) { b.Instrs = append(b.Instrs, in) }

// Terminated reports whether the block ends in an unconditional transfer.
func (b *Block) Terminated() bool {
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case Jmp, Ret:
		return true
	}
	return false
}

// IsBarrier reports whether the instruction is a memory barrier the
// optimizer must not move or eliminate memory operations across: prefix
// sums, fences, calls, sys traps and spawn/join boundaries (the XMT memory
// model orders memory relative to exactly these).
func (in *Instr) IsBarrier() bool {
	switch in.Op {
	case Ps, Psm, Fence, Call, Sys, Spawn, Join, Chkid, Grw, Grr:
		return true
	}
	return false
}

// HasSideEffects reports whether the instruction must be kept even if its
// result is unused.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case Store, Ps, Psm, Grw, Fence, Pref, Spawn, Join, Chkid, Sys, Call, Ret, Jmp, Br:
		return true
	case Load, LoadRO:
		return in.Volatile
	case Div, Rem: // may trap on zero
		return true
	}
	return false
}

// Uses returns the vregs read by the instruction. The switch is op-aware
// so stale operand fields on single-operand instructions are ignored.
func (in *Instr) Uses(buf []VReg) []VReg {
	buf = buf[:0]
	add := func(v VReg) {
		if v != NoReg {
			buf = append(buf, v)
		}
	}
	switch in.Op {
	case LdImm, LdSym, FrameAddr, Grr, Fence, Join, Jmp, Nop:
	case Call:
		for _, a := range in.CallArgs {
			add(a)
		}
	case Mov, AddImm, AndImm, OrImm, XorImm, ShlImm, ShrImm, SarImm,
		SltImm, SltUImm, FNeg, FAbs, FSqrt, CvtIF, CvtFI,
		Load, LoadRO, Pref, Grw, Chkid, Ret, Sys, Ps:
		add(in.A)
	case Br:
		add(in.A)
		if in.Cond == BrEQ || in.Cond == BrNE {
			add(in.B)
		}
	default:
		add(in.A)
		add(in.B)
	}
	return buf
}

// Def returns the vreg written, or NoReg.
func (in *Instr) Def() VReg {
	switch in.Op {
	case Store, Grw, Fence, Pref, Spawn, Join, Chkid, Ret, Jmp, Br, Nop:
		return NoReg
	case Sys, Call:
		return in.Dst // may be NoReg
	}
	return in.Dst
}

func (in Instr) String() string {
	switch in.Op {
	case LdImm:
		return fmt.Sprintf("v%d = %d", in.Dst, in.Imm)
	case LdSym:
		return fmt.Sprintf("v%d = &%s", in.Dst, in.Sym)
	case Mov:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.A)
	case Load:
		return fmt.Sprintf("v%d = load%d [v%d+%d]", in.Dst, in.Size, in.A, in.Imm)
	case LoadRO:
		return fmt.Sprintf("v%d = loadro [v%d+%d]", in.Dst, in.A, in.Imm)
	case Store:
		nb := ""
		if in.NB {
			nb = ".nb"
		}
		return fmt.Sprintf("store%d%s [v%d+%d] = v%d", in.Size, nb, in.A, in.Imm, in.B)
	case Ps:
		return fmt.Sprintf("v%d = ps(v%d, g%d)", in.Dst, in.A, in.G)
	case Psm:
		return fmt.Sprintf("v%d = psm(v%d, [v%d+%d])", in.Dst, in.B, in.A, in.Imm)
	case Grr:
		return fmt.Sprintf("v%d = g%d", in.Dst, in.G)
	case Grw:
		return fmt.Sprintf("g%d = v%d", in.G, in.A)
	case Spawn:
		return fmt.Sprintf("spawn v%d, v%d", in.A, in.B)
	case Chkid:
		return fmt.Sprintf("chkid v%d", in.A)
	case Call:
		return fmt.Sprintf("v%d = call %s %v", in.Dst, in.CallName, in.CallArgs)
	case Ret:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", in.A)
	case Jmp:
		return fmt.Sprintf("jmp %s", in.Target.Label)
	case Br:
		return fmt.Sprintf("br%d v%d, v%d -> %s", in.Cond, in.A, in.B, in.Target.Label)
	case Sys:
		return fmt.Sprintf("sys %d (v%d -> v%d)", in.Imm, in.A, in.Dst)
	}
	return fmt.Sprintf("op%d v%d, v%d, v%d, imm=%d", in.Op, in.Dst, in.A, in.B, in.Imm)
}

// Dump renders the function for debugging.
func (f *Func) Dump() string {
	s := fmt.Sprintf("func %s (%d args, %d vregs)\n", f.Name, f.NumArgs, f.NumVRegs)
	for _, b := range f.Blocks {
		s += fmt.Sprintf("%s: (spawn %d)\n", b.Label, b.SpawnID)
		for _, in := range b.Instrs {
			s += "\t" + in.String() + "\n"
		}
	}
	return s
}

// Succs returns the block's successors given the layout. Blocks may end
// with several branch instructions (a Br chain followed by a Jmp), and a
// Spawn instruction contributes its paired join block: the master's
// control continues there once all virtual threads complete.
func (f *Func) Succs(i int) []*Block {
	b := f.Blocks[i]
	var out []*Block
	for ii := range b.Instrs {
		switch b.Instrs[ii].Op {
		case Spawn:
			if b.Instrs[ii].Target != nil {
				out = append(out, b.Instrs[ii].Target)
			}
		case Br:
			out = append(out, b.Instrs[ii].Target)
		}
	}
	if len(b.Instrs) > 0 {
		last := b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case Jmp:
			return append(out, last.Target)
		case Ret:
			return out
		}
	}
	if i+1 < len(f.Blocks) {
		out = append(out, f.Blocks[i+1])
	}
	return out
}
