package ir

import (
	"testing"
)

// buildLinear makes a function with one block from the given instructions.
func buildLinear(instrs ...Instr) *Func {
	f := &Func{Name: "t"}
	b := f.NewBlock("entry")
	max := VReg(0)
	for _, in := range instrs {
		b.Emit(in)
		for _, v := range []VReg{in.Dst, in.A, in.B} {
			if v > max {
				max = v
			}
		}
	}
	f.NumVRegs = int(max) + 1
	b.Emit(Instr{Op: Ret, A: NoReg, Dst: NoReg, B: NoReg})
	return f
}

func TestConstantFolding(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 6, A: NoReg, B: NoReg},
		Instr{Op: LdImm, Dst: 1, Imm: 7, A: NoReg, B: NoReg},
		Instr{Op: Mul, Dst: 2, A: 0, B: 1},
		Instr{Op: Store, A: 2, B: 2, Size: 4},
	)
	f.Optimize(1)
	// The multiply must fold to LdImm 42.
	found := false
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == LdImm && in.Imm == 42 {
			found = true
		}
		if in.Op == Mul {
			t.Fatal("multiply not folded")
		}
	}
	if !found {
		t.Fatalf("folded constant missing:\n%s", f.Dump())
	}
}

func TestStrengthReduction(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 8, A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4, Volatile: true},
		Instr{Op: Mul, Dst: 2, A: 1, B: 0},
		Instr{Op: Store, A: 2, B: 2, Size: 4},
	)
	f.Optimize(1)
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == Mul {
			t.Fatalf("mul by 8 not strength-reduced:\n%s", f.Dump())
		}
	}
}

func TestRedundantLoadElimination(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4},
		Instr{Op: Load, Dst: 2, A: 0, Size: 4}, // redundant
		Instr{Op: Add, Dst: 3, A: 1, B: 2},
		Instr{Op: Store, A: 0, B: 3, Size: 4},
	)
	f.Optimize(1)
	loads := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == Load {
			loads++
		}
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1:\n%s", loads, f.Dump())
	}
}

func TestVolatileLoadsSurvive(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4, Volatile: true},
		Instr{Op: Load, Dst: 2, A: 0, Size: 4, Volatile: true},
		Instr{Op: Add, Dst: 3, A: 1, B: 2},
		Instr{Op: Store, A: 0, B: 3, Size: 4},
	)
	f.Optimize(1)
	loads := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == Load {
			loads++
		}
	}
	if loads != 2 {
		t.Fatalf("volatile loads = %d, want 2:\n%s", loads, f.Dump())
	}
}

// TestBarrierBlocksLoadCSE: a prefix-sum between two identical loads must
// keep both (the XMT memory-model constraint).
func TestBarrierBlocksLoadCSE(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4},
		Instr{Op: LdImm, Dst: 4, Imm: 1, A: NoReg, B: NoReg},
		Instr{Op: Ps, Dst: 5, A: 4, G: 0},
		Instr{Op: Load, Dst: 2, A: 0, Size: 4}, // must survive: ps is a barrier
		Instr{Op: Add, Dst: 3, A: 1, B: 2},
		Instr{Op: Store, A: 0, B: 3, Size: 4},
		Instr{Op: Store, A: 0, B: 5, Imm: 4, Size: 4},
	)
	f.Optimize(1)
	loads := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == Load {
			loads++
		}
	}
	if loads != 2 {
		t.Fatalf("loads across ps = %d, want 2:\n%s", loads, f.Dump())
	}
}

func TestStoreForwarding(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: LdImm, Dst: 1, Imm: 5, A: NoReg, B: NoReg},
		Instr{Op: Store, A: 0, B: 1, Size: 4},
		Instr{Op: Load, Dst: 2, A: 0, Size: 4}, // forwarded from the store
		Instr{Op: Store, A: 0, B: 2, Imm: 8, Size: 4},
	)
	f.Optimize(1)
	loads := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == Load {
			loads++
		}
	}
	if loads != 0 {
		t.Fatalf("store-to-load forwarding failed:\n%s", f.Dump())
	}
}

func TestDCE(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 1, A: NoReg, B: NoReg}, // dead
		Instr{Op: LdImm, Dst: 1, Imm: 2, A: NoReg, B: NoReg},
		Instr{Op: Store, A: 1, B: 1, Size: 4},
	)
	f.Optimize(1)
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == LdImm && in.Imm == 1 && in.Dst == 0 {
			t.Fatalf("dead LdImm survives:\n%s", f.Dump())
		}
	}
}

func TestUnreachableBlockRemoval(t *testing.T) {
	f := &Func{Name: "t"}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("dead")
	b2 := f.NewBlock("live")
	f.NumVRegs = 1
	b0.Emit(Instr{Op: Jmp, Target: b2, A: NoReg, B: NoReg, Dst: NoReg})
	b1.Emit(Instr{Op: LdImm, Dst: 0, Imm: 9, A: NoReg, B: NoReg})
	b1.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	b2.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	f.Optimize(1)
	for _, b := range f.Blocks {
		if b.Label == "dead" {
			t.Fatal("unreachable block not removed")
		}
	}
}

func TestLivenessAcrossBlocks(t *testing.T) {
	f := &Func{Name: "t"}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("body")
	f.NumVRegs = 2
	b0.Emit(Instr{Op: LdImm, Dst: 0, Imm: 3, A: NoReg, B: NoReg})
	b1.Emit(Instr{Op: Store, A: 0, B: 0, Size: 4})
	b1.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	f.Liveness()
	if !b1.LiveIn()[0] {
		t.Fatal("v0 must be live into body")
	}
	if !b0.LiveOut()[0] {
		t.Fatal("v0 must be live out of entry")
	}
}

func TestSuccsWithBrChain(t *testing.T) {
	f := &Func{Name: "t"}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("t1")
	b2 := f.NewBlock("t2")
	f.NumVRegs = 2
	b0.Emit(Instr{Op: Br, Cond: BrEQ, A: 0, B: 1, Target: b1})
	b0.Emit(Instr{Op: Jmp, Target: b2, A: NoReg, B: NoReg})
	b1.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	b2.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	succs := f.Succs(0)
	if len(succs) != 2 {
		t.Fatalf("succs = %d, want both Br and Jmp targets", len(succs))
	}
}
