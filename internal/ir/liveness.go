package ir

// Liveness computes per-block live-in/live-out sets with the standard
// backward fixed-point iteration. Results feed dead-code elimination and
// the linear-scan register allocator.
func (f *Func) Liveness() {
	n := len(f.Blocks)
	gen := make([]map[VReg]bool, n)
	kill := make([]map[VReg]bool, n)
	var buf []VReg
	for i, b := range f.Blocks {
		g := make(map[VReg]bool)
		k := make(map[VReg]bool)
		for _, in := range b.Instrs {
			buf = in.Uses(buf)
			for _, u := range buf {
				if !k[u] {
					g[u] = true
				}
			}
			if d := in.Def(); d != NoReg {
				k[d] = true
			}
		}
		gen[i], kill[i] = g, k
		b.liveIn = make(map[VReg]bool)
		b.liveOut = make(map[VReg]bool)
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := make(map[VReg]bool)
			for _, s := range f.Succs(i) {
				for v := range s.liveIn {
					out[v] = true
				}
			}
			in := make(map[VReg]bool, len(gen[i]))
			for v := range gen[i] {
				in[v] = true
			}
			for v := range out {
				if !kill[i][v] {
					in[v] = true
				}
			}
			if len(out) != len(b.liveOut) || len(in) != len(b.liveIn) {
				changed = true
			} else {
				for v := range in {
					if !b.liveIn[v] {
						changed = true
						break
					}
				}
			}
			b.liveIn, b.liveOut = in, out
		}
	}
}

// LiveIn exposes a block's live-in set (after Liveness).
func (b *Block) LiveIn() map[VReg]bool { return b.liveIn }

// LiveOut exposes a block's live-out set (after Liveness).
func (b *Block) LiveOut() map[VReg]bool { return b.liveOut }
