package ir

import "math"

// Optimize runs the core-pass optimization pipeline: local value numbering
// (constant folding, algebraic simplification, copy propagation, common
// subexpression and redundant-load elimination), branch folding,
// unreachable-code removal and global dead-code elimination. All memory
// optimizations are local to a basic block and never cross a barrier
// instruction, which structurally enforces the XMT memory model's rule
// that memory operations do not move across prefix-sums (paper §IV-A).
func (f *Func) Optimize(level int) {
	if level <= 0 {
		return
	}
	for round := 0; round < 3; round++ {
		for _, b := range f.Blocks {
			f.lvnBlock(b)
		}
		f.foldBranches()
		f.removeUnreachable()
		f.dce()
	}
}

type exprKey struct {
	op   Op
	a, b VReg
	imm  int32
	sym  string
	g    uint8
}

type loadKey struct {
	base VReg
	off  int32
	size uint8
	ro   bool
}

// lvnBlock performs local value numbering on one block.
func (f *Func) lvnBlock(b *Block) {
	consts := make(map[VReg]int32)
	copies := make(map[VReg]VReg)
	exprs := make(map[exprKey]VReg)
	loads := make(map[loadKey]VReg)

	canon := func(v VReg) VReg {
		for {
			c, ok := copies[v]
			if !ok {
				return v
			}
			v = c
		}
	}
	invalidate := func(v VReg) {
		// v is redefined: drop every table entry mentioning it.
		delete(consts, v)
		delete(copies, v)
		for k, val := range exprs {
			if k.a == v || k.b == v || val == v {
				delete(exprs, k)
			}
		}
		for k, val := range loads {
			if k.base == v || val == v {
				delete(loads, k)
			}
		}
		for from, to := range copies {
			if to == v {
				delete(copies, from)
			}
		}
	}
	clobberMemory := func() {
		loads = make(map[loadKey]VReg)
	}

	out := b.Instrs[:0]
	for idx := range b.Instrs {
		in := b.Instrs[idx]
		// Canonicalize operands through copies.
		if in.Op != Call {
			if in.A != NoReg {
				in.A = canon(in.A)
			}
			if in.B != NoReg {
				in.B = canon(in.B)
			}
		} else {
			for i := range in.CallArgs {
				in.CallArgs[i] = canon(in.CallArgs[i])
			}
		}

		// Constant folding and algebraic simplification.
		in = f.simplify(in, consts)

		// CSE for pure value-producing instructions.
		cseable := false
		var key exprKey
		switch in.Op {
		case LdImm:
			// Reuse an existing constant register when available.
			key = exprKey{op: LdImm, imm: in.Imm}
			cseable = true
		case LdSym:
			key = exprKey{op: LdSym, sym: in.Sym}
			cseable = true
		case FrameAddr:
			key = exprKey{op: FrameAddr, imm: in.Imm}
			cseable = true
		case Add, Sub, Mul, And, Or, Xor, Nor, Shl, Shr, Sar, SltS, SltU,
			FAdd, FSub, FMul, FNeg, FAbs, CvtIF, CvtFI, FEq, FLt, FLe:
			key = exprKey{op: in.Op, a: in.A, b: in.B}
			cseable = true
		case AddImm, AndImm, OrImm, XorImm, ShlImm, ShrImm, SarImm, SltImm, SltUImm:
			key = exprKey{op: in.Op, a: in.A, imm: in.Imm}
			cseable = true
		case Div, DivU, Rem, RemU, FDiv, FSqrt:
			// May trap or be expensive but are pure given same operands.
			key = exprKey{op: in.Op, a: in.A, b: in.B}
			cseable = true
		}
		if cseable {
			if prev, ok := exprs[key]; ok && prev != in.Dst {
				invalidate(in.Dst)
				copies[in.Dst] = prev
				if c, ok := consts[prev]; ok {
					consts[in.Dst] = c
				}
				out = append(out, Instr{Op: Mov, Dst: in.Dst, A: prev, Line: in.Line})
				continue
			}
		}

		switch in.Op {
		case Mov:
			if in.A == in.Dst {
				continue // self-move
			}
			invalidate(in.Dst)
			copies[in.Dst] = in.A
			if c, ok := consts[in.A]; ok {
				consts[in.Dst] = c
			}
		case LdImm:
			invalidate(in.Dst)
			consts[in.Dst] = in.Imm
			exprs[exprKey{op: LdImm, imm: in.Imm}] = in.Dst
		case Load, LoadRO:
			lk := loadKey{base: in.A, off: in.Imm, size: in.Size, ro: in.Op == LoadRO}
			if !in.Volatile {
				if prev, ok := loads[lk]; ok && prev != in.Dst {
					invalidate(in.Dst)
					copies[in.Dst] = prev
					out = append(out, Instr{Op: Mov, Dst: in.Dst, A: prev, Line: in.Line})
					continue
				}
			}
			invalidate(in.Dst)
			if !in.Volatile {
				loads[lk] = in.Dst
			}
		case Store:
			// A store invalidates all remembered loads (no alias analysis)
			// but makes its own value forwardable.
			clobberMemory()
			if !in.Volatile && in.Size == 4 {
				loads[loadKey{base: in.A, off: in.Imm, size: 4}] = in.B
			}
		default:
			if in.IsBarrier() {
				clobberMemory()
			}
			if d := in.Def(); d != NoReg {
				invalidate(d)
			}
		}
		if cseable {
			if d := in.Def(); d != NoReg {
				exprs[key] = d
			}
		}
		out = append(out, in)
	}
	b.Instrs = out
}

// simplify folds constants and applies strength reduction to a single
// instruction, given the known-constants map.
func (f *Func) simplify(in Instr, consts map[VReg]int32) Instr {
	cA, okA := consts[in.A]
	cB, okB := consts[in.B]
	imm := func(v int32) Instr {
		return Instr{Op: LdImm, Dst: in.Dst, Imm: v, A: NoReg, B: NoReg, Line: in.Line}
	}
	fitsImm16 := func(v int32) bool { return v >= -32768 && v <= 32767 }

	switch in.Op {
	case Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, SltS, SltU:
		if okA && okB {
			if v, ok := evalInt(in.Op, cA, cB); ok {
				return imm(v)
			}
		}
		// Immediate forms and strength reduction.
		switch in.Op {
		case Add:
			if okB && fitsImm16(cB) {
				return Instr{Op: AddImm, Dst: in.Dst, A: in.A, Imm: cB, B: NoReg, Line: in.Line}
			}
			if okA && fitsImm16(cA) {
				return Instr{Op: AddImm, Dst: in.Dst, A: in.B, Imm: cA, B: NoReg, Line: in.Line}
			}
		case Sub:
			if okB && fitsImm16(-cB) && cB != math.MinInt32 {
				return Instr{Op: AddImm, Dst: in.Dst, A: in.A, Imm: -cB, B: NoReg, Line: in.Line}
			}
		case Mul:
			if okB {
				if sh, ok := powerOfTwo(cB); ok {
					return Instr{Op: ShlImm, Dst: in.Dst, A: in.A, Imm: sh, B: NoReg, Line: in.Line}
				}
			}
			if okA {
				if sh, ok := powerOfTwo(cA); ok {
					return Instr{Op: ShlImm, Dst: in.Dst, A: in.B, Imm: sh, B: NoReg, Line: in.Line}
				}
			}
		case And:
			if okB && cB >= 0 && cB <= 0xffff {
				return Instr{Op: AndImm, Dst: in.Dst, A: in.A, Imm: cB, B: NoReg, Line: in.Line}
			}
		case Or:
			if okB && cB >= 0 && cB <= 0xffff {
				return Instr{Op: OrImm, Dst: in.Dst, A: in.A, Imm: cB, B: NoReg, Line: in.Line}
			}
		case Xor:
			if okB && cB >= 0 && cB <= 0xffff {
				return Instr{Op: XorImm, Dst: in.Dst, A: in.A, Imm: cB, B: NoReg, Line: in.Line}
			}
		case Shl:
			if okB {
				return Instr{Op: ShlImm, Dst: in.Dst, A: in.A, Imm: cB & 31, B: NoReg, Line: in.Line}
			}
		case Shr:
			if okB {
				return Instr{Op: ShrImm, Dst: in.Dst, A: in.A, Imm: cB & 31, B: NoReg, Line: in.Line}
			}
		case Sar:
			if okB {
				return Instr{Op: SarImm, Dst: in.Dst, A: in.A, Imm: cB & 31, B: NoReg, Line: in.Line}
			}
		case SltS:
			if okB && fitsImm16(cB) {
				return Instr{Op: SltImm, Dst: in.Dst, A: in.A, Imm: cB, B: NoReg, Line: in.Line}
			}
		case SltU:
			if okB && fitsImm16(cB) {
				return Instr{Op: SltUImm, Dst: in.Dst, A: in.A, Imm: cB, B: NoReg, Line: in.Line}
			}
		}
	case AddImm:
		if okA {
			return imm(cA + in.Imm)
		}
		if in.Imm == 0 {
			return Instr{Op: Mov, Dst: in.Dst, A: in.A, B: NoReg, Line: in.Line}
		}
	case AndImm:
		if okA {
			return imm(cA & in.Imm)
		}
	case OrImm:
		if okA {
			return imm(cA | in.Imm)
		}
		if in.Imm == 0 {
			return Instr{Op: Mov, Dst: in.Dst, A: in.A, B: NoReg, Line: in.Line}
		}
	case XorImm:
		if okA {
			return imm(cA ^ in.Imm)
		}
	case ShlImm:
		if okA {
			return imm(cA << uint(in.Imm&31))
		}
		if in.Imm == 0 {
			return Instr{Op: Mov, Dst: in.Dst, A: in.A, B: NoReg, Line: in.Line}
		}
	case ShrImm:
		if okA {
			return imm(int32(uint32(cA) >> uint(in.Imm&31)))
		}
	case SarImm:
		if okA {
			return imm(cA >> uint(in.Imm&31))
		}
	case SltImm:
		if okA {
			return imm(b2i(cA < in.Imm))
		}
	case SltUImm:
		if okA {
			return imm(b2i(uint32(cA) < uint32(in.Imm)))
		}
	case Div, DivU, Rem, RemU:
		if okA && okB && cB != 0 {
			if v, ok := evalInt(in.Op, cA, cB); ok {
				return imm(v)
			}
		}
		// Unsigned divide/modulo by a power of two.
		if okB {
			if sh, ok := powerOfTwo(cB); ok {
				switch in.Op {
				case DivU:
					return Instr{Op: ShrImm, Dst: in.Dst, A: in.A, Imm: sh, B: NoReg, Line: in.Line}
				case RemU:
					mask := cB - 1
					if mask >= 0 && mask <= 0xffff {
						return Instr{Op: AndImm, Dst: in.Dst, A: in.A, Imm: mask, B: NoReg, Line: in.Line}
					}
				}
			}
		}
	case FAdd, FSub, FMul, FDiv, FEq, FLt, FLe:
		if okA && okB {
			if v, ok := evalFloat(in.Op, cA, cB); ok {
				return imm(v)
			}
		}
	case FNeg:
		if okA {
			return imm(int32(math.Float32bits(-math.Float32frombits(uint32(cA)))))
		}
	case CvtIF:
		if okA {
			return imm(int32(math.Float32bits(float32(cA))))
		}
	case CvtFI:
		if okA {
			return imm(int32(math.Float32frombits(uint32(cA))))
		}
	}
	return in
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func powerOfTwo(v int32) (int32, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	var sh int32
	for v > 1 {
		v >>= 1
		sh++
	}
	return sh, true
}

func evalInt(op Op, a, b int32) (int32, bool) {
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return a * b, true
	case Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case DivU:
		if b == 0 {
			return 0, false
		}
		return int32(uint32(a) / uint32(b)), true
	case Rem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case RemU:
		if b == 0 {
			return 0, false
		}
		return int32(uint32(a) % uint32(b)), true
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Nor:
		return ^(a | b), true
	case Shl:
		return a << uint(b&31), true
	case Shr:
		return int32(uint32(a) >> uint(b&31)), true
	case Sar:
		return a >> uint(b&31), true
	case SltS:
		return b2i(a < b), true
	case SltU:
		return b2i(uint32(a) < uint32(b)), true
	}
	return 0, false
}

func evalFloat(op Op, a, b int32) (int32, bool) {
	x := math.Float32frombits(uint32(a))
	y := math.Float32frombits(uint32(b))
	fb := func(f float32) (int32, bool) { return int32(math.Float32bits(f)), true }
	switch op {
	case FAdd:
		return fb(x + y)
	case FSub:
		return fb(x - y)
	case FMul:
		return fb(x * y)
	case FDiv:
		return fb(x / y)
	case FEq:
		return b2i(x == y), true
	case FLt:
		return b2i(x < y), true
	case FLe:
		return b2i(x <= y), true
	}
	return 0, false
}

// foldBranches resolves branches with known outcomes (after lvn turned
// operands into shared constant registers where possible, a Br comparing a
// register against itself is also folded).
func (f *Func) foldBranches() {
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		last := &b.Instrs[len(b.Instrs)-1]
		if last.Op != Br {
			continue
		}
		if last.Cond == BrEQ && last.A == last.B {
			*last = Instr{Op: Jmp, Target: last.Target, A: NoReg, B: NoReg, Line: last.Line}
		}
		if last.Cond == BrNE && last.A == last.B {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}
	}
}

// removeUnreachable drops blocks not reachable from the entry.
func (f *Func) removeUnreachable() {
	if len(f.Blocks) == 0 {
		return
	}
	reach := make(map[*Block]bool)
	var stack []*Block
	push := func(b *Block) {
		if !reach[b] {
			reach[b] = true
			stack = append(stack, b)
		}
	}
	index := make(map[*Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		index[b] = i
	}
	push(f.Blocks[0])
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Succs(index[b]) {
			push(s)
		}
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	// Re-check fallthrough correctness: if a removed block separated two
	// kept blocks, the predecessor must have been terminated (otherwise it
	// fell through into an unreachable block, which cannot happen).
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// dce removes pure instructions whose results are never used, using a
// fixed-point over the non-SSA def/use relation.
func (f *Func) dce() {
	needed := make(map[VReg]bool)
	changed := true
	var buf []VReg
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				live := in.HasSideEffects() || in.Op == Jmp || in.Op == Br || in.Op == Ret
				if d := in.Def(); d != NoReg && needed[d] {
					live = true
				}
				if !live {
					continue
				}
				buf = in.Uses(buf)
				for _, u := range buf {
					if !needed[u] {
						needed[u] = true
						changed = true
					}
				}
			}
		}
	}
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			d := in.Def()
			if !in.HasSideEffects() && in.Op != Jmp && in.Op != Br && in.Op != Ret &&
				(d == NoReg || !needed[d]) && in.Op != Nop {
				continue
			}
			if in.Op == Nop {
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}
