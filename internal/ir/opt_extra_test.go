package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// countOp counts instructions of one op across the function.
func countOp(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestImmediateFormSelection(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4, Volatile: true},
		Instr{Op: LdImm, Dst: 2, Imm: 12, A: NoReg, B: NoReg},
		Instr{Op: Add, Dst: 3, A: 1, B: 2},  // -> AddImm
		Instr{Op: Sub, Dst: 4, A: 3, B: 2},  // -> AddImm -12
		Instr{Op: And, Dst: 5, A: 4, B: 2},  // -> AndImm
		Instr{Op: Or, Dst: 6, A: 5, B: 2},   // -> OrImm
		Instr{Op: Xor, Dst: 7, A: 6, B: 2},  // -> XorImm
		Instr{Op: Shl, Dst: 8, A: 7, B: 2},  // -> ShlImm
		Instr{Op: Shr, Dst: 9, A: 8, B: 2},  // -> ShrImm
		Instr{Op: Sar, Dst: 10, A: 9, B: 2}, // -> SarImm
		Instr{Op: SltS, Dst: 11, A: 10, B: 2},
		Instr{Op: SltU, Dst: 12, A: 11, B: 2},
		Instr{Op: Store, A: 0, B: 12, Size: 4},
		Instr{Op: Store, A: 0, B: 10, Imm: 4, Size: 4},
	)
	f.Optimize(1)
	for _, op := range []Op{Add, Sub, And, Or, Xor, Shl, Shr, Sar, SltS, SltU} {
		if countOp(f, op) != 0 {
			t.Fatalf("register-form %d not converted to immediate form:\n%s", op, f.Dump())
		}
	}
}

func TestUnsignedDivStrengthReduction(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4, Volatile: true},
		Instr{Op: LdImm, Dst: 2, Imm: 8, A: NoReg, B: NoReg},
		Instr{Op: DivU, Dst: 3, A: 1, B: 2}, // -> ShrImm 3
		Instr{Op: RemU, Dst: 4, A: 1, B: 2}, // -> AndImm 7
		Instr{Op: Store, A: 0, B: 3, Size: 4},
		Instr{Op: Store, A: 0, B: 4, Imm: 4, Size: 4},
	)
	f.Optimize(1)
	if countOp(f, DivU) != 0 || countOp(f, RemU) != 0 {
		t.Fatalf("unsigned div/rem by power of two not reduced:\n%s", f.Dump())
	}
}

func TestFloatConstantFolding(t *testing.T) {
	bits := func(v float32) int32 { return int32(math.Float32bits(v)) }
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: bits(1.5), A: NoReg, B: NoReg},
		Instr{Op: LdImm, Dst: 1, Imm: bits(2.5), A: NoReg, B: NoReg},
		Instr{Op: FAdd, Dst: 2, A: 0, B: 1},
		Instr{Op: FMul, Dst: 3, A: 2, B: 1},
		Instr{Op: CvtFI, Dst: 4, A: 3},
		Instr{Op: LdImm, Dst: 5, Imm: 100, A: NoReg, B: NoReg},
		Instr{Op: Store, A: 5, B: 4, Size: 4},
	)
	f.Optimize(1)
	if countOp(f, FAdd) != 0 || countOp(f, FMul) != 0 || countOp(f, CvtFI) != 0 {
		t.Fatalf("float ops not folded:\n%s", f.Dump())
	}
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == LdImm && in.Imm == 10 { // (1.5+2.5)*2.5 = 10
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("folded float result missing:\n%s", f.Dump())
	}
}

func TestBranchFoldingSameReg(t *testing.T) {
	f := &Func{Name: "t"}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("taken")
	b2 := f.NewBlock("fall")
	f.NumVRegs = 1
	b0.Emit(Instr{Op: Br, Cond: BrEQ, A: 0, B: 0, Target: b1})
	b1.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	b2.Emit(Instr{Op: Ret, A: NoReg, B: NoReg, Dst: NoReg})
	f.Optimize(1)
	last := f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1]
	if last.Op != Jmp {
		t.Fatalf("BrEQ v,v should fold to Jmp:\n%s", f.Dump())
	}
}

// Property: evalInt matches Go semantics on random operands for every
// foldable operation.
func TestEvalIntProperty(t *testing.T) {
	ops := []Op{Add, Sub, Mul, And, Or, Xor, Nor, Shl, Shr, Sar, SltS, SltU}
	f := func(a, b int32, sel uint8) bool {
		op := ops[int(sel)%len(ops)]
		got, ok := evalInt(op, a, b)
		if !ok {
			return false
		}
		var want int32
		switch op {
		case Add:
			want = a + b
		case Sub:
			want = a - b
		case Mul:
			want = a * b
		case And:
			want = a & b
		case Or:
			want = a | b
		case Xor:
			want = a ^ b
		case Nor:
			want = ^(a | b)
		case Shl:
			want = a << uint(b&31)
		case Shr:
			want = int32(uint32(a) >> uint(b&31))
		case Sar:
			want = a >> uint(b&31)
		case SltS:
			want = b2i(a < b)
		case SltU:
			want = b2i(uint32(a) < uint32(b))
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	if _, ok := evalInt(Div, 5, 0); ok {
		t.Fatal("division by zero must not fold")
	}
	// A Div with constant zero divisor must survive optimization (it traps
	// at run time, preserving semantics).
	f := buildLinear(
		Instr{Op: LdImm, Dst: 0, Imm: 5, A: NoReg, B: NoReg},
		Instr{Op: LdImm, Dst: 1, Imm: 0, A: NoReg, B: NoReg},
		Instr{Op: Div, Dst: 2, A: 0, B: 1},
		Instr{Op: Store, A: 0, B: 2, Size: 4},
	)
	f.Optimize(1)
	if countOp(f, Div) != 1 {
		t.Fatalf("div by zero folded away:\n%s", f.Dump())
	}
}

func TestDumpRendersEveryOp(t *testing.T) {
	f := buildLinear(
		Instr{Op: LdSym, Dst: 0, Sym: "g", A: NoReg, B: NoReg},
		Instr{Op: Load, Dst: 1, A: 0, Size: 4},
		Instr{Op: Psm, Dst: 2, A: 0, B: 1},
		Instr{Op: Grw, G: 3, A: 2},
		Instr{Op: Grr, Dst: 3, G: 3},
		Instr{Op: Chkid, A: 3},
		Instr{Op: Store, A: 0, B: 3, Size: 4, NB: true},
		Instr{Op: Sys, Imm: 0, A: NoReg, Dst: NoReg},
	)
	d := f.Dump()
	for _, want := range []string{"&g", "load4", "psm", "g3 = v", "chkid", "store4.nb", "sys"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}
