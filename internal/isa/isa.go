// Package isa defines the XMT instruction set architecture as modeled by the
// toolchain: a 32-bit MIPS-like base ISA extended with the XMT-specific
// operations described in the paper — spawn/join parallel-mode control,
// prefix-sum over global registers (ps), prefix-sum to memory (psm), virtual
// thread-id validation (chkid), master-register broadcast (bcast), software
// prefetch into TCU prefetch buffers (pref), non-blocking stores (sw.nb), a
// memory fence, and read-only-cache loads (lwro).
//
// The toolchain works at transaction-level accuracy (like XMTSim), so
// instructions are represented as decoded structures rather than binary
// words. Program counters are instruction indices into the loaded text
// segment; data addresses are byte addresses into the simulated shared
// memory.
package isa

import "fmt"

// Reg identifies one of the 32 per-context registers ($0..$31).
// $0 is hard-wired to zero, as in MIPS.
type Reg uint8

// Conventional register roles, following the MIPS o32 convention used by the
// XMT compiler.
const (
	RegZero Reg = 0 // always zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // result / sys argument
	RegV1   Reg = 3 // result
	RegA0   Reg = 4 // first argument
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8  // caller-saved temporaries $8..$15
	RegS0   Reg = 16 // callee-saved $16..$23
	RegT8   Reg = 24
	RegT9   Reg = 25
	RegTID  Reg = 26 // $tid: holds the current virtual thread id inside spawn blocks
	RegK1   Reg = 27 // reserved for the runtime
	RegGP   Reg = 28 // global pointer
	RegSP   Reg = 29 // stack pointer (serial mode only)
	RegFP   Reg = 30 // frame pointer (serial mode only)
	RegRA   Reg = 31 // return address
)

// NumRegs is the size of a per-context register file.
const NumRegs = 32

// GReg identifies one of the global registers held at the Master TCU's
// global register file. Global registers are the only legal base of the ps
// instruction. g63 is reserved by the hardware spawn unit for virtual-thread
// allocation.
type GReg uint8

// NumGRegs is the size of the global register file.
const NumGRegs = 64

// GRegSpawn is the global register the spawn unit uses to allocate virtual
// thread IDs; user code must not name it as a ps base.
const GRegSpawn GReg = 63

// Unit classifies which functional unit of the XMT micro-architecture
// services an instruction. It drives routing in the cycle-accurate model and
// activity accounting.
type Unit uint8

const (
	UnitALU Unit = iota // per-TCU integer ALU
	UnitSFT             // per-TCU shift unit
	UnitBR              // per-TCU branch unit
	UnitMDU             // cluster-shared multiply/divide unit
	UnitFPU             // cluster-shared floating-point unit
	UnitMEM             // load-store unit -> ICN -> shared cache
	UnitPS              // global prefix-sum unit
	UnitCTL             // spawn/join/chkid/bcast/fence/sys control
	numUnits
)

// NumUnits is the number of distinct functional-unit classes.
const NumUnits = int(numUnits)

func (u Unit) String() string {
	switch u {
	case UnitALU:
		return "ALU"
	case UnitSFT:
		return "SFT"
	case UnitBR:
		return "BR"
	case UnitMDU:
		return "MDU"
	case UnitFPU:
		return "FPU"
	case UnitMEM:
		return "MEM"
	case UnitPS:
		return "PS"
	case UnitCTL:
		return "CTL"
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// Format describes the operand syntax of an instruction, used by the
// assembler and the disassembler.
type Format uint8

const (
	FmtNone    Format = iota // op
	FmtRRR                   // op rd, rs, rt
	FmtRRI                   // op rd, rs, imm
	FmtRI                    // op rd, imm
	FmtRR                    // op rd, rs
	FmtR                     // op rd
	FmtMem                   // op rd, imm(rs)
	FmtBranch2               // op rs, rt, label
	FmtBranch1               // op rs, label
	FmtJump                  // op label
	FmtPS                    // op rd, gN
	FmtSpawn                 // op rs, rt (low, high)
	FmtSys                   // op imm
)

// Op is an opcode of the XMT ISA.
type Op uint16

// Integer ALU / shift opcodes.
const (
	OpNop Op = iota
	OpAdd
	OpAddu
	OpSub
	OpSubu
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSlt
	OpSltu
	OpAddi
	OpAddiu
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSltiu
	OpLui
	OpSll
	OpSrl
	OpSra
	OpSllv
	OpSrlv
	OpSrav

	// Multiply/divide unit (three-operand forms; the modeled XMT MDU
	// returns results directly rather than through HI/LO).
	OpMul
	OpMulu
	OpDiv
	OpDivu
	OpRem
	OpRemu

	// Floating point (single precision, operating on the unified register
	// file; values are IEEE-754 bit patterns).
	OpAddS
	OpSubS
	OpMulS
	OpDivS
	OpAbsS
	OpNegS
	OpSqrtS
	OpCvtSW // int -> float
	OpCvtWS // float -> int (truncate)
	OpCeqS  // rd = (rs == rt) ? 1 : 0
	OpCltS
	OpCleS

	// Branches and jumps. Targets are instruction indices after linking.
	OpBeq
	OpBne
	OpBlez
	OpBgtz
	OpBltz
	OpBgez
	OpJ
	OpJal
	OpJr
	OpJalr

	// Memory.
	OpLw
	OpSw
	OpLb
	OpLbu
	OpSb
	OpSwNB // non-blocking store (compiler-inserted; does not stall the TCU)
	OpPref // prefetch into the TCU prefetch buffer
	OpLwRO // load via the cluster read-only cache

	// XMT extensions.
	OpSpawn // spawn rs, rt: enter parallel mode for virtual threads rs..rt
	OpJoin  // end of broadcast spawn region
	OpPs    // ps rd, gN: atomic fetch-add of global register (rd in {0,1})
	OpPsm   // psm rd, imm(rs): atomic fetch-add to memory, any int32
	OpChkid // chkid rd: validate virtual thread id; blocks the TCU when out of range
	OpBcast // bcast rd: master broadcasts register rd to all TCUs at spawn onset
	OpFence // wait for all pending memory operations of this context
	OpGrr   // grr rd, gN: read global register
	OpGrw   // grw rd, gN: write global register
	OpSys   // sys imm: simulator trap (halt, printf, cycle counter, checkpoint)

	numOps
)

// NumOps is the number of opcodes in the ISA.
const NumOps = int(numOps)

// Sys trap codes (the immediate of OpSys). The current toolchain release has
// no operating system; these traps are simulator facilities, matching the
// "printf output / memory dump" outputs of XMTSim's functional model.
const (
	SysHalt       = 0 // stop simulation
	SysPrintInt   = 1 // print integer in $2
	SysPrintChar  = 2 // print character in $2
	SysPrintStr   = 3 // print NUL-terminated string at address $2
	SysCycle      = 4 // $2 := current cycle (cycle-accurate mode) or instruction count
	SysCheckpoint = 5 // request a checkpoint at the next quiescent point
	SysPrintFloat = 6 // print float bits in $2
)

// Info is the static metadata of an opcode.
type Info struct {
	Name       string // assembler mnemonic
	Fmt        Format
	Unit       Unit
	Latency    int  // base latency in cycles at the servicing unit
	Mem        bool // accesses shared memory (lw/sw/psm/pref variants)
	Store      bool // memory write
	Load       bool // memory read producing a register value
	Branch     bool
	MasterOnly bool // legal only in serial mode (spawn, grw to spawn reg, ...)
}

var infos = [NumOps]Info{
	OpNop:   {Name: "nop", Fmt: FmtNone, Unit: UnitALU, Latency: 1},
	OpAdd:   {Name: "add", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpAddu:  {Name: "addu", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpSub:   {Name: "sub", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpSubu:  {Name: "subu", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpAnd:   {Name: "and", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpOr:    {Name: "or", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpXor:   {Name: "xor", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpNor:   {Name: "nor", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpSlt:   {Name: "slt", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpSltu:  {Name: "sltu", Fmt: FmtRRR, Unit: UnitALU, Latency: 1},
	OpAddi:  {Name: "addi", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpAddiu: {Name: "addiu", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpAndi:  {Name: "andi", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpOri:   {Name: "ori", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpXori:  {Name: "xori", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpSlti:  {Name: "slti", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpSltiu: {Name: "sltiu", Fmt: FmtRRI, Unit: UnitALU, Latency: 1},
	OpLui:   {Name: "lui", Fmt: FmtRI, Unit: UnitALU, Latency: 1},
	OpSll:   {Name: "sll", Fmt: FmtRRI, Unit: UnitSFT, Latency: 1},
	OpSrl:   {Name: "srl", Fmt: FmtRRI, Unit: UnitSFT, Latency: 1},
	OpSra:   {Name: "sra", Fmt: FmtRRI, Unit: UnitSFT, Latency: 1},
	OpSllv:  {Name: "sllv", Fmt: FmtRRR, Unit: UnitSFT, Latency: 1},
	OpSrlv:  {Name: "srlv", Fmt: FmtRRR, Unit: UnitSFT, Latency: 1},
	OpSrav:  {Name: "srav", Fmt: FmtRRR, Unit: UnitSFT, Latency: 1},

	OpMul:  {Name: "mul", Fmt: FmtRRR, Unit: UnitMDU, Latency: 4},
	OpMulu: {Name: "mulu", Fmt: FmtRRR, Unit: UnitMDU, Latency: 4},
	OpDiv:  {Name: "div", Fmt: FmtRRR, Unit: UnitMDU, Latency: 16},
	OpDivu: {Name: "divu", Fmt: FmtRRR, Unit: UnitMDU, Latency: 16},
	OpRem:  {Name: "rem", Fmt: FmtRRR, Unit: UnitMDU, Latency: 16},
	OpRemu: {Name: "remu", Fmt: FmtRRR, Unit: UnitMDU, Latency: 16},

	OpAddS:  {Name: "add.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 4},
	OpSubS:  {Name: "sub.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 4},
	OpMulS:  {Name: "mul.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 5},
	OpDivS:  {Name: "div.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 12},
	OpAbsS:  {Name: "abs.s", Fmt: FmtRR, Unit: UnitFPU, Latency: 2},
	OpNegS:  {Name: "neg.s", Fmt: FmtRR, Unit: UnitFPU, Latency: 2},
	OpSqrtS: {Name: "sqrt.s", Fmt: FmtRR, Unit: UnitFPU, Latency: 16},
	OpCvtSW: {Name: "cvt.s.w", Fmt: FmtRR, Unit: UnitFPU, Latency: 3},
	OpCvtWS: {Name: "cvt.w.s", Fmt: FmtRR, Unit: UnitFPU, Latency: 3},
	OpCeqS:  {Name: "c.eq.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 2},
	OpCltS:  {Name: "c.lt.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 2},
	OpCleS:  {Name: "c.le.s", Fmt: FmtRRR, Unit: UnitFPU, Latency: 2},

	OpBeq:  {Name: "beq", Fmt: FmtBranch2, Unit: UnitBR, Latency: 1, Branch: true},
	OpBne:  {Name: "bne", Fmt: FmtBranch2, Unit: UnitBR, Latency: 1, Branch: true},
	OpBlez: {Name: "blez", Fmt: FmtBranch1, Unit: UnitBR, Latency: 1, Branch: true},
	OpBgtz: {Name: "bgtz", Fmt: FmtBranch1, Unit: UnitBR, Latency: 1, Branch: true},
	OpBltz: {Name: "bltz", Fmt: FmtBranch1, Unit: UnitBR, Latency: 1, Branch: true},
	OpBgez: {Name: "bgez", Fmt: FmtBranch1, Unit: UnitBR, Latency: 1, Branch: true},
	OpJ:    {Name: "j", Fmt: FmtJump, Unit: UnitBR, Latency: 1, Branch: true},
	OpJal:  {Name: "jal", Fmt: FmtJump, Unit: UnitBR, Latency: 1, Branch: true},
	OpJr:   {Name: "jr", Fmt: FmtR, Unit: UnitBR, Latency: 1, Branch: true},
	OpJalr: {Name: "jalr", Fmt: FmtR, Unit: UnitBR, Latency: 1, Branch: true},

	OpLw:   {Name: "lw", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Load: true},
	OpSw:   {Name: "sw", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Store: true},
	OpLb:   {Name: "lb", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Load: true},
	OpLbu:  {Name: "lbu", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Load: true},
	OpSb:   {Name: "sb", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Store: true},
	OpSwNB: {Name: "sw.nb", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Store: true},
	OpPref: {Name: "pref", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Load: true},
	OpLwRO: {Name: "lwro", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Load: true},

	OpSpawn: {Name: "spawn", Fmt: FmtSpawn, Unit: UnitCTL, Latency: 1, MasterOnly: true},
	OpJoin:  {Name: "join", Fmt: FmtNone, Unit: UnitCTL, Latency: 1},
	OpPs:    {Name: "ps", Fmt: FmtPS, Unit: UnitPS, Latency: 1},
	OpPsm:   {Name: "psm", Fmt: FmtMem, Unit: UnitMEM, Latency: 1, Mem: true, Load: true, Store: true},
	OpChkid: {Name: "chkid", Fmt: FmtR, Unit: UnitCTL, Latency: 1},
	OpBcast: {Name: "bcast", Fmt: FmtR, Unit: UnitCTL, Latency: 1, MasterOnly: true},
	OpFence: {Name: "fence", Fmt: FmtNone, Unit: UnitCTL, Latency: 1},
	OpGrr:   {Name: "grr", Fmt: FmtPS, Unit: UnitPS, Latency: 1},
	OpGrw:   {Name: "grw", Fmt: FmtPS, Unit: UnitPS, Latency: 1},
	OpSys:   {Name: "sys", Fmt: FmtSys, Unit: UnitCTL, Latency: 1},
}

// ByName maps a mnemonic to its opcode.
var ByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < Op(numOps); op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// Meta returns the static metadata of op.
func (op Op) Meta() *Info {
	if int(op) >= NumOps {
		return &Info{Name: "invalid", Fmt: FmtNone, Unit: UnitCTL}
	}
	return &infos[op]
}

func (op Op) String() string { return op.Meta().Name }

// IsMem reports whether op travels to the shared memory system.
func (op Op) IsMem() bool { return op.Meta().Mem }

// IsBranch reports whether op may redirect control flow.
func (op Op) IsBranch() bool { return op.Meta().Branch }

// Instr is a decoded XMT instruction. Instances of this type are the
// "instruction packages" that travel through the cycle-accurate components.
type Instr struct {
	Op  Op
	Rd  Reg   // destination (or store-data source for sw/sb/psm increment)
	Rs  Reg   // first source / memory base
	Rt  Reg   // second source
	G   GReg  // global register for ps/grr/grw
	Imm int32 // immediate / shift amount / memory offset / sys code

	// Target is the resolved instruction index of a branch or jump, or -1.
	Target int

	// Sym is the symbolic target before linking (label or data symbol for
	// the %lo/%hi-free "la"-expanded addressing the assembler performs).
	Sym string

	// Line is the 1-based source line in the assembly unit, for traces and
	// diagnostics.
	Line int
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	meta := in.Op.Meta()
	switch meta.Fmt {
	case FmtNone:
		return meta.Name
	case FmtRRR:
		return fmt.Sprintf("%s %s, %s, %s", meta.Name, RegName(in.Rd), RegName(in.Rs), RegName(in.Rt))
	case FmtRRI:
		return fmt.Sprintf("%s %s, %s, %d", meta.Name, RegName(in.Rd), RegName(in.Rs), in.Imm)
	case FmtRI:
		return fmt.Sprintf("%s %s, %d", meta.Name, RegName(in.Rd), in.Imm)
	case FmtRR:
		return fmt.Sprintf("%s %s, %s", meta.Name, RegName(in.Rd), RegName(in.Rs))
	case FmtR:
		return fmt.Sprintf("%s %s", meta.Name, RegName(in.Rd))
	case FmtMem:
		return fmt.Sprintf("%s %s, %d(%s)", meta.Name, RegName(in.Rd), in.Imm, RegName(in.Rs))
	case FmtBranch2:
		return fmt.Sprintf("%s %s, %s, %s", meta.Name, RegName(in.Rs), RegName(in.Rt), in.targetString())
	case FmtBranch1:
		return fmt.Sprintf("%s %s, %s", meta.Name, RegName(in.Rs), in.targetString())
	case FmtJump:
		return fmt.Sprintf("%s %s", meta.Name, in.targetString())
	case FmtPS:
		return fmt.Sprintf("%s %s, g%d", meta.Name, RegName(in.Rd), in.G)
	case FmtSpawn:
		return fmt.Sprintf("%s %s, %s", meta.Name, RegName(in.Rs), RegName(in.Rt))
	case FmtSys:
		return fmt.Sprintf("%s %d", meta.Name, in.Imm)
	}
	return meta.Name
}

func (in Instr) targetString() string {
	if in.Sym != "" {
		return in.Sym
	}
	return fmt.Sprintf("@%d", in.Target)
}

// regNames follows the MIPS convention; the simulator and compiler accept
// both $N and the symbolic names.
var regNames = [NumRegs]string{
	"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
	"$t8", "$t9", "$tid", "$k1", "$gp", "$sp", "$fp", "$ra",
}

// RegName returns the symbolic name of r.
func RegName(r Reg) string {
	if int(r) < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("$?%d", r)
}

// ParseReg parses "$N" or a symbolic register name.
func ParseReg(s string) (Reg, error) {
	if len(s) < 2 || s[0] != '$' {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	for i, n := range regNames {
		if s == n {
			return Reg(i), nil
		}
	}
	var n int
	if _, err := fmt.Sscanf(s[1:], "%d", &n); err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	return Reg(n), nil
}

// Validate performs static sanity checks on a single instruction.
func (in Instr) Validate() error {
	if int(in.Op) >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
		return fmt.Errorf("isa: %s: register out of range", in.Op)
	}
	switch in.Op {
	case OpPs, OpGrr, OpGrw:
		if in.G >= NumGRegs {
			return fmt.Errorf("isa: %s: global register g%d out of range", in.Op, in.G)
		}
	case OpSys:
		switch in.Imm {
		case SysHalt, SysPrintInt, SysPrintChar, SysPrintStr, SysCycle, SysCheckpoint, SysPrintFloat:
		default:
			return fmt.Errorf("isa: sys: unknown trap code %d", in.Imm)
		}
	case OpSll, OpSrl, OpSra:
		if in.Imm < 0 || in.Imm > 31 {
			return fmt.Errorf("isa: %s: shift amount %d out of range", in.Op, in.Imm)
		}
	}
	return nil
}
