package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMnemonicsUniqueAndComplete(t *testing.T) {
	if len(ByName) != NumOps {
		t.Fatalf("ByName has %d entries, want %d (duplicate or missing mnemonics)", len(ByName), NumOps)
	}
	for op := Op(0); op < Op(NumOps); op++ {
		meta := op.Meta()
		if meta.Name == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if got := ByName[meta.Name]; got != op {
			t.Errorf("ByName[%q] = %v, want %v", meta.Name, got, op)
		}
	}
}

func TestRegisterNamesRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		name := RegName(r)
		got, err := ParseReg(name)
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", name, err)
		}
		if got != r {
			t.Fatalf("ParseReg(%q) = %v, want %v", name, got, r)
		}
	}
	// Numeric forms also parse.
	if r, err := ParseReg("$26"); err != nil || r != RegTID {
		t.Fatalf("ParseReg($26) = %v, %v", r, err)
	}
	for _, bad := range []string{"", "$", "x5", "$32", "$-1", "$foo"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) should fail", bad)
		}
	}
}

func TestUnitClassification(t *testing.T) {
	cases := map[Op]Unit{
		OpAdd: UnitALU, OpSll: UnitSFT, OpBeq: UnitBR, OpMul: UnitMDU,
		OpAddS: UnitFPU, OpLw: UnitMEM, OpPs: UnitPS, OpSpawn: UnitCTL,
		OpPsm: UnitMEM, OpFence: UnitCTL,
	}
	for op, want := range cases {
		if got := op.Meta().Unit; got != want {
			t.Errorf("%s unit = %v, want %v", op, got, want)
		}
	}
	if !OpLw.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !OpJ.IsBranch() || OpLw.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
}

func TestValidate(t *testing.T) {
	good := []Instr{
		{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpPs, Rd: 8, G: 63},
		{Op: OpSys, Imm: SysHalt},
		{Op: OpSll, Rd: 1, Rs: 2, Imm: 31},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("%v should validate: %v", in, err)
		}
	}
	bad := []Instr{
		{Op: Op(NumOps + 5)},
		{Op: OpAdd, Rd: 40},
		{Op: OpPs, Rd: 1, G: 64},
		{Op: OpSys, Imm: 99},
		{Op: OpSll, Rd: 1, Rs: 2, Imm: 32},
		{Op: OpSll, Rd: 1, Rs: 2, Imm: -1},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%v should fail validation", in)
		}
	}
}

// TestInstrStringsParseable: every opcode's String form starts with its
// mnemonic and mentions its operands.
func TestInstrStrings(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		in := Instr{Op: op, Rd: 1, Rs: 2, Rt: 3, G: 5, Imm: 7, Sym: "lbl", Target: 9}
		s := in.String()
		if !strings.HasPrefix(s, op.Meta().Name) {
			t.Errorf("%s String() = %q does not start with mnemonic", op, s)
		}
	}
}

// Property: shift-amount validation accepts exactly 0..31.
func TestShiftValidationProperty(t *testing.T) {
	f := func(imm int32) bool {
		in := Instr{Op: OpSra, Rd: 1, Rs: 1, Imm: imm}
		err := in.Validate()
		if imm >= 0 && imm <= 31 {
			return err == nil
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
