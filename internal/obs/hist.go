package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync"

	"xmtgo/internal/sim/stats"
)

// The service-latency histogram keys (docs/OBSERVABILITY.md). Each is a
// host-nanosecond distribution; the fixed set keeps /metrics output and the
// /status daemon block byte-stable in shape.
const (
	HistQueueWait      = "queue_wait"      // submit accepted -> worker picks the job up
	HistCompile        = "compile"         // source -> loaded program (cache misses only)
	HistTTFS           = "ttfs"            // worker start -> first checkpoint/sample
	HistCkptWrite      = "ckpt_write"      // checkpoint envelope serialize+write+rename
	HistJournalFsync   = "journal_fsync"   // one journal append incl. fsync
	HistPreemptRequeue = "preempt_requeue" // preempt requested -> victim back in queue
	HistRetryBackoff   = "retry_backoff"   // retry decided -> next attempt starts
)

// HistKeys lists every histogram key in rendering order.
var HistKeys = []string{
	HistQueueWait, HistCompile, HistTTFS, HistCkptWrite,
	HistJournalFsync, HistPreemptRequeue, HistRetryBackoff,
}

// HistSummary is the /status-facing digest of one latency histogram.
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// Hists is the fixed set of service-latency histograms, safe for concurrent
// observation from the daemon's worker goroutines.
type Hists struct {
	mu sync.Mutex
	h  map[string]*stats.Histogram
}

// NewHists creates the seven empty histograms.
func NewHists() *Hists {
	m := make(map[string]*stats.Histogram, len(HistKeys))
	for _, k := range HistKeys {
		m[k] = &stats.Histogram{}
	}
	return &Hists{h: m}
}

// Observe records one nanosecond latency under key (unknown keys are
// ignored; negative durations clamp to zero so clock skew cannot corrupt
// the power-of-two layout).
func (h *Hists) Observe(key string, ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.mu.Lock()
	if hist, ok := h.h[key]; ok {
		hist.Observe(uint64(ns))
	}
	h.mu.Unlock()
}

// Get returns a copy of one histogram (zero value for unknown keys).
func (h *Hists) Get(key string) stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	if hist, ok := h.h[key]; ok {
		return *hist
	}
	return stats.Histogram{}
}

// Summaries digests every histogram for the /status daemon block.
func (h *Hists) Summaries() map[string]HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]HistSummary, len(h.h))
	for k, hist := range h.h {
		out[k] = HistSummary{
			Count:  hist.Count,
			MeanNs: hist.Mean(),
			P50Ns:  hist.Percentile(50),
			P99Ns:  hist.Percentile(99),
			MaxNs:  hist.Max,
		}
	}
	return out
}

// RenderProm writes every histogram as Prometheus cumulative
// _bucket/_sum/_count series named <prefix><key>_ns. Bucket upper edges are
// the power-of-two layout's: le="0" for the zero bucket, then le="2^i-1" up
// to the bucket holding the observed max, then le="+Inf". Output is a pure
// function of the observed counts.
func (h *Hists) RenderProm(w io.Writer, prefix string) {
	h.mu.Lock()
	snap := make(map[string]stats.Histogram, len(h.h))
	for k, hist := range h.h {
		snap[k] = *hist
	}
	h.mu.Unlock()

	for _, key := range HistKeys {
		hist := snap[key]
		name := prefix + key + "_ns"
		fmt.Fprintf(w, "# HELP %s %s latency in nanoseconds (host time).\n", name, key)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		top := bits.Len64(hist.Max) // highest non-empty bucket index
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += hist.Buckets[i]
			le := uint64(0)
			if i > 0 {
				le = uint64(1)<<uint(i) - 1
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hist.Count)
		fmt.Fprintf(w, "%s_sum %d\n", name, hist.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, hist.Count)
	}
}
