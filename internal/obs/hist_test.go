package obs

import (
	"strings"
	"testing"
)

func TestHistsObserveAndSummaries(t *testing.T) {
	h := NewHists()
	h.Observe(HistQueueWait, 0)
	h.Observe(HistQueueWait, 100)
	h.Observe(HistQueueWait, 1000)
	h.Observe(HistQueueWait, -5) // clamps to 0
	h.Observe("bogus", 1)        // ignored

	s := h.Summaries()
	if len(s) != len(HistKeys) {
		t.Fatalf("summaries has %d keys, want %d", len(s), len(HistKeys))
	}
	qw := s[HistQueueWait]
	if qw.Count != 4 || qw.MaxNs != 1000 {
		t.Fatalf("queue_wait summary = %+v", qw)
	}
	if qw.MeanNs != 275 {
		t.Fatalf("mean = %v, want 275", qw.MeanNs)
	}
	if qw.P50Ns != 0 { // two of four observations are zero
		t.Fatalf("p50 = %d, want 0", qw.P50Ns)
	}
	if qw.P99Ns != 127 { // rank trunc(0.99*4)=3 lands on 100's bucket [64,127]
		t.Fatalf("p99 = %d, want 127", qw.P99Ns)
	}
	if got := h.Get(HistQueueWait); got.Count != 4 {
		t.Fatalf("Get count = %d, want 4", got.Count)
	}
	if got := h.Get("bogus"); got.Count != 0 {
		t.Fatalf("Get bogus count = %d, want 0", got.Count)
	}
	for _, k := range HistKeys[1:] {
		if s[k].Count != 0 {
			t.Fatalf("%s unexpectedly observed: %+v", k, s[k])
		}
	}
}

// TestHistsRenderPromGolden pins the /metrics exposition for one populated
// and one empty histogram: cumulative buckets with power-of-two upper
// edges, +Inf, _sum and _count.
func TestHistsRenderPromGolden(t *testing.T) {
	h := NewHists()
	h.Observe(HistCompile, 0)
	h.Observe(HistCompile, 3)
	h.Observe(HistCompile, 3)
	h.Observe(HistCompile, 9)

	var b strings.Builder
	h.RenderProm(&b, "xmt_daemon_")
	out := b.String()

	wantCompile := `# HELP xmt_daemon_compile_ns compile latency in nanoseconds (host time).
# TYPE xmt_daemon_compile_ns histogram
xmt_daemon_compile_ns_bucket{le="0"} 1
xmt_daemon_compile_ns_bucket{le="1"} 1
xmt_daemon_compile_ns_bucket{le="3"} 3
xmt_daemon_compile_ns_bucket{le="7"} 3
xmt_daemon_compile_ns_bucket{le="15"} 4
xmt_daemon_compile_ns_bucket{le="+Inf"} 4
xmt_daemon_compile_ns_sum 15
xmt_daemon_compile_ns_count 4
`
	if !strings.Contains(out, wantCompile) {
		t.Fatalf("compile exposition missing:\n%s\n--- full output:\n%s", wantCompile, out)
	}
	wantEmpty := `# TYPE xmt_daemon_ttfs_ns histogram
xmt_daemon_ttfs_ns_bucket{le="0"} 0
xmt_daemon_ttfs_ns_bucket{le="+Inf"} 0
xmt_daemon_ttfs_ns_sum 0
xmt_daemon_ttfs_ns_count 0
`
	if !strings.Contains(out, wantEmpty) {
		t.Fatalf("empty ttfs exposition missing:\n%s\n--- full output:\n%s", wantEmpty, out)
	}
	// All seven families, in HistKeys order.
	last := -1
	for _, k := range HistKeys {
		idx := strings.Index(out, "# TYPE xmt_daemon_"+k+"_ns histogram")
		if idx < 0 {
			t.Fatalf("family %s missing from exposition", k)
		}
		if idx < last {
			t.Fatalf("family %s out of order", k)
		}
		last = idx
	}
}
