package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// LogEntry is one structured record held by the LogRing: the rendered JSON
// line plus the fields the /logs filters match on.
type LogEntry struct {
	TimeNs int64
	Level  slog.Level
	Job    string
	Raw    []byte // the full JSON line, without trailing newline
}

// DefaultLogCapacity is the log-ring bound used when none is given.
const DefaultLogCapacity = 4096

// LogRing is a bounded in-memory buffer of structured log records. When
// full, the oldest records are evicted and counted. It doubles as the /logs
// HTTP handler: GET /logs?level=warn&job=j3&n=100 returns matching records
// oldest-first as ndjson.
type LogRing struct {
	mu      sync.Mutex
	buf     []LogEntry
	next    int
	full    bool
	dropped uint64
}

// NewLogRing creates a ring holding up to capacity records (<=0 selects
// DefaultLogCapacity).
func NewLogRing(capacity int) *LogRing {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	return &LogRing{buf: make([]LogEntry, capacity)}
}

// Add appends one record, evicting the oldest when full.
func (r *LogRing) Add(e LogEntry) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Dropped reports how many records were evicted from the ring.
func (r *LogRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports the number of buffered records.
func (r *LogRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the most recent records (oldest first) at or above
// minLevel, optionally filtered to one job id; max <= 0 means no limit.
func (r *LogRing) Snapshot(minLevel slog.Level, job string, max int) []LogEntry {
	r.mu.Lock()
	var ordered []LogEntry
	if r.full {
		ordered = make([]LogEntry, 0, len(r.buf))
		ordered = append(ordered, r.buf[r.next:]...)
		ordered = append(ordered, r.buf[:r.next]...)
	} else {
		ordered = append(ordered, r.buf[:r.next]...)
	}
	r.mu.Unlock()

	var out []LogEntry
	for _, e := range ordered {
		if e.Level < minLevel {
			continue
		}
		if job != "" && e.Job != job {
			continue
		}
		out = append(out, e)
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// ParseLevel maps a level name ("debug", "info", "warn", "error", any
// case) to its slog.Level; unknown names default to Info.
func ParseLevel(s string) slog.Level {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return slog.LevelInfo
	}
	return l
}

// ServeHTTP serves the ring as ndjson with ?level=, ?job= and ?n= filters.
func (r *LogRing) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	level := slog.LevelDebug
	if s := q.Get("level"); s != "" {
		level = ParseLevel(s)
	}
	n := 0
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad n: "+s, http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, e := range r.Snapshot(level, q.Get("job"), n) {
		w.Write(e.Raw)
		w.Write([]byte("\n"))
	}
}

// HandlerOptions configures NewHandler.
type HandlerOptions struct {
	// Writer receives each rendered JSON line (nil = ring only).
	Writer io.Writer
	// Level is the minimum level emitted (records below it are discarded
	// entirely, ring included). Default Info.
	Level slog.Leveler
	// Ring, when non-nil, buffers every emitted record for /logs.
	Ring *LogRing
	// Now supplies the timestamp in nanoseconds (tests inject a
	// deterministic clock). Default: wall-clock UnixNano.
	Now func() int64
}

// handler is a deterministic slog JSON handler: one line per record of the
// form {"ts":<ns>,"level":"INFO","msg":"...", <attrs in argument order>},
// teed to an io.Writer and a LogRing. Unlike slog.JSONHandler the field
// order is fixed by construction, so log output is easy to golden-test
// once timestamps are normalized.
type handler struct {
	opts  HandlerOptions
	attrs []byte // pre-rendered ",\"k\":v" pairs from WithAttrs
	job   string // value of the most recent "job" attr, for ring filtering
	group string // dotted prefix from WithGroup
	mu    *sync.Mutex
}

// NewHandler creates the JSON handler.
func NewHandler(opts HandlerOptions) slog.Handler {
	if opts.Level == nil {
		opts.Level = slog.LevelInfo
	}
	if opts.Now == nil {
		opts.Now = func() int64 { return time.Now().UnixNano() }
	}
	return &handler{opts: opts, mu: &sync.Mutex{}}
}

// NewLogger is shorthand for slog.New(NewHandler(opts)).
func NewLogger(opts HandlerOptions) *slog.Logger {
	return slog.New(NewHandler(opts))
}

func (h *handler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.opts.Level.Level()
}

func (h *handler) Handle(_ context.Context, rec slog.Record) error {
	var buf bytes.Buffer
	ts := h.opts.Now()
	fmt.Fprintf(&buf, `{"ts":%d,"level":%q,"msg":`, ts, rec.Level.String())
	writeJSONString(&buf, rec.Message)
	buf.Write(h.attrs)
	job := h.job
	rec.Attrs(func(a slog.Attr) bool {
		if v := h.appendAttr(&buf, a); a.Key == "job" && v != "" {
			job = v
		}
		return true
	})
	buf.WriteByte('}')

	e := LogEntry{TimeNs: ts, Level: rec.Level, Job: job, Raw: append([]byte(nil), buf.Bytes()...)}
	if h.opts.Ring != nil {
		h.opts.Ring.Add(e)
	}
	if h.opts.Writer != nil {
		buf.WriteByte('\n')
		h.mu.Lock()
		_, err := h.opts.Writer.Write(buf.Bytes())
		h.mu.Unlock()
		return err
	}
	return nil
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append([]byte(nil), h.attrs...)
	var buf bytes.Buffer
	for _, a := range attrs {
		if v := nh.appendAttr(&buf, a); a.Key == "job" && v != "" {
			nh.job = v
		}
	}
	nh.attrs = append(nh.attrs, buf.Bytes()...)
	return &nh
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.attrs = append([]byte(nil), h.attrs...)
	if nh.group == "" {
		nh.group = name
	} else {
		nh.group += "." + name
	}
	return &nh
}

// appendAttr renders one ",\"key\":value" pair; it returns the attr's
// string form when the value is a string (so callers can sniff "job").
func (h *handler) appendAttr(buf *bytes.Buffer, a slog.Attr) string {
	v := a.Value.Resolve()
	if a.Key == "" || (v.Kind() == slog.KindGroup && len(v.Group()) == 0) {
		return ""
	}
	key := a.Key
	if h.group != "" {
		key = h.group + "." + key
	}
	if v.Kind() == slog.KindGroup {
		sub := *h
		sub.group = key
		for _, ga := range v.Group() {
			sub.appendAttr(buf, ga)
		}
		return ""
	}
	buf.WriteByte(',')
	writeJSONString(buf, key)
	buf.WriteByte(':')
	switch v.Kind() {
	case slog.KindString:
		s := v.String()
		writeJSONString(buf, s)
		return s
	case slog.KindInt64:
		fmt.Fprintf(buf, "%d", v.Int64())
	case slog.KindUint64:
		fmt.Fprintf(buf, "%d", v.Uint64())
	case slog.KindBool:
		fmt.Fprintf(buf, "%t", v.Bool())
	case slog.KindFloat64:
		fmt.Fprintf(buf, "%g", v.Float64())
	case slog.KindDuration:
		fmt.Fprintf(buf, "%d", v.Duration().Nanoseconds())
	case slog.KindTime:
		fmt.Fprintf(buf, "%d", v.Time().UnixNano())
	default:
		writeJSONString(buf, fmt.Sprint(v.Any()))
	}
	return ""
}

func writeJSONString(buf *bytes.Buffer, s string) {
	b, err := json.Marshal(s)
	if err != nil {
		buf.WriteString(`"?"`)
		return
	}
	buf.Write(b)
}
