package obs

import (
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerGoldenJSON(t *testing.T) {
	var b strings.Builder
	var now int64 = 1000
	log := NewLogger(HandlerOptions{
		Writer: &b,
		Level:  slog.LevelDebug,
		Now:    func() int64 { now += 10; return now },
	})
	log.Info("job accepted", "job", "j1", "tenant", "alice", "priority", 3)
	log.Debug("checkpoint", "job", "j1", "cycle", int64(50000), "ok", true)
	log.Warn("retry", "job", "j2", "attempt", 2, "err", fmt.Errorf("abort: budget"))
	log.With("op", "drain").Error("drain failed", "pending", 4)

	want := `{"ts":1010,"level":"INFO","msg":"job accepted","job":"j1","tenant":"alice","priority":3}
{"ts":1020,"level":"DEBUG","msg":"checkpoint","job":"j1","cycle":50000,"ok":true}
{"ts":1030,"level":"WARN","msg":"retry","job":"j2","attempt":2,"err":"abort: budget"}
{"ts":1040,"level":"ERROR","msg":"drain failed","op":"drain","pending":4}
`
	if got := b.String(); got != want {
		t.Fatalf("log output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandlerLevelGate(t *testing.T) {
	var b strings.Builder
	ring := NewLogRing(8)
	log := NewLogger(HandlerOptions{Writer: &b, Ring: ring, Now: func() int64 { return 1 }})
	log.Debug("hidden")
	log.Info("shown")
	if got := b.String(); strings.Contains(got, "hidden") || !strings.Contains(got, "shown") {
		t.Fatalf("level gate failed:\n%s", got)
	}
	if ring.Len() != 1 {
		t.Fatalf("ring len = %d, want 1 (debug suppressed before the ring)", ring.Len())
	}
}

func TestHandlerGroups(t *testing.T) {
	var b strings.Builder
	log := NewLogger(HandlerOptions{Writer: &b, Now: func() int64 { return 5 }})
	log.WithGroup("sim").Info("tick", "cycle", 9)
	log.Info("grouped", slog.Group("env", slog.String("host", "h1")))
	want := `{"ts":5,"level":"INFO","msg":"tick","sim.cycle":9}
{"ts":5,"level":"INFO","msg":"grouped","env.host":"h1"}
`
	if got := b.String(); got != want {
		t.Fatalf("group output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLogRingBoundAndFilters(t *testing.T) {
	ring := NewLogRing(4)
	var now int64
	log := NewLogger(HandlerOptions{Ring: ring, Level: slog.LevelDebug,
		Now: func() int64 { now++; return now }})
	for i := 0; i < 3; i++ {
		log.Info("a", "job", "j1", "i", i)
	}
	log.Warn("w", "job", "j2")
	log.Error("e", "job", "j1")
	log.Debug("d", "job", "j2")

	if ring.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", ring.Len())
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ring.Dropped())
	}

	// Oldest two evicted: the remaining window is [a(i=2), w, e, d].
	all := ring.Snapshot(slog.LevelDebug, "", 0)
	if len(all) != 4 || !strings.Contains(string(all[0].Raw), `"i":2`) {
		t.Fatalf("window = %v", len(all))
	}
	warnUp := ring.Snapshot(slog.LevelWarn, "", 0)
	if len(warnUp) != 2 {
		t.Fatalf("warn+ = %d records, want 2", len(warnUp))
	}
	j1 := ring.Snapshot(slog.LevelDebug, "j1", 0)
	if len(j1) != 2 {
		t.Fatalf("job j1 = %d records, want 2", len(j1))
	}
	for _, e := range j1 {
		if e.Job != "j1" {
			t.Fatalf("job filter leaked: %s", e.Raw)
		}
	}
	last := ring.Snapshot(slog.LevelDebug, "", 1)
	if len(last) != 1 || !strings.Contains(string(last[0].Raw), `"msg":"d"`) {
		t.Fatalf("n=1 snapshot = %v", last)
	}
}

func TestLogRingServeHTTP(t *testing.T) {
	ring := NewLogRing(16)
	log := NewLogger(HandlerOptions{Ring: ring, Level: slog.LevelDebug,
		Now: func() int64 { return 7 }})
	log.Info("one", "job", "j1")
	log.Warn("two", "job", "j2")
	log.Debug("three", "job", "j1")

	get := func(query string) string {
		rec := httptest.NewRecorder()
		ring.ServeHTTP(rec, httptest.NewRequest("GET", "/logs"+query, nil))
		return rec.Body.String()
	}
	if body := get(""); strings.Count(body, "\n") != 3 {
		t.Fatalf("unfiltered body:\n%s", body)
	}
	if body := get("?level=warn"); strings.Count(body, "\n") != 1 || !strings.Contains(body, "two") {
		t.Fatalf("level filter body:\n%s", body)
	}
	if body := get("?job=j1&n=1"); strings.Count(body, "\n") != 1 || !strings.Contains(body, "three") {
		t.Fatalf("job+n filter body:\n%s", body)
	}
	rec := httptest.NewRecorder()
	ring.ServeHTTP(rec, httptest.NewRequest("GET", "/logs?n=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", rec.Code)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "Warn": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
