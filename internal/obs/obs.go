// Package obs is the service-layer observability toolkit behind xmtd and
// the batch runner (docs/OBSERVABILITY.md "Service-layer observability"):
//
//   - a job lifecycle Tracer: bounded ring of host-time spans (queued,
//     compile, run attempts, checkpoint writes, journal fsyncs, preempt,
//     resume, terminal events) exported as Chrome trace-event JSON with
//     pid = tenant and tid = job, so a daemon timeline loads in Perfetto
//     exactly like the simulator's cycle traces;
//   - Hists: named host-latency histograms reusing stats.Histogram's
//     power-of-two buckets, rendered as Prometheus _bucket/_sum/_count
//     series and summarized (count/mean/p50/p99/max) for /status;
//   - structured leveled logging: a log/slog JSON handler with
//     job/tenant/attempt/op correlation fields that tees every record into
//     a bounded in-memory LogRing served over HTTP (/logs) with level and
//     job filters.
//
// Where the simulator's observability (internal/sim/trace, internal/sim
// /metrics) measures simulated time deterministically, this package
// measures host time: queue waits, fsync latency, preemption turnaround —
// the service-quality signals of the "many users, one warm process"
// direction. Host-time values are inherently nondeterministic, so golden
// tests normalize or inject clocks; everything else (field order, label
// order, bucket layout) is byte-stable.
package obs
