package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed (or instant) lifecycle event of a service-layer job.
// Times are host-monotonic nanoseconds since the tracer's epoch.
type Span struct {
	Job     string `json:"job,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`

	Attempt  int    `json:"attempt,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Instant  bool   `json:"instant,omitempty"`
}

// Tracer records lifecycle spans into a bounded ring: when the ring fills,
// the oldest spans are evicted (and counted), so a snapshot always holds the
// most recent window of daemon activity and truncation is never silent.
type Tracer struct {
	mu      sync.Mutex
	nowFn   func() int64
	buf     []Span
	next    int
	full    bool
	dropped uint64
}

// DefaultTraceCapacity is the span-ring bound used when none is given.
const DefaultTraceCapacity = 16384

// NewTracer creates a tracer holding up to capacity spans (<=0 selects
// DefaultTraceCapacity). The clock starts at zero at creation.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	epoch := time.Now()
	return &Tracer{
		nowFn: func() int64 { return time.Since(epoch).Nanoseconds() },
		buf:   make([]Span, capacity),
	}
}

// SetNowFunc replaces the clock (tests inject a deterministic one).
func (t *Tracer) SetNowFunc(f func() int64) {
	t.mu.Lock()
	t.nowFn = f
	t.mu.Unlock()
}

// Now returns nanoseconds since the tracer's epoch.
func (t *Tracer) Now() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nowFn()
}

// Add records one completed span (the caller supplies StartNs and DurNs from
// Now). Safe for concurrent use.
func (t *Tracer) Add(s Span) {
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = s
	t.next++
	if t.next == len(t.buf) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
}

// Instant records a zero-duration marker event at the current time.
func (t *Tracer) Instant(job, tenant, name string, attempt int) {
	t.mu.Lock()
	now := t.nowFn()
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = Span{Job: job, Tenant: tenant, Name: name, StartNs: now, Attempt: attempt, Instant: true}
	t.next++
	if t.next == len(t.buf) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
}

// Snapshot copies the buffered spans (oldest first) and the eviction count.
func (t *Tracer) Snapshot() ([]Span, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = make([]Span, 0, len(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf[:t.next]...)
	}
	return out, t.dropped
}

// Stats reports the buffered span count and the eviction count.
func (t *Tracer) Stats() (spans int, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf), t.dropped
	}
	return t.next, t.dropped
}

// WriteChrome snapshots the ring and renders it as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans, dropped := t.Snapshot()
	return WriteChrome(w, spans, dropped)
}

// jobTid maps a job id ("j42") to a Chrome thread id: its trailing decimal
// digits. Spans without a job id (daemon-internal work) land on tid 0.
func jobTid(job string) int {
	n, seen := 0, false
	for i := 0; i < len(job); i++ {
		c := job[i]
		if c >= '0' && c <= '9' {
			n, seen = n*10+int(c-'0'), true
		} else {
			n, seen = 0, false
		}
	}
	if !seen {
		return 0
	}
	return n
}

// WriteChrome renders spans as Chrome trace-event JSON ("traceEvents" array
// format), loadable in Perfetto alongside the simulator's cycle traces:
// pid 0 is the daemon itself, each tenant gets its own pid (first-appearance
// order), and each job is one tid inside its tenant's process. Timestamps
// are host nanoseconds rendered as fractional microseconds. Formatting is
// fixed, so the output is a pure function of the span list.
func WriteChrome(w io.Writer, spans []Span, dropped uint64) error {
	ew := &chromeWriter{w: w}
	ew.printf("{\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			ew.printf(",\n")
		}
		first = false
		ew.printf(format, args...)
	}

	// pid 0 = daemon-internal spans (no tenant); tenants follow in order of
	// first appearance so the mapping is a pure function of the span list.
	pids := map[string]int{"": 0}
	order := []string{""}
	type thread struct {
		pid, tid int
	}
	threads := map[thread]string{}
	var threadOrder []thread
	for _, s := range spans {
		if _, ok := pids[s.Tenant]; !ok {
			pids[s.Tenant] = len(order)
			order = append(order, s.Tenant)
		}
		th := thread{pids[s.Tenant], jobTid(s.Job)}
		if _, ok := threads[th]; !ok {
			name := s.Job
			if name == "" {
				name = "daemon"
			}
			threads[th] = name
			threadOrder = append(threadOrder, th)
		}
	}
	for pid, tenant := range order {
		name := tenant
		if pid == 0 {
			name = "xmtd"
		}
		emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%q}}`, pid, name)
	}
	sort.Slice(threadOrder, func(i, k int) bool {
		if threadOrder[i].pid != threadOrder[k].pid {
			return threadOrder[i].pid < threadOrder[k].pid
		}
		return threadOrder[i].tid < threadOrder[k].tid
	})
	for _, th := range threadOrder {
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
			th.pid, th.tid, threads[th])
	}

	for i := range spans {
		s := &spans[i]
		pid, tid := pids[s.Tenant], jobTid(s.Job)
		args := fmt.Sprintf(`"job":%q,"tenant":%q`, s.Job, s.Tenant)
		if s.Attempt > 0 {
			args += fmt.Sprintf(`,"attempt":%d`, s.Attempt)
		}
		if s.Priority != 0 {
			args += fmt.Sprintf(`,"priority":%d`, s.Priority)
		}
		if s.Detail != "" {
			args += fmt.Sprintf(`,"detail":%q`, s.Detail)
		}
		if s.Instant {
			emit(`{"name":%q,"cat":"lifecycle","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"t","args":{%s}}`,
				s.Name, usec(s.StartNs), pid, tid, args)
			continue
		}
		emit(`{"name":%q,"cat":"lifecycle","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{%s}}`,
			s.Name, usec(s.StartNs), usec(s.DurNs), pid, tid, args)
	}
	ew.printf("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%d\"}}\n", dropped)
	return ew.err
}

// usec renders nanoseconds as microseconds with nanosecond precision
// (Chrome trace timestamps are microseconds; fractional values are legal).
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

type chromeWriter struct {
	w   io.Writer
	err error
}

func (e *chromeWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
