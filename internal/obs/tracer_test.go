package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(3)
	var now int64
	tr.SetNowFunc(func() int64 { now += 100; return now })
	for i := 0; i < 5; i++ {
		tr.Add(Span{Job: "j1", Name: string(rune('a' + i)), StartNs: int64(i)})
	}
	spans, dropped := tr.Snapshot()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(spans) != 3 || spans[0].Name != "c" || spans[2].Name != "e" {
		t.Fatalf("spans = %+v, want c..e", spans)
	}
	if n, d := tr.Stats(); n != 3 || d != 2 {
		t.Fatalf("Stats = %d, %d, want 3, 2", n, d)
	}
	if tr.Now() != 100 {
		t.Fatalf("Now with injected clock = %d, want 100", tr.Now())
	}
}

func TestTracerInstant(t *testing.T) {
	tr := NewTracer(8)
	tr.SetNowFunc(func() int64 { return 42 })
	tr.Instant("j2", "bob", "done", 1)
	spans, _ := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("len = %d, want 1", len(spans))
	}
	s := spans[0]
	if !s.Instant || s.StartNs != 42 || s.Job != "j2" || s.Tenant != "bob" || s.Attempt != 1 {
		t.Fatalf("instant span = %+v", s)
	}
}

// TestWriteChromeGolden pins the Chrome trace-event export byte-for-byte
// for a fully deterministic span list: metadata events first (pid 0 =
// xmtd, tenants in first-appearance order), then the spans, then the
// dropped-count footer.
func TestWriteChromeGolden(t *testing.T) {
	spans := []Span{
		{Job: "j1", Tenant: "alice", Name: "queued", StartNs: 1000, DurNs: 2500, Priority: 3},
		{Job: "j1", Tenant: "alice", Name: "run", StartNs: 3500, DurNs: 10000, Attempt: 1, Detail: "preempt"},
		{Job: "j2", Tenant: "bob", Name: "compile", StartNs: 2000, DurNs: 750},
		{Job: "j1", Tenant: "alice", Name: "resume", StartNs: 20000, Attempt: 2, Instant: true},
		{Name: "journal-append", StartNs: 100, DurNs: 50},
	}
	var b strings.Builder
	if err := WriteChrome(&b, spans, 7); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `{"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"xmtd"}},
{"name":"process_name","ph":"M","pid":1,"args":{"name":"alice"}},
{"name":"process_name","ph":"M","pid":2,"args":{"name":"bob"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"daemon"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"j1"}},
{"name":"thread_name","ph":"M","pid":2,"tid":2,"args":{"name":"j2"}},
{"name":"queued","cat":"lifecycle","ph":"X","ts":1.000,"dur":2.500,"pid":1,"tid":1,"args":{"job":"j1","tenant":"alice","priority":3}},
{"name":"run","cat":"lifecycle","ph":"X","ts":3.500,"dur":10.000,"pid":1,"tid":1,"args":{"job":"j1","tenant":"alice","attempt":1,"detail":"preempt"}},
{"name":"compile","cat":"lifecycle","ph":"X","ts":2.000,"dur":0.750,"pid":2,"tid":2,"args":{"job":"j2","tenant":"bob"}},
{"name":"resume","cat":"lifecycle","ph":"i","ts":20.000,"pid":1,"tid":1,"s":"t","args":{"job":"j1","tenant":"alice","attempt":2}},
{"name":"journal-append","cat":"lifecycle","ph":"X","ts":0.100,"dur":0.050,"pid":0,"tid":0,"args":{"job":"","tenant":""}}
],"displayTimeUnit":"ms","otherData":{"dropped":"7"}}
`
	if got != want {
		t.Fatalf("WriteChrome mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The export must be valid JSON with the documented top-level shape.
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 11 || doc.OtherData["dropped"] != "7" {
		t.Fatalf("parsed export: %d events, dropped %q", len(doc.TraceEvents), doc.OtherData["dropped"])
	}
}

func TestJobTid(t *testing.T) {
	for _, tc := range []struct {
		job  string
		want int
	}{
		{"j42", 42}, {"j1", 1}, {"", 0}, {"worker", 0}, {"j1x", 0}, {"job7batch3", 3},
	} {
		if got := jobTid(tc.job); got != tc.want {
			t.Errorf("jobTid(%q) = %d, want %d", tc.job, got, tc.want)
		}
	}
}
