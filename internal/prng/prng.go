// Package prng provides the small deterministic PCG-32 generator that all
// simulator randomness (address-hash salting, litmus timing jitter, workload
// generation) flows through, so every experiment is reproducible from the
// seed recorded in the configuration.
package prng

// PCG is a PCG-XSH-RR 32-bit generator with 64-bit state.
type PCG struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded with seed and the default stream.
func New(seed uint64) *PCG {
	p := &PCG{inc: 0xda3e39cb94b95bdb | 1}
	p.state = 0
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// NewStream returns a generator on an independent stream, so concurrent
// components can draw without correlating.
func NewStream(seed, stream uint64) *PCG {
	p := &PCG{inc: (stream << 1) | 1}
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Uint32 returns the next 32 pseudo-random bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31))
}

// Uint64 returns the next 64 pseudo-random bits.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint32(n)
	threshold := -bound % bound
	for {
		r := p.Uint32()
		m := uint64(r) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Int31 returns a non-negative 31-bit value.
func (p *PCG) Int31() int32 { return int32(p.Uint32() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := p.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}
