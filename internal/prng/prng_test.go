package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds too correlated: %d collisions", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(1, 1)
	b := NewStream(1, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("streams correlated: %d collisions", same)
	}
}

// Property: Intn stays in range for any positive bound.
func TestIntnRangeProperty(t *testing.T) {
	r := New(7)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformish(t *testing.T) {
	r := New(9)
	const buckets, draws = 10, 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Intn(buckets)]++
	}
	for i, c := range count {
		if c < draws/buckets*8/10 || c > draws/buckets*12/10 {
			t.Fatalf("bucket %d has %d draws (expected ~%d)", i, c, draws/buckets)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

// Property: Perm returns a permutation of [0, n).
func TestPermProperty(t *testing.T) {
	r := New(11)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInt31NonNegative(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if r.Int31() < 0 {
			t.Fatal("Int31 returned negative")
		}
	}
}
