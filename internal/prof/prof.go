// Package prof wires the runtime/pprof CPU and heap profilers into the
// command-line drivers, so simulator hot paths can be measured with
// `go tool pprof` (see docs/PERF.md).
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (if non-empty) and returns a stop
// function that finishes the CPU profile and writes a heap profile to
// memFile (if non-empty). Call the stop function exactly once, at exit.
func Start(cpuFile, memFile string) (func() error, error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpu = f
	}
	stop := func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}
	return stop, nil
}
