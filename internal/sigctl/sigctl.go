// Package sigctl implements the two-stage SIGINT/SIGTERM protocol shared by
// the simulation CLIs (docs/ROBUSTNESS.md): the first signal requests a
// clean stop — the running simulation checkpoints at its next
// architecturally quiescent point and the driver exits normally, persisting
// the checkpoint when one was asked for — and a second signal forces
// immediate exit for the case where the program never reaches a quiescent
// point.
package sigctl

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// ForcedExitCode is the exit status of a second-signal forced exit
// (128 + SIGINT, the shell convention).
const ForcedExitCode = 130

// Notify installs the handler. onFirst runs once, on the signal goroutine,
// at the first SIGINT/SIGTERM — it must be safe to call concurrently with
// the simulation (System.RequestCheckpoint and friends are). A second
// signal exits the process immediately with ForcedExitCode. The returned
// stop function uninstalls the handler (idempotent).
func Notify(tool string, onFirst func()) (stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "%s: %v: stopping at next checkpoint boundary (signal again to force exit)\n", tool, sig)
		onFirst()
		if _, ok := <-ch; !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "%s: forced exit\n", tool)
		os.Exit(ForcedExitCode)
	}()
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		signal.Stop(ch)
		close(ch)
	}
}
