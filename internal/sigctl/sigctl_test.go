package sigctl

import (
	"syscall"
	"testing"
	"time"
)

// TestNotifyFirstSignal delivers a real SIGINT to the test process and
// asserts onFirst runs exactly once. The second-signal branch is os.Exit and
// is exercised by the CLI signal tests instead.
func TestNotifyFirstSignal(t *testing.T) {
	fired := make(chan struct{}, 1)
	stop := Notify("sigctltest", func() { fired <- struct{}{} })
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("onFirst did not run after SIGINT")
	}
}

func TestNotifyStopIdempotent(t *testing.T) {
	stop := Notify("sigctltest", func() {})
	stop()
	stop() // second call must be a no-op, not a double close
}
