// Package checkpoint implements simulation checkpoints (paper §III-E): the
// architectural state of a simulation can be saved — at a point requested
// ahead of time by the program (the sys checkpoint trap) or by the driving
// tool — and simulation resumed later, which among other uses facilitates
// dynamically load-balancing a batch of long simulations across machines.
//
// Checkpoints are taken at architecturally quiescent points: anywhere in
// functional mode, and at serial-mode instruction boundaries with a drained
// write buffer in cycle-accurate mode (the master is then the only active
// agent). This restriction relative to XMTSim's arbitrary-point checkpoints
// is documented in DESIGN.md; cycle counters restart from the recorded
// offset on resume.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/funcmodel"
)

// State is a serializable simulation checkpoint.
type State struct {
	// Version guards the gob layout.
	Version int

	// ProgramFingerprint ties the checkpoint to a specific linked program
	// (instruction count + entry point; resuming under a different program
	// is refused).
	TextLen int
	Entry   int

	Mem        []byte
	G          [isa.NumGRegs]int32
	Master     funcmodel.Context
	InstrCount uint64
	Halted     bool

	// CycleOffset is the cycle count at capture (cycle-accurate mode).
	CycleOffset int64
}

const version = 1

// Capture snapshots a functional machine. ctxPC overrides the master PC
// (pass -1 to keep the machine's).
func Capture(m *funcmodel.Machine, cycleOffset int64) *State {
	st := &State{
		Version:     version,
		TextLen:     len(m.Prog.Text),
		Entry:       m.Prog.Entry,
		Mem:         append([]byte(nil), m.Mem...),
		G:           m.G,
		Master:      m.Master,
		InstrCount:  m.InstrCount,
		Halted:      m.Halted,
		CycleOffset: cycleOffset,
	}
	return st
}

// Restore applies a checkpoint to a freshly created machine for the same
// program.
func Restore(m *funcmodel.Machine, st *State) error {
	if st.Version != version {
		return fmt.Errorf("checkpoint: version %d not supported", st.Version)
	}
	if st.TextLen != len(m.Prog.Text) || st.Entry != m.Prog.Entry {
		return fmt.Errorf("checkpoint: program mismatch (text %d/%d, entry %d/%d)",
			st.TextLen, len(m.Prog.Text), st.Entry, m.Prog.Entry)
	}
	if len(st.Mem) != len(m.Mem) {
		return fmt.Errorf("checkpoint: memory size mismatch (%d vs %d)", len(st.Mem), len(m.Mem))
	}
	copy(m.Mem, st.Mem)
	m.G = st.G
	m.Master = st.Master
	m.InstrCount = st.InstrCount
	m.Halted = st.Halted
	m.CheckpointRequested = false
	return nil
}

// Save writes a checkpoint with gob encoding.
func Save(w io.Writer, st *State) error {
	return gob.NewEncoder(w).Encode(st)
}

// Load reads a checkpoint written by Save.
func Load(r io.Reader) (*State, error) {
	var st State
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: %v", err)
	}
	return &st, nil
}
