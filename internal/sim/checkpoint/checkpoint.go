// Package checkpoint implements simulation checkpoints (paper §III-E): the
// architectural state of a simulation can be saved — at a point requested
// ahead of time by the program (the sys checkpoint trap) or by the driving
// tool — and simulation resumed later, which among other uses facilitates
// dynamically load-balancing a batch of long simulations across machines.
//
// Checkpoints are taken at architecturally quiescent points: anywhere in
// functional mode, and at serial-mode instruction boundaries with a drained
// write buffer in cycle-accurate mode (the master is then the only active
// agent). This restriction relative to XMTSim's arbitrary-point checkpoints
// is documented in DESIGN.md; cycle counters restart from the recorded
// offset on resume.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"

	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/funcmodel"
)

// State is a serializable simulation checkpoint.
type State struct {
	// Version guards the gob layout.
	Version int

	// Fingerprint ties the checkpoint to the specific linked program it was
	// captured under: an FNV-1a hash over every instruction's semantic
	// fields, the initial data image, and the entry point. Resuming under
	// any other program — even one with the same length and entry — is
	// refused. TextLen and Entry are kept alongside for diagnostics.
	Fingerprint uint64
	TextLen     int
	Entry       int

	Mem        []byte
	G          [isa.NumGRegs]int32
	Master     funcmodel.Context
	InstrCount uint64
	Halted     bool

	// CycleOffset is the cycle count at capture (cycle-accurate mode).
	CycleOffset int64

	// DeadTCUs lists TCUs decommissioned by injected permanent faults
	// before the capture, so a resumed cycle-accurate run continues on the
	// same degraded machine (docs/ROBUSTNESS.md).
	DeadTCUs []int
}

const version = 2

// Fingerprint hashes the aspects of a linked program that determine
// execution: instruction semantics (not source lines or symbol names — a
// re-assembly with touched comments still matches), the initial data image,
// and the entry point.
func Fingerprint(p *asm.Program) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(int64(p.Entry))
	word(int64(len(p.Text)))
	for i := range p.Text {
		in := &p.Text[i]
		word(int64(in.Op))
		word(int64(in.Rd) | int64(in.Rs)<<8 | int64(in.Rt)<<16 | int64(in.G)<<24)
		word(int64(in.Imm))
		word(int64(in.Target))
	}
	h.Write(p.Data)
	return h.Sum64()
}

// Capture snapshots a functional machine.
func Capture(m *funcmodel.Machine, cycleOffset int64) *State {
	st := &State{
		Version:     version,
		Fingerprint: Fingerprint(m.Prog),
		TextLen:     len(m.Prog.Text),
		Entry:       m.Prog.Entry,
		Mem:         append([]byte(nil), m.Mem...),
		G:           m.G,
		Master:      m.Master,
		InstrCount:  m.InstrCount,
		Halted:      m.Halted,
		CycleOffset: cycleOffset,
	}
	return st
}

// Restore applies a checkpoint to a freshly created machine for the same
// program.
func Restore(m *funcmodel.Machine, st *State) error {
	if st.Version != version {
		return fmt.Errorf("checkpoint: version %d not supported (want %d)", st.Version, version)
	}
	if fp := Fingerprint(m.Prog); st.Fingerprint != fp {
		return fmt.Errorf("checkpoint: program mismatch (fingerprint %016x, running %016x; text %d/%d, entry %d/%d)",
			st.Fingerprint, fp, st.TextLen, len(m.Prog.Text), st.Entry, m.Prog.Entry)
	}
	if len(st.Mem) != len(m.Mem) {
		return fmt.Errorf("checkpoint: memory size mismatch (%d vs %d)", len(st.Mem), len(m.Mem))
	}
	copy(m.Mem, st.Mem)
	m.MarkMemDirty(0, uint32(len(m.Mem)))
	m.G = st.G
	m.Master = st.Master
	m.InstrCount = st.InstrCount
	m.Halted = st.Halted
	m.CheckpointRequested = false
	return nil
}

// Save writes a checkpoint with gob encoding.
func Save(w io.Writer, st *State) error {
	return gob.NewEncoder(w).Encode(st)
}

// Load reads a checkpoint written by Save.
func Load(r io.Reader) (*State, error) {
	var st State
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: %v", err)
	}
	return &st, nil
}
