package checkpoint

import (
	"bytes"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/sim/funcmodel"
)

const prog = `
        .data
v:      .word 5
        .text
main:   lw    $t0, v
        addiu $t0, $t0, 1
        sw    $t0, v
        sys   5          # request a checkpoint
        lw    $v0, v
        sys   1
        sys   0
`

func machine(t *testing.T) *funcmodel.Machine {
	t.Helper()
	u, err := asm.Parse("c.s", prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := funcmodel.New(p, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCaptureRestoreResume(t *testing.T) {
	m := machine(t)
	// Run until the checkpoint trap.
	for !m.CheckpointRequested {
		ok, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("halted before checkpoint")
		}
	}
	st := Capture(m, 1234)

	// Serialize and reload.
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	st2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CycleOffset != 1234 || st2.InstrCount != st.InstrCount {
		t.Fatal("metadata lost")
	}

	// Restore into a fresh machine and finish the program.
	var out bytes.Buffer
	m2 := machine(t)
	m2.Out = &out
	if err := Restore(m2, st2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "6" {
		t.Fatalf("resumed output %q, want 6 (stored increment must persist)", out.String())
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	m := machine(t)
	st := Capture(m, 0)

	other := `
        .text
main:   nop
        sys 0
`
	u, _ := asm.Parse("o.s", other)
	p, _ := asm.Assemble(u)
	m2, _ := funcmodel.New(p, 1<<20, nil)
	if err := Restore(m2, st); err == nil {
		t.Fatal("restoring under a different program must fail")
	}

	st.Version = 99
	m3 := machine(t)
	if err := Restore(m3, st); err == nil {
		t.Fatal("unknown version must fail")
	}
}

// TestFingerprintDetectsInstructionChange covers the hole the v1 format had:
// two programs with the same text length and entry but different instruction
// content must not accept each other's checkpoints.
func TestFingerprintDetectsInstructionChange(t *testing.T) {
	build := func(src string) *funcmodel.Machine {
		t.Helper()
		u, err := asm.Parse("f.s", src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := asm.Assemble(u)
		if err != nil {
			t.Fatal(err)
		}
		m, err := funcmodel.New(p, 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := build("main:\n addiu $t0, $zero, 1\n sys 0\n")
	b := build("main:\n addiu $t0, $zero, 2\n sys 0\n")
	if len(a.Prog.Text) != len(b.Prog.Text) || a.Prog.Entry != b.Prog.Entry {
		t.Fatalf("test premise broken: text %d/%d entry %d/%d",
			len(a.Prog.Text), len(b.Prog.Text), a.Prog.Entry, b.Prog.Entry)
	}
	st := Capture(a, 0)
	if err := Restore(b, st); err == nil {
		t.Fatal("checkpoint accepted by a same-shape program with different instructions")
	}
	// The fingerprint must ignore non-semantic fields: re-parsing the same
	// source (fresh Line/Sym metadata) still matches.
	a2 := build("main:\n addiu $t0, $zero, 1\n sys 0\n")
	if err := Restore(a2, st); err != nil {
		t.Fatalf("re-assembled identical program refused: %v", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
}
