package cycle

import (
	"testing"

	"xmtgo/internal/config"
)

// memSweep is a memory-heavy parallel program used for interconnect
// comparisons.
const memSweep = `
        .data
A:      .space 8192
B:      .space 8192
        .text
main:   la    $t0, A
        la    $t1, B
        bcast $t0
        bcast $t1
        li    $a0, 0
        li    $a1, 255
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 2
        addu  $t3, $t0, $t2
        lw    $t4, 0($t3)
        addu  $t5, $t1, $t2
        sw.nb $t4, 0($t5)
        j     L
        join
        sys   0
`

// TestAsyncICNCorrectAndContinuous: the asynchronous interconnect variant
// (§III-F) produces the same architectural result, and its event times are
// NOT quantized to ICN clock edges — the continuous-time behaviour only a
// discrete-event simulator can express.
func TestAsyncICNCorrectAndContinuous(t *testing.T) {
	syncCfg := config.FPGA64()
	asyncCfg := config.FPGA64()
	asyncCfg.ICNAsync = true

	s1, _ := buildSys(t, memSweep, syncCfg)
	r1, err := s1.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := buildSys(t, memSweep, asyncCfg)
	r2, err := s2.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Halted || !r2.Halted {
		t.Fatal("did not halt")
	}
	// Same architectural outcome.
	aAddr, _ := s1.Prog.SymAddr("B")
	for i := uint32(0); i < 256; i += 64 {
		v1, _ := s1.Machine.ReadWord(aAddr + i)
		v2, _ := s2.Machine.ReadWord(aAddr + i)
		if v1 != v2 {
			t.Fatalf("memory diverges at +%d: %d vs %d", i, v1, v2)
		}
	}
	// Different timing models actually engaged.
	if r1.Ticks == r2.Ticks {
		t.Fatalf("sync and async runs have identical timing (%d ticks): async path not engaged?", r1.Ticks)
	}
	if s2.Stats.ICNTraversals == 0 {
		t.Fatal("async traversals not counted")
	}
	t.Logf("sync: %d ticks; async: %d ticks", r1.Ticks, r2.Ticks)
}

// TestAsyncPortBackpressure: a deep async-port backlog makes send fail so
// the TCU retries (no unbounded queueing).
func TestAsyncPortBackpressure(t *testing.T) {
	cfg := config.FPGA64()
	cfg.ICNAsync = true
	cfg.ICNAsyncGapTicks = 64 // very slow port
	sys, _ := buildSys(t, memSweep, cfg)
	res, err := sys.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt under backpressure")
	}
}

func TestAsyncConfigValidation(t *testing.T) {
	cfg := config.FPGA64()
	cfg.ICNAsync = true
	cfg.ICNAsyncHopTicks = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero hop ticks must be rejected when async is on")
	}
	cfg2 := config.FPGA64()
	if err := cfg2.Set("icn_async=true"); err != nil {
		t.Fatal(err)
	}
	if !cfg2.ICNAsync {
		t.Fatal("icn_async setter broken")
	}
	if err := cfg2.Set("icn_async=maybe"); err == nil {
		t.Fatal("bad boolean must fail")
	}
}
