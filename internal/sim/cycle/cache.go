package cycle

import (
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/trace"
)

// CacheModule is one mutually-exclusive partition of XMT's shared first
// level of cache. The load-store units hash every address to a module, so
// each line has exactly one home and no coherence protocol is needed;
// concurrent requests are buffered in the module's service queue and served
// in order — which is also where simultaneous psm operations to the same
// base serialize, as the paper describes.
//
// The module performs the actual memory read/write at service time (the
// functional model's memory is the module's backing data), so the order in
// which requests drain the queues is the order memory is mutated in — the
// source of the relaxed-consistency behaviour of Figs. 6-7.
type CacheModule struct {
	sys  *System
	id   int
	tags *tagArray

	// serviceQ with head forms a dequeue-from-front queue that keeps its
	// backing array: popping by re-slicing (q = q[1:]) would strand the
	// array and make every accept reallocate. head is compacted back to 0
	// once it passes the queue capacity.
	serviceQ []*Package
	head     int
	capacity int

	// stalledUntil freezes the module's service pipeline until the given
	// time (CacheStall fault injection); requests keep queueing meanwhile.
	stalledUntil engine.Time
}

func newCacheModule(sys *System, id int) *CacheModule {
	cfg := sys.Cfg
	return &CacheModule{
		sys:      sys,
		id:       id,
		tags:     newTagArray(cfg.CacheLinesPerMod, cfg.CacheAssoc, cfg.CacheLineSize),
		capacity: cfg.CacheQueue,
	}
}

// accept enqueues a request if the service queue has room.
func (cm *CacheModule) accept(p *Package) bool {
	if len(cm.serviceQ)-cm.head >= cm.capacity {
		return false
	}
	if cm.head >= cm.capacity {
		n := copy(cm.serviceQ, cm.serviceQ[cm.head:])
		for i := n; i < len(cm.serviceQ); i++ {
			cm.serviceQ[i] = nil
		}
		cm.serviceQ = cm.serviceQ[:n]
		cm.head = 0
	}
	cm.serviceQ = append(cm.serviceQ, p)
	return true
}

// Tick serves one request per cache cycle (pipelined service: one dequeue
// per cycle, each response delayed by the hit or miss latency).
func (cm *CacheModule) Tick(cycle int64, now engine.Time) bool {
	depth := len(cm.serviceQ) - cm.head
	if depth == 0 {
		return false
	}
	if now < cm.stalledUntil {
		// Injected stall: pending requests keep the domain ticking so
		// service resumes at the stall horizon.
		return true
	}
	// The cache macro-actor is serial: observing the shared depth histogram
	// and event log directly is safe and deterministic.
	cm.sys.Stats.CacheQueueDepth.Observe(uint64(depth))
	if cm.sys.evlog != nil {
		cm.sys.evlog.Emit(trace.Event{TS: now, Kind: trace.EvQueueDepth,
			Ctx: int32(cm.id), Arg: int64(depth)})
	}
	p := cm.serviceQ[cm.head]
	cm.serviceQ[cm.head] = nil
	cm.head++
	if cm.head == len(cm.serviceQ) {
		cm.serviceQ = cm.serviceQ[:0]
		cm.head = 0
	}

	m := cm.sys.Machine
	hit := cm.tags.Lookup(p.Addr, cycle)
	cm.sys.Stats.CountMem(p.Addr, p.In.Op, cm.id, hit)

	// Perform the memory operation now: queue order is memory order.
	// Shadow packages (master timing probes) skip it.
	if !p.Shadow {
		switch p.Kind {
		case PkgLoad:
			p.Data, p.Err = m.LoadValue(p.In, p.Addr)
		case PkgStore, PkgStoreNB:
			p.Err = m.StoreValue(p.In, p.Addr, p.Data)
		case PkgPsm:
			p.Data, p.Err = m.Psm(p.Addr, p.Data)
		case PkgPrefetch:
			p.Line, p.Err = cm.readLine(p.LineAddr)
		}
		// xmtsan: service order is memory order, and the cache macro-actor
		// is serial, so checking here is deterministic. Master packages
		// (Cluster < 0) are serial-phase accesses the detector ignores by
		// construction; faulted accesses never commit. A prefetch fill is
		// not a program access — the later buffer hit is the read.
		if cm.sys.race != nil && p.Cluster >= 0 && p.Err == nil {
			tcu := p.Cluster*cm.sys.Cfg.TCUsPerCluster + p.TCU
			switch p.Kind {
			case PkgLoad:
				cm.sys.raceRead(tcu, p.Addr, p.In.Line, now)
			case PkgStore, PkgStoreNB:
				cm.sys.raceWrite(tcu, p.Addr, p.In.Line, now)
			case PkgPsm:
				cm.sys.race.SyncAccess(tcu, p.Addr, p.In.Line)
			}
		}
	}

	cfg := cm.sys.Cfg
	hitDone := now + cfg.CacheHitLatency*cfg.CachePeriod
	returnLat := cm.sys.returnLatency()
	if hit || p.Err != nil {
		cm.sys.scheduleDeliver(p, hitDone+returnLat)
		return len(cm.serviceQ) > 0
	}
	// Store miss: write-validate allocation — the line is installed
	// without a DRAM fetch and the write is acknowledged at the module.
	// (The shared cache is the coherence point; dirty evictions are not
	// modeled separately at transaction level.)
	if p.Kind == PkgStore || p.Kind == PkgStoreNB {
		cm.tags.Fill(p.Addr, cycle)
		cm.sys.scheduleDeliver(p, hitDone+returnLat)
		return len(cm.serviceQ) > 0
	}
	// Load/psm/prefetch miss: a line fill goes through a DRAM port; the
	// response leaves after the fill completes. Subsequent requests keep
	// being served (the module buffers and reorders requests for DRAM
	// bandwidth utilization, as the paper notes).
	fillAt := cm.sys.dram.access(p.LineOrAddr(cfg.CacheLineSize), hitDone)
	cm.tags.Fill(p.Addr, cycle)
	cm.sys.scheduleDeliver(p, fillAt+returnLat)
	return len(cm.serviceQ) > 0
}

func (cm *CacheModule) readLine(lineAddr uint32) ([]byte, error) {
	size := cm.sys.Cfg.CacheLineSize
	line := make([]byte, size)
	for i := 0; i < size; i += 4 {
		v, err := cm.sys.Machine.ReadWord(lineAddr + uint32(i))
		if err != nil {
			return nil, err
		}
		line[i] = byte(v)
		line[i+1] = byte(v >> 8)
		line[i+2] = byte(v >> 16)
		line[i+3] = byte(v >> 24)
	}
	return line, nil
}

// LineOrAddr returns the line-aligned address for DRAM interleaving.
func (p *Package) LineOrAddr(lineSize int) uint32 {
	return p.Addr &^ (uint32(lineSize) - 1)
}

// DRAM models the off-chip memory channels as simple latency behind ports
// with a minimum inter-access gap (bandwidth), per paper §III: "DRAM is
// modeled as simple latency".
type DRAM struct {
	sys      *System
	nextFree []engine.Time
}

func newDRAM(sys *System) *DRAM {
	return &DRAM{sys: sys, nextFree: make([]engine.Time, sys.Cfg.DRAMPorts)}
}

// access schedules one line access starting no earlier than at and returns
// its completion time. Channels are hash-interleaved (like the cache
// modules) so strided traffic cannot degenerate onto one port.
func (d *DRAM) access(lineAddr uint32, at engine.Time) engine.Time {
	cfg := d.sys.Cfg
	h := (uint64(lineAddr>>d.sys.lineShift) + d.sys.hashSalt) * 0xbf58476d1ce4e5b9
	port := int((h >> 35) % uint64(len(d.nextFree)))
	start := at
	if d.nextFree[port] > start {
		start = d.nextFree[port]
	}
	d.nextFree[port] = start + cfg.DRAMGapCycles*cfg.DRAMPeriod
	d.sys.Stats.DRAMAccesses[port]++
	return start + cfg.DRAMLatency*cfg.DRAMPeriod
}

// moduleOf hashes a byte address to its home cache module. A multiplicative
// hash over the line address (salted by the config seed) spreads hotspots,
// implementing the LS-unit address hashing of the paper.
func (s *System) moduleOf(addr uint32) int {
	line := addr >> s.lineShift
	h := (uint64(line) + s.hashSalt) * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(len(s.modules)))
}
