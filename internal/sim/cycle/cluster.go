package cycle

import (
	"fmt"
	"math/bits"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

// Cluster groups TCUs and the resources they share: the expensive multiply/
// divide and floating-point units, the cluster read-only cache, and the ICN
// send port (paper Fig. 1 and §II). All clusters tick inside one
// macro-actor on the cluster clock domain.
//
// Cluster implements engine.WindowShard: under the bounded-lookahead engine
// it executes several cycles per scheduler event, marking the outbox with
// per-cycle segments, and replays one segment per CommitCycle in (cycle,
// cluster) order — bit-identical to the single-cycle engine. In optimistic
// mode it additionally snapshots its window-entry state so an overrun past
// the consensus window end can be rolled back and replayed.
type Cluster struct {
	sys  *System
	id   int
	tcus []*TCU

	// Shared functional units: freeAt[i] is the cluster cycle unit i
	// becomes available. unitsBusyUntil caches the max over both pools so
	// the tick's "units still draining" check is O(1).
	fpuFreeAt      []int64
	mduFreeAt      []int64
	unitsBusyUntil int64

	// ro is the cluster read-only cache (tags only; constants are read from
	// shared memory and the tags are invalidated at spawn boundaries).
	ro *tagArray

	// sendQ is the ICN injection queue, drained by the ICN macro-actor at
	// ICNInjectPerCyc packages per ICN cycle.
	sendQ    []*Package
	sendQCap int

	// ob holds the window's deferred shared-state effects; Tick (the compute
	// phase) may run concurrently with other clusters' and must route every
	// shared mutation through here (see outbox.go).
	ob outbox

	// evRing buffers this cluster's structured trace events between outbox
	// commits (nil when event tracing is off). Filled from the compute phase
	// and from this cluster's own delivery events; both are exclusive to the
	// cluster, so no locking is needed.
	evRing *trace.Ring

	// prof is this cluster's cycle-profiler shard (nil when profiling is
	// off); same ownership rules as evRing.
	prof *stats.ProfShard

	// tickMask has bit i set when TCU i can make progress from its own tick
	// (running, counting down a stall, or checking a fence); memory-blocked,
	// idle, done and dead TCUs are skipped — their Tick is a no-op by
	// construction. Maintained by TCU.setState. maskOK is false for
	// clusters with more than 64 TCUs (full-scan fallback).
	tickMask uint64
	maskOK   bool
	// nActive counts TCUs in any state but idle/done/dead: the BusyCycles
	// attribution check without scanning every TCU.
	nActive int

	// Bounded-lookahead window state (engine.WindowShard).
	winBase   int64 // absolute cluster cycle of window cycle 0
	winEvBase int   // evRing length at BeginWindow (rollback truncation point)
	deferProf bool  // optimistic: buffer profile PCs until the cycle commits
	profPend  []int32
	snap      clusterSnap

	// pkgFree recycles Packages. Allocation happens in this cluster's
	// compute phase; System.route frees a package after its delivery
	// commits. The two never overlap in time (deliveries are scheduler
	// events, the compute phase runs between them), so no locking is needed.
	pkgFree []*Package
}

func newCluster(sys *System, id int) *Cluster {
	cfg := sys.Cfg
	c := &Cluster{
		sys:       sys,
		id:        id,
		fpuFreeAt: make([]int64, cfg.FPUsPerCluster),
		mduFreeAt: make([]int64, cfg.MDUsPerCluster),
		sendQCap:  8 * cfg.ICNInjectPerCyc,
	}
	if cfg.ROCacheLines > 0 {
		c.ro = newTagArray(cfg.ROCacheLines, 2, cfg.ROCacheLineSize)
	}
	for i := 0; i < cfg.TCUsPerCluster; i++ {
		t := &TCU{
			sys:     sys,
			cluster: c,
			id:      id*cfg.TCUsPerCluster + i,
			local:   i,
			pbuf:    newPrefetchBuffer(cfg.PrefetchBufEntries, cfg.CacheLineSize),
		}
		t.state = tcuIdle
		t.alive = true
		c.tcus = append(c.tcus, t)
	}
	c.maskOK = len(c.tcus) <= 64
	return c
}

// Tick advances every TCU of the cluster one cluster cycle.
func (c *Cluster) Tick(cycle int64, now engine.Time) bool {
	busy := false
	if c.maskOK {
		// Iterate a copy of the mask: state transitions during the loop
		// (e.g. a stall expiring into running) edit c.tickMask, but the
		// skipped TCUs' Ticks are pure no-ops, so the visit set is exactly
		// the legacy full scan's set of TCUs that could do anything.
		for m := c.tickMask; m != 0; m &= m - 1 {
			if c.tcus[bits.TrailingZeros64(m)].Tick(cycle, now) {
				busy = true
			}
		}
		if c.nActive > 0 {
			c.sys.Stats.Cluster[c.id].BusyCycles++
		}
	} else {
		active := false
		for _, t := range c.tcus {
			if t.Tick(cycle, now) {
				busy = true
			}
			if t.state != tcuIdle && t.state != tcuDone && t.state != tcuDead {
				active = true
			}
		}
		if active {
			c.sys.Stats.Cluster[c.id].BusyCycles++
		}
	}
	// Shared units still draining keep the domain ticking so stalled TCUs
	// observe their completion cycles.
	if c.unitsBusyUntil > cycle {
		busy = true
	}
	return busy
}

// acquire requests a shared unit of the given class at the given cycle.
// On success it returns the operation latency to stall for.
func (c *Cluster) acquire(unit isa.Unit, cycle, latency int64) (int64, bool) {
	var pool []int64
	if unit == isa.UnitFPU {
		pool = c.fpuFreeAt
	} else {
		pool = c.mduFreeAt
	}
	for i := range pool {
		if pool[i] <= cycle {
			pool[i] = cycle + latency
			if pool[i] > c.unitsBusyUntil {
				c.unitsBusyUntil = pool[i]
			}
			return latency, true
		}
	}
	return 0, false
}

// allocPkg takes a Package from the cluster freelist (or allocates one).
// Compute-phase only; the matching free happens in System.route after the
// package's delivery commits.
func (c *Cluster) allocPkg() *Package {
	if n := len(c.pkgFree); n > 0 {
		p := c.pkgFree[n-1]
		c.pkgFree[n-1] = nil
		c.pkgFree = c.pkgFree[:n-1]
		return p
	}
	return new(Package)
}

// freePkg returns a delivered (or never-escaped) package to the freelist.
func (c *Cluster) freePkg(p *Package) {
	*p = Package{}
	c.pkgFree = append(c.pkgFree, p)
}

// Commit drains the whole outbox — the serial phase of a single-cycle
// cluster tick (engine.ShardCycler). Records replay in the exact order the
// compute phase produced them, and clusters commit in cluster-id order, so
// scheduler sequence numbers, prefix-sum slots, program output and shared
// statistics end up identical to a fully serial simulation.
func (c *Cluster) Commit(now engine.Time) {
	ev := 0
	if c.evRing != nil {
		ev = c.evRing.Len()
	}
	c.replay(0, int32(len(c.ob.recs)), 0, int32(len(c.ob.ops)), 0, int32(ev), now)
	if c.sys.evlog != nil {
		c.sys.evlog.ResetRing(c.evRing)
	}
	c.ob.reset()
}

// replay commits one contiguous range of the outbox: records [rlo,rhi),
// the op-count stream [olo,ohi), and ring events [elo,ehi). Counted ops
// issued before a record flush before that record replays, preserving the
// serial interleaving of counts with effects.
func (c *Cluster) replay(rlo, rhi, olo, ohi, elo, ehi int32, now engine.Time) {
	s := c.sys
	if s.evlog != nil && ehi > elo {
		s.evlog.DrainRange(c.evRing, int(elo), int(ehi))
	}
	cur := olo
	for i := rlo; i < rhi; i++ {
		r := &c.ob.recs[i]
		// Once the simulation has failed or halted, stop replaying: a later
		// record from the same tick (a ps request, a syscall print) would
		// otherwise still take effect — bumping PsOps for a request whose
		// response can never run, or printing past a halt — which both
		// double-counts against the serial semantics and varies with how
		// much work the tick batched. First failure wins; the rest of the
		// outbox is discarded. (See TestCommitStopsReplayAfterFailure.)
		if s.err != nil || s.halted {
			*r = obRec{}
			continue
		}
		if r.opsIdx > cur {
			s.Stats.CountInstrs(c.ob.ops[cur:r.opsIdx], c.id)
			cur = r.opsIdx
		}
		switch r.kind {
		case obStat:
			*r.stat += r.n
		case obTrace:
			s.traceFn(r.t.id, r.pc, r.in, now)
		case obPS:
			s.ps.request(r.t, r.in, now)
		case obSys:
			halt, err := s.Machine.DoSys(&r.t.ctx, r.in)
			if err != nil {
				s.fail(&funcmodel.RuntimeError{PC: r.pc, Line: r.in.Line, In: r.in, Err: err})
			} else if halt {
				s.halt()
			}
		case obWakeICN:
			s.wakeICN(now)
		case obAsync:
			s.scheduleAsyncDeliver(r.pkg, r.at)
		case obDone:
			s.spawn.tcuDone(r.t, now)
		case obDecomm:
			// The TCU hit its safe point mid-thread: decommission and
			// re-dispatch the orphaned virtual thread.
			s.decommissionTCU(r.t, true, true, now)
		case obFail:
			s.fail(r.err)
		case obRace:
			s.raceRead(r.t.id, uint32(r.n), r.in.Line, now)
		}
		*r = obRec{}
	}
	if ohi > cur && s.err == nil && !s.halted {
		s.Stats.CountInstrs(c.ob.ops[cur:ohi], c.id)
	}
}

// BeginWindow opens a lookahead window (engine.WindowShard). With snapshot
// set (optimistic mode) the cluster captures its window-entry state so an
// overrun can be rolled back.
func (c *Cluster) BeginWindow(snapshot bool) {
	c.ob.segs = c.ob.segs[:0]
	c.ob.closing = false
	c.profPend = c.profPend[:0]
	c.winEvBase = 0
	if c.evRing != nil {
		c.winEvBase = c.evRing.Len()
	}
	c.deferProf = snapshot && c.prof != nil
	if snapshot {
		c.capture()
	}
}

// WindowTick runs one window cycle's compute phase and marks its segment.
func (c *Cluster) WindowTick(cycle int64, now engine.Time) (busy, closing bool) {
	if len(c.ob.segs) == 0 {
		c.winBase = cycle
	}
	busy = c.Tick(cycle, now)
	ev := c.winEvBase
	if c.evRing != nil {
		ev = c.evRing.Len()
	}
	closing = c.ob.mark(cycle, ev, len(c.profPend))
	// Keep enough ring headroom for one more cycle's worth of events: a
	// near-full ring closes the window, so multi-cycle batching can never
	// drop an event the single-cycle engine would have kept (which drains
	// the ring every cycle).
	if !closing && c.evRing != nil && c.evRing.Cap()-c.evRing.Len() < len(c.tcus) {
		closing = true
	}
	return busy, closing
}

// CommitCycle replays window cycle k's outbox segment at that cycle's edge
// time (engine.WindowShard). Commits run serially, all clusters at cycle k
// before any cluster at cycle k+1, reproducing the single-cycle engine's
// (cycle, cluster) interleaving exactly.
func (c *Cluster) CommitCycle(k int, now engine.Time) {
	if k >= len(c.ob.segs) {
		return
	}
	s := c.sys
	seg := &c.ob.segs[k]
	// Cycle 0 drains ring events from 0, not winEvBase: events emitted by
	// serial contexts between windows (delivery unblocks, PS responses) sit
	// below winEvBase and would otherwise be discarded by EndWindow's reset —
	// the single-cycle engine drains them at its next commit. winEvBase is
	// only the optimistic Rollback truncation point.
	var rlo, olo, plo, elo int32
	if k > 0 {
		prev := &c.ob.segs[k-1]
		rlo, olo, plo, elo = prev.rec, prev.op, prev.prof, prev.ev
	}
	// Replay-order guard: a segment claiming a cycle other than winBase+k
	// would silently reorder shared effects against other clusters'. Fail
	// loudly (diagnostic, first-failure-wins discard) instead of
	// corrupting state.
	if want := c.winBase + int64(k); seg.cycle != want {
		s.beginCommit(want, now)
		s.fail(fmt.Errorf("cycle: window replay out of order: cluster %d segment %d buffered effects for cycle %d, expected %d (window start %d)",
			c.id, k, seg.cycle, want, c.winBase))
		s.endCommit()
		return
	}
	s.beginCommit(seg.cycle, now)
	c.replay(rlo, seg.rec, olo, seg.op, elo, seg.ev, now)
	// Deferred profile samples (optimistic mode): issues from cycles past
	// the consensus window end were truncated by the rollback replay, so
	// applying here keeps profiles identical to the direct-emit modes.
	if c.deferProf {
		for _, pc := range c.profPend[plo:seg.prof] {
			c.prof.Issue(int(pc))
		}
	}
	s.endCommit()
}

// EndWindow closes the window after every cycle's segment has committed.
func (c *Cluster) EndWindow() {
	if c.sys.evlog != nil {
		c.sys.evlog.ResetRing(c.evRing)
	}
	c.ob.reset()
	c.profPend = c.profPend[:0]
	c.deferProf = false
}

// Rollback rewinds the cluster to its window-entry snapshot (optimistic
// mode: this cluster ran past the consensus window end). The engine
// re-ticks cycles 0..E afterwards; with all cross-cluster inputs frozen the
// replay is deterministic. Packages allocated by the rolled-back cycles are
// deliberately NOT returned to the freelist: a restored pre-window
// pendingSend may alias one of them, and the garbage collector reclaiming a
// few overrun allocations is cheaper than corrupting the pool.
func (c *Cluster) Rollback() {
	c.restore()
	if c.evRing != nil {
		c.evRing.Truncate(c.winEvBase)
	}
	for i := range c.ob.recs {
		c.ob.recs[i] = obRec{}
	}
	c.ob.recs = c.ob.recs[:0]
	c.ob.ops = c.ob.ops[:0]
	c.ob.segs = c.ob.segs[:0]
	c.ob.wokeICN = false
	c.ob.closing = false
	c.profPend = c.profPend[:0]
}

// tcuSnap captures one TCU's window-entry state for optimistic rollback.
type tcuSnap struct {
	ctx             funcmodel.Context
	state           tcuState
	stallUntil      int64
	pendingNB       int
	memWaitStart    engine.Time
	blockPC         int32
	blockOp         isa.Op
	waitPS          bool
	doneCounted     bool
	pendingPbufLoad isa.Instr
	pendingPbufAddr uint32
	waitingPbuf     bool
	pendingSend     *Package
	pendingSendPkg  Package // contents of *pendingSend (retries mutate Issued)
	pendingSendPC   int
	pendingSendIn   isa.Instr
	pbuf            []pbufEntry
}

// clusterSnap captures a cluster's window-entry state. Only state the
// compute phase can mutate is saved: everything else (shared memory, the
// scheduler, other clusters) is frozen for the window's duration by
// construction.
type clusterSnap struct {
	tcus           []tcuSnap
	fpuFreeAt      []int64
	mduFreeAt      []int64
	unitsBusyUntil int64
	roLastUse      []int64
	sendQLen       int
	asyncPortFree  engine.Time
	stats          stats.ClusterStats
	nActive        int
	tickMask       uint64
}

func (c *Cluster) capture() {
	s := &c.snap
	if s.tcus == nil {
		s.tcus = make([]tcuSnap, len(c.tcus))
		s.fpuFreeAt = make([]int64, len(c.fpuFreeAt))
		s.mduFreeAt = make([]int64, len(c.mduFreeAt))
		if c.ro != nil {
			s.roLastUse = make([]int64, len(c.ro.lastUse))
		}
		for i, t := range c.tcus {
			s.tcus[i].pbuf = make([]pbufEntry, len(t.pbuf.entries))
		}
	}
	for i, t := range c.tcus {
		ts := &s.tcus[i]
		pb := ts.pbuf
		copy(pb, t.pbuf.entries)
		*ts = tcuSnap{
			ctx:             t.ctx,
			state:           t.state,
			stallUntil:      t.stallUntil,
			pendingNB:       t.pendingNB,
			memWaitStart:    t.memWaitStart,
			blockPC:         t.blockPC,
			blockOp:         t.blockOp,
			waitPS:          t.waitPS,
			doneCounted:     t.doneCounted,
			pendingPbufLoad: t.pendingPbufLoad,
			pendingPbufAddr: t.pendingPbufAddr,
			waitingPbuf:     t.waitingPbuf,
			pendingSend:     t.pendingSend,
			pendingSendPC:   t.pendingSendPC,
			pendingSendIn:   t.pendingSendIn,
			pbuf:            pb,
		}
		if t.pendingSend != nil {
			ts.pendingSendPkg = *t.pendingSend
		}
	}
	copy(s.fpuFreeAt, c.fpuFreeAt)
	copy(s.mduFreeAt, c.mduFreeAt)
	s.unitsBusyUntil = c.unitsBusyUntil
	if c.ro != nil {
		copy(s.roLastUse, c.ro.lastUse)
	}
	s.sendQLen = len(c.sendQ)
	s.asyncPortFree = c.sys.asyncPortFree[c.id]
	s.stats = c.sys.Stats.Cluster[c.id]
	s.nActive = c.nActive
	s.tickMask = c.tickMask
}

func (c *Cluster) restore() {
	s := &c.snap
	for i, t := range c.tcus {
		ts := &s.tcus[i]
		t.ctx = ts.ctx
		t.state = ts.state
		t.stallUntil = ts.stallUntil
		t.pendingNB = ts.pendingNB
		t.memWaitStart = ts.memWaitStart
		t.blockPC = ts.blockPC
		t.blockOp = ts.blockOp
		t.waitPS = ts.waitPS
		t.doneCounted = ts.doneCounted
		t.pendingPbufLoad = ts.pendingPbufLoad
		t.pendingPbufAddr = ts.pendingPbufAddr
		t.waitingPbuf = ts.waitingPbuf
		t.pendingSend = ts.pendingSend
		t.pendingSendPC = ts.pendingSendPC
		t.pendingSendIn = ts.pendingSendIn
		if ts.pendingSend != nil {
			*ts.pendingSend = ts.pendingSendPkg
		}
		copy(t.pbuf.entries, ts.pbuf)
	}
	copy(c.fpuFreeAt, s.fpuFreeAt)
	copy(c.mduFreeAt, s.mduFreeAt)
	c.unitsBusyUntil = s.unitsBusyUntil
	if c.ro != nil {
		copy(c.ro.lastUse, s.roLastUse)
	}
	// Packages the overrun pushed past the snapshot length stay allocated
	// (see Rollback); truncating the queue un-sends them.
	for i := s.sendQLen; i < len(c.sendQ); i++ {
		c.sendQ[i] = nil
	}
	c.sendQ = c.sendQ[:s.sendQLen]
	c.sys.asyncPortFree[c.id] = s.asyncPortFree
	c.sys.Stats.Cluster[c.id] = s.stats
	c.nActive = s.nActive
	c.tickMask = s.tickMask
}

// send enqueues a package for ICN injection; it fails (backpressure) when
// the send queue is full, making the TCU retry next cycle. In asynchronous
// interconnect mode the package leaves through the handshake port instead.
// Runs in the compute phase: injection-port state is cluster-local, but the
// ICN wake / delivery scheduling and traversal statistics are deferred.
// now is the issuing cycle's edge time (under lookahead this runs ahead of
// the scheduler clock, so Sched.Now() would be wrong).
func (c *Cluster) send(p *Package, now engine.Time) bool {
	p.Module = c.sys.moduleOf(p.Addr)
	if c.sys.Cfg.ICNAsync {
		// Backpressure: refuse when the port has a deep backlog.
		if c.sys.asyncPortFree[c.id] > now+8*c.sys.Cfg.ICNAsyncGapTicks {
			c.sys.Stats.Cluster[c.id].SendStallCycles++
			return false
		}
		arrive := c.sys.asyncDepart(p, c.id, now)
		c.ob.stat(&c.sys.Stats.ICNTraversals, 1)
		c.ob.stat(&c.sys.Stats.ICNHops, uint64(c.sys.icn.hopsPerTraversal))
		c.ob.async(p, arrive)
		return true
	}
	if len(c.sendQ) >= c.sendQCap {
		c.sys.Stats.Cluster[c.id].SendStallCycles++
		return false
	}
	c.sendQ = append(c.sendQ, p)
	c.ob.wakeICN()
	return true
}

// resetForSpawn prepares the cluster's TCUs for a new spawn.
func (c *Cluster) resetForSpawn(pc int, mask uint32, bcast *[isa.NumRegs]int32) {
	if c.ro != nil {
		c.ro.InvalidateAll()
	}
	for _, t := range c.tcus {
		if t.alive {
			t.resetForSpawn(pc, mask, bcast)
		}
	}
}

// quiesce returns all surviving TCUs to idle after a join.
func (c *Cluster) quiesce() {
	for _, t := range c.tcus {
		if t.alive {
			t.setState(tcuIdle)
			t.pendingSend = nil
		}
	}
	if c.ro != nil {
		c.ro.InvalidateAll()
	}
}
