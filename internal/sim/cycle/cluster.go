package cycle

import (
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

// Cluster groups TCUs and the resources they share: the expensive multiply/
// divide and floating-point units, the cluster read-only cache, and the ICN
// send port (paper Fig. 1 and §II). All clusters tick inside one
// macro-actor on the cluster clock domain.
type Cluster struct {
	sys  *System
	id   int
	tcus []*TCU

	// Shared functional units: freeAt[i] is the cluster cycle unit i
	// becomes available.
	fpuFreeAt []int64
	mduFreeAt []int64

	// ro is the cluster read-only cache (tags only; constants are read from
	// shared memory and the tags are invalidated at spawn boundaries).
	ro *tagArray

	// sendQ is the ICN injection queue, drained by the ICN macro-actor at
	// ICNInjectPerCyc packages per ICN cycle.
	sendQ    []*Package
	sendQCap int

	// ob holds the tick's deferred shared-state effects; Tick (the compute
	// phase) may run concurrently with other clusters' and must route every
	// shared mutation through here (see outbox.go).
	ob outbox

	// evRing buffers this cluster's structured trace events between outbox
	// commits (nil when event tracing is off). Filled from the compute phase
	// and from this cluster's own delivery events; both are exclusive to the
	// cluster, so no locking is needed.
	evRing *trace.Ring

	// prof is this cluster's cycle-profiler shard (nil when profiling is
	// off); same ownership rules as evRing.
	prof *stats.ProfShard
}

func newCluster(sys *System, id int) *Cluster {
	cfg := sys.Cfg
	c := &Cluster{
		sys:       sys,
		id:        id,
		fpuFreeAt: make([]int64, cfg.FPUsPerCluster),
		mduFreeAt: make([]int64, cfg.MDUsPerCluster),
		sendQCap:  8 * cfg.ICNInjectPerCyc,
	}
	if cfg.ROCacheLines > 0 {
		c.ro = newTagArray(cfg.ROCacheLines, 2, cfg.ROCacheLineSize)
	}
	for i := 0; i < cfg.TCUsPerCluster; i++ {
		t := &TCU{
			sys:     sys,
			cluster: c,
			id:      id*cfg.TCUsPerCluster + i,
			local:   i,
			pbuf:    newPrefetchBuffer(cfg.PrefetchBufEntries, cfg.CacheLineSize),
		}
		t.state = tcuIdle
		t.alive = true
		c.tcus = append(c.tcus, t)
	}
	return c
}

// Tick advances every TCU of the cluster one cluster cycle.
func (c *Cluster) Tick(cycle int64, now engine.Time) bool {
	busy := false
	active := false
	for _, t := range c.tcus {
		if t.Tick(cycle, now) {
			busy = true
		}
		if t.state != tcuIdle && t.state != tcuDone && t.state != tcuDead {
			active = true
		}
	}
	if active {
		c.sys.Stats.Cluster[c.id].BusyCycles++
	}
	// Shared units still draining keep the domain ticking so stalled TCUs
	// observe their completion cycles.
	for _, f := range c.fpuFreeAt {
		if f > cycle {
			busy = true
		}
	}
	for _, f := range c.mduFreeAt {
		if f > cycle {
			busy = true
		}
	}
	return busy
}

// acquire requests a shared unit of the given class at the given cycle.
// On success it returns the operation latency to stall for.
func (c *Cluster) acquire(unit isa.Unit, cycle, latency int64) (int64, bool) {
	var pool []int64
	if unit == isa.UnitFPU {
		pool = c.fpuFreeAt
	} else {
		pool = c.mduFreeAt
	}
	for i := range pool {
		if pool[i] <= cycle {
			pool[i] = cycle + latency
			return latency, true
		}
	}
	return 0, false
}

// Commit drains the outbox — the serial phase of the two-phase cluster
// tick (engine.ShardCycler). Records replay in the exact order the compute
// phase produced them, and clusters commit in cluster-id order, so
// scheduler sequence numbers, prefix-sum slots, program output and shared
// statistics end up identical to a fully serial simulation.
func (c *Cluster) Commit(now engine.Time) {
	s := c.sys
	if s.evlog != nil {
		s.evlog.Drain(c.evRing)
	}
	for i := range c.ob.recs {
		r := &c.ob.recs[i]
		// Once the simulation has failed or halted, stop replaying: a later
		// record from the same tick (a ps request, a syscall print) would
		// otherwise still take effect — bumping PsOps for a request whose
		// response can never run, or printing past a halt — which both
		// double-counts against the serial semantics and varies with how
		// much work the tick batched. First failure wins; the rest of the
		// outbox is discarded. (See TestCommitStopsReplayAfterFailure.)
		if s.err != nil || s.halted {
			*r = obRec{}
			continue
		}
		switch r.kind {
		case obCount:
			s.Stats.CountInstr(r.op, c.id, false)
		case obStat:
			*r.stat += r.n
		case obTrace:
			s.traceFn(r.t.id, r.pc, r.in, now)
		case obPS:
			s.ps.request(r.t, r.in, now)
		case obSys:
			halt, err := s.Machine.DoSys(&r.t.ctx, r.in)
			if err != nil {
				s.fail(&funcmodel.RuntimeError{PC: r.pc, Line: r.in.Line, In: r.in, Err: err})
			} else if halt {
				s.halt()
			}
		case obWakeICN:
			s.wakeICN()
		case obAsync:
			s.scheduleAsyncDeliver(r.pkg, r.at)
		case obDone:
			s.spawn.tcuDone(r.t, now)
		case obDecomm:
			// The TCU hit its safe point mid-thread: decommission and
			// re-dispatch the orphaned virtual thread.
			s.decommissionTCU(r.t, true, true, now)
		case obFail:
			s.fail(r.err)
		case obRace:
			s.raceRead(r.t.id, uint32(r.n), r.in.Line, now)
		}
		*r = obRec{}
	}
	c.ob.recs = c.ob.recs[:0]
	c.ob.wokeICN = false
}

// send enqueues a package for ICN injection; it fails (backpressure) when
// the send queue is full, making the TCU retry next cycle. In asynchronous
// interconnect mode the package leaves through the handshake port instead.
// Runs in the compute phase: injection-port state is cluster-local, but the
// ICN wake / delivery scheduling and traversal statistics are deferred.
func (c *Cluster) send(p *Package) bool {
	p.Module = c.sys.moduleOf(p.Addr)
	if c.sys.Cfg.ICNAsync {
		now := c.sys.Sched.Now()
		// Backpressure: refuse when the port has a deep backlog.
		if c.sys.asyncPortFree[c.id] > now+8*c.sys.Cfg.ICNAsyncGapTicks {
			c.sys.Stats.Cluster[c.id].SendStallCycles++
			return false
		}
		arrive := c.sys.asyncDepart(p, c.id, now)
		c.ob.stat(&c.sys.Stats.ICNTraversals, 1)
		c.ob.stat(&c.sys.Stats.ICNHops, uint64(c.sys.icn.hopsPerTraversal))
		c.ob.async(p, arrive)
		return true
	}
	if len(c.sendQ) >= c.sendQCap {
		c.sys.Stats.Cluster[c.id].SendStallCycles++
		return false
	}
	c.sendQ = append(c.sendQ, p)
	c.ob.wakeICN()
	return true
}

// resetForSpawn prepares the cluster's TCUs for a new spawn.
func (c *Cluster) resetForSpawn(pc int, mask uint32, bcast *[isa.NumRegs]int32) {
	if c.ro != nil {
		c.ro.InvalidateAll()
	}
	for _, t := range c.tcus {
		if t.alive {
			t.resetForSpawn(pc, mask, bcast)
		}
	}
}

// quiesce returns all surviving TCUs to idle after a join.
func (c *Cluster) quiesce() {
	for _, t := range c.tcus {
		if t.alive {
			t.state = tcuIdle
		}
	}
	if c.ro != nil {
		c.ro.InvalidateAll()
	}
}
