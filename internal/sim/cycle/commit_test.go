package cycle

import (
	"bytes"
	"errors"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/isa"
)

// newCommitSystem builds a System around a trivial program without running
// it, so a test can fill a cluster outbox by hand and call Commit directly.
func newCommitSystem(t *testing.T) (*System, *bytes.Buffer) {
	t.Helper()
	u, err := asm.Parse("commit.s", "\t.text\nmain:\tsys 0\n")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sys, err := New(prog, config.FPGA64(), &out)
	if err != nil {
		t.Fatal(err)
	}
	return sys, &out
}

// TestCommitStopsReplayAfterFailure is the regression test for the outbox
// replay bug: when a cluster raised a failure and had further records (a ps
// request, more instruction counts) queued in the same tick, Commit kept
// replaying them, so shared counters were bumped for effects that never
// architecturally happened — and the amount of over-count depended on how
// much work the tick had batched. Replay must stop at the first failure.
func TestCommitStopsReplayAfterFailure(t *testing.T) {
	sys, _ := newCommitSystem(t)
	c := sys.clusters[0]

	var shared uint64
	bang := errors.New("bang")
	c.ob.count(isa.OpAddu)  // before the failure: must replay
	c.ob.stat(&shared, 3)   // before the failure: must replay
	c.ob.fail(bang)         // first failure wins
	c.ob.count(isa.OpAddu)  // after the failure: must be discarded
	c.ob.stat(&shared, 100) // after the failure: must be discarded
	c.ob.fail(errors.New("second failure must not replace the first"))

	c.Commit(0)

	if !errors.Is(sys.Err(), bang) {
		t.Fatalf("System.Err() = %v, want the first failure", sys.Err())
	}
	if sys.Stats.TCUInstrs != 1 {
		t.Errorf("TCUInstrs = %d, want 1 (only the pre-failure count replays)", sys.Stats.TCUInstrs)
	}
	if shared != 3 {
		t.Errorf("shared stat = %d, want 3 (only the pre-failure add replays)", shared)
	}
	if len(c.ob.recs) != 0 {
		t.Errorf("outbox not cleared after Commit: %d records remain", len(c.ob.recs))
	}

	// A later cluster's commit in the same tick must also replay nothing.
	c2 := sys.clusters[1]
	c2.ob.count(isa.OpAddu)
	c2.ob.stat(&shared, 100)
	c2.Commit(0)
	if sys.Stats.TCUInstrs != 1 || shared != 3 {
		t.Errorf("post-failure commit of a later cluster replayed records: instrs=%d shared=%d",
			sys.Stats.TCUInstrs, shared)
	}
}

// TestCommitStopsReplayAfterHalt mirrors the failure case for a clean halt
// raised by a syscall mid-outbox: records batched behind the halting sys 0
// (further prints, counters) must not take effect.
func TestCommitStopsReplayAfterHalt(t *testing.T) {
	sys, out := newCommitSystem(t)
	c := sys.clusters[0]
	tcu := c.tcus[0]

	// sys 1 prints $v0; sys 0 halts. Records after the halt are discarded.
	printInstr := isa.Instr{Op: isa.OpSys, Imm: 1}
	haltInstr := isa.Instr{Op: isa.OpSys, Imm: 0}
	tcu.ctx.Reg[isa.RegV0] = 42
	var shared uint64
	c.ob.sys(tcu, 0, printInstr)
	c.ob.sys(tcu, 1, haltInstr)
	c.ob.sys(tcu, 2, printInstr) // must not print: simulation already halted
	c.ob.stat(&shared, 7)        // must not replay

	c.Commit(0)

	if !sys.halted {
		t.Fatal("System did not halt")
	}
	if got, want := out.String(), "42"; got != want {
		t.Errorf("output = %q, want %q (print after halt must be discarded)", got, want)
	}
	if shared != 0 {
		t.Errorf("shared stat = %d, want 0 (record after halt must be discarded)", shared)
	}
}
