package cycle

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/stats"
)

func buildSys(t testing.TB, src string, cfg config.Config) (*System, *bytes.Buffer) {
	t.Helper()
	u, err := asm.Parse("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sys, err := New(p, cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	return sys, &out
}

const busyLoop = `
        .text
main:   li   $t0, 2000
L:      addiu $t0, $t0, -1
        bgtz $t0, L
        sys  0
`

// TestArchitectureInventory asserts one component instance per solid box
// of the paper's Fig. 1: TCUs grouped into clusters with shared FPUs/MDUs
// and a read-only cache, the shared cache modules, DRAM ports, the ICN,
// the global prefix-sum unit, the spawn unit and the Master TCU.
func TestArchitectureInventory(t *testing.T) {
	cfg := config.FPGA64()
	sys, _ := buildSys(t, busyLoop, cfg)
	if len(sys.clusters) != cfg.Clusters {
		t.Fatalf("clusters = %d", len(sys.clusters))
	}
	for _, c := range sys.clusters {
		if len(c.tcus) != cfg.TCUsPerCluster {
			t.Fatalf("cluster %d has %d TCUs", c.id, len(c.tcus))
		}
		if len(c.fpuFreeAt) != cfg.FPUsPerCluster || len(c.mduFreeAt) != cfg.MDUsPerCluster {
			t.Fatal("shared unit counts wrong")
		}
		if c.ro == nil {
			t.Fatal("read-only cache missing")
		}
	}
	if len(sys.modules) != cfg.CacheModules {
		t.Fatalf("cache modules = %d", len(sys.modules))
	}
	if len(sys.dram.nextFree) != cfg.DRAMPorts {
		t.Fatal("DRAM ports wrong")
	}
	if sys.icn == nil || sys.ps == nil || sys.spawn == nil || sys.master == nil {
		t.Fatal("missing components")
	}
	// Macro-actor grouping: all clusters in one actor, all modules in one.
	if sys.clusterMA.Len() != cfg.Clusters || sys.cacheMA.Len() != cfg.CacheModules {
		t.Fatal("macro-actor grouping wrong")
	}
}

// TestAddressHashingPartition: every address maps to exactly one module,
// and the distribution over lines is roughly balanced (the LS-unit hashing
// that avoids hotspots).
func TestAddressHashingPartition(t *testing.T) {
	sys, _ := buildSys(t, busyLoop, config.FPGA64())
	counts := make([]int, len(sys.modules))
	const lines = 1 << 14
	for i := 0; i < lines; i++ {
		addr := uint32(i * 32)
		m := sys.moduleOf(addr)
		if m < 0 || m >= len(sys.modules) {
			t.Fatalf("module %d out of range", m)
		}
		if m2 := sys.moduleOf(addr + 31); m2 != m {
			t.Fatalf("same line maps to different modules: %d vs %d", m, m2)
		}
		counts[m]++
	}
	want := lines / len(counts)
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("module %d holds %d lines (expected ~%d): hash unbalanced", m, c, want)
		}
	}
}

// dvfsProbe halves the cluster frequency at its first sample.
type dvfsProbe struct {
	interval int64
	samples  int
	slowed   bool
}

func (d *dvfsProbe) Name() string          { return "dvfs-probe" }
func (d *dvfsProbe) IntervalCycles() int64 { return d.interval }
func (d *dvfsProbe) Sample(snap *Snapshot, ctl *Control) {
	d.samples++
	if !d.slowed {
		if err := ctl.SetPeriod("cluster", 16); err != nil {
			panic(err)
		}
		d.slowed = true
	}
}

// TestActivityPluginDVFS: an activity plug-in samples at its interval and
// a frequency change actually slows the parallel section down.
func TestActivityPluginDVFS(t *testing.T) {
	spawnLoop := `
        .data
B:      .space 4096
        .text
main:   la    $t0, B
        bcast $t0
        li    $a0, 0
        li    $a1, 1023
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        li    $t2, 60
W:      addiu $t2, $t2, -1
        bgtz  $t2, W
        j     L
        join
        sys   0
`
	base, _ := buildSys(t, spawnLoop, config.FPGA64())
	resBase, err := base.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}

	slowed, _ := buildSys(t, spawnLoop, config.FPGA64())
	probe := &dvfsProbe{interval: 50}
	slowed.AddActivityPlugin(probe)
	resSlow, err := slowed.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if probe.samples == 0 {
		t.Fatal("plugin never sampled")
	}
	if resSlow.Ticks <= resBase.Ticks*13/10 {
		t.Fatalf("halving the cluster clock should stretch wall time: %d vs %d ticks",
			resSlow.Ticks, resBase.Ticks)
	}
}

// TestGatedDomainResumes: disabling the cluster domain stalls parallel
// progress; re-enabling it lets the program finish.
func TestGatedDomainResumes(t *testing.T) {
	sys, _ := buildSys(t, busyLoop, config.FPGA64())
	gated := false
	reEnabled := false
	sys.AddActivityPlugin(pluginFunc{
		name:     "gate",
		interval: 100,
		fn: func(snap *Snapshot, ctl *Control) {
			switch {
			case !gated:
				gated = true
				if err := ctl.Disable("master"); err != nil {
					t.Error(err)
				}
			case !reEnabled:
				reEnabled = true
				if err := ctl.Enable("master"); err != nil {
					t.Error(err)
				}
			}
		},
	})
	res, err := sys.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("program did not finish after re-enable: %+v", res)
	}
	if !gated || !reEnabled {
		t.Fatal("gating sequence did not run")
	}
}

type pluginFunc struct {
	name     string
	interval int64
	fn       func(*Snapshot, *Control)
}

func (p pluginFunc) Name() string                   { return p.name }
func (p pluginFunc) IntervalCycles() int64          { return p.interval }
func (p pluginFunc) Sample(s *Snapshot, c *Control) { p.fn(s, c) }

// TestCycleCheckpointResume: a sys checkpoint trap stops the simulation at
// a quiescent point; a fresh system restored from the capture finishes
// with the same result.
func TestCycleCheckpointResume(t *testing.T) {
	src := `
        .data
v:      .word 10
        .text
main:   lw    $t0, v
        sll   $t0, $t0, 1
        sw    $t0, v
        sys   5
        lw    $v0, v
        addiu $v0, $v0, 1
        sys   1
        sys   0
`
	sys1, out1 := buildSys(t, src, config.FPGA64())
	res1, err := sys1.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Checkpoint {
		t.Fatalf("expected a checkpoint stop, got %+v", res1)
	}
	st := sys1.Capture()

	sys2, out2 := buildSys(t, src, config.FPGA64())
	if err := sys2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	res2, err := sys2.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Halted {
		t.Fatal("resumed run did not halt")
	}
	if out2.String() != "21" {
		t.Fatalf("resumed output %q, want 21", out2.String())
	}
	if res2.Cycles <= st.CycleOffset {
		t.Fatal("cycle counting must continue from the checkpoint offset")
	}
	_ = out1
}

// TestPsmQueueingAtModule: simultaneous psm operations on one base are
// queued at its cache module and applied atomically — the total is exact
// (paper §II-A: "multiple operations that arrive at the same cache module
// will be queued").
func TestPsmQueueingAtModule(t *testing.T) {
	src := `
        .data
total:  .word 0
        .text
main:   la    $t0, total
        bcast $t0
        li    $a0, 0
        li    $a1, 511
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        addiu $t2, $zero, 3
        psm   $t2, 0($t0)
        j     L
        join
        lw    $v0, 0($t0)
        sys   1
        sys   0
`
	sys, out := buildSys(t, src, config.FPGA64())
	if _, err := sys.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if out.String() != fmt.Sprint(512*3) {
		t.Fatalf("psm total %q, want %d", out.String(), 512*3)
	}
	if sys.Stats.PsmOps != 512 {
		t.Fatalf("psm count %d", sys.Stats.PsmOps)
	}
}

// TestSharedFPUContention: with one FPU per cluster, FPU-heavy parallel
// code serializes inside clusters; widening FPUsPerCluster speeds it up.
func TestSharedFPUContention(t *testing.T) {
	src := `
        .data
B:      .space 1024
        .text
main:   la    $t0, B
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        cvt.s.w $t3, $tid
        add.s $t4, $t3, $t3
        mul.s $t4, $t4, $t3
        add.s $t4, $t4, $t3
        mul.s $t4, $t4, $t3
        cvt.w.s $t5, $t4
        sll   $t6, $tid, 2
        addu  $t6, $t0, $t6
        sw.nb $t5, 0($t6)
        j     L
        join
        sys   0
`
	narrow := config.FPGA64()
	narrow.FPUsPerCluster = 1
	wide := config.FPGA64()
	wide.FPUsPerCluster = 8

	s1, _ := buildSys(t, src, narrow)
	r1, err := s1.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := buildSys(t, src, wide)
	r2, err := s2.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles >= r1.Cycles {
		t.Fatalf("8 FPUs (%d cycles) should beat 1 FPU (%d cycles)", r2.Cycles, r1.Cycles)
	}
	if s1.Stats.Cluster[0].FPUWaitCycles == 0 {
		t.Fatal("expected FPU contention wait cycles with one FPU")
	}
}

// TestROCacheHits: repeated lwro to the same constant hits the cluster
// read-only cache after the first miss.
func TestROCacheHits(t *testing.T) {
	src := `
        .data
k:      .word 42
        .text
main:   la    $t0, k
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        lwro  $t2, 0($t0)
        lwro  $t3, 0($t0)
        lwro  $t4, 0($t0)
        j     L
        join
        sys   0
`
	sys, _ := buildSys(t, src, config.FPGA64())
	if _, err := sys.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if sys.Stats.ROHits == 0 {
		t.Fatal("no read-only cache hits")
	}
	if sys.Stats.ROHits <= sys.Stats.ROMisses {
		t.Fatalf("hits %d should exceed misses %d", sys.Stats.ROHits, sys.Stats.ROMisses)
	}
}

// TestHotLocationsIntegration: the filter plug-in identifies the hammered
// address as hottest.
func TestHotLocationsIntegration(t *testing.T) {
	src := `
        .data
hot:    .word 0
        .space 252
cold:   .word 0
        .text
main:   la    $t0, hot
        bcast $t0
        li    $a0, 0
        li    $a1, 127
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        addiu $t2, $zero, 1
        psm   $t2, 0($t0)
        j     L
        join
        lw    $t3, 256($t0)
        sys   0
`
	sys, _ := buildSys(t, src, config.FPGA64())
	h := stats.NewHotLocations(32, 3)
	sys.Stats.AddFilter(h)
	if _, err := sys.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	top := h.Top()
	if len(top) == 0 {
		t.Fatal("no hot locations recorded")
	}
	hotAddr, _ := sys.Prog.SymAddr("hot")
	if top[0].Addr != hotAddr/32*32 {
		t.Fatalf("hottest = 0x%x, want bucket of 0x%x", top[0].Addr, hotAddr)
	}
}

// TestRuntimeErrorSurfacing: faults inside parallel code stop the run
// with a located error.
func TestRuntimeErrorSurfacing(t *testing.T) {
	src := `
        .text
main:   li    $a0, 0
        li    $a1, 3
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        lui   $t2, 0x7f00
        lw    $t3, 0($t2)
        j     L
        join
        sys   0
`
	sys, _ := buildSys(t, src, config.FPGA64())
	_, err := sys.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "memory fault") {
		t.Fatalf("want surfaced memory fault, got %v", err)
	}
}

// TestCycleBudget: a non-halting program stops at the budget with
// TimedOut set.
func TestCycleBudget(t *testing.T) {
	src := `
        .text
main:   j main
`
	sys, _ := buildSys(t, src, config.FPGA64())
	res, err := sys.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Halted {
		t.Fatalf("want timeout, got %+v", res)
	}
}

func TestBcastSelectiveRegisters(t *testing.T) {
	// Only bcast-ed registers reach the TCUs; others read as zero.
	src := `
        .data
obs:    .word 0, 0
        .text
main:   la    $t0, obs
        li    $t1, 77
        li    $t2, 88
        bcast $t0
        bcast $t1
        li    $a0, 0
        li    $a1, 0
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sw.nb $t1, 0($t0)      # broadcast: 77
        sw.nb $t2, 4($t0)      # NOT broadcast: TCU-local zero
        j     L
        join
        lw    $v0, obs
        sys   1
        lw    $v0, 4($t0)
        sys   1
        sys   0
`
	sys, out := buildSys(t, src, config.FPGA64())
	if _, err := sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "770" {
		t.Fatalf("got %q, want %q (77 then 0)", out.String(), "770")
	}
	_ = isa.RegZero
}

// TestSpawnBarrier (Fig. 2b): a spawn statement is an implicit barrier —
// every store of spawn N (including posted non-blocking stores, which must
// drain before the join completes) is visible to spawn N+1 and to the
// serial code after it.
func TestSpawnBarrier(t *testing.T) {
	src := `
        .data
A:      .space 256
sum:    .word 0
        .text
main:   la    $t0, A
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        fence
        spawn $a0, $a1
L1:     addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        addiu $t2, $tid, 100
        sll   $t3, $tid, 2
        addu  $t3, $t0, $t3
        sw.nb $t2, 0($t3)        # A[$] = $+100, posted
        j     L1
        join
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        spawn $a0, $a1
L2:     addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t3, $tid, 2
        addu  $t3, $t0, $t3
        lw    $t4, 0($t3)        # must observe spawn 1's stores
        psm   $t4, 256($t0)      # sum += A[$]  (sum is at A+256)
        j     L2
        join
        lw    $v0, 256($t0)
        sys   1
        sys   0
`
	sys, out := buildSys(t, src, config.FPGA64())
	if _, err := sys.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(64*100 + 64*63/2)
	if out.String() != want {
		t.Fatalf("barrier leak: got %q, want %q", out.String(), want)
	}
}

// TestFetchOutsideBroadcastRegion: if (bypassing the post-pass) parallel
// code branches out of the spawn region, the TCU cannot fetch the target
// — the simulator reports it rather than silently executing.
func TestFetchOutsideBroadcastRegion(t *testing.T) {
	src := `
        .text
main:   li    $a0, 0
        li    $a1, 3
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        beq   $tid, $zero, escape   # illegal: target after the join
        j     L
        join
escape: nop
        sys   0
`
	sys, _ := buildSys(t, src, config.FPGA64())
	_, err := sys.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "broadcast region") {
		t.Fatalf("want broadcast-region fault, got %v", err)
	}
}

// TestManyVirtualThreads: far more virtual threads than TCUs — the
// prefix-sum grab loop load-balances dynamically (the "independence of
// order" property the XMT workflow relies on).
func TestManyVirtualThreads(t *testing.T) {
	src := `
        .data
sum:    .word 0
        .text
main:   la    $t0, sum
        bcast $t0
        li    $a0, 0
        li    $a1, 9999
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        addiu $t2, $zero, 1
        psm   $t2, 0($t0)
        j     L
        join
        lw    $v0, 0($t0)
        sys   1
        sys   0
`
	sys, out := buildSys(t, src, config.FPGA64())
	res, err := sys.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "10000" {
		t.Fatalf("got %q, want 10000", out.String())
	}
	if sys.Stats.VirtualThreads != 10000 {
		t.Fatalf("virtual threads = %d", sys.Stats.VirtualThreads)
	}
	if res.Cycles <= 0 {
		t.Fatal("no progress")
	}
}

// TestNegativeSpawnBounds: the paper only requires low <= $ <= high; ids
// may be negative.
func TestNegativeSpawnBounds(t *testing.T) {
	src := `
        .data
sum:    .word 0
        .text
main:   la    $t0, sum
        bcast $t0
        li    $a0, -5
        li    $a1, -1
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        move  $t2, $tid
        psm   $t2, 0($t0)
        j     L
        join
        lw    $v0, 0($t0)
        sys   1
        sys   0
`
	sys, out := buildSys(t, src, config.FPGA64())
	if _, err := sys.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "-15" {
		t.Fatalf("got %q, want -15 (sum of -5..-1)", out.String())
	}
	_ = sys
}
