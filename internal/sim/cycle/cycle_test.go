package cycle_test

import (
	"bytes"
	"sort"
	"testing"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
	"xmtgo/internal/sim/funcmodel"
)

const compactionAsm = `
        .data
A:      .word 5, 0, 3, 0, 0, 9, 1, 0
B:      .space 32
        .text
        .global main
main:
        la    $t0, A
        la    $t1, B
        grw   $zero, g0
        bcast $t0
        bcast $t1
        li    $a0, 0
        li    $a1, 7
        fence
        spawn $a0, $a1
Lgrab:  addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 2
        addu  $t2, $t0, $t2
        lw    $t3, 0($t2)
        beq   $t3, $zero, Lskip
        addiu $t4, $zero, 1
        ps    $t4, g0
        sll   $t4, $t4, 2
        addu  $t4, $t1, $t4
        sw    $t3, 0($t4)
Lskip:  j     Lgrab
        join
        grr   $v0, g0
        sys   1
        sys   0
`

func mustProgram(t testing.TB, src string) *asm.Program {
	t.Helper()
	u, err := asm.Parse("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := asm.Assemble(u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func runCycle(t testing.TB, src string, cfg config.Config, maxCycles int64) (*cycle.System, *cycle.Result, string) {
	t.Helper()
	p := mustProgram(t, src)
	var out bytes.Buffer
	sys, err := cycle.New(p, cfg, &out)
	if err != nil {
		t.Fatalf("cycle.New: %v", err)
	}
	res, err := sys.Run(maxCycles)
	if err != nil {
		t.Fatalf("run: %v (out=%q)", err, out.String())
	}
	return sys, res, out.String()
}

func TestArrayCompactionCycleAccurate(t *testing.T) {
	sys, res, out := runCycle(t, compactionAsm, config.FPGA64(), 2_000_000)
	if !res.Halted {
		t.Fatalf("did not halt: %+v", res)
	}
	if out != "4" {
		t.Fatalf("printed %q, want 4", out)
	}
	bAddr, _ := sys.Prog.SymAddr("B")
	var got []int
	for i := 0; i < 4; i++ {
		v, err := sys.Machine.ReadWord(bAddr + uint32(4*i))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, int(v))
	}
	sort.Ints(got)
	want := []int{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("B = %v, want permutation of %v", got, want)
		}
	}
	if res.Cycles <= 0 {
		t.Fatalf("no cycles elapsed: %+v", res)
	}
	if sys.Stats.SpawnCount != 1 {
		t.Fatalf("spawns = %d, want 1", sys.Stats.SpawnCount)
	}
	if sys.Stats.VirtualThreads != 8 {
		t.Fatalf("virtual threads = %d, want 8", sys.Stats.VirtualThreads)
	}
}

// TestCycleMatchesFunctional cross-checks the two simulation modes on the
// same program: identical architectural outcome (paper Fig. 3: same
// functional model underneath).
func TestCycleMatchesFunctional(t *testing.T) {
	src := `
        .data
A:      .space 256
        .text
main:
        la    $t0, A
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        mul   $t2, $tid, $tid
        sll   $t3, $tid, 2
        addu  $t3, $t0, $t3
        sw.nb $t2, 0($t3)       # A[$] = $*$
        j     L
        join
        li    $t4, 0
        li    $t5, 0
        la    $t0, A
sum:    lw    $t6, 0($t0)
        addu  $t4, $t4, $t6
        addiu $t0, $t0, 4
        addiu $t5, $t5, 1
        slti  $at, $t5, 64
        bne   $at, $zero, sum
        move  $v0, $t4
        sys   1
        sys   0
`
	p := mustProgram(t, src)
	fm, err := funcmodel.New(p, config.FPGA64().MemBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fOut bytes.Buffer
	fm.Out = &fOut
	if err := fm.Run(10_000_000); err != nil {
		t.Fatal(err)
	}

	_, res, cOut := runCycle(t, src, config.FPGA64(), 10_000_000)
	if !res.Halted {
		t.Fatalf("cycle mode did not halt")
	}
	if fOut.String() != cOut {
		t.Fatalf("functional printed %q, cycle printed %q", fOut.String(), cOut)
	}
	want := 0
	for i := 0; i < 64; i++ {
		want += i * i
	}
	if cOut != itoa(want) {
		t.Fatalf("printed %q, want %d", cOut, want)
	}
}

func itoa(v int) string {
	var b bytes.Buffer
	b.WriteString("")
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestSerialOnlyProgram(t *testing.T) {
	src := `
        .text
main:
        li   $t0, 10
        li   $t1, 0
L:      addu $t1, $t1, $t0
        addiu $t0, $t0, -1
        bgtz $t0, L
        move $v0, $t1
        sys  1
        sys  0
`
	_, res, out := runCycle(t, src, config.FPGA64(), 1_000_000)
	if out != "55" {
		t.Fatalf("printed %q, want 55", out)
	}
	if !res.Halted {
		t.Fatal("not halted")
	}
}

func TestChip1024Compaction(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-TCU config in -short mode")
	}
	_, res, out := runCycle(t, compactionAsm, config.Chip1024(), 5_000_000)
	if out != "4" {
		t.Fatalf("printed %q, want 4", out)
	}
	if !res.Halted {
		t.Fatal("not halted")
	}
}
