package cycle

import (
	"testing"

	"xmtgo/internal/config"
)

// The paper's reason #3 for publishing the toolchain: "the simulator
// allows users to change the parameters of the simulated architecture …
// making it the ideal platform for evaluating both architectural
// extensions and algorithmic improvements". These tests sweep individual
// parameters and assert the performance moves the way the architecture
// says it must — the sanity contract a design-space exploration tool owes
// its users.

func runCycles(t *testing.T, src string, cfg config.Config) int64 {
	t.Helper()
	sys, _ := buildSys(t, src, cfg)
	res, err := sys.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	return res.Cycles
}

const dramBound = `
        .data
A:      .space 65536
        .text
main:   la    $t0, A
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 10       # 1 KiB apart: every load its own line
        addu  $t2, $t0, $t2
        lw    $t3, 0($t2)
        lw    $t4, 256($t2)
        lw    $t5, 512($t2)
        lw    $t6, 768($t2)
        j     L
        join
        sys   0
`

// TestSweepDRAMPorts: cold-miss traffic speeds up with more DRAM channels.
func TestSweepDRAMPorts(t *testing.T) {
	narrow := config.FPGA64()
	narrow.DRAMPorts = 1
	wide := config.FPGA64()
	wide.DRAMPorts = 8
	c1 := runCycles(t, dramBound, narrow)
	c8 := runCycles(t, dramBound, wide)
	if c8 >= c1 {
		t.Fatalf("8 DRAM ports (%d cycles) should beat 1 port (%d cycles)", c8, c1)
	}
}

// TestSweepDRAMLatency: higher DRAM latency slows cold-miss traffic.
func TestSweepDRAMLatency(t *testing.T) {
	fast := config.FPGA64()
	fast.DRAMLatency = 10
	slow := config.FPGA64()
	slow.DRAMLatency = 200
	cf := runCycles(t, dramBound, fast)
	cs := runCycles(t, dramBound, slow)
	if cs <= cf {
		t.Fatalf("200-cycle DRAM (%d) should be slower than 10-cycle DRAM (%d)", cs, cf)
	}
}

// TestSweepCacheSize: a cache too small for the working set thrashes; a
// large one keeps the re-walk resident.
func TestSweepCacheSize(t *testing.T) {
	// Two sweeps over a 16 KiB array: the second sweep hits iff the cache
	// holds the array.
	src := `
        .data
A:      .space 16384
        .text
main:   li   $t5, 2
sweep:  la   $t0, A
        li   $t1, 512
L:      lw   $t2, 0($t0)
        addiu $t0, $t0, 32
        addiu $t1, $t1, -1
        bgtz $t1, L
        addiu $t5, $t5, -1
        bgtz $t5, sweep
        sys  0
`
	tiny := config.FPGA64()
	tiny.CacheLinesPerMod = 8 // 8 modules * 8 lines * 32B = 2 KiB total
	big := config.FPGA64()
	big.CacheLinesPerMod = 1024 // 256 KiB total
	// Master-side sweeps go through the master cache; shrink it too so the
	// shared cache is what matters.
	tiny.MasterCacheLines = 4
	big.MasterCacheLines = 4
	ct := runCycles(t, src, tiny)
	cb := runCycles(t, src, big)
	if cb >= ct {
		t.Fatalf("large shared cache (%d cycles) should beat thrashing cache (%d cycles)", cb, ct)
	}
}

// TestSweepClusterCount: with abundant parallelism, more clusters finish
// sooner (the 64 -> 1024 TCU scaling the toolchain was built to study).
func TestSweepClusterCount(t *testing.T) {
	src := `
        .data
B:      .space 8192
        .text
main:   la    $t0, B
        bcast $t0
        li    $a0, 0
        li    $a1, 2047
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        sll   $t2, $tid, 1
        andi  $t3, $tid, 1023
        sll   $t3, $t3, 2
        addu  $t3, $t0, $t3
        sw.nb $t2, 0($t3)
        li    $t4, 20
W:      addiu $t4, $t4, -1
        bgtz  $t4, W
        j     L
        join
        sys   0
`
	small := config.FPGA64()
	small.Clusters = 2
	small.CacheModules = 2
	big := config.FPGA64() // 8 clusters
	cs := runCycles(t, src, small)
	cb := runCycles(t, src, big)
	if cb >= cs {
		t.Fatalf("8 clusters (%d cycles) should beat 2 clusters (%d cycles)", cb, cs)
	}
}

// TestSweepPSThroughput: narrow prefix-sum combining hardware slows
// grab-dominated fine-grained spawns.
func TestSweepPSThroughput(t *testing.T) {
	src := `
        .data
B:      .space 8192
        .text
main:   la    $t0, B
        bcast $t0
        li    $a0, 0
        li    $a1, 2047
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        andi  $t3, $tid, 1023
        sll   $t3, $t3, 2
        addu  $t3, $t0, $t3
        sw.nb $tid, 0($t3)
        j     L
        join
        sys   0
`
	narrow := config.FPGA64()
	narrow.PSPerCycle = 1
	wide := config.FPGA64()
	wide.PSPerCycle = 64
	cn := runCycles(t, src, narrow)
	cw := runCycles(t, src, wide)
	if cw >= cn {
		t.Fatalf("wide PS combining (%d cycles) should beat 1/cycle (%d cycles)", cw, cn)
	}
}
