package cycle

import (
	"fmt"

	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/fault"
	"xmtgo/internal/sim/trace"
)

// This file wires the fault-injection plan (internal/sim/fault) into the
// cycle-accurate machine and implements graceful degradation: a permanently
// failed TCU is decommissioned at a safe point and its in-flight virtual
// thread re-dispatched to a surviving TCU via the spawn unit
// (docs/ROBUSTNESS.md).
//
// Determinism contract: every fault decision and mutation happens in a
// serial context — scheduled fault events (which never overlap the parallel
// cluster compute phase), the ICN/cache macro-actors, and outbox commits —
// so fault-injected runs remain bit-identical for any host worker count,
// the same contract every other shared effect follows.

// prioFault fires fault events just before same-edge clock notifications,
// so a fault scheduled for cycle C is architecturally visible to cycle C.
const prioFault = engine.PrioClock - 1

// injector owns one run's materialized fault schedule.
type injector struct {
	sys  *System
	plan []fault.Fault

	// icnArmed queues fired ICN faults; each is consumed by (and applied
	// to) the next package injected into the interconnect.
	icnArmed []fault.Fault
}

func newInjector(s *System) (*injector, error) {
	cfg := s.Cfg
	plan, err := fault.Plan(cfg.FaultSeed, cfg.FaultPlan, fault.Shape{
		Clusters:       cfg.Clusters,
		TCUsPerCluster: cfg.TCUsPerCluster,
		CacheModules:   cfg.CacheModules,
		MemBytes:       cfg.MemBytes,
	})
	if err != nil {
		return nil, err
	}
	return &injector{sys: s, plan: plan}, nil
}

// schedule arms every planned fault at its cluster-cycle edge. Plan cycles
// are absolute (including any resume offset): faults at or before the
// offset already fired in the checkpointed prefix of the run and are
// skipped, so a resumed run continues the same plan it started with.
func (inj *injector) schedule() {
	off := inj.sys.cycleOffset
	for i := range inj.plan {
		f := inj.plan[i]
		if f.Cycle <= off {
			continue
		}
		at := inj.sys.clusterClock.EdgeAt(f.Cycle - off)
		inj.sys.Sched.ScheduleFunc(at, prioFault, func(t engine.Time) {
			inj.apply(f, t)
		})
	}
}

// apply injects one fault. Runs on the scheduler goroutine between cluster
// ticks, so it may touch any state directly.
func (inj *injector) apply(f fault.Fault, now engine.Time) {
	s := inj.sys
	if s.Sched.Stopped() || s.err != nil || s.halted {
		return
	}
	switch f.Kind {
	case fault.MemFlip:
		if int64(f.Addr) < int64(len(s.Machine.Mem)) {
			s.Machine.Mem[f.Addr] ^= 1 << (f.Bit & 7)
			s.Machine.MarkMemDirty(f.Addr, f.Addr+1)
		}
		s.Stats.MemFaults++
		inj.emit(f, -1, now)
	case fault.RegFlip:
		t := s.tcuByID(f.TCU)
		if t.alive {
			t.ctx.Reg[f.Reg&31] ^= 1 << (f.Bit & 31)
		}
		s.Stats.RegFaults++
		inj.emit(f, int32(f.TCU), now)
	case fault.ICNDelay:
		s.Stats.ICNDelayFaults++
		inj.icnArmed = append(inj.icnArmed, f)
		inj.emit(f, -1, now)
	case fault.ICNDup:
		s.Stats.ICNDupFaults++
		inj.icnArmed = append(inj.icnArmed, f)
		inj.emit(f, -1, now)
	case fault.ICNDrop:
		s.Stats.ICNDropFaults++
		inj.icnArmed = append(inj.icnArmed, f)
		inj.emit(f, -1, now)
	case fault.CacheStall:
		cm := s.modules[f.Module]
		until := now + f.Mag*s.Cfg.CachePeriod
		if until > cm.stalledUntil {
			cm.stalledUntil = until
		}
		s.Stats.CacheStallFaults++
		s.wakeCaches(now)
		inj.emit(f, -1, now)
	case fault.TCUFail:
		s.Stats.TCUFailFaults++
		inj.emit(f, int32(f.TCU), now)
		s.failTCU(s.tcuByID(f.TCU), now)
	case fault.ClusterFail:
		s.Stats.ClusterFailFaults++
		inj.emit(f, -1, now)
		for _, t := range s.clusters[f.Cluster].tcus {
			s.failTCU(t, now)
		}
	}
}

// syncICNFault applies the next armed ICN fault to a package injected by
// the clocked interconnect, returning the adjusted arrival time and whether
// a ghost duplicate should ride along. ICN.Tick is a serial macro-actor, so
// consuming the queue here is deterministic.
func (inj *injector) syncICNFault(ready engine.Time, latency engine.Time) (engine.Time, bool) {
	f := inj.icnArmed[0]
	inj.icnArmed = inj.icnArmed[1:]
	switch f.Kind {
	case fault.ICNDelay:
		return ready + f.Mag*inj.sys.Cfg.ICNPeriod, false
	case fault.ICNDrop:
		// Lossless retransmission: the package re-traverses after Mag×
		// the base latency instead of disappearing.
		return ready + f.Mag*latency, false
	case fault.ICNDup:
		return ready, true
	}
	return ready, false
}

// asyncICNFault is the asynchronous-interconnect counterpart: it shifts the
// handshake arrival time. Duplication has no timing effect in the
// handshake network (the ghost would be dropped at the port), so ICNDup is
// counted but a no-op here; docs/ROBUSTNESS.md records the asymmetry.
func (inj *injector) asyncICNFault(arrive engine.Time) engine.Time {
	f := inj.icnArmed[0]
	inj.icnArmed = inj.icnArmed[1:]
	cfg := inj.sys.Cfg
	switch f.Kind {
	case fault.ICNDelay:
		return arrive + f.Mag*cfg.ICNAsyncHopTicks
	case fault.ICNDrop:
		return arrive + f.Mag*int64(inj.sys.icn.hopsPerTraversal)*cfg.ICNAsyncHopTicks
	}
	return arrive
}

func (inj *injector) emit(f fault.Fault, ctx int32, now engine.Time) {
	if inj.sys.evlog != nil {
		inj.sys.evlog.Emit(trace.Event{TS: now, Kind: trace.EvFault, Ctx: ctx, Arg: int64(f.Kind)})
	}
}

// tcuByID returns the TCU with the given global index.
func (s *System) tcuByID(id int) *TCU {
	return s.clusters[id/s.Cfg.TCUsPerCluster].tcus[id%s.Cfg.TCUsPerCluster]
}

// failTCU injects a permanent failure into one TCU. Runs on the scheduler
// goroutine. An idle or already-done TCU decommissions immediately; a TCU
// mid-thread is marked failing and decommissions itself at its next safe
// point in the compute phase (no in-flight blocking request, posted stores
// drained), routing the decommission through the outbox so the spawn-unit
// bookkeeping stays in deterministic commit order.
func (s *System) failTCU(t *TCU, now engine.Time) {
	if !t.alive || t.failing {
		return
	}
	switch t.state {
	case tcuIdle:
		// Not participating in a spawn: nothing to hand off.
		s.decommissionTCU(t, false, false, now)
	case tcuDone:
		// Participating but finished: no live thread to orphan. (Between
		// scheduler events a done TCU's completion is always already
		// counted — finish and its commit happen inside one event.)
		s.decommissionTCU(t, true, false, now)
	default:
		t.failing = true
		s.wakeClusters(now)
	}
}

// decommissionTCU permanently removes a TCU from the machine: graceful
// degradation instead of killing the run. participating says the TCU was
// part of the active spawn; hasThread says its context holds a live virtual
// thread that must be re-dispatched. Serial contexts only (fault events,
// outbox commit, deliveries).
func (s *System) decommissionTCU(t *TCU, participating, hasThread bool, now engine.Time) {
	if !t.alive {
		return
	}
	t.alive = false
	t.failing = false
	t.setState(tcuDead)
	t.pendingSend = nil
	s.aliveTCUs--
	s.Stats.TCUsDecommissioned++
	if s.evlog != nil {
		s.evlog.Emit(trace.Event{TS: now, Kind: trace.EvDecommission, Ctx: int32(t.id)})
	}
	if s.aliveTCUs == 0 {
		s.fail(fmt.Errorf("cycle: all %d TCUs decommissioned; the machine cannot make progress", s.Cfg.TCUs()))
		return
	}
	if participating {
		s.spawn.decommission(t, hasThread, now)
	}
}

// armWatchdog schedules the no-retire progress watchdog: if a full
// WatchdogCycles window passes without a single retired instruction while
// the program has not halted, the run fails with a diagnostic instead of
// spinning forever (the replacement for relying solely on a drained event
// list to detect wedged simulations). The check is read-only until it
// trips, so enabling it never perturbs simulation results.
func (s *System) armWatchdog(lastInstrs uint64) {
	period := s.clusterClock.Period()
	if period <= 0 {
		period = s.Cfg.ClusterPeriod // domain gated: fall back to nominal
	}
	at := s.Sched.Now() + s.Cfg.WatchdogCycles*period
	s.Sched.ScheduleFunc(at, engine.PrioStop-2, func(t engine.Time) {
		if s.Sched.Stopped() {
			return
		}
		cur := s.Stats.TotalInstrs()
		if cur == lastInstrs {
			s.fail(fmt.Errorf("cycle: watchdog: no instruction retired in %d cluster cycles (cycle %d, %d instructions total): simulation is wedged",
				s.Cfg.WatchdogCycles, s.cycleOffset+s.clusterClock.Cycle(t), cur))
			return
		}
		s.armWatchdog(cur)
	})
}
