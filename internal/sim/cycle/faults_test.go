package cycle_test

import (
	"bytes"
	"strings"
	"testing"

	"xmtgo/internal/config"
	"xmtgo/internal/sim/cycle"
)

// sumSquaresAsm computes sum(i*i, i=0..63) in parallel and prints it; every
// virtual thread does real work, so it exercises re-dispatch when TCUs are
// decommissioned mid-run.
const sumSquaresAsm = `
        .data
A:      .space 256
        .text
main:
        la    $t0, A
        bcast $t0
        li    $a0, 0
        li    $a1, 63
        fence
        spawn $a0, $a1
L:      addiu $tid, $zero, 1
        ps    $tid, g63
        chkid $tid
        li    $t2, 0
        move  $t6, $tid
Lk:     beq   $t6, $zero, Ld       # t2 = tid*tid by repeated addition, so
        addu  $t2, $t2, $tid       # each thread runs long enough that
        addiu $t6, $t6, -1         # mid-thread faults orphan live threads
        j     Lk
Ld:     sll   $t3, $tid, 2
        addu  $t3, $t0, $t3
        sw.nb $t2, 0($t3)
        j     L
        join
        li    $t4, 0
        li    $t5, 0
        la    $t0, A
sum:    lw    $t6, 0($t0)
        addu  $t4, $t4, $t6
        addiu $t0, $t0, 4
        addiu $t5, $t5, 1
        slti  $at, $t5, 64
        bne   $at, $zero, sum
        move  $v0, $t4
        sys   1
        sys   0
`

const sumSquares = "85344" // sum i^2 for i=0..63

// TestDegradedRunCompletes injects permanent TCU failures mid-spawn and
// checks graceful degradation: the run completes with the correct result on
// the surviving TCUs, and the decommissions are visible in the counters.
func TestDegradedRunCompletes(t *testing.T) {
	cfg := config.FPGA64()
	cfg.FaultPlan = "tcufail:8@50-400"
	cfg.FaultSeed = 3
	sys, res, out := runCycle(t, sumSquaresAsm, cfg, 10_000_000)
	if !res.Halted {
		t.Fatalf("did not halt: %+v", res)
	}
	if out != sumSquares {
		t.Fatalf("printed %q, want %s", out, sumSquares)
	}
	if got := sys.Stats.TCUsDecommissioned; got != 8 {
		t.Fatalf("TCUsDecommissioned = %d, want 8", got)
	}
	if got := sys.Stats.TCUFailFaults; got != 8 {
		t.Fatalf("TCUFailFaults = %d, want 8", got)
	}
	if sys.Stats.FaultsInjected() != 8 {
		t.Fatalf("FaultsInjected = %d, want 8", sys.Stats.FaultsInjected())
	}
	// At least one failure lands mid-thread, so the orphaned virtual thread
	// must have been re-dispatched to a survivor (the run is deterministic,
	// so this is stable).
	if sys.Stats.Redispatches == 0 {
		t.Fatal("no virtual-thread re-dispatches despite mid-thread TCU failures")
	}
	if sys.Stats.RedispatchLatency.Count != sys.Stats.Redispatches {
		t.Fatalf("latency histogram count %d != redispatches %d",
			sys.Stats.RedispatchLatency.Count, sys.Stats.Redispatches)
	}
}

// TestClusterFailDegradesGracefully kills whole clusters and still expects
// the correct result from the survivors.
func TestClusterFailDegradesGracefully(t *testing.T) {
	cfg := config.FPGA64()
	cfg.FaultPlan = "clusterfail:2@50-400"
	cfg.FaultSeed = 5
	sys, res, out := runCycle(t, sumSquaresAsm, cfg, 10_000_000)
	if !res.Halted {
		t.Fatalf("did not halt: %+v", res)
	}
	if out != sumSquares {
		t.Fatalf("printed %q, want %s", out, sumSquares)
	}
	if got := sys.Stats.TCUsDecommissioned; got != 16 {
		t.Fatalf("TCUsDecommissioned = %d, want 16 (2 clusters of 8)", got)
	}
}

// TestBenignFaultsPreserveResult injects only timing faults (ICN delay/dup/
// drop-with-retransmit and cache stalls), which perturb when packages move
// but never what they carry: the architectural result must be unchanged.
func TestBenignFaultsPreserveResult(t *testing.T) {
	cfg := config.FPGA64()
	cfg.FaultPlan = "icndelay:6x40@50-400;icndup:4@50-400;icndrop:3x4@50-400;cachestall:3x200@50-400"
	cfg.FaultSeed = 7
	sys, res, out := runCycle(t, sumSquaresAsm, cfg, 10_000_000)
	if !res.Halted {
		t.Fatalf("did not halt: %+v", res)
	}
	if out != sumSquares {
		t.Fatalf("printed %q, want %s", out, sumSquares)
	}
	if got := sys.Stats.FaultsInjected(); got != 16 {
		t.Fatalf("FaultsInjected = %d, want 16", got)
	}
}

// TestFaultDeterminismAcrossWorkers runs a mixed fault plan — including
// state-corrupting flips — at host_workers 1, 2 and 4 and requires the runs
// to be bit-identical: same output, same final result, same counter report.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	type capture struct {
		out      string
		counters string
		errStr   string
		halted   bool
		cycles   int64
	}
	run := func(workers int) capture {
		cfg := config.FPGA64()
		cfg.HostWorkers = workers
		cfg.FaultPlan = "memflip:4@50-400;regflip:2@50-400;icndelay:3@50-400;icndup:2@50-400;icndrop:2@50-400;cachestall:2x100@50-400;tcufail:2@50-400"
		cfg.FaultSeed = 11
		p := mustProgram(t, sumSquaresAsm)
		var out bytes.Buffer
		sys, err := cycle.New(p, cfg, &out)
		if err != nil {
			t.Fatalf("cycle.New: %v", err)
		}
		res, err := sys.Run(10_000_000)
		c := capture{out: out.String(), halted: res.Halted, cycles: res.Cycles}
		if err != nil {
			c.errStr = err.Error()
		}
		var rep bytes.Buffer
		sys.Stats.ReportCounters(&rep)
		c.counters = rep.String()
		return c
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		if got != ref {
			t.Fatalf("workers=%d diverged from workers=1:\nref: halted=%v cycles=%d err=%q out=%q\ngot: halted=%v cycles=%d err=%q out=%q\ncounters equal: %v",
				w, ref.halted, ref.cycles, ref.errStr, ref.out,
				got.halted, got.cycles, got.errStr, got.out, got.counters == ref.counters)
		}
	}
}

// TestWatchdogTripsOnLivelock wedges the memory system with a long injected
// cache stall and expects the watchdog — not a hang or a drained-event-list
// heuristic — to convert the livelock into a diagnostic error within the
// configured window.
func TestWatchdogTripsOnLivelock(t *testing.T) {
	cfg := config.FPGA64()
	// Stall every module long enough that no load can ever complete within
	// the watchdog window; the pending requests keep the cache domain
	// ticking, so the event list never drains.
	cfg.FaultPlan = "cachestall:8x100000000@100-120"
	cfg.FaultSeed = 2
	cfg.WatchdogCycles = 3000
	p := mustProgram(t, sumSquaresAsm)
	var out bytes.Buffer
	sys, err := cycle.New(p, cfg, &out)
	if err != nil {
		t.Fatalf("cycle.New: %v", err)
	}
	res, err := sys.Run(0)
	if err == nil {
		t.Fatalf("run completed (%+v) despite a permanent stall", res)
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error %q does not mention the watchdog", err)
	}
	if res.Cycles > 10*cfg.WatchdogCycles {
		t.Fatalf("watchdog took %d cycles to trip (window %d)", res.Cycles, cfg.WatchdogCycles)
	}
}

// TestWatchdogQuietOnHealthyRun checks the watchdog never fires on a run
// that makes progress, even with a small window.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := config.FPGA64()
	cfg.WatchdogCycles = 500
	_, res, out := runCycle(t, sumSquaresAsm, cfg, 10_000_000)
	if !res.Halted {
		t.Fatalf("did not halt: %+v", res)
	}
	if out != sumSquares {
		t.Fatalf("printed %q, want %s", out, sumSquares)
	}
}

// TestAllTCUsDecommissionedFails checks that wiping out every TCU is a
// diagnosed error, not a hang. The plan validator refuses plans that kill
// everyone, so build the system with a near-total plan and a tiny machine.
func TestAllTCUsDecommissionedFails(t *testing.T) {
	cfg := config.FPGA64()
	cfg.FaultPlan = "tcufail:64"
	if _, err := cycle.New(mustProgram(t, sumSquaresAsm), cfg, nil); err == nil ||
		!strings.Contains(err.Error(), "survive") {
		t.Fatalf("total-wipeout plan accepted: %v", err)
	}
}

// TestFaultSeedChangesPlan checks different seeds produce observably
// different fault schedules (cycle counts differ).
func TestFaultSeedChangesPlan(t *testing.T) {
	run := func(seed uint64) int64 {
		cfg := config.FPGA64()
		cfg.FaultPlan = "cachestall:4x500@50-400"
		cfg.FaultSeed = seed
		_, res, out := runCycle(t, sumSquaresAsm, cfg, 10_000_000)
		if !res.Halted || out != sumSquares {
			t.Fatalf("seed %d: halted=%v out=%q", seed, res.Halted, out)
		}
		return res.Cycles
	}
	if a, b := run(1), run(99); a == b {
		t.Logf("seeds 1 and 99 happened to finish in the same cycle count (%d); plans may still differ", a)
	}
}
