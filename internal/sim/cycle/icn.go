package cycle

import (
	"xmtgo/internal/sim/engine"
)

// ICN models the high-throughput mesh-of-trees interconnection network
// between clusters (plus the Master TCU's dedicated send path) and the
// shared cache modules. It is implemented as a macro-actor — exactly the
// case the paper singles out (§III-D): the network touches every cluster
// every cycle, so per-component events would cross the scheduling-overhead
// threshold; instead one actor iterates all ports per ICN cycle.
//
// Timing model (transaction level): a package injected at cycle T arrives
// at its cache module's input after the base traversal latency; each
// cluster may inject ICNInjectPerCyc packages per cycle and each module
// accepts ICNAcceptPerCyc per cycle into a bounded service queue —
// contention beyond that queues in the network, which is how hotspots slow
// down exactly as the address-hashing discussion in the paper expects.
type ICN struct {
	sys *System

	// arrival[m] holds packages in flight to module m with their earliest
	// acceptance time.
	arrival [][]arrivalPkt

	hopsPerTraversal int
}

type arrivalPkt struct {
	p     *Package
	ready engine.Time
	// ghost marks an injected duplicate (ICNDup fault): it consumes an
	// accept slot at the module port and is then discarded, never reaching
	// the service queue (packages are idempotent at most one delivery).
	ghost bool
}

func newICN(sys *System) *ICN {
	depth := int(log2u(uint32(sys.Cfg.Clusters))) + int(log2u(uint32(sys.Cfg.CacheModules))) + 2
	return &ICN{
		sys:              sys,
		arrival:          make([][]arrivalPkt, sys.Cfg.CacheModules),
		hopsPerTraversal: depth,
	}
}

// asyncSend routes one package over the asynchronous interconnect variant
// (paper §III-F, following the GALS network of [39]): instead of clocked
// hops, the package advances with continuous-time handshake delays — no
// quantization to ICN clock edges. This exercises the DE engine's
// continuous time concept; a DT simulator could not express it. Injection
// ports space packages by ICNAsyncGapTicks; delivery retries while the
// module's service queue is full.
func (s *System) asyncSend(p *Package, port int, now engine.Time) {
	s.Stats.ICNTraversals++
	s.Stats.ICNHops += uint64(s.icn.hopsPerTraversal)
	s.scheduleAsyncDeliver(p, s.asyncDepart(p, port, now))
}

// asyncDepart reserves the injection port and returns the arrival time.
// Safe in the cluster compute phase: each port index is owned by exactly
// one cluster (or the master), so the port-free bookkeeping is local.
func (s *System) asyncDepart(p *Package, port int, now engine.Time) engine.Time {
	cfg := s.Cfg
	start := now
	if s.asyncPortFree[port] > start {
		start = s.asyncPortFree[port]
	}
	s.asyncPortFree[port] = start + cfg.ICNAsyncGapTicks
	p.Hops += s.icn.hopsPerTraversal
	return start + int64(s.icn.hopsPerTraversal)*cfg.ICNAsyncHopTicks
}

// scheduleAsyncDeliver schedules the package's handshake delivery; it
// retries while the module's service queue is full. Serial contexts only
// (the cluster compute phase defers it through the outbox).
func (s *System) scheduleAsyncDeliver(p *Package, arrive engine.Time) {
	cfg := s.Cfg
	// Armed ICN faults shift the handshake arrival. Consumed here — the
	// serial point every async send funnels through — not in asyncDepart,
	// which runs in the parallel compute phase.
	if inj := s.injector; inj != nil && len(inj.icnArmed) > 0 {
		arrive = inj.asyncICNFault(arrive)
	}
	var deliver func(t engine.Time)
	deliver = func(t engine.Time) {
		mod := s.modules[p.Module]
		if mod.accept(p) {
			s.wakeCaches(t)
			return
		}
		s.Stats.CacheQueueFull[p.Module]++
		s.Sched.ScheduleFunc(t+cfg.CachePeriod, engine.PrioTransfer, deliver)
	}
	s.Sched.ScheduleFunc(arrive, engine.PrioTransfer, deliver)
}

// returnLatency is the response-path delay from a cache module back to the
// requester under the configured interconnect variant.
func (s *System) returnLatency() engine.Time {
	if s.Cfg.ICNAsync {
		return int64(s.icn.hopsPerTraversal) * s.Cfg.ICNAsyncHopTicks
	}
	return s.Cfg.ICNBaseLatency * s.Cfg.ICNPeriod
}

// Tick drains cluster and master injection queues and feeds module queues.
func (n *ICN) Tick(cycle int64, now engine.Time) bool {
	cfg := n.sys.Cfg
	latency := cfg.ICNBaseLatency * cfg.ICNPeriod
	busy := false

	inj := n.sys.injector
	inject := func(q *[]*Package, budget int) {
		qq := *q
		k := 0
		for k < budget && k < len(qq) {
			p := qq[k]
			k++
			n.sys.Stats.ICNTraversals++
			n.sys.Stats.ICNHops += uint64(n.hopsPerTraversal)
			p.Hops += n.hopsPerTraversal
			ready := now + latency
			ghost := false
			if inj != nil && len(inj.icnArmed) > 0 {
				// The ICN macro-actor is serial: consuming the armed-fault
				// queue here keeps faulty runs deterministic.
				ready, ghost = inj.syncICNFault(ready, latency)
			}
			n.arrival[p.Module] = append(n.arrival[p.Module], arrivalPkt{p: p, ready: ready})
			if ghost {
				n.arrival[p.Module] = append(n.arrival[p.Module], arrivalPkt{p: p, ready: ready, ghost: true})
			}
		}
		if k > 0 {
			// Shift the remainder down in place: slicing the head off
			// (q = q[1:]) would strand the backing array and force the
			// sender to reallocate on every append.
			rest := copy(qq, qq[k:])
			for i := rest; i < len(qq); i++ {
				qq[i] = nil
			}
			*q = qq[:rest]
		}
	}
	for _, c := range n.sys.clusters {
		inject(&c.sendQ, cfg.ICNInjectPerCyc)
		if len(c.sendQ) > 0 {
			busy = true
		}
	}
	inject(&n.sys.master.sendQ, cfg.ICNInjectPerCyc)
	if len(n.sys.master.sendQ) > 0 {
		busy = true
	}

	// Hand arrived packages to the modules, honoring their accept rate and
	// service-queue capacity. earliest/blocked drive the idle-skip below.
	earliest := engine.MaxTime
	blocked := false
	for m := range n.arrival {
		q := n.arrival[m]
		if len(q) == 0 {
			continue
		}
		mod := n.sys.modules[m]
		accepted := 0
		i := 0
		for ; i < len(q); i++ {
			if q[i].ready > now || accepted >= cfg.ICNAcceptPerCyc {
				break
			}
			if q[i].ghost {
				// Duplicate from an ICNDup fault: burns an accept slot,
				// then the port's dedup logic discards it.
				accepted++
				continue
			}
			if !mod.accept(q[i].p) {
				n.sys.Stats.CacheQueueFull[m]++
				break
			}
			accepted++
		}
		if i > 0 {
			n.arrival[m] = append(q[:0], q[i:]...)
		}
		for _, a := range n.arrival[m] {
			if a.ready <= now {
				// Deferred by the accept budget or module backpressure:
				// must retry next cycle.
				blocked = true
			} else if a.ready < earliest {
				earliest = a.ready
			}
		}
		if accepted > 0 {
			n.sys.wakeCaches(now)
		}
	}
	if busy || blocked {
		return true
	}
	if earliest < engine.MaxTime {
		// Everything in flight is timed for a future cycle: sleep through
		// the empty edges and tick again exactly when the first package can
		// be handed over. Skipped idle cycles cost no scheduler events —
		// and leave the cluster domain's lookahead windows unclamped.
		n.sys.icnMA.WakeAt(now, earliest)
	}
	return false
}
