package cycle

import (
	"fmt"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

// masterState is the scheduling state of the Master TCU.
type masterState uint8

const (
	masterRunning masterState = iota
	masterStalled
	masterWaitMem
	masterWaitFence
	masterWaitSpawnDrain // waiting for the write buffer before a spawn
	masterWaitJoin
	masterHalted
)

// Master is the serial core of XMT: a conventional in-order core with its
// own cache, full-strength functional units, the global register file at
// its side, and the spawn instruction that hands control to the parallel
// TCUs (paper Fig. 1).
//
// Model note: in serial mode the master is the only agent mutating memory
// (join completion waits for all TCU stores), so the master performs its
// memory operations architecturally at issue and sends "shadow" packages
// through the cache/ICN/DRAM components for timing only. This keeps master
// semantics exact while preserving contention and latency behaviour.
type Master struct {
	sys *System

	ctx   funcmodel.Context
	state masterState

	stallUntil int64 // master cycles
	pendingNB  int   // posted stores in flight (write buffer)

	cache *tagArray
	sendQ []*Package

	bcastMask uint32
	bcastRegs [isa.NumRegs]int32

	pendingSpawnPC int // instruction index of the spawn being drained

	// Observability (the master runs on the scheduler goroutine, so it
	// updates shared collectors and the event log directly).
	prof         *stats.ProfShard // the profile's last shard; nil when off
	memWaitStart engine.Time
	blockPC      int32
	blockOp      isa.Op
}

func newMaster(sys *System) *Master {
	cfg := sys.Cfg
	m := &Master{
		sys:   sys,
		cache: newTagArray(cfg.MasterCacheLines, 2, cfg.MasterCacheLineSize),
	}
	m.ctx = funcmodel.Context{ID: -1, IsMaster: true, PC: sys.Prog.Entry}
	sp := int32(cfg.MemBytes &^ 7)
	m.ctx.Reg[isa.RegSP] = sp
	m.ctx.Reg[isa.RegFP] = sp
	return m
}

// Tick issues up to IssueWidth instructions per master cycle.
func (mt *Master) Tick(cycle int64, now engine.Time) bool {
	switch mt.state {
	case masterHalted, masterWaitJoin, masterWaitMem:
		return false
	case masterWaitFence:
		if mt.pendingNB > 0 {
			return false
		}
		mt.state = masterRunning
	case masterWaitSpawnDrain:
		if mt.pendingNB > 0 {
			return false
		}
		mt.state = masterRunning
		mt.beginSpawn(now)
		return false
	case masterStalled:
		if cycle < mt.stallUntil {
			return true
		}
		mt.state = masterRunning
	}
	// Periodic and requested checkpointing stop at exactly the points a sys
	// checkpoint trap may: serial mode with the write buffer drained, so the
	// machine is architecturally quiescent and Capture needs no in-flight
	// state. An asynchronous RequestCheckpoint (signal handler, daemon
	// preemption) is honored at the first such point regardless of cadence.
	if sys := mt.sys; mt.pendingNB == 0 {
		if sys.ckptReq.Load() {
			sys.ckptReq.Store(false)
			sys.checkpointStop()
			return false
		}
		if sys.ckptEvery > 0 && sys.cycleOffset+sys.clusterClock.Cycle(now) >= sys.nextCkpt {
			sys.nextCkpt += sys.ckptEvery
			sys.checkpointStop()
			return false
		}
	}
	for slot := 0; slot < mt.sys.Cfg.MasterIssueWidth; slot++ {
		cont := mt.issue(cycle, now)
		if !cont || mt.state != masterRunning {
			break
		}
	}
	return mt.state == masterRunning || mt.state == masterStalled
}

// issue dispatches one instruction; it returns whether the issue group may
// continue this cycle.
func (mt *Master) issue(cycle int64, now engine.Time) bool {
	m := mt.sys.Machine
	pc := mt.ctx.PC
	if pc < 0 || pc >= len(m.Prog.Text) {
		mt.sys.fail(fmt.Errorf("cycle: master PC %d outside program", pc))
		return false
	}
	in := m.Prog.Text[pc]
	mt.ctx.PC++
	if mt.sys.traceFn != nil {
		mt.sys.traceFn(-1, pc, in, now)
	}
	if mt.sys.evlog != nil {
		mt.sys.evlog.Emit(trace.Event{TS: now, Dur: mt.sys.masterClock.Period(),
			Kind: trace.EvInstr, Op: in.Op, Ctx: -1, PC: int32(pc), Arg: int64(in.Line)})
	}
	if mt.prof != nil {
		mt.prof.Issue(pc)
	}
	count := func() { mt.sys.Stats.CountInstr(in.Op, -1, true) }
	meta := in.Op.Meta()
	fail := func(err error) bool {
		mt.sys.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
		return false
	}

	switch {
	case in.Op == isa.OpSpawn:
		count()
		// Order memory relative to the spawn boundary: drain the write
		// buffer before broadcasting.
		mt.ctx.PC = pc // re-fetch position is irrelevant; keep for errors
		mt.pendingSpawnPC = pc
		if mt.pendingNB > 0 {
			mt.state = masterWaitSpawnDrain
			return false
		}
		mt.beginSpawn(now)
		return false

	case in.Op == isa.OpJoin:
		return fail(fmt.Errorf("join executed in serial mode"))

	case in.Op == isa.OpChkid:
		return fail(fmt.Errorf("chkid executed in serial mode"))

	case in.Op == isa.OpBcast:
		count()
		mt.bcastMask |= 1 << uint(in.Rd)
		mt.bcastRegs[in.Rd] = mt.ctx.Reg[in.Rd]
		return true

	case in.Op == isa.OpPs:
		count()
		old, err := m.Ps(in.G, mt.ctx.Reg[in.Rd])
		if err != nil {
			return fail(err)
		}
		mt.ctx.SetReg(in.Rd, old)
		return true

	case in.Op == isa.OpGrr:
		count()
		mt.ctx.SetReg(in.Rd, m.G[in.G])
		return true

	case in.Op == isa.OpGrw:
		count()
		m.G[in.G] = mt.ctx.Reg[in.Rd]
		return true

	case in.Op == isa.OpFence:
		count()
		if mt.pendingNB > 0 {
			mt.state = masterWaitFence
			return false
		}
		return true

	case in.Op == isa.OpSys:
		// A checkpoint trap needs a quiescent machine: drain the write
		// buffer first, then retry the trap.
		if in.Imm == isa.SysCheckpoint && mt.pendingNB > 0 {
			mt.ctx.PC = pc
			mt.state = masterWaitFence
			return false
		}
		count()
		halt, err := m.DoSys(&mt.ctx, in)
		if err != nil {
			return fail(err)
		}
		if halt {
			mt.state = masterHalted
			mt.sys.halt()
			return false
		}
		if m.CheckpointRequested {
			mt.sys.checkpointStop()
			return false
		}
		return true

	case in.Op == isa.OpPsm:
		addr := m.EffAddr(&mt.ctx, in)
		old, err := m.Psm(addr, mt.ctx.Reg[in.Rd])
		if err != nil {
			return fail(err)
		}
		if !mt.send(&Package{Kind: PkgPsm, In: in, Cluster: -1, Addr: addr, Data: old, Issued: now, Shadow: true}) {
			// Could not inject: undo and retry next cycle.
			if _, uerr := m.Psm(addr, -mt.ctx.Reg[in.Rd]); uerr != nil {
				return fail(uerr)
			}
			mt.ctx.PC = pc
			return false
		}
		count()
		mt.sys.Stats.PsmOps++
		mt.blockWaitMem(now, pc, in.Op)
		return false

	case in.Op == isa.OpPref:
		count()
		return true // the master relies on its cache; prefetch is a no-op

	case meta.Load: // lw, lb, lbu, lwro
		addr := m.EffAddr(&mt.ctx, in)
		v, err := m.LoadValue(in, addr)
		if err != nil {
			return fail(err)
		}
		if mt.cache.Lookup(addr, cycle) {
			mt.sys.Stats.MasterCacheHits++
			mt.ctx.SetReg(in.Rd, v)
			mt.stall(cycle + mt.sys.Cfg.MasterCacheLatency)
			count()
			return false
		}
		if !mt.send(&Package{Kind: PkgLoad, In: in, Cluster: -1, Addr: addr, Data: v, Issued: now, Shadow: true}) {
			mt.ctx.PC = pc
			return false
		}
		count()
		mt.sys.Stats.MasterCacheMisses++
		mt.blockWaitMem(now, pc, in.Op)
		return false

	case meta.Store: // sw, sb, sw.nb: posted through the write buffer
		addr := m.EffAddr(&mt.ctx, in)
		kind := PkgStoreNB
		p := &Package{Kind: kind, In: in, Cluster: -1, Addr: addr, Data: mt.ctx.Reg[in.Rd], Issued: now, Shadow: true}
		if !mt.send(p) {
			mt.ctx.PC = pc
			return false
		}
		if err := m.StoreValue(in, addr, mt.ctx.Reg[in.Rd]); err != nil {
			return fail(err)
		}
		count()
		mt.pendingNB++
		return true

	case meta.Unit == isa.UnitMDU || meta.Unit == isa.UnitFPU:
		count()
		if err := m.ExecCompute(&mt.ctx, in); err != nil {
			return fail(err)
		}
		mt.stall(cycle + int64(meta.Latency))
		return false

	case meta.Branch:
		count()
		taken, target, err := m.EvalBranch(&mt.ctx, in)
		if err != nil {
			return fail(err)
		}
		if taken {
			if target < 0 || target >= len(m.Prog.Text) {
				return fail(fmt.Errorf("branch target %d outside program", target))
			}
			mt.ctx.PC = target
		}
		return false // branches end the issue group

	default:
		count()
		if err := m.ExecCompute(&mt.ctx, in); err != nil {
			return fail(err)
		}
		return true
	}
}

func (mt *Master) beginSpawn(now engine.Time) {
	in := mt.sys.Prog.Text[mt.pendingSpawnPC]
	region := mt.sys.Prog.RegionOf(mt.pendingSpawnPC + 1)
	if region == nil || region.Spawn != mt.pendingSpawnPC {
		mt.sys.fail(fmt.Errorf("cycle: spawn at %d has no linked region", mt.pendingSpawnPC))
		return
	}
	low, high := mt.ctx.Reg[in.Rs], mt.ctx.Reg[in.Rt]
	mt.cache.InvalidateAll() // TCU writes become visible after the join
	mt.state = masterWaitJoin
	mt.sys.spawn.start(region, low, high, mt.bcastMask, &mt.bcastRegs, now)
	mt.bcastMask = 0
}

// resumeAfterJoin is called by the spawn unit when all virtual threads have
// completed.
func (mt *Master) resumeAfterJoin(pc int, now engine.Time) {
	mt.ctx.PC = pc
	mt.state = masterRunning
	mt.cache.InvalidateAll()
	mt.sys.wakeMaster(now)
}

func (mt *Master) stall(until int64) {
	mt.state = masterStalled
	mt.stallUntil = until
}

// blockWaitMem parks the master waiting for a memory response, remembering
// the blocking instruction for stall attribution.
func (mt *Master) blockWaitMem(now engine.Time, pc int, op isa.Op) {
	mt.state = masterWaitMem
	mt.memWaitStart = now
	mt.blockPC = int32(pc)
	mt.blockOp = op
}

// memUnblocked attributes the just-finished master memory wait.
func (mt *Master) memUnblocked(now engine.Time) {
	wait := now - mt.memWaitStart
	if wait <= 0 {
		return
	}
	cycles := uint64(wait / mt.sys.masterClock.Period())
	mt.sys.Stats.MasterMemWaitCycles += cycles
	if mt.prof != nil {
		mt.prof.Stall(int(mt.blockPC), cycles)
	}
	if mt.sys.evlog != nil {
		mt.sys.evlog.Emit(trace.Event{TS: mt.memWaitStart, Dur: wait,
			Kind: trace.EvMemWait, Op: mt.blockOp, Ctx: -1, PC: mt.blockPC})
	}
}

// send enqueues a shadow package on the master's dedicated ICN path.
func (mt *Master) send(p *Package) bool {
	p.Module = mt.sys.moduleOf(p.Addr)
	if mt.sys.Cfg.ICNAsync {
		now := mt.sys.Sched.Now()
		port := len(mt.sys.clusters) // the master's own injection port
		if mt.sys.asyncPortFree[port] > now+8*mt.sys.Cfg.ICNAsyncGapTicks {
			mt.sys.Stats.MasterSendStalls++
			return false
		}
		mt.sys.asyncSend(p, port, now)
		return true
	}
	if len(mt.sendQ) >= 8*mt.sys.Cfg.ICNInjectPerCyc {
		mt.sys.Stats.MasterSendStalls++
		return false
	}
	mt.sendQ = append(mt.sendQ, p)
	mt.sys.wakeICN(mt.sys.Sched.Now())
	return true
}

// deliver commits an expiring package at the master.
func (mt *Master) deliver(p *Package, now engine.Time) {
	if p.Err != nil {
		mt.sys.fail(&funcmodel.RuntimeError{Line: p.In.Line, In: p.In, Err: p.Err})
		return
	}
	switch p.Kind {
	case PkgLoad:
		mt.ctx.SetReg(p.In.Rd, p.Data)
		mt.cache.Fill(p.Addr, mt.sys.masterClock.Cycle(now))
		mt.sys.Stats.LoadLatencySum += uint64(now - p.Issued)
		mt.sys.Stats.LoadLatencyCount++
		mt.sys.Stats.LoadLatency.Observe(uint64(now - p.Issued))
		mt.memUnblocked(now)
		mt.state = masterRunning
		mt.sys.wakeMaster(now)
	case PkgPsm:
		mt.ctx.SetReg(p.In.Rd, p.Data)
		mt.memUnblocked(now)
		mt.state = masterRunning
		mt.sys.wakeMaster(now)
	case PkgStore, PkgStoreNB:
		mt.pendingNB--
		if mt.pendingNB == 0 &&
			(mt.state == masterWaitFence || mt.state == masterWaitSpawnDrain) {
			mt.sys.wakeMaster(now)
		}
	}
}
