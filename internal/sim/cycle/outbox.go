package cycle

import (
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
)

// The cluster macro-actor ticks all clusters inside one scheduler event,
// possibly in parallel across host workers (engine.ParallelMacroActor). To
// keep results bit-identical to serial simulation, the compute phase of a
// cluster tick may mutate only cluster-local state; every effect on shared
// state — scheduler events, global statistics, the prefix-sum unit's pacing
// window, syscalls, the spawn unit's done count — is recorded in the
// cluster's outbox and replayed by Cluster.Commit. Commits run serially in
// cluster-id order, which is exactly the interleaving the serial simulator
// produces, so scheduler sequence numbers, prefix-sum slot assignment,
// program output and statistics all match to the bit.

type obKind uint8

const (
	obCount   obKind = iota // count an issued instruction
	obStat                  // add n to a shared stats counter
	obTrace                 // invoke the instruction trace observer
	obPS                    // submit a prefix-sum / global-register request
	obSys                   // execute a syscall (may print, halt, checkpoint)
	obWakeICN               // wake the ICN macro-actor (send queue non-empty)
	obAsync                 // schedule an async-ICN delivery at time at
	obDone                  // report this TCU done to the spawn unit
	obDecomm                // decommission this TCU (permanent fault at a safe point)
	obFail                  // abort the simulation with err
	obRace                  // record a locally-served read with the race sanitizer
)

type obRec struct {
	kind obKind
	op   isa.Op
	in   isa.Instr
	t    *TCU
	pkg  *Package
	at   engine.Time
	n    uint64
	stat *uint64
	err  error
	pc   int
}

// outbox accumulates one cluster-tick's deferred shared effects, in issue
// order. The backing slice is reused across ticks.
type outbox struct {
	recs []obRec
	// wokeICN collapses duplicate ICN wakes within one tick (Wake is
	// idempotent anyway; this just keeps the outbox small).
	wokeICN bool
}

func (o *outbox) count(op isa.Op) {
	o.recs = append(o.recs, obRec{kind: obCount, op: op})
}

func (o *outbox) stat(ctr *uint64, n uint64) {
	o.recs = append(o.recs, obRec{kind: obStat, stat: ctr, n: n})
}

func (o *outbox) trace(t *TCU, pc int, in isa.Instr) {
	o.recs = append(o.recs, obRec{kind: obTrace, t: t, pc: pc, in: in})
}

func (o *outbox) ps(t *TCU, in isa.Instr) {
	o.recs = append(o.recs, obRec{kind: obPS, t: t, in: in})
}

func (o *outbox) sys(t *TCU, pc int, in isa.Instr) {
	o.recs = append(o.recs, obRec{kind: obSys, t: t, pc: pc, in: in})
}

func (o *outbox) wakeICN() {
	if o.wokeICN {
		return
	}
	o.wokeICN = true
	o.recs = append(o.recs, obRec{kind: obWakeICN})
}

func (o *outbox) async(p *Package, at engine.Time) {
	o.recs = append(o.recs, obRec{kind: obAsync, pkg: p, at: at})
}

func (o *outbox) done(t *TCU) {
	o.recs = append(o.recs, obRec{kind: obDone, t: t})
}

func (o *outbox) decomm(t *TCU) {
	o.recs = append(o.recs, obRec{kind: obDecomm, t: t})
}

func (o *outbox) fail(err error) {
	o.recs = append(o.recs, obRec{kind: obFail, err: err})
}

// race defers a race-sanitizer read record for a load served entirely
// inside the cluster (prefetch-buffer hit, read-only cache hit) during the
// parallel compute phase. The address rides in n; the source line comes
// from in.Line at commit. Only emitted when race checking is enabled.
func (o *outbox) race(t *TCU, addr uint32, in isa.Instr) {
	o.recs = append(o.recs, obRec{kind: obRace, t: t, in: in, n: uint64(addr)})
}
