package cycle

import (
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
)

// The cluster macro-actor ticks all clusters inside one scheduler event,
// possibly in parallel across host workers (engine.ParallelMacroActor). To
// keep results bit-identical to serial simulation, the compute phase of a
// cluster tick may mutate only cluster-local state; every effect on shared
// state — scheduler events, global statistics, the prefix-sum unit's pacing
// window, syscalls, the spawn unit's done count — is recorded in the
// cluster's outbox and replayed by Cluster.Commit. Commits run serially in
// cluster-id order, which is exactly the interleaving the serial simulator
// produces, so scheduler sequence numbers, prefix-sum slot assignment,
// program output and statistics all match to the bit.
//
// Under the bounded-lookahead engine a cluster executes several cycles
// before any commit runs, so the outbox additionally carves its buffers
// into per-cycle segments (obSeg): Cluster.CommitCycle replays exactly one
// segment at that cycle's edge time, preserving the (cycle, cluster)
// interleaving of the single-cycle engine.

type obKind uint8

const (
	obStat    obKind = iota // add n to a shared stats counter
	obTrace                 // invoke the instruction trace observer
	obPS                    // submit a prefix-sum / global-register request
	obSys                   // execute a syscall (may print, halt, checkpoint)
	obWakeICN               // wake the ICN macro-actor (send queue non-empty)
	obAsync                 // schedule an async-ICN delivery at time at
	obDone                  // report this TCU done to the spawn unit
	obDecomm                // decommission this TCU (permanent fault at a safe point)
	obFail                  // abort the simulation with err
	obRace                  // record a locally-served read with the race sanitizer
)

// closing reports whether a record kind ends a lookahead window: once the
// effect commits, shared machine state (the scheduler, the prefix-sum
// window, the spawn unit, the ICN's view of the send queue) can change, so
// no later cycle of the same window could have seen frozen inputs.
// Pure-observation kinds (stats, trace, race records) never close.
func (k obKind) closing() bool {
	return k != obStat && k != obTrace && k != obRace
}

type obRec struct {
	kind obKind
	op   isa.Op
	in   isa.Instr
	t    *TCU
	pkg  *Package
	at   engine.Time
	n    uint64
	stat *uint64
	err  error
	pc   int
	// opsIdx is the length of outbox.ops when this record was appended:
	// instruction counts issued before this record flush before it replays.
	opsIdx int32
}

// obSeg marks one window cycle's high-water marks in the outbox buffers
// (exclusive end indices) so CommitCycle can replay a single cycle.
type obSeg struct {
	cycle int64 // absolute cluster cycle, for the replay-order guard
	rec   int32 // end index into recs
	op    int32 // end index into ops
	ev    int32 // end length of the cluster's event ring
	prof  int32 // end index into the cluster's deferred profile PCs
}

// outbox accumulates one window's deferred shared effects, in issue order.
// All backing slices are reused across windows.
type outbox struct {
	recs []obRec
	// ops is the instruction-count stream: one isa.Op per counted issue
	// instead of a full obRec, flushed in batches between records
	// (Stats.CountInstrs). This is the hottest append in the simulator.
	ops []isa.Op
	// wokeICN collapses duplicate ICN wakes within one window cycle (Wake
	// is idempotent anyway; this just keeps the outbox small — and the
	// wake is a closer, so the window ends at the cycle that set it).
	wokeICN bool
	// closing records that the current cycle appended a window-closing
	// record; WindowTick consumes and resets it.
	closing bool
	segs    []obSeg
}

func (o *outbox) reset() {
	o.recs = o.recs[:0]
	o.ops = o.ops[:0]
	o.wokeICN = false
	o.closing = false
	o.segs = o.segs[:0]
}

func (o *outbox) add(r obRec) {
	r.opsIdx = int32(len(o.ops))
	o.recs = append(o.recs, r)
	if r.kind.closing() {
		o.closing = true
	}
}

func (o *outbox) count(op isa.Op) {
	o.ops = append(o.ops, op)
}

func (o *outbox) stat(ctr *uint64, n uint64) {
	o.add(obRec{kind: obStat, stat: ctr, n: n})
}

func (o *outbox) trace(t *TCU, pc int, in isa.Instr) {
	o.add(obRec{kind: obTrace, t: t, pc: pc, in: in})
}

func (o *outbox) ps(t *TCU, in isa.Instr) {
	o.add(obRec{kind: obPS, t: t, in: in})
}

func (o *outbox) sys(t *TCU, pc int, in isa.Instr) {
	o.add(obRec{kind: obSys, t: t, pc: pc, in: in})
}

func (o *outbox) wakeICN() {
	if o.wokeICN {
		return
	}
	o.wokeICN = true
	o.add(obRec{kind: obWakeICN})
}

func (o *outbox) async(p *Package, at engine.Time) {
	o.add(obRec{kind: obAsync, pkg: p, at: at})
}

func (o *outbox) done(t *TCU) {
	o.add(obRec{kind: obDone, t: t})
}

func (o *outbox) decomm(t *TCU) {
	o.add(obRec{kind: obDecomm, t: t})
}

func (o *outbox) fail(err error) {
	o.add(obRec{kind: obFail, err: err})
}

// race defers a race-sanitizer read record for a load served entirely
// inside the cluster (prefetch-buffer hit, read-only cache hit) during the
// parallel compute phase. The address rides in n; the source line comes
// from in.Line at commit. Only emitted when race checking is enabled.
func (o *outbox) race(t *TCU, addr uint32, in isa.Instr) {
	o.add(obRec{kind: obRace, t: t, in: in, n: uint64(addr)})
}

// mark closes the current cycle's segment and reports whether it contained
// a window-closing record. evLen is the cluster event ring's length,
// profLen the deferred-profile cursor.
func (o *outbox) mark(cycle int64, evLen, profLen int) (closing bool) {
	closing = o.closing
	o.segs = append(o.segs, obSeg{
		cycle: cycle,
		rec:   int32(len(o.recs)),
		op:    int32(len(o.ops)),
		ev:    int32(evLen),
		prof:  int32(profLen),
	})
	o.closing = false
	return closing
}
