// Package cycle implements XMTSim's cycle-accurate model: the
// transaction-level components of Fig. 1 — TCUs grouped into clusters with
// shared FPU/MDU units, prefetch buffers and a read-only cache per cluster,
// the mesh-of-trees interconnection network, address-hashed shared cache
// modules backed by DRAM ports, the global register file with its prefix-sum
// unit, the spawn-join unit with instruction broadcast, and the Master TCU
// with its private cache. Instruction packages originate at a TCU, travel
// through a specific set of components according to their type, and expire
// upon returning to the commit stage of the originating TCU; each component
// imposes a state-dependent delay (paper §III-A).
//
// Loads and stores are performed at the owning cache module, not at TCU
// commit, so non-blocking stores to different modules genuinely reorder —
// which is what makes the relaxed XMT memory model (and its litmus tests,
// Figs. 6-7) observable in simulation.
package cycle

import (
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
)

// PkgKind classifies memory-system packages.
type PkgKind uint8

const (
	PkgLoad     PkgKind = iota // blocking load (lw/lb/lbu/lwro miss)
	PkgStore                   // blocking store (sw/sb)
	PkgStoreNB                 // posted non-blocking store (sw.nb)
	PkgPsm                     // prefix-sum to memory
	PkgPrefetch                // prefetch-buffer fill (carries the line back)
)

// Package is an instruction package traveling through the memory system.
// (As in the paper, "Package" here is a core simulator class, not a Java
// package.)
type Package struct {
	Kind PkgKind
	In   isa.Instr

	// Source routing: Cluster < 0 means the Master TCU.
	Cluster int
	TCU     int // TCU index within the cluster

	Addr uint32
	Data int32 // store data / psm increment; load result on the way back

	Line     []byte // line contents for prefetch fills
	LineAddr uint32

	Module int // destination cache module

	Issued engine.Time // when the TCU issued it (for latency stats)
	Hops   int         // ICN hops traversed (power accounting)
	Err    error       // memory fault discovered at the module

	// Shadow marks master packages that travel for timing only: the master
	// performs its memory operation architecturally at issue (serial mode
	// has a single memory agent), so the module must not re-apply it.
	Shadow bool
}

// respKind tells the TCU how to commit an expiring package.
func (p *Package) isLoadLike() bool {
	return p.Kind == PkgLoad || p.Kind == PkgPsm
}
