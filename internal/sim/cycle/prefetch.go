package cycle

// prefetchBuffer models the per-TCU prefetch buffers of the XMT
// architecture (paper Fig. 1 and §IV-C): the compiler inserts pref
// instructions to fetch data ahead of use; a later load that finds its line
// in the buffer avoids the ~30-cycle shared-cache round trip. Entries store
// actual line bytes captured at the cache module when the fill was served,
// so a buffered line can be stale relative to memory — exactly the
// prefetch-reordering hazard the paper's memory-model discussion (Fig. 7)
// points out, and the reason prefix-sum completion flushes the buffer.
type prefetchBuffer struct {
	entries []pbufEntry
	lineSz  uint32
}

type pbufEntry struct {
	lineAddr uint32
	valid    bool
	ready    bool
	data     []byte
	lastUse  int64
	waiter   *TCU // a TCU blocked on this in-flight fill, if any
}

func newPrefetchBuffer(slots int, lineSize int) prefetchBuffer {
	return prefetchBuffer{entries: make([]pbufEntry, slots), lineSz: uint32(lineSize)}
}

func (b *prefetchBuffer) lineOf(addr uint32) uint32 {
	return addr &^ (b.lineSz - 1)
}

// find returns the entry holding addr's line, or nil.
func (b *prefetchBuffer) find(addr uint32) *pbufEntry {
	la := b.lineOf(addr)
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.lineAddr == la {
			return e
		}
	}
	return nil
}

// allocate reserves a slot for a new in-flight fill, evicting the LRU ready
// entry. It returns nil when every slot is occupied by an in-flight fill
// (the prefetch hint is then dropped).
func (b *prefetchBuffer) allocate(lineAddr uint32, cycle int64) *pbufEntry {
	var victim *pbufEntry
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			victim = e
			break
		}
		if e.ready && (victim == nil || e.lastUse < victim.lastUse) {
			victim = e
		}
	}
	if victim == nil {
		return nil
	}
	evicted := victim.valid
	*victim = pbufEntry{lineAddr: lineAddr, valid: true, lastUse: cycle}
	if evicted {
		victim.lastUse = cycle
	}
	return victim
}

// read returns the word at addr from a ready entry's stale-capable copy.
func (e *pbufEntry) read(addr uint32, lineSz uint32) int32 {
	off := addr - e.lineAddr
	if int(off)+4 > len(e.data) {
		return 0
	}
	return int32(uint32(e.data[off]) | uint32(e.data[off+1])<<8 |
		uint32(e.data[off+2])<<16 | uint32(e.data[off+3])<<24)
}

// invalidateAll flushes the buffer (on fence and prefix-sum completion).
func (b *prefetchBuffer) invalidateAll() {
	for i := range b.entries {
		b.entries[i].valid = false
		b.entries[i].waiter = nil
		b.entries[i].data = nil
	}
}

// readyCount reports how many entries hold usable lines (for tests).
func (b *prefetchBuffer) readyCount() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].ready {
			n++
		}
	}
	return n
}
