package cycle

import (
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
)

// PSUnit models the global register file and its prefix-sum unit at the
// Master TCU (Fig. 1). The combining hardware answers simultaneous ps
// requests with constant low latency, but its throughput is finite: at
// most PSPerCycle requests retire per cluster cycle (the combining tree's
// width), so massive grab storms — e.g. 1024 TCUs fetching virtual-thread
// ids at spawn onset — are paced. Requests apply atomically in
// deterministic arrival order; each response returns one PS-latency after
// its apply slot.
type PSUnit struct {
	sys *System

	windowCycle int64 // cluster cycle currently being filled
	used        int   // requests already retired in windowCycle
}

func newPSUnit(sys *System) *PSUnit { return &PSUnit{sys: sys} }

// request is called by a TCU at issue; the TCU blocks until psDelivered.
func (u *PSUnit) request(t *TCU, in isa.Instr, now engine.Time) {
	u.sys.Stats.PsOps++
	lat := u.sys.Cfg.PSLatency * u.sys.Cfg.ClusterPeriod
	reqAt := now
	applyAt := u.slotFor(now + lat)
	u.sys.Sched.ScheduleFunc(applyAt, engine.PrioNegotiate, func(applyTime engine.Time) {
		old, err := u.apply(&t.ctx, in)
		if err != nil {
			u.sys.fail(&funcmodel.RuntimeError{Line: in.Line, In: in, Err: err})
			return
		}
		u.sys.Sched.ScheduleFunc(applyTime+lat, engine.PrioTransfer, func(doneTime engine.Time) {
			// Round trip = request at the unit to response delivered; the
			// pacing window makes this grow under grab storms, which is
			// exactly what the histogram is there to show.
			u.sys.Stats.PSLatency.Observe(uint64(doneTime - reqAt))
			t.psDelivered(in, old, doneTime)
		})
	})
}

// slotFor paces requests at PSPerCycle per cluster cycle, returning the
// apply time for a request arriving at the unit at time `at`.
func (u *PSUnit) slotFor(at engine.Time) engine.Time {
	clk := u.sys.clusterClock
	c := clk.Cycle(at)
	if c > u.windowCycle {
		u.windowCycle = c
		u.used = 0
	}
	for u.used >= u.sys.Cfg.PSPerCycle {
		u.windowCycle++
		u.used = 0
	}
	u.used++
	slot := clk.EdgeAt(u.windowCycle)
	if slot < at {
		return at
	}
	return slot
}

// apply performs the global-register operation atomically.
func (u *PSUnit) apply(ctx *funcmodel.Context, in isa.Instr) (int32, error) {
	m := u.sys.Machine
	switch in.Op {
	case isa.OpPs:
		return m.Ps(in.G, ctx.Reg[in.Rd])
	case isa.OpGrr:
		return m.G[in.G], nil
	case isa.OpGrw:
		m.G[in.G] = ctx.Reg[in.Rd]
		return 0, nil
	}
	return 0, nil
}
