package cycle

import (
	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/trace"
)

// SpawnUnit models the spawn-join hardware: broadcasting the spawn-region
// instructions (and the bcast-ed master registers) to every TCU, allocating
// virtual-thread IDs through the dedicated global register, detecting that
// all TCUs are blocked at chkid — which means all virtual threads have
// completed — and returning control to the Master TCU (paper §II, §IV-D).
//
// The unit also anchors graceful degradation (docs/ROBUSTNESS.md): when a
// participating TCU is decommissioned by an injected permanent fault, its
// in-flight virtual thread is re-dispatched to a surviving TCU — immediately
// if one is already done, otherwise queued until the next TCU finishes — and
// the join completes over the survivors instead of hanging on a count that
// can never be reached.
type SpawnUnit struct {
	sys *System

	active bool
	region *asm.SpawnRegion
	low    int32
	high   int32
	done   int
	// total is the number of participating TCUs: -1 while the broadcast is
	// still in flight (participants are not enrolled yet), then the count of
	// TCUs alive at broadcast, decremented as participants are
	// decommissioned.
	total int

	// orphans queues virtual threads whose TCU was decommissioned before a
	// finished survivor could adopt them. FIFO, so re-dispatch order is a
	// pure function of the execution.
	orphans []orphan

	startedAt engine.Time // when the master issued the spawn (for EvSpawn)
}

// orphan is a virtual thread stranded by a TCU decommission, waiting for a
// surviving TCU to adopt it.
type orphan struct {
	ctx funcmodel.Context
	at  engine.Time // when the thread was orphaned (re-dispatch latency)
}

func newSpawnUnit(sys *System) *SpawnUnit { return &SpawnUnit{sys: sys} }

// start is called by the master executing a spawn instruction. Broadcast
// and TCU startup take SpawnOverhead master cycles.
func (s *SpawnUnit) start(region *asm.SpawnRegion, low, high int32, mask uint32, bcast *[isa.NumRegs]int32, now engine.Time) {
	s.sys.Stats.SpawnCount++
	if high >= low {
		s.sys.Stats.VirtualThreads += uint64(high - low + 1)
	}
	s.active = true
	s.region = region
	s.low, s.high = low, high
	s.done = 0
	s.total = -1 // fixed at broadcast, over the TCUs alive then
	s.orphans = s.orphans[:0]
	s.startedAt = now
	s.sys.Stats.SpawnOverheadCycles += uint64(s.sys.Cfg.SpawnOverhead)

	// The spawn counter global register is initialized to low; TCUs grab
	// IDs with ps on it.
	s.sys.Machine.G[isa.GRegSpawn] = low

	overhead := s.sys.Cfg.SpawnOverhead * s.sys.Cfg.MasterPeriod
	maskCopy := mask
	var bcastCopy [isa.NumRegs]int32
	if bcast != nil {
		bcastCopy = *bcast
	}
	s.sys.Sched.ScheduleFunc(now+overhead, engine.PrioNegotiate, func(t engine.Time) {
		s.total = s.sys.aliveTCUs
		pc := region.Spawn + 1
		if s.sys.race != nil {
			// The broadcast orders the serial prefix before every virtual
			// thread: open a fresh xmtsan epoch.
			s.sys.race.EpochBegin()
		}
		for _, c := range s.sys.clusters {
			c.resetForSpawn(pc, maskCopy, &bcastCopy)
		}
		s.sys.wakeClusters(t)
	})
}

// tcuDone is called when a TCU blocks at chkid with an out-of-range ID (via
// the outbox, or directly from a store drain on the scheduler goroutine).
// If orphaned virtual threads are pending, the freshly finished TCU adopts
// one instead of counting toward the join.
func (s *SpawnUnit) tcuDone(t *TCU, now engine.Time) {
	if !s.active {
		return
	}
	if !t.alive || t.state != tcuDone || t.doneCounted {
		// Stale record: the TCU was decommissioned or re-dispatched between
		// emitting its done and this commit.
		return
	}
	if len(s.orphans) > 0 {
		o := s.orphans[0]
		s.orphans = s.orphans[1:]
		s.adopt(t, o, now)
		return
	}
	s.done++
	t.doneCounted = true
	s.maybeComplete(now)
}

// decommission removes a participating TCU from the active spawn. If its
// virtual thread was live it is re-dispatched: immediately to a finished
// survivor when one exists, else queued for the next TCU to finish. Serial
// contexts only.
func (s *SpawnUnit) decommission(t *TCU, hasThread bool, now engine.Time) {
	if !s.active || s.total < 0 {
		return
	}
	s.total--
	if t.doneCounted {
		t.doneCounted = false
		s.done--
	} else if hasThread {
		o := orphan{ctx: t.ctx, at: now}
		if a := s.finishedSurvivor(); a != nil {
			s.adopt(a, o, now)
		} else {
			s.orphans = append(s.orphans, o)
		}
	}
	s.maybeComplete(now)
}

// finishedSurvivor returns the lowest-numbered TCU that is done with its
// own work and free to adopt an orphan. Only counted-done TCUs qualify: a
// TCU whose done record is still in an uncommitted outbox will pick up the
// orphan when that record replays.
func (s *SpawnUnit) finishedSurvivor() *TCU {
	for _, c := range s.sys.clusters {
		for _, t := range c.tcus {
			if t.alive && t.state == tcuDone && t.doneCounted {
				return t
			}
		}
	}
	return nil
}

// adopt re-dispatches an orphaned virtual thread onto a surviving TCU.
func (s *SpawnUnit) adopt(a *TCU, o orphan, now engine.Time) {
	if a.doneCounted {
		a.doneCounted = false
		s.done--
	}
	a.ctx = o.ctx
	a.ctx.ID = a.id
	a.setState(tcuRunning)
	a.stallUntil = 0
	a.pendingNB = 0
	a.waitingPbuf = false
	a.pendingSend = nil
	a.pbuf.invalidateAll()
	s.sys.Stats.Redispatches++
	s.sys.Stats.RedispatchLatency.Observe(uint64(now - o.at))
	if s.sys.evlog != nil {
		s.sys.evlog.Emit(trace.Event{TS: now, Kind: trace.EvRedispatch,
			Ctx: int32(a.id), Arg: int64(now - o.at)})
	}
	s.sys.wakeClusters(now)
}

// maybeComplete finishes the join once every participant is done and no
// orphaned thread is waiting for a TCU.
func (s *SpawnUnit) maybeComplete(now engine.Time) {
	if !s.active || s.total < 0 || s.done < s.total || len(s.orphans) > 0 {
		return
	}
	s.active = false
	region := s.region
	started := s.startedAt
	vthreads := int64(0)
	if s.high >= s.low {
		vthreads = int64(s.high - s.low + 1)
	}
	s.sys.Stats.JoinOverheadCycles += uint64(s.sys.Cfg.JoinOverhead)
	overhead := s.sys.Cfg.JoinOverhead * s.sys.Cfg.MasterPeriod
	s.sys.Sched.ScheduleFunc(now+overhead, engine.PrioNegotiate, func(t engine.Time) {
		for _, c := range s.sys.clusters {
			c.quiesce()
		}
		if s.sys.race != nil {
			// The join barrier: condemn pending pairs whose writer never
			// released, then clear the shadow state.
			s.sys.race.EpochEnd()
			s.sys.drainRaces(t)
		}
		if s.sys.evlog != nil {
			s.sys.evlog.Emit(trace.Event{TS: started, Dur: t - started,
				Kind: trace.EvSpawn, Ctx: -1, PC: int32(region.Spawn), Arg: vthreads})
		}
		s.sys.master.resumeAfterJoin(region.Join+1, t)
	})
}
