package cycle

import (
	"xmtgo/internal/asm"
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/trace"
)

// SpawnUnit models the spawn-join hardware: broadcasting the spawn-region
// instructions (and the bcast-ed master registers) to every TCU, allocating
// virtual-thread IDs through the dedicated global register, detecting that
// all TCUs are blocked at chkid — which means all virtual threads have
// completed — and returning control to the Master TCU (paper §II, §IV-D).
type SpawnUnit struct {
	sys *System

	active bool
	region *asm.SpawnRegion
	low    int32
	high   int32
	done   int
	total  int

	startedAt engine.Time // when the master issued the spawn (for EvSpawn)
}

func newSpawnUnit(sys *System) *SpawnUnit { return &SpawnUnit{sys: sys} }

// start is called by the master executing a spawn instruction. Broadcast
// and TCU startup take SpawnOverhead master cycles.
func (s *SpawnUnit) start(region *asm.SpawnRegion, low, high int32, mask uint32, bcast *[isa.NumRegs]int32, now engine.Time) {
	s.sys.Stats.SpawnCount++
	if high >= low {
		s.sys.Stats.VirtualThreads += uint64(high - low + 1)
	}
	s.active = true
	s.region = region
	s.low, s.high = low, high
	s.done = 0
	s.total = s.sys.Cfg.TCUs()
	s.startedAt = now
	s.sys.Stats.SpawnOverheadCycles += uint64(s.sys.Cfg.SpawnOverhead)

	// The spawn counter global register is initialized to low; TCUs grab
	// IDs with ps on it.
	s.sys.Machine.G[isa.GRegSpawn] = low

	overhead := s.sys.Cfg.SpawnOverhead * s.sys.Cfg.MasterPeriod
	maskCopy := mask
	var bcastCopy [isa.NumRegs]int32
	if bcast != nil {
		bcastCopy = *bcast
	}
	s.sys.Sched.ScheduleFunc(now+overhead, engine.PrioNegotiate, func(t engine.Time) {
		pc := region.Spawn + 1
		for _, c := range s.sys.clusters {
			c.resetForSpawn(pc, maskCopy, &bcastCopy)
		}
		s.sys.wakeClusters(t)
	})
}

// tcuDone is called when a TCU blocks at chkid with an out-of-range ID.
// When the last TCU blocks, the join completes and the master resumes.
func (s *SpawnUnit) tcuDone(now engine.Time) {
	if !s.active {
		return
	}
	s.done++
	if s.done < s.total {
		return
	}
	s.active = false
	region := s.region
	started := s.startedAt
	vthreads := int64(0)
	if s.high >= s.low {
		vthreads = int64(s.high - s.low + 1)
	}
	s.sys.Stats.JoinOverheadCycles += uint64(s.sys.Cfg.JoinOverhead)
	overhead := s.sys.Cfg.JoinOverhead * s.sys.Cfg.MasterPeriod
	s.sys.Sched.ScheduleFunc(now+overhead, engine.PrioNegotiate, func(t engine.Time) {
		for _, c := range s.sys.clusters {
			c.quiesce()
		}
		if s.sys.evlog != nil {
			s.sys.evlog.Emit(trace.Event{TS: started, Dur: t - started,
				Kind: trace.EvSpawn, Ctx: -1, PC: int32(region.Spawn), Arg: vthreads})
		}
		s.sys.master.resumeAfterJoin(region.Join+1, t)
	})
}
