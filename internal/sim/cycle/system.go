package cycle

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"

	"xmtgo/internal/asm"
	"xmtgo/internal/config"
	"xmtgo/internal/isa"
	"xmtgo/internal/sim/checkpoint"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/race"
	"xmtgo/internal/sim/stats"
	"xmtgo/internal/sim/trace"
)

// System is the assembled cycle-accurate XMT machine: every solid box of
// the paper's Fig. 1 exists as one component instance, grouped into
// macro-actors per clock domain on a single discrete-event scheduler.
type System struct {
	Cfg     *config.Config
	Prog    *asm.Program
	Sched   *engine.Scheduler
	Machine *funcmodel.Machine
	Stats   *stats.Collector

	clusterClock *engine.Clock
	icnClock     *engine.Clock
	cacheClock   *engine.Clock
	dramClock    *engine.Clock
	masterClock  *engine.Clock

	clusters []*Cluster
	modules  []*CacheModule
	dram     *DRAM
	icn      *ICN
	ps       *PSUnit
	spawn    *SpawnUnit
	master   *Master

	// clusterMA ticks all clusters in one event per cluster cycle — the
	// hot phase of the simulation — sharding them across pool's host
	// workers (paper §III-D's macro-actor, parallelized on the host).
	clusterMA   *engine.ParallelMacroActor
	pool        *engine.WorkerPool
	hostWorkers int

	icnMA    *engine.MacroActor
	cacheMA  *engine.MacroActor
	masterMA *engine.MacroActor

	lineShift uint
	hashSalt  uint64

	// asyncPortFree is the next-free time of each asynchronous injection
	// port (one per cluster plus the master's), used when Cfg.ICNAsync.
	asyncPortFree []engine.Time

	err          error
	halted       bool
	checkpointed bool
	cycleOffset  int64

	// commitCycle/commitNow describe the window cycle currently being
	// committed by the bounded-lookahead engine (-1 when no window commit
	// is active). A multi-cycle window commits cycle k at edge time nowK
	// while the scheduler clock still reads the window-entry time, so
	// anything that consults "the current cycle" during a commit — the
	// syscall cycle trap, the halt/fail stop path — must use these instead.
	commitCycle int64
	commitNow   engine.Time

	// delivFree pools the package-delivery actors the cache modules
	// schedule for every response (scheduler goroutine only).
	delivFree []*pkgDeliver

	// injector holds the materialized fault plan (nil when Cfg.FaultPlan is
	// empty); aliveTCUs tracks TCUs not yet decommissioned by permanent
	// faults (docs/ROBUSTNESS.md).
	injector  *injector
	aliveTCUs int

	// ckptEvery/nextCkpt drive periodic checkpointing (CheckpointEvery):
	// the master stops at a quiescent point once the target cycle passes.
	ckptEvery int64
	nextCkpt  int64
	// ckptReq is the asynchronous checkpoint request (RequestCheckpoint):
	// signal handlers and daemon preemption set it from other goroutines;
	// the master consumes it at its next quiescent point.
	ckptReq atomic.Bool

	// traceFn, when set, observes every issued instruction
	// (tcu = -1 for the master).
	traceFn func(tcu int, pc int, in isa.Instr, now engine.Time)

	// race is the xmtsan happens-before sanitizer (nil unless
	// Cfg.RaceCheck). Every call site is a serial context — cache service,
	// outbox commit, package delivery, the spawn unit's scheduled closures —
	// so the detector needs no locking and its reports are byte-identical
	// for any host worker count. raceEmitted is the drain cursor into its
	// report list (counters + EvRace events are emitted as reports appear).
	race        *race.Detector
	raceEmitted int

	// evlog, when set, receives the structured event stream (Chrome trace
	// export). Serial contexts append directly; cluster compute phases fill
	// per-cluster rings drained at outbox commit.
	evlog *trace.EventLog
	// profile, when set, attributes issue and stall cycles to PCs: one
	// shard per cluster plus a final shard for the master.
	profile *stats.LineProfile

	plugins []*pluginBinding
}

// Result summarizes a cycle-accurate run.
type Result struct {
	Cycles     int64 // cluster-domain cycles elapsed (including any resume offset)
	Ticks      engine.Time
	Instrs     uint64
	Halted     bool // program executed sys halt
	TimedOut   bool // stopped by the cycle budget instead
	Checkpoint bool // stopped at a sys checkpoint trap
}

// New builds a system for prog under cfg; out receives printf output.
func New(prog *asm.Program, cfg config.Config, out io.Writer) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mach, err := funcmodel.New(prog, cfg.MemBytes, out)
	if err != nil {
		return nil, err
	}
	s := &System{
		Cfg:     &cfg,
		Prog:    prog,
		Sched:   engine.New(),
		Machine: mach,
		Stats:   stats.NewCollector(cfg.Clusters, cfg.CacheModules, cfg.DRAMPorts),
	}
	s.lineShift = log2u(uint32(cfg.CacheLineSize))
	s.hashSalt = cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d

	// Size the calendar-queue buckets to the clock-period GCD so each
	// bucket holds roughly one edge's events (runtime DVFS may later
	// misalign this; that only costs speed, never correctness).
	s.Sched.SetBucketWidth(gcd64(cfg.ClusterPeriod,
		gcd64(cfg.ICNPeriod, gcd64(cfg.CachePeriod, gcd64(cfg.DRAMPeriod, cfg.MasterPeriod)))))

	s.clusterClock = engine.NewClock("cluster", cfg.ClusterPeriod)
	s.icnClock = engine.NewClock("icn", cfg.ICNPeriod)
	s.cacheClock = engine.NewClock("cache", cfg.CachePeriod)
	s.dramClock = engine.NewClock("dram", cfg.DRAMPeriod)
	s.masterClock = engine.NewClock("master", cfg.MasterPeriod)

	for i := 0; i < cfg.CacheModules; i++ {
		s.modules = append(s.modules, newCacheModule(s, i))
	}
	s.dram = newDRAM(s)
	for i := 0; i < cfg.Clusters; i++ {
		s.clusters = append(s.clusters, newCluster(s, i))
	}
	s.ps = newPSUnit(s)
	s.spawn = newSpawnUnit(s)
	s.master = newMaster(s)
	s.icn = newICN(s)
	s.asyncPortFree = make([]engine.Time, cfg.Clusters+1)
	s.aliveTCUs = cfg.TCUs()
	if cfg.RaceCheck {
		s.race = race.New(cfg.TCUs())
	}
	if cfg.FaultPlan != "" {
		inj, err := newInjector(s)
		if err != nil {
			return nil, fmt.Errorf("cycle: %v", err)
		}
		s.injector = inj
	}

	// Resolve the host worker count: 0 means all of GOMAXPROCS; never
	// more workers than clusters. A single worker uses no pool at all —
	// the identical two-phase tick/commit loop runs inline.
	workers := cfg.HostWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Clusters {
		workers = cfg.Clusters
	}
	s.hostWorkers = workers
	if workers > 1 {
		s.pool = engine.NewWorkerPool(workers)
	}
	s.clusterMA = engine.NewParallelMacroActor("clusters", s.Sched, s.clusterClock, s.pool)
	for _, c := range s.clusters {
		s.clusterMA.Add(c)
	}
	s.clusterMA.SetLookahead(deriveLookahead(&cfg), cfg.EngineMode == config.EngineOptimistic)
	s.icnMA = engine.NewMacroActor("icn", s.Sched, s.icnClock, s.icn)
	s.cacheMA = engine.NewMacroActor("caches", s.Sched, s.cacheClock)
	for _, cm := range s.modules {
		s.cacheMA.Add(cm)
	}
	s.masterMA = engine.NewMacroActor("master", s.Sched, s.masterClock, s.master)

	s.commitCycle, s.commitNow = -1, -1
	mach.CycleFn = func() int64 {
		if s.commitCycle >= 0 {
			return s.commitCycle
		}
		return s.clusterClock.Cycle(s.Sched.Now())
	}
	return s, nil
}

// deriveLookahead resolves Config.Lookahead into a window size in cluster
// cycles. 0 (the default) derives the window from the minimum cross-cluster
// latency: the soonest a package injected now can act back on any cluster
// is an ICN traversal out, a cache hit, and a traversal back. Faster
// feedback paths (the prefix-sum unit, package deliveries) are scheduler
// events, and windows never extend past the next pending event, so they
// need no bound here. Correctness never depends on the value at all
// (windows also close at every shared-state record); the derivation just
// picks a good batch size. Clamped to [1, 64].
func deriveLookahead(cfg *config.Config) int {
	if cfg.Lookahead > 0 {
		return cfg.Lookahead
	}
	minLat := 2*cfg.ICNBaseLatency*cfg.ICNPeriod + cfg.CacheHitLatency*cfg.CachePeriod
	w := int(minLat / cfg.ClusterPeriod)
	if w < 1 {
		w = 1
	}
	if w > 64 {
		w = 64
	}
	return w
}

// Lookahead returns the resolved window size in cluster cycles.
func (s *System) Lookahead() int { return s.clusterMA.Lookahead() }

// Rollbacks returns how many optimistic window overruns were rolled back
// and replayed (always 0 in conservative modes).
func (s *System) Rollbacks() uint64 { return s.clusterMA.Rollbacks() }

// beginCommit/endCommit bracket one window cycle's outbox replay, exposing
// the committing cycle and its edge time to effects that run inside it.
func (s *System) beginCommit(cycle int64, now engine.Time) {
	s.commitCycle, s.commitNow = cycle, now
}

func (s *System) endCommit() {
	s.commitCycle, s.commitNow = -1, -1
}

// SetTrace installs an instruction observer (tcu = -1 for the master).
func (s *System) SetTrace(fn func(tcu int, pc int, in isa.Instr, now engine.Time)) {
	s.traceFn = fn
}

// SetEventLog enables structured event tracing into l: per-cluster rings
// collect events from the parallel compute phase and drain into l at outbox
// commit (cluster-id order), so the log — and the Chrome trace exported
// from it — is bit-identical for any host worker count.
func (s *System) SetEventLog(l *trace.EventLog) {
	s.evlog = l
	for _, c := range s.clusters {
		c.evRing = trace.NewRing(0)
	}
}

// EventLog returns the attached structured event log (nil when disabled).
func (s *System) EventLog() *trace.EventLog { return s.evlog }

// ChromeMeta describes the machine shape for the Chrome trace exporter.
func (s *System) ChromeMeta() trace.ChromeMeta {
	return trace.ChromeMeta{Clusters: s.Cfg.Clusters, TCUsPerCluster: s.Cfg.TCUsPerCluster}
}

// AttachProfile enables the cycle profiler: p must have been sized with
// Clusters+1 shards (NewLineProfile(prog, cfg.Clusters+1)). Each cluster
// attributes into its own shard from its compute phase, the master into the
// last; merged totals are worker-count independent.
func (s *System) AttachProfile(p *stats.LineProfile) {
	s.profile = p
	for i, c := range s.clusters {
		c.prof = p.Shard(i)
	}
	s.master.prof = p.Shard(len(s.clusters))
}

// Master context accessor (for tests and checkpoints).
func (s *System) MasterContext() *funcmodel.Context { return &s.master.ctx }

// HostWorkers returns the resolved number of host worker goroutines
// ticking the cluster shards (1 = serial).
func (s *System) HostWorkers() int { return s.hostWorkers }

// StartCycle returns the cluster cycle this system starts counting from:
// zero for a fresh system, the checkpoint's cycle offset after RestoreState.
func (s *System) StartCycle() int64 { return s.cycleOffset }

// AliveTCUs returns the number of TCUs not decommissioned by permanent
// faults.
func (s *System) AliveTCUs() int { return s.aliveTCUs }

// Release returns the machine's shared-memory buffer to the recycling pool.
// Optional; call only after the run's results (including Machine.Mem) have
// been read. The system must not be used afterwards. Batch drivers that
// simulate many programs back-to-back avoid re-zeroing tens of megabytes of
// fresh memory per run.
func (s *System) Release() { s.Machine.ReleaseMemory() }

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a <= 0 {
		return 1
	}
	return a
}

// route delivers an expiring package back to its originating context and
// recycles the package. This is the single free point of the cluster
// package pools: a package allocated in a cluster's compute phase lives
// until the memory system routes its (possibly in-place mutated) response
// back here. Master packages are unpooled.
func (s *System) route(p *Package, now engine.Time) {
	if p.Cluster < 0 {
		s.master.deliver(p, now)
		return
	}
	c := s.clusters[p.Cluster]
	c.tcus[p.TCU].deliver(p, now)
	c.freePkg(p)
}

// pkgDeliver is a pooled actor that routes one package at its scheduled
// time — the allocation-free replacement for the per-response closure the
// cache modules used to capture.
type pkgDeliver struct {
	sys *System
	p   *Package
}

func (d *pkgDeliver) Notify(now engine.Time) {
	p := d.p
	d.p = nil
	d.sys.delivFree = append(d.sys.delivFree, d)
	d.sys.route(p, now)
}

// scheduleDeliver routes p at time at (PrioTransfer), via the actor pool.
func (s *System) scheduleDeliver(p *Package, at engine.Time) {
	var d *pkgDeliver
	if n := len(s.delivFree); n > 0 {
		d = s.delivFree[n-1]
		s.delivFree = s.delivFree[:n-1]
	} else {
		d = &pkgDeliver{sys: s}
	}
	d.p = p
	s.Sched.Schedule(at, engine.PrioTransfer, d)
}

// RaceDetector returns the xmtsan detector (nil unless Cfg.RaceCheck).
func (s *System) RaceDetector() *race.Detector { return s.race }

// raceRead and raceWrite funnel shared-memory accesses into the sanitizer
// and surface any freshly confirmed reports. Nil-safe; serial contexts only.
func (s *System) raceRead(tcu int, addr uint32, line int, now engine.Time) {
	if s.race == nil {
		return
	}
	s.race.Read(tcu, addr, line)
	s.drainRaces(now)
}

func (s *System) raceWrite(tcu int, addr uint32, line int, now engine.Time) {
	if s.race == nil {
		return
	}
	s.race.Write(tcu, addr, line)
	s.drainRaces(now)
}

// drainRaces publishes newly confirmed race reports into the counters and
// the structured event stream, in detection order.
func (s *System) drainRaces(now engine.Time) {
	s.Stats.RaceChecks = s.race.Checks()
	reps := s.race.Reports()
	for ; s.raceEmitted < len(reps); s.raceEmitted++ {
		r := &reps[s.raceEmitted]
		s.Stats.RaceReports++
		if s.evlog != nil {
			s.evlog.Emit(trace.Event{TS: now, Kind: trace.EvRace,
				Ctx: int32(r.WriteTCU), PC: int32(r.WriteLine), Arg: int64(r.OtherLine)})
		}
	}
}

func (s *System) wakeClusters(now engine.Time) { s.clusterMA.Wake(now) }
func (s *System) wakeCaches(now engine.Time)   { s.cacheMA.Wake(now) }
func (s *System) wakeMaster(now engine.Time)   { s.masterMA.Wake(now) }
func (s *System) wakeICN(now engine.Time)      { s.icnMA.Wake(now) }

func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	// Stopping from inside a window commit: the scheduler clock still reads
	// the window-entry time; advance it to the failing cycle's edge so
	// Result.Cycles/Ticks match the single-cycle engine.
	if s.commitNow >= 0 {
		s.Sched.AdvanceTo(s.commitNow)
	}
	s.Sched.Stop()
}

func (s *System) halt() {
	s.halted = true
	s.Machine.Halted = true
	if s.commitNow >= 0 {
		s.Sched.AdvanceTo(s.commitNow)
	}
	s.Sched.Stop()
}

// Err returns the first simulation error, if any.
func (s *System) Err() error { return s.err }

// Run simulates until the program halts or maxCycles cluster cycles elapse
// (maxCycles <= 0 means unlimited). A drained event list with a non-halted
// program is reported as a deadlock — it indicates a component bug or a
// program waiting on something that can never arrive.
func (s *System) Run(maxCycles int64) (*Result, error) {
	defer s.pool.Close() // park worker goroutines between runs (nil-safe)
	var stopEv *engine.Event
	if maxCycles > 0 {
		stopEv = s.Sched.ScheduleStop(s.clusterClock.EdgeAt(maxCycles))
	}
	if s.injector != nil {
		s.injector.schedule()
	}
	if s.Cfg.WatchdogCycles > 0 {
		s.armWatchdog(s.Stats.TotalInstrs())
	}
	if s.ckptEvery > 0 {
		s.nextCkpt = s.cycleOffset + s.ckptEvery
	}
	s.wakeMaster(s.Sched.Now())
	for _, pb := range s.plugins {
		pb.scheduleNext(s, s.Sched.Now())
	}
	s.Sched.Run()
	_ = stopEv

	// Events emitted after the last commit (deliveries, final wait spans)
	// are still sitting in the cluster rings: drain them, in cluster order.
	if s.evlog != nil {
		for _, c := range s.clusters {
			s.evlog.Drain(c.evRing)
		}
	}

	res := &Result{
		Cycles:     s.cycleOffset + s.clusterClock.Cycle(s.Sched.Now()),
		Ticks:      s.Sched.Now(),
		Instrs:     s.Stats.TotalInstrs(),
		Halted:     s.halted,
		Checkpoint: s.checkpointed,
	}
	if s.err != nil {
		return res, s.err
	}
	if !s.halted && !s.checkpointed {
		if maxCycles > 0 && s.Sched.Now() >= s.clusterClock.EdgeAt(maxCycles) {
			res.TimedOut = true
			return res, nil
		}
		// Reached only when the watchdog is disabled (an armed watchdog
		// keeps at least one event pending and reports the wedge itself).
		return res, errors.New("cycle: simulation deadlock: event list drained before halt (enable watchdog_cycles for a progress diagnosis)")
	}
	return res, nil
}

// CheckpointEvery enables periodic checkpointing: the master stops the run
// at its next quiescent point (serial mode, write buffer drained) once n
// cluster cycles have elapsed since the last checkpoint, and Run returns
// with Result.Checkpoint set. Used by the xmtbatch runner to bound how much
// work a retry can lose. n <= 0 disables.
func (s *System) CheckpointEvery(n int64) { s.ckptEvery = n }

// RequestCheckpoint asks the running simulation to stop at its next
// architecturally quiescent point (serial mode, write buffer drained) with
// Result.Checkpoint set, exactly as if a periodic checkpoint had come due.
// Unlike every other System method it is safe to call from any goroutine —
// signal handlers and the xmtd daemon's preemption path use it to yield a
// run without perturbing its results. A program that never returns to
// serial mode (wedged inside a spawn region) never reaches a quiescent
// point; callers needing a hard stop must also bound the run with a cycle
// budget or the watchdog.
func (s *System) RequestCheckpoint() { s.ckptReq.Store(true) }

// checkpointStop halts the scheduler at a quiescent checkpoint trap.
func (s *System) checkpointStop() {
	s.checkpointed = true
	if s.commitNow >= 0 {
		s.Sched.AdvanceTo(s.commitNow)
	}
	s.Sched.Stop()
}

// Capture snapshots the architectural state after a checkpoint stop (or a
// halted run). The master context is copied into the machine so a plain
// functional checkpoint captures everything needed to resume.
func (s *System) Capture() *checkpoint.State {
	s.Machine.Master = s.master.ctx
	st := checkpoint.Capture(s.Machine, s.cycleOffset+s.clusterClock.Cycle(s.Sched.Now()))
	for _, c := range s.clusters {
		for _, t := range c.tcus {
			if !t.alive {
				st.DeadTCUs = append(st.DeadTCUs, t.id)
			}
		}
	}
	return st
}

// RestoreState resumes a freshly built system from a checkpoint: memory,
// global registers and the master context are restored, and cycle counting
// continues from the recorded offset.
func (s *System) RestoreState(st *checkpoint.State) error {
	if err := checkpoint.Restore(s.Machine, st); err != nil {
		return err
	}
	s.master.ctx = st.Master
	s.cycleOffset = st.CycleOffset
	// Resume on the same degraded machine: TCUs decommissioned before the
	// capture stay dead (silently — the decommissions were already counted
	// and traced in the run that took the checkpoint).
	for _, id := range st.DeadTCUs {
		if id < 0 || id >= s.Cfg.TCUs() {
			return fmt.Errorf("cycle: checkpoint dead TCU %d outside machine (%d TCUs)", id, s.Cfg.TCUs())
		}
		t := s.tcuByID(id)
		if t.alive {
			t.alive = false
			t.setState(tcuDead)
			s.aliveTCUs--
		}
	}
	if s.aliveTCUs == 0 {
		return errors.New("cycle: checkpoint leaves no TCU alive")
	}
	return nil
}

// --- Activity plug-ins (paper §III-B) ---

// Snapshot is what an activity plug-in sees at each sampling interval.
type Snapshot struct {
	Now   engine.Time
	Cycle int64 // cluster-domain cycle, including any checkpoint-resume offset
	Stats *stats.Collector
	// AliveTCUs counts TCUs not decommissioned by permanent faults.
	AliveTCUs int
}

// Control is the runtime API an activity plug-in uses to modify the
// operation of the cycle-accurate components: changing clock-domain
// frequencies, gating domains off and on, or stopping the simulation —
// the mechanism that enables dynamic power and thermal management studies.
type Control struct {
	sys *System
	now engine.Time
}

// Domains lists the clock-domain names.
func (c *Control) Domains() []string {
	return []string{"cluster", "icn", "cache", "dram", "master"}
}

func (c *Control) clock(domain string) (*engine.Clock, error) {
	switch domain {
	case "cluster":
		return c.sys.clusterClock, nil
	case "icn":
		return c.sys.icnClock, nil
	case "cache":
		return c.sys.cacheClock, nil
	case "dram":
		return c.sys.dramClock, nil
	case "master":
		return c.sys.masterClock, nil
	}
	return nil, fmt.Errorf("cycle: unknown clock domain %q", domain)
}

// Period returns a domain's current period (0 when gated off).
func (c *Control) Period(domain string) (int64, error) {
	clk, err := c.clock(domain)
	if err != nil {
		return 0, err
	}
	return clk.Period(), nil
}

// SetPeriod changes a domain's frequency at the current sample time.
func (c *Control) SetPeriod(domain string, period int64) error {
	clk, err := c.clock(domain)
	if err != nil {
		return err
	}
	if period <= 0 {
		return fmt.Errorf("cycle: period must be positive")
	}
	clk.SetPeriod(c.now, period)
	c.sys.wakeAll(c.now)
	return nil
}

// Disable gates a domain off.
func (c *Control) Disable(domain string) error {
	clk, err := c.clock(domain)
	if err != nil {
		return err
	}
	clk.Disable(c.now)
	return nil
}

// Enable restores a gated domain.
func (c *Control) Enable(domain string) error {
	clk, err := c.clock(domain)
	if err != nil {
		return err
	}
	clk.Enable(c.now)
	c.sys.wakeAll(c.now)
	return nil
}

// Stop ends the simulation from the plug-in.
func (c *Control) Stop() { c.sys.Sched.Stop() }

func (s *System) wakeAll(now engine.Time) {
	s.clusterMA.Wake(now)
	s.icnMA.Wake(now)
	s.cacheMA.Wake(now)
	s.masterMA.Wake(now)
}

// ActivityPlugin is the activity plug-in interface of Fig. 3: it reads the
// instruction and activity counters at regular intervals of simulated time
// and may control the machine through the Control API (e.g. a DVFS or
// thermal-management policy).
type ActivityPlugin interface {
	Name() string
	// IntervalCycles is the sampling period in cluster cycles.
	IntervalCycles() int64
	// Sample observes the machine and optionally adjusts it.
	Sample(snap *Snapshot, ctl *Control)
}

type pluginBinding struct {
	plugin ActivityPlugin
}

// AddActivityPlugin registers a plug-in; it starts sampling when Run is
// called.
func (s *System) AddActivityPlugin(p ActivityPlugin) {
	s.plugins = append(s.plugins, &pluginBinding{plugin: p})
}

func (pb *pluginBinding) scheduleNext(s *System, now engine.Time) {
	interval := pb.plugin.IntervalCycles()
	if interval <= 0 {
		return
	}
	period := s.clusterClock.Period()
	if period <= 0 {
		period = s.Cfg.ClusterPeriod // domain gated: sample on nominal period
	}
	at := now + interval*period
	s.Sched.ScheduleFunc(at, engine.PrioStop-1, func(t engine.Time) {
		if s.Sched.Stopped() {
			return
		}
		snap := &Snapshot{Now: t, Cycle: s.cycleOffset + s.clusterClock.Cycle(t),
			Stats: s.Stats, AliveTCUs: s.aliveTCUs}
		pb.plugin.Sample(snap, &Control{sys: s, now: t})
		pb.scheduleNext(s, t)
	})
}
