package cycle

// tagArray is a set-associative, LRU tag store. The simulated memory data
// always lives in the functional model (the shared cache modules are the
// coherence point of XMT's shared L1, so a module's data equals memory);
// tag arrays model hit/miss timing only. Prefetch buffers are the one place
// that stores actual (possibly stale) line data — see prefetch.go.
type tagArray struct {
	lineShift uint
	setMask   uint32
	assoc     int
	tags      []uint32
	valid     []bool
	lastUse   []int64
}

func log2u(v uint32) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// newTagArray builds a tag store with the given total line count,
// associativity and line size (both powers of two are required by config
// validation; line count is rounded down to a multiple of assoc sets).
func newTagArray(lines, assoc, lineSize int) *tagArray {
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	n := sets * assoc
	return &tagArray{
		lineShift: log2u(uint32(lineSize)),
		setMask:   uint32(sets - 1),
		assoc:     assoc,
		tags:      make([]uint32, n),
		valid:     make([]bool, n),
		lastUse:   make([]int64, n),
	}
}

func (t *tagArray) set(addr uint32) int {
	return int((addr >> t.lineShift) & t.setMask)
}

// Lookup probes the tag store, updating LRU state on a hit.
func (t *tagArray) Lookup(addr uint32, cycle int64) bool {
	line := addr >> t.lineShift
	base := t.set(addr) * t.assoc
	for w := 0; w < t.assoc; w++ {
		if t.valid[base+w] && t.tags[base+w] == line {
			t.lastUse[base+w] = cycle
			return true
		}
	}
	return false
}

// Fill installs the line, evicting the LRU way.
func (t *tagArray) Fill(addr uint32, cycle int64) {
	line := addr >> t.lineShift
	base := t.set(addr) * t.assoc
	victim := base
	for w := 0; w < t.assoc; w++ {
		i := base + w
		if !t.valid[i] {
			victim = i
			break
		}
		if t.lastUse[i] < t.lastUse[victim] {
			victim = i
		}
	}
	t.tags[victim] = line
	t.valid[victim] = true
	t.lastUse[victim] = cycle
}

// InvalidateAll flash-clears the tag store (used at spawn boundaries for
// the master cache and cluster read-only caches).
func (t *tagArray) InvalidateAll() {
	for i := range t.valid {
		t.valid[i] = false
	}
}

// LineAddr returns the line-aligned base of addr.
func (t *tagArray) LineAddr(addr uint32) uint32 {
	return addr >> t.lineShift << t.lineShift
}
