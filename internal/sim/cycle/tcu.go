package cycle

import (
	"fmt"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/trace"
)

// tcuState is the scheduling state of one TCU.
type tcuState uint8

const (
	tcuIdle      tcuState = iota // serial mode; not participating
	tcuRunning                   // may issue at the next cluster edge
	tcuStalled                   // local/shared-unit latency until stallUntil
	tcuWaitMem                   // blocked on a memory / prefix-sum response
	tcuWaitFence                 // waiting for pending non-blocking stores
	tcuDraining                  // out of work, draining posted stores before done
	tcuDone                      // blocked at chkid; all its work is finished
	tcuDead                      // permanently decommissioned by an injected fault
)

// TCU is one lightweight parallel core: private ALU, shift and branch
// units, a prefetch buffer, and access to the cluster-shared FPU/MDU and
// the memory system. TCUs execute virtual threads handed out by the
// prefix-sum-based spawn protocol.
type TCU struct {
	sys     *System
	cluster *Cluster
	id      int // global TCU index
	local   int // index within the cluster

	ctx   funcmodel.Context
	state tcuState

	// Fault-injection state (docs/ROBUSTNESS.md). alive starts true and goes
	// false exactly once, at decommission. failing marks a TCU hit by a
	// permanent fault mid-thread; it decommissions itself at the next safe
	// point in its compute phase. doneCounted records whether this TCU's
	// completion has been counted by the spawn unit (its obDone committed) —
	// needed so decommissioning a done TCU adjusts the join count correctly.
	alive       bool
	failing     bool
	doneCounted bool

	stallUntil   int64 // cluster cycle (tcuStalled)
	pendingNB    int   // outstanding non-blocking stores
	memWaitStart engine.Time
	blockPC      int32 // PC of the instruction blocked in tcuWaitMem
	blockOp      isa.Op
	waitPS       bool // the block is on the prefix-sum unit, not memory

	pbuf prefetchBuffer

	// pendingPbufLoad is the load instruction blocked on an in-flight
	// prefetch fill (so it can commit straight from the filled line).
	pendingPbufLoad isa.Instr
	pendingPbufAddr uint32
	waitingPbuf     bool
}

// resetForSpawn re-initializes the TCU at spawn onset: zeroed registers
// with the broadcast master-register image applied, PC at the first
// broadcast instruction.
func (t *TCU) resetForSpawn(pc int, bcastMask uint32, bcast *[isa.NumRegs]int32) {
	t.ctx = funcmodel.Context{ID: t.id, PC: pc}
	for r := 0; r < isa.NumRegs; r++ {
		if bcastMask&(1<<uint(r)) != 0 {
			t.ctx.Reg[r] = bcast[r]
		}
	}
	t.state = tcuRunning
	t.stallUntil = 0
	t.pendingNB = 0
	t.waitingPbuf = false
	t.doneCounted = false
	t.pbuf.invalidateAll()
}

// Tick advances the TCU by one cluster cycle. It returns whether the TCU
// needs further ticks (a memory-blocked TCU is woken by its response event
// instead).
func (t *TCU) Tick(cycle int64, now engine.Time) bool {
	switch t.state {
	case tcuIdle, tcuDone, tcuDraining, tcuDead:
		return false
	case tcuWaitMem:
		return false
	case tcuWaitFence:
		if t.pendingNB > 0 {
			return false
		}
		t.state = tcuRunning
	case tcuStalled:
		if cycle < t.stallUntil {
			return true
		}
		t.state = tcuRunning
	}
	if t.failing {
		// Safe point: no in-flight blocking request. Posted stores must
		// still drain (the memory system would deliver into a dead TCU);
		// until then the TCU issues nothing.
		if t.pendingNB > 0 {
			return false
		}
		t.cluster.ob.decomm(t)
		t.state = tcuDead
		return false
	}
	return t.issue(cycle, now)
}

// issue fetches and dispatches one instruction. It runs in the compute
// phase of the cluster tick, which may execute concurrently with other
// clusters: it only mutates TCU/cluster-local state and reads shared state;
// every shared effect goes through the cluster outbox (see outbox.go).
func (t *TCU) issue(cycle int64, now engine.Time) bool {
	m := t.sys.Machine
	region := t.sys.spawn.region
	if region == nil {
		t.state = tcuIdle
		return false
	}
	pc := t.ctx.PC
	if pc <= region.Spawn || pc > region.Join {
		t.cluster.ob.fail(fmt.Errorf("cycle: TCU %d fetched instruction %d outside the broadcast region (%d,%d]",
			t.id, pc, region.Spawn, region.Join))
		return false
	}
	in := m.Prog.Text[pc]
	t.ctx.PC++

	if t.sys.traceFn != nil {
		t.cluster.ob.trace(t, pc, in)
	}
	if t.cluster.evRing != nil {
		t.cluster.evRing.Emit(trace.Event{TS: now, Dur: t.sys.clusterClock.Period(),
			Kind: trace.EvInstr, Op: in.Op, Ctx: int32(t.id), PC: int32(pc), Arg: int64(in.Line)})
	}
	if t.cluster.prof != nil {
		t.cluster.prof.Issue(pc)
	}

	count := func() { t.cluster.ob.count(in.Op) }
	meta := in.Op.Meta()

	switch {
	case in.Op == isa.OpJoin:
		// Falling into join: this TCU's current virtual thread ended at the
		// region boundary; the TCU is done (it must re-grab via ps, which
		// the compiler always places before chkid, so reaching join means
		// the code simply ran off the region: treat as done).
		count()
		t.finish(now)
		return false

	case in.Op == isa.OpChkid:
		count()
		id := t.ctx.Reg[in.Rd]
		if id > t.sys.spawn.high {
			t.finish(now)
			return false
		}
		return true

	case in.Op == isa.OpPs, in.Op == isa.OpGrr, in.Op == isa.OpGrw:
		count()
		t.blockMem(now, pc, in.Op)
		t.waitPS = true
		// The prefix-sum unit paces requests through a shared per-cycle
		// window; submit at commit so slots are granted in cluster order.
		t.cluster.ob.ps(t, in)
		return false

	case in.Op == isa.OpFence:
		count()
		t.pbuf.invalidateAll()
		if t.pendingNB > 0 {
			t.state = tcuWaitFence
			return false
		}
		return true

	case in.Op == isa.OpSys:
		count()
		// Syscalls print to the shared output stream (and may halt): defer
		// to commit so output interleaves in deterministic cluster order.
		t.cluster.ob.sys(t, pc, in)
		return true

	case in.Op == isa.OpPsm:
		addr := m.EffAddr(&t.ctx, in)
		if !t.trySend(&Package{Kind: PkgPsm, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Data: t.ctx.Reg[in.Rd], Issued: now}) {
			t.ctx.PC = pc // retry next cycle
			return true
		}
		count()
		t.cluster.ob.stat(&t.sys.Stats.PsmOps, 1)
		t.blockMem(now, pc, in.Op)
		return false

	case in.Op == isa.OpPref:
		count()
		addr := m.EffAddr(&t.ctx, in)
		la := t.pbuf.lineOf(addr)
		if t.pbuf.find(addr) != nil {
			return true // already buffered or in flight
		}
		e := t.pbuf.allocate(la, cycle)
		if e == nil {
			return true // all slots in flight; drop the hint
		}
		if !t.trySend(&Package{Kind: PkgPrefetch, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: la, LineAddr: la, Issued: now}) {
			e.valid = false // could not inject; drop
			return true
		}
		t.cluster.ob.stat(&t.sys.Stats.PrefetchFills, 1)
		return true

	case in.Op == isa.OpLwRO:
		count()
		addr := m.EffAddr(&t.ctx, in)
		if t.cluster.ro != nil && t.cluster.ro.Lookup(addr, cycle) {
			t.cluster.ob.stat(&t.sys.Stats.ROHits, 1)
			v, err := m.LoadValue(in, addr)
			if err != nil {
				t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
				return false
			}
			if t.sys.race != nil {
				t.cluster.ob.race(t, addr, in)
			}
			t.ctx.SetReg(in.Rd, v)
			t.stall(cycle + t.sys.Cfg.ROCacheLatency)
			return true
		}
		t.cluster.ob.stat(&t.sys.Stats.ROMisses, 1)
		if !t.trySend(&Package{Kind: PkgLoad, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Issued: now}) {
			t.ctx.PC = pc
			return true
		}
		t.blockMem(now, pc, in.Op)
		return false

	case meta.Load: // lw, lb, lbu
		addr := m.EffAddr(&t.ctx, in)
		if e := t.pbuf.find(addr); e != nil {
			count()
			if e.ready {
				t.cluster.ob.stat(&t.sys.Stats.PrefetchHits, 1)
				e.lastUse = cycle
				// xmtsan: a hit on prefetched data is exactly the stale-read
				// mechanism of paper Fig. 6 — record it as this TCU's read.
				if t.sys.race != nil {
					t.cluster.ob.race(t, addr, in)
				}
				t.ctx.SetReg(in.Rd, extractPbuf(e, in, addr))
				return true
			}
			// The line's fill is in flight: wait for it instead of issuing
			// duplicate traffic; the load commits straight from the fill.
			e.waiter = t
			t.waitingPbuf = true
			t.pendingPbufLoad = in
			t.pendingPbufAddr = addr
			t.blockMem(now, pc, in.Op)
			return false
		}
		if !t.trySend(&Package{Kind: PkgLoad, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Issued: now}) {
			t.ctx.PC = pc
			return true
		}
		count()
		t.blockMem(now, pc, in.Op)
		return false

	case meta.Store: // sw, sb, sw.nb
		addr := m.EffAddr(&t.ctx, in)
		kind := PkgStore
		if in.Op == isa.OpSwNB {
			kind = PkgStoreNB
		}
		if !t.trySend(&Package{Kind: kind, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Data: t.ctx.Reg[in.Rd], Issued: now}) {
			t.ctx.PC = pc
			return true
		}
		count()
		if kind == PkgStoreNB {
			t.pendingNB++
			return true
		}
		t.blockMem(now, pc, in.Op)
		return false

	case meta.Unit == isa.UnitMDU || meta.Unit == isa.UnitFPU:
		lat, ok := t.cluster.acquire(meta.Unit, cycle, int64(meta.Latency))
		if !ok {
			t.sys.Stats.Cluster[t.cluster.id].FPUWaitCycles++
			t.ctx.PC = pc // retry next cycle
			return true
		}
		count()
		if err := m.ExecCompute(&t.ctx, in); err != nil {
			t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
			return false
		}
		t.stall(cycle + lat)
		return true

	case meta.Branch:
		count()
		taken, target, err := m.EvalBranch(&t.ctx, in)
		if err != nil {
			t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
			return false
		}
		if taken {
			t.ctx.PC = target
		}
		return true

	case in.Op == isa.OpSpawn, in.Op == isa.OpBcast:
		t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in,
			Err: fmt.Errorf("%s executed by a parallel TCU", in.Op)})
		return false

	default:
		count()
		if err := m.ExecCompute(&t.ctx, in); err != nil {
			t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
			return false
		}
		return true
	}
}

func extractPbuf(e *pbufEntry, in isa.Instr, addr uint32) int32 {
	word := e.read(addr&^3, 4)
	switch in.Op {
	case isa.OpLw:
		return word
	case isa.OpLb:
		return int32(int8(word >> (8 * (addr & 3))))
	case isa.OpLbu:
		return int32(uint8(word >> (8 * (addr & 3))))
	}
	return word
}

func (t *TCU) stall(until int64) {
	t.state = tcuStalled
	t.stallUntil = until
}

func (t *TCU) blockMem(now engine.Time, pc int, op isa.Op) {
	t.state = tcuWaitMem
	t.memWaitStart = now
	t.blockPC = int32(pc)
	t.blockOp = op
	t.waitPS = false
}

func (t *TCU) unblock(now engine.Time) {
	if t.state == tcuWaitMem {
		wait := now - t.memWaitStart
		if wait > 0 {
			cycles := uint64(wait / t.sys.clusterClock.Period())
			cs := &t.sys.Stats.Cluster[t.cluster.id]
			if t.waitPS {
				cs.PSWaitCycles += cycles
			} else {
				cs.MemWaitCycles += cycles
			}
			if t.cluster.prof != nil {
				t.cluster.prof.Stall(int(t.blockPC), cycles)
			}
			if t.cluster.evRing != nil {
				kind := trace.EvMemWait
				if t.waitPS {
					kind = trace.EvPSWait
				}
				t.cluster.evRing.Emit(trace.Event{TS: t.memWaitStart, Dur: wait,
					Kind: kind, Op: t.blockOp, Ctx: int32(t.id), PC: t.blockPC})
			}
		}
		t.waitPS = false
	}
	t.state = tcuRunning
	t.sys.wakeClusters(now)
}

// finish marks the TCU done for this spawn and notifies the spawn unit.
// Posted stores must drain first, so the end of the spawn statement orders
// memory as the XMT memory model requires. Called from issue (compute
// phase), so the spawn-unit notification is deferred to commit.
func (t *TCU) finish(now engine.Time) {
	if t.pendingNB > 0 {
		t.state = tcuDraining
		return
	}
	t.state = tcuDone
	t.cluster.ob.done(t)
}

// trySend enqueues a package into the cluster's ICN send queue.
func (t *TCU) trySend(p *Package) bool {
	return t.cluster.send(p)
}

// deliver commits an expiring package back at the TCU (the "commit stage"
// of the paper's package life cycle).
func (t *TCU) deliver(p *Package, now engine.Time) {
	if !t.alive {
		// The TCU was decommissioned while this package was in flight (only
		// possible for non-blocking responses: a TCU with a blocking request
		// outstanding never reaches its decommission safe point). Drop it.
		return
	}
	if p.Err != nil {
		t.sys.fail(&funcmodel.RuntimeError{PC: 0, Line: p.In.Line, In: p.In, Err: p.Err})
		return
	}
	switch p.Kind {
	case PkgLoad:
		t.ctx.SetReg(p.In.Rd, p.Data)
		if p.In.Op == isa.OpLwRO && t.cluster.ro != nil {
			t.cluster.ro.Fill(p.Addr, t.sys.clusterClock.Cycle(now))
		}
		t.recordLoadLatency(p, now)
		t.unblock(now)
	case PkgPsm:
		t.ctx.SetReg(p.In.Rd, p.Data)
		// Prefix-sum completion orders memory: flush stale prefetches.
		t.pbuf.invalidateAll()
		t.recordLoadLatency(p, now)
		t.unblock(now)
	case PkgStore:
		t.unblock(now)
	case PkgStoreNB:
		t.pendingNB--
		switch {
		case t.state == tcuWaitFence && t.pendingNB == 0:
			t.unblock(now)
		case t.state == tcuDraining && t.pendingNB == 0:
			t.state = tcuDone
			if t.failing {
				// Thread already finished; only the drain held the
				// decommission back. Delivery runs on the scheduler
				// goroutine, so decommission directly.
				t.sys.decommissionTCU(t, true, false, now)
			} else {
				t.sys.spawn.tcuDone(t, now)
			}
		default:
			t.sys.wakeClusters(now)
		}
	case PkgPrefetch:
		la := p.LineAddr
		for i := range t.pbuf.entries {
			e := &t.pbuf.entries[i]
			if e.valid && e.lineAddr == la && !e.ready {
				e.ready = true
				e.data = p.Line
				if e.waiter != nil {
					w := e.waiter
					e.waiter = nil
					if w.waitingPbuf {
						w.waitingPbuf = false
						if t.sys.race != nil {
							// Delivery runs on the scheduler goroutine:
							// record the waiter's read directly.
							t.sys.raceRead(w.id, w.pendingPbufAddr, w.pendingPbufLoad.Line, now)
						}
						w.ctx.SetReg(w.pendingPbufLoad.Rd, extractPbuf(e, w.pendingPbufLoad, w.pendingPbufAddr))
						t.sys.Stats.PrefetchHits++
						w.unblock(now)
					}
				}
				break
			}
		}
		t.sys.wakeClusters(now)
	}
}

func (t *TCU) recordLoadLatency(p *Package, now engine.Time) {
	t.sys.Stats.LoadLatencySum += uint64(now - p.Issued)
	t.sys.Stats.LoadLatencyCount++
	t.sys.Stats.LoadLatency.Observe(uint64(now - p.Issued))
}

// psDelivered commits a prefix-sum/global-register response.
func (t *TCU) psDelivered(in isa.Instr, old int32, now engine.Time) {
	switch in.Op {
	case isa.OpPs, isa.OpGrr:
		t.ctx.SetReg(in.Rd, old)
	}
	if in.Op == isa.OpPs {
		// ps completion orders memory like psm: flush stale prefetches.
		t.pbuf.invalidateAll()
		// xmtsan: a ps on an application global register is the release/
		// acquire primitive; the virtual-thread-id grab at spawn onset is
		// allocation, not synchronization.
		if t.sys.race != nil && in.G != isa.GRegSpawn {
			t.sys.race.Sync(t.id)
		}
	}
	t.unblock(now)
}
