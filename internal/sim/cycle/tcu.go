package cycle

import (
	"fmt"

	"xmtgo/internal/isa"
	"xmtgo/internal/sim/engine"
	"xmtgo/internal/sim/funcmodel"
	"xmtgo/internal/sim/trace"
)

// tcuState is the scheduling state of one TCU.
type tcuState uint8

const (
	tcuIdle      tcuState = iota // serial mode; not participating
	tcuRunning                   // may issue at the next cluster edge
	tcuStalled                   // local/shared-unit latency until stallUntil
	tcuWaitMem                   // blocked on a memory / prefix-sum response
	tcuWaitFence                 // waiting for pending non-blocking stores
	tcuDraining                  // out of work, draining posted stores before done
	tcuDone                      // blocked at chkid; all its work is finished
	tcuDead                      // permanently decommissioned by an injected fault
)

// tickableStates marks the states whose Tick can make progress without an
// external delivery: these are the only TCUs the cluster tick must visit.
// tcuWaitFence's fence check is self-contained, so it stays tickable even
// though it usually waits on store responses.
const tickableStates = 1<<tcuRunning | 1<<tcuStalled | 1<<tcuWaitFence

// activeStates marks the states that count toward the cluster's BusyCycles
// attribution (everything but idle/done/dead).
const activeStates = 1<<tcuRunning | 1<<tcuStalled | 1<<tcuWaitMem |
	1<<tcuWaitFence | 1<<tcuDraining

// TCU is one lightweight parallel core: private ALU, shift and branch
// units, a prefetch buffer, and access to the cluster-shared FPU/MDU and
// the memory system. TCUs execute virtual threads handed out by the
// prefix-sum-based spawn protocol.
type TCU struct {
	sys     *System
	cluster *Cluster
	id      int // global TCU index
	local   int // index within the cluster

	ctx   funcmodel.Context
	state tcuState

	// Fault-injection state (docs/ROBUSTNESS.md). alive starts true and goes
	// false exactly once, at decommission. failing marks a TCU hit by a
	// permanent fault mid-thread; it decommissions itself at the next safe
	// point in its compute phase. doneCounted records whether this TCU's
	// completion has been counted by the spawn unit (its obDone committed) —
	// needed so decommissioning a done TCU adjusts the join count correctly.
	alive       bool
	failing     bool
	doneCounted bool

	stallUntil   int64 // cluster cycle (tcuStalled)
	pendingNB    int   // outstanding non-blocking stores
	memWaitStart engine.Time
	blockPC      int32 // PC of the instruction blocked in tcuWaitMem
	blockOp      isa.Op
	waitPS       bool // the block is on the prefix-sum unit, not memory

	pbuf prefetchBuffer

	// pendingPbufLoad is the load instruction blocked on an in-flight
	// prefetch fill (so it can commit straight from the filled line).
	pendingPbufLoad isa.Instr
	pendingPbufAddr uint32
	waitingPbuf     bool

	// pendingSend stashes a package the ICN injection port refused, so the
	// retry next cycle skips re-fetch, effective-address computation and
	// package construction. Only ops whose retry has no other per-attempt
	// side effect use it (psm, plain loads, stores — not lwro, whose
	// RO-cache probe counts a miss per attempt, and not pref, which drops).
	// Cleared by any delivery at this TCU: a prefetch fill can turn the
	// retried load into a buffer hit, so the slow path must re-decide.
	pendingSend   *Package
	pendingSendPC int
	pendingSendIn isa.Instr
}

// setState transitions the TCU's scheduling state, maintaining the
// cluster's tickable-TCU bitmask and active count. Every state write after
// construction must go through here (or restore the mask wholesale, as the
// optimistic rollback does).
func (t *TCU) setState(ns tcuState) {
	os := t.state
	if os == ns {
		return
	}
	t.state = ns
	c := t.cluster
	if c.maskOK {
		if tickableStates&(1<<ns) != 0 {
			c.tickMask |= 1 << uint(t.local)
		} else {
			c.tickMask &^= 1 << uint(t.local)
		}
	}
	if activeStates&(1<<ns) != 0 {
		if activeStates&(1<<os) == 0 {
			c.nActive++
		}
	} else if activeStates&(1<<os) != 0 {
		c.nActive--
	}
}

// resetForSpawn re-initializes the TCU at spawn onset: zeroed registers
// with the broadcast master-register image applied, PC at the first
// broadcast instruction.
func (t *TCU) resetForSpawn(pc int, bcastMask uint32, bcast *[isa.NumRegs]int32) {
	t.ctx = funcmodel.Context{ID: t.id, PC: pc}
	for r := 0; r < isa.NumRegs; r++ {
		if bcastMask&(1<<uint(r)) != 0 {
			t.ctx.Reg[r] = bcast[r]
		}
	}
	t.setState(tcuRunning)
	t.stallUntil = 0
	t.pendingNB = 0
	t.waitingPbuf = false
	t.doneCounted = false
	t.pendingSend = nil
	t.pbuf.invalidateAll()
}

// Tick advances the TCU by one cluster cycle. It returns whether the TCU
// needs further ticks (a memory-blocked TCU is woken by its response event
// instead).
func (t *TCU) Tick(cycle int64, now engine.Time) bool {
	switch t.state {
	case tcuIdle, tcuDone, tcuDraining, tcuDead:
		return false
	case tcuWaitMem:
		return false
	case tcuWaitFence:
		if t.pendingNB > 0 {
			return false
		}
		t.setState(tcuRunning)
	case tcuStalled:
		if cycle < t.stallUntil {
			return true
		}
		t.setState(tcuRunning)
	}
	if t.failing {
		// Safe point: no in-flight blocking request. Posted stores must
		// still drain (the memory system would deliver into a dead TCU);
		// until then the TCU issues nothing.
		if t.pendingNB > 0 {
			return false
		}
		t.cluster.ob.decomm(t)
		t.setState(tcuDead)
		return false
	}
	if t.pendingSend != nil {
		return t.retrySend(now)
	}
	return t.issue(cycle, now)
}

// profIssue records one issue with the cycle profiler, deferring to the
// commit phase in optimistic mode (a rolled-back cycle must not leave
// profile samples behind).
func (t *TCU) profIssue(pc int) {
	c := t.cluster
	if c.prof == nil {
		return
	}
	if c.deferProf {
		c.profPend = append(c.profPend, int32(pc))
		return
	}
	c.prof.Issue(pc)
}

// stashSend records a refused injection for the fast retry path and keeps
// the PC on the refused instruction, exactly like the full re-issue would.
func (t *TCU) stashSend(p *Package, pc int, in isa.Instr) bool {
	t.ctx.PC = pc
	t.pendingSend = p
	t.pendingSendPC = pc
	t.pendingSendIn = in
	return true
}

// retrySend re-attempts a previously refused injection. The single-cycle
// engine re-runs the whole issue on every retry — emitting trace, event and
// profile records per attempt and refreshing the package's issue time — so
// the fast path replicates exactly that, minus the redundant fetch,
// effective-address computation and package construction.
func (t *TCU) retrySend(now engine.Time) bool {
	p := t.pendingSend
	pc := t.pendingSendPC
	in := t.pendingSendIn
	if t.sys.traceFn != nil {
		t.cluster.ob.trace(t, pc, in)
	}
	if t.cluster.evRing != nil {
		t.cluster.evRing.Emit(trace.Event{TS: now, Dur: t.sys.clusterClock.Period(),
			Kind: trace.EvInstr, Op: in.Op, Ctx: int32(t.id), PC: int32(pc), Arg: int64(in.Line)})
	}
	t.profIssue(pc)
	p.Issued = now
	if !t.cluster.send(p, now) {
		return true
	}
	t.pendingSend = nil
	t.ctx.PC = pc + 1
	t.cluster.ob.count(in.Op)
	switch {
	case in.Op == isa.OpPsm:
		t.cluster.ob.stat(&t.sys.Stats.PsmOps, 1)
		t.blockMem(now, pc, in.Op)
		return false
	case p.Kind == PkgStoreNB:
		t.pendingNB++
		return true
	default: // plain loads and blocking stores
		t.blockMem(now, pc, in.Op)
		return false
	}
}

// issue fetches and dispatches one instruction. It runs in the compute
// phase of the cluster tick, which may execute concurrently with other
// clusters: it only mutates TCU/cluster-local state and reads shared state;
// every shared effect goes through the cluster outbox (see outbox.go).
func (t *TCU) issue(cycle int64, now engine.Time) bool {
	m := t.sys.Machine
	region := t.sys.spawn.region
	if region == nil {
		t.setState(tcuIdle)
		return false
	}
	pc := t.ctx.PC
	if pc <= region.Spawn || pc > region.Join {
		t.cluster.ob.fail(fmt.Errorf("cycle: TCU %d fetched instruction %d outside the broadcast region (%d,%d]",
			t.id, pc, region.Spawn, region.Join))
		return false
	}
	in := m.Prog.Text[pc]
	t.ctx.PC++

	if t.sys.traceFn != nil {
		t.cluster.ob.trace(t, pc, in)
	}
	if t.cluster.evRing != nil {
		t.cluster.evRing.Emit(trace.Event{TS: now, Dur: t.sys.clusterClock.Period(),
			Kind: trace.EvInstr, Op: in.Op, Ctx: int32(t.id), PC: int32(pc), Arg: int64(in.Line)})
	}
	t.profIssue(pc)

	count := func() { t.cluster.ob.count(in.Op) }
	meta := in.Op.Meta()

	switch {
	case in.Op == isa.OpJoin:
		// Falling into join: this TCU's current virtual thread ended at the
		// region boundary; the TCU is done (it must re-grab via ps, which
		// the compiler always places before chkid, so reaching join means
		// the code simply ran off the region: treat as done).
		count()
		t.finish(now)
		return false

	case in.Op == isa.OpChkid:
		count()
		id := t.ctx.Reg[in.Rd]
		if id > t.sys.spawn.high {
			t.finish(now)
			return false
		}
		return true

	case in.Op == isa.OpPs, in.Op == isa.OpGrr, in.Op == isa.OpGrw:
		count()
		t.blockMem(now, pc, in.Op)
		t.waitPS = true
		// The prefix-sum unit paces requests through a shared per-cycle
		// window; submit at commit so slots are granted in cluster order.
		t.cluster.ob.ps(t, in)
		return false

	case in.Op == isa.OpFence:
		count()
		t.pbuf.invalidateAll()
		if t.pendingNB > 0 {
			t.setState(tcuWaitFence)
			return false
		}
		return true

	case in.Op == isa.OpSys:
		count()
		// Syscalls print to the shared output stream (and may halt): defer
		// to commit so output interleaves in deterministic cluster order.
		t.cluster.ob.sys(t, pc, in)
		return true

	case in.Op == isa.OpPsm:
		addr := m.EffAddr(&t.ctx, in)
		p := t.cluster.allocPkg()
		*p = Package{Kind: PkgPsm, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Data: t.ctx.Reg[in.Rd], Issued: now}
		if !t.trySend(p, now) {
			return t.stashSend(p, pc, in) // retry next cycle
		}
		count()
		t.cluster.ob.stat(&t.sys.Stats.PsmOps, 1)
		t.blockMem(now, pc, in.Op)
		return false

	case in.Op == isa.OpPref:
		count()
		addr := m.EffAddr(&t.ctx, in)
		la := t.pbuf.lineOf(addr)
		if t.pbuf.find(addr) != nil {
			return true // already buffered or in flight
		}
		e := t.pbuf.allocate(la, cycle)
		if e == nil {
			return true // all slots in flight; drop the hint
		}
		p := t.cluster.allocPkg()
		*p = Package{Kind: PkgPrefetch, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: la, LineAddr: la, Issued: now}
		if !t.trySend(p, now) {
			e.valid = false // could not inject; drop
			t.cluster.freePkg(p)
			return true
		}
		t.cluster.ob.stat(&t.sys.Stats.PrefetchFills, 1)
		return true

	case in.Op == isa.OpLwRO:
		count()
		addr := m.EffAddr(&t.ctx, in)
		if t.cluster.ro != nil && t.cluster.ro.Lookup(addr, cycle) {
			t.cluster.ob.stat(&t.sys.Stats.ROHits, 1)
			v, err := m.LoadValue(in, addr)
			if err != nil {
				t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
				return false
			}
			if t.sys.race != nil {
				t.cluster.ob.race(t, addr, in)
			}
			t.ctx.SetReg(in.Rd, v)
			t.stall(cycle + t.sys.Cfg.ROCacheLatency)
			return true
		}
		t.cluster.ob.stat(&t.sys.Stats.ROMisses, 1)
		p := t.cluster.allocPkg()
		*p = Package{Kind: PkgLoad, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Issued: now}
		if !t.trySend(p, now) {
			// No stash: the RO-cache probe above counts a miss per attempt.
			t.cluster.freePkg(p)
			t.ctx.PC = pc
			return true
		}
		t.blockMem(now, pc, in.Op)
		return false

	case meta.Load: // lw, lb, lbu
		addr := m.EffAddr(&t.ctx, in)
		if e := t.pbuf.find(addr); e != nil {
			count()
			if e.ready {
				t.cluster.ob.stat(&t.sys.Stats.PrefetchHits, 1)
				e.lastUse = cycle
				// xmtsan: a hit on prefetched data is exactly the stale-read
				// mechanism of paper Fig. 6 — record it as this TCU's read.
				if t.sys.race != nil {
					t.cluster.ob.race(t, addr, in)
				}
				t.ctx.SetReg(in.Rd, extractPbuf(e, in, addr))
				return true
			}
			// The line's fill is in flight: wait for it instead of issuing
			// duplicate traffic; the load commits straight from the fill.
			e.waiter = t
			t.waitingPbuf = true
			t.pendingPbufLoad = in
			t.pendingPbufAddr = addr
			t.blockMem(now, pc, in.Op)
			return false
		}
		p := t.cluster.allocPkg()
		*p = Package{Kind: PkgLoad, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Issued: now}
		if !t.trySend(p, now) {
			return t.stashSend(p, pc, in)
		}
		count()
		t.blockMem(now, pc, in.Op)
		return false

	case meta.Store: // sw, sb, sw.nb
		addr := m.EffAddr(&t.ctx, in)
		kind := PkgStore
		if in.Op == isa.OpSwNB {
			kind = PkgStoreNB
		}
		p := t.cluster.allocPkg()
		*p = Package{Kind: kind, In: in, Cluster: t.cluster.id, TCU: t.local,
			Addr: addr, Data: t.ctx.Reg[in.Rd], Issued: now}
		if !t.trySend(p, now) {
			return t.stashSend(p, pc, in)
		}
		count()
		if kind == PkgStoreNB {
			t.pendingNB++
			return true
		}
		t.blockMem(now, pc, in.Op)
		return false

	case meta.Unit == isa.UnitMDU || meta.Unit == isa.UnitFPU:
		lat, ok := t.cluster.acquire(meta.Unit, cycle, int64(meta.Latency))
		if !ok {
			t.sys.Stats.Cluster[t.cluster.id].FPUWaitCycles++
			t.ctx.PC = pc // retry next cycle
			return true
		}
		count()
		if err := m.ExecCompute(&t.ctx, in); err != nil {
			t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
			return false
		}
		t.stall(cycle + lat)
		return true

	case meta.Branch:
		count()
		taken, target, err := m.EvalBranch(&t.ctx, in)
		if err != nil {
			t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
			return false
		}
		if taken {
			t.ctx.PC = target
		}
		return true

	case in.Op == isa.OpSpawn, in.Op == isa.OpBcast:
		t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in,
			Err: fmt.Errorf("%s executed by a parallel TCU", in.Op)})
		return false

	default:
		count()
		if err := m.ExecCompute(&t.ctx, in); err != nil {
			t.cluster.ob.fail(&funcmodel.RuntimeError{PC: pc, Line: in.Line, In: in, Err: err})
			return false
		}
		return true
	}
}

func extractPbuf(e *pbufEntry, in isa.Instr, addr uint32) int32 {
	word := e.read(addr&^3, 4)
	switch in.Op {
	case isa.OpLw:
		return word
	case isa.OpLb:
		return int32(int8(word >> (8 * (addr & 3))))
	case isa.OpLbu:
		return int32(uint8(word >> (8 * (addr & 3))))
	}
	return word
}

func (t *TCU) stall(until int64) {
	t.setState(tcuStalled)
	t.stallUntil = until
}

func (t *TCU) blockMem(now engine.Time, pc int, op isa.Op) {
	t.setState(tcuWaitMem)
	t.memWaitStart = now
	t.blockPC = int32(pc)
	t.blockOp = op
	t.waitPS = false
}

func (t *TCU) unblock(now engine.Time) {
	if t.state == tcuWaitMem {
		wait := now - t.memWaitStart
		if wait > 0 {
			cycles := uint64(wait / t.sys.clusterClock.Period())
			cs := &t.sys.Stats.Cluster[t.cluster.id]
			if t.waitPS {
				cs.PSWaitCycles += cycles
			} else {
				cs.MemWaitCycles += cycles
			}
			if t.cluster.prof != nil {
				t.cluster.prof.Stall(int(t.blockPC), cycles)
			}
			if t.cluster.evRing != nil {
				kind := trace.EvMemWait
				if t.waitPS {
					kind = trace.EvPSWait
				}
				t.cluster.evRing.Emit(trace.Event{TS: t.memWaitStart, Dur: wait,
					Kind: kind, Op: t.blockOp, Ctx: int32(t.id), PC: t.blockPC})
			}
		}
		t.waitPS = false
	}
	t.setState(tcuRunning)
	t.sys.wakeClusters(now)
}

// finish marks the TCU done for this spawn and notifies the spawn unit.
// Posted stores must drain first, so the end of the spawn statement orders
// memory as the XMT memory model requires. Called from issue (compute
// phase), so the spawn-unit notification is deferred to commit.
func (t *TCU) finish(now engine.Time) {
	if t.pendingNB > 0 {
		t.setState(tcuDraining)
		return
	}
	t.setState(tcuDone)
	t.cluster.ob.done(t)
}

// trySend enqueues a package into the cluster's ICN send queue. now is the
// issuing cycle's edge time.
func (t *TCU) trySend(p *Package, now engine.Time) bool {
	return t.cluster.send(p, now)
}

// deliver commits an expiring package back at the TCU (the "commit stage"
// of the paper's package life cycle).
func (t *TCU) deliver(p *Package, now engine.Time) {
	// Any delivery invalidates the fast send-retry stash: a prefetch fill
	// can turn the retried load into a buffer hit, so re-run the full issue.
	t.pendingSend = nil
	if !t.alive {
		// The TCU was decommissioned while this package was in flight (only
		// possible for non-blocking responses: a TCU with a blocking request
		// outstanding never reaches its decommission safe point). Drop it.
		return
	}
	if p.Err != nil {
		t.sys.fail(&funcmodel.RuntimeError{PC: 0, Line: p.In.Line, In: p.In, Err: p.Err})
		return
	}
	switch p.Kind {
	case PkgLoad:
		t.ctx.SetReg(p.In.Rd, p.Data)
		if p.In.Op == isa.OpLwRO && t.cluster.ro != nil {
			t.cluster.ro.Fill(p.Addr, t.sys.clusterClock.Cycle(now))
		}
		t.recordLoadLatency(p, now)
		t.unblock(now)
	case PkgPsm:
		t.ctx.SetReg(p.In.Rd, p.Data)
		// Prefix-sum completion orders memory: flush stale prefetches.
		t.pbuf.invalidateAll()
		t.recordLoadLatency(p, now)
		t.unblock(now)
	case PkgStore:
		t.unblock(now)
	case PkgStoreNB:
		t.pendingNB--
		switch {
		case t.state == tcuWaitFence && t.pendingNB == 0:
			t.unblock(now)
		case t.state == tcuDraining && t.pendingNB == 0:
			t.setState(tcuDone)
			if t.failing {
				// Thread already finished; only the drain held the
				// decommission back. Delivery runs on the scheduler
				// goroutine, so decommission directly.
				t.sys.decommissionTCU(t, true, false, now)
			} else {
				t.sys.spawn.tcuDone(t, now)
			}
		default:
			t.sys.wakeClusters(now)
		}
	case PkgPrefetch:
		la := p.LineAddr
		for i := range t.pbuf.entries {
			e := &t.pbuf.entries[i]
			if e.valid && e.lineAddr == la && !e.ready {
				e.ready = true
				e.data = p.Line
				if e.waiter != nil {
					w := e.waiter
					e.waiter = nil
					if w.waitingPbuf {
						w.waitingPbuf = false
						if t.sys.race != nil {
							// Delivery runs on the scheduler goroutine:
							// record the waiter's read directly.
							t.sys.raceRead(w.id, w.pendingPbufAddr, w.pendingPbufLoad.Line, now)
						}
						w.ctx.SetReg(w.pendingPbufLoad.Rd, extractPbuf(e, w.pendingPbufLoad, w.pendingPbufAddr))
						t.sys.Stats.PrefetchHits++
						w.unblock(now)
					}
				}
				break
			}
		}
		t.sys.wakeClusters(now)
	}
}

func (t *TCU) recordLoadLatency(p *Package, now engine.Time) {
	t.sys.Stats.LoadLatencySum += uint64(now - p.Issued)
	t.sys.Stats.LoadLatencyCount++
	t.sys.Stats.LoadLatency.Observe(uint64(now - p.Issued))
}

// psDelivered commits a prefix-sum/global-register response.
func (t *TCU) psDelivered(in isa.Instr, old int32, now engine.Time) {
	switch in.Op {
	case isa.OpPs, isa.OpGrr:
		t.ctx.SetReg(in.Rd, old)
	}
	if in.Op == isa.OpPs {
		// ps completion orders memory like psm: flush stale prefetches.
		t.pbuf.invalidateAll()
		// xmtsan: a ps on an application global register is the release/
		// acquire primitive; the virtual-thread-id grab at spawn onset is
		// allocation, not synchronization.
		if t.sys.race != nil && in.G != isa.GRegSpawn {
			t.sys.race.Sync(t.id)
		}
	}
	t.unblock(now)
}
