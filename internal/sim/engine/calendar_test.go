package engine

import (
	"sync/atomic"
	"testing"
)

// A cancel-heavy workload (e.g. timeouts that almost always get canceled)
// must not grow the event list without bound: compaction drops canceled
// events once they outnumber live ones.
func TestCancelHeavyPendingBounded(t *testing.T) {
	s := New()
	noop := ActorFunc(func(Time) {})
	maxPending := 0
	live := 64
	var timeouts []*Event
	for round := 0; round < 200; round++ {
		for i := 0; i < live; i++ {
			timeouts = append(timeouts, s.Schedule(Time(round*100+1000), PrioTransfer, noop))
		}
		for _, e := range timeouts {
			s.Cancel(e)
		}
		timeouts = timeouts[:0]
		if p := s.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// 200 rounds × 64 canceled events would be 12800 pending without
	// compaction; with it, pending stays within a small multiple of the
	// compaction floor.
	if maxPending > 4*compactMin {
		t.Fatalf("cancel-heavy workload grew Pending() to %d", maxPending)
	}
	if s.Pending() != 0 && maxPending == 0 {
		t.Fatal("no events were ever pending")
	}
}

// Events beyond the calendar ring's horizon overflow into the heap and
// must still fire in order, including when they migrate back into the ring.
func TestOverflowHorizonOrdering(t *testing.T) {
	s := New()
	span := Time(numBuckets) * 10
	var got []Time
	rec := func(now Time) { got = append(got, now) }
	// Descending far-future times, then near times.
	for i := 20; i > 0; i-- {
		s.ScheduleFunc(Time(i)*span, PrioTransfer, rec)
	}
	for i := 5; i > 0; i-- {
		s.ScheduleFunc(Time(i), PrioTransfer, rec)
	}
	s.Run()
	if len(got) != 25 {
		t.Fatalf("got %d events, want 25", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

// RunUntil advances the cursor past empty buckets while peeking; a later
// schedule behind the parked cursor must rewind it, not be lost or fire
// out of order.
func TestScheduleBehindParkedCursor(t *testing.T) {
	s := New()
	var got []Time
	rec := func(now Time) { got = append(got, now) }
	s.ScheduleFunc(10, PrioTransfer, rec)
	far := Time(numBuckets) * 3 // beyond the ring: parks the cursor after a long advance
	s.ScheduleFunc(far, PrioTransfer, rec)
	s.RunUntil(500)
	if s.Now() != 500 {
		t.Fatalf("now = %d, want 500", s.Now())
	}
	s.ScheduleFunc(600, PrioTransfer, rec)
	s.ScheduleFunc(501, PrioTransfer, rec)
	s.Run()
	want := []Time{10, 501, 600, far}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestSetBucketWidth(t *testing.T) {
	s := New()
	s.SetBucketWidth(8)
	var got []Time
	rec := func(now Time) { got = append(got, now) }
	// Unaligned times within and across buckets still order correctly.
	for _, at := range []Time{17, 3, 8, 9, 4099, 23, 16} {
		s.ScheduleFunc(at, PrioTransfer, rec)
	}
	s.Run()
	want := []Time{3, 8, 9, 16, 17, 23, 4099}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}

	s2 := New()
	s2.ScheduleFunc(1, PrioTransfer, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetBucketWidth with pending events did not panic")
		}
	}()
	s2.SetBucketWidth(8)
}

// Recycled events must behave like fresh ones: pooling may not leak
// canceled/stop flags or stale ordering state across reuses.
func TestEventPoolReuse(t *testing.T) {
	s := New()
	fired := 0
	for i := 0; i < 1000; i++ {
		e := s.Schedule(Time(i), PrioTransfer, ActorFunc(func(Time) { fired++ }))
		if i%3 == 0 {
			s.Cancel(e)
		}
		s.Step()
	}
	if want := 1000 - 334; fired != want {
		t.Fatalf("fired %d, want %d", fired, want)
	}
}

func TestWorkerPoolForEach(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		pool := NewWorkerPool(workers)
		var hits [100]int32
		for round := 0; round < 50; round++ {
			pool.ForEach(len(hits), func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
		}
		pool.Close()
		for i, h := range hits {
			if h != 50 {
				t.Fatalf("workers=%d: index %d ran %d times, want 50", workers, i, h)
			}
		}
	}
	// A nil pool runs inline.
	var nilPool *WorkerPool
	n := 0
	nilPool.ForEach(7, func(int) { n++ })
	if n != 7 {
		t.Fatalf("nil pool ran %d calls, want 7", n)
	}
	nilPool.Close()
}

func TestWorkerPoolPanicPropagates(t *testing.T) {
	pool := NewWorkerPool(4)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	pool.ForEach(64, func(i int) {
		if i == 63 {
			panic("boom")
		}
	})
}

// shard is a ShardCycler that proves the two-phase protocol: Tick only
// touches shard-local state, Commit appends to the shared log.
type shard struct {
	id      int
	ticks   int
	pending bool
	log     *[]int
	limit   int
}

func (c *shard) Tick(cycle int64, now Time) bool {
	c.ticks++
	c.pending = true
	return c.ticks < c.limit
}

func (c *shard) Commit(now Time) {
	if c.pending {
		c.pending = false
		*c.log = append(*c.log, c.id)
	}
}

// ParallelMacroActor must tick every shard each cycle and commit them in
// shard order regardless of worker count — that order is the determinism
// contract the cycle-accurate simulator builds on.
func TestParallelMacroActorCommitOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var pool *WorkerPool
		if workers > 1 {
			pool = NewWorkerPool(workers)
		}
		s := New()
		clk := NewClock("c", 2)
		ma := NewParallelMacroActor("shards", s, clk, pool)
		var log []int
		const nShards, cycles = 9, 5
		for i := 0; i < nShards; i++ {
			ma.Add(&shard{id: i, log: &log, limit: cycles})
		}
		if ma.Len() != nShards {
			t.Fatalf("Len() = %d, want %d", ma.Len(), nShards)
		}
		ma.Wake(0)
		s.Run()
		pool.Close()
		if len(log) != nShards*cycles {
			t.Fatalf("workers=%d: %d commits, want %d", workers, len(log), nShards*cycles)
		}
		for i, id := range log {
			if id != i%nShards {
				t.Fatalf("workers=%d: commit order broken at %d: %v", workers, i, log[:i+1])
			}
		}
		if s.Executed != cycles {
			t.Fatalf("workers=%d: %d events executed, want %d (one per cycle)", workers, s.Executed, cycles)
		}
	}
}
