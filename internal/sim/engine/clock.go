package engine

import "fmt"

// Clock is an independently adjustable clock domain (clusters, ICN, shared
// caches and DRAM controllers each get one, per paper §III-B). Frequencies
// can be changed, and the domain gated off entirely, at runtime through the
// activity plug-in interface; the clock keeps a piecewise-linear mapping
// between simulated time and its local cycle count so that cycle counters
// stay consistent across DVFS transitions.
type Clock struct {
	Name      string
	baseTime  Time  // time of cycle baseCycle's edge
	baseCycle int64 // cycle count at baseTime
	period    Time  // ticks per cycle; 0 while gated
	enabled   bool

	savedPeriod Time // period to restore on Enable
}

// NewClock creates an enabled clock with the given period (ticks/cycle).
func NewClock(name string, period Time) *Clock {
	if period <= 0 {
		panic(fmt.Sprintf("engine: clock %s: period %d", name, period))
	}
	return &Clock{Name: name, period: period, enabled: true}
}

// Period returns the current period, or 0 when the domain is gated.
func (c *Clock) Period() Time {
	if !c.enabled {
		return 0
	}
	return c.period
}

// Enabled reports whether the domain is running.
func (c *Clock) Enabled() bool { return c.enabled }

// Cycle returns the domain-local cycle count at time now.
func (c *Clock) Cycle(now Time) int64 {
	if !c.enabled || now <= c.baseTime {
		return c.baseCycle
	}
	return c.baseCycle + (now-c.baseTime)/c.period
}

// NextEdge returns the first clock edge strictly after now, or MaxTime when
// the domain is gated off.
func (c *Clock) NextEdge(now Time) Time {
	if !c.enabled {
		return MaxTime
	}
	if now < c.baseTime {
		return c.baseTime
	}
	n := (now-c.baseTime)/c.period + 1
	return c.baseTime + n*c.period
}

// EdgeAt returns the time of the edge of the given domain-local cycle.
// It is only valid for cycles at or after the last SetPeriod/Enable.
func (c *Clock) EdgeAt(cycle int64) Time {
	if !c.enabled {
		return MaxTime
	}
	if cycle < c.baseCycle {
		cycle = c.baseCycle
	}
	return c.baseTime + (cycle-c.baseCycle)*c.period
}

// SetPeriod changes the domain frequency at time now. The cycle counter is
// re-based so cycles completed so far are preserved.
func (c *Clock) SetPeriod(now, period Time) {
	if period <= 0 {
		panic(fmt.Sprintf("engine: clock %s: period %d", c.Name, period))
	}
	c.rebase(now)
	c.period = period
	c.savedPeriod = period
	c.enabled = true
}

// Disable gates the domain off at time now; components on it see no further
// edges until Enable.
func (c *Clock) Disable(now Time) {
	if !c.enabled {
		return
	}
	c.rebase(now)
	c.savedPeriod = c.period
	c.enabled = false
}

// Enable restores a gated domain at time now with its previous frequency.
func (c *Clock) Enable(now Time) {
	if c.enabled {
		return
	}
	if c.savedPeriod <= 0 {
		c.savedPeriod = 1
	}
	c.baseTime = now
	c.period = c.savedPeriod
	c.enabled = true
}

func (c *Clock) rebase(now Time) {
	if c.enabled {
		c.baseCycle = c.Cycle(now)
	}
	c.baseTime = now
}
