// Package engine implements the discrete-event simulation core of XMTSim
// (paper §III-C): an event list ordered by time and priority, actors that
// are notified via callbacks when their events come due, ports that pass
// instruction/data packages between cycle-accurate components in the second
// phase of a clock cycle, macro-actors that iterate many components per
// event (the optimization that beats per-component scheduling past the
// ~800-events-per-cycle threshold the paper measured), and independently
// clocked domains whose frequencies can be changed — or gated off — at
// runtime by activity plug-ins.
//
// The event list is a bucketed calendar queue: near-future events live in a
// ring of fixed-width time buckets (sorted lazily when the cursor reaches
// them), far-future events overflow into a 4-ary min-heap and migrate into
// the ring as the cursor advances. Event structs are pooled. Both choices
// target the DE main loop's hot path: pops are amortized O(1) for the
// clock-edge-aligned traffic a cycle-accurate simulator generates, and the
// per-event allocation disappears.
//
// A discrete-time (DT) main loop over the same component interface is
// provided solely to reproduce the paper's Fig. 5 / §III-D comparison.
package engine

import (
	"fmt"
	"math"
	"slices"
)

// Time is simulated time. The unit is abstract ("ticks"); clock domains map
// cycles onto it via their period, so asynchronous components can use a
// continuous time concept as the paper's DE design intends.
type Time = int64

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxInt64

// Priority orders events that share a timestamp. Lower runs first. The two
// port phases of a clock cycle (negotiate, then transfer) map onto these.
type Priority int32

// Standard priorities. Components are free to use intermediate values.
const (
	PrioClock     Priority = 0   // clock-edge actor notifications
	PrioNegotiate Priority = 100 // phase 1: negotiate package transfers
	PrioTransfer  Priority = 200 // phase 2: move packages between components
	PrioStop      Priority = 300 // the stop event runs after all same-time work
)

// Actor is an object that schedules events and is notified via a callback
// when the time of an event it previously scheduled comes.
type Actor interface {
	Notify(now Time)
}

// ActorFunc adapts a function to the Actor interface.
type ActorFunc func(now Time)

// Notify calls f(now).
func (f ActorFunc) Notify(now Time) { f(now) }

// Event is a scheduled notification. Events are owned by the scheduler;
// holders may only Cancel them, and only while the event is still pending:
// once an event has fired (or been dropped after a Cancel) its struct is
// recycled and the handle is dead.
type Event struct {
	time     Time
	prio     Priority
	seq      uint64
	actor    Actor
	canceled bool
	stop     bool
}

// Time returns the time the event fires.
func (e *Event) Time() Time { return e.time }

const (
	// numBuckets is the calendar ring size (a power of two). With the
	// default bucket width of one tick the ring covers 512 ticks; the
	// cycle-accurate system widens buckets to its clock-period GCD, so the
	// horizon covers even the DRAM round-trip latencies and almost no
	// event pays the overflow heap.
	numBuckets = 512

	// maxFree bounds the event pool so a burst does not pin memory.
	maxFree = 8192

	// compactMin is the minimum queue length before cancel-compaction
	// kicks in (below it, lazy deletion is cheap enough).
	compactMin = 128
)

// Scheduler is the DE manager: it keeps events ordered by (time, priority,
// insertion sequence) and drives the main loop of Fig. 5b.
type Scheduler struct {
	now     Time
	seq     uint64
	stopped bool
	// Executed counts processed (non-canceled) events, used by the
	// macro-actor threshold experiment.
	Executed uint64

	// Calendar ring: slot i of buckets holds the events of absolute
	// bucket number b ≡ i (mod numBuckets) for the window
	// [curB, curB+numBuckets). Only the cursor bucket (curB) is kept
	// sorted; head is its consumed prefix (consumed slots are nil).
	width   Time // bucket width in ticks
	buckets [][]*Event
	curB    int64 // absolute bucket number under the cursor
	head    int
	sorted  bool
	ringN   int // events in the ring, including canceled ones

	overflow []*Event // 4-ary min-heap of events past the ring horizon
	canceled int      // canceled events still queued anywhere
	free     []*Event // event pool
}

// New returns an empty scheduler at time 0 with a one-tick bucket width.
func New() *Scheduler {
	return &Scheduler{width: 1}
}

// SetBucketWidth tunes the calendar-queue bucket width, typically to the
// GCD of the clock-domain periods so one bucket holds exactly the events
// of one edge. It may only be called while no events are pending.
func (s *Scheduler) SetBucketWidth(w Time) {
	if w <= 0 {
		panic(fmt.Sprintf("engine: bucket width %d", w))
	}
	if s.Pending() != 0 {
		panic("engine: SetBucketWidth with pending events")
	}
	s.width = w
	s.curB = s.now / w
	s.head, s.sorted = 0, false
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// NextTime peeks at the earliest pending event and returns its time without
// removing it (MaxTime when the queue is empty). The bounded-lookahead
// window uses it to find how far the cluster domain can run before any
// other component has an event due.
func (s *Scheduler) NextTime() Time {
	e := s.next()
	if e == nil {
		return MaxTime
	}
	return e.time
}

// AdvanceTo moves the current time forward to t without processing events.
// It exists for one narrow purpose: when a multi-cycle lookahead window
// stops the simulation mid-window (halt, failure, checkpoint trap), the
// stopping cycle's edge lies past the window-entry event time that Now()
// reports. The committing component advances the clock to the cycle it
// actually stopped at so Result.Cycles/Ticks match a single-cycle run.
// Only valid when the simulation is stopping: events between now and t
// would otherwise fire late.
func (s *Scheduler) AdvanceTo(t Time) {
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of events in the list (including canceled
// events not yet dropped; compaction keeps that share bounded).
func (s *Scheduler) Pending() int { return s.ringN + len(s.overflow) }

// Schedule enqueues a notification for actor a at time at with priority p.
// Scheduling in the past panics: it indicates a component bug.
func (s *Scheduler) Schedule(at Time, p Priority, a Actor) *Event {
	if at < s.now {
		panic(fmt.Sprintf("engine: schedule at %d before now %d", at, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		e.time, e.prio, e.seq, e.actor = at, p, s.seq, a
		e.canceled, e.stop = false, false
	} else {
		e = &Event{time: at, prio: p, seq: s.seq, actor: a}
	}
	s.seq++
	s.push(e)
	return e
}

// ScheduleFunc is Schedule for a plain function.
func (s *Scheduler) ScheduleFunc(at Time, p Priority, f func(now Time)) *Event {
	return s.Schedule(at, p, ActorFunc(f))
}

// ScheduleStop enqueues the stop event: once it is reached, Run returns.
// This is the DE simulation's termination mechanism (paper Fig. 5b).
func (s *Scheduler) ScheduleStop(at Time) *Event {
	e := s.Schedule(at, PrioStop, nil)
	e.stop = true
	return e
}

// Stop halts the simulation after the event currently being processed.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether the stop event has been reached or Stop called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Cancel marks e as canceled; it is dropped lazily. When canceled events
// accumulate past half the queue the structure is compacted, so a
// cancel-heavy workload keeps Pending() proportional to the live events.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	s.canceled++
	if s.canceled > compactMin && s.canceled*2 > s.Pending() {
		s.compact()
	}
}

// Step processes the single next event. It returns false when the event
// list is empty or the simulation has stopped.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	e := s.next()
	if e == nil {
		return false
	}
	s.take()
	s.now = e.time
	if e.stop {
		s.stopped = true
		s.recycle(e)
		return false
	}
	actor := e.actor
	s.recycle(e)
	s.Executed++
	actor.Notify(s.now)
	return true
}

// Run processes events until the stop event, Stop, or an empty list.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with time <= deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		if s.stopped {
			return
		}
		e := s.next()
		if e == nil {
			return
		}
		if e.time > deadline {
			if s.now < deadline {
				s.now = deadline
			}
			return
		}
		if !s.Step() {
			return
		}
	}
}

// less orders events by (time, priority, sequence).
func (s *Scheduler) less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// --- calendar ring ---

func (s *Scheduler) ring() [][]*Event {
	if s.buckets == nil {
		s.buckets = make([][]*Event, numBuckets)
	}
	return s.buckets
}

func (s *Scheduler) push(e *Event) {
	b := e.time / s.width
	if b < s.curB {
		// A schedule landed behind the cursor: RunUntil parked the cursor
		// ahead of now (advancing over empty buckets while peeking).
		s.rewind(b)
	}
	if b-s.curB >= numBuckets {
		s.heapPush(e)
		return
	}
	buckets := s.ring()
	slot := int(b & (numBuckets - 1))
	if b == s.curB && s.sorted {
		// Keep the cursor bucket's unconsumed tail sorted.
		bk := buckets[slot]
		lo, hi := s.head, len(bk)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.less(bk[mid], e) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bk = append(bk, nil)
		copy(bk[lo+1:], bk[lo:])
		bk[lo] = e
		buckets[slot] = bk
	} else {
		buckets[slot] = append(buckets[slot], e)
	}
	s.ringN++
}

// rewind moves the cursor back to bucket b. Ring events whose bucket would
// fall outside the new window spill into the overflow heap; events already
// consumed from the old cursor bucket are physically removed first so they
// can never refire.
func (s *Scheduler) rewind(b int64) {
	if s.buckets != nil {
		if s.head > 0 {
			slot := int(s.curB & (numBuckets - 1))
			bk := s.buckets[slot]
			n := copy(bk, bk[s.head:])
			for i := n; i < len(bk); i++ {
				bk[i] = nil
			}
			s.buckets[slot] = bk[:n]
		}
		if s.ringN > 0 {
			for slot, bk := range s.buckets {
				kept := bk[:0]
				for _, e := range bk {
					if e == nil {
						continue
					}
					if e.time/s.width-b >= numBuckets {
						s.heapPush(e)
						s.ringN--
					} else {
						kept = append(kept, e)
					}
				}
				for i := len(kept); i < len(bk); i++ {
					bk[i] = nil
				}
				s.buckets[slot] = kept
			}
		}
	}
	s.curB = b
	s.head, s.sorted = 0, false
}

// next positions the cursor at the earliest pending event and returns it
// without removing it, or nil when the queue is empty. Canceled events are
// dropped along the way.
func (s *Scheduler) next() *Event {
	for {
		if s.ringN == 0 {
			if len(s.overflow) == 0 {
				return nil
			}
			// Jump the cursor straight to the earliest overflow event.
			if s.buckets != nil {
				slot := int(s.curB & (numBuckets - 1))
				bk := s.buckets[slot]
				for i := range bk {
					bk[i] = nil
				}
				s.buckets[slot] = bk[:0]
			}
			s.curB = s.overflow[0].time / s.width
			s.head, s.sorted = 0, false
			s.migrate()
			continue
		}
		slot := int(s.curB & (numBuckets - 1))
		bk := s.buckets[slot]
		if s.head >= len(bk) {
			for i := range bk {
				bk[i] = nil
			}
			s.buckets[slot] = bk[:0]
			s.head, s.sorted = 0, false
			s.curB++
			s.migrate()
			continue
		}
		if !s.sorted {
			if len(bk)-s.head > 1 {
				slices.SortFunc(bk[s.head:], func(a, b *Event) int {
					if s.less(a, b) {
						return -1
					}
					return 1
				})
			}
			s.sorted = true
		}
		e := bk[s.head]
		if e.canceled {
			bk[s.head] = nil
			s.head++
			s.ringN--
			s.canceled--
			s.recycle(e)
			continue
		}
		return e
	}
}

// take removes the event the cursor points at (the one next returned).
func (s *Scheduler) take() {
	slot := int(s.curB & (numBuckets - 1))
	s.buckets[slot][s.head] = nil
	s.head++
	s.ringN--
}

// migrate pulls overflow events that now fall inside the ring window.
func (s *Scheduler) migrate() {
	for len(s.overflow) > 0 && s.overflow[0].time/s.width-s.curB < numBuckets {
		e := s.heapPop()
		buckets := s.ring()
		slot := int((e.time / s.width) & (numBuckets - 1))
		buckets[slot] = append(buckets[slot], e)
		s.ringN++
	}
}

// compact rebuilds the queue without its canceled events.
func (s *Scheduler) compact() {
	live := make([]*Event, 0, s.Pending())
	drop := func(e *Event) {
		if e.canceled {
			s.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	if s.buckets != nil {
		for slot, bk := range s.buckets {
			for _, e := range bk {
				if e != nil {
					drop(e)
				}
			}
			for i := range bk {
				bk[i] = nil
			}
			s.buckets[slot] = bk[:0]
		}
	}
	for _, e := range s.overflow {
		drop(e)
	}
	s.overflow = s.overflow[:0]
	s.ringN = 0
	s.head, s.sorted = 0, false
	s.curB = s.now / s.width
	s.canceled = 0
	for _, e := range live {
		s.push(e)
	}
}

func (s *Scheduler) recycle(e *Event) {
	if len(s.free) < maxFree {
		e.actor = nil
		s.free = append(s.free, e)
	}
}

// --- overflow heap (4-ary: shallower than binary, which measurably helps
// the pop-heavy migration path) ---

const heapArity = 4

func (s *Scheduler) heapPush(e *Event) {
	s.overflow = append(s.overflow, e)
	i := len(s.overflow) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !s.less(s.overflow[i], s.overflow[parent]) {
			break
		}
		s.overflow[i], s.overflow[parent] = s.overflow[parent], s.overflow[i]
		i = parent
	}
}

func (s *Scheduler) heapPop() *Event {
	top := s.overflow[0]
	last := len(s.overflow) - 1
	s.overflow[0] = s.overflow[last]
	s.overflow[last] = nil
	s.overflow = s.overflow[:last]
	n := len(s.overflow)
	i := 0
	for {
		min := i
		first := i*heapArity + 1
		for c := first; c < first+heapArity && c < n; c++ {
			if s.less(s.overflow[c], s.overflow[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.overflow[i], s.overflow[min] = s.overflow[min], s.overflow[i]
		i = min
	}
	return top
}
