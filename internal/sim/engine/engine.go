// Package engine implements the discrete-event simulation core of XMTSim
// (paper §III-C): an event list ordered by time and priority, actors that
// are notified via callbacks when their events come due, ports that pass
// instruction/data packages between cycle-accurate components in the second
// phase of a clock cycle, macro-actors that iterate many components per
// event (the optimization that beats per-component scheduling past the
// ~800-events-per-cycle threshold the paper measured), and independently
// clocked domains whose frequencies can be changed — or gated off — at
// runtime by activity plug-ins.
//
// A discrete-time (DT) main loop over the same component interface is
// provided solely to reproduce the paper's Fig. 5 / §III-D comparison.
package engine

import (
	"fmt"
	"math"
)

// Time is simulated time. The unit is abstract ("ticks"); clock domains map
// cycles onto it via their period, so asynchronous components can use a
// continuous time concept as the paper's DE design intends.
type Time = int64

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxInt64

// Priority orders events that share a timestamp. Lower runs first. The two
// port phases of a clock cycle (negotiate, then transfer) map onto these.
type Priority int32

// Standard priorities. Components are free to use intermediate values.
const (
	PrioClock     Priority = 0   // clock-edge actor notifications
	PrioNegotiate Priority = 100 // phase 1: negotiate package transfers
	PrioTransfer  Priority = 200 // phase 2: move packages between components
	PrioStop      Priority = 300 // the stop event runs after all same-time work
)

// Actor is an object that schedules events and is notified via a callback
// when the time of an event it previously scheduled comes.
type Actor interface {
	Notify(now Time)
}

// ActorFunc adapts a function to the Actor interface.
type ActorFunc func(now Time)

// Notify calls f(now).
func (f ActorFunc) Notify(now Time) { f(now) }

// Event is a scheduled notification. Events are owned by the scheduler;
// holders may only Cancel them.
type Event struct {
	time     Time
	prio     Priority
	seq      uint64
	actor    Actor
	canceled bool
	stop     bool
}

// Time returns the time the event fires.
func (e *Event) Time() Time { return e.time }

// Scheduler is the DE manager: it keeps events ordered by (time, priority,
// insertion sequence) and drives the main loop of Fig. 5b.
type Scheduler struct {
	heap    []*Event
	now     Time
	seq     uint64
	stopped bool
	// Executed counts processed (non-canceled) events, used by the
	// macro-actor threshold experiment.
	Executed uint64
}

// New returns an empty scheduler at time 0.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events in the list (including canceled
// events not yet drained).
func (s *Scheduler) Pending() int { return len(s.heap) }

// Schedule enqueues a notification for actor a at time at with priority p.
// Scheduling in the past panics: it indicates a component bug.
func (s *Scheduler) Schedule(at Time, p Priority, a Actor) *Event {
	if at < s.now {
		panic(fmt.Sprintf("engine: schedule at %d before now %d", at, s.now))
	}
	e := &Event{time: at, prio: p, seq: s.seq, actor: a}
	s.seq++
	s.push(e)
	return e
}

// ScheduleFunc is Schedule for a plain function.
func (s *Scheduler) ScheduleFunc(at Time, p Priority, f func(now Time)) *Event {
	return s.Schedule(at, p, ActorFunc(f))
}

// ScheduleStop enqueues the stop event: once it is reached, Run returns.
// This is the DE simulation's termination mechanism (paper Fig. 5b).
func (s *Scheduler) ScheduleStop(at Time) *Event {
	e := s.Schedule(at, PrioStop, nil)
	e.stop = true
	return e
}

// Stop halts the simulation after the event currently being processed.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether the stop event has been reached or Stop called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Cancel marks e as canceled; it will be skipped when popped.
func (s *Scheduler) Cancel(e *Event) {
	if e != nil {
		e.canceled = true
	}
}

// Step processes the single next event. It returns false when the event
// list is empty or the simulation has stopped.
func (s *Scheduler) Step() bool {
	for {
		if s.stopped || len(s.heap) == 0 {
			return false
		}
		e := s.pop()
		if e.canceled {
			continue
		}
		s.now = e.time
		if e.stop {
			s.stopped = true
			return false
		}
		s.Executed++
		e.actor.Notify(s.now)
		return true
	}
}

// Run processes events until the stop event, Stop, or an empty list.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with time <= deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		if s.stopped || len(s.heap) == 0 {
			return
		}
		if s.peek().time > deadline {
			if s.now < deadline {
				s.now = deadline
			}
			return
		}
		if !s.Step() {
			return
		}
	}
}

// less orders events by (time, priority, sequence).
func (s *Scheduler) less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// The event list is a 4-ary min-heap: shallower than a binary heap, which
// measurably helps the pop-heavy DE main loop.
const heapArity = 4

func (s *Scheduler) push(e *Event) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Scheduler) peek() *Event { return s.heap[0] }

func (s *Scheduler) pop() *Event {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[last] = nil
	s.heap = s.heap[:last]
	n := len(s.heap)
	i := 0
	for {
		min := i
		first := i*heapArity + 1
		for c := first; c < first+heapArity && c < n; c++ {
			if s.less(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
	return top
}
