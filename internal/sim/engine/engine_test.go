package engine

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestEventOrdering: events fire in (time, priority, insertion) order —
// the invariant the whole DE simulation rests on.
func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	rec := func(id int) ActorFunc {
		return func(now Time) { got = append(got, id) }
	}
	s.Schedule(30, PrioTransfer, rec(5))
	s.Schedule(10, PrioTransfer, rec(1))
	s.Schedule(10, PrioNegotiate, rec(0)) // same time, higher priority first
	s.Schedule(20, PrioClock, rec(2))
	s.Schedule(20, PrioClock, rec(3)) // same time+prio: insertion order
	s.Schedule(25, PrioClock, rec(4))
	s.Run()
	want := []int{0, 1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("now = %d", s.Now())
	}
}

// TestEventOrderingProperty: random schedules pop in sorted order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(times []uint16, prios []uint8) bool {
		if len(times) == 0 {
			return true
		}
		s := New()
		type key struct {
			t   Time
			p   Priority
			seq int
		}
		var want []key
		var got []key
		for i, tt := range times {
			p := Priority(0)
			if i < len(prios) {
				p = Priority(prios[i])
			}
			k := key{Time(tt), p, i}
			want = append(want, k)
			kk := k
			s.Schedule(Time(tt), p, ActorFunc(func(now Time) {
				got = append(got, kk)
			}))
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].t != want[j].t {
				return want[i].t < want[j].t
			}
			if want[i].p != want[j].p {
				return want[i].p < want[j].p
			}
			return want[i].seq < want[j].seq
		})
		s.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelAndStop(t *testing.T) {
	s := New()
	fired := 0
	ev := s.ScheduleFunc(10, PrioClock, func(Time) { fired++ })
	s.ScheduleFunc(20, PrioClock, func(Time) { fired++ })
	s.Cancel(ev)
	s.ScheduleStop(15)
	s.Run()
	if fired != 0 {
		t.Fatalf("fired = %d, want 0 (first canceled, second after stop)", fired)
	}
	if !s.Stopped() {
		t.Fatal("not stopped")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.ScheduleFunc(10, PrioClock, func(Time) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	s.stopped = false
	s.ScheduleFunc(5, PrioClock, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.ScheduleFunc(at, PrioClock, func(now Time) { fired = append(fired, now) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v", fired)
	}
}

func TestClockCycleMapping(t *testing.T) {
	c := NewClock("c", 8)
	if c.Cycle(0) != 0 || c.Cycle(7) != 0 || c.Cycle(8) != 1 || c.Cycle(80) != 10 {
		t.Fatal("cycle mapping wrong")
	}
	if c.NextEdge(0) != 8 || c.NextEdge(8) != 16 || c.NextEdge(9) != 16 {
		t.Fatal("next edge wrong")
	}
	if c.EdgeAt(5) != 40 {
		t.Fatalf("EdgeAt(5) = %d", c.EdgeAt(5))
	}
}

// TestClockDVFS: frequency changes preserve completed cycles — the
// counters an activity plug-in reads stay consistent.
func TestClockDVFS(t *testing.T) {
	c := NewClock("c", 8)
	if got := c.Cycle(80); got != 10 {
		t.Fatalf("cycle(80) = %d", got)
	}
	c.SetPeriod(80, 16) // halve the frequency at t=80
	if got := c.Cycle(80); got != 10 {
		t.Fatalf("cycle preserved across DVFS: got %d", got)
	}
	if got := c.Cycle(80 + 160); got != 20 {
		t.Fatalf("after slow-down: got %d, want 20", got)
	}
	c.Disable(240)
	if c.NextEdge(240) != MaxTime {
		t.Fatal("disabled clock must have no edges")
	}
	if c.Cycle(1000) != 20 {
		t.Fatal("disabled clock must not advance")
	}
	c.Enable(1000)
	if c.Period() != 16 {
		t.Fatal("enable must restore the saved period")
	}
	if c.Cycle(1000+32) != 22 {
		t.Fatalf("after enable: %d", c.Cycle(1032))
	}
}

// counter is a Cycler that counts its ticks and runs for a fixed span.
type counter struct {
	ticks int64
	limit int64
}

func (c *counter) Tick(cycle int64, now Time) bool {
	c.ticks++
	return c.ticks < c.limit
}

func TestMacroActorTicksAllComponents(t *testing.T) {
	s := New()
	clk := NewClock("c", 4)
	ma := NewMacroActor("m", s, clk)
	comps := make([]*counter, 10)
	for i := range comps {
		comps[i] = &counter{limit: 50}
		ma.Add(comps[i])
	}
	ma.Wake(0)
	s.Run()
	for i, c := range comps {
		if c.ticks != 50 {
			t.Fatalf("component %d ticked %d times", i, c.ticks)
		}
	}
	// One event per cycle regardless of component count.
	if s.Executed != 50 {
		t.Fatalf("executed %d events, want 50", s.Executed)
	}
}

func TestSingleActorsScheduleIndividually(t *testing.T) {
	s := New()
	clk := NewClock("c", 4)
	comps := make([]*counter, 10)
	for i := range comps {
		comps[i] = &counter{limit: 50}
		NewSingleActor(s, clk, comps[i]).Wake(0)
	}
	s.Run()
	if s.Executed != 500 {
		t.Fatalf("executed %d events, want 500 (one per component per cycle)", s.Executed)
	}
}

// TestMacroActorIdleWake: an idle macro-actor deschedules and can be
// re-woken; this is how memory responses restart sleeping clusters.
func TestMacroActorIdleWake(t *testing.T) {
	s := New()
	clk := NewClock("c", 4)
	c := &counter{limit: 3}
	ma := NewMacroActor("m", s, clk)
	ma.Add(c)
	ma.Wake(0)
	s.Run()
	if c.ticks != 3 {
		t.Fatalf("ticks = %d", c.ticks)
	}
	// Re-arm the component and wake again; simulation resumes.
	c.limit = 6
	s.stopped = false
	ma.Wake(s.Now())
	s.Run()
	if c.ticks != 6 {
		t.Fatalf("ticks after rewake = %d", c.ticks)
	}
}

func TestRunDTMatchesDE(t *testing.T) {
	mk := func(n int) []Cycler {
		out := make([]Cycler, n)
		for i := range out {
			out[i] = &counter{limit: 20}
		}
		return out
	}
	comps := mk(7)
	RunDT(comps, 4, 1000)
	for _, c := range comps {
		if c.(*counter).ticks != 20 {
			t.Fatalf("DT ticks = %d", c.(*counter).ticks)
		}
	}
}

func TestPortDelivery(t *testing.T) {
	s := New()
	var got []any
	var at []Time
	dst := InputFunc(func(pkg any, now Time) {
		got = append(got, pkg)
		at = append(at, now)
	})
	p := NewPort("p", s, dst, 12)
	p.Send("a", 0)
	p.SendAt("b", 30)
	s.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
	if at[0] != 12 || at[1] != 30 {
		t.Fatalf("times %v", at)
	}
	if p.Dst() == nil {
		t.Fatal("dst accessor")
	}
}
