package engine

// Cycler is a cycle-accurate component that can be driven one clock cycle
// at a time. It is the shared interface between the DE macro-actor and the
// discrete-time comparison loop (paper Fig. 5): Tick performs the
// component's work for the given domain-local cycle and reports whether the
// component still has work pending (so an idle macro-actor can stop
// scheduling itself).
type Cycler interface {
	Tick(cycle int64, now Time) (busy bool)
}

// CyclerFunc adapts a function to Cycler.
type CyclerFunc func(cycle int64, now Time) bool

// Tick calls f.
func (f CyclerFunc) Tick(cycle int64, now Time) bool { return f(cycle, now) }

// MacroActor groups closely related components into one large actor and
// iterates through them at every simulated clock cycle, combining what
// would otherwise be one event per component into a single event (paper
// §III-D; the interconnection network of XMTSim is implemented this way).
// This style wins once the average number of per-cycle events passes a
// threshold — the paper measured ≈800 empty events/cycle — which
// BenchmarkMacroActorThreshold reproduces.
type MacroActor struct {
	Name  string
	sched *Scheduler
	clock *Clock
	comps []Cycler

	scheduled bool
	pending   *Event
}

// NewMacroActor creates a macro-actor driven by clock on sched.
func NewMacroActor(name string, sched *Scheduler, clock *Clock, comps ...Cycler) *MacroActor {
	return &MacroActor{Name: name, sched: sched, clock: clock, comps: comps}
}

// Add appends a component.
func (m *MacroActor) Add(c Cycler) { m.comps = append(m.comps, c) }

// Len returns the number of grouped components.
func (m *MacroActor) Len() int { return len(m.comps) }

// Wake ensures the macro-actor is scheduled for the next clock edge. Idle
// macro-actors deschedule themselves; components call Wake (typically from
// Input) when new work arrives. A pending WakeAt further out is pulled in.
func (m *MacroActor) Wake(now Time) {
	edge := m.clock.NextEdge(now)
	if edge == MaxTime {
		return // domain gated off; the DVFS controller re-wakes on Enable
	}
	m.wakeEdge(edge)
}

// WakeAt schedules the next notification at the first clock edge at or
// after `at` instead of the very next edge — the idle-skip for components
// whose queued work all lies in the future (e.g. in-flight ICN packages):
// the skipped edges cost no scheduler events at all, and the component
// ticks again exactly when the earliest item can make progress. A later
// Wake for an earlier edge supersedes it.
func (m *MacroActor) WakeAt(now, at Time) {
	if at <= now {
		m.Wake(now)
		return
	}
	edge := m.clock.NextEdge(at - 1) // first edge at or after `at`
	if edge == MaxTime {
		return
	}
	m.wakeEdge(edge)
}

// wakeEdge schedules (or tightens) the pending notification to the given
// edge; an already-pending earlier notification stands.
func (m *MacroActor) wakeEdge(edge Time) {
	if m.scheduled {
		if m.pending != nil && m.pending.Time() <= edge {
			return
		}
		m.sched.Cancel(m.pending)
	}
	m.scheduled = true
	m.pending = m.sched.Schedule(edge, PrioClock, m)
}

// Notify runs one cycle over all grouped components: the "DT-style inner
// loop wrapped in a notify callback" of the paper.
func (m *MacroActor) Notify(now Time) {
	m.scheduled = false
	m.pending = nil
	cycle := m.clock.Cycle(now)
	busy := false
	for _, c := range m.comps {
		if c.Tick(cycle, now) {
			busy = true
		}
	}
	if busy {
		m.Wake(now)
	}
}

// SingleActor wraps one Cycler as a self-scheduling actor — the baseline
// "each component is an actor" configuration of the §III-D experiment.
type SingleActor struct {
	sched *Scheduler
	clock *Clock
	comp  Cycler

	scheduled bool
}

// NewSingleActor wraps comp.
func NewSingleActor(sched *Scheduler, clock *Clock, comp Cycler) *SingleActor {
	return &SingleActor{sched: sched, clock: clock, comp: comp}
}

// Wake schedules the actor for the next clock edge if idle.
func (a *SingleActor) Wake(now Time) {
	if a.scheduled {
		return
	}
	edge := a.clock.NextEdge(now)
	if edge == MaxTime {
		return
	}
	a.scheduled = true
	a.sched.Schedule(edge, PrioClock, a)
}

// Notify ticks the wrapped component once.
func (a *SingleActor) Notify(now Time) {
	a.scheduled = false
	if a.comp.Tick(a.clock.Cycle(now), now) {
		a.Wake(now)
	}
}

// RunDT drives comps with the discrete-time main loop of Fig. 5a: poll
// every component each cycle, increment time, stop after cycles iterations
// or when every component reports idle for an entire sweep. It exists for
// the DE-vs-DT comparison; the simulator proper always runs DE.
func RunDT(comps []Cycler, period Time, cycles int64) (executedTicks uint64) {
	now := Time(0)
	for cycle := int64(0); cycle < cycles; cycle++ {
		busy := false
		for _, c := range comps {
			if c.Tick(cycle, now) {
				busy = true
			}
			executedTicks++
		}
		if !busy {
			break
		}
		now += period
	}
	return executedTicks
}
