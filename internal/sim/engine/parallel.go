package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardCycler is a Cycler whose tick is split into two phases so many
// shards can tick concurrently inside one scheduler event:
//
//   - Tick (the compute phase) runs in parallel across shards and must be
//     side-effect-local: it may mutate only shard-private state and read
//     shared state, deferring every shared mutation into a shard-local
//     outbox.
//   - Commit (the serial phase) drains the outbox. Commits run on the
//     scheduler goroutine in shard order after every shard's Tick has
//     returned, so the interleaving of shared effects — scheduler sequence
//     numbers included — is identical to a fully serial simulation.
type ShardCycler interface {
	Cycler
	Commit(now Time)
}

// poolJob is one ForEach invocation, shared by every participating worker.
type poolJob struct {
	n    int32
	next *int32 // atomic work-stealing index
	fn   func(i int)
	wg   *sync.WaitGroup
	pan  *atomic.Value // first panic from a helper goroutine
}

func (j poolJob) work() {
	for {
		i := atomic.AddInt32(j.next, 1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
	}
}

// WorkerPool is a persistent pool of worker goroutines for data-parallel
// fan-out inside a single scheduler event. The goroutines block on a job
// channel between barriers, so the per-event cost is two channel hops per
// helper rather than goroutine creation.
type WorkerPool struct {
	n       int
	jobs    chan poolJob
	started bool
}

// NewWorkerPool returns a pool of n workers (n <= 0 means GOMAXPROCS).
// Goroutines start lazily on first use.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{n: n}
}

// Size returns the worker count; a nil pool counts as one (serial).
func (p *WorkerPool) Size() int {
	if p == nil {
		return 1
	}
	return p.n
}

// ForEach runs fn(i) for every i in [0, n) spread across the pool and
// returns once all calls have completed. The calling goroutine participates
// as one of the workers. A nil or single-worker pool runs the calls
// inline, in index order.
func (p *WorkerPool) ForEach(n int, fn func(i int)) {
	if p == nil || p.n <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if !p.started {
		p.start()
	}
	helpers := p.n - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var next int32
	var wg sync.WaitGroup
	var pan atomic.Value
	wg.Add(helpers)
	job := poolJob{n: int32(n), next: &next, fn: fn, wg: &wg, pan: &pan}
	for i := 0; i < helpers; i++ {
		p.jobs <- job
	}
	job.work()
	wg.Wait()
	if v := pan.Load(); v != nil {
		panic(v)
	}
}

func (p *WorkerPool) start() {
	p.jobs = make(chan poolJob)
	for i := 0; i < p.n-1; i++ {
		go func() {
			for job := range p.jobs {
				func() {
					defer job.wg.Done()
					defer func() {
						if r := recover(); r != nil {
							job.pan.CompareAndSwap(nil, r)
						}
					}()
					job.work()
				}()
			}
		}()
	}
	p.started = true
}

// Close stops the worker goroutines. The pool restarts lazily on the next
// ForEach, so Close is safe to call between simulation runs. Nil-safe.
func (p *WorkerPool) Close() {
	if p == nil || !p.started {
		return
	}
	close(p.jobs)
	p.started = false
}

// ParallelMacroActor is a MacroActor whose components tick concurrently on
// a WorkerPool and then commit serially in component order. Like
// MacroActor it consumes one event per cycle regardless of component
// count; unlike it, the compute phase of that event uses every host core.
// With a nil pool it degrades to the exact serial two-phase loop, which is
// why workers=1 and workers=N produce bit-identical results (the commit
// order, not the compute order, defines all shared-state interleavings).
type ParallelMacroActor struct {
	Name  string
	sched *Scheduler
	clock *Clock
	pool  *WorkerPool
	comps []ShardCycler
	busy  []bool

	scheduled bool
	pending   *Event
}

// NewParallelMacroActor creates a parallel macro-actor on the given clock
// domain. A nil pool means serial execution.
func NewParallelMacroActor(name string, sched *Scheduler, clock *Clock, pool *WorkerPool) *ParallelMacroActor {
	return &ParallelMacroActor{Name: name, sched: sched, clock: clock, pool: pool}
}

// Add registers a component shard.
func (m *ParallelMacroActor) Add(c ShardCycler) {
	m.comps = append(m.comps, c)
	m.busy = append(m.busy, false)
}

// Len returns the number of component shards.
func (m *ParallelMacroActor) Len() int { return len(m.comps) }

// Workers returns the number of host workers ticking the shards.
func (m *ParallelMacroActor) Workers() int { return m.pool.Size() }

// Wake ensures a notification is scheduled for the next clock edge.
// Idempotent within a cycle, like MacroActor.Wake.
func (m *ParallelMacroActor) Wake(now Time) {
	if m.scheduled {
		return
	}
	at := m.clock.NextEdge(now)
	if at == MaxTime {
		return // clock gated off; re-woken on Enable
	}
	m.scheduled = true
	m.pending = m.sched.Schedule(at, PrioClock, m)
}

// Notify ticks all shards (parallel compute phase), then commits their
// outboxes in shard order (serial phase), and re-arms the clock edge if
// any shard still has work.
func (m *ParallelMacroActor) Notify(now Time) {
	m.scheduled = false
	m.pending = nil
	cycle := m.clock.Cycle(now)
	comps, busy := m.comps, m.busy
	m.pool.ForEach(len(comps), func(i int) {
		busy[i] = comps[i].Tick(cycle, now)
	})
	any := false
	for i, c := range comps {
		c.Commit(now)
		if busy[i] {
			any = true
		}
	}
	if any {
		m.Wake(now)
	}
}
